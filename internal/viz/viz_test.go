package viz

import (
	"encoding/json"
	"net/netip"
	"strings"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/core/tamp"
	"rex/internal/event"
)

func testPicture(t *testing.T) *tamp.Picture {
	t.Helper()
	g := tamp.New("berkeley")
	add := func(router, nexthop, prefix string, asns ...uint32) {
		g.AddRoute(tamp.RouteEntry{
			Router:  router,
			Nexthop: netip.MustParseAddr(nexthop),
			ASPath:  asns,
			Prefix:  netip.MustParsePrefix(prefix),
		})
	}
	for i := 0; i < 20; i++ {
		add("128.32.1.3", "128.32.0.66", netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i), 0, 0}), 16).String(), 11423, 209)
	}
	for i := 0; i < 4; i++ {
		add("128.32.1.200", "128.32.0.90", netip.PrefixFrom(netip.AddrFrom4([4]byte{30, byte(i), 0, 0}), 16).String(), 11423, 11537)
	}
	return g.Snapshot(tamp.PruneOptions{KeepDepth: 3})
}

func TestDOTOutput(t *testing.T) {
	pic := testPicture(t)
	dot := DOT(pic, DOTOptions{ShowPercent: true})
	for _, want := range []string{
		`digraph "berkeley"`,
		"rankdir=LR",
		`"128.32.1.3" [shape=box]`,
		`"AS11423"`,
		`"128.32.0.66" -> "AS11423"`,
		"(83%)",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic.
	if dot != DOT(pic, DOTOptions{ShowPercent: true}) {
		t.Error("DOT nondeterministic")
	}
	// Default rankdir and label shape.
	plain := DOT(pic, DOTOptions{})
	if !strings.Contains(plain, "rankdir=LR") || strings.Contains(plain, "%") {
		t.Error("default DOT options wrong")
	}
}

func TestComputeLayout(t *testing.T) {
	pic := testPicture(t)
	l := ComputeLayout(pic)
	if len(l.Pos) != len(pic.Nodes) {
		t.Fatalf("laid out %d of %d nodes", len(l.Pos), len(pic.Nodes))
	}
	// Depth maps to x: deeper nodes strictly to the right.
	rootX := l.Pos[tamp.RootNode("berkeley")].X
	asX := l.Pos[tamp.ASNode(11423)].X
	if asX <= rootX {
		t.Errorf("AS x %v <= root x %v", asX, rootX)
	}
	// No two nodes share a position.
	seen := map[Point]tamp.NodeID{}
	for id, pt := range l.Pos {
		if other, dup := seen[pt]; dup {
			t.Errorf("nodes %v and %v share position %v", id, other, pt)
		}
		seen[pt] = id
	}
	if l.Width <= 0 || l.Height <= 0 {
		t.Errorf("degenerate canvas %vx%v", l.Width, l.Height)
	}
}

func TestSVGOutput(t *testing.T) {
	pic := testPicture(t)
	svg := SVG(pic)
	for _, want := range []string{"<svg", "</svg>", "berkeley — 24 prefixes", "AS11423", "<line"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestASCIIOutput(t *testing.T) {
	pic := testPicture(t)
	out := ASCII(pic)
	for _, want := range []string{"berkeley (24 prefixes)", "128.32.1.3", "AS11423", "(83%)", "└──"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q:\n%s", want, out)
		}
	}
	// Heavier branches print first.
	if strings.Index(out, "128.32.1.3") > strings.Index(out, "128.32.1.200") {
		t.Error("branches not weight-ordered")
	}
}

func TestAnimationFrameSVG(t *testing.T) {
	t0 := time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)
	mk := func(typ event.Type, offset time.Duration) event.Event {
		return event.Event{
			Time: t0.Add(offset), Type: typ,
			Peer:   netip.MustParseAddr("10.0.0.1"),
			Prefix: netip.MustParsePrefix("4.5.0.0/16"),
			Attrs: &bgp.PathAttrs{
				ASPath:  bgp.Sequence(2),
				Nexthop: netip.MustParseAddr("10.3.4.5"),
			},
		}
	}
	base := []tamp.RouteEntry{{
		Router:  "10.0.0.1",
		Nexthop: netip.MustParseAddr("10.3.4.5"),
		ASPath:  []uint32{2},
		Prefix:  netip.MustParsePrefix("4.5.0.0/16"),
	}}
	events := event.Stream{mk(event.Withdraw, 0), mk(event.Announce, 10*time.Second)}
	anim := tamp.Animate("isp", base, events, tamp.AnimationConfig{})
	sel := tamp.EdgeRef{From: tamp.RouterNode("10.0.0.1"), To: tamp.NexthopNode(netip.MustParseAddr("10.3.4.5"))}

	svg := AnimationFrameSVG(anim, 0, sel)
	for _, want := range []string{"<svg", "frame 1/750", "prefixes over time", "polyline", "#2255cc"} {
		if !strings.Contains(svg, want) {
			t.Errorf("frame SVG missing %q", want)
		}
	}
	// Gray shadow appears when the edge lost its prefix.
	if !strings.Contains(svg, "#bbbbbb") {
		t.Error("no gray shadow on lost-prefix edge")
	}
	// Without a selected edge there is no plot.
	svg = AnimationFrameSVG(anim, anim.NumFrames-1, tamp.EdgeRef{})
	if strings.Contains(svg, "prefixes over time") {
		t.Error("plot rendered without selection")
	}
	// Final frame: edge regained its prefix (green in that frame).
	if !strings.Contains(svg, "#22aa44") {
		t.Error("final frame missing green edge")
	}
}

func TestRateASCII(t *testing.T) {
	out := RateASCII([]int{1, 1, 50, 1}, 5)
	if !strings.Contains(out, "#") || !strings.Contains(out, "50 |") {
		t.Errorf("rate chart:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Errorf("chart height = %d lines", len(lines))
	}
	if RateASCII(nil, 5) != "(no events)\n" {
		t.Error("empty rate chart")
	}
	if !strings.Contains(RateASCII([]int{3}, 0), "|") {
		t.Error("default height chart")
	}
}

func TestFormatClock(t *testing.T) {
	for d, want := range map[time.Duration]string{
		90 * time.Minute:        "1.5h",
		90 * time.Second:        "1.5m",
		1500 * time.Millisecond: "1.5s",
		500 * time.Microsecond:  "0.5ms",
	} {
		if got := formatClock(d); got != want {
			t.Errorf("formatClock(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}

func TestAnimationJSONExport(t *testing.T) {
	t0 := time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)
	base := []tamp.RouteEntry{{
		Router:  "10.0.0.1", // routers are named by peering address
		Nexthop: netip.MustParseAddr("10.3.4.5"),
		ASPath:  []uint32{2},
		Prefix:  netip.MustParsePrefix("4.5.0.0/16"),
	}}
	events := event.Stream{
		{Time: t0, Type: event.Withdraw, Peer: netip.MustParseAddr("10.0.0.1"),
			Prefix: netip.MustParsePrefix("4.5.0.0/16"),
			Attrs:  &bgp.PathAttrs{ASPath: bgp.Sequence(2), Nexthop: netip.MustParseAddr("10.3.4.5")}},
	}
	anim := tamp.Animate("isp", base, events, tamp.AnimationConfig{})
	var buf strings.Builder
	if err := WriteAnimationJSON(&buf, anim); err != nil {
		t.Fatal(err)
	}
	var back AnimationJSON
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Site != "isp" || back.NumFrames != 1 || back.FPS != 25 {
		t.Errorf("header = %+v", back)
	}
	if len(back.InitialEdges) == 0 || back.InitialEdges[0].Color != "black" {
		t.Errorf("initial = %+v", back.InitialEdges)
	}
	if len(back.Frames) != 1 || len(back.Frames[0].Changes) == 0 {
		t.Fatalf("frames = %+v", back.Frames)
	}
	// The withdrawn edge is blue in the frame.
	sawBlue := false
	for _, ch := range back.Frames[0].Changes {
		if ch.Color == "blue" {
			sawBlue = true
		}
	}
	if !sawBlue {
		t.Error("no blue change in exported frame")
	}
}
