package viz

import (
	"fmt"
	"sort"
	"strings"

	"rex/internal/core/tamp"
)

// ASCII renders a picture as an indented tree for terminals:
//
//	berkeley (94 prefixes)
//	└── 128.32.1.3 ── 80 (85%) ── 128.32.0.66
//	    └── 128.32.0.66 ── 80 (85%) ── AS11423
//
// The TAMP graph is a DAG; nodes reachable over several paths are printed
// under each parent, with deeper repeats elided ("…") to keep output
// bounded.
func ASCII(p *tamp.Picture) string {
	children := map[tamp.NodeID][]tamp.PictureEdge{}
	for _, e := range p.Edges {
		children[e.From] = append(children[e.From], e)
	}
	for _, es := range children {
		sort.Slice(es, func(i, j int) bool {
			if es[i].Weight != es[j].Weight {
				return es[i].Weight > es[j].Weight
			}
			return es[i].To.String() < es[j].To.String()
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d prefixes)\n", p.Site, p.Total)
	root := tamp.RootNode(p.Site)
	visited := map[tamp.NodeID]bool{root: true}
	var walk func(node tamp.NodeID, prefix string)
	walk = func(node tamp.NodeID, prefix string) {
		es := children[node]
		for i, e := range es {
			connector, childPrefix := "├── ", prefix+"│   "
			if i == len(es)-1 {
				connector, childPrefix = "└── ", prefix+"    "
			}
			pct := ""
			if p.Total > 0 {
				pct = fmt.Sprintf(" (%.0f%%)", 100*e.Fraction)
			}
			repeat := ""
			if visited[e.To] {
				repeat = " …"
			}
			fmt.Fprintf(&b, "%s%s%s — %d%s%s\n", prefix, connector, e.To.String(), e.Weight, pct, repeat)
			if !visited[e.To] {
				visited[e.To] = true
				walk(e.To, childPrefix)
			}
		}
	}
	walk(root, "")
	return b.String()
}

// RateASCII renders an event-rate series as a fixed-height bar chart, the
// terminal analogue of the paper's Figure 8.
func RateASCII(counts []int, height int) string {
	if height <= 0 {
		height = 10
	}
	if len(counts) == 0 {
		return "(no events)\n"
	}
	maxV := 1
	for _, c := range counts {
		if c > maxV {
			maxV = c
		}
	}
	var b strings.Builder
	for row := height; row >= 1; row-- {
		threshold := float64(maxV) * float64(row) / float64(height)
		if row == height {
			fmt.Fprintf(&b, "%8d |", maxV)
		} else {
			b.WriteString("         |")
		}
		for _, c := range counts {
			if float64(c) >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("       0 +")
	b.WriteString(strings.Repeat("-", len(counts)))
	b.WriteByte('\n')
	return b.String()
}
