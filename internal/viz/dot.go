// Package viz renders TAMP pictures and animations without external
// dependencies: a Graphviz DOT emitter (the paper used AT&T graphviz for
// layout), a built-in layered layout with an SVG renderer, an ASCII
// renderer for terminals, and an animation-frame renderer with the paper's
// visual cues (edge colors, gray max shadow, animation clock, selected-
// edge prefix plot).
package viz

import (
	"fmt"
	"strings"

	"rex/internal/core/tamp"
)

// DOTOptions tunes the DOT emitter.
type DOTOptions struct {
	// RankDir is the graphviz rank direction (default "LR": data flows
	// left-to-right as in the paper's figures).
	RankDir string
	// ShowPercent labels edges with their percentage of total prefixes.
	ShowPercent bool
}

// DOT renders the picture as a Graphviz source string. Edge pen widths are
// proportional to the fraction of prefixes carried, as in TAMP pictures.
func DOT(p *tamp.Picture, opts DOTOptions) string {
	rankdir := opts.RankDir
	if rankdir == "" {
		rankdir = "LR"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", p.Site)
	fmt.Fprintf(&b, "  rankdir=%s;\n  node [fontsize=10];\n", rankdir)
	for _, n := range p.Nodes {
		shape := nodeShape(n.ID.Kind)
		fmt.Fprintf(&b, "  %q [shape=%s];\n", n.ID.String(), shape)
	}
	for _, e := range p.Edges {
		width := 0.5 + 6*e.Fraction
		label := fmt.Sprintf("%d", e.Weight)
		if opts.ShowPercent {
			label = fmt.Sprintf("%d (%.0f%%)", e.Weight, 100*e.Fraction)
		}
		fmt.Fprintf(&b, "  %q -> %q [penwidth=%.2f, label=%q];\n",
			e.From.String(), e.To.String(), width, label)
	}
	b.WriteString("}\n")
	return b.String()
}

func nodeShape(k tamp.NodeKind) string {
	switch k {
	case tamp.KindRoot:
		return "box"
	case tamp.KindRouter:
		return "box"
	case tamp.KindNexthop:
		return "ellipse"
	case tamp.KindAS:
		return "ellipse"
	case tamp.KindPrefix:
		return "plaintext"
	default:
		return "ellipse"
	}
}
