package viz

import (
	"sort"

	"rex/internal/core/tamp"
)

// Point is a laid-out node position.
type Point struct {
	X, Y float64
}

// Layout assigns coordinates to a picture's nodes: a layered
// (Sugiyama-style) layout with nodes in columns by depth and a single
// barycenter ordering pass to reduce edge crossings. Data flows
// left-to-right, like the paper's figures.
type Layout struct {
	Pos    map[tamp.NodeID]Point
	Width  float64
	Height float64
}

// Layout spacing constants (SVG user units).
const (
	colWidth  = 190.0
	rowHeight = 46.0
	marginX   = 60.0
	marginY   = 40.0
)

// ComputeLayout lays out the picture.
func ComputeLayout(p *tamp.Picture) *Layout {
	// Group nodes by depth.
	maxDepth := 0
	byDepth := map[int][]tamp.NodeID{}
	depthOf := map[tamp.NodeID]int{}
	for _, n := range p.Nodes {
		byDepth[n.Depth] = append(byDepth[n.Depth], n.ID)
		depthOf[n.ID] = n.Depth
		if n.Depth > maxDepth {
			maxDepth = n.Depth
		}
	}
	// Predecessors for barycenter ordering.
	preds := map[tamp.NodeID][]tamp.NodeID{}
	for _, e := range p.Edges {
		preds[e.To] = append(preds[e.To], e.From)
	}

	l := &Layout{Pos: make(map[tamp.NodeID]Point, len(p.Nodes))}
	order := map[tamp.NodeID]int{}
	rows := 0
	for d := 0; d <= maxDepth; d++ {
		col := byDepth[d]
		if len(col) == 0 {
			continue
		}
		if d > 0 {
			// Barycenter: average order of predecessors in earlier
			// columns; stable sort keeps the deterministic input order
			// for ties.
			sort.SliceStable(col, func(i, j int) bool {
				return barycenter(col[i], preds, order) < barycenter(col[j], preds, order)
			})
		}
		for i, id := range col {
			order[id] = i
			l.Pos[id] = Point{
				X: marginX + float64(d)*colWidth,
				Y: marginY + float64(i)*rowHeight,
			}
		}
		if len(col) > rows {
			rows = len(col)
		}
	}
	l.Width = marginX*2 + float64(maxDepth)*colWidth + 120
	l.Height = marginY*2 + float64(rows-1)*rowHeight + 20
	if rows == 0 {
		l.Height = marginY * 2
	}
	return l
}

func barycenter(id tamp.NodeID, preds map[tamp.NodeID][]tamp.NodeID, order map[tamp.NodeID]int) float64 {
	ps := preds[id]
	if len(ps) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ps {
		sum += float64(order[p])
	}
	return sum / float64(len(ps))
}
