package viz

import (
	"encoding/json"
	"io"
	"time"

	"rex/internal/core/tamp"
)

// AnimationJSON is the machine-readable export of a TAMP animation, for
// web players and archival. The schema is stable: field names are part of
// the format.
type AnimationJSON struct {
	Site         string      `json:"site"`
	Start        time.Time   `json:"start"`
	End          time.Time   `json:"end"`
	PlayMillis   int64       `json:"playMillis"`
	FPS          int         `json:"fps"`
	NumFrames    int         `json:"numFrames"`
	InitialEdges []EdgeJSON  `json:"initialEdges"`
	Frames       []FrameJSON `json:"frames"`
}

// EdgeJSON is one edge state.
type EdgeJSON struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Count   int    `json:"count"`
	MaxEver int    `json:"maxEver"`
	Color   string `json:"color"`
	Ups     int    `json:"ups,omitempty"`
	Downs   int    `json:"downs,omitempty"`
}

// FrameJSON is one non-empty frame.
type FrameJSON struct {
	Index   int        `json:"index"`
	Time    time.Time  `json:"time"`
	Changes []EdgeJSON `json:"changes"`
}

// ExportAnimation converts an animation to its JSON form.
func ExportAnimation(a *tamp.Animation) AnimationJSON {
	out := AnimationJSON{
		Site:       a.Site,
		Start:      a.Start,
		End:        a.End,
		PlayMillis: a.PlayDuration.Milliseconds(),
		FPS:        a.FPS,
		NumFrames:  a.NumFrames,
	}
	for _, st := range a.Initial {
		out.InitialEdges = append(out.InitialEdges, edgeJSON(st))
	}
	for _, f := range a.Frames {
		fj := FrameJSON{Index: f.Index, Time: f.Time}
		for _, ch := range f.Changes {
			fj.Changes = append(fj.Changes, edgeJSON(ch))
		}
		out.Frames = append(out.Frames, fj)
	}
	return out
}

// WriteAnimationJSON writes the animation as indented JSON.
func WriteAnimationJSON(w io.Writer, a *tamp.Animation) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ExportAnimation(a))
}

func edgeJSON(st tamp.EdgeFrameState) EdgeJSON {
	return EdgeJSON{
		From:    st.Edge.From.String(),
		To:      st.Edge.To.String(),
		Count:   st.Count,
		MaxEver: st.MaxEver,
		Color:   st.Color.String(),
		Ups:     st.Ups,
		Downs:   st.Downs,
	}
}

// PictureJSON is the machine-readable export of a pruned TAMP picture,
// the serving tier's /api/picture.json document. Like AnimationJSON the
// schema is stable — field names are part of the format — and the
// encoding is deterministic: a Picture's nodes and edges are already
// sorted, struct field order is fixed, and no maps are involved, so the
// same Picture always marshals to the same bytes (the serve render
// cache and the fleet -check differ both rely on this; see the
// determinism tests).
type PictureJSON struct {
	Site  string            `json:"site"`
	Total int               `json:"total"`
	Nodes []PictureNodeJSON `json:"nodes"`
	Edges []PictureEdgeJSON `json:"edges"`
}

// NodeRefJSON names a picture node by kind and raw name (the pair that
// round-trips; Label is the display form drawn in pictures).
type NodeRefJSON struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
}

// PictureNodeJSON is one surviving node.
type PictureNodeJSON struct {
	NodeRefJSON
	Label string `json:"label"`
	Depth int    `json:"depth"`
}

// PictureEdgeJSON is one surviving edge.
type PictureEdgeJSON struct {
	From     NodeRefJSON `json:"from"`
	To       NodeRefJSON `json:"to"`
	Weight   int         `json:"weight"`
	Fraction float64     `json:"fraction"`
	MaxEver  int         `json:"maxEver"`
	Depth    int         `json:"depth"`
}

// kindNames maps NodeKind to its JSON string form (KindRoot is 1).
var kindNames = [...]string{"", "root", "router", "nexthop", "as", "prefix"}

func kindName(k tamp.NodeKind) string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

func kindFromName(s string) (tamp.NodeKind, bool) {
	for i, n := range kindNames {
		if i > 0 && n == s {
			return tamp.NodeKind(i), true
		}
	}
	return 0, false
}

func nodeRef(id tamp.NodeID) NodeRefJSON {
	return NodeRefJSON{Kind: kindName(id.Kind), Name: id.Name}
}

func (r NodeRefJSON) nodeID() (tamp.NodeID, bool) {
	k, ok := kindFromName(r.Kind)
	if !ok {
		return tamp.NodeID{}, false
	}
	return tamp.NodeID{Kind: k, Name: r.Name}, true
}

// ExportPicture converts a picture to its JSON form.
func ExportPicture(p *tamp.Picture) PictureJSON {
	out := PictureJSON{
		Site:  p.Site,
		Total: p.Total,
		Nodes: make([]PictureNodeJSON, 0, len(p.Nodes)),
		Edges: make([]PictureEdgeJSON, 0, len(p.Edges)),
	}
	for _, n := range p.Nodes {
		out.Nodes = append(out.Nodes, PictureNodeJSON{
			NodeRefJSON: nodeRef(n.ID), Label: n.ID.String(), Depth: n.Depth,
		})
	}
	for _, e := range p.Edges {
		out.Edges = append(out.Edges, PictureEdgeJSON{
			From: nodeRef(e.From), To: nodeRef(e.To),
			Weight: e.Weight, Fraction: e.Fraction, MaxEver: e.MaxEver, Depth: e.Depth,
		})
	}
	return out
}

// PictureFromJSON rebuilds a renderable picture from its JSON form —
// the inverse of ExportPicture, used to serve SVG/DOT renders of a
// snapshot restored from disk. Nodes or edges with unknown kinds are
// dropped rather than failing the whole picture.
func PictureFromJSON(pj PictureJSON) *tamp.Picture {
	p := &tamp.Picture{Site: pj.Site, Total: pj.Total}
	for _, n := range pj.Nodes {
		id, ok := n.nodeID()
		if !ok {
			continue
		}
		p.Nodes = append(p.Nodes, tamp.PictureNode{ID: id, Depth: n.Depth})
	}
	for _, e := range pj.Edges {
		from, okF := e.From.nodeID()
		to, okT := e.To.nodeID()
		if !okF || !okT {
			continue
		}
		p.Edges = append(p.Edges, tamp.PictureEdge{
			From: from, To: to,
			Weight: e.Weight, Fraction: e.Fraction, MaxEver: e.MaxEver, Depth: e.Depth,
		})
	}
	return p
}

// JSON renders the picture as indented, deterministic JSON bytes with a
// trailing newline. The marshal cannot fail: PictureJSON contains only
// strings and numbers.
func JSON(p *tamp.Picture) []byte {
	b, err := json.MarshalIndent(ExportPicture(p), "", "  ")
	if err != nil {
		panic("viz: picture marshal: " + err.Error())
	}
	return append(b, '\n')
}
