package viz

import (
	"encoding/json"
	"io"
	"time"

	"rex/internal/core/tamp"
)

// AnimationJSON is the machine-readable export of a TAMP animation, for
// web players and archival. The schema is stable: field names are part of
// the format.
type AnimationJSON struct {
	Site         string      `json:"site"`
	Start        time.Time   `json:"start"`
	End          time.Time   `json:"end"`
	PlayMillis   int64       `json:"playMillis"`
	FPS          int         `json:"fps"`
	NumFrames    int         `json:"numFrames"`
	InitialEdges []EdgeJSON  `json:"initialEdges"`
	Frames       []FrameJSON `json:"frames"`
}

// EdgeJSON is one edge state.
type EdgeJSON struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Count   int    `json:"count"`
	MaxEver int    `json:"maxEver"`
	Color   string `json:"color"`
	Ups     int    `json:"ups,omitempty"`
	Downs   int    `json:"downs,omitempty"`
}

// FrameJSON is one non-empty frame.
type FrameJSON struct {
	Index   int        `json:"index"`
	Time    time.Time  `json:"time"`
	Changes []EdgeJSON `json:"changes"`
}

// ExportAnimation converts an animation to its JSON form.
func ExportAnimation(a *tamp.Animation) AnimationJSON {
	out := AnimationJSON{
		Site:       a.Site,
		Start:      a.Start,
		End:        a.End,
		PlayMillis: a.PlayDuration.Milliseconds(),
		FPS:        a.FPS,
		NumFrames:  a.NumFrames,
	}
	for _, st := range a.Initial {
		out.InitialEdges = append(out.InitialEdges, edgeJSON(st))
	}
	for _, f := range a.Frames {
		fj := FrameJSON{Index: f.Index, Time: f.Time}
		for _, ch := range f.Changes {
			fj.Changes = append(fj.Changes, edgeJSON(ch))
		}
		out.Frames = append(out.Frames, fj)
	}
	return out
}

// WriteAnimationJSON writes the animation as indented JSON.
func WriteAnimationJSON(w io.Writer, a *tamp.Animation) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ExportAnimation(a))
}

func edgeJSON(st tamp.EdgeFrameState) EdgeJSON {
	return EdgeJSON{
		From:    st.Edge.From.String(),
		To:      st.Edge.To.String(),
		Count:   st.Count,
		MaxEver: st.MaxEver,
		Color:   st.Color.String(),
		Ups:     st.Ups,
		Downs:   st.Downs,
	}
}
