package viz

import (
	"fmt"
	"strings"
	"time"

	"rex/internal/core/tamp"
)

// SVG renders a static TAMP picture to an SVG document using the built-in
// layered layout. Edge stroke widths are proportional to the fraction of
// prefixes carried.
func SVG(p *tamp.Picture) string {
	l := ComputeLayout(p)
	var b strings.Builder
	svgHeader(&b, l.Width, l.Height)
	fmt.Fprintf(&b, `<text x="%.0f" y="18" font-size="13" font-weight="bold">%s — %d prefixes</text>`+"\n",
		marginX, escape(p.Site), p.Total)
	for _, e := range p.Edges {
		from, okF := l.Pos[e.From]
		to, okT := l.Pos[e.To]
		if !okF || !okT {
			continue
		}
		width := 1 + 8*e.Fraction
		fmt.Fprintf(&b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="black" stroke-width="%.2f"/>`+"\n",
			from.X+55, from.Y, to.X-55, to.Y, width)
		midX, midY := (from.X+to.X)/2, (from.Y+to.Y)/2-4
		fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" font-size="9" text-anchor="middle">%d (%.0f%%)</text>`+"\n",
			midX, midY, e.Weight, 100*e.Fraction)
	}
	for _, n := range p.Nodes {
		drawNode(&b, n.ID, l.Pos[n.ID], "white")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// AnimationFrameSVG renders one frame of an animation in the style of the
// paper's Figure 3: the graph with per-edge colors and gray max shadows,
// an animation clock, and — when selected is non-zero — a prefix-count
// impulse plot for the selected edge.
func AnimationFrameSVG(a *tamp.Animation, frame int, selected tamp.EdgeRef) string {
	states := a.StateAt(frame)
	pic := pictureFromStates(a.Site, states)
	l := ComputeLayout(pic)

	plotH := 0.0
	if selected != (tamp.EdgeRef{}) {
		plotH = 120
	}
	var b strings.Builder
	svgHeader(&b, l.Width, l.Height+40+plotH)

	// Edges with color and gray shadow.
	stateOf := make(map[tamp.EdgeRef]tamp.EdgeFrameState, len(states))
	maxCount := 1
	for _, st := range states {
		stateOf[st.Edge] = st
		if st.MaxEver > maxCount {
			maxCount = st.MaxEver
		}
	}
	for _, e := range pic.Edges {
		from, okF := l.Pos[e.From]
		to, okT := l.Pos[e.To]
		if !okF || !okT {
			continue
		}
		st := stateOf[tamp.EdgeRef{From: e.From, To: e.To}]
		// Gray shadow: the largest prefix count the edge ever carried.
		if st.MaxEver > st.Count {
			shadowW := 1 + 10*float64(st.MaxEver)/float64(maxCount)
			fmt.Fprintf(&b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#bbbbbb" stroke-width="%.2f"/>`+"\n",
				from.X+55, from.Y, to.X-55, to.Y, shadowW)
		}
		if st.Count > 0 || st.Color != tamp.ColorBlack {
			w := 1 + 10*float64(st.Count)/float64(maxCount)
			fmt.Fprintf(&b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="%s" stroke-width="%.2f"/>`+"\n",
				from.X+55, from.Y, to.X-55, to.Y, colorHex(st.Color), w)
		}
		midX, midY := (from.X+to.X)/2, (from.Y+to.Y)/2-4
		fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" font-size="9" text-anchor="middle">%d</text>`+"\n", midX, midY, st.Count)
	}
	for _, n := range pic.Nodes {
		drawNode(&b, n.ID, l.Pos[n.ID], "white")
	}

	// Animation clock: time into the incident.
	clock := a.FrameTime(frame).Sub(a.Start)
	fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" font-size="12">t+%s (frame %d/%d)</text>`+"\n",
		marginX, l.Height+20, formatClock(clock), frame+1, a.NumFrames)

	// Selected-edge prefix plot.
	if plotH > 0 {
		series := a.EdgeSeries(selected)
		plotTop := l.Height + 40
		fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" font-size="10">%s prefixes over time</text>`+"\n",
			marginX, plotTop-6, escape(selected.String()))
		maxV := 1
		for _, v := range series {
			if v > maxV {
				maxV = v
			}
		}
		w := l.Width - 2*marginX
		var pts []string
		for i, v := range series {
			x := marginX + w*float64(i)/float64(len(series)-1)
			y := plotTop + (plotH-30)*(1-float64(v)/float64(maxV))
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="black" stroke-width="1"/>`+"\n",
			strings.Join(pts, " "))
		// Cursor at the current frame.
		cx := marginX + w*float64(frame+1)/float64(len(series)-1)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="red" stroke-width="1"/>`+"\n",
			cx, plotTop, cx, plotTop+plotH-30)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// pictureFromStates builds a minimal picture (nodes+edges, unpruned) from
// animation edge states so frames can reuse the layout engine.
func pictureFromStates(site string, states []tamp.EdgeFrameState) *tamp.Picture {
	pic := &tamp.Picture{Site: site}
	depth := map[tamp.NodeID]int{}
	// BFS depths from the root node over state edges.
	adj := map[tamp.NodeID][]tamp.NodeID{}
	for _, st := range states {
		adj[st.Edge.From] = append(adj[st.Edge.From], st.Edge.To)
	}
	root := tamp.RootNode(site)
	depth[root] = 0
	queue := []tamp.NodeID{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, to := range adj[n] {
			if _, seen := depth[to]; !seen {
				depth[to] = depth[n] + 1
				queue = append(queue, to)
			}
		}
	}
	for id, d := range depth {
		pic.Nodes = append(pic.Nodes, tamp.PictureNode{ID: id, Depth: d})
	}
	sortPictureNodes(pic.Nodes)
	for _, st := range states {
		d, ok := depth[st.Edge.From]
		if !ok {
			continue
		}
		pic.Edges = append(pic.Edges, tamp.PictureEdge{
			From: st.Edge.From, To: st.Edge.To,
			Weight: st.Count, MaxEver: st.MaxEver, Depth: d,
		})
	}
	return pic
}

func sortPictureNodes(nodes []tamp.PictureNode) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && pictureNodeLess(nodes[j], nodes[j-1]); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

func pictureNodeLess(a, b tamp.PictureNode) bool {
	if a.Depth != b.Depth {
		return a.Depth < b.Depth
	}
	if a.ID.Kind != b.ID.Kind {
		return a.ID.Kind < b.ID.Kind
	}
	return a.ID.Name < b.ID.Name
}

func svgHeader(b *strings.Builder, w, h float64) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", w, h)
}

func drawNode(b *strings.Builder, id tamp.NodeID, at Point, fill string) {
	label := id.String()
	w := 9.0*float64(len(label)) + 14
	if w < 50 {
		w = 50
	}
	if id.Kind == tamp.KindRoot || id.Kind == tamp.KindRouter {
		fmt.Fprintf(b, `<rect x="%.0f" y="%.0f" width="%.0f" height="22" fill="%s" stroke="black"/>`+"\n",
			at.X-w/2, at.Y-11, w, fill)
	} else {
		fmt.Fprintf(b, `<ellipse cx="%.0f" cy="%.0f" rx="%.0f" ry="12" fill="%s" stroke="black"/>`+"\n",
			at.X, at.Y, w/2, fill)
	}
	fmt.Fprintf(b, `<text x="%.0f" y="%.0f" font-size="10" text-anchor="middle">%s</text>`+"\n",
		at.X, at.Y+3, escape(label))
}

func colorHex(c tamp.EdgeColor) string {
	switch c {
	case tamp.ColorBlue:
		return "#2255cc"
	case tamp.ColorGreen:
		return "#22aa44"
	case tamp.ColorYellow:
		return "#ddbb00"
	default:
		return "black"
	}
}

func formatClock(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
