package viz

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"rex/internal/core/tamp"
)

// bigPicture builds a picture from a few hundred routes inserted in a
// shuffled order, so any map-iteration dependence in the graph, pruner
// or renderers would have plenty of surface to show through.
func bigPicture(t *testing.T, seed int64) *tamp.Picture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type route struct {
		router, nexthop string
		asns            []uint32
		prefix          netip.Prefix
	}
	var routes []route
	for r := 0; r < 6; r++ {
		router := fmt.Sprintf("10.0.%d.1", r)
		nexthop := fmt.Sprintf("10.1.%d.1", r%3)
		for i := 0; i < 40; i++ {
			routes = append(routes, route{
				router: router, nexthop: nexthop,
				asns:   []uint32{uint32(100 + r%4), uint32(200 + i%5)},
				prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(20 + r), byte(i), 0, 0}), 16),
			})
		}
	}
	rng.Shuffle(len(routes), func(i, j int) { routes[i], routes[j] = routes[j], routes[i] })
	g := tamp.New("site")
	for _, rt := range routes {
		g.AddRoute(tamp.RouteEntry{
			Router:  rt.router,
			Nexthop: netip.MustParseAddr(rt.nexthop),
			ASPath:  rt.asns,
			Prefix:  rt.prefix,
		})
	}
	return g.Snapshot(tamp.PruneOptions{KeepDepth: 3})
}

// TestRenderDeterminism pins the contract the serve tier's render cache
// and the fleet -check differ both depend on: rendering the same
// Picture repeatedly must produce byte-identical SVG, DOT and JSON. A
// future map-iteration regression in any renderer would flake this test
// long before it silently corrupted cache hits.
func TestRenderDeterminism(t *testing.T) {
	pics := []*tamp.Picture{
		testPicture(t),
		bigPicture(t, 1),
		bigPicture(t, 2),
		{Site: "empty"}, // degenerate: no nodes, no edges
	}
	renders := map[string]func(p *tamp.Picture) []byte{
		"svg":   func(p *tamp.Picture) []byte { return []byte(SVG(p)) },
		"dot":   func(p *tamp.Picture) []byte { return []byte(DOT(p, DOTOptions{ShowPercent: true})) },
		"json":  JSON,
		"ascii": func(p *tamp.Picture) []byte { return []byte(ASCII(p)) },
	}
	for pi, p := range pics {
		for name, render := range renders {
			first := render(p)
			if len(first) == 0 {
				t.Fatalf("picture %d: %s render is empty", pi, name)
			}
			for i := 0; i < 20; i++ {
				if got := render(p); !bytes.Equal(got, first) {
					t.Fatalf("picture %d: %s render differs between call 0 and call %d", pi, name, i+1)
				}
			}
		}
	}
}

// TestRenderDeterminismAcrossBuilds re-derives the same logical picture
// from independently built graphs (different insertion orders) and
// requires identical renders: picture contents must be a pure function
// of the route set, not of construction history.
func TestRenderDeterminismAcrossBuilds(t *testing.T) {
	a := bigPicture(t, 3)
	b := bigPicture(t, 4) // same routes, different shuffle
	if !bytes.Equal(JSON(a), JSON(b)) {
		t.Fatal("JSON render depends on graph insertion order")
	}
	if SVG(a) != SVG(b) {
		t.Fatal("SVG render depends on graph insertion order")
	}
	if DOT(a, DOTOptions{}) != DOT(b, DOTOptions{}) {
		t.Fatal("DOT render depends on graph insertion order")
	}
}

// TestPictureJSONRoundTrip pins the restore path the serving tier's
// degraded mode uses: ExportPicture → PictureFromJSON must preserve
// every render-relevant field, so a snapshot restored from disk renders
// the same SVG/DOT as the live picture it was saved from.
func TestPictureJSONRoundTrip(t *testing.T) {
	p := bigPicture(t, 5)
	back := PictureFromJSON(ExportPicture(p))
	if got, want := SVG(back), SVG(p); got != want {
		t.Fatal("SVG render changed across a JSON round-trip")
	}
	if got, want := DOT(back, DOTOptions{ShowPercent: true}), DOT(p, DOTOptions{ShowPercent: true}); got != want {
		t.Fatal("DOT render changed across a JSON round-trip")
	}
	if !bytes.Equal(JSON(back), JSON(p)) {
		t.Fatal("JSON render changed across a JSON round-trip")
	}
}
