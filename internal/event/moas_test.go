package event

import (
	"net/netip"
	"testing"
	"time"
)

func TestOriginConflicts(t *testing.T) {
	mk := func(typ Type, prefix string, asns ...uint32) Event {
		e := mkEvent(typ, 0, "10.0.0.1", prefix, asns...)
		return e
	}
	s := Stream{
		mk(Announce, "20.1.0.0/16", 11423, 209, 5000), // true origin
		mk(Announce, "20.1.0.0/16", 11423, 666),       // hijack!
		mk(Announce, "20.1.0.0/16", 11423, 209, 5000), // back
		mk(Announce, "20.2.0.0/16", 11423, 209, 5001), // consistent
		mk(Withdraw, "20.3.0.0/16", 11423, 777),       // withdrawal ignored
		mk(Announce, "20.3.0.0/16", 11423, 888),
	}
	conflicts := OriginConflicts(s)
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	c := conflicts[0]
	if c.Prefix.String() != "20.1.0.0/16" || c.Events != 3 {
		t.Errorf("conflict = %+v", c)
	}
	if len(c.Origins) != 2 || c.Origins[0] != 666 || c.Origins[1] != 5000 {
		t.Errorf("origins = %v", c.Origins)
	}
}

func TestOriginConflictsIgnoresBare(t *testing.T) {
	s := Stream{
		{Time: time.Now(), Type: Announce, Peer: netip.MustParseAddr("10.0.0.1"),
			Prefix: netip.MustParsePrefix("20.1.0.0/16")}, // no attrs
	}
	if got := OriginConflicts(s); got != nil {
		t.Errorf("bare announce conflicted: %v", got)
	}
	if got := OriginConflicts(nil); got != nil {
		t.Errorf("nil stream: %v", got)
	}
}
