// Package event defines the BGP event stream that drives the paper's
// algorithms: BGP UPDATE messages flattened to one event per prefix, with
// withdrawals *augmented* by the path attributes of the route being
// withdrawn (recovered from the collector's per-peer Adj-RIB-In, paper
// §II). The package also provides text and binary stream codecs and the
// event-rate analysis behind Figure 8 (spike and low-grade "grass"
// detection).
package event

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"rex/internal/bgp"
)

// Type distinguishes announcements from withdrawals.
type Type uint8

// Event types.
const (
	Announce Type = 1
	Withdraw Type = 2
)

// String returns "A" or "W", the prefix letters used in the paper's
// Figure 4 listing.
func (t Type) String() string {
	switch t {
	case Announce:
		return "A"
	case Withdraw:
		return "W"
	default:
		return "?"
	}
}

// Event is one BGP routing event: a route announcement or withdrawal from
// a peer for a prefix. For withdrawals, Attrs carries the attributes of
// the route that was withdrawn — BGP itself does not put them on the wire;
// the collector recovers them from its Adj-RIB-In.
type Event struct {
	Time   time.Time
	Type   Type
	Peer   netip.Addr
	Prefix netip.Prefix
	Attrs  *bgp.PathAttrs
}

// Nexthop returns the event's BGP nexthop (zero Addr if attributes are
// missing).
func (e *Event) Nexthop() netip.Addr {
	if e.Attrs == nil {
		return netip.Addr{}
	}
	return e.Attrs.Nexthop
}

// ASPath returns the event's AS path (nil if attributes are missing).
func (e *Event) ASPath() bgp.ASPath {
	if e.Attrs == nil {
		return nil
	}
	return e.Attrs.ASPath
}

// String renders the event in the Figure 4 style.
func (e *Event) String() string {
	return fmt.Sprintf("%s %v NEXT_HOP: %v ASPATH: %v PREFIX: %v",
		e.Type, e.Peer, e.Nexthop(), e.ASPath(), e.Prefix)
}

// Stream is an ordered sequence of events. Events are conventionally
// time-ordered but the analysis algorithms do not depend on it (Stemming
// is temporally independent by design, paper §III-B).
type Stream []Event

// TimeRange returns the first and last event timestamps. ok is false for
// an empty stream.
func (s Stream) TimeRange() (first, last time.Time, ok bool) {
	if len(s) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first, last = s[0].Time, s[0].Time
	for _, e := range s[1:] {
		if e.Time.Before(first) {
			first = e.Time
		}
		if e.Time.After(last) {
			last = e.Time
		}
	}
	return first, last, true
}

// Window returns the sub-stream of events with from <= Time < to,
// preserving order.
func (s Stream) Window(from, to time.Time) Stream {
	out := make(Stream, 0, len(s)/4)
	for _, e := range s {
		if !e.Time.Before(from) && e.Time.Before(to) {
			out = append(out, e)
		}
	}
	return out
}

// SortByTime sorts the stream in place by timestamp (stable, so events
// sharing a timestamp keep their relative order).
func (s Stream) SortByTime() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Time.Before(s[j].Time) })
}

// Prefixes returns the distinct prefixes appearing in the stream, in first
// appearance order.
func (s Stream) Prefixes() []netip.Prefix {
	seen := make(map[netip.Prefix]struct{}, 64)
	var out []netip.Prefix
	for _, e := range s {
		if _, ok := seen[e.Prefix]; !ok {
			seen[e.Prefix] = struct{}{}
			out = append(out, e.Prefix)
		}
	}
	return out
}

// FilterPrefixes returns the events whose prefix is in the given set.
func (s Stream) FilterPrefixes(set map[netip.Prefix]struct{}) Stream {
	out := make(Stream, 0, len(s)/4)
	for _, e := range s {
		if _, ok := set[e.Prefix]; ok {
			out = append(out, e)
		}
	}
	return out
}

// Augment fills in missing withdrawal attributes offline, the way the
// collector does live: each withdrawal without attributes receives the
// attributes of the last announcement seen for the same (peer, prefix)
// pair. The recovered attributes stay associated with the pair until the
// next announcement replaces them, so a duplicate withdrawal — common in
// real BGP churn, where a router re-sends the withdrawal before the
// first one ages out — recovers the same attributes instead of nil. Use
// after reading a wire-faithful source such as an MRT update file. The
// input is not modified; the result shares attribute pointers.
func Augment(s Stream) Stream {
	type key struct {
		peer   netip.Addr
		prefix netip.Prefix
	}
	last := make(map[key]*bgp.PathAttrs, len(s)/4)
	out := make(Stream, len(s))
	for i, e := range s {
		k := key{peer: e.Peer, prefix: e.Prefix}
		switch e.Type {
		case Announce:
			last[k] = e.Attrs
		case Withdraw:
			if e.Attrs == nil {
				e.Attrs = last[k]
			}
		}
		out[i] = e
	}
	return out
}
