package event

import (
	"testing"
	"time"
)

// TestSpikesFractionalMAD: an even-length series has a half-integral
// median, so every absolute deviation carries a 0.5 fraction. Truncating
// deviations to int (the old bug) shaved that fraction off, halved the
// MAD, and flagged buckets that sit below the real median+k·MAD
// threshold.
func TestSpikesFractionalMAD(t *testing.T) {
	// Sorted counts [0,1,1,2,3,5]: median 1.5, deviations
	// [1.5 .5 .5 1.5 3.5 .5], MAD 1.0 — truncated-int MAD would be 0.5.
	rs := RateSeries{Start: t0, Bucket: time.Minute, Counts: []int{0, 1, 2, 3, 5, 1}}
	// k=4: true threshold 1.5+4·1.0 = 5.5. The 5-bucket is below it; the
	// truncated threshold 1.5+4·0.5 = 3.5 would spuriously flag it.
	if spikes := rs.Spikes(4); len(spikes) != 0 {
		t.Errorf("bucket below median+k*MAD flagged as spike: %+v", spikes)
	}
	// Positive control: a 6-bucket clears the true threshold.
	rs.Counts = []int{0, 1, 2, 3, 6, 1}
	spikes := rs.Spikes(4)
	if len(spikes) != 1 || spikes[0].Peak != 6 {
		t.Errorf("genuine spike missed: %+v", spikes)
	}
}

// TestSpikesFlatSeriesBoundary: on a perfectly flat series (MAD 0) the
// documented rule is that a bucket spikes when it exceeds twice the
// median. The old threshold 2*med+1 with a strict > silently demanded
// c >= 2*med+2, so the boundary count 2*med+1 — the smallest count the
// doc promises to flag — was missed.
func TestSpikesFlatSeriesBoundary(t *testing.T) {
	// Sorted counts are 2 everywhere except one 5 and one 4: median 2,
	// deviations almost all 0 so MAD 0, flat-series rule applies.
	rs := RateSeries{
		Start:  t0,
		Bucket: time.Minute,
		Counts: []int{2, 2, 2, 5, 2, 2, 4, 2, 2, 2},
	}
	spikes := rs.Spikes(8)
	// 5 = 2*med+1 exceeds twice the median and must be flagged; the old
	// threshold needed 6. 4 = 2*med does not exceed it and must not be.
	if len(spikes) != 1 {
		t.Fatalf("flat series spikes = %+v, want exactly the 5-bucket", spikes)
	}
	if spikes[0].Peak != 5 || spikes[0].Total != 5 {
		t.Errorf("spike = %+v, want peak 5", spikes[0])
	}
	if want := t0.Add(3 * time.Minute); !spikes[0].Start.Equal(want) {
		t.Errorf("spike start = %v, want %v", spikes[0].Start, want)
	}
}

// TestRateOutlierBucketCap: one corrupt timestamp far in the future must
// not make Rate allocate a counts slice spanning the gap. The series is
// capped and the outlier is clamped into the last bucket.
func TestRateOutlierBucketCap(t *testing.T) {
	var s Stream
	for i := 0; i < 100; i++ {
		s = append(s, mkEvent(Announce, time.Duration(i)*time.Second, "10.0.0.1", "10.1.0.0/16", 1))
	}
	// The corrupt event: ten years past everything else. At minute
	// buckets that is ~5.3M buckets — far beyond the cap.
	s = append(s, mkEvent(Withdraw, 10*365*24*time.Hour, "10.0.0.1", "10.2.0.0/16", 1))

	rs := Rate(s, time.Minute)
	if len(rs.Counts) != MaxRateBuckets {
		t.Fatalf("buckets = %d, want capped at %d", len(rs.Counts), MaxRateBuckets)
	}
	if got := rs.Counts[0] + rs.Counts[1]; got != 100 {
		t.Errorf("head buckets hold %d events, want 100", got)
	}
	if last := rs.Counts[len(rs.Counts)-1]; last != 1 {
		t.Errorf("outlier not clamped into edge bucket: last = %d", last)
	}
	total := 0
	for _, c := range rs.Counts {
		total += c
	}
	if total != len(s) {
		t.Errorf("events lost to clamping: counted %d of %d", total, len(s))
	}
}

// TestRateShortSpanUncapped pins the normal path: spans under the cap
// keep exact per-bucket resolution.
func TestRateShortSpanUncapped(t *testing.T) {
	s := Stream{
		mkEvent(Announce, 0, "10.0.0.1", "10.1.0.0/16", 1),
		mkEvent(Announce, 90*time.Minute, "10.0.0.1", "10.1.0.0/16", 1),
	}
	rs := Rate(s, time.Minute)
	if len(rs.Counts) != 91 {
		t.Errorf("buckets = %d, want 91", len(rs.Counts))
	}
	if rs.Counts[0] != 1 || rs.Counts[90] != 1 {
		t.Errorf("counts misplaced: %v %v", rs.Counts[0], rs.Counts[90])
	}
}

func TestMedianFloat(t *testing.T) {
	if m := medianFloat([]float64{3.5, 1.5, 2.5}); m != 2.5 {
		t.Errorf("odd medianFloat = %v", m)
	}
	if m := medianFloat([]float64{0.5, 1.5, 0.5, 1.5}); m != 1.0 {
		t.Errorf("even medianFloat = %v", m)
	}
	if m := medianFloat(nil); m != 0 {
		t.Errorf("empty medianFloat = %v", m)
	}
}
