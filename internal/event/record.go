package event

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"rex/internal/bgp"
)

// Record codec: one self-contained binary event, the payload format of
// the durability journal (internal/journal). Unlike the REXEV1 stream
// codec above it has no stream magic — framing, checksumming and
// sequencing belong to the container — and it carries IPv6 peers and
// prefixes, which the fixed-width stream layout cannot:
//
//	type(1) flags(1) unixnano(8) peer(4|16) bits(1) prefixaddr(4|16) [nexthop6(16)] attrlen(2) attrs
//
// flags bit 0 marks a 16-byte peer address, bit 1 a 16-byte prefix
// address; 4-in-6 mapped addresses keep their 16-byte form so decoding
// reproduces the original address exactly. IPv6 zone names are the one
// lossy spot: they are dropped (a BGP peering address never carries
// one). Attributes use the BGP wire encoding with 4-octet ASNs, so the
// full attribute set — Origin included, which the text codec drops —
// survives a round trip. The one attribute that format cannot hold is
// a non-IPv4 NEXT_HOP (RFC 4271's attribute 3 is four bytes; IPv6
// nexthops ride MP_REACH_NLRI on the wire), so flags bit 2 hoists it
// into a 16-byte record field and the attribute block is written with
// the nexthop cleared.

const (
	recFlagPeer6    = 1 << 0
	recFlagPrefix6  = 1 << 1
	recFlagNexthop6 = 1 << 2

	// minRecordLen is the smallest possible record: IPv4 peer and
	// prefix, no attributes.
	minRecordLen = 1 + 1 + 8 + 4 + 1 + 4 + 2
)

// AppendRecord appends the binary record form of e to dst.
func AppendRecord(dst []byte, e *Event) ([]byte, error) {
	if e.Type != Announce && e.Type != Withdraw {
		return nil, fmt.Errorf("encode record: invalid type %d", e.Type)
	}
	if !e.Peer.IsValid() {
		return nil, fmt.Errorf("encode record: invalid peer")
	}
	if !e.Prefix.IsValid() {
		return nil, fmt.Errorf("encode record: invalid prefix")
	}
	var flags byte
	marshalAttrs, nexthop6 := e.Attrs, netip.Addr{}
	if e.Attrs != nil && e.Attrs.Nexthop.IsValid() && !e.Attrs.Nexthop.Is4() {
		nexthop6 = e.Attrs.Nexthop
		cleared := *e.Attrs
		cleared.Nexthop = netip.Addr{}
		marshalAttrs = &cleared
		flags |= recFlagNexthop6
	}
	attrs, err := bgp.MarshalAttrs(marshalAttrs, true)
	if err != nil {
		return nil, fmt.Errorf("encode record: %w", err)
	}
	if len(attrs) > 0xFFFF {
		return nil, fmt.Errorf("encode record: attribute block too large")
	}
	if !e.Peer.Is4() {
		flags |= recFlagPeer6
	}
	if !e.Prefix.Addr().Is4() {
		flags |= recFlagPrefix6
	}
	dst = append(dst, byte(e.Type), flags)
	dst = binary.BigEndian.AppendUint64(dst, uint64(e.Time.UnixNano()))
	if flags&recFlagPeer6 != 0 {
		a := e.Peer.As16()
		dst = append(dst, a[:]...)
	} else {
		a := e.Peer.As4()
		dst = append(dst, a[:]...)
	}
	dst = append(dst, byte(e.Prefix.Bits()))
	if flags&recFlagPrefix6 != 0 {
		a := e.Prefix.Addr().As16()
		dst = append(dst, a[:]...)
	} else {
		a := e.Prefix.Addr().As4()
		dst = append(dst, a[:]...)
	}
	if flags&recFlagNexthop6 != 0 {
		a := nexthop6.As16()
		dst = append(dst, a[:]...)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
	return append(dst, attrs...), nil
}

// ParseRecord decodes one record produced by AppendRecord. The whole
// input must be consumed: a record travels inside a length-delimited
// frame, so trailing bytes mean corruption, not more data.
func ParseRecord(b []byte) (Event, error) {
	var e Event
	if len(b) < minRecordLen {
		return e, fmt.Errorf("parse record: %d bytes, want >= %d", len(b), minRecordLen)
	}
	e.Type = Type(b[0])
	if e.Type != Announce && e.Type != Withdraw {
		return e, fmt.Errorf("parse record: invalid type %d", b[0])
	}
	flags := b[1]
	if flags&^(recFlagPeer6|recFlagPrefix6|recFlagNexthop6) != 0 {
		return e, fmt.Errorf("parse record: unknown flags %#x", flags)
	}
	e.Time = time.Unix(0, int64(binary.BigEndian.Uint64(b[2:10]))).UTC()
	b = b[10:]
	if flags&recFlagPeer6 != 0 {
		if len(b) < 16 {
			return e, fmt.Errorf("parse record: truncated peer")
		}
		e.Peer = netip.AddrFrom16([16]byte(b[:16]))
		b = b[16:]
	} else {
		e.Peer = netip.AddrFrom4([4]byte(b[:4]))
		b = b[4:]
	}
	if len(b) < 1 {
		return e, fmt.Errorf("parse record: missing prefix length")
	}
	bits := int(b[0])
	b = b[1:]
	var addr netip.Addr
	if flags&recFlagPrefix6 != 0 {
		if len(b) < 16 {
			return e, fmt.Errorf("parse record: truncated prefix")
		}
		addr = netip.AddrFrom16([16]byte(b[:16]))
		b = b[16:]
	} else {
		if len(b) < 4 {
			return e, fmt.Errorf("parse record: truncated prefix")
		}
		addr = netip.AddrFrom4([4]byte(b[:4]))
		b = b[4:]
	}
	if bits > addr.BitLen() {
		return e, fmt.Errorf("parse record: invalid prefix length %d", bits)
	}
	e.Prefix = netip.PrefixFrom(addr, bits)
	var nexthop6 netip.Addr
	if flags&recFlagNexthop6 != 0 {
		if len(b) < 16 {
			return e, fmt.Errorf("parse record: truncated nexthop")
		}
		nexthop6 = netip.AddrFrom16([16]byte(b[:16]))
		if nexthop6.Is4() {
			// An IPv4 nexthop travels inside the attribute block; the
			// hoisted field is for addresses the block cannot hold.
			return e, fmt.Errorf("parse record: hoisted nexthop %v is IPv4", nexthop6)
		}
		b = b[16:]
	}
	if len(b) < 2 {
		return e, fmt.Errorf("parse record: missing attribute length")
	}
	attrLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) != attrLen {
		return e, fmt.Errorf("parse record: %d attribute bytes, header says %d", len(b), attrLen)
	}
	if attrLen > 0 {
		attrs, err := bgp.UnmarshalAttrs(b, true)
		if err != nil {
			return e, fmt.Errorf("parse record: %w", err)
		}
		e.Attrs = attrs
	}
	if flags&recFlagNexthop6 != 0 {
		if e.Attrs == nil {
			return e, fmt.Errorf("parse record: hoisted nexthop without attributes")
		}
		if e.Attrs.Nexthop.IsValid() {
			return e, fmt.Errorf("parse record: nexthop both hoisted and in attributes")
		}
		e.Attrs.Nexthop = nexthop6
	}
	return e, nil
}
