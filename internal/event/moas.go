package event

import (
	"net/netip"
	"sort"
)

// OriginConflict records a prefix announced with more than one origin AS
// within a stream — the multiple-origin-AS (MOAS) signature of the route
// hijacking anomaly class from the paper's introduction ("a BGP router
// announces reachability to prefixes it does not own").
type OriginConflict struct {
	Prefix netip.Prefix
	// Origins are the distinct origin ASes observed, ascending.
	Origins []uint32
	// Events counts the announcements involved.
	Events int
}

// OriginConflicts scans announcements and returns every prefix with
// conflicting origins, sorted by prefix. Withdrawals and events without
// an AS path are ignored.
func OriginConflicts(s Stream) []OriginConflict {
	type stat struct {
		origins map[uint32]struct{}
		events  int
	}
	byPrefix := map[netip.Prefix]*stat{}
	for i := range s {
		e := &s[i]
		if e.Type != Announce || e.Attrs == nil {
			continue
		}
		origin := e.Attrs.ASPath.OriginAS()
		if origin == 0 {
			continue
		}
		st := byPrefix[e.Prefix]
		if st == nil {
			st = &stat{origins: make(map[uint32]struct{}, 2)}
			byPrefix[e.Prefix] = st
		}
		st.origins[origin] = struct{}{}
		st.events++
	}
	var out []OriginConflict
	for p, st := range byPrefix {
		if len(st.origins) < 2 {
			continue
		}
		c := OriginConflict{Prefix: p, Events: st.events}
		for o := range st.origins {
			c.Origins = append(c.Origins, o)
		}
		sort.Slice(c.Origins, func(i, j int) bool { return c.Origins[i] < c.Origins[j] })
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr() != out[j].Prefix.Addr() {
			return out[i].Prefix.Addr().Less(out[j].Prefix.Addr())
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}
