package event

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// TestBinaryReaderSteadyStateAllocs pins the zero-copy decode: the
// record header and attribute wire bytes land in reader-owned scratch,
// so decoding a record allocates only what the event itself must own —
// nothing for attribute-less records, and only the PathAttrs payload
// for records that carry attributes (safe because bgp.UnmarshalAttrs
// copies out of its input; see DESIGN.md).
func TestBinaryReaderSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is not worth it in -short")
	}
	const n = 4096
	bare := Stream{}
	full := Stream{}
	for i := 0; i < n; i++ {
		w := Event{
			Time:   t0.Add(time.Duration(i) * time.Second),
			Type:   Withdraw,
			Peer:   mkEvent(Withdraw, 0, "128.32.1.3", "192.96.10.0/24").Peer,
			Prefix: mkEvent(Withdraw, 0, "128.32.1.3", "192.96.10.0/24").Prefix,
		}
		bare = append(bare, w)
		full = append(full, mkEvent(Announce, time.Duration(i)*time.Second,
			"128.32.1.3", "192.96.10.0/24", 11423, 209, 701))
	}

	measure := func(s Stream) float64 {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, s); err != nil {
			t.Fatal(err)
		}
		d, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Next(); err != nil { // warm the attr scratch
			t.Fatal(err)
		}
		return testing.AllocsPerRun(2000, func() {
			if _, err := d.Next(); err == io.EOF {
				t.Fatal("stream exhausted mid-measurement")
			} else if err != nil {
				t.Fatal(err)
			}
		})
	}

	if avg := measure(bare); avg > 0.05 {
		t.Errorf("attribute-less record decode allocates %.2f/op, want 0", avg)
	}
	avg := measure(full)
	t.Logf("attribute-carrying record decode: %.2f allocs/op", avg)
	// The PathAttrs struct plus its AS-path segment and ASN slices.
	if avg > 6 {
		t.Errorf("attribute-carrying record decode allocates %.2f/op, want <= 6", avg)
	}
}
