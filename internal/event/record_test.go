package event

import (
	"net/netip"
	"testing"
	"time"

	"rex/internal/bgp"
)

// recordSeedEvents is the shared corpus of representative events: both
// types, both address families, empty and set-bearing AS paths,
// sub-second timestamps, absent and maximal attribute blocks.
func recordSeedEvents() []Event {
	t0 := time.Date(2003, 8, 1, 10, 0, 0, 123456789, time.UTC)
	return []Event{
		{
			Time: t0, Type: Announce,
			Peer:   netip.MustParseAddr("128.32.1.3"),
			Prefix: netip.MustParsePrefix("192.96.10.0/24"),
			Attrs: &bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  bgp.Sequence(11423, 209, 701),
				Nexthop: netip.MustParseAddr("128.32.0.70"),
				LocalPref: 80, HasLocalPref: true,
				MED: 10, HasMED: true,
				Communities: []bgp.Community{bgp.MakeCommunity(11423, 65300), bgp.MakeCommunity(11423, 65350)},
			},
		},
		{
			// Withdrawal without attributes (never augmented).
			Time: t0.Add(time.Microsecond), Type: Withdraw,
			Peer:   netip.MustParseAddr("128.32.1.200"),
			Prefix: netip.MustParsePrefix("12.2.41.0/24"),
		},
		{
			// IPv6 peer and prefix, AS_SET on the path.
			Time: t0.Add(time.Second), Type: Announce,
			Peer:   netip.MustParseAddr("2001:db8::1"),
			Prefix: netip.MustParsePrefix("2001:db8:1000::/36"),
			Attrs: &bgp.PathAttrs{
				ASPath: bgp.ASPath{
					{Type: bgp.SegmentSequence, ASNs: []uint32{11423}},
					{Type: bgp.SegmentSet, ASNs: []uint32{7018, 1239}},
				},
				Nexthop: netip.MustParseAddr("2001:db8::ff"),
			},
		},
		{
			// 4-in-6 mapped peer: must decode back to the mapped form.
			Time: t0, Type: Announce,
			Peer:   netip.MustParseAddr("::ffff:10.1.2.3"),
			Prefix: netip.MustParsePrefix("0.0.0.0/0"),
			Attrs:  &bgp.PathAttrs{ASPath: nil, Nexthop: netip.MustParseAddr("10.0.0.1")},
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i, e := range recordSeedEvents() {
		rec, err := AppendRecord(nil, &e)
		if err != nil {
			t.Fatalf("event %d: encode: %v", i, err)
		}
		got, err := ParseRecord(rec)
		if err != nil {
			t.Fatalf("event %d: decode: %v", i, err)
		}
		if !eventsEquivalent(&e, &got) {
			t.Errorf("event %d round trip:\n  in:  %+v\n  out: %+v", i, e, got)
		}
		// A record must reject trailing garbage: its container frames it.
		if _, err := ParseRecord(append(rec, 0)); err == nil {
			t.Errorf("event %d: trailing byte accepted", i)
		}
		if len(rec) > minRecordLen {
			if _, err := ParseRecord(rec[:len(rec)-1]); err == nil {
				t.Errorf("event %d: truncated record accepted", i)
			}
		}
	}
}

func TestRecordRejectsInvalid(t *testing.T) {
	e := recordSeedEvents()[0]
	bad := e
	bad.Type = 9
	if _, err := AppendRecord(nil, &bad); err == nil {
		t.Error("invalid type accepted")
	}
	bad = e
	bad.Peer = netip.Addr{}
	if _, err := AppendRecord(nil, &bad); err == nil {
		t.Error("zero peer accepted")
	}
	bad = e
	bad.Prefix = netip.Prefix{}
	if _, err := AppendRecord(nil, &bad); err == nil {
		t.Error("zero prefix accepted")
	}
	rec, err := AppendRecord(nil, &e)
	if err != nil {
		t.Fatal(err)
	}
	rec[1] |= 0x80 // unknown flag bit
	if _, err := ParseRecord(rec); err == nil {
		t.Error("unknown flags accepted")
	}
}
