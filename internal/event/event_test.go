package event

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"time"

	"rex/internal/bgp"
)

var t0 = time.Date(2003, 8, 1, 10, 0, 0, 0, time.UTC)

func mkEvent(typ Type, offset time.Duration, peer, prefix string, asns ...uint32) Event {
	return Event{
		Time:   t0.Add(offset),
		Type:   typ,
		Peer:   netip.MustParseAddr(peer),
		Prefix: netip.MustParsePrefix(prefix),
		Attrs: &bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Sequence(asns...),
			Nexthop: netip.MustParseAddr("128.32.0.70"),
		},
	}
}

func TestEventString(t *testing.T) {
	e := mkEvent(Withdraw, 0, "128.32.1.3", "192.96.10.0/24", 11423, 209, 701, 1299, 5713)
	s := e.String()
	for _, want := range []string{"W ", "128.32.1.3", "128.32.0.70", "11423 209 701 1299 5713", "192.96.10.0/24"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	bare := Event{Type: Announce}
	if bare.Nexthop().IsValid() || bare.ASPath() != nil {
		t.Error("nil-attrs accessors")
	}
	if Type(9).String() != "?" {
		t.Error("unknown type string")
	}
}

func TestStreamTimeRangeAndWindow(t *testing.T) {
	s := Stream{
		mkEvent(Announce, 2*time.Minute, "10.0.0.1", "10.1.0.0/16", 1),
		mkEvent(Announce, 0, "10.0.0.1", "10.2.0.0/16", 1),
		mkEvent(Withdraw, 5*time.Minute, "10.0.0.1", "10.1.0.0/16", 1),
	}
	first, last, ok := s.TimeRange()
	if !ok || !first.Equal(t0) || !last.Equal(t0.Add(5*time.Minute)) {
		t.Errorf("TimeRange = %v..%v ok=%v", first, last, ok)
	}
	w := s.Window(t0, t0.Add(5*time.Minute))
	if len(w) != 2 {
		t.Errorf("Window = %d events", len(w))
	}
	var empty Stream
	if _, _, ok := empty.TimeRange(); ok {
		t.Error("empty TimeRange ok")
	}
}

func TestStreamSortAndPrefixes(t *testing.T) {
	s := Stream{
		mkEvent(Announce, 3*time.Minute, "10.0.0.1", "10.2.0.0/16", 1),
		mkEvent(Announce, 1*time.Minute, "10.0.0.1", "10.1.0.0/16", 1),
		mkEvent(Withdraw, 2*time.Minute, "10.0.0.1", "10.2.0.0/16", 1),
	}
	s.SortByTime()
	if !s[0].Time.Equal(t0.Add(time.Minute)) || s[2].Type != Announce {
		t.Errorf("sort wrong: %v", s)
	}
	prefixes := s.Prefixes()
	if len(prefixes) != 2 || prefixes[0].String() != "10.1.0.0/16" {
		t.Errorf("Prefixes = %v", prefixes)
	}
	set := map[netip.Prefix]struct{}{netip.MustParsePrefix("10.2.0.0/16"): {}}
	if got := s.FilterPrefixes(set); len(got) != 2 {
		t.Errorf("FilterPrefixes = %d", len(got))
	}
}

func fullAttrsEvent() Event {
	e := mkEvent(Announce, 0, "128.32.1.200", "62.80.64.0/20", 11423, 209, 1239, 5400, 15410)
	e.Attrs.HasLocalPref, e.Attrs.LocalPref = true, 80
	e.Attrs.HasMED, e.Attrs.MED = true, 10
	e.Attrs.Communities = []bgp.Community{bgp.MakeCommunity(11423, 65300), bgp.MakeCommunity(11423, 65350)}
	return e
}

func TestTextCodecRoundTrip(t *testing.T) {
	events := Stream{
		fullAttrsEvent(),
		mkEvent(Withdraw, time.Second, "128.32.1.3", "192.96.10.0/24", 11423, 209, 701, 1299, 5713),
		{Time: t0, Type: Withdraw, Peer: netip.MustParseAddr("10.0.0.1"), Prefix: netip.MustParsePrefix("10.0.0.0/8")}, // no attrs
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireStreamsEqual(t, events, back)
}

func TestTextCodecSkipsComments(t *testing.T) {
	text := "# comment\n\nA 2003-08-01T10:00:00.000000Z 10.0.0.1 NEXT_HOP 10.0.0.9 ASPATH \"1 2\" PREFIX 10.0.0.0/8\n"
	s, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 || s[0].Attrs.ASPath.String() != "1 2" {
		t.Errorf("got %v", s)
	}
}

func TestParseTextErrors(t *testing.T) {
	bad := []string{
		"",
		"X 2003-08-01T10:00:00.000000Z 10.0.0.1 PREFIX 10.0.0.0/8 Z 1",
		"A not-a-time 10.0.0.1 NEXT_HOP 10.0.0.9 PREFIX 10.0.0.0/8",
		"A 2003-08-01T10:00:00.000000Z nope NEXT_HOP 10.0.0.9 PREFIX 10.0.0.0/8",
		`A 2003-08-01T10:00:00.000000Z 10.0.0.1 ASPATH "1 2 PREFIX 10.0.0.0/8`,
		"A 2003-08-01T10:00:00.000000Z 10.0.0.1 NEXT_HOP 10.0.0.9 LP x PREFIX 10.0.0.0/8",
		"A 2003-08-01T10:00:00.000000Z 10.0.0.1 NEXT_HOP 10.0.0.9 BOGUS 1 PREFIX 10.0.0.0/8",
		"A 2003-08-01T10:00:00.000000Z 10.0.0.1 NEXT_HOP 10.0.0.9 MED 1",
		"A 2003-08-01T10:00:00.000000Z 10.0.0.1 NEXT_HOP 10.0.0.9 PREFIX",
	}
	for _, line := range bad {
		if _, err := ParseText(line); err == nil {
			t.Errorf("ParseText(%q) succeeded", line)
		}
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	events := Stream{
		fullAttrsEvent(),
		mkEvent(Withdraw, 123456*time.Microsecond, "128.32.1.3", "192.96.10.0/24", 11423, 209),
		{Time: t0, Type: Withdraw, Peer: netip.MustParseAddr("10.0.0.1"), Prefix: netip.MustParsePrefix("10.0.0.0/8")},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireStreamsEqual(t, events, back)
}

func TestBinaryCodecErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("garbage!")); err == nil {
		t.Error("bad magic succeeded")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty input succeeded")
	}
	// Truncated record.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Stream{fullAttrsEvent()}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated record succeeded")
	}
}

func TestBinaryCodecLargeStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := make(Stream, 5000)
	for i := range events {
		typ := Announce
		if rng.Intn(3) == 0 {
			typ = Withdraw
		}
		events[i] = mkEvent(typ, time.Duration(i)*time.Second,
			"10.0.0.1", netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(rng.Intn(255)), byte(rng.Intn(255)), 0}), 24).String(),
			uint32(rng.Intn(60000)+1), uint32(rng.Intn(60000)+1))
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("len = %d, want %d", len(back), len(events))
	}
	// Spot-check a few.
	for _, i := range []int{0, 1234, 4999} {
		if !back[i].Time.Equal(events[i].Time) || back[i].Prefix != events[i].Prefix || !back[i].Attrs.Equal(events[i].Attrs) {
			t.Errorf("event %d mismatch", i)
		}
	}
}

func requireStreamsEqual(t *testing.T, want, got Stream) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("stream length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if !g.Time.Equal(w.Time) || g.Type != w.Type || g.Peer != w.Peer || g.Prefix != w.Prefix {
			t.Errorf("event %d header mismatch:\n got %v\nwant %v", i, g, w)
		}
		if (g.Attrs == nil) != (w.Attrs == nil) {
			t.Errorf("event %d attrs presence mismatch", i)
			continue
		}
		if w.Attrs != nil && !g.Attrs.Equal(w.Attrs) {
			t.Errorf("event %d attrs:\n got %v\nwant %v", i, g.Attrs, w.Attrs)
		}
	}
}

func TestRateBucketsAndGrass(t *testing.T) {
	var s Stream
	// 10 buckets of 1/minute "grass", plus a 100-event spike in bucket 5.
	for i := 0; i < 10; i++ {
		s = append(s, mkEvent(Announce, time.Duration(i)*time.Minute, "10.0.0.1", "10.1.0.0/16", 1))
	}
	for i := 0; i < 100; i++ {
		s = append(s, mkEvent(Withdraw, 5*time.Minute+time.Duration(i)*100*time.Millisecond, "10.0.0.1", "10.2.0.0/16", 1))
	}
	rs := Rate(s, time.Minute)
	if len(rs.Counts) != 10 {
		t.Fatalf("buckets = %d", len(rs.Counts))
	}
	if rs.Counts[5] != 101 {
		t.Errorf("spike bucket = %d", rs.Counts[5])
	}
	if g := rs.Grass(); g != 1 {
		t.Errorf("Grass = %v", g)
	}
	spikes := rs.Spikes(5)
	if len(spikes) != 1 {
		t.Fatalf("spikes = %v", spikes)
	}
	if spikes[0].Total != 101 || spikes[0].Peak != 101 {
		t.Errorf("spike = %+v", spikes[0])
	}
	if !spikes[0].Start.Equal(t0.Add(5 * time.Minute)) {
		t.Errorf("spike start = %v", spikes[0].Start)
	}
}

func TestRateMultiBucketSpikeAndTail(t *testing.T) {
	var s Stream
	for i := 0; i < 20; i++ {
		s = append(s, mkEvent(Announce, time.Duration(i)*time.Minute, "10.0.0.1", "10.1.0.0/16", 1))
	}
	// Spike spanning the final two buckets (tests close-out at end).
	for i := 0; i < 50; i++ {
		s = append(s, mkEvent(Withdraw, 18*time.Minute+time.Duration(i)*2*time.Second, "10.0.0.1", "10.2.0.0/16", 1))
	}
	rs := Rate(s, time.Minute)
	spikes := rs.Spikes(5)
	if len(spikes) != 1 {
		t.Fatalf("spikes = %+v", spikes)
	}
	if spikes[0].Total != 52 { // 50 spike + 2 grass events inside
		t.Errorf("spike total = %d", spikes[0].Total)
	}
}

func TestRateEmptyAndDefaults(t *testing.T) {
	rs := Rate(nil, 0)
	if len(rs.Counts) != 0 || rs.Grass() != 0 || rs.Spikes(5) != nil {
		t.Errorf("empty rate misbehaves: %+v", rs)
	}
	// Flat series yields no spikes (MAD 0 path).
	var s Stream
	for i := 0; i < 5; i++ {
		s = append(s, mkEvent(Announce, time.Duration(i)*time.Minute, "10.0.0.1", "10.1.0.0/16", 1))
	}
	if got := Rate(s, time.Minute).Spikes(5); len(got) != 0 {
		t.Errorf("flat series spikes = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]int{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]int{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
}

// TestAugmentDuplicateWithdrawal: a repeated withdrawal for the same
// (peer, prefix) — common in real BGP churn — must recover the same
// attributes as the first one. The old code deleted the remembered
// announcement on the first withdrawal, so the duplicate got nil attrs
// and dropped out of attribute-based analysis.
func TestAugmentDuplicateWithdrawal(t *testing.T) {
	ann := mkEvent(Announce, 0, "128.32.1.3", "192.96.10.0/24", 11423, 209)
	w1 := Event{Time: t0.Add(time.Minute), Type: Withdraw, Peer: ann.Peer, Prefix: ann.Prefix}
	w2 := Event{Time: t0.Add(2 * time.Minute), Type: Withdraw, Peer: ann.Peer, Prefix: ann.Prefix}
	aug := Augment(Stream{ann, w1, w2})
	if aug[1].Attrs != ann.Attrs {
		t.Fatalf("first withdrawal attrs = %+v, want the announcement's", aug[1].Attrs)
	}
	if aug[2].Attrs != ann.Attrs {
		t.Fatalf("duplicate withdrawal attrs = %+v, want the announcement's", aug[2].Attrs)
	}

	// A new announcement replaces the remembered attributes, and a
	// withdrawal for a different peer still gets nothing.
	ann2 := mkEvent(Announce, 3*time.Minute, "128.32.1.3", "192.96.10.0/24", 7018)
	w3 := Event{Time: t0.Add(4 * time.Minute), Type: Withdraw, Peer: ann.Peer, Prefix: ann.Prefix}
	other := Event{Time: t0.Add(5 * time.Minute), Type: Withdraw,
		Peer: netip.MustParseAddr("10.9.9.9"), Prefix: ann.Prefix}
	aug = Augment(Stream{ann, w1, ann2, w3, other})
	if aug[3].Attrs != ann2.Attrs {
		t.Errorf("post-reannounce withdrawal attrs = %+v, want the new announcement's", aug[3].Attrs)
	}
	if aug[4].Attrs != nil {
		t.Errorf("unrelated peer's withdrawal got attrs %+v, want nil", aug[4].Attrs)
	}
	// The input stream is never modified.
	if w1.Attrs != nil || w2.Attrs != nil {
		t.Error("Augment modified its input")
	}
}
