package event

import (
	"bytes"
	"testing"
)

// FuzzParseText drives the text codec toward a fixed point: any line
// ParseText accepts must re-encode, the re-encoding must parse, and the
// second encoding must equal the first byte for byte (the first pass is
// allowed to normalize — key order, whitespace, zone offsets — but the
// normal form must be stable). The parsed events themselves must also
// agree, so a field parsed but silently dropped by AppendText (or
// vice versa) is a failure, not an invisible data loss.
func FuzzParseText(f *testing.F) {
	seeds := []string{
		// The paper's Figure 4 listing shape.
		`W 2003-08-01T10:00:00.000000Z 128.32.1.3 NEXT_HOP 128.32.0.70 ASPATH "11423 209 701" LP 80 MED 10 COMM 11423:65350,11423:65300 PREFIX 192.96.10.0/24`,
		// Odd communities: 0:0, max values, duplicates.
		`A 2003-08-01T10:00:00.000000Z 10.0.0.1 ASPATH "1" COMM 0:0,65535:65535,0:0 PREFIX 10.0.0.0/8`,
		// Empty AS path (locally originated route) and attrs from
		// NEXT_HOP alone.
		`A 2003-08-01T10:00:00.000000Z 10.0.0.1 ASPATH "" PREFIX 10.0.0.0/8`,
		`A 2003-08-01T10:00:00.000000Z 10.0.0.1 NEXT_HOP 10.0.0.2 PREFIX 10.0.0.0/8`,
		// Sub-second timestamps, including the smallest step the
		// microsecond layout can carry.
		`A 1970-01-01T00:00:00.000001Z 10.0.0.1 PREFIX 0.0.0.0/0`,
		`W 2003-08-01T10:00:00.999999Z 128.32.1.3 PREFIX 192.96.10.0/24`,
		// Non-UTC offset: first pass normalizes to Z.
		`A 2003-08-01T12:30:00.500000+02:30 10.0.0.1 PREFIX 10.0.0.0/8`,
		// AS_SET segments and attribute-free withdrawals.
		`A 2003-08-01T10:00:00.000000Z 10.0.0.1 ASPATH "11423 {7018 1239} 701" PREFIX 10.0.0.0/8`,
		`W 2003-08-01T10:00:00.000000Z 10.0.0.1 PREFIX 10.0.0.0/8`,
		// IPv6 peer, nexthop and prefix (with a zone on the peer).
		`A 2003-08-01T10:00:00.000000Z fe80::1%eth0 NEXT_HOP 2001:db8::1 ASPATH "1 2" PREFIX 2001:db8::/32`,
		`A 2003-08-01T10:00:00.000000Z ::ffff:1.2.3.4 PREFIX ::ffff:10.0.0.0/104`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseText(line)
		if err != nil {
			return
		}
		enc1, err := AppendText(nil, &e)
		if err != nil {
			t.Fatalf("parse accepted %q but encode rejected the event: %v", line, err)
		}
		e2, err := ParseText(string(enc1))
		if err != nil {
			t.Fatalf("encoding of parsed %q does not re-parse: %q: %v", line, enc1, err)
		}
		if !eventsEquivalent(&e, &e2) {
			t.Fatalf("event round trip lost data:\n  in:  %+v\n  out: %+v\n  via %q", e, e2, enc1)
		}
		enc2, err := AppendText(nil, &e2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding is not a fixed point:\n  first:  %q\n  second: %q", enc1, enc2)
		}
	})
}

// FuzzParseRecord hammers the binary record decoder with arbitrary
// bytes: it must never panic, and whatever it accepts must survive an
// encode/decode round trip unchanged — the property the journal's
// recovery path depends on.
func FuzzParseRecord(f *testing.F) {
	for _, e := range recordSeedEvents() {
		rec, err := AppendRecord(nil, &e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
		if len(rec) > 0 {
			f.Add(rec[:len(rec)-1]) // truncated tail
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := ParseRecord(data)
		if err != nil {
			return
		}
		enc, err := AppendRecord(nil, &e)
		if err != nil {
			t.Fatalf("decode accepted %x but encode rejected: %v", data, err)
		}
		e2, err := ParseRecord(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !eventsEquivalent(&e, &e2) {
			t.Fatalf("record round trip lost data:\n  in:  %+v\n  out: %+v", e, e2)
		}
	})
}

// eventsEquivalent compares every field a codec is expected to carry.
func eventsEquivalent(a, b *Event) bool {
	if a.Type != b.Type || a.Peer != b.Peer || a.Prefix != b.Prefix || !a.Time.Equal(b.Time) {
		return false
	}
	switch {
	case a.Attrs == nil && b.Attrs == nil:
		return true
	case a.Attrs == nil || b.Attrs == nil:
		return false
	}
	return a.Attrs.Equal(b.Attrs)
}
