package event

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"rex/internal/bgp"
)

// Text codec. One event per line, a key/value dialect of the paper's
// Figure 4 listing:
//
//	W 2003-08-01T10:00:00.000000Z 128.32.1.3 NEXT_HOP 128.32.0.70 ASPATH "11423 209 701" LP 80 MED 10 COMM 11423:65350,11423:65300 PREFIX 192.96.10.0/24
//
// Fields after the peer address are optional except PREFIX, which is
// always last.

const textTimeLayout = "2006-01-02T15:04:05.000000Z07:00"

// AppendText appends the textual form of e (with trailing newline) to dst.
func AppendText(dst []byte, e *Event) ([]byte, error) {
	if e.Type != Announce && e.Type != Withdraw {
		return nil, fmt.Errorf("encode event: invalid type %d", e.Type)
	}
	if !e.Prefix.IsValid() {
		return nil, fmt.Errorf("encode event: invalid prefix")
	}
	dst = append(dst, e.Type.String()...)
	dst = append(dst, ' ')
	dst = e.Time.UTC().AppendFormat(dst, textTimeLayout)
	dst = append(dst, ' ')
	dst = append(dst, e.Peer.String()...)
	if a := e.Attrs; a != nil {
		if a.Nexthop.IsValid() {
			dst = append(dst, " NEXT_HOP "...)
			dst = append(dst, a.Nexthop.String()...)
		}
		dst = append(dst, " ASPATH \""...)
		dst = append(dst, a.ASPath.String()...)
		dst = append(dst, '"')
		if a.HasLocalPref {
			dst = append(dst, " LP "...)
			dst = strconv.AppendUint(dst, uint64(a.LocalPref), 10)
		}
		if a.HasMED {
			dst = append(dst, " MED "...)
			dst = strconv.AppendUint(dst, uint64(a.MED), 10)
		}
		if len(a.Communities) > 0 {
			dst = append(dst, " COMM "...)
			for i, c := range a.Communities {
				if i > 0 {
					dst = append(dst, ',')
				}
				dst = append(dst, c.String()...)
			}
		}
	}
	dst = append(dst, " PREFIX "...)
	dst = append(dst, e.Prefix.String()...)
	return append(dst, '\n'), nil
}

// ParseText parses one line produced by AppendText.
func ParseText(line string) (Event, error) {
	line = strings.TrimSpace(line)
	var e Event
	fields := strings.Fields(line)
	if len(fields) < 5 {
		return e, fmt.Errorf("parse event: %d fields in %q", len(fields), line)
	}
	switch fields[0] {
	case "A":
		e.Type = Announce
	case "W":
		e.Type = Withdraw
	default:
		return e, fmt.Errorf("parse event: bad type %q", fields[0])
	}
	t, err := time.Parse(textTimeLayout, fields[1])
	if err != nil {
		return e, fmt.Errorf("parse event time: %w", err)
	}
	e.Time = t
	if e.Peer, err = netip.ParseAddr(fields[2]); err != nil {
		return e, fmt.Errorf("parse event peer: %w", err)
	}

	// The AS path is quoted and may contain spaces; re-split around it.
	rest := strings.Join(fields[3:], " ")
	attrs := &bgp.PathAttrs{}
	hasAttrs := false
	if i := strings.Index(rest, `ASPATH "`); i >= 0 {
		j := strings.Index(rest[i+8:], `"`)
		if j < 0 {
			return e, errors.New("parse event: unterminated ASPATH")
		}
		pathStr := rest[i+8 : i+8+j]
		if attrs.ASPath, err = bgp.ParseASPath(pathStr); err != nil {
			return e, err
		}
		hasAttrs = true
		rest = rest[:i] + rest[i+8+j+1:]
	}
	toks := strings.Fields(rest)
	for i := 0; i < len(toks); i++ {
		key := toks[i]
		if i+1 >= len(toks) {
			return e, fmt.Errorf("parse event: dangling key %q", key)
		}
		val := toks[i+1]
		i++
		switch key {
		case "NEXT_HOP":
			if attrs.Nexthop, err = netip.ParseAddr(val); err != nil {
				return e, fmt.Errorf("parse event nexthop: %w", err)
			}
			hasAttrs = true
		case "LP":
			lp, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return e, fmt.Errorf("parse event LP: %w", err)
			}
			attrs.LocalPref, attrs.HasLocalPref = uint32(lp), true
			hasAttrs = true
		case "MED":
			med, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return e, fmt.Errorf("parse event MED: %w", err)
			}
			attrs.MED, attrs.HasMED = uint32(med), true
			hasAttrs = true
		case "COMM":
			for _, cs := range strings.Split(val, ",") {
				c, err := bgp.ParseCommunity(cs)
				if err != nil {
					return e, err
				}
				attrs.Communities = append(attrs.Communities, c)
			}
			hasAttrs = true
		case "PREFIX":
			if e.Prefix, err = netip.ParsePrefix(val); err != nil {
				return e, fmt.Errorf("parse event prefix: %w", err)
			}
		default:
			return e, fmt.Errorf("parse event: unknown key %q", key)
		}
	}
	if !e.Prefix.IsValid() {
		return e, errors.New("parse event: missing PREFIX")
	}
	if hasAttrs {
		e.Attrs = attrs
	}
	return e, nil
}

// WriteText writes the stream in text form.
func WriteText(w io.Writer, s Stream) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	for i := range s {
		var err error
		buf, err = AppendText(buf[:0], &s[i])
		if err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText reads a whole text stream. Blank lines and lines starting with
// '#' are skipped.
func ReadText(r io.Reader) (Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out Stream
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := ParseText(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// Binary codec: a compact record stream for large event files.
//
//	magic "REXEV1\n" once, then per event:
//	  type(1) unixnano(8) peer(4) prefixbits(1) prefixaddr(4) attrlen(2) attrs
//
// Attributes use the BGP wire attribute encoding with 4-octet ASNs.

var binaryMagic = []byte("REXEV1\n")

// WriteBinary writes the stream in binary form.
func WriteBinary(w io.Writer, s Stream) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic); err != nil {
		return err
	}
	var hdr [20]byte
	for i := range s {
		e := &s[i]
		if !e.Peer.Is4() || !e.Prefix.Addr().Is4() {
			return fmt.Errorf("event %d: binary codec requires IPv4 peer and prefix", i)
		}
		attrs, err := bgp.MarshalAttrs(e.Attrs, true)
		if err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if len(attrs) > 0xFFFF {
			return fmt.Errorf("event %d: attribute block too large", i)
		}
		hdr[0] = byte(e.Type)
		binary.BigEndian.PutUint64(hdr[1:9], uint64(e.Time.UnixNano()))
		peer := e.Peer.As4()
		copy(hdr[9:13], peer[:])
		hdr[13] = byte(e.Prefix.Bits())
		addr := e.Prefix.Addr().As4()
		copy(hdr[14:18], addr[:])
		binary.BigEndian.PutUint16(hdr[18:20], uint16(len(attrs)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(attrs); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BinaryReader decodes a WriteBinary stream one record at a time. The
// attribute wire bytes of each record are read into a scratch buffer the
// reader owns and reuses across Next calls — zero steady-state
// allocation for the raw record. That reuse is safe because
// bgp.UnmarshalAttrs copies everything it returns and retains no
// reference into its input (the aliasing rule the event hot path's
// decode step rests on; see DESIGN.md).
type BinaryReader struct {
	br      *bufio.Reader
	hdr     [20]byte // record header scratch (a local would escape into io.ReadFull)
	scratch []byte   // reused attr wire bytes; valid only within one Next
	n       int      // records decoded, for error positions
}

// NewBinaryReader wraps r, consuming and checking the stream magic.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [len("REXEV1\n")]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("event stream magic: %w", err)
	}
	if string(magic[:]) != string(binaryMagic) {
		return nil, errors.New("event stream: bad magic")
	}
	return &BinaryReader{br: br}, nil
}

// Next decodes the next record, returning io.EOF at a clean end of
// stream. The returned Event owns its attributes (freshly decoded); the
// reader's internal buffers are reused, so Next itself allocates only
// when the event actually carries attributes.
func (d *BinaryReader) Next() (Event, error) {
	hdr := &d.hdr
	if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("event %d header: %w", d.n, err)
	}
	e := Event{
		Type: Type(hdr[0]),
		Time: time.Unix(0, int64(binary.BigEndian.Uint64(hdr[1:9]))).UTC(),
		Peer: netip.AddrFrom4([4]byte(hdr[9:13])),
	}
	if e.Type != Announce && e.Type != Withdraw {
		return Event{}, fmt.Errorf("event %d: invalid type %d", d.n, hdr[0])
	}
	bits := int(hdr[13])
	if bits > 32 {
		return Event{}, fmt.Errorf("event %d: invalid prefix length %d", d.n, bits)
	}
	e.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte(hdr[14:18])), bits)
	attrLen := int(binary.BigEndian.Uint16(hdr[18:20]))
	if attrLen > 0 {
		if cap(d.scratch) < attrLen {
			d.scratch = make([]byte, attrLen)
		}
		buf := d.scratch[:attrLen]
		if _, err := io.ReadFull(d.br, buf); err != nil {
			return Event{}, fmt.Errorf("event %d attrs: %w", d.n, err)
		}
		attrs, err := bgp.UnmarshalAttrs(buf, true)
		if err != nil {
			return Event{}, fmt.Errorf("event %d: %w", d.n, err)
		}
		e.Attrs = attrs
	}
	d.n++
	return e, nil
}

// ReadBinary reads a whole binary stream produced by WriteBinary.
func ReadBinary(r io.Reader) (Stream, error) {
	d, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	var out Stream
	for {
		e, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
