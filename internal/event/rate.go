package event

import (
	"math"
	"sort"
	"time"
)

// RateSeries is a bucketed event-count time series — the data behind the
// paper's Figure 8 ("BGP event rate at ISP-Anon").
type RateSeries struct {
	Start  time.Time
	Bucket time.Duration
	Counts []int
}

// MaxRateBuckets caps the length of a Rate series: 2^21 buckets, about
// four years at minute resolution. Without the cap a single corrupt or
// outlier timestamp stretches the first-to-last span and makes Rate
// allocate a counts slice covering the whole gap. Events beyond the cap
// are clamped into the edge buckets instead of dropped, so their counts
// stay visible.
const MaxRateBuckets = 1 << 21

// Rate buckets the stream into fixed-width intervals starting at the first
// event's time. The stream need not be sorted.
func Rate(s Stream, bucket time.Duration) RateSeries {
	if bucket <= 0 {
		bucket = time.Minute
	}
	first, last, ok := s.TimeRange()
	if !ok {
		return RateSeries{Bucket: bucket}
	}
	span := last.Sub(first) / bucket
	n := MaxRateBuckets
	if span < MaxRateBuckets-1 {
		n = int(span) + 1
	}
	rs := RateSeries{Start: first, Bucket: bucket, Counts: make([]int, n)}
	for _, e := range s {
		idx := int(e.Time.Sub(first) / bucket)
		if idx < 0 {
			idx = 0
		} else if idx >= n {
			idx = n - 1
		}
		rs.Counts[idx]++
	}
	return rs
}

// BucketTime returns the start time of bucket i.
func (rs RateSeries) BucketTime(i int) time.Time {
	return rs.Start.Add(time.Duration(i) * rs.Bucket)
}

// Grass returns the series' baseline churn level: the median bucket count.
// The paper's §IV-E problem lived "in the grass" — below any spike
// threshold but persistent.
func (rs RateSeries) Grass() float64 {
	if len(rs.Counts) == 0 {
		return 0
	}
	return median(rs.Counts)
}

// Spike is a maximal run of buckets whose count exceeds a threshold.
type Spike struct {
	Start time.Time
	End   time.Time // exclusive: start of the first bucket after the run
	// Total is the number of events inside the spike.
	Total int
	// Peak is the largest single-bucket count.
	Peak int
}

// Spikes finds runs of buckets whose count exceeds median + k·MAD (median
// absolute deviation), the robust threshold that tolerates heavy-tailed
// BGP churn. A k around 5–10 flags only the paper-scale surges. When the
// series is perfectly flat (MAD 0) a bucket must exceed twice the median
// to count.
func (rs RateSeries) Spikes(k float64) []Spike {
	if len(rs.Counts) == 0 {
		return nil
	}
	med := median(rs.Counts)
	// Deviations stay in float64: an even-length series has a
	// half-integral median, so truncating |c-med| to int would shave 0.5
	// off every deviation and bias the MAD (and the threshold) low.
	devs := make([]float64, len(rs.Counts))
	for i, c := range rs.Counts {
		devs[i] = math.Abs(float64(c) - med)
	}
	mad := medianFloat(devs)
	threshold := med + k*mad
	if mad == 0 {
		// Flat series: a bucket counts as a spike when it exceeds twice
		// the median (strictly — c > 2*med).
		threshold = 2 * med
	}

	var spikes []Spike
	inSpike := false
	var cur Spike
	for i, c := range rs.Counts {
		if float64(c) > threshold {
			if !inSpike {
				inSpike = true
				cur = Spike{Start: rs.BucketTime(i)}
			}
			cur.Total += c
			if c > cur.Peak {
				cur.Peak = c
			}
			cur.End = rs.BucketTime(i + 1)
		} else if inSpike {
			spikes = append(spikes, cur)
			inSpike = false
		}
	}
	if inSpike {
		spikes = append(spikes, cur)
	}
	return spikes
}

func median(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	sort.Ints(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return float64(sorted[mid])
	}
	return float64(sorted[mid-1]+sorted[mid]) / 2
}

func medianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
