package collector

import "rex/internal/obs"

// Collector metrics. Session lifecycle counters key on the
// SessionEventKind string, so the metric vocabulary and the structured
// log vocabulary are the same; per-peer families are bounded by the
// obs label-cardinality cap, which an IBGP collector (tens of peers,
// not thousands) never approaches.
var (
	mSessionEvents = obs.NewCounterVec("rex_collector_session_events_total", "kind",
		"Session lifecycle transitions by kind (session-up, session-down, session-replaced, handshake-failed, max-prefix-teardown, restart-expired, restart-reconciled, table-restored).")
	mSessionsActive = obs.NewGauge("rex_collector_sessions_active",
		"Sessions currently Established and being processed.")
	mUpdates = obs.NewCounterVec("rex_collector_updates_total", "peer",
		"BGP UPDATE messages processed, per peer.")
	mPeerBytes = obs.NewGaugeVec("rex_collector_peer_bytes_read", "peer",
		"Bytes read from each peer's current session (resets when the session is replaced).")
	mPeerRoutes = obs.NewGaugeVec("rex_collector_peer_routes", "peer",
		"Adj-RIB-In size per peer after the most recent UPDATE.")
	mEvents = obs.NewCounterVec("rex_collector_events_total", "type",
		"Augmented events emitted to the handler, by type (announce, withdraw).")
	mStaleRetained = obs.NewCounter("rex_collector_stale_retained_total",
		"Routes marked stale when a graceful-restart window opened.")
	mStaleSwept = obs.NewCounter("rex_collector_stale_swept_total",
		"Stale routes swept into augmented withdrawals at end-of-restart.")
	mRoutesRestored = obs.NewCounter("rex_collector_routes_restored_total",
		"Checkpointed routes re-installed (stale, inside a restart window) at recovery.")
)
