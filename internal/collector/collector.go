// Package collector implements the paper's data-collection methodology
// (§II), the role the Packet Design Route Explorer plays: it passively
// IBGP-peers with a site's BGP edge routers (or an ISP's route
// reflectors), maintains an Adj-RIB-In per peer, and emits the *augmented
// event stream* — announcements as-is, and withdrawals carrying the path
// attributes of the route being withdrawn, recovered from the Adj-RIB-In,
// because "BGP UPDATE messages by themselves are not sufficient for
// analysis".
//
// The collection only works if the event stream reflects routing reality
// rather than collector luck: a TCP blip that instantly floods a full
// table of withdrawals (and a re-announce storm on reconnect) fabricates
// exactly the spike/churn signatures the Stemming detector hunts for. So
// session loss is handled with graceful-restart-style soft state: the
// peer's Adj-RIB-In is kept, marked stale, for a restart window (default
// 2×HoldTime). If the peer returns in time, re-announced routes refresh
// silently and only the routes it never re-announces are withdrawn when
// the window closes; if the peer stays down, the full augmented
// withdrawal sweep is emitted exactly once, at window expiry.
package collector

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/event"
	"rex/internal/rib"
)

// Handler receives each event as it is produced. Handlers are invoked
// from per-peer goroutines and must be safe for concurrent use; events
// from one peer arrive in order.
type Handler func(event.Event)

// RestartDisabled disables graceful-restart retention: any negative
// Config.RestartTime makes session loss withdraw the peer's table
// immediately, the pre-restart behaviour.
const RestartDisabled = -1 * time.Second

// Config parameterizes the collector.
type Config struct {
	LocalAS  uint32
	LocalID  netip.Addr
	HoldTime time.Duration
	// ExpectAS, when non-zero, only accepts IBGP peers from that AS.
	ExpectAS uint32
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
	// WithdrawOnSessionLoss emits augmented withdrawals for every route
	// in a peer's Adj-RIB-In when its session drops (default true via
	// New). When false, a lost peer's state is dropped silently.
	WithdrawOnSessionLoss bool
	// RestartTime is the graceful-restart window. On session loss the
	// peer's Adj-RIB-In is retained, marked stale, for this long before
	// the end-of-restart withdrawal sweep. Zero selects the default
	// (2×HoldTime); a negative value (RestartDisabled) turns retention
	// off so loss withdraws immediately. Only meaningful when
	// WithdrawOnSessionLoss is set.
	RestartTime time.Duration
	// MaxPrefixes, when positive, tears a peer's session down with a
	// CEASE notification once its Adj-RIB-In exceeds the limit — the
	// maximum-prefix protection from the paper's introduction (ISP-B's
	// routers "would not be overwhelmed" by ISP-A's leak). A max-prefix
	// teardown is a deliberate local action, not network weather, so it
	// bypasses the restart window and withdraws immediately.
	MaxPrefixes int
	// Logf, when set, receives one line per session lifecycle transition
	// (handshake failures included — they are otherwise invisible).
	Logf func(format string, args ...any)
	// OnSessionEvent, when set, receives structured session lifecycle
	// events. Called from per-peer goroutines; must be concurrency-safe.
	OnSessionEvent func(SessionEvent)
}

// SessionEventKind classifies a session lifecycle transition.
type SessionEventKind int

// Session lifecycle kinds.
const (
	// SessionUp: a peer's session reached Established and the collector
	// is processing its updates.
	SessionUp SessionEventKind = iota + 1
	// SessionDown: a peer's session ended. Err carries the reason
	// (fsm.Session.Err; nil on clean close). Routes is the number of
	// routes retained as stale when a restart window opened, or the
	// number withdrawn when retention is off.
	SessionDown
	// SessionReplaced: a duplicate session for an already-connected peer
	// arrived; the old session was closed and its Adj-RIB-In handed to
	// the new one (no withdrawal storm).
	SessionReplaced
	// HandshakeFailed: an inbound connection never reached Established.
	// Err carries the handshake error; Peer may be zero.
	HandshakeFailed
	// MaxPrefixTeardown: the collector sent CEASE because the peer
	// exceeded MaxPrefixes. Routes is the table size at teardown.
	MaxPrefixTeardown
	// RestartExpired: the restart window closed with the peer still
	// down; Routes stale routes were swept into augmented withdrawals.
	RestartExpired
	// RestartReconciled: the restart window closed with the peer back
	// up; Routes is the count of never-re-announced routes withdrawn
	// (zero for a perfect reconcile).
	RestartReconciled
	// TableRestored: a checkpointed Adj-RIB-In was re-installed at
	// startup, stale, inside a fresh restart window; Routes is how many
	// routes came back.
	TableRestored
)

// String names the kind.
func (k SessionEventKind) String() string {
	switch k {
	case SessionUp:
		return "session-up"
	case SessionDown:
		return "session-down"
	case SessionReplaced:
		return "session-replaced"
	case HandshakeFailed:
		return "handshake-failed"
	case MaxPrefixTeardown:
		return "max-prefix-teardown"
	case RestartExpired:
		return "restart-expired"
	case RestartReconciled:
		return "restart-reconciled"
	case TableRestored:
		return "table-restored"
	default:
		return "session-event(?)"
	}
}

// SessionEvent is one session lifecycle transition, reported through
// Config.OnSessionEvent (and, as text, Config.Logf).
type SessionEvent struct {
	Time time.Time
	Kind SessionEventKind
	// Peer is the peer's BGP identifier (zero if the handshake failed
	// before the peer identified itself).
	Peer netip.Addr
	// Remote is the transport address of the connection, when known.
	Remote string
	// Err is the associated error, if any.
	Err error
	// Routes is a kind-dependent route count; see the kind docs.
	Routes int
}

// String renders the event as a one-line log message.
func (e SessionEvent) String() string {
	s := e.Kind.String()
	if e.Peer.IsValid() {
		s += " peer=" + e.Peer.String()
	}
	if e.Remote != "" {
		s += " remote=" + e.Remote
	}
	if e.Routes > 0 {
		s += fmt.Sprintf(" routes=%d", e.Routes)
	}
	if e.Err != nil {
		s += fmt.Sprintf(" err=%q", e.Err.Error())
	}
	return s
}

// PeerInfo is a point-in-time snapshot of one peer the collector holds
// state for, including peers inside a restart window.
type PeerInfo struct {
	Addr      netip.Addr
	Connected bool
	Routes    int
	// StaleRoutes counts routes retained from a lost session and not yet
	// re-announced.
	StaleRoutes int
	// RestartPending reports an open restart window (the end-of-restart
	// sweep has not run yet).
	RestartPending bool
}

// String renders a one-line status suitable for periodic logging.
func (pi PeerInfo) String() string {
	state := "up"
	if !pi.Connected {
		state = "down"
	}
	s := fmt.Sprintf("%s %s routes=%d", pi.Addr, state, pi.Routes)
	if pi.RestartPending {
		s += fmt.Sprintf(" restart-pending stale=%d", pi.StaleRoutes)
	}
	return s
}

// Collector accepts IBGP sessions and emits the augmented event stream.
type Collector struct {
	cfg     Config
	handler Handler

	mu    sync.Mutex
	peers map[netip.Addr]*peerState
	ln    net.Listener

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// peerState carries a peer's Adj-RIB-In across sessions: it survives
// session loss for the length of the restart window and is handed from a
// replaced session to its replacement.
type peerState struct {
	addr netip.Addr

	// mu guards adj. Update processing, restart sweeps, and the
	// Routes/NumRoutes snapshots all run on different goroutines.
	mu  sync.Mutex
	adj *rib.AdjRibIn

	// The fields below are guarded by Collector.mu.
	session      *fsm.Session  // nil while the peer is down
	runnerDone   chan struct{} // closed when the owning Run goroutine exits
	restartTimer *time.Timer   // non-nil while a restart window is open
	restartGen   uint64        // increments per window; matches timer callbacks to their window
}

// New builds a collector delivering events to handler.
func New(cfg Config, handler Handler) *Collector {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Collector{
		cfg:     cfg,
		handler: handler,
		peers:   make(map[netip.Addr]*peerState),
		closed:  make(chan struct{}),
	}
}

// restartWindow returns the effective graceful-restart window, or <= 0
// when retention is disabled.
func (c *Collector) restartWindow() time.Duration {
	if c.cfg.RestartTime != 0 {
		return c.cfg.RestartTime
	}
	hold := c.cfg.HoldTime
	if hold <= 0 {
		hold = fsm.DefaultHoldTime
	}
	return 2 * hold
}

func (c *Collector) restartEnabled() bool {
	return c.cfg.WithdrawOnSessionLoss && c.restartWindow() > 0
}

// Serve accepts sessions on ln until Close. It returns nil after Close;
// other accept errors are returned as-is.
func (c *Collector) Serve(ln net.Listener) error {
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
				return nil
			default:
				return err
			}
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(conn)
		}()
	}
}

func (c *Collector) handleConn(conn net.Conn) {
	remote := conn.RemoteAddr().String()
	sess, err := fsm.Establish(conn, fsm.Config{
		LocalAS:  c.cfg.LocalAS,
		LocalID:  c.cfg.LocalID,
		HoldTime: c.cfg.HoldTime,
		ExpectAS: c.cfg.ExpectAS,
	})
	if err != nil {
		c.sessionEvent(SessionEvent{Kind: HandshakeFailed, Remote: remote, Err: err})
		return
	}
	c.Run(sess)
}

// Run drives an established session — accepted by Serve or dialed
// externally (e.g. by a fsm.PeerManager) — through the collector until
// the session ends. It blocks; callers integrating a PeerManager spawn
// it in the OnUp callback's goroutine.
func (c *Collector) Run(sess *fsm.Session) {
	peerAddr := sess.PeerID()
	remote := ""
	if ra := sess.RemoteAddr(); ra != nil {
		remote = ra.String()
	}
	myDone := make(chan struct{})
	defer close(myDone)

	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		sess.Close()
		return
	default:
	}
	ps, ok := c.peers[peerAddr]
	if !ok {
		ps = &peerState{addr: peerAddr, adj: rib.NewAdjRibIn(peerAddr)}
		c.peers[peerAddr] = ps
	}
	oldSess, oldDone := ps.session, ps.runnerDone
	ps.session = sess
	ps.runnerDone = myDone
	c.mu.Unlock()

	if oldSess != nil {
		// Session replacement: close the old session and wait for its
		// runner to drain so no two goroutines ever process one peer's
		// updates concurrently. The old runner sees it was replaced and
		// emits nothing; the replacement inherits the Adj-RIB-In.
		c.sessionEvent(SessionEvent{Kind: SessionReplaced, Peer: peerAddr, Remote: remote})
		oldSess.Close()
		if oldDone != nil {
			<-oldDone
		}
		// The inherited table is soft state now: whatever this session
		// never re-announces must eventually be withdrawn.
		c.retireTable(ps, true)
	}
	c.sessionEvent(SessionEvent{Kind: SessionUp, Peer: peerAddr, Remote: remote})
	mSessionsActive.Inc()
	defer mSessionsActive.Dec()

	peerLabel := peerAddr.String()
	gUpdates := mUpdates.With(peerLabel)
	gBytes := mPeerBytes.With(peerLabel)
	gRoutes := mPeerRoutes.With(peerLabel)
	maxPfxTripped := false
	for u := range sess.Updates() {
		gUpdates.Inc()
		gBytes.Set(sess.BytesRead())
		if isEndOfRIB(u) {
			// Explicit end-of-restart from the peer: reconcile now
			// instead of waiting out the window.
			c.finishRestart(ps, 0)
			continue
		}
		n := c.processUpdate(ps, u)
		gRoutes.Set(int64(n))
		if c.cfg.MaxPrefixes > 0 && n > c.cfg.MaxPrefixes {
			// Pull the plug exactly as ISP-B did: CEASE, session down.
			maxPfxTripped = true
			c.sessionEvent(SessionEvent{Kind: MaxPrefixTeardown, Peer: peerAddr, Remote: remote, Routes: n})
			sess.Close()
			break
		}
	}
	sess.Close()

	// Session over. If we were replaced, the new runner owns the state.
	c.mu.Lock()
	if ps.session != sess {
		c.mu.Unlock()
		return
	}
	ps.session = nil
	ps.runnerDone = nil
	closing := false
	select {
	case <-c.closed:
		closing = true
	default:
	}
	retain := c.restartEnabled() && !closing && !maxPfxTripped
	var retained int
	if retain {
		retained = c.openRestartWindowLocked(ps)
	} else {
		c.cancelRestartTimerLocked(ps)
		delete(c.peers, peerAddr)
	}
	c.mu.Unlock()

	down := SessionEvent{Kind: SessionDown, Peer: peerAddr, Remote: remote, Err: sess.Err(), Routes: retained}
	if retain {
		c.sessionEvent(down)
		return
	}
	ps.mu.Lock()
	lost := ps.adj.Clear()
	ps.mu.Unlock()
	if c.cfg.WithdrawOnSessionLoss {
		c.withdrawRoutes(peerAddr, lost)
		down.Routes = len(lost)
	}
	c.sessionEvent(down)
}

// retireTable marks a live peer's whole table stale and (when retention
// is enabled) ensures a restart window is open so never-re-announced
// routes are withdrawn at end-of-restart. With retention disabled it
// falls back to an immediate sweep — emitted before the caller processes
// any of the new session's updates, never interleaved with them.
func (c *Collector) retireTable(ps *peerState, emitIfDisabled bool) {
	c.mu.Lock()
	if c.restartEnabled() {
		c.openRestartWindowLocked(ps)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	if !emitIfDisabled || !c.cfg.WithdrawOnSessionLoss {
		ps.mu.Lock()
		ps.adj.Clear()
		ps.mu.Unlock()
		return
	}
	ps.mu.Lock()
	lost := ps.adj.Clear()
	ps.mu.Unlock()
	c.withdrawRoutes(ps.addr, lost)
}

// openRestartWindowLocked marks the peer's table stale and starts the
// end-of-restart timer if one is not already running. Caller holds c.mu.
// Returns the number of routes retained.
func (c *Collector) openRestartWindowLocked(ps *peerState) int {
	ps.mu.Lock()
	n := ps.adj.MarkAllStale()
	ps.mu.Unlock()
	mStaleRetained.Add(uint64(n))
	if ps.restartTimer == nil {
		ps.restartGen++
		gen := ps.restartGen
		ps.restartTimer = time.AfterFunc(c.restartWindow(), func() { c.finishRestart(ps, gen) })
	}
	return n
}

// cancelRestartTimerLocked stops a pending restart timer without
// sweeping. Caller holds c.mu.
func (c *Collector) cancelRestartTimerLocked(ps *peerState) {
	if ps.restartTimer != nil {
		ps.restartTimer.Stop()
		ps.restartTimer = nil
	}
}

// finishRestart closes the peer's restart window and emits augmented
// withdrawals for every route the peer never re-announced. fired, when
// non-zero, is the window generation of the expired timer invoking us: a
// stale callback (its window already closed by EOR or Close) is a no-op,
// which is what makes the sweep happen exactly once.
func (c *Collector) finishRestart(ps *peerState, fired uint64) {
	c.mu.Lock()
	if ps.restartTimer == nil || (fired != 0 && ps.restartGen != fired) {
		c.mu.Unlock()
		return
	}
	ps.restartTimer.Stop()
	ps.restartTimer = nil
	connected := ps.session != nil
	if !connected && c.peers[ps.addr] == ps {
		delete(c.peers, ps.addr)
	}
	c.mu.Unlock()

	ps.mu.Lock()
	stale := ps.adj.SweepStale()
	ps.mu.Unlock()
	mStaleSwept.Add(uint64(len(stale)))
	c.withdrawRoutes(ps.addr, stale)
	kind := RestartReconciled
	if !connected {
		kind = RestartExpired
	}
	c.sessionEvent(SessionEvent{Kind: kind, Peer: ps.addr, Routes: len(stale)})
}

// RestoreTable re-installs a checkpointed Adj-RIB-In for peer, exactly
// as graceful restart treats a table whose session dropped: every
// restored route enters stale under an open restart window, so a peer
// that reconnects refreshes its routes silently and whatever it never
// re-announces is swept into augmented withdrawals at window expiry —
// the recovery path reuses the reconciliation machinery instead of
// inventing a second one. Routes a live session already announced are
// left untouched. A no-op (returning 0) when retention is disabled:
// without a window there is nothing to reconcile restored state
// against, and stale routes would linger forever.
func (c *Collector) RestoreTable(peer netip.Addr, routes []*rib.Route) int {
	if len(routes) == 0 || !c.restartEnabled() {
		return 0
	}
	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		return 0
	default:
	}
	ps, ok := c.peers[peer]
	if !ok {
		ps = &peerState{addr: peer, adj: rib.NewAdjRibIn(peer)}
		c.peers[peer] = ps
	}
	ps.mu.Lock()
	restored := 0
	for _, r := range routes {
		rr := r.Clone()
		rr.Stale = true
		if ps.adj.Install(rr) {
			restored++
		}
	}
	ps.mu.Unlock()
	if restored > 0 && ps.restartTimer == nil {
		ps.restartGen++
		gen := ps.restartGen
		ps.restartTimer = time.AfterFunc(c.restartWindow(), func() { c.finishRestart(ps, gen) })
	}
	c.mu.Unlock()
	mRoutesRestored.Add(uint64(restored))
	c.sessionEvent(SessionEvent{Kind: TableRestored, Peer: peer, Routes: restored})
	return restored
}

// withdrawRoutes emits one augmented withdrawal per route.
func (c *Collector) withdrawRoutes(peer netip.Addr, routes []*rib.Route) {
	if len(routes) == 0 {
		return
	}
	now := c.cfg.Now()
	for _, r := range routes {
		c.emit(event.Event{
			Time: now, Type: event.Withdraw,
			Peer: peer, Prefix: r.Prefix, Attrs: r.Attrs,
		})
	}
}

// isEndOfRIB reports a BGP End-of-RIB marker: an UPDATE with no
// withdrawn routes, no attributes, and no NLRI (RFC 4724 §2).
func isEndOfRIB(u *bgp.Update) bool {
	return len(u.Withdrawn) == 0 && len(u.NLRI) == 0 && u.Attrs == nil
}

// processUpdate turns one UPDATE into augmented events, updating the
// peer's Adj-RIB-In, and returns the table size afterwards. This is the
// paper's core collection trick: explicit withdrawals carry no
// attributes on the wire, so we attach the ones we remembered.
//
// One refinement under graceful restart: a re-announcement that exactly
// matches a retained stale route refreshes it silently. The peer only
// repeats itself because the transport flapped; the counterfactual
// stream — the one an unluckier collector would never have seen — has no
// event there, and Stemming should not either.
func (c *Collector) processUpdate(ps *peerState, u *bgp.Update) int {
	now := c.cfg.Now()
	peer := ps.addr
	events := make([]event.Event, 0, len(u.Withdrawn)+len(u.NLRI))
	ps.mu.Lock()
	for _, p := range u.Withdrawn {
		old := ps.adj.Withdraw(p)
		ev := event.Event{Time: now, Type: event.Withdraw, Peer: peer, Prefix: p}
		if old != nil {
			ev.Attrs = old.Attrs
		}
		events = append(events, ev)
	}
	if u.Attrs != nil {
		for _, p := range u.NLRI {
			old := ps.adj.Get(p)
			refresh := old != nil && old.Stale && old.Attrs.Equal(u.Attrs)
			ps.adj.Update(p, u.Attrs, false, peer, now)
			if !refresh {
				events = append(events, event.Event{Time: now, Type: event.Announce, Peer: peer, Prefix: p, Attrs: u.Attrs})
			}
		}
	}
	n := ps.adj.Len()
	ps.mu.Unlock()
	for _, ev := range events {
		c.emit(ev)
	}
	return n
}

func (c *Collector) emit(e event.Event) {
	if e.Type == event.Announce {
		mEvents.With("announce").Inc()
	} else {
		mEvents.With("withdraw").Inc()
	}
	if c.handler != nil {
		c.handler(e)
	}
}

func (c *Collector) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Collector) sessionEvent(e SessionEvent) {
	e.Time = c.cfg.Now()
	mSessionEvents.With(e.Kind.String()).Inc()
	c.logf("%s", e.String())
	if c.cfg.OnSessionEvent != nil {
		c.cfg.OnSessionEvent(e)
	}
}

// Peers returns the addresses of currently connected peers, sorted.
// Peers inside a restart window (down, table retained) are not listed;
// see PeerInfos.
func (c *Collector) Peers() []netip.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]netip.Addr, 0, len(c.peers))
	for a, ps := range c.peers {
		if ps.session != nil {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// PeerInfos snapshots every peer the collector holds state for —
// connected or inside a restart window — sorted by address.
func (c *Collector) PeerInfos() []PeerInfo {
	c.mu.Lock()
	states := make([]*peerState, 0, len(c.peers))
	infos := make([]PeerInfo, 0, len(c.peers))
	for _, ps := range c.peers {
		states = append(states, ps)
		infos = append(infos, PeerInfo{
			Addr:           ps.addr,
			Connected:      ps.session != nil,
			RestartPending: ps.restartTimer != nil,
		})
	}
	c.mu.Unlock()
	for i, ps := range states {
		ps.mu.Lock()
		infos[i].Routes = ps.adj.Len()
		infos[i].StaleRoutes = ps.adj.StaleLen()
		ps.mu.Unlock()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Addr.Less(infos[j].Addr) })
	return infos
}

// snapshotPeers returns the current peer states without holding c.mu
// while the caller inspects their RIBs.
func (c *Collector) snapshotPeers() []*peerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*peerState, 0, len(c.peers))
	for _, ps := range c.peers {
		out = append(out, ps)
	}
	return out
}

// Routes snapshots every peer's Adj-RIB-In (the input to a TAMP picture
// of the site's current routing). Stale routes — retained across a
// session loss inside a restart window — are included, matching
// graceful-restart forwarding semantics.
func (c *Collector) Routes() []*rib.Route {
	var out []*rib.Route
	for _, ps := range c.snapshotPeers() {
		ps.mu.Lock()
		out = append(out, ps.adj.Routes()...)
		ps.mu.Unlock()
	}
	return out
}

// NumRoutes returns the total routes held across peers.
func (c *Collector) NumRoutes() int {
	n := 0
	for _, ps := range c.snapshotPeers() {
		ps.mu.Lock()
		n += ps.adj.Len()
		ps.mu.Unlock()
	}
	return n
}

// Close stops accepting, closes all sessions, flushes any pending
// restart windows (their end-of-restart withdrawals are emitted
// immediately, once), and waits for handlers to drain.
func (c *Collector) Close() error {
	c.closeMu.Do(func() { close(c.closed) })
	c.mu.Lock()
	ln := c.ln
	sessions := make([]*fsm.Session, 0, len(c.peers))
	for _, ps := range c.peers {
		if ps.session != nil {
			sessions = append(sessions, ps.session)
		}
	}
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, s := range sessions {
		s.Close()
	}
	c.wg.Wait()

	// Any peer still holding an open restart window was down when we
	// shut off: emit its sweep now rather than leaking a timer.
	c.mu.Lock()
	var pending []*peerState
	for _, ps := range c.peers {
		if ps.restartTimer != nil {
			c.cancelRestartTimerLocked(ps)
			delete(c.peers, ps.addr)
			pending = append(pending, ps)
		}
	}
	c.mu.Unlock()
	for _, ps := range pending {
		ps.mu.Lock()
		stale := ps.adj.SweepStale()
		ps.mu.Unlock()
		mStaleSwept.Add(uint64(len(stale)))
		c.withdrawRoutes(ps.addr, stale)
		c.sessionEvent(SessionEvent{Kind: RestartExpired, Peer: ps.addr, Routes: len(stale)})
	}
	return nil
}

// Recorder is a concurrency-safe event accumulator, handy as a Handler.
type Recorder struct {
	mu     sync.Mutex
	events event.Stream
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Handle appends the event; pass it as the collector's Handler.
func (r *Recorder) Handle(e event.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() event.Stream {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(event.Stream, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// ErrClosed reports the collector has been closed.
var ErrClosed = errors.New("collector closed")
