// Package collector implements the paper's data-collection methodology
// (§II), the role the Packet Design Route Explorer plays: it passively
// IBGP-peers with a site's BGP edge routers (or an ISP's route
// reflectors), maintains an Adj-RIB-In per peer, and emits the *augmented
// event stream* — announcements as-is, and withdrawals carrying the path
// attributes of the route being withdrawn, recovered from the Adj-RIB-In,
// because "BGP UPDATE messages by themselves are not sufficient for
// analysis".
package collector

import (
	"errors"
	"net"
	"net/netip"
	"sort"
	"sync"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/event"
	"rex/internal/rib"
)

// Handler receives each event as it is produced. Handlers are invoked
// from per-peer goroutines and must be safe for concurrent use; events
// from one peer arrive in order.
type Handler func(event.Event)

// Config parameterizes the collector.
type Config struct {
	LocalAS  uint32
	LocalID  netip.Addr
	HoldTime time.Duration
	// ExpectAS, when non-zero, only accepts IBGP peers from that AS.
	ExpectAS uint32
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
	// WithdrawOnSessionLoss emits augmented withdrawals for every route
	// in a peer's Adj-RIB-In when its session drops (default true via
	// New).
	WithdrawOnSessionLoss bool
	// MaxPrefixes, when positive, tears a peer's session down with a
	// CEASE notification once its Adj-RIB-In exceeds the limit — the
	// maximum-prefix protection from the paper's introduction (ISP-B's
	// routers "would not be overwhelmed" by ISP-A's leak).
	MaxPrefixes int
}

// Collector accepts IBGP sessions and emits the augmented event stream.
type Collector struct {
	cfg     Config
	handler Handler

	mu    sync.Mutex
	peers map[netip.Addr]*peerState
	ln    net.Listener

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

type peerState struct {
	session *fsm.Session
	adj     *rib.AdjRibIn
}

// New builds a collector delivering events to handler.
func New(cfg Config, handler Handler) *Collector {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Collector{
		cfg:     cfg,
		handler: handler,
		peers:   make(map[netip.Addr]*peerState),
		closed:  make(chan struct{}),
	}
}

// Serve accepts sessions on ln until Close. It returns nil after Close;
// other accept errors are returned as-is.
func (c *Collector) Serve(ln net.Listener) error {
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
				return nil
			default:
				return err
			}
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(conn)
		}()
	}
}

func (c *Collector) handleConn(conn net.Conn) {
	sess, err := fsm.Establish(conn, fsm.Config{
		LocalAS:  c.cfg.LocalAS,
		LocalID:  c.cfg.LocalID,
		HoldTime: c.cfg.HoldTime,
		ExpectAS: c.cfg.ExpectAS,
	})
	if err != nil {
		return
	}
	peerAddr := sess.PeerID()
	ps := &peerState{session: sess, adj: rib.NewAdjRibIn(peerAddr)}
	c.mu.Lock()
	if old, dup := c.peers[peerAddr]; dup {
		// Session replacement: drop the old one silently.
		go old.session.Close()
	}
	c.peers[peerAddr] = ps
	c.mu.Unlock()

	for u := range sess.Updates() {
		c.processUpdate(ps, u)
		if c.cfg.MaxPrefixes > 0 && ps.adj.Len() > c.cfg.MaxPrefixes {
			// Pull the plug exactly as ISP-B did: CEASE, session down.
			sess.Close()
			break
		}
	}
	// Session over.
	c.mu.Lock()
	if c.peers[peerAddr] == ps {
		delete(c.peers, peerAddr)
	}
	c.mu.Unlock()
	if c.cfg.WithdrawOnSessionLoss {
		now := c.cfg.Now()
		for _, r := range ps.adj.Clear() {
			c.emit(event.Event{
				Time: now, Type: event.Withdraw,
				Peer: peerAddr, Prefix: r.Prefix, Attrs: r.Attrs,
			})
		}
	}
	sess.Close()
}

// processUpdate turns one UPDATE into augmented events, updating the
// peer's Adj-RIB-In. This is the paper's core collection trick: explicit
// withdrawals carry no attributes on the wire, so we attach the ones we
// remembered.
func (c *Collector) processUpdate(ps *peerState, u *bgp.Update) {
	now := c.cfg.Now()
	peer := ps.adj.Peer()
	for _, p := range u.Withdrawn {
		old := ps.adj.Withdraw(p)
		ev := event.Event{Time: now, Type: event.Withdraw, Peer: peer, Prefix: p}
		if old != nil {
			ev.Attrs = old.Attrs
		}
		c.emit(ev)
	}
	if u.Attrs == nil {
		return
	}
	for _, p := range u.NLRI {
		ps.adj.Update(p, u.Attrs, false, peer, now)
		c.emit(event.Event{Time: now, Type: event.Announce, Peer: peer, Prefix: p, Attrs: u.Attrs})
	}
}

func (c *Collector) emit(e event.Event) {
	if c.handler != nil {
		c.handler(e)
	}
}

// Peers returns the addresses of currently connected peers, sorted.
func (c *Collector) Peers() []netip.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]netip.Addr, 0, len(c.peers))
	for a := range c.peers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Routes snapshots every peer's Adj-RIB-In (the input to a TAMP picture
// of the site's current routing).
func (c *Collector) Routes() []*rib.Route {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*rib.Route
	for _, ps := range c.peers {
		out = append(out, ps.adj.Routes()...)
	}
	return out
}

// NumRoutes returns the total routes held across peers.
func (c *Collector) NumRoutes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ps := range c.peers {
		n += ps.adj.Len()
	}
	return n
}

// Close stops accepting, closes all sessions, and waits for handlers to
// drain.
func (c *Collector) Close() error {
	c.closeMu.Do(func() { close(c.closed) })
	c.mu.Lock()
	ln := c.ln
	sessions := make([]*fsm.Session, 0, len(c.peers))
	for _, ps := range c.peers {
		sessions = append(sessions, ps.session)
	}
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, s := range sessions {
		s.Close()
	}
	c.wg.Wait()
	return nil
}

// Recorder is a concurrency-safe event accumulator, handy as a Handler.
type Recorder struct {
	mu     sync.Mutex
	events event.Stream
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Handle appends the event; pass it as the collector's Handler.
func (r *Recorder) Handle(e event.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() event.Stream {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(event.Stream, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// ErrClosed reports the collector has been closed.
var ErrClosed = errors.New("collector closed")
