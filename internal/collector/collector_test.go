package collector

import (
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/event"
)

var fixedNow = time.Date(2003, 8, 1, 12, 0, 0, 0, time.UTC)

// startCollector runs a collector with graceful-restart retention off:
// these tests pin down the strict withdraw-on-loss semantics. The
// restart-window behaviour is covered in resilience_test.go.
func startCollector(t *testing.T) (*Collector, *Recorder, string) {
	t.Helper()
	rec := NewRecorder()
	c := New(Config{
		LocalAS:               25,
		LocalID:               netip.MustParseAddr("10.255.0.1"),
		HoldTime:              30 * time.Second,
		Now:                   func() time.Time { return fixedNow },
		WithdrawOnSessionLoss: true,
		RestartTime:           RestartDisabled,
	}, rec.Handle)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := c.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { c.Close() })
	return c, rec, ln.Addr().String()
}

func dialRouter(t *testing.T, addr, routerID string) *fsm.Session {
	t.Helper()
	s, err := fsm.Dial(addr, fsm.Config{
		LocalAS: 25,
		LocalID: netip.MustParseAddr(routerID),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func attrs(nexthop string, asns ...uint32) *bgp.PathAttrs {
	return &bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.Sequence(asns...),
		Nexthop: netip.MustParseAddr(nexthop),
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestAugmentedWithdrawals(t *testing.T) {
	c, rec, addr := startCollector(t)
	router := dialRouter(t, addr, "128.32.1.3")

	a := attrs("128.32.0.70", 11423, 209, 701, 1299, 5713)
	prefix := netip.MustParsePrefix("192.96.10.0/24")
	if err := router.Send(&bgp.Update{Attrs: a, NLRI: []netip.Prefix{prefix}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "announce event", func() bool { return rec.Len() >= 1 })

	// A bare withdrawal on the wire...
	if err := router.Send(&bgp.Update{Withdrawn: []netip.Prefix{prefix}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "withdraw event", func() bool { return rec.Len() >= 2 })

	events := rec.Events()
	if events[0].Type != event.Announce || !events[0].Attrs.Equal(a) {
		t.Errorf("announce event = %v", &events[0])
	}
	w := events[1]
	if w.Type != event.Withdraw || w.Prefix != prefix {
		t.Fatalf("withdraw event = %v", &w)
	}
	// ...emerges augmented with the attributes it withdrew.
	if w.Attrs == nil || !w.Attrs.Equal(a) {
		t.Errorf("withdrawal not augmented: %v", w.Attrs)
	}
	if w.Peer != netip.MustParseAddr("128.32.1.3") {
		t.Errorf("peer = %v", w.Peer)
	}
	if !w.Time.Equal(fixedNow) {
		t.Errorf("time = %v", w.Time)
	}
	if c.NumRoutes() != 0 {
		t.Errorf("NumRoutes = %d after withdrawal", c.NumRoutes())
	}
}

func TestSpuriousWithdrawalHasNoAttrs(t *testing.T) {
	_, rec, addr := startCollector(t)
	router := dialRouter(t, addr, "128.32.1.3")
	if err := router.Send(&bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "event", func() bool { return rec.Len() >= 1 })
	if e := rec.Events()[0]; e.Attrs != nil {
		t.Errorf("spurious withdrawal has attrs: %v", e.Attrs)
	}
}

func TestImplicitReplaceKeepsRIBSize(t *testing.T) {
	c, rec, addr := startCollector(t)
	router := dialRouter(t, addr, "128.32.1.3")
	prefix := netip.MustParsePrefix("10.1.0.0/16")
	if err := router.Send(&bgp.Update{Attrs: attrs("10.0.0.9", 1, 2), NLRI: []netip.Prefix{prefix}}); err != nil {
		t.Fatal(err)
	}
	if err := router.Send(&bgp.Update{Attrs: attrs("10.0.0.9", 1, 3), NLRI: []netip.Prefix{prefix}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "two announces", func() bool { return rec.Len() >= 2 })
	if got := c.NumRoutes(); got != 1 {
		t.Errorf("NumRoutes = %d, want 1 (implicit replace)", got)
	}
	events := rec.Events()
	if events[1].Attrs.ASPath.String() != "1 3" {
		t.Errorf("second announce path = %v", events[1].Attrs.ASPath)
	}
}

func TestSessionLossEmitsWithdrawals(t *testing.T) {
	c, rec, addr := startCollector(t)
	router := dialRouter(t, addr, "128.32.1.200")
	for i := 0; i < 3; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i + 1), 0, 0}), 16)
		if err := router.Send(&bgp.Update{Attrs: attrs("10.0.0.9", 1, uint32(100+i)), NLRI: []netip.Prefix{p}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "3 announces", func() bool { return rec.Len() >= 3 })
	waitFor(t, "peer registered", func() bool { return len(c.Peers()) == 1 })
	router.Close()
	waitFor(t, "session-loss withdrawals", func() bool { return rec.Len() >= 6 })
	events := rec.Events()
	var withdrawals int
	for _, e := range events[3:] {
		if e.Type == event.Withdraw && e.Attrs != nil {
			withdrawals++
		}
	}
	if withdrawals != 3 {
		t.Errorf("augmented session-loss withdrawals = %d, want 3", withdrawals)
	}
	waitFor(t, "peer gone", func() bool { return len(c.Peers()) == 0 })
}

func TestMultiplePeersAndRoutesSnapshot(t *testing.T) {
	c, rec, addr := startCollector(t)
	r1 := dialRouter(t, addr, "128.32.1.3")
	r2 := dialRouter(t, addr, "128.32.1.200")
	if err := r1.Send(&bgp.Update{Attrs: attrs("10.0.0.66", 11423, 209), NLRI: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	if err := r2.Send(&bgp.Update{Attrs: attrs("10.0.0.90", 11423, 209), NLRI: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "two events", func() bool { return rec.Len() >= 2 })
	peers := c.Peers()
	if len(peers) != 2 || peers[0] != netip.MustParseAddr("128.32.1.3") {
		t.Fatalf("peers = %v", peers)
	}
	routes := c.Routes()
	if len(routes) != 2 {
		t.Fatalf("routes = %d", len(routes))
	}
	// The same prefix is held independently per peer (set-union later in
	// TAMP).
	if routes[0].Prefix != routes[1].Prefix {
		t.Errorf("prefixes differ: %v %v", routes[0].Prefix, routes[1].Prefix)
	}
}

func TestRecorderCopies(t *testing.T) {
	rec := NewRecorder()
	rec.Handle(event.Event{Type: event.Announce, Peer: netip.MustParseAddr("10.0.0.1"), Prefix: netip.MustParsePrefix("10.0.0.0/8")})
	events := rec.Events()
	events[0].Type = event.Withdraw
	if rec.Events()[0].Type != event.Announce {
		t.Error("Events exposes internal storage")
	}
}

func TestMaxPrefixTearsSessionDown(t *testing.T) {
	rec := NewRecorder()
	c := New(Config{
		LocalAS:     25,
		LocalID:     netip.MustParseAddr("10.255.0.1"),
		Now:         func() time.Time { return fixedNow },
		MaxPrefixes: 5,
	}, rec.Handle)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Serve(ln) }()
	t.Cleanup(func() { c.Close() })

	router := dialRouter(t, ln.Addr().String(), "128.32.1.3")
	// Leak more prefixes than the limit.
	for i := 0; i < 10; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i + 1), 0, 0}), 16)
		if err := router.Send(&bgp.Update{Attrs: attrs("10.0.0.9", 1, uint32(100+i)), NLRI: []netip.Prefix{p}}); err != nil {
			break // session may already be closing
		}
	}
	// The collector must CEASE the session.
	select {
	case <-router.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("session survived max-prefix violation")
	}
	var notif *bgp.Notification
	if err := router.Err(); err != nil {
		if !errorsAs(err, &notif) || notif.Code != bgp.NotifCease {
			t.Errorf("err = %v, want CEASE", err)
		}
	}
	waitFor(t, "peer gone", func() bool { return len(c.Peers()) == 0 })
}

// errorsAs is a tiny local wrapper to keep the imports flat.
func errorsAs(err error, target *(*bgp.Notification)) bool {
	return errors.As(err, target)
}
