package collector

// Resilience tests: the graceful-restart retention semantics and the
// session lifecycle reporting, exercised through the fault-injection
// conn so sessions die the way real ones do — mid-stream, without a
// CEASE. The invariant under test is the one the paper's methodology
// needs: the event stream reflects routing reality, not collector luck.
// A flap the peer recovers from within the restart window must leave no
// trace; a peer that stays down must produce the full augmented
// withdrawal sweep exactly once.

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/bgp/fsm/faultconn"
	"rex/internal/event"
)

// sessionEventRecorder accumulates SessionEvents for assertions.
type sessionEventRecorder struct {
	mu     sync.Mutex
	events []SessionEvent
}

func (r *sessionEventRecorder) handle(e SessionEvent) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *sessionEventRecorder) count(kind SessionEventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func (r *sessionEventRecorder) last(kind SessionEventKind) (SessionEvent, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.events) - 1; i >= 0; i-- {
		if r.events[i].Kind == kind {
			return r.events[i], true
		}
	}
	return SessionEvent{}, false
}

// startResilientCollector runs a collector with graceful-restart
// retention on and the given window.
func startResilientCollector(t *testing.T, window time.Duration, mutate func(*Config)) (*Collector, *Recorder, *sessionEventRecorder, string) {
	t.Helper()
	rec := NewRecorder()
	ser := &sessionEventRecorder{}
	cfg := Config{
		LocalAS:               25,
		LocalID:               netip.MustParseAddr("10.255.0.1"),
		HoldTime:              30 * time.Second,
		WithdrawOnSessionLoss: true,
		RestartTime:           window,
		OnSessionEvent:        ser.handle,
		Logf:                  t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c := New(cfg, rec.Handle)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := c.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { c.Close() })
	return c, rec, ser, ln.Addr().String()
}

// dialFaultRouter establishes a session to the collector through a
// fault-injection conn the test can Cut at will.
func dialFaultRouter(t *testing.T, addr, routerID string) (*fsm.Session, *faultconn.Conn) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := faultconn.New(raw, faultconn.Options{})
	s, err := fsm.Establish(fc, fsm.Config{
		LocalAS: 25,
		LocalID: netip.MustParseAddr(routerID),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, fc
}

func testPrefix(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i + 1), 0, 0}), 16)
}

func announceN(t *testing.T, s *fsm.Session, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		u := &bgp.Update{Attrs: attrs("10.0.0.9", 1, uint32(100+i)), NLRI: []netip.Prefix{testPrefix(i)}}
		if err := s.Send(u); err != nil {
			t.Fatalf("announce %d: %v", i, err)
		}
	}
}

func countByType(events event.Stream) (announces, withdraws int) {
	for _, e := range events {
		switch e.Type {
		case event.Announce:
			announces++
		case event.Withdraw:
			withdraws++
		}
	}
	return
}

// TestFlapWithinWindowNoSpuriousWithdrawals is the headline acceptance
// criterion: a session dropped mid-stream and re-established within the
// restart window, with every route re-announced, must contribute zero
// withdraw events — and the identical re-announcements are silent too.
func TestFlapWithinWindowNoSpuriousWithdrawals(t *testing.T) {
	c, rec, ser, addr := startResilientCollector(t, 1500*time.Millisecond, nil)
	const routes = 5

	r1, fc := dialFaultRouter(t, addr, "128.32.1.3")
	announceN(t, r1, routes)
	waitFor(t, "announces", func() bool { return rec.Len() >= routes })

	// The network weather hits: a mid-stream reset, no CEASE.
	fc.Cut()
	waitFor(t, "session down", func() bool { return ser.count(SessionDown) >= 1 })
	if got := c.NumRoutes(); got != routes {
		t.Fatalf("routes dropped on session loss: %d, want %d retained", got, routes)
	}

	// The peer returns within the window and re-announces everything.
	r2, _ := dialFaultRouter(t, addr, "128.32.1.3")
	announceN(t, r2, routes)

	// Let the window expire and reconcile.
	waitFor(t, "reconcile", func() bool { return ser.count(RestartReconciled) >= 1 })
	announces, withdraws := countByType(rec.Events())
	if withdraws != 0 {
		t.Errorf("spurious withdraw events = %d, want 0\nstream: %v", withdraws, rec.Events())
	}
	if announces != routes {
		t.Errorf("announce events = %d, want %d (identical re-announcements are silent)", announces, routes)
	}
	if got := c.NumRoutes(); got != routes {
		t.Errorf("NumRoutes = %d, want %d", got, routes)
	}
	if ev, ok := ser.last(RestartReconciled); !ok || ev.Routes != 0 {
		t.Errorf("reconcile swept %d routes, want 0", ev.Routes)
	}
}

// TestPeerStaysDownFullSweepExactlyOnce is the other half of the
// criterion: past the window, the full augmented sweep fires — once.
func TestPeerStaysDownFullSweepExactlyOnce(t *testing.T) {
	c, rec, ser, addr := startResilientCollector(t, 300*time.Millisecond, nil)
	const routes = 5

	r1, fc := dialFaultRouter(t, addr, "128.32.1.3")
	announceN(t, r1, routes)
	waitFor(t, "announces", func() bool { return rec.Len() >= routes })
	fc.Cut()

	waitFor(t, "restart expiry", func() bool { return ser.count(RestartExpired) >= 1 })
	// Give any (buggy) second sweep a chance to materialize.
	time.Sleep(100 * time.Millisecond)

	_, withdraws := countByType(rec.Events())
	if withdraws != routes {
		t.Errorf("withdraw events = %d, want exactly %d", withdraws, routes)
	}
	for _, e := range rec.Events() {
		if e.Type == event.Withdraw && e.Attrs == nil {
			t.Errorf("sweep withdrawal for %v not augmented", e.Prefix)
		}
	}
	if n := ser.count(RestartExpired); n != 1 {
		t.Errorf("RestartExpired fired %d times", n)
	}
	if got := c.NumRoutes(); got != 0 {
		t.Errorf("NumRoutes = %d after expiry", got)
	}
	if infos := c.PeerInfos(); len(infos) != 0 {
		t.Errorf("peer state leaked past expiry: %v", infos)
	}
}

// TestPartialReannounceWithdrawsOnlyTheMissing: the reconcile
// distinguishes refreshed routes (silent), changed routes (announce),
// and never-re-announced routes (end-of-restart withdrawal).
func TestPartialReannounceWithdrawsOnlyTheMissing(t *testing.T) {
	_, rec, ser, addr := startResilientCollector(t, 800*time.Millisecond, nil)
	const routes = 5

	r1, fc := dialFaultRouter(t, addr, "128.32.1.3")
	announceN(t, r1, routes)
	waitFor(t, "announces", func() bool { return rec.Len() >= routes })
	fc.Cut()
	waitFor(t, "session down", func() bool { return ser.count(SessionDown) >= 1 })

	r2, _ := dialFaultRouter(t, addr, "128.32.1.3")
	// Re-announce 0 and 1 unchanged; 2 with a different path (a real
	// routing change that happened while the session was down).
	announceN(t, r2, 2)
	changed := attrs("10.0.0.9", 1, 7, 102)
	if err := r2.Send(&bgp.Update{Attrs: changed, NLRI: []netip.Prefix{testPrefix(2)}}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "reconcile", func() bool { return ser.count(RestartReconciled) >= 1 })
	var lateAnnounces, withdraws int
	for _, e := range rec.Events()[routes:] {
		switch e.Type {
		case event.Announce:
			lateAnnounces++
			if e.Prefix != testPrefix(2) || !e.Attrs.Equal(changed) {
				t.Errorf("unexpected announce %v", &e)
			}
		case event.Withdraw:
			withdraws++
			if e.Prefix != testPrefix(3) && e.Prefix != testPrefix(4) {
				t.Errorf("withdrew re-announced prefix %v", e.Prefix)
			}
			if e.Attrs == nil {
				t.Errorf("unaugmented end-of-restart withdrawal for %v", e.Prefix)
			}
		}
	}
	if lateAnnounces != 1 {
		t.Errorf("post-flap announces = %d, want 1 (only the changed route)", lateAnnounces)
	}
	if withdraws != 2 {
		t.Errorf("end-of-restart withdrawals = %d, want 2", withdraws)
	}
	if ev, _ := ser.last(RestartReconciled); ev.Routes != 2 {
		t.Errorf("reconcile event reports %d swept routes, want 2", ev.Routes)
	}
}

// TestSessionReplacementHandsOffRIB: a duplicate session for a connected
// peer must inherit the Adj-RIB-In — no withdrawal storm interleaved
// with the new session's announcements (the seed's behaviour).
func TestSessionReplacementHandsOffRIB(t *testing.T) {
	c, rec, ser, addr := startResilientCollector(t, 800*time.Millisecond, nil)
	const routes = 3

	r1, _ := dialFaultRouter(t, addr, "128.32.1.3")
	announceN(t, r1, routes)
	waitFor(t, "announces", func() bool { return rec.Len() >= routes })

	// Same router ID connects again while the first session is healthy.
	r2, _ := dialFaultRouter(t, addr, "128.32.1.3")
	waitFor(t, "replacement", func() bool { return ser.count(SessionReplaced) >= 1 })
	// The old session is torn down...
	select {
	case <-r1.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("replaced session not closed")
	}
	// ...without a withdrawal flood.
	announceN(t, r2, 2) // re-announce 2 of 3, unchanged
	waitFor(t, "reconcile", func() bool { return ser.count(RestartReconciled) >= 1 })

	announces, withdraws := countByType(rec.Events())
	if announces != routes {
		t.Errorf("announces = %d, want %d (handoff re-announcements are silent)", announces, routes)
	}
	if withdraws != 1 {
		t.Errorf("withdraws = %d, want 1 (only the never-re-announced route)", withdraws)
	}
	if got := c.NumRoutes(); got != 2 {
		t.Errorf("NumRoutes = %d, want 2", got)
	}
	if peers := c.Peers(); len(peers) != 1 {
		t.Errorf("Peers = %v", peers)
	}
}

// TestEndOfRIBReconcilesEarly: an RFC 4724-style End-of-RIB marker from
// a returned peer closes the restart window immediately — the collector
// does not sit out a long window when the peer says it is done.
func TestEndOfRIBReconcilesEarly(t *testing.T) {
	_, rec, ser, addr := startResilientCollector(t, 30*time.Second, nil)
	const routes = 4

	r1, fc := dialFaultRouter(t, addr, "128.32.1.3")
	announceN(t, r1, routes)
	waitFor(t, "announces", func() bool { return rec.Len() >= routes })
	fc.Cut()
	waitFor(t, "session down", func() bool { return ser.count(SessionDown) >= 1 })

	r2, _ := dialFaultRouter(t, addr, "128.32.1.3")
	announceN(t, r2, 2)
	if err := r2.Send(&bgp.Update{}); err != nil { // End-of-RIB
		t.Fatal(err)
	}
	// Well before the 30s window: the EOR forces the reconcile.
	waitFor(t, "EOR reconcile", func() bool { return ser.count(RestartReconciled) >= 1 })
	_, withdraws := countByType(rec.Events())
	if withdraws != 2 {
		t.Errorf("withdrawals after EOR = %d, want 2", withdraws)
	}
}

// TestFlapStormSoak hammers one peer with repeated mid-stream resets and
// re-announcements, all within restart windows: the entire storm must be
// invisible in the event stream — no withdraw/re-announce bursts, ever.
func TestFlapStormSoak(t *testing.T) {
	c, rec, ser, addr := startResilientCollector(t, 5*time.Second, nil)
	const routes = 5
	const flaps = 8

	r, _ := dialFaultRouter(t, addr, "128.32.1.3")
	announceN(t, r, routes)
	waitFor(t, "initial announces", func() bool { return rec.Len() >= routes })

	for i := 0; i < flaps; i++ {
		// Kill the live session mid-stream, from whichever side the
		// fault conn wraps, then come straight back and re-announce.
		prevDowns := ser.count(SessionDown) + ser.count(SessionReplaced)
		r.Close()
		waitFor(t, "flap observed", func() bool {
			return ser.count(SessionDown)+ser.count(SessionReplaced) > prevDowns
		})
		r, _ = dialFaultRouter(t, addr, "128.32.1.3")
		announceN(t, r, routes)
		waitFor(t, "session back up", func() bool {
			peers := c.Peers()
			return len(peers) == 1
		})
	}
	// Declare the final table complete and reconcile.
	if err := r.Send(&bgp.Update{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "final reconcile", func() bool { return ser.count(RestartReconciled) >= 1 })

	announces, withdraws := countByType(rec.Events())
	if withdraws != 0 {
		t.Errorf("flap storm leaked %d withdraw events into the stream", withdraws)
	}
	if announces != routes {
		t.Errorf("flap storm leaked re-announce events: %d announces, want %d", announces, routes)
	}
	if n := ser.count(RestartExpired); n != 0 {
		t.Errorf("full-table sweeps during storm = %d, want 0", n)
	}
	if got := c.NumRoutes(); got != routes {
		t.Errorf("NumRoutes = %d, want %d", got, routes)
	}
}

// TestHandshakeFailureReported: garbage on the wire used to vanish
// without a trace; now it surfaces through OnSessionEvent.
func TestHandshakeFailureReported(t *testing.T) {
	_, _, ser, addr := startResilientCollector(t, time.Second, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Longer than a BGP header (19 bytes) so the read completes and fails
	// on the bad marker rather than blocking for more bytes.
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: example.test\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "handshake failure report", func() bool { return ser.count(HandshakeFailed) >= 1 })
	ev, _ := ser.last(HandshakeFailed)
	if ev.Err == nil {
		t.Error("handshake failure reported without an error")
	}
	if ev.Remote == "" {
		t.Error("handshake failure reported without the remote address")
	}
}

// TestMaxPrefixTeardownBypassesRestartWindow: a max-prefix CEASE is a
// deliberate local action — the withdrawal sweep is immediate and the
// teardown is reported, even with a long restart window configured.
func TestMaxPrefixTeardownBypassesRestartWindow(t *testing.T) {
	c, rec, ser, addr := startResilientCollector(t, 30*time.Second, func(cfg *Config) {
		cfg.MaxPrefixes = 3
	})
	r, _ := dialFaultRouter(t, addr, "128.32.1.3")
	for i := 0; i < 6; i++ {
		u := &bgp.Update{Attrs: attrs("10.0.0.9", 1, uint32(100+i)), NLRI: []netip.Prefix{testPrefix(i)}}
		if err := r.Send(u); err != nil {
			break // the CEASE may already have landed
		}
	}
	waitFor(t, "teardown report", func() bool { return ser.count(MaxPrefixTeardown) >= 1 })
	waitFor(t, "immediate sweep", func() bool {
		_, withdraws := countByType(rec.Events())
		return withdraws >= 4
	})
	if n := c.NumRoutes(); n != 0 {
		t.Errorf("NumRoutes = %d after max-prefix teardown", n)
	}
	if pending := c.PeerInfos(); len(pending) != 0 {
		t.Errorf("restart window opened for a max-prefix teardown: %v", pending)
	}
}
