package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
)

// MessageType identifies a BGP message (RFC 4271 §4.1).
type MessageType uint8

// BGP message types.
const (
	TypeOpen         MessageType = 1
	TypeUpdate       MessageType = 2
	TypeNotification MessageType = 3
	TypeKeepalive    MessageType = 4
)

// String returns the RFC name of the message type.
func (t MessageType) String() string {
	switch t {
	case TypeOpen:
		return "OPEN"
	case TypeUpdate:
		return "UPDATE"
	case TypeNotification:
		return "NOTIFICATION"
	case TypeKeepalive:
		return "KEEPALIVE"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Wire size limits (RFC 4271 §4.1).
const (
	headerLen  = 19
	MaxMsgLen  = 4096
	markerByte = 0xFF
)

// Message is any decodable BGP message.
type Message interface {
	// Type returns the message's wire type.
	Type() MessageType
	// marshalBody appends the message body (everything after the common
	// header) to dst.
	marshalBody(dst []byte, fourByteAS bool) ([]byte, error)
}

// Capability codes used in OPEN optional parameters.
const (
	capFourByteAS = 65 // RFC 6793
)

// Open is the BGP OPEN message.
type Open struct {
	// AS is the sender's autonomous system number. ASNs above 65535 are
	// carried via the 4-octet capability with AS_TRANS on the wire.
	AS       uint32
	HoldTime uint16
	BGPID    netip.Addr
	// FourByteAS advertises the RFC 6793 capability.
	FourByteAS bool
}

// asTrans is the 2-octet placeholder for a 4-octet ASN (RFC 6793).
const asTrans = 23456

// Type implements Message.
func (*Open) Type() MessageType { return TypeOpen }

func (o *Open) marshalBody(dst []byte, _ bool) ([]byte, error) {
	if !o.BGPID.Is4() {
		return nil, fmt.Errorf("marshal OPEN: BGP identifier %v is not IPv4", o.BGPID)
	}
	wireAS := o.AS
	if wireAS > 0xFFFF {
		if !o.FourByteAS {
			return nil, fmt.Errorf("marshal OPEN: AS %d requires the 4-octet capability", o.AS)
		}
		wireAS = asTrans
	}
	dst = append(dst, Version)
	dst = binary.BigEndian.AppendUint16(dst, uint16(wireAS))
	dst = binary.BigEndian.AppendUint16(dst, o.HoldTime)
	id := o.BGPID.As4()
	dst = append(dst, id[:]...)
	if !o.FourByteAS {
		return append(dst, 0), nil // no optional parameters
	}
	// One optional parameter: capabilities (type 2), containing the
	// 4-octet-AS capability with the real ASN.
	capBody := binary.BigEndian.AppendUint32(nil, o.AS)
	capTLV := append([]byte{capFourByteAS, byte(len(capBody))}, capBody...)
	param := append([]byte{2, byte(len(capTLV))}, capTLV...)
	dst = append(dst, byte(len(param)))
	return append(dst, param...), nil
}

func unmarshalOpen(b []byte) (*Open, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("OPEN: body too short (%d bytes)", len(b))
	}
	if b[0] != Version {
		return nil, fmt.Errorf("OPEN: unsupported version %d", b[0])
	}
	o := &Open{
		AS:       uint32(binary.BigEndian.Uint16(b[1:3])),
		HoldTime: binary.BigEndian.Uint16(b[3:5]),
		BGPID:    netip.AddrFrom4([4]byte(b[5:9])),
	}
	optLen := int(b[9])
	opts := b[10:]
	if len(opts) != optLen {
		return nil, fmt.Errorf("OPEN: optional parameter length %d, have %d bytes", optLen, len(opts))
	}
	for len(opts) > 0 {
		if len(opts) < 2 {
			return nil, errors.New("OPEN: truncated optional parameter")
		}
		pType, pLen := opts[0], int(opts[1])
		if len(opts) < 2+pLen {
			return nil, errors.New("OPEN: truncated optional parameter body")
		}
		body := opts[2 : 2+pLen]
		opts = opts[2+pLen:]
		if pType != 2 { // not capabilities; ignore
			continue
		}
		for len(body) > 0 {
			if len(body) < 2 {
				return nil, errors.New("OPEN: truncated capability")
			}
			cCode, cLen := body[0], int(body[1])
			if len(body) < 2+cLen {
				return nil, errors.New("OPEN: truncated capability body")
			}
			if cCode == capFourByteAS {
				if cLen != 4 {
					return nil, fmt.Errorf("OPEN: 4-octet-AS capability length %d", cLen)
				}
				o.FourByteAS = true
				o.AS = binary.BigEndian.Uint32(body[2:6])
			}
			body = body[2+cLen:]
		}
	}
	return o, nil
}

// Update is the BGP UPDATE message: withdrawn routes, path attributes, and
// the NLRI the attributes apply to.
type Update struct {
	Withdrawn []netip.Prefix
	Attrs     *PathAttrs
	NLRI      []netip.Prefix
}

// Type implements Message.
func (*Update) Type() MessageType { return TypeUpdate }

func (u *Update) marshalBody(dst []byte, fourByteAS bool) ([]byte, error) {
	var wd []byte
	var err error
	for _, p := range u.Withdrawn {
		if wd, err = appendWirePrefix(wd, p); err != nil {
			return nil, fmt.Errorf("UPDATE withdrawn: %w", err)
		}
	}
	if len(wd) > 0xFFFF {
		return nil, fmt.Errorf("UPDATE: withdrawn routes block %d bytes exceeds 65535", len(wd))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(wd)))
	dst = append(dst, wd...)

	var attrs []byte
	if u.Attrs != nil && len(u.NLRI) > 0 {
		if attrs, err = u.Attrs.marshalAttrs(fourByteAS); err != nil {
			return nil, fmt.Errorf("UPDATE: %w", err)
		}
	}
	if len(attrs) > 0xFFFF {
		return nil, fmt.Errorf("UPDATE: attribute block %d bytes exceeds 65535", len(attrs))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
	dst = append(dst, attrs...)

	for _, p := range u.NLRI {
		if dst, err = appendWirePrefix(dst, p); err != nil {
			return nil, fmt.Errorf("UPDATE NLRI: %w", err)
		}
	}
	return dst, nil
}

func unmarshalUpdate(b []byte, fourByteAS bool) (*Update, error) {
	if len(b) < 2 {
		return nil, errors.New("UPDATE: truncated withdrawn length")
	}
	wdLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < wdLen {
		return nil, errors.New("UPDATE: truncated withdrawn routes")
	}
	u := &Update{}
	var err error
	if wdLen > 0 {
		if u.Withdrawn, err = decodeWirePrefixes(b[:wdLen]); err != nil {
			return nil, fmt.Errorf("UPDATE withdrawn: %w", err)
		}
	}
	b = b[wdLen:]
	if len(b) < 2 {
		return nil, errors.New("UPDATE: truncated attribute length")
	}
	attrLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < attrLen {
		return nil, errors.New("UPDATE: truncated path attributes")
	}
	if attrLen > 0 {
		if u.Attrs, err = unmarshalAttrs(b[:attrLen], fourByteAS); err != nil {
			return nil, fmt.Errorf("UPDATE: %w", err)
		}
	}
	b = b[attrLen:]
	if len(b) > 0 {
		if u.NLRI, err = decodeWirePrefixes(b); err != nil {
			return nil, fmt.Errorf("UPDATE NLRI: %w", err)
		}
	}
	if len(u.NLRI) > 0 && u.Attrs == nil {
		return nil, errors.New("UPDATE: NLRI present without path attributes")
	}
	return u, nil
}

// Keepalive is the (empty) BGP KEEPALIVE message.
type Keepalive struct{}

// Type implements Message.
func (Keepalive) Type() MessageType { return TypeKeepalive }

func (Keepalive) marshalBody(dst []byte, _ bool) ([]byte, error) { return dst, nil }

// Notification is the BGP NOTIFICATION message, sent before closing a
// session on error.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// NOTIFICATION error codes (RFC 4271 §4.5).
const (
	NotifMessageHeaderError = 1
	NotifOpenError          = 2
	NotifUpdateError        = 3
	NotifHoldTimerExpired   = 4
	NotifFSMError           = 5
	NotifCease              = 6
)

// OPEN message error subcodes (RFC 4271 §6.2).
const (
	OpenBadPeerAS            = 2
	OpenBadBGPIdentifier     = 3
	OpenUnacceptableHoldTime = 6
)

// Type implements Message.
func (*Notification) Type() MessageType { return TypeNotification }

func (n *Notification) marshalBody(dst []byte, _ bool) ([]byte, error) {
	dst = append(dst, n.Code, n.Subcode)
	return append(dst, n.Data...), nil
}

// Error makes Notification usable as an error describing why a peer closed
// the session.
func (n *Notification) Error() string {
	return fmt.Sprintf("bgp notification: code %d subcode %d", n.Code, n.Subcode)
}

// Marshal encodes msg with the 19-byte common header. fourByteAS must
// reflect the session's negotiated RFC 6793 capability.
func Marshal(msg Message, fourByteAS bool) ([]byte, error) {
	buf := make([]byte, headerLen, headerLen+64)
	for i := 0; i < 16; i++ {
		buf[i] = markerByte
	}
	buf[18] = byte(msg.Type())
	buf, err := msg.marshalBody(buf, fourByteAS)
	if err != nil {
		return nil, err
	}
	if len(buf) > MaxMsgLen {
		return nil, fmt.Errorf("marshal %v: %d bytes exceeds max message size %d", msg.Type(), len(buf), MaxMsgLen)
	}
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(buf)))
	return buf, nil
}

// Unmarshal decodes one complete wire message (header included).
func Unmarshal(b []byte, fourByteAS bool) (Message, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("message: %d bytes shorter than header", len(b))
	}
	for i := 0; i < 16; i++ {
		if b[i] != markerByte {
			return nil, errors.New("message: bad marker")
		}
	}
	length := int(binary.BigEndian.Uint16(b[16:18]))
	if length != len(b) {
		return nil, fmt.Errorf("message: header length %d, have %d bytes", length, len(b))
	}
	body := b[headerLen:]
	switch MessageType(b[18]) {
	case TypeOpen:
		return unmarshalOpen(body)
	case TypeUpdate:
		return unmarshalUpdate(body, fourByteAS)
	case TypeKeepalive:
		if len(body) != 0 {
			return nil, errors.New("KEEPALIVE: unexpected body")
		}
		return Keepalive{}, nil
	case TypeNotification:
		if len(body) < 2 {
			return nil, errors.New("NOTIFICATION: body too short")
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	default:
		return nil, fmt.Errorf("message: unknown type %d", b[18])
	}
}

// ReadMessage reads and decodes exactly one message from r.
func ReadMessage(r io.Reader, fourByteAS bool) (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[16:18]))
	if length < headerLen || length > MaxMsgLen {
		return nil, fmt.Errorf("message: invalid length %d", length)
	}
	buf := make([]byte, length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		return nil, fmt.Errorf("message body: %w", err)
	}
	return Unmarshal(buf, fourByteAS)
}

// WriteMessage encodes and writes msg to w.
func WriteMessage(w io.Writer, msg Message, fourByteAS bool) error {
	buf, err := Marshal(msg, fourByteAS)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
