package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"slices"
	"sort"
	"strings"
)

// Path attribute type codes (RFC 4271 §4.3, RFC 1997).
const (
	attrOrigin          = 1
	attrASPath          = 2
	attrNexthop         = 3
	attrMED             = 4
	attrLocalPref       = 5
	attrAtomicAggregate = 6
	attrAggregator      = 7
	attrCommunities     = 8
	attrOriginatorID    = 9
	attrClusterList     = 10
)

// Path attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLength  = 0x10
)

// PathAttrs carries the decoded path attributes of a route or UPDATE.
//
// MED and LOCAL_PREF are optional on the wire; the Has fields distinguish
// "absent" from "present with value 0", which matters to the decision
// process (a missing MED is compared as 0 by default but the distinction
// is preserved for policy and diagnosis).
type PathAttrs struct {
	Origin          Origin
	ASPath          ASPath
	Nexthop         netip.Addr
	MED             uint32
	HasMED          bool
	LocalPref       uint32
	HasLocalPref    bool
	AtomicAggregate bool
	Aggregator      *Aggregator
	Communities     []Community
	// OriginatorID and ClusterList are the route-reflection attributes
	// (RFC 4456): the reflected route's original injector and the cluster
	// path it traversed. Reflectors use them for loop prevention.
	OriginatorID netip.Addr
	ClusterList  []netip.Addr
}

// Clone returns a deep copy of the attributes.
func (a *PathAttrs) Clone() *PathAttrs {
	if a == nil {
		return nil
	}
	out := *a
	out.ASPath = a.ASPath.Clone()
	out.Communities = slices.Clone(a.Communities)
	out.ClusterList = slices.Clone(a.ClusterList)
	if a.Aggregator != nil {
		agg := *a.Aggregator
		out.Aggregator = &agg
	}
	return &out
}

// HasCommunity reports whether c is attached to the route.
func (a *PathAttrs) HasCommunity(c Community) bool {
	return a != nil && slices.Contains(a.Communities, c)
}

// AddCommunity attaches c if not already present, keeping the list sorted
// so attribute comparison and wire encoding are deterministic.
func (a *PathAttrs) AddCommunity(c Community) {
	if a.HasCommunity(c) {
		return
	}
	a.Communities = append(a.Communities, c)
	sort.Slice(a.Communities, func(i, j int) bool { return a.Communities[i] < a.Communities[j] })
}

// Equal reports whether two attribute sets are semantically identical.
func (a *PathAttrs) Equal(b *PathAttrs) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Origin != b.Origin ||
		a.Nexthop != b.Nexthop ||
		a.HasMED != b.HasMED || (a.HasMED && a.MED != b.MED) ||
		a.HasLocalPref != b.HasLocalPref || (a.HasLocalPref && a.LocalPref != b.LocalPref) ||
		a.AtomicAggregate != b.AtomicAggregate {
		return false
	}
	if (a.Aggregator == nil) != (b.Aggregator == nil) {
		return false
	}
	if a.Aggregator != nil && *a.Aggregator != *b.Aggregator {
		return false
	}
	if a.OriginatorID != b.OriginatorID || !slices.Equal(a.ClusterList, b.ClusterList) {
		return false
	}
	return a.ASPath.Equal(b.ASPath) && slices.Equal(a.Communities, b.Communities)
}

// String renders the attributes compactly for logs and event streams.
func (a *PathAttrs) String() string {
	if a == nil {
		return "<nil attrs>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "nexthop=%v aspath=[%v] origin=%v", a.Nexthop, a.ASPath, a.Origin)
	if a.HasMED {
		fmt.Fprintf(&b, " med=%d", a.MED)
	}
	if a.HasLocalPref {
		fmt.Fprintf(&b, " localpref=%d", a.LocalPref)
	}
	if len(a.Communities) > 0 {
		b.WriteString(" communities=")
		for i, c := range a.Communities {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// appendAttr appends one encoded path attribute, using the extended-length
// form only when required.
func appendAttr(dst []byte, flags, code byte, body []byte) []byte {
	if len(body) > 255 {
		flags |= flagExtLength
		dst = append(dst, flags, code, byte(len(body)>>8), byte(len(body)))
	} else {
		dst = append(dst, flags, code, byte(len(body)))
	}
	return append(dst, body...)
}

// marshalAttrs encodes the attributes in the canonical (ascending type
// code) order. fourByteAS selects 4-octet ASN encoding in AS_PATH and
// AGGREGATOR, as negotiated by the RFC 6793 capability.
func (a *PathAttrs) marshalAttrs(fourByteAS bool) ([]byte, error) {
	if a == nil {
		return nil, nil
	}
	if !a.Origin.Valid() {
		return nil, fmt.Errorf("marshal attrs: invalid origin %d", a.Origin)
	}
	var dst []byte
	dst = appendAttr(dst, flagTransitive, attrOrigin, []byte{byte(a.Origin)})

	asBody, err := marshalASPath(a.ASPath, fourByteAS)
	if err != nil {
		return nil, err
	}
	dst = appendAttr(dst, flagTransitive, attrASPath, asBody)

	if a.Nexthop.IsValid() {
		if !a.Nexthop.Is4() {
			return nil, fmt.Errorf("marshal attrs: NEXT_HOP %v is not IPv4", a.Nexthop)
		}
		nh := a.Nexthop.As4()
		dst = appendAttr(dst, flagTransitive, attrNexthop, nh[:])
	}
	if a.HasMED {
		var med [4]byte
		binary.BigEndian.PutUint32(med[:], a.MED)
		dst = appendAttr(dst, flagOptional, attrMED, med[:])
	}
	if a.HasLocalPref {
		var lp [4]byte
		binary.BigEndian.PutUint32(lp[:], a.LocalPref)
		dst = appendAttr(dst, flagTransitive, attrLocalPref, lp[:])
	}
	if a.AtomicAggregate {
		dst = appendAttr(dst, flagTransitive, attrAtomicAggregate, nil)
	}
	if a.Aggregator != nil {
		if !a.Aggregator.Addr.Is4() {
			return nil, fmt.Errorf("marshal attrs: aggregator addr %v is not IPv4", a.Aggregator.Addr)
		}
		addr := a.Aggregator.Addr.As4()
		var body []byte
		if fourByteAS {
			body = binary.BigEndian.AppendUint32(body, a.Aggregator.AS)
		} else {
			body = binary.BigEndian.AppendUint16(body, uint16(a.Aggregator.AS))
		}
		body = append(body, addr[:]...)
		dst = appendAttr(dst, flagOptional|flagTransitive, attrAggregator, body)
	}
	if len(a.Communities) > 0 {
		body := make([]byte, 0, 4*len(a.Communities))
		for _, c := range a.Communities {
			body = binary.BigEndian.AppendUint32(body, uint32(c))
		}
		dst = appendAttr(dst, flagOptional|flagTransitive, attrCommunities, body)
	}
	if a.OriginatorID.IsValid() {
		if !a.OriginatorID.Is4() {
			return nil, fmt.Errorf("marshal attrs: ORIGINATOR_ID %v is not IPv4", a.OriginatorID)
		}
		id := a.OriginatorID.As4()
		dst = appendAttr(dst, flagOptional, attrOriginatorID, id[:])
	}
	if len(a.ClusterList) > 0 {
		body := make([]byte, 0, 4*len(a.ClusterList))
		for _, c := range a.ClusterList {
			if !c.Is4() {
				return nil, fmt.Errorf("marshal attrs: CLUSTER_LIST entry %v is not IPv4", c)
			}
			c4 := c.As4()
			body = append(body, c4[:]...)
		}
		dst = appendAttr(dst, flagOptional, attrClusterList, body)
	}
	return dst, nil
}

func marshalASPath(p ASPath, fourByteAS bool) ([]byte, error) {
	var dst []byte
	for _, seg := range p {
		if len(seg.ASNs) == 0 {
			return nil, fmt.Errorf("marshal as-path: empty segment")
		}
		if len(seg.ASNs) > 255 {
			return nil, fmt.Errorf("marshal as-path: segment of %d ASNs exceeds 255", len(seg.ASNs))
		}
		dst = append(dst, byte(seg.Type), byte(len(seg.ASNs)))
		for _, asn := range seg.ASNs {
			if fourByteAS {
				dst = binary.BigEndian.AppendUint32(dst, asn)
			} else {
				if asn > 0xFFFF {
					return nil, fmt.Errorf("marshal as-path: ASN %d needs 4-octet encoding", asn)
				}
				dst = binary.BigEndian.AppendUint16(dst, uint16(asn))
			}
		}
	}
	return dst, nil
}

func unmarshalASPath(b []byte, fourByteAS bool) (ASPath, error) {
	asnLen := 2
	if fourByteAS {
		asnLen = 4
	}
	var path ASPath
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("as-path: truncated segment header")
		}
		segType := SegmentType(b[0])
		if segType != SegmentSet && segType != SegmentSequence {
			return nil, fmt.Errorf("as-path: unknown segment type %d", segType)
		}
		count := int(b[1])
		b = b[2:]
		if len(b) < count*asnLen {
			return nil, fmt.Errorf("as-path: truncated segment body")
		}
		asns := make([]uint32, count)
		for i := 0; i < count; i++ {
			if fourByteAS {
				asns[i] = binary.BigEndian.Uint32(b[i*4:])
			} else {
				asns[i] = uint32(binary.BigEndian.Uint16(b[i*2:]))
			}
		}
		path = append(path, PathSegment{Type: segType, ASNs: asns})
		b = b[count*asnLen:]
	}
	return path, nil
}

// unmarshalAttrs decodes a path attribute block. Unknown optional
// attributes are skipped (the collector's job is observation, not
// validation); unknown well-known attributes are an error.
func unmarshalAttrs(b []byte, fourByteAS bool) (*PathAttrs, error) {
	a := &PathAttrs{}
	for len(b) > 0 {
		if len(b) < 3 {
			return nil, fmt.Errorf("attrs: truncated attribute header")
		}
		flags, code := b[0], b[1]
		var bodyLen, hdrLen int
		if flags&flagExtLength != 0 {
			if len(b) < 4 {
				return nil, fmt.Errorf("attrs: truncated extended-length header")
			}
			bodyLen = int(binary.BigEndian.Uint16(b[2:4]))
			hdrLen = 4
		} else {
			bodyLen = int(b[2])
			hdrLen = 3
		}
		if len(b) < hdrLen+bodyLen {
			return nil, fmt.Errorf("attrs: attribute %d body truncated", code)
		}
		body := b[hdrLen : hdrLen+bodyLen]
		b = b[hdrLen+bodyLen:]

		switch code {
		case attrOrigin:
			if bodyLen != 1 {
				return nil, fmt.Errorf("attrs: ORIGIN length %d", bodyLen)
			}
			a.Origin = Origin(body[0])
			if !a.Origin.Valid() {
				return nil, fmt.Errorf("attrs: invalid ORIGIN %d", body[0])
			}
		case attrASPath:
			path, err := unmarshalASPath(body, fourByteAS)
			if err != nil {
				return nil, err
			}
			a.ASPath = path
		case attrNexthop:
			if bodyLen != 4 {
				return nil, fmt.Errorf("attrs: NEXT_HOP length %d", bodyLen)
			}
			a.Nexthop = netip.AddrFrom4([4]byte(body))
		case attrMED:
			if bodyLen != 4 {
				return nil, fmt.Errorf("attrs: MED length %d", bodyLen)
			}
			a.MED = binary.BigEndian.Uint32(body)
			a.HasMED = true
		case attrLocalPref:
			if bodyLen != 4 {
				return nil, fmt.Errorf("attrs: LOCAL_PREF length %d", bodyLen)
			}
			a.LocalPref = binary.BigEndian.Uint32(body)
			a.HasLocalPref = true
		case attrAtomicAggregate:
			a.AtomicAggregate = true
		case attrAggregator:
			want := 6
			if fourByteAS {
				want = 8
			}
			if bodyLen != want {
				return nil, fmt.Errorf("attrs: AGGREGATOR length %d (want %d)", bodyLen, want)
			}
			agg := Aggregator{}
			if fourByteAS {
				agg.AS = binary.BigEndian.Uint32(body)
				agg.Addr = netip.AddrFrom4([4]byte(body[4:]))
			} else {
				agg.AS = uint32(binary.BigEndian.Uint16(body))
				agg.Addr = netip.AddrFrom4([4]byte(body[2:]))
			}
			a.Aggregator = &agg
		case attrCommunities:
			if bodyLen%4 != 0 {
				return nil, fmt.Errorf("attrs: COMMUNITIES length %d not a multiple of 4", bodyLen)
			}
			a.Communities = make([]Community, 0, bodyLen/4)
			for i := 0; i < bodyLen; i += 4 {
				a.Communities = append(a.Communities, Community(binary.BigEndian.Uint32(body[i:])))
			}
		case attrOriginatorID:
			if bodyLen != 4 {
				return nil, fmt.Errorf("attrs: ORIGINATOR_ID length %d", bodyLen)
			}
			a.OriginatorID = netip.AddrFrom4([4]byte(body))
		case attrClusterList:
			if bodyLen%4 != 0 || bodyLen == 0 {
				return nil, fmt.Errorf("attrs: CLUSTER_LIST length %d", bodyLen)
			}
			a.ClusterList = make([]netip.Addr, 0, bodyLen/4)
			for i := 0; i < bodyLen; i += 4 {
				a.ClusterList = append(a.ClusterList, netip.AddrFrom4([4]byte(body[i:i+4])))
			}
		default:
			if flags&flagOptional == 0 {
				return nil, fmt.Errorf("attrs: unrecognized well-known attribute %d", code)
			}
			// Unknown optional attribute: skip.
		}
	}
	return a, nil
}

// MarshalAttrs encodes a path attribute block (the UPDATE "Path
// Attributes" field) for external consumers such as the event-stream
// binary codec and the MRT writer.
func MarshalAttrs(a *PathAttrs, fourByteAS bool) ([]byte, error) {
	return a.marshalAttrs(fourByteAS)
}

// UnmarshalAttrs decodes a path attribute block produced by MarshalAttrs
// or read from an UPDATE/MRT record.
func UnmarshalAttrs(b []byte, fourByteAS bool) (*PathAttrs, error) {
	return unmarshalAttrs(b, fourByteAS)
}
