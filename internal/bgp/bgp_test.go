package bgp

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestCommunityRoundTrip(t *testing.T) {
	tests := []struct {
		asn, val uint16
		want     string
	}{
		{11423, 65350, "11423:65350"},
		{2152, 65297, "2152:65297"},
		{0, 0, "0:0"},
		{65535, 65535, "65535:65535"},
	}
	for _, tt := range tests {
		c := MakeCommunity(tt.asn, tt.val)
		if got := c.String(); got != tt.want {
			t.Errorf("MakeCommunity(%d,%d).String() = %q, want %q", tt.asn, tt.val, got, tt.want)
		}
		back, err := ParseCommunity(tt.want)
		if err != nil {
			t.Fatalf("ParseCommunity(%q): %v", tt.want, err)
		}
		if back != c {
			t.Errorf("ParseCommunity(%q) = %v, want %v", tt.want, back, c)
		}
		if c.ASN() != tt.asn || c.Value() != tt.val {
			t.Errorf("community %v parts = %d:%d, want %d:%d", c, c.ASN(), c.Value(), tt.asn, tt.val)
		}
	}
}

func TestParseCommunityErrors(t *testing.T) {
	for _, s := range []string{"", "11423", "x:1", "1:x", "70000:1", "1:70000"} {
		if _, err := ParseCommunity(s); err == nil {
			t.Errorf("ParseCommunity(%q) succeeded, want error", s)
		}
	}
}

func TestCommunityQuickRoundTrip(t *testing.T) {
	f := func(asn, val uint16) bool {
		c := MakeCommunity(asn, val)
		back, err := ParseCommunity(c.String())
		return err == nil && back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestASPathBasics(t *testing.T) {
	p := Sequence(11423, 209, 701, 1299, 5713)
	if got := p.Length(); got != 5 {
		t.Errorf("Length = %d, want 5", got)
	}
	if got := p.First(); got != 11423 {
		t.Errorf("First = %d, want 11423", got)
	}
	if got := p.OriginAS(); got != 5713 {
		t.Errorf("OriginAS = %d, want 5713", got)
	}
	if !p.Contains(701) || p.Contains(7018) {
		t.Errorf("Contains wrong: 701 in %v, 7018 not in %v", p, p)
	}
	if got := p.String(); got != "11423 209 701 1299 5713" {
		t.Errorf("String = %q", got)
	}
}

func TestASPathEmptyPath(t *testing.T) {
	var p ASPath
	if p.Length() != 0 || p.First() != 0 || p.OriginAS() != 0 || p.Contains(1) {
		t.Errorf("empty path misbehaves: %v", p)
	}
	if p.String() != "" {
		t.Errorf("empty path String = %q", p.String())
	}
	if Sequence() != nil {
		t.Error("Sequence() should be nil")
	}
}

func TestASPathSetLength(t *testing.T) {
	p := ASPath{
		{Type: SegmentSequence, ASNs: []uint32{1, 2}},
		{Type: SegmentSet, ASNs: []uint32{3, 4, 5}},
	}
	if got := p.Length(); got != 3 {
		t.Errorf("Length with AS_SET = %d, want 3 (set counts 1)", got)
	}
	if got := p.OriginAS(); got != 5 {
		t.Errorf("OriginAS = %d, want 5", got)
	}
	if got := p.String(); got != "1 2 {3 4 5}" {
		t.Errorf("String = %q", got)
	}
}

func TestASPathPrepend(t *testing.T) {
	p := Sequence(209, 701)
	q := p.Prepend(11423)
	if got := q.String(); got != "11423 209 701" {
		t.Errorf("Prepend = %q", got)
	}
	if got := p.String(); got != "209 701" {
		t.Errorf("Prepend mutated receiver: %q", got)
	}
	// Prepend to a path starting with an AS_SET creates a new sequence.
	set := ASPath{{Type: SegmentSet, ASNs: []uint32{3, 4}}}
	r := set.Prepend(1)
	if got := r.String(); got != "1 {3 4}" {
		t.Errorf("Prepend to set = %q", got)
	}
	var empty ASPath
	if got := empty.Prepend(7).String(); got != "7" {
		t.Errorf("Prepend to empty = %q", got)
	}
}

func TestASPathCloneIndependence(t *testing.T) {
	p := Sequence(1, 2, 3)
	q := p.Clone()
	q[0].ASNs[0] = 99
	if p[0].ASNs[0] != 1 {
		t.Error("Clone shares storage with original")
	}
	if !p.Equal(p.Clone()) {
		t.Error("Clone not Equal to original")
	}
}

func TestParseASPath(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"11423 209 701", "11423 209 701"},
		{"  11423   209 ", "11423 209"},
		{"1 2 {3 4} 5", "1 2 {3 4} 5"},
		{"{7 8}", "{7 8}"},
		{"", ""},
	}
	for _, tt := range tests {
		p, err := ParseASPath(tt.in)
		if err != nil {
			t.Fatalf("ParseASPath(%q): %v", tt.in, err)
		}
		if got := p.String(); got != tt.want {
			t.Errorf("ParseASPath(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
	for _, bad := range []string{"1 2 {3", "{}", "abc", "1 -2"} {
		if _, err := ParseASPath(bad); err == nil {
			t.Errorf("ParseASPath(%q) succeeded, want error", bad)
		}
	}
}

func TestParseASPathRoundTripQuick(t *testing.T) {
	f := func(asns []uint32) bool {
		if len(asns) == 0 {
			return true
		}
		p := Sequence(asns...)
		back, err := ParseASPath(p.String())
		return err == nil && back.Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func TestWirePrefixRoundTrip(t *testing.T) {
	for _, s := range []string{
		"0.0.0.0/0", "10.0.0.0/8", "128.32.0.0/16", "192.96.10.0/24",
		"62.80.64.0/20", "212.22.132.0/23", "1.2.3.4/32",
	} {
		p := mustPrefix(t, s)
		wire, err := appendWirePrefix(nil, p)
		if err != nil {
			t.Fatalf("encode %v: %v", p, err)
		}
		back, n, err := decodeWirePrefix(wire)
		if err != nil {
			t.Fatalf("decode %v: %v", p, err)
		}
		if n != len(wire) || back != p {
			t.Errorf("round trip %v -> %v (consumed %d of %d)", p, back, n, len(wire))
		}
	}
}

func TestWirePrefixMasksHostBits(t *testing.T) {
	// A sloppy sender can leave host bits set; the decoder must zero them.
	wire := []byte{24, 1, 2, 3}
	p, _, err := decodeWirePrefix(wire)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "1.2.3.0/24" {
		t.Errorf("decoded %v", p)
	}
	// /20 with bits set past the mask inside the third byte.
	wire = []byte{20, 62, 80, 0x4F}
	p, _, err = decodeWirePrefix(wire)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "62.80.64.0/20" {
		t.Errorf("decoded %v, want 62.80.64.0/20", p)
	}
}

func TestWirePrefixErrors(t *testing.T) {
	if _, _, err := decodeWirePrefix(nil); err == nil {
		t.Error("decode empty succeeded")
	}
	if _, _, err := decodeWirePrefix([]byte{33, 1, 2, 3, 4, 5}); err == nil {
		t.Error("decode /33 succeeded")
	}
	if _, _, err := decodeWirePrefix([]byte{24, 1, 2}); err == nil {
		t.Error("decode truncated succeeded")
	}
	v6 := netip.MustParsePrefix("2001:db8::/32")
	if _, err := appendWirePrefix(nil, v6); err == nil {
		t.Error("encode IPv6 succeeded, want error")
	}
}

func TestWirePrefixQuick(t *testing.T) {
	f := func(a, b, c, d byte, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{a, b, c, d}), bits).Masked()
		wire, err := appendWirePrefix(nil, p)
		if err != nil {
			return false
		}
		back, n, err := decodeWirePrefix(wire)
		return err == nil && n == len(wire) && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testAttrs(t *testing.T) *PathAttrs {
	t.Helper()
	return &PathAttrs{
		Origin:       OriginIGP,
		ASPath:       Sequence(11423, 209, 701, 1299, 5713),
		Nexthop:      netip.MustParseAddr("128.32.0.70"),
		MED:          50,
		HasMED:       true,
		LocalPref:    80,
		HasLocalPref: true,
		Communities:  []Community{MakeCommunity(11423, 65350), MakeCommunity(2152, 65297)},
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	for _, fourByte := range []bool{false, true} {
		u := &Update{
			Withdrawn: []netip.Prefix{mustPrefix(t, "192.96.10.0/24"), mustPrefix(t, "12.2.41.0/24")},
			Attrs:     testAttrs(t),
			NLRI:      []netip.Prefix{mustPrefix(t, "62.80.64.0/20")},
		}
		wire, err := Marshal(u, fourByte)
		if err != nil {
			t.Fatalf("Marshal(fourByte=%v): %v", fourByte, err)
		}
		msg, err := Unmarshal(wire, fourByte)
		if err != nil {
			t.Fatalf("Unmarshal(fourByte=%v): %v", fourByte, err)
		}
		back, ok := msg.(*Update)
		if !ok {
			t.Fatalf("Unmarshal returned %T", msg)
		}
		if len(back.Withdrawn) != 2 || back.Withdrawn[0] != u.Withdrawn[0] || back.Withdrawn[1] != u.Withdrawn[1] {
			t.Errorf("withdrawn = %v", back.Withdrawn)
		}
		if len(back.NLRI) != 1 || back.NLRI[0] != u.NLRI[0] {
			t.Errorf("nlri = %v", back.NLRI)
		}
		if !back.Attrs.Equal(u.Attrs) {
			t.Errorf("attrs mismatch:\n got %v\nwant %v", back.Attrs, u.Attrs)
		}
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := &Update{Withdrawn: []netip.Prefix{mustPrefix(t, "10.1.0.0/16")}}
	wire, err := Marshal(u, true)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Unmarshal(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	back := msg.(*Update)
	if back.Attrs != nil || len(back.NLRI) != 0 || len(back.Withdrawn) != 1 {
		t.Errorf("got %+v", back)
	}
}

func TestUpdateFourByteASRequired(t *testing.T) {
	u := &Update{
		Attrs: &PathAttrs{
			Origin:  OriginIGP,
			ASPath:  Sequence(400000, 209),
			Nexthop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []netip.Prefix{mustPrefix(t, "10.1.0.0/16")},
	}
	if _, err := Marshal(u, false); err == nil {
		t.Error("marshal 4-byte ASN in 2-byte session succeeded")
	}
	wire, err := Marshal(u, true)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Unmarshal(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := msg.(*Update).Attrs.ASPath.First(); got != 400000 {
		t.Errorf("first ASN = %d", got)
	}
}

func TestUpdateAggregatorAndAtomic(t *testing.T) {
	u := &Update{
		Attrs: &PathAttrs{
			Origin:          OriginIncomplete,
			ASPath:          Sequence(209),
			Nexthop:         netip.MustParseAddr("10.0.0.1"),
			AtomicAggregate: true,
			Aggregator:      &Aggregator{AS: 209, Addr: netip.MustParseAddr("10.9.9.9")},
		},
		NLRI: []netip.Prefix{mustPrefix(t, "10.0.0.0/8")},
	}
	for _, fourByte := range []bool{false, true} {
		wire, err := Marshal(u, fourByte)
		if err != nil {
			t.Fatal(err)
		}
		msg, err := Unmarshal(wire, fourByte)
		if err != nil {
			t.Fatal(err)
		}
		back := msg.(*Update)
		if !back.Attrs.AtomicAggregate {
			t.Error("lost ATOMIC_AGGREGATE")
		}
		if back.Attrs.Aggregator == nil || *back.Attrs.Aggregator != *u.Attrs.Aggregator {
			t.Errorf("aggregator = %v", back.Attrs.Aggregator)
		}
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{AS: 11423, HoldTime: 180, BGPID: netip.MustParseAddr("128.32.1.3"), FourByteAS: true}
	wire, err := Marshal(o, false)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Unmarshal(wire, false)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := msg.(*Open)
	if !ok {
		t.Fatalf("got %T", msg)
	}
	if back.AS != 11423 || back.HoldTime != 180 || back.BGPID != o.BGPID || !back.FourByteAS {
		t.Errorf("open = %+v", back)
	}
}

func TestOpenLargeASN(t *testing.T) {
	o := &Open{AS: 396982, HoldTime: 90, BGPID: netip.MustParseAddr("1.1.1.1"), FourByteAS: true}
	wire, err := Marshal(o, false)
	if err != nil {
		t.Fatal(err)
	}
	back := mustUnmarshal(t, wire).(*Open)
	if back.AS != 396982 {
		t.Errorf("AS = %d, want 396982 (via capability)", back.AS)
	}
	// Without the capability a large ASN cannot be encoded.
	o.FourByteAS = false
	if _, err := Marshal(o, false); err == nil {
		t.Error("marshal large ASN without capability succeeded")
	}
}

func mustUnmarshal(t *testing.T, wire []byte) Message {
	t.Helper()
	msg, err := Unmarshal(wire, false)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func TestKeepaliveAndNotification(t *testing.T) {
	wire, err := Marshal(Keepalive{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 19 {
		t.Errorf("keepalive length = %d, want 19", len(wire))
	}
	if _, ok := mustUnmarshal(t, wire).(Keepalive); !ok {
		t.Error("keepalive round trip failed")
	}

	n := &Notification{Code: NotifCease, Subcode: 1, Data: []byte("max-prefix")}
	wire, err = Marshal(n, false)
	if err != nil {
		t.Fatal(err)
	}
	back := mustUnmarshal(t, wire).(*Notification)
	if back.Code != NotifCease || back.Subcode != 1 || string(back.Data) != "max-prefix" {
		t.Errorf("notification = %+v", back)
	}
	if !strings.Contains(back.Error(), "code 6") {
		t.Errorf("Error() = %q", back.Error())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}, false); err == nil {
		t.Error("short message succeeded")
	}
	wire, _ := Marshal(Keepalive{}, false)
	bad := append([]byte(nil), wire...)
	bad[0] = 0x00
	if _, err := Unmarshal(bad, false); err == nil {
		t.Error("bad marker succeeded")
	}
	bad = append([]byte(nil), wire...)
	bad[18] = 99
	if _, err := Unmarshal(bad, false); err == nil {
		t.Error("unknown type succeeded")
	}
	bad = append([]byte(nil), wire...)
	bad[17] = 200 // header length disagrees with buffer
	if _, err := Unmarshal(bad, false); err == nil {
		t.Error("length mismatch succeeded")
	}
}

func TestReadWriteMessage(t *testing.T) {
	var buf bytes.Buffer
	u := &Update{Attrs: testAttrs(t), NLRI: []netip.Prefix{mustPrefix(t, "10.0.0.0/8")}}
	if err := WriteMessage(&buf, u, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, Keepalive{}, true); err != nil {
		t.Fatal(err)
	}
	msg1, err := ReadMessage(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if msg1.Type() != TypeUpdate {
		t.Errorf("first message type = %v", msg1.Type())
	}
	msg2, err := ReadMessage(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if msg2.Type() != TypeKeepalive {
		t.Errorf("second message type = %v", msg2.Type())
	}
	if _, err := ReadMessage(&buf, true); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestAttrsHelpers(t *testing.T) {
	a := &PathAttrs{}
	c := MakeCommunity(11423, 65300)
	a.AddCommunity(c)
	a.AddCommunity(c)
	if len(a.Communities) != 1 {
		t.Errorf("duplicate AddCommunity: %v", a.Communities)
	}
	a.AddCommunity(MakeCommunity(1, 1))
	if a.Communities[0] != MakeCommunity(1, 1) {
		t.Errorf("communities not sorted: %v", a.Communities)
	}
	if !a.HasCommunity(c) {
		t.Error("HasCommunity lost a community")
	}
	clone := a.Clone()
	clone.AddCommunity(MakeCommunity(9, 9))
	if len(a.Communities) != 2 {
		t.Error("Clone shares community storage")
	}
	var nilAttrs *PathAttrs
	if nilAttrs.HasCommunity(c) {
		t.Error("nil HasCommunity true")
	}
	if nilAttrs.Clone() != nil {
		t.Error("nil Clone not nil")
	}
	if nilAttrs.String() == "" {
		t.Error("nil String empty")
	}
}

func TestOriginString(t *testing.T) {
	if OriginIGP.String() != "i" || OriginEGP.String() != "e" || OriginIncomplete.String() != "?" {
		t.Error("origin strings wrong")
	}
	if Origin(7).Valid() {
		t.Error("Origin(7) valid")
	}
}

func TestReflectionAttrsRoundTrip(t *testing.T) {
	u := &Update{
		Attrs: &PathAttrs{
			Origin:       OriginIGP,
			ASPath:       Sequence(300, 400),
			Nexthop:      netip.MustParseAddr("9.9.9.9"),
			OriginatorID: netip.MustParseAddr("2.0.0.11"),
			ClusterList: []netip.Addr{
				netip.MustParseAddr("2.0.0.1"),
				netip.MustParseAddr("2.0.0.2"),
			},
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")},
	}
	wire, err := Marshal(u, true)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	got := back.(*Update).Attrs
	if got.OriginatorID != u.Attrs.OriginatorID {
		t.Errorf("ORIGINATOR_ID = %v", got.OriginatorID)
	}
	if len(got.ClusterList) != 2 || got.ClusterList[0] != u.Attrs.ClusterList[0] {
		t.Errorf("CLUSTER_LIST = %v", got.ClusterList)
	}
	if !got.Equal(u.Attrs) {
		t.Error("Equal fails on reflection attributes")
	}
	// Clone is deep.
	clone := u.Attrs.Clone()
	clone.ClusterList[0] = netip.MustParseAddr("8.8.8.8")
	if u.Attrs.ClusterList[0] != netip.MustParseAddr("2.0.0.1") {
		t.Error("Clone shares ClusterList")
	}
	// Equal distinguishes them.
	if u.Attrs.Equal(clone) {
		t.Error("Equal missed ClusterList difference")
	}
}
