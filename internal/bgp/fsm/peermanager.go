package fsm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// PeerManager actively dials a set of configured peers and keeps their
// sessions up forever: dial → Establish → hand the session to OnUp → wait
// for it to die → idle-hold → redial. Collection in the paper's setting
// only works because REX's passive sessions stay up for months; when the
// collector must dial out (route reflectors, lab replays), this is the
// piece that survives real network weather.
//
// Failure handling follows RFC 4271 §8.1's spirit:
//
//   - Dial or handshake failures back off exponentially, with jitter,
//     from MinBackoff up to MaxBackoff.
//   - A session that dies before StableUptime counts as a flap and
//     escalates the IdleHoldTime (the post-session quiet period) — the
//     DampPeerOscillations behaviour — while a stable run resets it.
//
// Per-peer status (phase, up-since, flap count, last error, next retry)
// is available from Statuses for operator visibility.
type PeerManager struct {
	cfg ManagerConfig

	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	peers map[string]*managedPeer

	closeOnce sync.Once
	wg        sync.WaitGroup
}

// ManagerConfig parameterizes a PeerManager. Every field has a usable
// default; only the callbacks are usually set.
type ManagerConfig struct {
	// Dial opens the transport connection (default: TCP with a 15s
	// timeout, canceled when the manager closes). Tests inject fault
	// conns or in-memory pipes here.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// MinBackoff/MaxBackoff bound the exponential dial-failure backoff
	// (defaults 1s and 2m).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// IdleHoldTime is the quiet period after a session ends before
	// redialing (default 1s). It doubles per flap up to MaxIdleHoldTime
	// (default 2m) and resets after a stable run.
	IdleHoldTime    time.Duration
	MaxIdleHoldTime time.Duration
	// StableUptime is how long a session must live for its loss not to
	// count as a flap (default 1m).
	StableUptime time.Duration
	// Jitter returns a value in [0, 1); it spreads retry times so a
	// collector restart does not re-dial every peer in lockstep. Default
	// math/rand. Tests inject a constant for determinism.
	Jitter func() float64
	// OnUp is called (from the peer's goroutine) with each established
	// session. The callback must not block for long; hand the session to
	// its consumer (e.g. collector.Collector.Run in a goroutine) and
	// return. The manager itself waits for the session to end.
	OnUp func(addr string, s *Session)
	// OnDown is called when an established session ends, with the reason
	// (nil after a clean local close).
	OnDown func(addr string, err error)
	// Logf, when set, receives one line per lifecycle transition.
	Logf func(format string, args ...any)
}

// PeerPhase is where a managed peer currently is in its dial cycle.
type PeerPhase int

// Managed-peer phases.
const (
	PhaseIdle        PeerPhase = iota + 1 // waiting out backoff / idle-hold
	PhaseConnecting                       // dialing or in the OPEN handshake
	PhaseEstablished                      // session up
	PhaseStopped                          // manager closed
)

// String names the phase.
func (p PeerPhase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseConnecting:
		return "connecting"
	case PhaseEstablished:
		return "established"
	case PhaseStopped:
		return "stopped"
	default:
		return "phase(?)"
	}
}

// PeerStatus is a point-in-time snapshot of one managed peer.
type PeerStatus struct {
	Addr    string
	Phase   PeerPhase
	UpSince time.Time // zero while down
	// FlapCount counts sessions that died before StableUptime since the
	// peer was added.
	FlapCount int
	// Dials counts dial attempts since the last established session.
	Dials   int
	LastErr error
	// RetryAt is when the next dial fires (meaningful in PhaseIdle).
	RetryAt time.Time
}

// String renders the status as a compact one-line operator summary.
func (st PeerStatus) String() string {
	s := fmt.Sprintf("%s %s", st.Addr, st.Phase)
	if st.Phase == PhaseEstablished && !st.UpSince.IsZero() {
		s += fmt.Sprintf(" up=%s", time.Since(st.UpSince).Round(time.Second))
	}
	if st.Phase == PhaseIdle && !st.RetryAt.IsZero() {
		if wait := time.Until(st.RetryAt).Round(time.Millisecond); wait > 0 {
			s += fmt.Sprintf(" retry-in=%s", wait)
		}
	}
	s += fmt.Sprintf(" flaps=%d dials=%d", st.FlapCount, st.Dials)
	if st.LastErr != nil {
		s += fmt.Sprintf(" last-err=%q", st.LastErr.Error())
	}
	return s
}

type managedPeer struct {
	addr string
	scfg Config

	mu        sync.Mutex
	phase     PeerPhase
	session   *Session
	conn      net.Conn // in-flight conn during the handshake
	upSince   time.Time
	flapCount int
	dials     int
	lastErr   error
	retryAt   time.Time
}

// ErrManagerClosed is returned by Add after Close.
var ErrManagerClosed = errors.New("peer manager closed")

// NewPeerManager builds a manager; peers are added with Add.
func NewPeerManager(cfg ManagerConfig) *PeerManager {
	if cfg.Dial == nil {
		cfg.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
			return (&net.Dialer{Timeout: 15 * time.Second}).DialContext(ctx, network, addr)
		}
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Minute
	}
	if cfg.IdleHoldTime <= 0 {
		cfg.IdleHoldTime = time.Second
	}
	if cfg.MaxIdleHoldTime <= 0 {
		cfg.MaxIdleHoldTime = 2 * time.Minute
	}
	if cfg.StableUptime <= 0 {
		cfg.StableUptime = time.Minute
	}
	if cfg.Jitter == nil {
		cfg.Jitter = rand.Float64
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &PeerManager{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		peers:  make(map[string]*managedPeer),
	}
}

// Add starts maintaining a session to addr with the given session config.
// Adding an address already under management is a no-op.
func (m *PeerManager) Add(addr string, scfg Config) error {
	select {
	case <-m.ctx.Done():
		return ErrManagerClosed
	default:
	}
	m.mu.Lock()
	if _, dup := m.peers[addr]; dup {
		m.mu.Unlock()
		return nil
	}
	p := &managedPeer{addr: addr, scfg: scfg, phase: PhaseIdle}
	m.peers[addr] = p
	m.wg.Add(1)
	m.mu.Unlock()
	go m.run(p)
	return nil
}

// Statuses snapshots every managed peer, sorted by address.
func (m *PeerManager) Statuses() []PeerStatus {
	m.mu.Lock()
	peers := make([]*managedPeer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	out := make([]PeerStatus, 0, len(peers))
	for _, p := range peers {
		p.mu.Lock()
		out = append(out, PeerStatus{
			Addr:      p.addr,
			Phase:     p.phase,
			UpSince:   p.upSince,
			FlapCount: p.flapCount,
			Dials:     p.dials,
			LastErr:   p.lastErr,
			RetryAt:   p.retryAt,
		})
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Close stops every dial loop, closes live sessions and in-flight
// handshakes, and waits for the loops to exit.
func (m *PeerManager) Close() error {
	m.closeOnce.Do(m.cancel)
	m.mu.Lock()
	peers := make([]*managedPeer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		sess, conn := p.session, p.conn
		p.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
		if sess != nil {
			sess.Close()
		}
	}
	m.wg.Wait()
	return nil
}

func (m *PeerManager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// jittered spreads d over [d/2, d) so peers never retry in lockstep.
func (m *PeerManager) jittered(d time.Duration) time.Duration {
	return d/2 + time.Duration(float64(d/2)*m.cfg.Jitter())
}

// sleep waits for d or manager close; false means the manager closed.
func (m *PeerManager) sleep(p *managedPeer, d time.Duration) bool {
	p.mu.Lock()
	p.phase = PhaseIdle
	p.retryAt = time.Now().Add(d)
	p.mu.Unlock()
	mPMTransitions.With(PhaseIdle.String()).Inc()
	mPMBackoffMS.With(p.addr).Set(d.Milliseconds())
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-m.ctx.Done():
		return false
	}
}

func (m *PeerManager) run(p *managedPeer) {
	defer m.wg.Done()
	defer func() {
		p.mu.Lock()
		p.phase = PhaseStopped
		p.mu.Unlock()
		mPMTransitions.With(PhaseStopped.String()).Inc()
	}()
	backoff := m.cfg.MinBackoff
	idleHold := m.cfg.IdleHoldTime
	for {
		select {
		case <-m.ctx.Done():
			return
		default:
		}

		p.mu.Lock()
		p.phase = PhaseConnecting
		p.dials++
		p.mu.Unlock()
		mPMTransitions.With(PhaseConnecting.String()).Inc()
		mPMDials.Inc()

		sess, err := m.connect(p)
		if err != nil {
			p.mu.Lock()
			p.lastErr = err
			p.mu.Unlock()
			mPMDialFailures.Inc()
			wait := m.jittered(backoff)
			m.logf("peer %s: connect failed (%v); retrying in %s", p.addr, err, wait.Round(time.Millisecond))
			if backoff *= 2; backoff > m.cfg.MaxBackoff {
				backoff = m.cfg.MaxBackoff
			}
			if !m.sleep(p, wait) {
				return
			}
			continue
		}

		up := time.Now()
		p.mu.Lock()
		p.phase = PhaseEstablished
		p.session = sess
		p.upSince = up
		p.dials = 0
		p.lastErr = nil
		p.mu.Unlock()
		mPMTransitions.With(PhaseEstablished.String()).Inc()
		mPMEstablishedTotal.Inc()
		mPMEstablished.Inc()
		mPMBackoffMS.With(p.addr).Set(0)
		backoff = m.cfg.MinBackoff
		m.logf("peer %s: session established (peer ID %v, AS%d)", p.addr, sess.PeerID(), sess.PeerAS())
		if m.cfg.OnUp != nil {
			m.cfg.OnUp(p.addr, sess)
		}

		select {
		case <-sess.Done():
		case <-m.ctx.Done():
			sess.Close()
			<-sess.Done()
		}
		downErr := sess.Err()
		uptime := time.Since(up)
		p.mu.Lock()
		p.session = nil
		p.upSince = time.Time{}
		p.lastErr = downErr
		flapped := uptime < m.cfg.StableUptime
		if flapped {
			p.flapCount++
		}
		p.mu.Unlock()
		mPMEstablished.Dec()
		if flapped {
			mPMFlaps.Inc()
		}
		if m.cfg.OnDown != nil {
			m.cfg.OnDown(p.addr, downErr)
		}
		select {
		case <-m.ctx.Done():
			return
		default:
		}
		if flapped {
			// DampPeerOscillations: each flap doubles the quiet period.
			if idleHold *= 2; idleHold > m.cfg.MaxIdleHoldTime {
				idleHold = m.cfg.MaxIdleHoldTime
			}
		} else {
			idleHold = m.cfg.IdleHoldTime
		}
		wait := m.jittered(idleHold)
		m.logf("peer %s: session down after %s (%v); idle-hold %s", p.addr, uptime.Round(time.Millisecond), downErr, wait.Round(time.Millisecond))
		if !m.sleep(p, wait) {
			return
		}
	}
}

// connect dials and runs the OPEN handshake, keeping the in-flight conn
// visible so Close can abort a hung handshake.
func (m *PeerManager) connect(p *managedPeer) (*Session, error) {
	conn, err := m.cfg.Dial(m.ctx, "tcp", p.addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.conn = conn
	p.mu.Unlock()
	sess, err := Establish(conn, p.scfg)
	p.mu.Lock()
	p.conn = nil
	p.mu.Unlock()
	return sess, err
}
