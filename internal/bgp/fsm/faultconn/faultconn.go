// Package faultconn wraps a net.Conn with deterministic, scriptable
// faults: injected latency, byte-offset corruption, connection cuts
// that fire mid-stream (simulating TCP resets in the middle of a BGP
// message, partial writes included), and asymmetric failures — one
// direction stalls or silently loses data while the other keeps
// working, the way a real one-way partition or a wedged middlebox
// behaves. It exists so the session layer — fsm.Establish, the
// keepalive/hold machinery, the collector's graceful-restart reconcile
// path, and the relay fan-in tier — can be hammered with the network
// weather a months-long passive peering actually sees, without flaky
// timing tricks in tests.
//
// All byte offsets in Options are 1-based stream positions ("the Nth
// byte"), so the zero value of every field means "no fault".
//
// The fault modes compose into the classic partition taxonomy:
//
//   - Cut*After: hard reset — both directions die with an error.
//   - Stall*After / StallReads / StallWrites: a wedged direction — the
//     operation blocks without erroring, which is what a filled TCP
//     window or a silently dropped ACK stream looks like to the
//     application. The OTHER direction keeps flowing: a read-only
//     stall models a peer that still accepts our writes but sends
//     nothing; a write-only stall the reverse. A stalled operation
//     wakes on Cut/Close (ErrInjected) or when its deadline — set via
//     SetReadDeadline and friends before the call — expires
//     (os.ErrDeadlineExceeded), because on a real conn silence never
//     disables deadlines; protocol liveness timers must still fire.
//   - DropWritesAfter / DropWrites: a one-way partition — writes
//     "succeed" (the caller sees full-length, nil-error writes) but
//     the bytes never reach the peer, while reads keep working. This
//     is the asymmetric-routing failure TCP keepalives take minutes to
//     notice; protocol-level heartbeats and deadlines must catch it.
package faultconn

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// ErrInjected is the error returned by operations killed by an injected
// fault (cut thresholds or an explicit Cut call).
var ErrInjected = errors.New("faultconn: injected fault")

// Options scripts the faults for one connection. The zero value injects
// nothing and behaves as a transparent wrapper.
type Options struct {
	// ReadDelay/WriteDelay sleep before every corresponding operation,
	// simulating path latency or a stalled peer.
	ReadDelay  time.Duration
	WriteDelay time.Duration
	// CutReadAfter, when positive, lets exactly that many bytes be read
	// and then fails every subsequent Read with ErrInjected, closing the
	// underlying conn. A cut landing inside a BGP message leaves the
	// reader with a truncated header/body — exactly a mid-message reset.
	CutReadAfter int64
	// CutWriteAfter, when positive, allows that many bytes out and then
	// fails. A Write straddling the threshold performs a partial write of
	// the allowed prefix and returns n < len(p) with ErrInjected.
	CutWriteAfter int64
	// CorruptReadAt/CorruptWriteAt, when positive, invert the bits of the
	// Nth byte of the corresponding stream (1-based). Corrupting any of
	// the first 16 bytes of a BGP message clobbers the marker; bytes
	// 17–19 clobber the length/type header.
	CorruptReadAt  int64
	CorruptWriteAt int64
	// StallReadAfter, when positive, lets exactly that many bytes be
	// read and then makes every subsequent Read block until the
	// connection is Cut or Closed (then ErrInjected). Writes keep
	// working: the read direction alone is wedged.
	StallReadAfter int64
	// StallWriteAfter is the write-direction twin of StallReadAfter: a
	// Write that would cross the threshold delivers the allowed prefix
	// and then blocks.
	StallWriteAfter int64
	// DropWritesAfter, when positive, lets exactly that many bytes out
	// and then silently discards every subsequent write — the caller
	// sees full-length successful writes, the peer sees nothing, and
	// reads keep working. A one-way partition.
	DropWritesAfter int64
}

// Conn is a net.Conn with fault injection. Wrap both ends of a pipe (or
// just one) and hand it to fsm.Establish or a PeerManager Dial hook.
type Conn struct {
	inner net.Conn
	opts  Options

	mu            sync.Mutex
	bytesRead     int64
	bytesWritten  int64
	cut           bool
	stallRead     bool
	stallWrite    bool
	dropWrite     bool
	readDeadline  time.Time
	writeDeadline time.Time
	done          chan struct{} // closed on Cut/Close; wakes stalled ops
	doneOnce      sync.Once
}

// New wraps c with the faults scripted in opts.
func New(c net.Conn, opts Options) *Conn {
	return &Conn{inner: c, opts: opts, done: make(chan struct{})}
}

// Cut kills the connection immediately: the underlying conn is closed
// and every subsequent Read/Write fails with ErrInjected. Safe to call
// from any goroutine (e.g. a test flapping a live session). Stalled
// operations wake and fail.
func (c *Conn) Cut() {
	c.mu.Lock()
	c.cut = true
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
	c.inner.Close()
}

// StallReads wedges the read direction from now on: every subsequent
// Read blocks until Cut or Close, then fails with ErrInjected. Writes
// are unaffected. The dynamic form of Options.StallReadAfter.
func (c *Conn) StallReads() {
	c.mu.Lock()
	c.stallRead = true
	c.mu.Unlock()
}

// StallWrites wedges the write direction from now on; the dynamic form
// of Options.StallWriteAfter.
func (c *Conn) StallWrites() {
	c.mu.Lock()
	c.stallWrite = true
	c.mu.Unlock()
}

// DropWrites starts silently discarding writes from now on — they
// report success and deliver nothing, while reads keep working. The
// dynamic form of Options.DropWritesAfter.
func (c *Conn) DropWrites() {
	c.mu.Lock()
	c.dropWrite = true
	c.mu.Unlock()
}

// stall blocks until the connection is Cut or Closed (ErrInjected) or
// the operation's deadline expires (os.ErrDeadlineExceeded, which
// reports Timeout() true like any real net.Conn deadline error). n is
// forwarded so a partially-performed operation reports what it managed
// first. The deadline is sampled at call time; a SetDeadline issued
// while already stalled does not interrupt the blocked operation.
func (c *Conn) stall(n int, deadline time.Time) (int, error) {
	var expire <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return n, os.ErrDeadlineExceeded
		}
		tm := time.NewTimer(d)
		defer tm.Stop()
		expire = tm.C
	}
	select {
	case <-c.done:
		return n, ErrInjected
	case <-expire:
		return n, os.ErrDeadlineExceeded
	}
}

// BytesRead returns how many bytes have been read through the wrapper.
func (c *Conn) BytesRead() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesRead
}

// BytesWritten returns how many bytes have been written through the
// wrapper (counting only bytes that reached the underlying conn).
func (c *Conn) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesWritten
}

// Read implements net.Conn with the scripted read faults.
func (c *Conn) Read(p []byte) (int, error) {
	if c.opts.ReadDelay > 0 {
		time.Sleep(c.opts.ReadDelay)
	}
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	if c.stallRead || (c.opts.StallReadAfter > 0 && c.bytesRead >= c.opts.StallReadAfter) {
		dl := c.readDeadline
		c.mu.Unlock()
		return c.stall(0, dl)
	}
	if limit := c.opts.StallReadAfter; limit > 0 {
		// The next read may cross the stall threshold: deliver the
		// allowed prefix; the read after it will block.
		if remaining := limit - c.bytesRead; int64(len(p)) > remaining {
			p = p[:remaining]
		}
	}
	if limit := c.opts.CutReadAfter; limit > 0 {
		remaining := limit - c.bytesRead
		if remaining <= 0 {
			c.cut = true
			c.mu.Unlock()
			c.doneOnce.Do(func() { close(c.done) })
			c.inner.Close()
			return 0, ErrInjected
		}
		if int64(len(p)) > remaining {
			p = p[:remaining]
		}
	}
	start := c.bytesRead
	c.mu.Unlock()

	n, err := c.inner.Read(p)
	if o := c.opts.CorruptReadAt; o > start && o <= start+int64(n) {
		p[o-1-start] ^= 0xFF
	}
	c.mu.Lock()
	c.bytesRead += int64(n)
	c.mu.Unlock()
	return n, err
}

// Write implements net.Conn with the scripted write faults. Precedence
// when several write faults would fire on one call: cut, then stall,
// then drop.
func (c *Conn) Write(p []byte) (int, error) {
	if c.opts.WriteDelay > 0 {
		time.Sleep(c.opts.WriteDelay)
	}
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	if c.stallWrite || (c.opts.StallWriteAfter > 0 && c.bytesWritten >= c.opts.StallWriteAfter) {
		dl := c.writeDeadline
		c.mu.Unlock()
		return c.stall(0, dl)
	}
	cutHere := false
	stallHere := false
	dropped := 0 // trailing bytes silently discarded (one-way partition)
	toWrite := p
	if limit := c.opts.CutWriteAfter; limit > 0 {
		remaining := limit - c.bytesWritten
		if remaining <= 0 {
			c.cut = true
			c.mu.Unlock()
			c.doneOnce.Do(func() { close(c.done) })
			c.inner.Close()
			return 0, ErrInjected
		}
		if int64(len(p)) >= remaining {
			toWrite = p[:remaining]
			cutHere = true
		}
	}
	if limit := c.opts.StallWriteAfter; limit > 0 && !cutHere {
		if remaining := limit - c.bytesWritten; int64(len(toWrite)) >= remaining {
			toWrite = toWrite[:remaining]
			stallHere = true
		}
	}
	if !cutHere && !stallHere && (c.dropWrite || c.opts.DropWritesAfter > 0) {
		var remaining int64
		if !c.dropWrite {
			if remaining = c.opts.DropWritesAfter - c.bytesWritten; remaining < 0 {
				remaining = 0
			}
		}
		if int64(len(toWrite)) > remaining {
			dropped = len(toWrite) - int(remaining)
			toWrite = toWrite[:remaining]
		}
	}
	start := c.bytesWritten
	wdl := c.writeDeadline
	c.mu.Unlock()

	var n int
	var err error
	if len(toWrite) > 0 {
		if o := c.opts.CorruptWriteAt; o > start && o <= start+int64(len(toWrite)) {
			// Corrupt a copy; the caller's buffer must stay intact.
			dup := make([]byte, len(toWrite))
			copy(dup, toWrite)
			dup[o-1-start] ^= 0xFF
			toWrite = dup
		}
		n, err = c.inner.Write(toWrite)
	}
	c.mu.Lock()
	c.bytesWritten += int64(n)
	if cutHere {
		c.cut = true
	}
	c.mu.Unlock()
	if cutHere {
		c.doneOnce.Do(func() { close(c.done) })
		c.inner.Close()
		if err == nil {
			err = ErrInjected
		}
		return n, err
	}
	if stallHere && err == nil {
		return c.stall(n, wdl)
	}
	if err == nil {
		// The dropped suffix "succeeded" as far as the caller knows.
		n += dropped
	}
	return n, err
}

// Close closes the underlying connection and wakes stalled operations.
func (c *Conn) Close() error {
	c.doneOnce.Do(func() { close(c.done) })
	return c.inner.Close()
}

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline records the deadline (stalled operations honor it) and
// forwards to the underlying conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline records the read deadline (stalled reads honor it)
// and forwards to the underlying conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline records the write deadline (stalled writes honor
// it) and forwards to the underlying conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}
