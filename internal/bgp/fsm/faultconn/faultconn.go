// Package faultconn wraps a net.Conn with deterministic, scriptable
// faults: injected latency, byte-offset corruption, and connection cuts
// that fire mid-stream (simulating TCP resets in the middle of a BGP
// message, partial writes included). It exists so the session layer —
// fsm.Establish, the keepalive/hold machinery, and the collector's
// graceful-restart reconcile path — can be hammered with the network
// weather a months-long passive peering actually sees, without flaky
// timing tricks in tests.
//
// All byte offsets in Options are 1-based stream positions ("the Nth
// byte"), so the zero value of every field means "no fault".
package faultconn

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjected is the error returned by operations killed by an injected
// fault (cut thresholds or an explicit Cut call).
var ErrInjected = errors.New("faultconn: injected fault")

// Options scripts the faults for one connection. The zero value injects
// nothing and behaves as a transparent wrapper.
type Options struct {
	// ReadDelay/WriteDelay sleep before every corresponding operation,
	// simulating path latency or a stalled peer.
	ReadDelay  time.Duration
	WriteDelay time.Duration
	// CutReadAfter, when positive, lets exactly that many bytes be read
	// and then fails every subsequent Read with ErrInjected, closing the
	// underlying conn. A cut landing inside a BGP message leaves the
	// reader with a truncated header/body — exactly a mid-message reset.
	CutReadAfter int64
	// CutWriteAfter, when positive, allows that many bytes out and then
	// fails. A Write straddling the threshold performs a partial write of
	// the allowed prefix and returns n < len(p) with ErrInjected.
	CutWriteAfter int64
	// CorruptReadAt/CorruptWriteAt, when positive, invert the bits of the
	// Nth byte of the corresponding stream (1-based). Corrupting any of
	// the first 16 bytes of a BGP message clobbers the marker; bytes
	// 17–19 clobber the length/type header.
	CorruptReadAt  int64
	CorruptWriteAt int64
}

// Conn is a net.Conn with fault injection. Wrap both ends of a pipe (or
// just one) and hand it to fsm.Establish or a PeerManager Dial hook.
type Conn struct {
	inner net.Conn
	opts  Options

	mu           sync.Mutex
	bytesRead    int64
	bytesWritten int64
	cut          bool
}

// New wraps c with the faults scripted in opts.
func New(c net.Conn, opts Options) *Conn {
	return &Conn{inner: c, opts: opts}
}

// Cut kills the connection immediately: the underlying conn is closed
// and every subsequent Read/Write fails with ErrInjected. Safe to call
// from any goroutine (e.g. a test flapping a live session).
func (c *Conn) Cut() {
	c.mu.Lock()
	c.cut = true
	c.mu.Unlock()
	c.inner.Close()
}

// BytesRead returns how many bytes have been read through the wrapper.
func (c *Conn) BytesRead() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesRead
}

// BytesWritten returns how many bytes have been written through the
// wrapper (counting only bytes that reached the underlying conn).
func (c *Conn) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesWritten
}

// Read implements net.Conn with the scripted read faults.
func (c *Conn) Read(p []byte) (int, error) {
	if c.opts.ReadDelay > 0 {
		time.Sleep(c.opts.ReadDelay)
	}
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	if limit := c.opts.CutReadAfter; limit > 0 {
		remaining := limit - c.bytesRead
		if remaining <= 0 {
			c.cut = true
			c.mu.Unlock()
			c.inner.Close()
			return 0, ErrInjected
		}
		if int64(len(p)) > remaining {
			p = p[:remaining]
		}
	}
	start := c.bytesRead
	c.mu.Unlock()

	n, err := c.inner.Read(p)
	if o := c.opts.CorruptReadAt; o > start && o <= start+int64(n) {
		p[o-1-start] ^= 0xFF
	}
	c.mu.Lock()
	c.bytesRead += int64(n)
	c.mu.Unlock()
	return n, err
}

// Write implements net.Conn with the scripted write faults.
func (c *Conn) Write(p []byte) (int, error) {
	if c.opts.WriteDelay > 0 {
		time.Sleep(c.opts.WriteDelay)
	}
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	cutHere := false
	toWrite := p
	if limit := c.opts.CutWriteAfter; limit > 0 {
		remaining := limit - c.bytesWritten
		if remaining <= 0 {
			c.cut = true
			c.mu.Unlock()
			c.inner.Close()
			return 0, ErrInjected
		}
		if int64(len(p)) >= remaining {
			toWrite = p[:remaining]
			cutHere = true
		}
	}
	start := c.bytesWritten
	c.mu.Unlock()

	if o := c.opts.CorruptWriteAt; o > start && o <= start+int64(len(toWrite)) {
		// Corrupt a copy; the caller's buffer must stay intact.
		dup := make([]byte, len(toWrite))
		copy(dup, toWrite)
		dup[o-1-start] ^= 0xFF
		toWrite = dup
	}
	n, err := c.inner.Write(toWrite)
	c.mu.Lock()
	c.bytesWritten += int64(n)
	if cutHere {
		c.cut = true
	}
	c.mu.Unlock()
	if cutHere {
		c.inner.Close()
		if err == nil {
			err = ErrInjected
		}
	}
	return n, err
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline forwards to the underlying conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline forwards to the underlying conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the underlying conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
