package faultconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// tcpPair returns two connected loopback conns.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dialer, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	accepted := <-ch
	if accepted.err != nil {
		t.Fatal(accepted.err)
	}
	t.Cleanup(func() {
		dialer.Close()
		accepted.c.Close()
	})
	return dialer, accepted.c
}

func TestTransparentWhenNoFaults(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{})
	msg := []byte("hello, routing weather")
	if n, err := fc.Write(msg); n != len(msg) || err != nil {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
	if fc.BytesWritten() != int64(len(msg)) {
		t.Errorf("BytesWritten = %d", fc.BytesWritten())
	}
}

func TestCutWriteMidMessageIsPartial(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{CutWriteAfter: 10})
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	n, err := fc.Write(msg)
	if n != 10 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = %d, %v; want partial 10 bytes + ErrInjected", n, err)
	}
	// The peer sees exactly the surviving prefix, then EOF/reset.
	got, _ := io.ReadAll(b)
	if !bytes.Equal(got, msg[:10]) {
		t.Errorf("peer received %v", got)
	}
	// Every later write fails without touching the wire.
	if n, err := fc.Write(msg); n != 0 || !errors.Is(err, ErrInjected) {
		t.Errorf("post-cut Write = %d, %v", n, err)
	}
}

func TestCutReadAfterThreshold(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(b, Options{CutReadAfter: 5})
	if _, err := a.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	n, err := io.ReadFull(fc, got[:5])
	if n != 5 || err != nil {
		t.Fatalf("pre-cut read = %d, %v", n, err)
	}
	if _, err := fc.Read(got); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut read err = %v", err)
	}
}

func TestCorruptWriteFlipsWireByteOnly(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{CorruptWriteAt: 3})
	msg := []byte{1, 2, 3, 4}
	orig := append([]byte(nil), msg...)
	if _, err := fc.Write(msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, orig) {
		t.Error("caller buffer was mutated")
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3 ^ 0xFF, 4}
	if !bytes.Equal(got, want) {
		t.Errorf("wire bytes = %v, want %v", got, want)
	}
}

func TestCorruptReadFlipsByte(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(b, Options{CorruptReadAt: 1})
	if _, err := a.Write([]byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(fc, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA^0xFF || got[1] != 0xBB {
		t.Errorf("read %v", got)
	}
}

func TestAsyncCutUnblocksReader(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(b, Options{})
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := fc.Read(buf)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	fc.Cut()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("blocked read returned nil after Cut")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Cut did not unblock the reader")
	}
	_ = a
}

func TestDelaysApplied(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{WriteDelay: 30 * time.Millisecond})
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("write returned after %v, want >= 30ms", d)
	}
	_ = b
}

func TestStallReadAfterWedgesOnlyReads(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(b, Options{StallReadAfter: 4})
	if _, err := a.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	// A read straddling the threshold delivers the allowed prefix.
	got := make([]byte, 8)
	n, err := fc.Read(got)
	if n != 4 || err != nil {
		t.Fatalf("straddling read = %d, %v; want 4, nil", n, err)
	}
	if !bytes.Equal(got[:4], []byte("0123")) {
		t.Errorf("read %q", got[:4])
	}
	// The next read wedges; the write direction keeps working.
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Read(got)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if n, err := fc.Write([]byte("pong")); n != 4 || err != nil {
		t.Fatalf("write during read stall = %d, %v", n, err)
	}
	echo := make([]byte, 4)
	if _, err := io.ReadFull(a, echo); err != nil || !bytes.Equal(echo, []byte("pong")) {
		t.Fatalf("peer read %q, %v", echo, err)
	}
	// Close wakes the stalled read with ErrInjected.
	fc.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrInjected) {
			t.Errorf("stalled read err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the stalled read")
	}
}

func TestStallWriteAfterWedgesOnlyWrites(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{StallWriteAfter: 3})
	// A write crossing the threshold delivers the prefix then blocks —
	// slow-loris from the peer's point of view.
	type res struct {
		n   int
		err error
	}
	resCh := make(chan res, 1)
	go func() {
		n, err := fc.Write([]byte("abcdef"))
		resCh <- res{n, err}
	}()
	pre := make([]byte, 3)
	if _, err := io.ReadFull(b, pre); err != nil || !bytes.Equal(pre, []byte("abc")) {
		t.Fatalf("peer read %q, %v", pre, err)
	}
	select {
	case r := <-resCh:
		t.Fatalf("stalled write returned early: %d, %v", r.n, r.err)
	case <-time.After(30 * time.Millisecond):
	}
	// Reads keep flowing while the write direction is wedged.
	if _, err := b.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(fc, got); err != nil || !bytes.Equal(got, []byte("hi")) {
		t.Fatalf("read during write stall: %q, %v", got, err)
	}
	fc.Cut()
	select {
	case r := <-resCh:
		if r.n != 3 || !errors.Is(r.err, ErrInjected) {
			t.Errorf("stalled write = %d, %v; want 3 + ErrInjected", r.n, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Cut did not wake the stalled write")
	}
}

func TestDropWritesAfterIsOneWayPartition(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{DropWritesAfter: 5})
	// Straddling write: prefix reaches the wire, suffix vanishes, caller
	// sees full success.
	if n, err := fc.Write([]byte("0123456789")); n != 10 || err != nil {
		t.Fatalf("straddling write = %d, %v; want 10, nil", n, err)
	}
	// Every later write also "succeeds" silently.
	if n, err := fc.Write([]byte("lost")); n != 4 || err != nil {
		t.Fatalf("dropped write = %d, %v; want 4, nil", n, err)
	}
	// Reads keep working: the partition is one-way.
	if _, err := b.Write([]byte("still here")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	if _, err := io.ReadFull(fc, got); err != nil || !bytes.Equal(got, []byte("still here")) {
		t.Fatalf("read during drop: %q, %v", got, err)
	}
	// The peer received exactly the pre-threshold prefix.
	a.Close()
	wire, _ := io.ReadAll(b)
	if !bytes.Equal(wire, []byte("01234")) {
		t.Errorf("peer received %q, want %q", wire, "01234")
	}
	// Only delivered bytes count as written.
	if fc.BytesWritten() != 5 {
		t.Errorf("BytesWritten = %d, want 5", fc.BytesWritten())
	}
}

func TestDynamicFaultModes(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{})
	if n, err := fc.Write([]byte("ok")); n != 2 || err != nil {
		t.Fatal(err)
	}
	fc.DropWrites()
	if n, err := fc.Write([]byte("gone")); n != 4 || err != nil {
		t.Fatalf("dropped write = %d, %v", n, err)
	}
	fc.StallWrites()
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("x"))
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	fc.Cut()
	if err := <-errCh; !errors.Is(err, ErrInjected) {
		t.Errorf("stalled write err = %v", err)
	}
	pre := make([]byte, 2)
	if _, err := io.ReadFull(b, pre); err != nil || !bytes.Equal(pre, []byte("ok")) {
		t.Fatalf("peer read %q, %v", pre, err)
	}
}

func TestDynamicStallReadsWakesOnCut(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(b, Options{})
	if _, err := a.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(fc, got); err != nil {
		t.Fatal(err)
	}
	fc.StallReads()
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Read(got)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	fc.Cut()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrInjected) {
			t.Errorf("stalled read err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Cut did not wake the stalled read")
	}
}

// TestStallHonorsDeadline: a wedged direction must still trip the
// operation's deadline, exactly as a silent real peer would — protocol
// liveness timers depend on it.
func TestStallHonorsDeadline(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	fc := New(b, Options{StallReadAfter: 2})
	defer fc.Close()
	if _, err := a.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(fc, got); err != nil {
		t.Fatal(err)
	}
	if err := fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := fc.Read(got)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read err = %v, want deadline exceeded", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline error %v is not a net timeout", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("deadline fired far too late")
	}

	// Clearing the deadline restores block-until-Cut semantics.
	if err := fc.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Read(got)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("undeadlined stalled read returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	fc.Cut()
	if err := <-errCh; !errors.Is(err, ErrInjected) {
		t.Errorf("stalled read after Cut err = %v", err)
	}
}
