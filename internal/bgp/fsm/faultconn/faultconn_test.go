package faultconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two connected loopback conns.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dialer, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	accepted := <-ch
	if accepted.err != nil {
		t.Fatal(accepted.err)
	}
	t.Cleanup(func() {
		dialer.Close()
		accepted.c.Close()
	})
	return dialer, accepted.c
}

func TestTransparentWhenNoFaults(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{})
	msg := []byte("hello, routing weather")
	if n, err := fc.Write(msg); n != len(msg) || err != nil {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
	if fc.BytesWritten() != int64(len(msg)) {
		t.Errorf("BytesWritten = %d", fc.BytesWritten())
	}
}

func TestCutWriteMidMessageIsPartial(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{CutWriteAfter: 10})
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	n, err := fc.Write(msg)
	if n != 10 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = %d, %v; want partial 10 bytes + ErrInjected", n, err)
	}
	// The peer sees exactly the surviving prefix, then EOF/reset.
	got, _ := io.ReadAll(b)
	if !bytes.Equal(got, msg[:10]) {
		t.Errorf("peer received %v", got)
	}
	// Every later write fails without touching the wire.
	if n, err := fc.Write(msg); n != 0 || !errors.Is(err, ErrInjected) {
		t.Errorf("post-cut Write = %d, %v", n, err)
	}
}

func TestCutReadAfterThreshold(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(b, Options{CutReadAfter: 5})
	if _, err := a.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	n, err := io.ReadFull(fc, got[:5])
	if n != 5 || err != nil {
		t.Fatalf("pre-cut read = %d, %v", n, err)
	}
	if _, err := fc.Read(got); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut read err = %v", err)
	}
}

func TestCorruptWriteFlipsWireByteOnly(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{CorruptWriteAt: 3})
	msg := []byte{1, 2, 3, 4}
	orig := append([]byte(nil), msg...)
	if _, err := fc.Write(msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, orig) {
		t.Error("caller buffer was mutated")
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3 ^ 0xFF, 4}
	if !bytes.Equal(got, want) {
		t.Errorf("wire bytes = %v, want %v", got, want)
	}
}

func TestCorruptReadFlipsByte(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(b, Options{CorruptReadAt: 1})
	if _, err := a.Write([]byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(fc, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA^0xFF || got[1] != 0xBB {
		t.Errorf("read %v", got)
	}
}

func TestAsyncCutUnblocksReader(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(b, Options{})
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := fc.Read(buf)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	fc.Cut()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("blocked read returned nil after Cut")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Cut did not unblock the reader")
	}
	_ = a
}

func TestDelaysApplied(t *testing.T) {
	a, b := tcpPair(t)
	fc := New(a, Options{WriteDelay: 30 * time.Millisecond})
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("write returned after %v, want >= 30ms", d)
	}
	_ = b
}
