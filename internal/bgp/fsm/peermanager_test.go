package fsm

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// passiveSpeaker accepts connections and answers the BGP handshake,
// delivering each established server-side session on the channel.
func passiveSpeaker(t *testing.T) (string, chan *Session) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sessions := make(chan *Session, 16)
	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if s, err := Establish(conn, cfg(65001, "10.0.0.9")); err == nil {
					sessions <- s
				}
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
		close(sessions)
		for s := range sessions {
			s.Close()
		}
	})
	return ln.Addr().String(), sessions
}

// fastManagerConfig keeps every timer tiny and deterministic for tests.
func fastManagerConfig() ManagerConfig {
	return ManagerConfig{
		MinBackoff:      10 * time.Millisecond,
		MaxBackoff:      80 * time.Millisecond,
		IdleHoldTime:    10 * time.Millisecond,
		MaxIdleHoldTime: 80 * time.Millisecond,
		StableUptime:    time.Minute, // everything in tests counts as a flap
		Jitter:          func() float64 { return 0 },
	}
}

func TestManagerEstablishesAndRedialsAfterDrop(t *testing.T) {
	addr, serverSessions := passiveSpeaker(t)
	ups := make(chan *Session, 8)
	downs := make(chan error, 8)
	mc := fastManagerConfig()
	mc.OnUp = func(_ string, s *Session) { ups <- s }
	mc.OnDown = func(_ string, err error) { downs <- err }
	m := NewPeerManager(mc)
	defer m.Close()
	if err := m.Add(addr, cfg(65002, "10.0.0.2")); err != nil {
		t.Fatal(err)
	}
	// Adding the same address again is a no-op, not a second dial loop.
	if err := m.Add(addr, cfg(65002, "10.0.0.2")); err != nil {
		t.Fatal(err)
	}

	var first *Session
	select {
	case first = <-ups:
	case <-time.After(5 * time.Second):
		t.Fatal("manager never established")
	}
	if first.State() != StateEstablished {
		t.Fatalf("state = %v", first.State())
	}
	sts := m.Statuses()
	if len(sts) != 1 || sts[0].Phase != PhaseEstablished || sts[0].UpSince.IsZero() {
		t.Fatalf("statuses = %v", sts)
	}

	// Kill the session from the server side: the manager must notice,
	// report OnDown, count the flap, and dial again on its own.
	srv := <-serverSessions
	srv.Close()
	select {
	case <-downs:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDown never fired")
	}
	select {
	case second := <-ups:
		if second == first {
			t.Fatal("same session delivered twice")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("manager never redialed")
	}
	sts = m.Statuses()
	if sts[0].FlapCount < 1 {
		t.Errorf("flap count = %d, want >= 1", sts[0].FlapCount)
	}
}

func TestManagerBacksOffWhileUnreachable(t *testing.T) {
	dialTimes := make(chan time.Time, 32)
	mc := fastManagerConfig()
	boom := errors.New("connection refused (injected)")
	mc.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		dialTimes <- time.Now()
		return nil, boom
	}
	m := NewPeerManager(mc)
	defer m.Close()
	if err := m.Add("192.0.2.1:179", cfg(65002, "10.0.0.2")); err != nil {
		t.Fatal(err)
	}

	var times []time.Time
	deadline := time.After(5 * time.Second)
	for len(times) < 5 {
		select {
		case ts := <-dialTimes:
			times = append(times, ts)
		case <-deadline:
			t.Fatalf("only %d dial attempts before timeout", len(times))
		}
	}
	// Gaps must not shrink: the backoff escalates (jitter pinned to 0
	// makes each wait exactly half the nominal backoff).
	for i := 2; i < len(times); i++ {
		prev := times[i-1].Sub(times[i-2])
		cur := times[i].Sub(times[i-1])
		if cur < prev/2 {
			t.Errorf("backoff gap shrank: %v then %v", prev, cur)
		}
	}
	st := m.Statuses()[0]
	if !errors.Is(st.LastErr, boom) {
		t.Errorf("LastErr = %v", st.LastErr)
	}
	if st.Phase == PhaseEstablished {
		t.Errorf("phase = %v", st.Phase)
	}
	if st.Dials < 5 {
		t.Errorf("dials = %d, want >= 5", st.Dials)
	}
}

func TestManagerIdleHoldEscalatesOnFlapStorm(t *testing.T) {
	addr, serverSessions := passiveSpeaker(t)
	mc := fastManagerConfig()
	ups := make(chan *Session, 16)
	mc.OnUp = func(_ string, s *Session) { ups <- s }
	m := NewPeerManager(mc)
	defer m.Close()
	if err := m.Add(addr, cfg(65002, "10.0.0.2")); err != nil {
		t.Fatal(err)
	}
	// Slam the door on every session as soon as it comes up.
	const flaps = 4
	for i := 0; i < flaps; i++ {
		select {
		case <-ups:
		case <-time.After(10 * time.Second):
			t.Fatalf("session %d never came up", i)
		}
		select {
		case srv := <-serverSessions:
			srv.Close()
		case <-time.After(10 * time.Second):
			t.Fatalf("server session %d missing", i)
		}
	}
	waitFor := time.After(10 * time.Second)
	for {
		st := m.Statuses()[0]
		if st.FlapCount >= flaps {
			break
		}
		select {
		case <-waitFor:
			t.Fatalf("flap count = %d, want >= %d", m.Statuses()[0].FlapCount, flaps)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestManagerCloseInterruptsConnecting(t *testing.T) {
	mc := fastManagerConfig()
	mc.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		<-ctx.Done() // a blackholed dial: only manager close releases it
		return nil, ctx.Err()
	}
	m := NewPeerManager(mc)
	if err := m.Add("192.0.2.2:179", cfg(65002, "10.0.0.2")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		m.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an in-flight dial")
	}
	if err := m.Add("192.0.2.3:179", cfg(65002, "10.0.0.2")); !errors.Is(err, ErrManagerClosed) {
		t.Errorf("Add after close = %v", err)
	}
	if st := m.Statuses()[0]; st.Phase != PhaseStopped {
		t.Errorf("phase after close = %v", st.Phase)
	}
}
