// Package fsm implements a BGP session state machine over a net.Conn: the
// OPEN exchange with capability negotiation (4-octet AS), keepalive and
// hold timers, UPDATE delivery, and orderly NOTIFICATION shutdown. It is
// the live-protocol layer under the collector (passive IBGP peering, as
// REX does in the paper) and the simulator's replay mode.
//
// The TCP-level Connect/Active states of RFC 4271 are outside this
// package: callers bring a connected net.Conn (from Dial or a listener)
// and Establish drives OpenSent → OpenConfirm → Established.
package fsm

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"rex/internal/bgp"
)

// State is the session state.
type State int32

// Session states.
const (
	StateIdle State = iota + 1
	StateOpenSent
	StateOpenConfirm
	StateEstablished
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	case StateClosed:
		return "Closed"
	default:
		return "State(?)"
	}
}

// Config parameterizes a session.
type Config struct {
	LocalAS uint32
	LocalID netip.Addr
	// HoldTime is proposed in OPEN; the effective value is the minimum of
	// both sides (default 90s). Zero on both sides disables keepalives.
	HoldTime time.Duration
	// ExpectAS, when non-zero, rejects peers with a different AS.
	ExpectAS uint32
}

// DefaultHoldTime is used when Config.HoldTime is zero.
const DefaultHoldTime = 90 * time.Second

// MinHoldTime is the smallest non-zero hold time RFC 4271 §4.2 permits:
// an OPEN offering 1 or 2 seconds must be rejected with an Unacceptable
// Hold Time notification. (Zero remains legal and disables keepalives.)
const MinHoldTime = 3 * time.Second

// ErrUnacceptableHoldTime reports a peer OPEN offering a non-zero hold
// time below MinHoldTime.
var ErrUnacceptableHoldTime = errors.New("unacceptable hold time (non-zero, below 3s)")

// Session is an established BGP session. Updates arrive on Updates();
// Close sends a CEASE and tears the session down. All methods are safe
// for concurrent use.
type Session struct {
	conn   net.Conn
	counts *countingConn
	cfg    Config
	state  atomic.Int32

	peerOpen   *bgp.Open
	fourByteAS bool
	holdTime   time.Duration

	updates chan *bgp.Update
	sendMu  sync.Mutex

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup

	errMu sync.Mutex
	err   error
}

// ErrSessionClosed is returned by Send after the session has closed.
var ErrSessionClosed = errors.New("bgp session closed")

// Establish runs the OPEN/KEEPALIVE handshake on conn and starts the
// session goroutines. On handshake failure the conn is closed.
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	sess, err := establish(conn, cfg)
	if err != nil {
		mSessions.With("handshake_failed").Inc()
		return nil, err
	}
	mSessions.With("established").Inc()
	return sess, nil
}

func establish(conn net.Conn, cfg Config) (*Session, error) {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = DefaultHoldTime
	}
	if cfg.HoldTime > 0 && cfg.HoldTime < MinHoldTime {
		// Never offer a hold time we would reject from a peer.
		cfg.HoldTime = MinHoldTime
	}
	cc := &countingConn{Conn: conn}
	conn = cc
	s := &Session{
		conn:    conn,
		counts:  cc,
		cfg:     cfg,
		updates: make(chan *bgp.Update, 1),
		done:    make(chan struct{}),
	}
	s.state.Store(int32(StateIdle))

	open := &bgp.Open{
		AS:         cfg.LocalAS,
		HoldTime:   uint16(cfg.HoldTime / time.Second),
		BGPID:      cfg.LocalID,
		FourByteAS: true,
	}
	deadline := time.Now().Add(30 * time.Second)
	_ = conn.SetDeadline(deadline)
	if err := bgp.WriteMessage(conn, open, false); err != nil {
		conn.Close()
		return nil, fmt.Errorf("send OPEN: %w", err)
	}
	s.state.Store(int32(StateOpenSent))

	msg, err := bgp.ReadMessage(conn, false)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("read peer OPEN: %w", err)
	}
	peerOpen, ok := msg.(*bgp.Open)
	if !ok {
		s.notifyAndClose(bgp.NotifFSMError, 0)
		return nil, fmt.Errorf("expected OPEN, got %v", msg.Type())
	}
	if cfg.ExpectAS != 0 && peerOpen.AS != cfg.ExpectAS {
		s.notifyAndClose(bgp.NotifOpenError, bgp.OpenBadPeerAS)
		return nil, fmt.Errorf("peer AS %d, want %d", peerOpen.AS, cfg.ExpectAS)
	}
	if peerOpen.HoldTime != 0 && time.Duration(peerOpen.HoldTime)*time.Second < MinHoldTime {
		s.notifyAndClose(bgp.NotifOpenError, bgp.OpenUnacceptableHoldTime)
		return nil, fmt.Errorf("peer hold time %ds: %w", peerOpen.HoldTime, ErrUnacceptableHoldTime)
	}
	s.peerOpen = peerOpen
	s.fourByteAS = peerOpen.FourByteAS // we always offer it
	s.holdTime = cfg.HoldTime
	if peer := time.Duration(peerOpen.HoldTime) * time.Second; peer < s.holdTime {
		s.holdTime = peer
	}
	if err := bgp.WriteMessage(conn, bgp.Keepalive{}, s.fourByteAS); err != nil {
		conn.Close()
		return nil, fmt.Errorf("send KEEPALIVE: %w", err)
	}
	s.state.Store(int32(StateOpenConfirm))

	msg, err = bgp.ReadMessage(conn, s.fourByteAS)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("read peer KEEPALIVE: %w", err)
	}
	if _, ok := msg.(bgp.Keepalive); !ok {
		if n, isNotif := msg.(*bgp.Notification); isNotif {
			conn.Close()
			return nil, n
		}
		s.notifyAndClose(bgp.NotifFSMError, 0)
		return nil, fmt.Errorf("expected KEEPALIVE, got %v", msg.Type())
	}
	_ = conn.SetDeadline(time.Time{})
	s.state.Store(int32(StateEstablished))

	s.wg.Add(2)
	go s.readLoop()
	go s.keepaliveLoop()
	return s, nil
}

func (s *Session) notifyAndClose(code, subcode uint8) {
	_ = bgp.WriteMessage(s.conn, &bgp.Notification{Code: code, Subcode: subcode}, false)
	s.conn.Close()
}

// State returns the current session state.
func (s *Session) State() State { return State(s.state.Load()) }

// PeerAS returns the peer's AS number (after Establish).
func (s *Session) PeerAS() uint32 { return s.peerOpen.AS }

// PeerID returns the peer's BGP identifier.
func (s *Session) PeerID() netip.Addr { return s.peerOpen.BGPID }

// RemoteAddr returns the transport address of the peer.
func (s *Session) RemoteAddr() net.Addr { return s.conn.RemoteAddr() }

// FourByteAS reports whether the session negotiated 4-octet ASNs.
func (s *Session) FourByteAS() bool { return s.fourByteAS }

// HoldTime returns the negotiated hold time.
func (s *Session) HoldTime() time.Duration { return s.holdTime }

// BytesRead returns how many bytes this session has read from the peer.
func (s *Session) BytesRead() int64 { return s.counts.read.Load() }

// BytesWritten returns how many bytes this session has written.
func (s *Session) BytesWritten() int64 { return s.counts.written.Load() }

// Updates returns the channel of received UPDATE messages. It is closed
// when the session ends; check Err for the reason.
func (s *Session) Updates() <-chan *bgp.Update { return s.updates }

// Done is closed when the session has fully shut down.
func (s *Session) Done() <-chan struct{} { return s.done }

// Err returns why the session ended (nil while running or after a clean
// local Close).
func (s *Session) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *Session) setErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Send transmits an UPDATE.
func (s *Session) Send(u *bgp.Update) error {
	if s.State() != StateEstablished {
		return ErrSessionClosed
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if err := bgp.WriteMessage(s.conn, u, s.fourByteAS); err != nil {
		return fmt.Errorf("send UPDATE: %w", err)
	}
	return nil
}

// Close sends a CEASE notification and shuts the session down, waiting
// for the internal goroutines to exit.
func (s *Session) Close() error {
	s.shutdown(nil, true)
	s.wg.Wait()
	return nil
}

func (s *Session) shutdown(reason error, sendCease bool) {
	s.closeOnce.Do(func() {
		s.setErr(reason)
		s.state.Store(int32(StateClosed))
		if sendCease {
			s.sendMu.Lock()
			_ = bgp.WriteMessage(s.conn, &bgp.Notification{Code: bgp.NotifCease}, s.fourByteAS)
			s.sendMu.Unlock()
		}
		s.conn.Close()
		close(s.done)
	})
}

func (s *Session) readLoop() {
	defer s.wg.Done()
	defer close(s.updates)
	for {
		if s.holdTime > 0 {
			_ = s.conn.SetReadDeadline(time.Now().Add(s.holdTime))
		}
		msg, err := bgp.ReadMessage(s.conn, s.fourByteAS)
		if err != nil {
			if s.State() == StateClosed {
				s.shutdown(nil, false)
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				err = fmt.Errorf("hold timer expired after %v", s.holdTime)
				s.sendMu.Lock()
				_ = bgp.WriteMessage(s.conn, &bgp.Notification{Code: bgp.NotifHoldTimerExpired}, s.fourByteAS)
				s.sendMu.Unlock()
			}
			s.shutdown(err, false)
			return
		}
		switch m := msg.(type) {
		case *bgp.Update:
			select {
			case s.updates <- m:
			case <-s.done:
				return
			}
		case bgp.Keepalive:
			// Hold timer already reset by the successful read.
		case *bgp.Notification:
			s.shutdown(m, false)
			return
		default:
			s.sendMu.Lock()
			_ = bgp.WriteMessage(s.conn, &bgp.Notification{Code: bgp.NotifFSMError}, s.fourByteAS)
			s.sendMu.Unlock()
			s.shutdown(fmt.Errorf("unexpected %v in Established", msg.Type()), false)
			return
		}
	}
}

func (s *Session) keepaliveLoop() {
	defer s.wg.Done()
	if s.holdTime <= 0 {
		return
	}
	interval := s.holdTime / 3
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.sendMu.Lock()
			err := bgp.WriteMessage(s.conn, bgp.Keepalive{}, s.fourByteAS)
			s.sendMu.Unlock()
			if err != nil && s.State() == StateEstablished {
				s.shutdown(fmt.Errorf("send keepalive: %w", err), false)
				return
			}
		case <-s.done:
			return
		}
	}
}

// Dial connects to addr and establishes a session.
func Dial(addr string, cfg Config) (*Session, error) {
	conn, err := net.DialTimeout("tcp", addr, 15*time.Second)
	if err != nil {
		return nil, err
	}
	return Establish(conn, cfg)
}
