package fsm

import (
	"errors"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"rex/internal/bgp"
)

// pipe returns two connected TCP loopback conns (net.Pipe is synchronous
// and would deadlock the simultaneous OPEN exchange).
func pipe(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dialer, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	accepted := <-ch
	if accepted.err != nil {
		t.Fatal(accepted.err)
	}
	t.Cleanup(func() {
		dialer.Close()
		accepted.c.Close()
	})
	return dialer, accepted.c
}

// establishPair brings up both ends of a session concurrently.
func establishPair(t *testing.T, cfgA, cfgB Config) (*Session, *Session) {
	t.Helper()
	connA, connB := pipe(t)
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Establish(connB, cfgB)
		ch <- res{s, err}
	}()
	sa, err := Establish(connA, cfgA)
	if err != nil {
		t.Fatalf("establish A: %v", err)
	}
	rb := <-ch
	if rb.err != nil {
		t.Fatalf("establish B: %v", rb.err)
	}
	t.Cleanup(func() {
		sa.Close()
		rb.s.Close()
	})
	return sa, rb.s
}

func cfg(as uint32, id string) Config {
	return Config{LocalAS: as, LocalID: netip.MustParseAddr(id)}
}

func TestEstablishAndExchange(t *testing.T) {
	a, b := establishPair(t, cfg(65001, "10.0.0.1"), cfg(65002, "10.0.0.2"))
	if a.State() != StateEstablished || b.State() != StateEstablished {
		t.Fatalf("states = %v / %v", a.State(), b.State())
	}
	if a.PeerAS() != 65002 || b.PeerAS() != 65001 {
		t.Errorf("peer AS = %d / %d", a.PeerAS(), b.PeerAS())
	}
	if a.PeerID() != netip.MustParseAddr("10.0.0.2") {
		t.Errorf("peer ID = %v", a.PeerID())
	}
	if !a.FourByteAS() || !b.FourByteAS() {
		t.Error("4-octet AS not negotiated")
	}

	u := &bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Sequence(65001, 400000),
			Nexthop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")},
	}
	if err := a.Send(u); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.Updates():
		if got == nil {
			t.Fatal("updates channel closed")
		}
		if len(got.NLRI) != 1 || got.NLRI[0] != u.NLRI[0] {
			t.Errorf("NLRI = %v", got.NLRI)
		}
		if got.Attrs.ASPath.ASNs()[1] != 400000 {
			t.Errorf("4-byte ASN lost: %v", got.Attrs.ASPath)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("update not delivered")
	}
}

func TestCloseSendsCeaseAndPeerSees(t *testing.T) {
	a, b := establishPair(t, cfg(65001, "10.0.0.1"), cfg(65002, "10.0.0.2"))
	a.Close()
	select {
	case <-b.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("peer did not observe close")
	}
	var notif *bgp.Notification
	if !errors.As(b.Err(), &notif) || notif.Code != bgp.NotifCease {
		t.Errorf("peer err = %v, want CEASE notification", b.Err())
	}
	// Send after close fails.
	if err := a.Send(&bgp.Update{}); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Send after close = %v", err)
	}
	// Double close is safe.
	a.Close()
}

func TestHoldTimerExpiry(t *testing.T) {
	connA, connB := pipe(t)
	// A raw peer that completes the handshake but never sends keepalives.
	go func() {
		open := &bgp.Open{AS: 65002, HoldTime: 3, BGPID: netip.MustParseAddr("10.0.0.2"), FourByteAS: true}
		_ = bgp.WriteMessage(connB, open, false)
		_, _ = bgp.ReadMessage(connB, false) // their OPEN
		_ = bgp.WriteMessage(connB, bgp.Keepalive{}, true)
		_, _ = bgp.ReadMessage(connB, true) // their KEEPALIVE
		// ... then silence. Drain whatever arrives so TCP stays open.
		for {
			if _, err := bgp.ReadMessage(connB, true); err != nil {
				return
			}
		}
	}()
	s, err := Establish(connA, cfg(65001, "10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.HoldTime() != 3*time.Second {
		t.Fatalf("negotiated hold = %v, want peer's 3s (the RFC minimum)", s.HoldTime())
	}
	select {
	case <-s.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("hold timer never expired")
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "hold timer") {
		t.Errorf("err = %v", err)
	}
}

func TestExpectASMismatch(t *testing.T) {
	connA, connB := pipe(t)
	go func() {
		open := &bgp.Open{AS: 65099, HoldTime: 90, BGPID: netip.MustParseAddr("10.0.0.2"), FourByteAS: true}
		_ = bgp.WriteMessage(connB, open, false)
		_, _ = bgp.ReadMessage(connB, false)
		// Expect a NOTIFICATION back.
		msg, err := bgp.ReadMessage(connB, false)
		if err == nil {
			if n, ok := msg.(*bgp.Notification); !ok || n.Code != bgp.NotifOpenError {
				t.Errorf("raw peer got %v, want OPEN error", msg)
			}
		}
	}()
	c := cfg(65001, "10.0.0.1")
	c.ExpectAS = 65002
	if _, err := Establish(connA, c); err == nil || !strings.Contains(err.Error(), "peer AS") {
		t.Fatalf("err = %v, want AS mismatch", err)
	}
}

func TestUnacceptableHoldTimeRejected(t *testing.T) {
	for _, offered := range []uint16{1, 2} {
		connA, connB := pipe(t)
		notifCh := make(chan *bgp.Notification, 1)
		go func() {
			open := &bgp.Open{AS: 65002, HoldTime: offered, BGPID: netip.MustParseAddr("10.0.0.2"), FourByteAS: true}
			_ = bgp.WriteMessage(connB, open, false)
			_, _ = bgp.ReadMessage(connB, false) // their OPEN
			msg, err := bgp.ReadMessage(connB, false)
			if err != nil {
				notifCh <- nil
				return
			}
			n, _ := msg.(*bgp.Notification)
			notifCh <- n
		}()
		_, err := Establish(connA, cfg(65001, "10.0.0.1"))
		if !errors.Is(err, ErrUnacceptableHoldTime) {
			t.Fatalf("hold %ds: err = %v, want ErrUnacceptableHoldTime", offered, err)
		}
		select {
		case n := <-notifCh:
			if n == nil || n.Code != bgp.NotifOpenError || n.Subcode != bgp.OpenUnacceptableHoldTime {
				t.Errorf("hold %ds: peer got %v, want OPEN/unacceptable-hold-time", offered, n)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("hold %ds: raw peer never saw a NOTIFICATION", offered)
		}
	}
}

func TestLocalHoldTimeClampedToMinimum(t *testing.T) {
	c1 := cfg(65001, "10.0.0.1")
	c1.HoldTime = time.Second // below the RFC floor: round up, don't offer it
	a, b := establishPair(t, c1, cfg(65002, "10.0.0.2"))
	if a.HoldTime() != MinHoldTime || b.HoldTime() != MinHoldTime {
		t.Errorf("negotiated hold = %v / %v, want %v", a.HoldTime(), b.HoldTime(), MinHoldTime)
	}
}

func TestPeerNotificationClosesSession(t *testing.T) {
	a, b := establishPair(t, cfg(65001, "10.0.0.1"), cfg(65002, "10.0.0.2"))
	// Inject a NOTIFICATION from a's side manually.
	a.sendMu.Lock()
	err := bgp.WriteMessage(a.conn, &bgp.Notification{Code: bgp.NotifCease, Subcode: 4}, a.fourByteAS)
	a.sendMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("notification did not close peer")
	}
	var notif *bgp.Notification
	if !errors.As(b.Err(), &notif) || notif.Subcode != 4 {
		t.Errorf("err = %v", b.Err())
	}
}

func TestUpdatesChannelClosedAfterShutdown(t *testing.T) {
	a, b := establishPair(t, cfg(65001, "10.0.0.1"), cfg(65002, "10.0.0.2"))
	a.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-b.Updates():
			if !ok {
				return // closed as expected
			}
		case <-deadline:
			t.Fatal("updates channel never closed")
		}
	}
}

func TestDialRefused(t *testing.T) {
	// A port that nothing listens on: Dial must fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, cfg(65001, "10.0.0.1")); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateIdle: "Idle", StateOpenSent: "OpenSent", StateOpenConfirm: "OpenConfirm",
		StateEstablished: "Established", StateClosed: "Closed",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
}
