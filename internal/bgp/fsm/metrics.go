package fsm

import (
	"net"
	"sync/atomic"

	"rex/internal/obs"
)

// Session-layer metrics. The byte counters are fed by a counting
// wrapper every established session's conn goes through, so they cover
// keepalives and NOTIFICATIONs as well as UPDATE traffic.
var (
	mSessions = obs.NewCounterVec("rex_fsm_sessions_total", "result",
		"BGP handshake outcomes: established or handshake_failed.")
	mBytesRead = obs.NewCounter("rex_fsm_bytes_read_total",
		"Bytes read from peers across all sessions (post-handshake-start).")
	mBytesWritten = obs.NewCounter("rex_fsm_bytes_written_total",
		"Bytes written to peers across all sessions (post-handshake-start).")

	mPMDials = obs.NewCounter("rex_peermanager_dials_total",
		"Outbound dial attempts across all managed peers.")
	mPMDialFailures = obs.NewCounter("rex_peermanager_dial_failures_total",
		"Dial or handshake failures across all managed peers.")
	mPMEstablishedTotal = obs.NewCounter("rex_peermanager_sessions_established_total",
		"Sessions the manager has established since process start.")
	mPMEstablished = obs.NewGauge("rex_peermanager_established",
		"Managed peers currently in the Established phase.")
	mPMFlaps = obs.NewCounter("rex_peermanager_flaps_total",
		"Sessions that died before StableUptime (DampPeerOscillations trigger).")
	mPMBackoffMS = obs.NewGaugeVec("rex_peermanager_backoff_ms", "peer",
		"Current idle/backoff wait per managed peer, in milliseconds (0 once connected).")
	mPMTransitions = obs.NewCounterVec("rex_peermanager_transitions_total", "phase",
		"Managed-peer phase entries: idle, connecting, established, stopped.")
)

// countingConn counts bytes through a session's transport into the
// process-wide fsm byte counters and per-session totals.
type countingConn struct {
	net.Conn
	read, written atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.read.Add(int64(n))
		mBytesRead.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.written.Add(int64(n))
		mBytesWritten.Add(uint64(n))
	}
	return n, err
}
