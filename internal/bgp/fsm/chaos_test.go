package fsm

// Chaos tests: the session layer driven through the fault-injection
// conn. The contract under test is narrow but vital for a collector
// that must outlive the network it observes: whatever the wire does —
// cuts at arbitrary byte offsets, corrupted headers, mid-message resets
// — Establish and the session goroutines return errors; they never hang
// and never panic.

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm/faultconn"
)

// chaosEstablish runs Establish on both ends of a pipe, one end wrapped
// in a fault conn, and returns the wrapped side's error. It fails the
// test if either side hangs.
func chaosEstablish(t *testing.T, opts faultconn.Options) error {
	t.Helper()
	connA, connB := pipe(t)
	fc := faultconn.New(connA, opts)

	peerDone := make(chan struct{})
	go func() {
		defer close(peerDone)
		if s, err := Establish(connB, cfg(65001, "10.0.0.9")); err == nil {
			s.Close()
		}
	}()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Establish(fc, cfg(65002, "10.0.0.2"))
		ch <- res{s, err}
	}()
	var r res
	select {
	case r = <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("Establish hung on a faulty conn")
	}
	if r.s != nil {
		r.s.Close()
	}
	connB.Close() // release the healthy side if it is still waiting
	select {
	case <-peerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("peer Establish hung after fault")
	}
	return r.err
}

// TestEstablishSurvivesCutsAtEveryOffset cuts the conn after every byte
// offset that can land inside the handshake, on both the read and the
// write path. Early cuts must fail the handshake; late cuts may let it
// succeed; nothing may hang or panic.
func TestEstablishSurvivesCutsAtEveryOffset(t *testing.T) {
	// The handshake is one OPEN (~29+ bytes with the 4-octet AS
	// capability) and one KEEPALIVE (19 bytes) in each direction; 64
	// covers it with room to spare.
	const maxOffset = 64
	for off := int64(1); off <= maxOffset; off++ {
		err := chaosEstablish(t, faultconn.Options{CutWriteAfter: off})
		if off < 19 && err == nil {
			// A cut inside our own OPEN header cannot produce a session.
			t.Errorf("write cut at %d: handshake succeeded", off)
		}
		if err = chaosEstablish(t, faultconn.Options{CutReadAfter: off}); off < 19 && err == nil {
			t.Errorf("read cut at %d: handshake succeeded", off)
		}
	}
}

// TestEstablishRejectsCorruptHeader flips a byte in the OPEN's marker in
// each direction: the receiving side must refuse the message and the
// handshake must fail cleanly on both ends.
func TestEstablishRejectsCorruptHeader(t *testing.T) {
	if err := chaosEstablish(t, faultconn.Options{CorruptWriteAt: 1}); err == nil {
		t.Error("handshake succeeded with corrupt outbound marker")
	}
	if err := chaosEstablish(t, faultconn.Options{CorruptReadAt: 1}); err == nil {
		t.Error("handshake succeeded with corrupt inbound marker")
	}
	// Corruption in the OPEN body may or may not be fatal (a flipped
	// in-body AS byte is ignored when the 4-octet capability carries the
	// real ASN) — but it must never hang, which chaosEstablish enforces.
	_ = chaosEstablish(t, faultconn.Options{CorruptWriteAt: 21})
}

// TestEstablishToleratesLatency: a slow conn is not a broken conn.
func TestEstablishToleratesLatency(t *testing.T) {
	if err := chaosEstablish(t, faultconn.Options{
		ReadDelay:  2 * time.Millisecond,
		WriteDelay: 2 * time.Millisecond,
	}); err != nil {
		t.Errorf("handshake failed on a merely slow conn: %v", err)
	}
}

// TestMidSessionCutKillsSessionPromptly establishes through the fault
// conn, then resets it mid-session: the session must notice, close its
// Updates channel, and report a non-nil error — even with a reader
// blocked on the conn.
func TestMidSessionCutKillsSessionPromptly(t *testing.T) {
	connA, connB := pipe(t)
	fc := faultconn.New(connA, faultconn.Options{})

	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Establish(connB, cfg(65001, "10.0.0.9"))
		ch <- res{s, err}
	}()
	sa, err := Establish(fc, cfg(65002, "10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	rb := <-ch
	if rb.err != nil {
		t.Fatal(rb.err)
	}
	defer rb.s.Close()

	fc.Cut()
	select {
	case <-sa.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("session survived a mid-session reset")
	}
	if sa.Err() == nil {
		t.Error("reset session reports nil error")
	}
	if _, ok := <-sa.Updates(); ok {
		t.Error("Updates delivered after reset")
	}
	if err := sa.Send(&bgp.Update{}); err == nil {
		t.Error("Send succeeded after reset")
	}
}

// TestConcurrentSendCloseDisconnect races Send against Close against a
// peer disconnect, repeatedly. The assertions are minimal on purpose:
// this test exists for the race detector and for "no deadlock".
func TestConcurrentSendCloseDisconnect(t *testing.T) {
	for i := 0; i < 10; i++ {
		sa, sb := establishPair(t, cfg(65001, "10.0.0.1"), cfg(65002, "10.0.0.2"))
		u := &bgp.Update{
			Attrs: &bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  bgp.Sequence(65001),
				Nexthop: netip.MustParseAddr("10.0.0.1"),
			},
			NLRI: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")},
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if err := sa.Send(u); err != nil {
						return
					}
				}
			}()
		}
		// Drain b so a's senders aren't throttled by a full TCP window.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range sb.Updates() {
			}
		}()
		wg.Add(2)
		go func() { defer wg.Done(); sb.Close() }() // peer disconnect
		go func() { defer wg.Done(); sa.Close() }() // local close
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d deadlocked", i)
		}
	}
}

// TestKeepalivesRideOutSlowConn: a session whose conn injects latency on
// every read and write must still exchange keepalives fast enough to
// hold a short hold timer open.
func TestKeepalivesRideOutSlowConn(t *testing.T) {
	connA, connB := pipe(t)
	fc := faultconn.New(connA, faultconn.Options{
		ReadDelay:  5 * time.Millisecond,
		WriteDelay: 5 * time.Millisecond,
	})
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Establish(connB, Config{LocalAS: 65001, LocalID: netip.MustParseAddr("10.0.0.9"), HoldTime: 3 * time.Second})
		ch <- res{s, err}
	}()
	sa, err := Establish(fc, Config{LocalAS: 65002, LocalID: netip.MustParseAddr("10.0.0.2"), HoldTime: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	rb := <-ch
	if rb.err != nil {
		t.Fatal(rb.err)
	}
	defer rb.s.Close()
	if sa.HoldTime() != 3*time.Second {
		t.Fatalf("negotiated hold = %v", sa.HoldTime())
	}

	// Outlive several keepalive intervals (hold/3 = 1s).
	select {
	case <-sa.Done():
		t.Fatalf("session died on a slow conn: %v", sa.Err())
	case <-rb.s.Done():
		t.Fatalf("peer died on a slow conn: %v", rb.s.Err())
	case <-time.After(2500 * time.Millisecond):
		// Still up past two keepalive intervals: the hold machinery
		// tolerates injected latency.
	}
}
