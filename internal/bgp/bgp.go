// Package bgp implements the BGP-4 message model and wire codec (RFC 4271)
// used throughout the repository: path attributes, UPDATE/OPEN/KEEPALIVE/
// NOTIFICATION messages, and prefix (NLRI) encoding.
//
// The codec is deliberately self-contained and allocation-conscious: it is
// the substrate under the collector (passive IBGP peering), the MRT
// reader/writer, and the simulator's live replay mode.
package bgp

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// Version is the BGP protocol version implemented by this package.
const Version = 4

// Origin is the ORIGIN path attribute value (RFC 4271 §5.1.1).
type Origin uint8

// Origin values. Wire values start at zero per the RFC, so this enum
// intentionally keeps the zero value meaningful (IGP is the common default).
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

// String returns the conventional short name ("i", "e", "?") used by
// router CLIs.
func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "i"
	case OriginEGP:
		return "e"
	case OriginIncomplete:
		return "?"
	default:
		return "origin(" + strconv.Itoa(int(o)) + ")"
	}
}

// Valid reports whether o is one of the three defined origin codes.
func (o Origin) Valid() bool { return o <= OriginIncomplete }

// Community is a BGP community attribute value (RFC 1997): a 32-bit tag
// conventionally written as "asn:value".
type Community uint32

// MakeCommunity builds a community from its conventional asn:value parts.
func MakeCommunity(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// ASN returns the high 16 bits of the community.
func (c Community) ASN() uint16 { return uint16(c >> 16) }

// Value returns the low 16 bits of the community.
func (c Community) Value() uint16 { return uint16(c) }

// String renders the community in the conventional "asn:value" form.
func (c Community) String() string {
	return strconv.Itoa(int(c.ASN())) + ":" + strconv.Itoa(int(c.Value()))
}

// ParseCommunity parses the "asn:value" form produced by String.
func ParseCommunity(s string) (Community, error) {
	a, v, ok := strings.Cut(s, ":")
	if !ok {
		return 0, fmt.Errorf("community %q: want asn:value", s)
	}
	asn, err := strconv.ParseUint(a, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("community %q: asn: %w", s, err)
	}
	val, err := strconv.ParseUint(v, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("community %q: value: %w", s, err)
	}
	return MakeCommunity(uint16(asn), uint16(val)), nil
}

// Aggregator is the AGGREGATOR path attribute (RFC 4271 §5.1.7).
type Aggregator struct {
	AS   uint32
	Addr netip.Addr
}

// String renders the aggregator as "as:addr".
func (a Aggregator) String() string {
	return strconv.FormatUint(uint64(a.AS), 10) + ":" + a.Addr.String()
}

// Well-known community values (RFC 1997 §2).
const (
	CommunityNoExport          Community = 0xFFFFFF01
	CommunityNoAdvertise       Community = 0xFFFFFF02
	CommunityNoExportSubconfed Community = 0xFFFFFF03
)
