package bgp

import (
	"fmt"
	"net/netip"
)

// Prefix wire encoding (RFC 4271 §4.3, "2-tuples of the form <length,
// prefix>"): one length octet followed by ceil(length/8) address octets.
// This codec handles IPv4 NLRI; the rest of the repository uses
// netip.Prefix throughout so the event and RIB layers are family-agnostic.

// appendWirePrefix appends the wire form of p to dst.
func appendWirePrefix(dst []byte, p netip.Prefix) ([]byte, error) {
	if !p.IsValid() {
		return dst, fmt.Errorf("encode prefix: invalid prefix %v", p)
	}
	addr := p.Addr()
	if !addr.Is4() {
		return dst, fmt.Errorf("encode prefix %v: only IPv4 NLRI supported on the wire", p)
	}
	bits := p.Bits()
	dst = append(dst, byte(bits))
	a4 := addr.As4()
	dst = append(dst, a4[:(bits+7)/8]...)
	return dst, nil
}

// decodeWirePrefix decodes one wire prefix from b, returning the prefix and
// the number of bytes consumed.
func decodeWirePrefix(b []byte) (netip.Prefix, int, error) {
	if len(b) < 1 {
		return netip.Prefix{}, 0, fmt.Errorf("decode prefix: empty input")
	}
	bits := int(b[0])
	if bits > 32 {
		return netip.Prefix{}, 0, fmt.Errorf("decode prefix: length %d > 32", bits)
	}
	n := (bits + 7) / 8
	if len(b) < 1+n {
		return netip.Prefix{}, 0, fmt.Errorf("decode prefix: truncated (%d bytes, need %d)", len(b)-1, n)
	}
	var a4 [4]byte
	copy(a4[:], b[1:1+n])
	// Zero any host bits the sender left set so equal prefixes compare equal.
	if bits < 32 {
		mask := ^uint32(0) << (32 - bits)
		v := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
		v &= mask
		a4 = [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	}
	return netip.PrefixFrom(netip.AddrFrom4(a4), bits), 1 + n, nil
}

// decodeWirePrefixes decodes a run of wire prefixes filling exactly b.
func decodeWirePrefixes(b []byte) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(b) > 0 {
		p, n, err := decodeWirePrefix(b)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		b = b[n:]
	}
	return out, nil
}
