package bgp

// FuzzReadMessage feeds arbitrary bytes to the wire parser. ReadMessage
// sits directly on conns from unauthenticated peers, so the bar is
// absolute: any input may produce an error, none may panic or hang.

import (
	"bytes"
	"net/netip"
	"testing"
)

func marshalSeed(f *testing.F, msg Message, fourByteAS bool) {
	f.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msg, fourByteAS); err != nil {
		f.Fatalf("marshal seed: %v", err)
	}
	f.Add(buf.Bytes())
}

func FuzzReadMessage(f *testing.F) {
	// Well-formed messages, so mutation explores near-valid space.
	marshalSeed(f, &Open{
		AS:         65001,
		HoldTime:   90,
		BGPID:      netip.MustParseAddr("10.0.0.1"),
		FourByteAS: true,
	}, false)
	marshalSeed(f, &Update{
		Attrs: &PathAttrs{
			Origin:  OriginIGP,
			ASPath:  Sequence(65001, 174, 3356),
			Nexthop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("192.96.10.0/24")},
	}, true)
	marshalSeed(f, &Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}, true)
	marshalSeed(f, &Update{}, true) // End-of-RIB
	marshalSeed(f, Keepalive{}, true)
	marshalSeed(f, &Notification{Code: NotifCease}, true)

	// Malformed shapes the parser must reject without panicking.
	f.Add([]byte{})                                                     // empty
	f.Add(bytes.Repeat([]byte{0xFF}, 18))                               // truncated header
	f.Add(append(bytes.Repeat([]byte{0xFF}, 16), 0xFF, 0xFF, 2))        // length 65535
	f.Add(append(bytes.Repeat([]byte{0xFF}, 16), 0, 0, 2))              // length 0
	f.Add(append(bytes.Repeat([]byte{0x00}, 16), 0, 19, 4))             // bad marker
	f.Add(append(bytes.Repeat([]byte{0xFF}, 16), 0, 30, 2))             // body shorter than length
	f.Add(append(bytes.Repeat([]byte{0xFF}, 16), 0, 23, 2, 0, 9, 0, 0)) // withdrawn len overruns body

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, fourByteAS := range []bool{false, true} {
			msg, err := ReadMessage(bytes.NewReader(data), fourByteAS)
			if err != nil {
				continue
			}
			// Anything accepted must survive a re-marshal round trip
			// without panicking either.
			var buf bytes.Buffer
			_ = WriteMessage(&buf, msg, fourByteAS)
		}
	})
}
