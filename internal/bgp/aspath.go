package bgp

import (
	"slices"
	"strconv"
	"strings"
)

// SegmentType identifies the kind of an AS_PATH segment (RFC 4271 §4.3).
type SegmentType uint8

// AS_PATH segment types.
const (
	SegmentSet      SegmentType = 1
	SegmentSequence SegmentType = 2
)

// PathSegment is one segment of an AS_PATH attribute: either an ordered
// AS_SEQUENCE or an unordered AS_SET.
type PathSegment struct {
	Type SegmentType
	ASNs []uint32
}

// ASPath is an ordered list of path segments. The common case is a single
// AS_SEQUENCE segment.
type ASPath []PathSegment

// Sequence builds an ASPath consisting of a single AS_SEQUENCE with the
// given ASNs. An empty argument list yields an empty (zero-segment) path,
// as announced for locally originated routes.
func Sequence(asns ...uint32) ASPath {
	if len(asns) == 0 {
		return nil
	}
	return ASPath{{Type: SegmentSequence, ASNs: slices.Clone(asns)}}
}

// Length returns the AS-path length used by the BGP decision process:
// each AS in a sequence counts 1, each AS_SET counts 1 total (RFC 4271
// §9.1.2.2(a) as commonly implemented).
func (p ASPath) Length() int {
	n := 0
	for _, seg := range p {
		switch seg.Type {
		case SegmentSet:
			n++
		default:
			n += len(seg.ASNs)
		}
	}
	return n
}

// ASNs returns every ASN on the path in order, flattening AS_SETs in their
// stored order. The returned slice is freshly allocated.
func (p ASPath) ASNs() []uint32 {
	out := make([]uint32, 0, p.Length())
	for _, seg := range p {
		out = append(out, seg.ASNs...)
	}
	return out
}

// First returns the leftmost (nearest) ASN, or 0 if the path is empty.
func (p ASPath) First() uint32 {
	for _, seg := range p {
		if len(seg.ASNs) > 0 {
			return seg.ASNs[0]
		}
	}
	return 0
}

// OriginAS returns the rightmost ASN (the route's originating AS), or 0 if
// the path is empty.
func (p ASPath) OriginAS() uint32 {
	for i := len(p) - 1; i >= 0; i-- {
		if n := len(p[i].ASNs); n > 0 {
			return p[i].ASNs[n-1]
		}
	}
	return 0
}

// Contains reports whether asn appears anywhere on the path. BGP's loop
// detection rejects routes whose AS_PATH contains the local AS.
func (p ASPath) Contains(asn uint32) bool {
	for _, seg := range p {
		if slices.Contains(seg.ASNs, asn) {
			return true
		}
	}
	return false
}

// Prepend returns a new path with asn prepended, merging into a leading
// AS_SEQUENCE when one exists. The receiver is not modified.
func (p ASPath) Prepend(asn uint32) ASPath {
	if len(p) > 0 && p[0].Type == SegmentSequence {
		seg := PathSegment{
			Type: SegmentSequence,
			ASNs: make([]uint32, 0, len(p[0].ASNs)+1),
		}
		seg.ASNs = append(append(seg.ASNs, asn), p[0].ASNs...)
		out := make(ASPath, 0, len(p))
		out = append(out, seg)
		return append(out, p[1:]...)
	}
	out := make(ASPath, 0, len(p)+1)
	out = append(out, PathSegment{Type: SegmentSequence, ASNs: []uint32{asn}})
	return append(out, p...)
}

// Clone returns a deep copy of the path.
func (p ASPath) Clone() ASPath {
	if p == nil {
		return nil
	}
	out := make(ASPath, len(p))
	for i, seg := range p {
		out[i] = PathSegment{Type: seg.Type, ASNs: slices.Clone(seg.ASNs)}
	}
	return out
}

// Equal reports whether two paths are identical segment by segment.
func (p ASPath) Equal(q ASPath) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i].Type != q[i].Type || !slices.Equal(p[i].ASNs, q[i].ASNs) {
			return false
		}
	}
	return true
}

// String renders the path in the usual CLI form: sequences as
// space-separated ASNs, sets in braces ("11423 209 {7018 1239}").
func (p ASPath) String() string {
	var b strings.Builder
	for i, seg := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		if seg.Type == SegmentSet {
			b.WriteByte('{')
		}
		for j, asn := range seg.ASNs {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatUint(uint64(asn), 10))
		}
		if seg.Type == SegmentSet {
			b.WriteByte('}')
		}
	}
	return b.String()
}

// ParseASPath parses the String form: space-separated ASNs with AS_SETs in
// braces. An empty string yields an empty path.
func ParseASPath(s string) (ASPath, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var (
		path   ASPath
		curSeq []uint32
	)
	flushSeq := func() {
		if len(curSeq) > 0 {
			path = append(path, PathSegment{Type: SegmentSequence, ASNs: curSeq})
			curSeq = nil
		}
	}
	i := 0
	for i < len(s) {
		switch {
		case s[i] == ' ':
			i++
		case s[i] == '{':
			flushSeq()
			end := strings.IndexByte(s[i:], '}')
			if end < 0 {
				return nil, errUnterminatedSet(s)
			}
			inner := s[i+1 : i+end]
			var set []uint32
			for _, f := range strings.Fields(inner) {
				asn, err := strconv.ParseUint(f, 10, 32)
				if err != nil {
					return nil, errBadASN(f)
				}
				set = append(set, uint32(asn))
			}
			if len(set) == 0 {
				return nil, errEmptySet(s)
			}
			path = append(path, PathSegment{Type: SegmentSet, ASNs: set})
			i += end + 1
		default:
			end := i
			for end < len(s) && s[end] != ' ' && s[end] != '{' {
				end++
			}
			asn, err := strconv.ParseUint(s[i:end], 10, 32)
			if err != nil {
				return nil, errBadASN(s[i:end])
			}
			curSeq = append(curSeq, uint32(asn))
			i = end
		}
	}
	flushSeq()
	return path, nil
}

func errUnterminatedSet(s string) error {
	return &ASPathParseError{Input: s, Reason: "unterminated AS_SET"}
}

func errEmptySet(s string) error {
	return &ASPathParseError{Input: s, Reason: "empty AS_SET"}
}

func errBadASN(tok string) error {
	return &ASPathParseError{Input: tok, Reason: "invalid ASN"}
}

// ASPathParseError reports a malformed textual AS path.
type ASPathParseError struct {
	Input  string
	Reason string
}

func (e *ASPathParseError) Error() string {
	return "parse as-path " + strconv.Quote(e.Input) + ": " + e.Reason
}
