package bgp

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

// TestUnmarshalNeverPanics feeds adversarial bytes to the decoder: any
// input must produce an error or a message, never a panic or an
// out-of-range read.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, fourByte bool) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeRaw % 512)
		buf := make([]byte, size)
		rng.Read(buf)
		_, _ = Unmarshal(buf, fourByte)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestUnmarshalValidHeaderRandomBody stresses the per-type body parsers:
// a well-formed header with garbage body must error out cleanly.
func TestUnmarshalValidHeaderRandomBody(t *testing.T) {
	f := func(seed int64, bodyLenRaw uint16, msgType uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bodyLen := int(bodyLenRaw % 256)
		buf := make([]byte, 19+bodyLen)
		for i := 0; i < 16; i++ {
			buf[i] = 0xFF
		}
		buf[16] = byte(len(buf) >> 8)
		buf[17] = byte(len(buf))
		buf[18] = msgType%5 + 1
		rng.Read(buf[19:])
		_, _ = Unmarshal(buf, seed%2 == 0)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestAttrsRoundTripQuick round-trips randomized attribute sets through
// the wire codec.
func TestAttrsRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := &PathAttrs{
			Origin: Origin(rng.Intn(3)),
		}
		pathLen := rng.Intn(6) + 1
		asns := make([]uint32, pathLen)
		for i := range asns {
			asns[i] = uint32(rng.Intn(1 << 20)) // exercises 4-byte ASNs
		}
		a.ASPath = Sequence(asns...)
		a.Nexthop = randAddr(rng)
		if rng.Intn(2) == 0 {
			a.HasMED, a.MED = true, rng.Uint32()
		}
		if rng.Intn(2) == 0 {
			a.HasLocalPref, a.LocalPref = true, rng.Uint32()
		}
		for i := 0; i < rng.Intn(4); i++ {
			a.AddCommunity(MakeCommunity(uint16(rng.Intn(1<<16)), uint16(rng.Intn(1<<16))))
		}
		wire, err := MarshalAttrs(a, true)
		if err != nil {
			return false
		}
		back, err := UnmarshalAttrs(wire, true)
		if err != nil {
			return false
		}
		return back.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func randAddr(rng *rand.Rand) netip.Addr {
	var a [4]byte
	rng.Read(a[:])
	return netip.AddrFrom4(a)
}
