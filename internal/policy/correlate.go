package policy

import (
	"fmt"
	"sort"

	"rex/internal/bgp"
	"rex/internal/core/stemming"
	"rex/internal/event"
)

// Finding ties a Stemming component to a configured policy: "the routes in
// this component carry community X, and router R's route-map M seq S acts
// on X (e.g. sets local-preference 80)". This is the §III-D.1 correlation
// that explained Berkeley's rate-limiter failover.
type Finding struct {
	Policy CommunityPolicy
	// Events is how many of the component's events carry the community.
	Events int
}

// String renders the finding for reports.
func (f Finding) String() string {
	action := "permit"
	if !f.Policy.Permit {
		action = "deny"
	}
	s := fmt.Sprintf("%d events tagged %v match route-map %s seq %d (%s) on %s",
		f.Events, f.Policy.Community, f.Policy.RouteMap, f.Policy.Seq, action, f.Policy.Router)
	if f.Policy.LocalPref != nil {
		s += fmt.Sprintf(", set local-preference %d", *f.Policy.LocalPref)
	}
	return s
}

// Correlate matches the component's community tags against the policies
// extracted from the given configurations, strongest (most events) first.
func Correlate(comp *stemming.Component, s event.Stream, configs []*Config) []Finding {
	commCount := make(map[bgp.Community]int)
	for _, idx := range comp.EventIndexes {
		if idx < 0 || idx >= len(s) {
			continue
		}
		attrs := s[idx].Attrs
		if attrs == nil {
			continue
		}
		for _, c := range attrs.Communities {
			commCount[c]++
		}
	}
	if len(commCount) == 0 {
		return nil
	}
	var out []Finding
	for _, cfg := range configs {
		for _, cp := range cfg.CommunityPolicies() {
			if n := commCount[cp.Community]; n > 0 {
				out = append(out, Finding{Policy: cp, Events: n})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Events != out[j].Events {
			return out[i].Events > out[j].Events
		}
		if out[i].Policy.Router != out[j].Policy.Router {
			return out[i].Policy.Router < out[j].Policy.Router
		}
		return out[i].Policy.Seq < out[j].Policy.Seq
	})
	return out
}
