// Package policy implements the router-configuration substrate of
// §III-D.1: a parser for a compact IOS-like configuration dialect, the
// policy objects it defines (prefix-lists, community-lists, route-maps,
// per-neighbor policies including maximum-prefix), application of those
// policies to routes, and correlation of Stemming components with the
// policies that explain them — the paper's "retrieve the configuration
// files ... and correlate their policies with BGP events" step.
package policy

import (
	"net/netip"
	"sort"

	"rex/internal/bgp"
)

// PrefixRule is one entry of a prefix-list.
type PrefixRule struct {
	Seq    int
	Permit bool
	Prefix netip.Prefix
	// Ge and Le bound the matched mask length ("ge 24 le 32"); zero means
	// exact-length match for that side.
	Ge, Le int
}

// Matches reports whether p matches the rule: p must be covered by
// rule.Prefix and its length must satisfy the ge/le bounds.
func (r PrefixRule) Matches(p netip.Prefix) bool {
	if !r.Prefix.Contains(p.Addr()) || p.Bits() < r.Prefix.Bits() {
		return false
	}
	lo, hi := r.Prefix.Bits(), r.Prefix.Bits()
	if r.Ge > 0 {
		lo = r.Ge
	}
	if r.Le > 0 {
		hi = r.Le
	} else if r.Ge > 0 {
		hi = 32
	}
	return p.Bits() >= lo && p.Bits() <= hi
}

// PrefixList is an ordered prefix filter; first matching rule wins,
// default deny.
type PrefixList struct {
	Name  string
	Rules []PrefixRule
}

// Permits reports whether the list permits p.
func (l *PrefixList) Permits(p netip.Prefix) bool {
	for _, r := range l.Rules {
		if r.Matches(p) {
			return r.Permit
		}
	}
	return false
}

// CommunityList is a named set of community values; a route matches when
// it carries any permitted community.
type CommunityList struct {
	Name   string
	Permit []bgp.Community
}

// Matches reports whether attrs carries any permitted community.
func (l *CommunityList) Matches(attrs *bgp.PathAttrs) bool {
	for _, c := range l.Permit {
		if attrs.HasCommunity(c) {
			return true
		}
	}
	return false
}

// MapEntry is one sequence of a route-map.
type MapEntry struct {
	Seq    int
	Permit bool
	// MatchCommunityList, when non-empty, requires the route to match the
	// named community-list.
	MatchCommunityList string
	// MatchPrefixList, when non-empty, requires the prefix to match the
	// named prefix-list.
	MatchPrefixList string
	// SetLocalPref, SetMED and AddCommunities are applied on permit.
	SetLocalPref   *uint32
	SetMED         *uint32
	AddCommunities []bgp.Community
}

// RouteMap is an ordered list of match/set entries; first matching entry
// decides, default deny (as in IOS).
type RouteMap struct {
	Name    string
	Entries []MapEntry
}

// Neighbor is the per-neighbor BGP policy.
type Neighbor struct {
	Addr     netip.Addr
	RemoteAS uint32
	// RouteMapIn and RouteMapOut name the route-maps applied to received
	// and advertised routes.
	RouteMapIn  string
	RouteMapOut string
	// MaxPrefix, when positive, is the maximum-prefix limit: the session
	// is torn down when the neighbor announces more prefixes (the
	// ISP-A/ISP-B leak incident in the paper's introduction).
	MaxPrefix int
}

// Config is one router's parsed configuration.
type Config struct {
	Hostname       string
	LocalAS        uint32
	RouterID       netip.Addr
	Neighbors      map[netip.Addr]*Neighbor
	PrefixLists    map[string]*PrefixList
	CommunityLists map[string]*CommunityList
	RouteMaps      map[string]*RouteMap
}

// NewConfig returns an empty configuration.
func NewConfig() *Config {
	return &Config{
		Neighbors:      make(map[netip.Addr]*Neighbor),
		PrefixLists:    make(map[string]*PrefixList),
		CommunityLists: make(map[string]*CommunityList),
		RouteMaps:      make(map[string]*RouteMap),
	}
}

// Decision is the outcome of applying a route-map.
type Decision struct {
	Permitted bool
	// Attrs is the (possibly modified) attribute set; nil when denied.
	Attrs *bgp.PathAttrs
	// MatchedSeq is the sequence number of the deciding entry, -1 when no
	// entry matched (implicit deny).
	MatchedSeq int
}

// Apply runs the route-map over a route. The input attrs are not
// modified; set actions operate on a clone.
func (c *Config) Apply(mapName string, prefix netip.Prefix, attrs *bgp.PathAttrs) Decision {
	rm, ok := c.RouteMaps[mapName]
	if !ok {
		// Referencing a missing route-map behaves as permit-all, matching
		// common router behaviour for unresolved references.
		return Decision{Permitted: true, Attrs: attrs, MatchedSeq: -1}
	}
	for _, e := range rm.Entries {
		if !c.entryMatches(e, prefix, attrs) {
			continue
		}
		if !e.Permit {
			return Decision{Permitted: false, MatchedSeq: e.Seq}
		}
		out := attrs
		if e.SetLocalPref != nil || e.SetMED != nil || len(e.AddCommunities) > 0 {
			out = attrs.Clone()
			if e.SetLocalPref != nil {
				out.LocalPref, out.HasLocalPref = *e.SetLocalPref, true
			}
			if e.SetMED != nil {
				out.MED, out.HasMED = *e.SetMED, true
			}
			for _, comm := range e.AddCommunities {
				out.AddCommunity(comm)
			}
		}
		return Decision{Permitted: true, Attrs: out, MatchedSeq: e.Seq}
	}
	return Decision{Permitted: false, MatchedSeq: -1}
}

func (c *Config) entryMatches(e MapEntry, prefix netip.Prefix, attrs *bgp.PathAttrs) bool {
	if e.MatchCommunityList != "" {
		cl, ok := c.CommunityLists[e.MatchCommunityList]
		if !ok || !cl.Matches(attrs) {
			return false
		}
	}
	if e.MatchPrefixList != "" {
		pl, ok := c.PrefixLists[e.MatchPrefixList]
		if !ok || !pl.Permits(prefix) {
			return false
		}
	}
	return true
}

// ApplyIn applies the inbound policy of the given neighbor.
func (c *Config) ApplyIn(neighbor netip.Addr, prefix netip.Prefix, attrs *bgp.PathAttrs) Decision {
	n, ok := c.Neighbors[neighbor]
	if !ok || n.RouteMapIn == "" {
		return Decision{Permitted: true, Attrs: attrs, MatchedSeq: -1}
	}
	return c.Apply(n.RouteMapIn, prefix, attrs)
}

// ApplyOut applies the outbound policy of the given neighbor.
func (c *Config) ApplyOut(neighbor netip.Addr, prefix netip.Prefix, attrs *bgp.PathAttrs) Decision {
	n, ok := c.Neighbors[neighbor]
	if !ok || n.RouteMapOut == "" {
		return Decision{Permitted: true, Attrs: attrs, MatchedSeq: -1}
	}
	return c.Apply(n.RouteMapOut, prefix, attrs)
}

// ExceedsMaxPrefix reports whether count trips the neighbor's
// maximum-prefix limit.
func (c *Config) ExceedsMaxPrefix(neighbor netip.Addr, count int) bool {
	n, ok := c.Neighbors[neighbor]
	return ok && n.MaxPrefix > 0 && count > n.MaxPrefix
}

// CommunityPolicies returns, for every community referenced by the
// config's route-maps via community-lists, the policy actions tied to it.
// This is the index the Stemming correlation uses.
func (c *Config) CommunityPolicies() []CommunityPolicy {
	var out []CommunityPolicy
	for _, rm := range c.RouteMaps {
		for _, e := range rm.Entries {
			if e.MatchCommunityList == "" {
				continue
			}
			cl, ok := c.CommunityLists[e.MatchCommunityList]
			if !ok {
				continue
			}
			for _, comm := range cl.Permit {
				cp := CommunityPolicy{
					Router:    c.Hostname,
					RouteMap:  rm.Name,
					Seq:       e.Seq,
					Community: comm,
					Permit:    e.Permit,
				}
				if e.SetLocalPref != nil {
					lp := *e.SetLocalPref
					cp.LocalPref = &lp
				}
				out = append(out, cp)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Community != out[j].Community {
			return out[i].Community < out[j].Community
		}
		if out[i].RouteMap != out[j].RouteMap {
			return out[i].RouteMap < out[j].RouteMap
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// CommunityPolicy records one community→action binding extracted from a
// configuration.
type CommunityPolicy struct {
	Router    string
	RouteMap  string
	Seq       int
	Community bgp.Community
	Permit    bool
	LocalPref *uint32
}
