package policy

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"rex/internal/bgp"
)

// Parse reads a router configuration in the compact IOS-like dialect:
//
//	hostname edge1
//	router bgp 25
//	 bgp router-id 128.32.1.3
//	 neighbor 128.32.0.66 remote-as 11423
//	 neighbor 128.32.0.66 route-map CALREN-IN in
//	 neighbor 128.32.0.66 maximum-prefix 15000
//	!
//	ip prefix-list COMMODITY seq 5 permit 0.0.0.0/1 le 32
//	ip community-list standard ISP permit 11423:65350
//	!
//	route-map CALREN-IN permit 10
//	 match community ISP
//	 set local-preference 80
//	route-map CALREN-IN permit 20
//	 match ip address prefix-list COMMODITY
//
// Lines starting with '!' are comments/section breaks. Unknown statements
// are an error: configurations are ground truth in this system, so silent
// skips would hide test bugs.
func Parse(r io.Reader) (*Config, error) {
	cfg := NewConfig()
	sc := bufio.NewScanner(r)
	var curEntry *MapEntry // open route-map entry for match/set lines
	inBGP := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "!") {
			continue
		}
		indented := line != trimmed
		fields := strings.Fields(trimmed)

		fail := func(format string, args ...any) error {
			return fmt.Errorf("config line %d (%q): %s", lineNo, trimmed, fmt.Sprintf(format, args...))
		}

		switch {
		case fields[0] == "hostname" && len(fields) == 2:
			cfg.Hostname = fields[1]
			inBGP, curEntry = false, nil

		case fields[0] == "router" && len(fields) == 3 && fields[1] == "bgp":
			asn, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fail("bad ASN: %v", err)
			}
			cfg.LocalAS = uint32(asn)
			inBGP, curEntry = true, nil

		case indented && inBGP && fields[0] == "bgp" && len(fields) == 3 && fields[1] == "router-id":
			id, err := netip.ParseAddr(fields[2])
			if err != nil {
				return nil, fail("bad router-id: %v", err)
			}
			cfg.RouterID = id

		case indented && inBGP && fields[0] == "neighbor":
			if err := parseNeighbor(cfg, fields); err != nil {
				return nil, fail("%v", err)
			}

		case fields[0] == "ip" && len(fields) >= 2 && fields[1] == "prefix-list":
			if err := parsePrefixList(cfg, fields); err != nil {
				return nil, fail("%v", err)
			}
			inBGP, curEntry = false, nil

		case fields[0] == "ip" && len(fields) >= 2 && fields[1] == "community-list":
			if err := parseCommunityList(cfg, fields); err != nil {
				return nil, fail("%v", err)
			}
			inBGP, curEntry = false, nil

		case fields[0] == "route-map" && len(fields) == 4:
			permit := fields[2] == "permit"
			if !permit && fields[2] != "deny" {
				return nil, fail("want permit or deny")
			}
			seq, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fail("bad sequence: %v", err)
			}
			rm := cfg.RouteMaps[fields[1]]
			if rm == nil {
				rm = &RouteMap{Name: fields[1]}
				cfg.RouteMaps[fields[1]] = rm
			}
			rm.Entries = append(rm.Entries, MapEntry{Seq: seq, Permit: permit})
			curEntry = &rm.Entries[len(rm.Entries)-1]
			inBGP = false

		case indented && curEntry != nil && fields[0] == "match":
			if err := parseMatch(curEntry, fields); err != nil {
				return nil, fail("%v", err)
			}

		case indented && curEntry != nil && fields[0] == "set":
			if err := parseSet(curEntry, fields); err != nil {
				return nil, fail("%v", err)
			}

		default:
			return nil, fail("unrecognized statement")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, rm := range cfg.RouteMaps {
		sort.SliceStable(rm.Entries, func(i, j int) bool { return rm.Entries[i].Seq < rm.Entries[j].Seq })
	}
	return cfg, nil
}

func parseNeighbor(cfg *Config, fields []string) error {
	if len(fields) < 4 {
		return fmt.Errorf("short neighbor statement")
	}
	addr, err := netip.ParseAddr(fields[1])
	if err != nil {
		return fmt.Errorf("bad neighbor address: %w", err)
	}
	n := cfg.Neighbors[addr]
	if n == nil {
		n = &Neighbor{Addr: addr}
		cfg.Neighbors[addr] = n
	}
	switch fields[2] {
	case "remote-as":
		asn, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil {
			return fmt.Errorf("bad remote-as: %w", err)
		}
		n.RemoteAS = uint32(asn)
	case "route-map":
		if len(fields) != 5 {
			return fmt.Errorf("neighbor route-map wants NAME in|out")
		}
		switch fields[4] {
		case "in":
			n.RouteMapIn = fields[3]
		case "out":
			n.RouteMapOut = fields[3]
		default:
			return fmt.Errorf("route-map direction %q", fields[4])
		}
	case "maximum-prefix":
		limit, err := strconv.Atoi(fields[3])
		if err != nil || limit <= 0 {
			return fmt.Errorf("bad maximum-prefix %q", fields[3])
		}
		n.MaxPrefix = limit
	default:
		return fmt.Errorf("unknown neighbor attribute %q", fields[2])
	}
	return nil
}

// ip prefix-list NAME seq N permit|deny PREFIX [ge N] [le N]
func parsePrefixList(cfg *Config, fields []string) error {
	if len(fields) < 7 || fields[3] != "seq" {
		return fmt.Errorf("want: ip prefix-list NAME seq N permit|deny PREFIX [ge N] [le N]")
	}
	name := fields[2]
	seq, err := strconv.Atoi(fields[4])
	if err != nil {
		return fmt.Errorf("bad seq: %w", err)
	}
	rule := PrefixRule{Seq: seq}
	switch fields[5] {
	case "permit":
		rule.Permit = true
	case "deny":
	default:
		return fmt.Errorf("want permit or deny, got %q", fields[5])
	}
	rule.Prefix, err = netip.ParsePrefix(fields[6])
	if err != nil {
		return fmt.Errorf("bad prefix: %w", err)
	}
	rest := fields[7:]
	for len(rest) >= 2 {
		v, err := strconv.Atoi(rest[1])
		if err != nil || v < 0 || v > 32 {
			return fmt.Errorf("bad %s length %q", rest[0], rest[1])
		}
		switch rest[0] {
		case "ge":
			rule.Ge = v
		case "le":
			rule.Le = v
		default:
			return fmt.Errorf("unknown prefix-list option %q", rest[0])
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("trailing tokens %v", rest)
	}
	pl := cfg.PrefixLists[name]
	if pl == nil {
		pl = &PrefixList{Name: name}
		cfg.PrefixLists[name] = pl
	}
	pl.Rules = append(pl.Rules, rule)
	sort.SliceStable(pl.Rules, func(i, j int) bool { return pl.Rules[i].Seq < pl.Rules[j].Seq })
	return nil
}

// ip community-list standard NAME permit COMM [COMM...]
func parseCommunityList(cfg *Config, fields []string) error {
	if len(fields) < 6 || fields[2] != "standard" || fields[4] != "permit" {
		return fmt.Errorf("want: ip community-list standard NAME permit COMM...")
	}
	name := fields[3]
	cl := cfg.CommunityLists[name]
	if cl == nil {
		cl = &CommunityList{Name: name}
		cfg.CommunityLists[name] = cl
	}
	for _, s := range fields[5:] {
		c, err := bgp.ParseCommunity(s)
		if err != nil {
			return err
		}
		cl.Permit = append(cl.Permit, c)
	}
	return nil
}

func parseMatch(e *MapEntry, fields []string) error {
	switch {
	case len(fields) == 3 && fields[1] == "community":
		e.MatchCommunityList = fields[2]
	case len(fields) == 5 && fields[1] == "ip" && fields[2] == "address" && fields[3] == "prefix-list":
		e.MatchPrefixList = fields[4]
	default:
		return fmt.Errorf("unknown match %v", fields[1:])
	}
	return nil
}

func parseSet(e *MapEntry, fields []string) error {
	switch {
	case len(fields) == 3 && fields[1] == "local-preference":
		v, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return fmt.Errorf("bad local-preference: %w", err)
		}
		lp := uint32(v)
		e.SetLocalPref = &lp
	case len(fields) == 3 && fields[1] == "metric":
		v, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return fmt.Errorf("bad metric: %w", err)
		}
		med := uint32(v)
		e.SetMED = &med
	case len(fields) >= 3 && fields[1] == "community":
		rest := fields[2:]
		if rest[len(rest)-1] == "additive" {
			rest = rest[:len(rest)-1]
		}
		for _, s := range rest {
			c, err := bgp.ParseCommunity(s)
			if err != nil {
				return err
			}
			e.AddCommunities = append(e.AddCommunities, c)
		}
	default:
		return fmt.Errorf("unknown set %v", fields[1:])
	}
	return nil
}
