package policy

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/core/stemming"
	"rex/internal/event"
)

// berkeleyConfig is the paper's §III-D.1 example: router 128.32.1.3
// assigns LOCAL_PREF 80 to ISP routes tagged 11423:65350 from CalREN.
const berkeleyConfig = `
hostname edge3
router bgp 25
 bgp router-id 128.32.1.3
 neighbor 128.32.0.66 remote-as 11423
 neighbor 128.32.0.66 route-map CALREN-IN in
 neighbor 128.32.0.66 maximum-prefix 15000
!
ip prefix-list COMMODITY seq 5 permit 0.0.0.0/1 le 32
ip prefix-list COMMODITY seq 10 permit 128.0.0.0/1 le 32
ip community-list standard ISP-ROUTES permit 11423:65350
ip community-list standard I2-ROUTES permit 11423:65300
!
route-map CALREN-IN permit 10
 match community ISP-ROUTES
 set local-preference 80
route-map CALREN-IN deny 20
 match community I2-ROUTES
route-map CALREN-IN permit 30
 match ip address prefix-list COMMODITY
 set local-preference 70
 set community 25:100 additive
`

func parseTestConfig(t *testing.T, text string) *Config {
	t.Helper()
	cfg, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func ispAttrs(comms ...bgp.Community) *bgp.PathAttrs {
	return &bgp.PathAttrs{
		Origin:      bgp.OriginIGP,
		ASPath:      bgp.Sequence(11423, 209),
		Nexthop:     netip.MustParseAddr("128.32.0.66"),
		Communities: comms,
	}
}

func TestParseBasics(t *testing.T) {
	cfg := parseTestConfig(t, berkeleyConfig)
	if cfg.Hostname != "edge3" || cfg.LocalAS != 25 {
		t.Errorf("hostname=%q as=%d", cfg.Hostname, cfg.LocalAS)
	}
	if cfg.RouterID != netip.MustParseAddr("128.32.1.3") {
		t.Errorf("router-id = %v", cfg.RouterID)
	}
	n := cfg.Neighbors[netip.MustParseAddr("128.32.0.66")]
	if n == nil {
		t.Fatal("neighbor missing")
	}
	if n.RemoteAS != 11423 || n.RouteMapIn != "CALREN-IN" || n.MaxPrefix != 15000 {
		t.Errorf("neighbor = %+v", n)
	}
	if len(cfg.PrefixLists["COMMODITY"].Rules) != 2 {
		t.Error("prefix list rules")
	}
	if len(cfg.RouteMaps["CALREN-IN"].Entries) != 3 {
		t.Error("route map entries")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus statement here",
		"router bgp notanumber",
		"route-map X allow 10",
		"route-map X permit ten",
		"ip prefix-list L seq 5 permit nope",
		"ip prefix-list L seq x permit 0.0.0.0/0",
		"ip community-list standard L deny 1:2",
		"ip community-list standard L permit 1:x",
		"router bgp 25\n neighbor nope remote-as 1",
		"router bgp 25\n neighbor 10.0.0.1 remote-as x",
		"router bgp 25\n neighbor 10.0.0.1 route-map X sideways",
		"router bgp 25\n neighbor 10.0.0.1 maximum-prefix -5",
		"router bgp 25\n bgp router-id nope",
		"route-map X permit 10\n match nonsense Y",
		"route-map X permit 10\n set nonsense 5",
		"route-map X permit 10\n set local-preference x",
		"ip prefix-list L seq 5 permit 0.0.0.0/0 ge 40",
		"ip prefix-list L seq 5 permit 0.0.0.0/0 dangling",
	}
	for _, text := range bad {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("Parse(%q) succeeded", text)
		}
	}
}

func TestApplyCommunityMatch(t *testing.T) {
	cfg := parseTestConfig(t, berkeleyConfig)
	prefix := netip.MustParsePrefix("12.2.41.0/24")

	// ISP-tagged route gets local-pref 80.
	d := cfg.ApplyIn(netip.MustParseAddr("128.32.0.66"), prefix, ispAttrs(bgp.MakeCommunity(11423, 65350)))
	if !d.Permitted || d.MatchedSeq != 10 {
		t.Fatalf("decision = %+v", d)
	}
	if !d.Attrs.HasLocalPref || d.Attrs.LocalPref != 80 {
		t.Errorf("local-pref = %+v", d.Attrs)
	}

	// I2-tagged route is denied at seq 20.
	d = cfg.ApplyIn(netip.MustParseAddr("128.32.0.66"), prefix, ispAttrs(bgp.MakeCommunity(11423, 65300)))
	if d.Permitted || d.MatchedSeq != 20 {
		t.Errorf("decision = %+v", d)
	}

	// Untagged commodity route falls to seq 30: LP 70 plus a community.
	d = cfg.ApplyIn(netip.MustParseAddr("128.32.0.66"), prefix, ispAttrs())
	if !d.Permitted || d.MatchedSeq != 30 || d.Attrs.LocalPref != 70 {
		t.Fatalf("decision = %+v", d)
	}
	if !d.Attrs.HasCommunity(bgp.MakeCommunity(25, 100)) {
		t.Error("set community missing")
	}
	// Set actions clone: the input attrs are untouched.
	orig := ispAttrs()
	cfg.ApplyIn(netip.MustParseAddr("128.32.0.66"), prefix, orig)
	if orig.HasLocalPref || len(orig.Communities) != 0 {
		t.Error("Apply modified input attrs")
	}
}

func TestApplyDefaults(t *testing.T) {
	cfg := parseTestConfig(t, berkeleyConfig)
	attrs := ispAttrs()
	// Unknown neighbor: permit unchanged.
	d := cfg.ApplyIn(netip.MustParseAddr("9.9.9.9"), netip.MustParsePrefix("10.0.0.0/8"), attrs)
	if !d.Permitted || d.Attrs != attrs {
		t.Errorf("unknown neighbor = %+v", d)
	}
	// Missing route-map reference: permit-all.
	d = cfg.Apply("NO-SUCH-MAP", netip.MustParsePrefix("10.0.0.0/8"), attrs)
	if !d.Permitted || d.MatchedSeq != -1 {
		t.Errorf("missing map = %+v", d)
	}
	// Outbound with no map configured: permit.
	d = cfg.ApplyOut(netip.MustParseAddr("128.32.0.66"), netip.MustParsePrefix("10.0.0.0/8"), attrs)
	if !d.Permitted {
		t.Errorf("no out map = %+v", d)
	}
}

func TestImplicitDeny(t *testing.T) {
	text := `route-map STRICT permit 10
 match community NO-SUCH-LIST
`
	cfg := parseTestConfig(t, text)
	d := cfg.Apply("STRICT", netip.MustParsePrefix("10.0.0.0/8"), ispAttrs())
	if d.Permitted || d.MatchedSeq != -1 {
		t.Errorf("implicit deny = %+v", d)
	}
}

func TestPrefixRuleGeLe(t *testing.T) {
	rule := PrefixRule{Permit: true, Prefix: netip.MustParsePrefix("10.0.0.0/8"), Ge: 16, Le: 24}
	cases := map[string]bool{
		"10.1.0.0/16":   true,
		"10.1.1.0/24":   true,
		"10.0.0.0/8":    false, // shorter than ge
		"10.1.1.128/25": false, // longer than le
		"11.0.0.0/16":   false, // outside
	}
	for s, want := range cases {
		if got := rule.Matches(netip.MustParsePrefix(s)); got != want {
			t.Errorf("Matches(%s) = %v, want %v", s, got, want)
		}
	}
	// Exact match when no ge/le.
	exact := PrefixRule{Permit: true, Prefix: netip.MustParsePrefix("10.0.0.0/8")}
	if !exact.Matches(netip.MustParsePrefix("10.0.0.0/8")) || exact.Matches(netip.MustParsePrefix("10.1.0.0/16")) {
		t.Error("exact-length matching wrong")
	}
	// ge without le allows up to /32.
	geOnly := PrefixRule{Permit: true, Prefix: netip.MustParsePrefix("10.0.0.0/8"), Ge: 24}
	if !geOnly.Matches(netip.MustParsePrefix("10.1.1.1/32")) || geOnly.Matches(netip.MustParsePrefix("10.1.0.0/16")) {
		t.Error("ge-only matching wrong")
	}
}

func TestPrefixListFirstMatchWins(t *testing.T) {
	text := `ip prefix-list L seq 10 deny 10.1.0.0/16
ip prefix-list L seq 20 permit 10.0.0.0/8 le 32
`
	cfg := parseTestConfig(t, text)
	pl := cfg.PrefixLists["L"]
	if pl.Permits(netip.MustParsePrefix("10.1.0.0/16")) {
		t.Error("deny rule skipped")
	}
	if !pl.Permits(netip.MustParsePrefix("10.2.0.0/16")) {
		t.Error("permit rule skipped")
	}
	if pl.Permits(netip.MustParsePrefix("11.0.0.0/8")) {
		t.Error("default deny skipped")
	}
}

func TestMaxPrefix(t *testing.T) {
	cfg := parseTestConfig(t, berkeleyConfig)
	nbr := netip.MustParseAddr("128.32.0.66")
	if cfg.ExceedsMaxPrefix(nbr, 15000) {
		t.Error("at-limit trips")
	}
	if !cfg.ExceedsMaxPrefix(nbr, 15001) {
		t.Error("over-limit does not trip")
	}
	if cfg.ExceedsMaxPrefix(netip.MustParseAddr("9.9.9.9"), 1<<20) {
		t.Error("unknown neighbor trips")
	}
}

func TestCommunityPolicies(t *testing.T) {
	cfg := parseTestConfig(t, berkeleyConfig)
	cps := cfg.CommunityPolicies()
	if len(cps) != 2 {
		t.Fatalf("policies = %+v", cps)
	}
	// Sorted by community: 11423:65300 (deny) before 11423:65350 (LP 80).
	if cps[0].Community != bgp.MakeCommunity(11423, 65300) || cps[0].Permit {
		t.Errorf("first policy = %+v", cps[0])
	}
	if cps[1].Community != bgp.MakeCommunity(11423, 65350) || cps[1].LocalPref == nil || *cps[1].LocalPref != 80 {
		t.Errorf("second policy = %+v", cps[1])
	}
}

func TestCorrelate(t *testing.T) {
	cfg := parseTestConfig(t, berkeleyConfig)
	t0 := time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)
	mk := func(i int, comm bgp.Community) event.Event {
		return event.Event{
			Time: t0.Add(time.Duration(i) * time.Second), Type: event.Withdraw,
			Peer:   netip.MustParseAddr("128.32.1.3"),
			Prefix: netip.MustParsePrefix("12.2.41.0/24"),
			Attrs:  ispAttrs(comm),
		}
	}
	s := event.Stream{
		mk(0, bgp.MakeCommunity(11423, 65350)),
		mk(1, bgp.MakeCommunity(11423, 65350)),
		mk(2, bgp.MakeCommunity(11423, 65300)),
	}
	comp := &stemming.Component{EventIndexes: []int{0, 1, 2}}
	findings := Correlate(comp, s, []*Config{cfg})
	if len(findings) != 2 {
		t.Fatalf("findings = %+v", findings)
	}
	if findings[0].Events != 2 || findings[0].Policy.Community != bgp.MakeCommunity(11423, 65350) {
		t.Errorf("top finding = %+v", findings[0])
	}
	if !strings.Contains(findings[0].String(), "set local-preference 80") {
		t.Errorf("finding string = %q", findings[0].String())
	}
	if !strings.Contains(findings[1].String(), "(deny)") {
		t.Errorf("deny finding string = %q", findings[1].String())
	}
	// No communities: no findings.
	bare := event.Stream{mk(0, bgp.MakeCommunity(11423, 65350))}
	bare[0].Attrs = &bgp.PathAttrs{}
	if got := Correlate(&stemming.Component{EventIndexes: []int{0}}, bare, []*Config{cfg}); got != nil {
		t.Errorf("bare correlate = %+v", got)
	}
	// Out-of-range indexes are ignored.
	if got := Correlate(&stemming.Component{EventIndexes: []int{99}}, s, []*Config{cfg}); got != nil {
		t.Errorf("oob correlate = %+v", got)
	}
}
