package serve

import "rex/internal/obs"

// Serving-tier metrics. The load story an operator reads during an
// incident: rex_serve_shed_total rising means the admission gate is
// holding the line (readers get 429 + Retry-After instead of queueing),
// rex_serve_cache_hits_total dwarfing rex_serve_renders_total proves
// the single-flight cache is absorbing the reader fan-out, and
// rex_serve_degraded at 1 with rex_serve_stale_reads_total moving means
// the tier is answering from the last durable snapshot while the
// pipeline recovers.
var (
	mRequests = obs.NewCounterVec("rex_serve_requests_total", "route",
		"HTTP requests received, by route.")
	mShed = obs.NewCounter("rex_serve_shed_total",
		"Requests shed with 429 + Retry-After past the admission high-water mark.")
	mInFlight = obs.NewGauge("rex_serve_inflight_requests",
		"Admission-controlled requests currently in flight.")
	mLatency = obs.NewHistogram("rex_serve_request_seconds",
		"Admission-to-response latency of data requests.", nil)
	mRenders = obs.NewCounterVec("rex_serve_renders_total", "format",
		"Snapshot renders actually executed — cache misses; at most one per (snapshot, format).")
	mCacheHits = obs.NewCounterVec("rex_serve_cache_hits_total", "format",
		"Requests answered from the render cache without rendering.")
	mStaleReads = obs.NewCounter("rex_serve_stale_reads_total",
		"Degraded-mode reads: responses served from a stale snapshot instead of failing.")
	mNotModified = obs.NewCounter("rex_serve_not_modified_total",
		"Conditional requests answered 304 from the snapshot-version ETag.")
	mPublished = obs.NewCounter("rex_serve_published_total",
		"Snapshots accepted from the publisher.")
	mPublishDropped = obs.NewCounter("rex_serve_publish_dropped_total",
		"Snapshots dropped at the publish buffer (latest wins when the serve loop lags).")
	mSnapshotSeq = obs.NewGauge("rex_serve_snapshot_seq",
		"Version of the snapshot currently served (0 before the first publish).")
	mDegraded = obs.NewGauge("rex_serve_degraded",
		"1 while reads are served in degraded (stale) mode.")
	mSSEClients = obs.NewGauge("rex_serve_sse_clients",
		"Live SSE subscribers.")
	mSSEDropped = obs.NewCounter("rex_serve_sse_dropped_total",
		"SSE events dropped to slow subscribers (each run of drops ends in a resync event).")
	mSSEResyncs = obs.NewCounter("rex_serve_sse_resyncs_total",
		"Resync events sent to subscribers that missed snapshots.")
	mSSEEvicted = obs.NewCounter("rex_serve_sse_evicted_total",
		"SSE subscribers evicted for stalled or failed writes.")
	mSSERejected = obs.NewCounter("rex_serve_sse_rejected_total",
		"SSE subscriptions rejected at the client cap.")
	mPersistErrors = obs.NewCounter("rex_serve_persist_errors_total",
		"Failures writing the durable last-snapshot file.")
	mRestored = obs.NewCounter("rex_serve_restored_total",
		"Startups that restored a durable last-snapshot to serve while degraded.")

	// Time-travel (replay) lane. The story under a historical-query
	// swarm: rex_serve_replay_cache_hits_total dwarfing
	// rex_serve_replay_total proves the instant LRU + single-flight is
	// absorbing the fan-out (one replay per distinct instant), while
	// rex_serve_replay_shed_total rising means the dedicated replay
	// semaphore is protecting the live lane from replay cost.
	mReplays = obs.NewCounter("rex_serve_replay_total",
		"Historical replays actually executed — /api/at instant-cache misses.")
	mReplayCacheHits = obs.NewCounter("rex_serve_replay_cache_hits_total",
		"Time-travel requests answered from the replayed-instant cache without replaying.")
	mReplayShed = obs.NewCounter("rex_serve_replay_shed_total",
		"Time-travel requests shed with 429 + Retry-After at the replay lane's capacity.")
	mReplaySeconds = obs.NewHistogram("rex_serve_replay_seconds",
		"Wall-clock latency of executed replays (resolve + journal scan + pipeline).", nil)
	mReplayRecords = obs.NewCounter("rex_serve_replay_records_total",
		"Journal records fed through historical replays.")
	mReplayDegraded = obs.NewCounterVec("rex_serve_replay_degraded_total", "reason",
		"Degraded time-travel outcomes (416/422), by reason.")
	mReplayEvicted = obs.NewCounter("rex_serve_replay_evictions_total",
		"Replayed instants evicted from the LRU cache.")
	mReplayInFlight = obs.NewGauge("rex_serve_replay_inflight",
		"Replays currently executing in the dedicated lane.")
	mReplayRenders = obs.NewCounterVec("rex_serve_replay_renders_total", "format",
		"Historical renders actually executed; at most one per (instant, format).")
)
