// Package serve is the operator-facing serving tier: an HTTP/SSE API
// over the analysis pipeline that serves the latest TAMP picture
// (SVG/JSON/DOT), the Stemming components, per-prefix drill-downs, and
// a live snapshot stream. The paper's output is only useful if an
// operator can look at it while an anomaly is unfolding — which is
// exactly when both the pipeline and the reader fan-out are at their
// heaviest — so the tier is engineered to degrade instead of failing:
//
//   - A versioned single-flight render cache (renderCache) makes any
//     number of concurrent readers cost one render per snapshot version
//     per format.
//   - Admission control bounds in-flight data requests; past the
//     high-water mark requests are shed with 429 + Retry-After rather
//     than queueing without bound.
//   - SSE subscribers get bounded queues with drop-oldest + an explicit
//     resync event; a stalled reader is evicted on its next failed
//     write and can never backpressure the publish loop.
//   - Degraded mode: while the pipeline is recovering, replaying, or
//     wedged, reads are answered from the last durable snapshot with
//     explicit staleness metadata (X-Rex-Stale header + "stale" JSON
//     field) instead of blocking or 500ing; /healthz (liveness) and
//     /readyz (pipeline-caught-up) gate traffic.
//   - Graceful drain: Drain stops accepting, finishes in-flight
//     requests within the caller's deadline, and closes SSE streams
//     with a terminal "bye" event.
//
// The publisher side (Publish) never blocks: snapshots land in a small
// latest-wins buffer, so a synchronous snapshot source — the relay
// receiver's SnapshotSink, whose latency gates checkpointing — is
// decoupled from HTTP consumers by construction. See DESIGN.md §14.
package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/core/tamp"
	"rex/internal/obs"
)

// Config tunes the serving tier. The zero value is usable.
type Config struct {
	// StaleAfter marks the served snapshot stale once it is older than
	// this (wall clock since it was published to the tier). 0 disables
	// age-based staleness: only a restored-from-disk snapshot (or no
	// snapshot at all) degrades reads. Set it to a small multiple of
	// the snapshot cadence when the pipeline ticks on wall-paced event
	// time, so a wedged pipeline flips /readyz instead of silently
	// serving history.
	StaleAfter time.Duration
	// MaxInFlight is the admission high-water mark: data requests in
	// flight beyond it are shed with 429 + Retry-After (default 64).
	MaxInFlight int
	// MaxSSEClients caps live SSE subscribers (default 256).
	MaxSSEClients int
	// SSEQueue is each subscriber's bounded event queue (default 8);
	// overflow drops the oldest event and schedules a resync event.
	SSEQueue int
	// SSEHeartbeat paces comment-line keepalives on SSE streams so dead
	// clients are detected and evicted (default 10s).
	SSEHeartbeat time.Duration
	// WriteTimeout is the per-write deadline applied to every response
	// write, SSE frames included (default 10s). The http.Server's
	// WriteTimeout stays 0 on purpose — it would kill long-lived SSE
	// streams — so this is the slow-consumer bound.
	WriteTimeout time.Duration
	// RequestTimeout is the per-request deadline for data endpoints
	// (default 15s); a request that cannot render in time is released
	// with 503 rather than held.
	RequestTimeout time.Duration
	// PublishBuffer is the depth of the latest-wins publish buffer
	// (default 16).
	PublishBuffer int
	// Dir, when set, persists the latest snapshot view atomically to
	// Dir/serve-latest.json after each publish, and restores it at
	// startup: a freshly restarted process answers reads from the last
	// durable snapshot — marked stale — until the pipeline publishes a
	// live one. Safe to share with a journal directory (the journal
	// scanner ignores foreign file names).
	Dir string

	// HistoryDir enables the time-travel endpoints (/api/at...): the
	// segmented journal directory historical replays reconstruct state
	// from. Empty disables time travel (the endpoints answer 404).
	HistoryDir string
	// Replay is the pipeline configuration historical replays run with.
	// It must match the live pipeline's analysis parameters (window,
	// site, stemming, prune policy, shards) for a replayed instant to be
	// byte-identical with what the live pipeline emitted at that time.
	Replay pipeline.Config
	// MaxReplayInFlight bounds concurrently executing replays — the
	// dedicated admission lane for /api/at cache misses, deliberately
	// separate from (and much smaller than) MaxInFlight so historical
	// queries can never starve live reads (default 2).
	MaxReplayInFlight int
	// ReplayCacheSize bounds the LRU of recently replayed instants
	// (default 32).
	ReplayCacheSize int
	// MaxReplayWindow caps the window= query parameter on /api/at
	// (default 24h): a replay's cost scales with the window it must
	// reconstruct, so the cap is the operator's cost ceiling.
	MaxReplayWindow time.Duration

	// now is the clock, a test hook.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxSSEClients <= 0 {
		c.MaxSSEClients = 256
	}
	if c.SSEQueue <= 0 {
		c.SSEQueue = 8
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.PublishBuffer <= 0 {
		c.PublishBuffer = 16
	}
	if c.MaxReplayInFlight <= 0 {
		c.MaxReplayInFlight = 2
	}
	if c.ReplayCacheSize <= 0 {
		c.ReplayCacheSize = 32
	}
	if c.MaxReplayWindow <= 0 {
		c.MaxReplayWindow = 24 * time.Hour
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// update is one unit of publisher work.
type update struct {
	snap  pipeline.Snapshot
	feeds []FeedHealth
}

// published is the snapshot the tier currently serves.
type published struct {
	seq  uint64
	view SnapshotView // staleness-free; stamped per read
	pic  *tamp.Picture
	// recvAt is when the tier received it (wall clock) — the age base.
	recvAt time.Time
	// restored marks a snapshot loaded from the durable file at
	// startup: always served as stale until a live publish replaces it.
	restored bool
}

// Server is the serving tier. Create with New, feed with Publish, mount
// Handler (or let Serve bind a listener), and Drain on shutdown.
type Server struct {
	cfg    Config
	cache  *renderCache
	broker *broker
	sem    chan struct{}

	// Time-travel lane (nil hist when HistoryDir is unset): historical
	// replays run under their own semaphore, land in their own LRU, and
	// report their own measured latency for Retry-After.
	hist      *historian
	histCache *historyCache
	replaySem chan struct{}
	latLive   *latencyLane
	latReplay *latencyLane

	updates  chan update
	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}

	// drain is closed when Drain begins: /readyz flips 503 and SSE
	// writers send their terminal "bye" event and return.
	drain     chan struct{}
	drainOnce sync.Once

	mu  sync.RWMutex
	cur *published

	srv *http.Server
}

// New builds a server and, when cfg.Dir is set, restores the last
// durable snapshot so reads degrade instead of 503ing while the
// pipeline warms back up.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     newRenderCache(),
		broker:    newBroker(cfg.SSEQueue, cfg.MaxSSEClients),
		sem:       make(chan struct{}, cfg.MaxInFlight),
		histCache: newHistoryCache(cfg.ReplayCacheSize),
		replaySem: make(chan struct{}, cfg.MaxReplayInFlight),
		latLive:   newLatencyLane(cfg.now),
		latReplay: newLatencyLane(cfg.now),
		updates:   make(chan update, cfg.PublishBuffer),
		stop:      make(chan struct{}),
		loopDone:  make(chan struct{}),
		drain:     make(chan struct{}),
	}
	if cfg.HistoryDir != "" {
		s.hist = newHistorian(cfg.HistoryDir, cfg.Replay)
	}
	if cfg.Dir != "" {
		if p, err := loadLatest(cfg.Dir); err == nil && p != nil {
			s.cur = p
			s.cache.advance(p.seq)
			mRestored.Inc()
			mSnapshotSeq.Set(int64(p.seq))
			obs.Logf(obs.Info, "serve", "restored durable snapshot seq=%d at=%s; serving degraded until the pipeline catches up",
				p.seq, p.view.At.Format(time.RFC3339))
		} else if err != nil {
			obs.Logf(obs.Warn, "serve", "durable snapshot restore: %v", err)
		}
	}
	go s.loop()
	return s
}

// Publish hands the tier a new snapshot. It never blocks: when the
// serve loop lags, the oldest buffered snapshot is dropped (latest
// wins, counted in rex_serve_publish_dropped_total). Safe from any
// goroutine, including synchronous snapshot sinks on checkpoint-
// critical paths.
func (s *Server) Publish(snap pipeline.Snapshot, feeds []FeedHealth) {
	u := update{snap: snap, feeds: feeds}
	for {
		select {
		case <-s.stop:
			return
		case s.updates <- u:
			return
		default:
		}
		select {
		case <-s.updates:
			mPublishDropped.Inc()
		default:
		}
	}
}

func (s *Server) loop() {
	defer close(s.loopDone)
	for {
		select {
		case <-s.stop:
			return
		case u := <-s.updates:
			s.apply(u)
		}
	}
}

// apply installs one published snapshot: version it, swap it in, evict
// stale cache entries, persist it, and fan it out to SSE subscribers.
func (s *Server) apply(u update) {
	s.mu.Lock()
	seq := uint64(1)
	if s.cur != nil {
		seq = s.cur.seq + 1
	}
	p := &published{
		seq:    seq,
		view:   viewOf(seq, &u.snap, u.feeds),
		pic:    u.snap.Picture,
		recvAt: s.cfg.now(),
	}
	if p.pic == nil {
		p.pic = &tamp.Picture{Site: "unknown"}
	}
	s.cur = p
	s.mu.Unlock()
	mPublished.Inc()
	mSnapshotSeq.Set(int64(seq))
	s.cache.advance(seq)
	if s.cfg.Dir != "" {
		if err := storeLatest(s.cfg.Dir, &p.view); err != nil {
			mPersistErrors.Inc()
			obs.Logf(obs.Warn, "serve", "persist latest snapshot: %v", err)
		}
	}
	s.broker.broadcast(sseMsg{event: "snapshot", data: summaryJSON(p, false, "")})
}

// summary is the compact SSE payload: enough for a dashboard to update
// its headline and decide whether to re-fetch the full snapshot.
type summary struct {
	Seq         uint64     `json:"seq"`
	At          time.Time  `json:"at"`
	Trigger     string     `json:"trigger"`
	Events      int        `json:"events"`
	Components  int        `json:"components"`
	Spike       *SpikeView `json:"spike,omitempty"`
	Stale       bool       `json:"stale"`
	StaleReason string     `json:"staleReason,omitempty"`
}

func summaryJSON(p *published, stale bool, reason string) []byte {
	b, _ := json.Marshal(summary{
		Seq: p.seq, At: p.view.At, Trigger: p.view.Trigger,
		Events: p.view.Events, Components: len(p.view.Components),
		Spike: p.view.Spike, Stale: stale, StaleReason: reason,
	})
	return b
}

// healthState is the per-read degraded-mode decision.
type healthState struct {
	stale    bool
	reason   string // non-empty iff stale
	draining bool
}

// health snapshots the current serving state. Reads are degraded (but
// still answered) while the snapshot is restored-from-disk or too old;
// they are refused (503) only when there is nothing to serve at all.
func (s *Server) health(now time.Time) (*published, healthState) {
	s.mu.RLock()
	cur := s.cur
	s.mu.RUnlock()
	var h healthState
	select {
	case <-s.drain:
		h.draining = true
	default:
	}
	switch {
	case cur == nil:
		h.stale, h.reason = true, "no-snapshot"
	case cur.restored:
		h.stale, h.reason = true, "restored"
	case s.cfg.StaleAfter > 0 && now.Sub(cur.recvAt) > s.cfg.StaleAfter:
		h.stale, h.reason = true, "stale"
	}
	if h.stale {
		mDegraded.Set(1)
	} else {
		mDegraded.Set(0)
	}
	return cur, h
}

// Ready reports whether the tier would answer /readyz with 200: a live,
// fresh snapshot and not draining.
func (s *Server) Ready() bool {
	_, h := s.health(s.cfg.now())
	return !h.stale && !h.draining
}

// Serve binds addr and serves Handler on it until Drain (or Close). It
// returns once the listener is bound so the caller can report the
// address (addr may end in :0). Header-read, full-read and idle
// timeouts are set on the http.Server; the write path is bounded
// per-write instead (see Config.WriteTimeout).
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.srv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go s.srv.Serve(ln)
	return ln.Addr(), nil
}

// Drain is the graceful shutdown: stop accepting new connections, flip
// /readyz to 503, close every SSE stream with a terminal "bye" event,
// and wait for in-flight requests to finish — until ctx expires, at
// which point remaining connections are closed hard. Call it BEFORE
// tearing down the pipeline, so draining readers still see a final
// snapshot instead of a connection reset. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.drain) })
	var err error
	if s.srv != nil {
		err = s.srv.Shutdown(ctx)
		if err != nil {
			s.srv.Close()
		}
	}
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.loopDone
	return err
}

// Close is Drain with a short internal deadline, for tests and error
// paths.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

// Seq returns the currently served snapshot version (0 = none).
func (s *Server) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.cur == nil {
		return 0
	}
	return s.cur.seq
}

// latestView returns a copy of the current view with staleness stamped,
// the body /api/snapshot renders.
func (p *published) stampedView(h healthState) SnapshotView {
	v := p.view
	v.Stale = h.stale
	v.StaleReason = h.reason
	return v
}
