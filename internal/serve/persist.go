package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rex/internal/viz"
)

// latestFile is the durable last-snapshot file inside Config.Dir. The
// name is deliberately outside the journal/checkpoint namespaces
// (journal-*.rexj, checkpoint-*.rexc) so the file can live in the
// journal directory without the recovery scanner ever touching it.
const latestFile = "serve-latest.json"

// storeLatest atomically replaces Dir/serve-latest.json with the given
// view (tmp + rename, same-directory so the rename cannot cross
// filesystems). No fsync: this is a freshness optimization for restart
// recovery, not a correctness journal — losing the very last snapshot
// on power failure just means one more 503 before the pipeline
// republishes.
func storeLatest(dir string, v *SnapshotView) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("marshal snapshot view: %w", err)
	}
	tmp, err := os.CreateTemp(dir, latestFile+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, latestFile))
}

// loadLatest restores the durable last snapshot, rebuilding the TAMP
// picture from its JSON export so SVG/DOT renders work on the restored
// state too. Returns (nil, nil) when no file exists. The restored entry
// keeps its persisted seq, so versions stay monotonic across restarts
// and a client's cached ETag from the previous life stays coherent.
func loadLatest(dir string) (*published, error) {
	b, err := os.ReadFile(filepath.Join(dir, latestFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var v SnapshotView
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("parse %s: %w", latestFile, err)
	}
	if v.Seq == 0 {
		v.Seq = 1
	}
	// The stored view is staleness-free by construction, but scrub the
	// fields anyway in case the file was hand-edited: staleness is
	// always stamped at read time.
	v.Stale, v.StaleReason = false, ""
	return &published{
		seq:      v.Seq,
		view:     v,
		pic:      viz.PictureFromJSON(v.Picture),
		restored: true,
	}, nil
}
