package serve

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// sseMsg is one pre-rendered server-sent event: the event name and the
// single-line JSON data payload.
type sseMsg struct {
	event string
	data  []byte
}

// sseClient is one subscriber's bounded queue. The broadcaster never
// blocks on it: when the queue is full the oldest event is dropped and
// the client is marked for resync, so one stalled reader can never
// backpressure the publish loop (and transitively the pipeline).
type sseClient struct {
	ch chan sseMsg
	// resync is set when events were dropped; the writer loop turns the
	// next delivered event into an explicit "resync" event so the
	// client knows its view has a gap and should re-fetch
	// /api/snapshot. Guarded by the broker mutex.
	resync bool
}

// broker fans published events out to SSE subscribers.
type broker struct {
	mu      sync.Mutex
	clients map[*sseClient]struct{}
	queue   int // per-client channel depth
	max     int // subscriber cap
}

func newBroker(queue, max int) *broker {
	return &broker{clients: make(map[*sseClient]struct{}), queue: queue, max: max}
}

// add registers a subscriber; ok is false at the client cap.
func (b *broker) add() (*sseClient, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.clients) >= b.max {
		return nil, false
	}
	c := &sseClient{ch: make(chan sseMsg, b.queue)}
	b.clients[c] = struct{}{}
	mSSEClients.Set(int64(len(b.clients)))
	return c, true
}

func (b *broker) remove(c *sseClient) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.clients, c)
	mSSEClients.Set(int64(len(b.clients)))
}

// count returns the live subscriber count.
func (b *broker) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}

// broadcast enqueues m for every subscriber without ever blocking:
// drop-oldest on a full queue, then push. The broker mutex serializes
// broadcasts, so the two-step drain-then-send cannot livelock.
func (b *broker) broadcast(m sseMsg) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for c := range b.clients {
		select {
		case c.ch <- m:
			continue
		default:
		}
		// Full: evict the oldest queued event to make room. Only the
		// broadcaster (serialized by b.mu) sends on c.ch, so after one
		// drain the send cannot fail — but guard anyway.
		select {
		case <-c.ch:
			mSSEDropped.Inc()
			c.resync = true
		default:
		}
		select {
		case c.ch <- m:
		default:
			mSSEDropped.Inc()
			c.resync = true
		}
	}
}

// nextEvent pops the resync mark for c, renaming the event if the
// client missed anything since the last delivery.
func (b *broker) nextEvent(c *sseClient, m sseMsg) sseMsg {
	b.mu.Lock()
	missed := c.resync
	c.resync = false
	b.mu.Unlock()
	if missed {
		mSSEResyncs.Inc()
		m.event = "resync"
	}
	return m
}

// writeSSE writes one event frame and flushes it, under a per-write
// deadline so a stalled consumer turns into a write error (and an
// eviction) instead of a wedged goroutine.
func writeSSE(w http.ResponseWriter, rc *http.ResponseController, deadline time.Duration, m sseMsg) error {
	if err := rc.SetWriteDeadline(time.Now().Add(deadline)); err != nil && err != http.ErrNotSupported {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", m.event, m.data); err != nil {
		return err
	}
	return rc.Flush()
}

// writeSSEComment writes a heartbeat comment line under the same
// deadline discipline.
func writeSSEComment(w http.ResponseWriter, rc *http.ResponseController, deadline time.Duration) error {
	if err := rc.SetWriteDeadline(time.Now().Add(deadline)); err != nil && err != http.ErrNotSupported {
		return err
	}
	if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
		return err
	}
	return rc.Flush()
}
