package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/core/stemming"
	"rex/internal/core/tamp"
)

func testPic() *tamp.Picture {
	g := tamp.New("berkeley")
	add := func(router, nexthop, prefix string, asns ...uint32) {
		g.AddRoute(tamp.RouteEntry{
			Router:  router,
			Nexthop: netip.MustParseAddr(nexthop),
			ASPath:  asns,
			Prefix:  netip.MustParsePrefix(prefix),
		})
	}
	for i := 0; i < 8; i++ {
		add("128.32.1.3", "128.32.0.66", fmt.Sprintf("20.%d.0.0/16", i), 11423, 209)
	}
	add("128.32.1.200", "128.32.0.90", "30.0.0.0/16", 11423, 11537)
	return g.Snapshot(tamp.PruneOptions{KeepDepth: 3})
}

func testSnap(events int) pipeline.Snapshot {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return pipeline.Snapshot{
		At:          t0,
		Trigger:     pipeline.TriggerTick,
		WindowStart: t0.Add(-time.Minute),
		WindowEnd:   t0,
		Events:      events,
		Components: []stemming.Component{{
			Stem: stemming.Stem{
				From: stemming.Token{Kind: stemming.KindAS, AS: 11423},
				To:   stemming.Token{Kind: stemming.KindPrefix, Prefix: netip.MustParsePrefix("20.1.0.0/16")},
			},
			Subsequence: []stemming.Token{
				{Kind: stemming.KindAS, AS: 11423},
				{Kind: stemming.KindPrefix, Prefix: netip.MustParsePrefix("20.1.0.0/16")},
			},
			Score: 12.5, Count: 7,
			Prefixes:     []netip.Prefix{netip.MustParsePrefix("20.1.0.0/16")},
			EventIndexes: []int{0, 1, 2},
			First:        t0.Add(-30 * time.Second), Last: t0,
		}},
		Picture: testPic(),
	}
}

func waitSeq(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Seq() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for snapshot seq %d (at %d)", want, s.Seq())
}

// clock is a test clock for StaleAfter scenarios.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)} }
func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, body
}

func TestServeBeforeFirstSnapshot(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != 503 || !strings.Contains(string(body), "no-snapshot") {
		t.Fatalf("readyz = %d %q, want 503 no-snapshot", resp.StatusCode, body)
	}
	resp, _ = get(t, ts.URL+"/api/snapshot")
	if resp.StatusCode != 503 {
		t.Fatalf("snapshot with nothing to serve = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

func TestServeEndpoints(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.Publish(testSnap(42), []FeedHealth{{ID: "feed-a", Connected: true}})
	waitSeq(t, s, 1)

	resp, body := get(t, ts.URL+"/api/snapshot")
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rex-Stale"); got != "false" {
		t.Errorf("X-Rex-Stale = %q, want false", got)
	}
	if got := resp.Header.Get("X-Rex-Snapshot-Seq"); got != "1" {
		t.Errorf("X-Rex-Snapshot-Seq = %q, want 1", got)
	}
	var v SnapshotView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("snapshot body: %v", err)
	}
	if v.Seq != 1 || v.Events != 42 || v.Stale || len(v.Components) != 1 || len(v.Feeds) != 1 {
		t.Errorf("snapshot view wrong: %+v", v)
	}

	resp, body = get(t, ts.URL+"/api/picture.svg")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "<svg") {
		t.Errorf("picture.svg = %d, want SVG", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("svg content-type = %q", ct)
	}
	resp, body = get(t, ts.URL+"/api/picture.dot")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "digraph") {
		t.Errorf("picture.dot = %d, want DOT", resp.StatusCode)
	}
	resp, body = get(t, ts.URL+"/api/picture.json")
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"berkeley"`) {
		t.Errorf("picture.json = %d, want graph JSON", resp.StatusCode)
	}
	resp, body = get(t, ts.URL+"/api/components")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "AS11423") {
		t.Errorf("components = %d: %s", resp.StatusCode, body)
	}
	resp, _ = get(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 {
		t.Errorf("readyz after publish = %d, want 200", resp.StatusCode)
	}
	resp, body = get(t, ts.URL+"/")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "/api/snapshot") {
		t.Errorf("index = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/api/nope")
	if resp.StatusCode != 404 {
		t.Errorf("unknown path = %d, want 404", resp.StatusCode)
	}
}

func TestConditionalRequests(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Publish(testSnap(1), nil)
	waitSeq(t, s, 1)

	resp, _ := get(t, ts.URL+"/api/picture.svg")
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on picture.svg")
	}
	req, _ := http.NewRequest("GET", ts.URL+"/api/picture.svg", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %d, want 304", resp2.StatusCode)
	}

	// A new snapshot version changes the ETag.
	s.Publish(testSnap(2), nil)
	waitSeq(t, s, 2)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 200 {
		t.Fatalf("conditional GET after publish = %d, want 200", resp3.StatusCode)
	}
}

// TestSingleFlightRenders is the cache guarantee: any number of
// concurrent readers of one snapshot version cost exactly one render
// per format.
func TestSingleFlightRenders(t *testing.T) {
	s := New(Config{MaxInFlight: 1024})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Publish(testSnap(1), nil)
	waitSeq(t, s, 1)

	renders0 := mRenders.With("svg").Value()
	hits0 := mCacheHits.With("svg").Value()

	const readers = 64
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/api/picture.svg")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if d := mRenders.With("svg").Value() - renders0; d != 1 {
		t.Errorf("renders for one snapshot version = %d, want 1", d)
	}
	if d := mCacheHits.With("svg").Value() - hits0; d != readers-1 {
		t.Errorf("cache hits = %d, want %d", d, readers-1)
	}
}

func TestAdmissionShedding(t *testing.T) {
	s := New(Config{MaxInFlight: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Publish(testSnap(1), nil)
	waitSeq(t, s, 1)

	// Occupy every admission slot, then request: must shed, not queue.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp, body := get(t, ts.URL+"/api/snapshot")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over capacity = %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("429 Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}
	// healthz is exempt from admission: liveness answers under load.
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Errorf("healthz under load = %d, want 200", resp.StatusCode)
	}
	<-s.sem
	<-s.sem
	resp, _ = get(t, ts.URL+"/api/snapshot")
	if resp.StatusCode != 200 {
		t.Errorf("after release = %d, want 200", resp.StatusCode)
	}
}

// TestDegradedRestore is the crash-recovery story: a restarted server
// answers reads from the durable last snapshot, explicitly stale, until
// a live publish arrives — and the version numbering survives the
// restart.
func TestDegradedRestore(t *testing.T) {
	dir := t.TempDir()
	a := New(Config{Dir: dir})
	a.Publish(testSnap(7), nil)
	waitSeq(t, a, 1)
	a.Publish(testSnap(8), nil)
	waitSeq(t, a, 2)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b := New(Config{Dir: dir})
	defer b.Close()
	ts := httptest.NewServer(b.Handler())
	defer ts.Close()

	resp, body := get(t, ts.URL+"/api/snapshot")
	if resp.StatusCode != 200 {
		t.Fatalf("restored read = %d, want 200 (degraded beats down)", resp.StatusCode)
	}
	if resp.Header.Get("X-Rex-Stale") != "true" || resp.Header.Get("X-Rex-Stale-Reason") != "restored" {
		t.Errorf("restored read headers: stale=%q reason=%q",
			resp.Header.Get("X-Rex-Stale"), resp.Header.Get("X-Rex-Stale-Reason"))
	}
	var v SnapshotView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Stale || v.StaleReason != "restored" || v.Seq != 2 || v.Events != 8 {
		t.Errorf("restored view: %+v", v)
	}
	// Picture renders work on the restored snapshot too.
	resp, body = get(t, ts.URL+"/api/picture.svg")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "<svg") {
		t.Errorf("restored picture.svg = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/readyz")
	if resp.StatusCode != 503 {
		t.Errorf("readyz while restored = %d, want 503", resp.StatusCode)
	}

	// A live publish clears degraded mode and keeps versions monotonic.
	b.Publish(testSnap(9), nil)
	waitSeq(t, b, 3)
	resp, _ = get(t, ts.URL+"/api/snapshot")
	if resp.Header.Get("X-Rex-Stale") != "false" || resp.Header.Get("X-Rex-Snapshot-Seq") != "3" {
		t.Errorf("post-recovery read: stale=%q seq=%q",
			resp.Header.Get("X-Rex-Stale"), resp.Header.Get("X-Rex-Snapshot-Seq"))
	}
	resp, _ = get(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 {
		t.Errorf("readyz after recovery = %d, want 200", resp.StatusCode)
	}
}

func TestStaleAfter(t *testing.T) {
	ck := newClock()
	s := New(Config{StaleAfter: 10 * time.Second, now: ck.now})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Publish(testSnap(1), nil)
	waitSeq(t, s, 1)

	resp, _ := get(t, ts.URL+"/api/snapshot")
	if resp.Header.Get("X-Rex-Stale") != "false" {
		t.Fatalf("fresh read marked stale")
	}
	ck.advance(11 * time.Second)
	resp, body := get(t, ts.URL+"/api/snapshot")
	if resp.StatusCode != 200 {
		t.Fatalf("stale read = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Rex-Stale") != "true" || resp.Header.Get("X-Rex-Stale-Reason") != "stale" {
		t.Errorf("stale read headers: %q %q", resp.Header.Get("X-Rex-Stale"), resp.Header.Get("X-Rex-Stale-Reason"))
	}
	var v SnapshotView
	json.Unmarshal(body, &v)
	if !v.Stale || v.StaleReason != "stale" {
		t.Errorf("stale body: stale=%t reason=%q", v.Stale, v.StaleReason)
	}
	resp, _ = get(t, ts.URL+"/readyz")
	if resp.StatusCode != 503 {
		t.Errorf("readyz while stale = %d, want 503", resp.StatusCode)
	}
	// A fresh publish un-degrades.
	s.Publish(testSnap(2), nil)
	waitSeq(t, s, 2)
	resp, _ = get(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 {
		t.Errorf("readyz after fresh publish = %d, want 200", resp.StatusCode)
	}
}

func TestPrefixDrilldown(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Publish(testSnap(1), nil)
	waitSeq(t, s, 1)

	resp, body := get(t, ts.URL+"/api/prefix/20.1.0.0/16")
	if resp.StatusCode != 200 {
		t.Fatalf("prefix = %d: %s", resp.StatusCode, body)
	}
	var pv PrefixView
	if err := json.Unmarshal(body, &pv); err != nil {
		t.Fatal(err)
	}
	if pv.Prefix != "20.1.0.0/16" || len(pv.Components) != 1 {
		t.Errorf("prefix view: %+v", pv)
	}
	resp, body = get(t, ts.URL+"/api/prefix/99.0.0.0/8")
	var empty PrefixView
	json.Unmarshal(body, &empty)
	if resp.StatusCode != 200 || len(empty.Components) != 0 {
		t.Errorf("unmatched prefix = %d with %d components, want 200 empty", resp.StatusCode, len(empty.Components))
	}
	resp, _ = get(t, ts.URL+"/api/prefix/not-a-prefix")
	if resp.StatusCode != 400 {
		t.Errorf("bad prefix = %d, want 400", resp.StatusCode)
	}
}

// sseRead reads one SSE frame (event name, data line) from the stream.
func sseRead(t *testing.T, br *bufio.Reader) (string, string) {
	t.Helper()
	var event, data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			return event, data
		}
	}
}

func TestSSEStream(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Publish(testSnap(5), nil)
	waitSeq(t, s, 1)

	resp, err := http.Get(ts.URL + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	event, data := sseRead(t, br)
	if event != "hello" || !strings.Contains(data, `"seq":1`) {
		t.Fatalf("first frame = %s %s, want hello seq 1", event, data)
	}

	s.Publish(testSnap(6), nil)
	event, data = sseRead(t, br)
	if event != "snapshot" || !strings.Contains(data, `"seq":2`) {
		t.Fatalf("second frame = %s %s, want snapshot seq 2", event, data)
	}

	// Drain closes the stream with a terminal bye.
	done := make(chan struct{})
	go func() {
		defer close(done)
		event, data = sseRead(t, br)
	}()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("no bye frame after drain")
	}
	if event != "bye" || !strings.Contains(data, "drain") {
		t.Errorf("terminal frame = %s %s, want bye drain", event, data)
	}
}

func TestSSEClientCap(t *testing.T) {
	s := New(Config{MaxSSEClients: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp1, err := http.Get(ts.URL + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	br := bufio.NewReader(resp1.Body)
	sseRead(t, br) // hello: subscription is live

	resp2, _ := get(t, ts.URL+"/api/stream")
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over SSE cap = %d, want 429", resp2.StatusCode)
	}
}

// TestBrokerDropOldestResync exercises the slow-consumer policy at the
// unit level: a full queue drops the oldest event and the next
// delivered event is renamed resync.
func TestBrokerDropOldestResync(t *testing.T) {
	b := newBroker(2, 4)
	c, ok := b.add()
	if !ok {
		t.Fatal("add failed")
	}
	defer b.remove(c)
	for i := 0; i < 5; i++ {
		b.broadcast(sseMsg{event: "snapshot", data: []byte(fmt.Sprintf(`{"seq":%d}`, i+1))})
	}
	if len(c.ch) != 2 {
		t.Fatalf("queue depth = %d, want 2 (bounded)", len(c.ch))
	}
	// Oldest were dropped: first delivered is seq 4, renamed resync.
	m := b.nextEvent(c, <-c.ch)
	if m.event != "resync" || !strings.Contains(string(m.data), `"seq":4`) {
		t.Errorf("first delivered = %s %s, want resync seq 4", m.event, m.data)
	}
	// Resync mark is one-shot.
	m = b.nextEvent(c, <-c.ch)
	if m.event != "snapshot" || !strings.Contains(string(m.data), `"seq":5`) {
		t.Errorf("second delivered = %s %s, want snapshot seq 5", m.event, m.data)
	}
}

// TestPublishNeverBlocks pins the decoupling contract: with the serve
// loop wedged, Publish still returns immediately, dropping oldest.
func TestPublishNeverBlocks(t *testing.T) {
	s := &Server{
		cfg:      Config{}.withDefaults(),
		updates:  make(chan update, 2),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
		drain:    make(chan struct{}),
	}
	close(s.loopDone) // no loop running: worst case
	dropped0 := mPublishDropped.Value()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s.Publish(testSnap(i), nil)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a wedged serve loop")
	}
	if d := mPublishDropped.Value() - dropped0; d != 98 {
		t.Errorf("dropped = %d, want 98 (buffer 2, latest wins)", d)
	}
}

func TestRenderCachePanicRecovery(t *testing.T) {
	c := newRenderCache()
	c.advance(1)
	_, _, err := c.get(nil, renderKey{seq: 1, format: "svg"}, func() ([]byte, string, error) {
		panic("render exploded")
	})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panicking render: err = %v, want panic error", err)
	}
	// The entry is poisoned for this version but a new version renders.
	c.advance(2)
	data, _, err := c.get(nil, renderKey{seq: 2, format: "svg"}, func() ([]byte, string, error) {
		return []byte("ok"), "text/plain", nil
	})
	if err != nil || string(data) != "ok" {
		t.Fatalf("after advance: %q %v", data, err)
	}
}

func TestCacheAdvanceEvicts(t *testing.T) {
	c := newRenderCache()
	c.advance(1)
	c.get(nil, renderKey{seq: 1, format: "svg"}, func() ([]byte, string, error) {
		return []byte("v1"), "t", nil
	})
	c.advance(2)
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("entries after advance = %d, want 0", n)
	}
}

// FuzzServePath throws arbitrary URL paths at the mux: no panic, no
// 500-class status other than the deliberate degraded 503.
func FuzzServePath(f *testing.F) {
	for _, seed := range []string{
		"/", "/api/snapshot", "/api/picture.svg", "/api/picture.dot",
		"/api/picture.json", "/api/components", "/api/prefix/1.2.3.0/24",
		"/api/prefix/", "/api/prefix/::%2f0", "/healthz", "/readyz",
		"/api/prefix/999.999.999.999/99", "/api/../etc/passwd", "//api//snapshot",
		"/api/prefix/20.1.0.0/16?x=1", "/api/snapshot#frag", "/%00", "/api/stream/extra",
		"/api/at", "/api/at?t=2003-08-14T20:00:00Z", "/api/at?t=-1&window=junk",
		"/api/at/components?t=1060891200", "/api/at/picture.svg?t=junk",
		"/api/at/picture.dot?t=", "/api/at/picture.json?t=9999999999999999999",
	} {
		f.Add(seed)
	}
	s := New(Config{})
	defer s.Close()
	s.Publish(testSnap(1), nil)
	deadline := time.Now().Add(5 * time.Second)
	for s.Seq() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h := s.Handler()
	f.Fuzz(func(t *testing.T, path string) {
		req, err := http.NewRequest("GET", path, nil)
		if err != nil {
			t.Skip()
		}
		if req.URL.Host != "" || !strings.HasPrefix(path, "/") {
			t.Skip() // absolute-form URLs are not what the mux sees
		}
		if path == "/api/stream" || strings.HasPrefix(path, "/api/stream?") {
			t.Skip() // SSE blocks until drain; covered by TestSSEStream
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 && rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %q = %d", path, rec.Code)
		}
	})
}
