package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"rex/internal/viz"
)

// Handler returns the serving-tier mux. Data endpoints sit behind the
// admission gate; /healthz, /readyz and /api/stream do not (liveness
// must answer under load, and SSE has its own subscriber cap).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/api/snapshot", s.admit("snapshot", s.handleSnapshot))
	mux.Handle("/api/components", s.admit("components", s.handleComponents))
	mux.Handle("/api/picture.svg", s.admit("picture.svg", s.handlePicture("svg")))
	mux.Handle("/api/picture.dot", s.admit("picture.dot", s.handlePicture("dot")))
	mux.Handle("/api/picture.json", s.admit("picture.json", s.handlePicture("json")))
	mux.Handle("/api/prefix/", s.admit("prefix", s.handlePrefix))
	mux.HandleFunc("/api/stream", s.handleStream)
	// Time-travel endpoints: own admission lane (the replay semaphore,
	// not MaxInFlight), and independent of the live snapshot — they
	// answer from the journal even before the first publish.
	mux.Handle("/api/at", s.atHandler("at", "json"))
	mux.Handle("/api/at/components", s.atHandler("at.components", "components"))
	mux.Handle("/api/at/picture.svg", s.atHandler("at.picture.svg", "svg"))
	mux.Handle("/api/at/picture.dot", s.atHandler("at.picture.dot", "dot"))
	mux.Handle("/api/at/picture.json", s.atHandler("at.picture.json", "pjson"))
	return mux
}

// dataHandler is an endpoint that serves the current snapshot; admit
// resolves admission, deadline and degraded-mode state before calling
// it.
type dataHandler func(w http.ResponseWriter, r *http.Request, cur *published, h healthState)

// admit is the admission gate: bound the in-flight data requests, shed
// the excess with 429 + Retry-After, put a deadline on the rest, and
// resolve the degraded-mode read decision once per request.
func (s *Server) admit(route string, next dataHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mRequests.With(route).Inc()
		select {
		case s.sem <- struct{}{}:
		default:
			mShed.Inc()
			w.Header().Set("Retry-After", s.latLive.retryAfter())
			httpError(w, http.StatusTooManyRequests, "server at capacity")
			return
		}
		mInFlight.Inc()
		start := time.Now()
		id := s.latLive.begin()
		defer func() {
			<-s.sem
			mInFlight.Dec()
			s.latLive.end(id)
			mLatency.Observe(time.Since(start).Seconds())
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)

		// Every write gets a deadline: the server-level WriteTimeout is
		// deliberately 0 (it would kill SSE), so slow readers are bounded
		// here instead.
		rc := http.NewResponseController(w)
		rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))

		cur, h := s.health(s.cfg.now())
		if cur == nil {
			// Nothing to serve at all — only possible before the first
			// snapshot of a fresh deployment (no durable state). This is
			// the tier's one 503-on-data path; everything after the first
			// snapshot degrades to a stale read instead.
			w.Header().Set("Retry-After", s.latLive.retryAfter())
			httpError(w, http.StatusServiceUnavailable, "no snapshot yet")
			return
		}
		if h.stale {
			mStaleReads.Inc()
		}
		staleHeaders(w, cur, h, s.cfg.now())
		next(w, r, cur, h)
	})
}

// staleHeaders stamps the degraded-mode metadata every data response
// carries, so even opaque bodies (SVG bytes) tell the reader how fresh
// the picture is.
func staleHeaders(w http.ResponseWriter, cur *published, h healthState, now time.Time) {
	hd := w.Header()
	hd.Set("X-Rex-Snapshot-Seq", fmt.Sprintf("%d", cur.seq))
	hd.Set("X-Rex-Snapshot-At", cur.view.At.UTC().Format(time.RFC3339Nano))
	if !cur.recvAt.IsZero() {
		hd.Set("X-Rex-Snapshot-Age", fmt.Sprintf("%.1f", now.Sub(cur.recvAt).Seconds()))
	}
	hd.Set("X-Rex-Stale", fmt.Sprintf("%t", h.stale))
	if h.reason != "" {
		hd.Set("X-Rex-Stale-Reason", h.reason)
	}
	hd.Set("Cache-Control", "no-cache")
}

// etagFor is the snapshot-version ETag: readers polling an unchanged
// snapshot get 304s, which cost no render and almost no bytes.
func etagFor(key renderKey) string {
	return fmt.Sprintf("\"v%d-%s-%t\"", key.seq, key.format, key.stale)
}

// serveCached answers from the single-flight render cache, handling
// conditional requests against the version ETag.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key renderKey, render func() ([]byte, string, error)) {
	etag := etagFor(key)
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		mNotModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, ctype, err := s.cache.get(r.Context(), key, render)
	if err != nil {
		w.Header().Set("Retry-After", s.latLive.retryAfter())
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(data)
}

// handleSnapshot serves the full snapshot JSON. The stale flag is part
// of the body, so it participates in the cache key: a given snapshot
// version has at most two JSON renderings (fresh and degraded), and in
// practice one.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, cur *published, h healthState) {
	key := renderKey{seq: cur.seq, format: "json", stale: h.stale}
	s.serveCached(w, r, key, func() ([]byte, string, error) {
		v := cur.stampedView(h)
		b, err := json.MarshalIndent(&v, "", "  ")
		if err != nil {
			return nil, "", err
		}
		return append(b, '\n'), "application/json", nil
	})
}

// handleComponents serves the Stemming components alone — the
// operator's "what is broken right now" list. The body is
// staleness-free (headers carry it), so each version renders once.
func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request, cur *published, h healthState) {
	key := renderKey{seq: cur.seq, format: "components", stale: false}
	s.serveCached(w, r, key, func() ([]byte, string, error) {
		doc := struct {
			Seq        uint64          `json:"seq"`
			At         time.Time       `json:"at"`
			Components []ComponentView `json:"components"`
		}{cur.seq, cur.view.At, cur.view.Components}
		b, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			return nil, "", err
		}
		return append(b, '\n'), "application/json", nil
	})
}

// handlePicture serves the TAMP picture in the requested format. The
// bytes do not embed staleness, so the cache key's stale bit is pinned
// false: a degraded-mode flip cannot double the render count.
func (s *Server) handlePicture(format string) dataHandler {
	return func(w http.ResponseWriter, r *http.Request, cur *published, h healthState) {
		key := renderKey{seq: cur.seq, format: format, stale: false}
		s.serveCached(w, r, key, func() ([]byte, string, error) {
			switch format {
			case "svg":
				return []byte(viz.SVG(cur.pic)), "image/svg+xml", nil
			case "dot":
				return []byte(viz.DOT(cur.pic, viz.DOTOptions{})), "text/vnd.graphviz", nil
			case "json":
				return viz.JSON(cur.pic), "application/json", nil
			}
			return nil, "", fmt.Errorf("unknown picture format %q", format)
		})
	}
}

// handlePrefix is the per-prefix drill-down: every component of the
// current snapshot involving the given prefix. Uncached on purpose —
// the key space is caller-controlled and the scan is linear in the
// component list, which is already bounded by the pipeline.
func (s *Server) handlePrefix(w http.ResponseWriter, r *http.Request, cur *published, h healthState) {
	raw := strings.TrimPrefix(r.URL.Path, "/api/prefix/")
	pfx, err := netip.ParsePrefix(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad prefix %q: use CIDR form, e.g. /api/prefix/203.0.113.0/24", raw))
		return
	}
	want := pfx.String()
	out := PrefixView{Prefix: want, Seq: cur.seq, Stale: h.stale, StaleReason: h.reason}
	for _, c := range cur.view.Components {
		for _, p := range c.Prefixes {
			if p == want {
				out.Components = append(out.Components, c)
				break
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	b, _ := json.MarshalIndent(&out, "", "  ")
	w.Write(append(b, '\n'))
}

// handleStream is the live SSE snapshot stream. Subscribers past the
// cap get 429; live ones get a "hello" with the current summary, then
// one "snapshot" (or "resync") event per publish, heartbeat comments in
// between, and a terminal "bye" event when the server drains.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	mRequests.With("stream").Inc()
	select {
	case <-s.drain:
		w.Header().Set("Retry-After", s.latLive.retryAfter())
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	default:
	}
	c, ok := s.broker.add()
	if !ok {
		mSSERejected.Inc()
		w.Header().Set("Retry-After", s.latLive.retryAfter())
		httpError(w, http.StatusTooManyRequests, "subscriber limit reached")
		return
	}
	defer s.broker.remove(c)

	hd := w.Header()
	hd.Set("Content-Type", "text/event-stream")
	hd.Set("Cache-Control", "no-cache")
	hd.Set("Connection", "keep-alive")
	hd.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	cur, h := s.health(s.cfg.now())
	hello := []byte(`{"seq":0}`)
	if cur != nil {
		hello = summaryJSON(cur, h.stale, h.reason)
	}
	if err := writeSSE(w, rc, s.cfg.WriteTimeout, sseMsg{event: "hello", data: hello}); err != nil {
		mSSEEvicted.Inc()
		return
	}

	hb := time.NewTicker(s.cfg.SSEHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.drain:
			// Terminal event: tell the client this is a planned drain,
			// not a crash, so it can back off before reconnecting.
			writeSSE(w, rc, s.cfg.WriteTimeout, sseMsg{event: "bye", data: []byte(`{"reason":"drain"}`)})
			return
		case m := <-c.ch:
			if err := writeSSE(w, rc, s.cfg.WriteTimeout, s.broker.nextEvent(c, m)); err != nil {
				mSSEEvicted.Inc()
				return
			}
		case <-hb.C:
			if err := writeSSEComment(w, rc, s.cfg.WriteTimeout); err != nil {
				mSSEEvicted.Inc()
				return
			}
		}
	}
}

// atHandler serves one time-travel endpoint: parse the queried instant,
// resolve it through the replayed-instant cache (single-flight replay
// under the dedicated lane), and render the requested format. Degraded
// outcomes are explicit status codes with X-Rex-Replay-* headers — a
// journal that cannot answer is 416/422, never 500; only an I/O failure
// maps to 503.
func (s *Server) atHandler(route, format string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mRequests.With(route).Inc()
		if s.hist == nil {
			httpError(w, http.StatusNotFound, "time travel disabled: the serving tier has no journal directory")
			return
		}
		t, window, perr := s.parseAtQuery(r)
		if perr != "" {
			httpError(w, http.StatusBadRequest, perr)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		rc := http.NewResponseController(w)
		rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))

		key := atKey{at: t.UTC().Format(time.RFC3339Nano), window: window}
		// A replayed instant is immutable, so the ETag needs no version:
		// the key and format identify the bytes forever. Only success
		// responses emit it (a cached 416 near the live head could heal).
		etag := fmt.Sprintf("\"at-%s-%s-%s\"", key.at, key.window, format)
		if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
			mNotModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}

		e, admitted := s.histCache.get(ctx, key,
			func() bool {
				select {
				case s.replaySem <- struct{}{}:
					mReplays.Inc()
					mReplayInFlight.Inc()
					return true
				default:
					mReplayShed.Inc()
					return false
				}
			},
			func() {
				<-s.replaySem
				mReplayInFlight.Dec()
			},
			func() (*atResult, *replayError, error) {
				id := s.latReplay.begin()
				res, rerr, err := s.hist.replayAt(t, window)
				took := s.latReplay.end(id)
				mReplaySeconds.Observe(took.Seconds())
				logReplay(key, res, rerr, err, took)
				return res, rerr, err
			})
		if !admitted {
			w.Header().Set("Retry-After", s.latReplay.retryAfter())
			httpError(w, http.StatusTooManyRequests, "replay lane at capacity")
			return
		}
		if e == nil {
			// ctx expired while waiting on someone else's replay.
			w.Header().Set("Retry-After", s.latReplay.retryAfter())
			httpError(w, http.StatusServiceUnavailable, "timed out waiting for replay")
			return
		}
		if e.err != nil {
			w.Header().Set("Retry-After", s.latReplay.retryAfter())
			httpError(w, http.StatusServiceUnavailable, e.err.Error())
			return
		}
		if e.rerr != nil {
			mReplayDegraded.With(e.rerr.reason).Inc()
			hd := w.Header()
			hd.Set("X-Rex-Replay-Reason", e.rerr.reason)
			if e.rerr.floor > 0 {
				hd.Set("X-Rex-Replay-Floor", fmt.Sprintf("%d", e.rerr.floor))
			}
			if e.rerr.skipped > 0 {
				hd.Set("X-Rex-Replay-Skipped", fmt.Sprintf("%d", e.rerr.skipped))
			}
			httpError(w, e.rerr.code, e.rerr.msg)
			return
		}
		res := e.res
		hd := w.Header()
		hd.Set("ETag", etag)
		hd.Set("X-Rex-Replay-At", res.snap.At.UTC().Format(time.RFC3339Nano))
		hd.Set("X-Rex-Replay-Window", window.String())
		hd.Set("X-Rex-Replay-Records", fmt.Sprintf("%d", res.records))
		hd.Set("Cache-Control", "no-cache")
		data, ctype, err := s.histCache.render(ctx, e, format, func() ([]byte, string, error) {
			return renderAt(res, format)
		})
		if err != nil {
			w.Header().Set("Retry-After", s.latReplay.retryAfter())
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		hd.Set("Content-Type", ctype)
		w.Write(data)
	})
}

// parseAtQuery validates the time-travel query: t is required (RFC3339
// or integer unix seconds), window is an optional positive Go duration
// defaulting to the replay pipeline's window and clamped to the
// configured ceiling.
func (s *Server) parseAtQuery(r *http.Request) (time.Time, time.Duration, string) {
	q := r.URL.Query()
	raw := q.Get("t")
	if raw == "" {
		return time.Time{}, 0, "missing t: pass t=<RFC3339 time or unix seconds>, e.g. t=2003-08-14T20:00:00Z"
	}
	var t time.Time
	if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
		t = time.Unix(n, 0).UTC()
	} else if ts, terr := time.Parse(time.RFC3339Nano, raw); terr == nil {
		t = ts
	} else {
		return time.Time{}, 0, fmt.Sprintf("bad t %q: want RFC3339 (2003-08-14T20:00:00Z) or unix seconds", raw)
	}
	window := s.cfg.Replay.Window
	if window <= 0 {
		window = 15 * time.Minute // the pipeline default
	}
	if rawW := q.Get("window"); rawW != "" {
		d, err := time.ParseDuration(rawW)
		if err != nil || d <= 0 {
			return time.Time{}, 0, fmt.Sprintf("bad window %q: want a positive Go duration, e.g. window=15m", rawW)
		}
		window = d
	}
	if window > s.cfg.MaxReplayWindow {
		window = s.cfg.MaxReplayWindow
	}
	return t, window, ""
}

// renderAt renders one format of a completed replay. The picture
// formats go through the same viz renderers as the live endpoints — the
// differential replay suite relies on that to assert byte-identity.
func renderAt(res *atResult, format string) ([]byte, string, error) {
	switch format {
	case "json":
		v := atViewOf(res)
		b, err := json.MarshalIndent(&v, "", "  ")
		if err != nil {
			return nil, "", err
		}
		return append(b, '\n'), "application/json", nil
	case "components":
		doc := struct {
			T          time.Time       `json:"t"`
			At         time.Time       `json:"at"`
			Components []ComponentView `json:"components"`
		}{res.t, res.snap.At, res.comps}
		b, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			return nil, "", err
		}
		return append(b, '\n'), "application/json", nil
	case "svg":
		return []byte(viz.SVG(res.snap.Picture)), "image/svg+xml", nil
	case "dot":
		return []byte(viz.DOT(res.snap.Picture, viz.DOTOptions{})), "text/vnd.graphviz", nil
	case "pjson":
		return viz.JSON(res.snap.Picture), "application/json", nil
	}
	return nil, "", fmt.Errorf("unknown at format %q", format)
}

// handleHealthz is pure liveness: the process is up and the mux
// answers. Deliberately independent of pipeline state — degraded mode
// must not get the process killed by an orchestrator.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	mRequests.With("healthz").Inc()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 only when the served snapshot is live
// and fresh and the server is not draining. Load balancers use this to
// route around a recovering node while its data endpoints keep
// answering stale reads for direct clients.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	mRequests.With("readyz").Inc()
	_, h := s.health(s.cfg.now())
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case h.draining:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case h.stale:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "not ready: %s\n", h.reason)
	default:
		fmt.Fprintln(w, "ready")
	}
}

// handleIndex is a plain-text map of the API for humans with curl.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		mRequests.With("other").Inc()
		httpError(w, http.StatusNotFound, "no such endpoint; GET / lists the API")
		return
	}
	mRequests.With("index").Inc()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `rex serving tier

  GET /api/snapshot          full snapshot JSON (components + picture + feeds)
  GET /api/components        Stemming components only
  GET /api/picture.svg       TAMP picture, SVG
  GET /api/picture.dot       TAMP picture, Graphviz DOT
  GET /api/picture.json      TAMP picture, JSON graph
  GET /api/prefix/{cidr}     components involving one prefix (e.g. /api/prefix/203.0.113.0/24)
  GET /api/stream            live snapshot stream (SSE)
  GET /api/at?t=...          time travel: state as of t (RFC3339 or unix), optional window=15m
  GET /api/at/components     components as of t
  GET /api/at/picture.{svg,dot,json}?t=...
  GET /healthz               liveness
  GET /readyz                readiness (503 while degraded or draining)

Responses carry X-Rex-Snapshot-Seq / X-Rex-Stale headers; 429 means
back off (Retry-After is set), X-Rex-Stale: true means the pipeline is
recovering and you are reading the last durable snapshot. Time-travel
answers carry X-Rex-Replay-* headers; 416 means t is outside the
journal's reconstructible history, 422 means the range crosses CRC
damage.
`)
}

// httpError writes a small JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	w.Write(append(b, '\n'))
}
