package serve

// Time-travel queries: /api/at?t=... replays the durable journal into a
// one-shot pipeline and serves the analysis state as of the requested
// instant. The paper's workflow is forensic — "what did the routing
// picture look like when the anomaly fired?" — so the serving tier can
// answer for any instant the journal still covers, not just the latest
// snapshot. See DESIGN.md §15.
//
// Resolution uses the checkpoint TimeIndex bounds: LowWater(t-window)
// is the earliest record the sliding window needs, HighWater(t) bounds
// where the event-time clock passed t, and the scan stops exactly at
// the first event newer than t. The replay base is the journal origin
// when it is still retained (cold replay — provably byte-identical to
// what the live pipeline emitted, because the engine is deterministic
// at a fixed shard count), or the newest checkpoint that does not
// already contain state from after t when the journal has been trimmed.
//
// Replays are far more expensive than cache reads, so they get their
// own admission lane: a small dedicated semaphore (separate from
// MaxInFlight), shedding with a Retry-After derived from measured
// replay latency, and a bounded LRU of recently replayed instants with
// single-flight replay and per-format render de-duplication — a swarm
// asking for the same instant costs one replay and one render per
// format. Degraded outcomes are explicit and never 500: 416 when t
// falls before the journal's reconstructible floor, 422 when the
// replayed range crosses CRC damage.

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/obs"
)

// replayError is a degraded time-travel outcome: an HTTP status (never
// 5xx for journal-state reasons), a stable machine-readable reason for
// the X-Rex-Replay-Reason header, and supporting detail.
type replayError struct {
	code    int
	reason  string // before-history | trim-floor | empty-journal | damaged | replay-failed
	msg     string
	floor   uint64 // retained floor, meaningful for trim-floor
	skipped uint64 // CRC-damaged records in the replayed range, for damaged
}

// historian owns the journal-backed replay source: an incrementally
// maintained TimeIndex over the retained records plus the resolve +
// one-shot replay step. It is safe for concurrent use; the index scan
// is serialized, replays run concurrently under the caller's admission.
type historian struct {
	dir string
	cfg pipeline.Config // analysis semantics; ReplayState strips triggers

	mu    sync.Mutex
	ix    *journal.TimeIndex
	next  uint64 // next sequence the index scan resumes from
	floor uint64 // retained floor at the last refresh
}

func newHistorian(dir string, cfg pipeline.Config) *historian {
	return &historian{dir: dir, cfg: cfg}
}

// refresh brings the TimeIndex up to the journal head: establish the
// retained floor, reset the index if the journal was replaced under us
// (the floor moved down — a wipe), and scan the unindexed tail.
func (h *historian) refresh() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	floor, ok, err := journal.Floor(h.dir)
	if err != nil {
		return err
	}
	if !ok {
		h.ix, h.next, h.floor = nil, 0, 0
		return nil
	}
	if h.ix == nil || floor < h.floor {
		h.ix = journal.NewTimeIndex(64)
		h.next = floor
	}
	h.floor = floor
	_, err = journal.Scan(h.dir, h.next, func(seq uint64, e *event.Event) error {
		h.ix.Observe(seq, e.Time)
		h.next = seq + 1
		return nil
	})
	return err
}

// atResult is one completed historical replay.
type atResult struct {
	snap    pipeline.Snapshot
	comps   []ComponentView
	records uint64 // journal records fed through the replay
	window  time.Duration
	t       time.Time
}

// replayAt resolves t against the TimeIndex and runs the one-shot
// replay. A nil *replayError means res is valid; an I/O failure is
// returned as err (the caller maps it to 503, never 500).
func (h *historian) replayAt(t time.Time, window time.Duration) (res *atResult, rerr *replayError, err error) {
	if err := h.refresh(); err != nil {
		return nil, nil, err
	}
	h.mu.Lock()
	ix, floor := h.ix, h.floor
	h.mu.Unlock()
	if ix == nil {
		return nil, &replayError{code: http.StatusRequestedRangeNotSatisfiable,
			reason: "empty-journal", msg: "no journal records to replay"}, nil
	}
	if _, _, ok := ix.Span(); !ok {
		return nil, &replayError{code: http.StatusRequestedRangeNotSatisfiable,
			reason: "empty-journal", msg: "no journal records to replay"}, nil
	}
	low := ix.LowWater(t.Add(-window)) // earliest record the window needs
	high := ix.HighWater(t)            // the clock passed t at or before this record
	known := ix.LowWater(t)            // every record at or below this has time <= t

	// Pick the replay base. The journal origin, when retained, is the
	// exact base: replaying every record reproduces the live pipeline's
	// lineage byte for byte. Past the trim floor, recovery-grade
	// exactness comes from a checkpoint — but only one whose tables do
	// not already contain routing state from after t.
	var seeds []*event.Event
	start := uint64(0)
	cold := floor == 0
	if !cold {
		cks, err := journal.LoadCheckpoints(h.dir)
		if err != nil {
			return nil, nil, err
		}
		var base *journal.Checkpoint
		for _, ck := range cks {
			if ck.NextSeq <= known+1 && ck.ReplayLow >= floor {
				base = ck // ascending order: keep the newest admissible
			}
		}
		if base == nil {
			return nil, &replayError{code: http.StatusRequestedRangeNotSatisfiable,
				reason: "trim-floor", floor: floor,
				msg: fmt.Sprintf("t predates the journal's reconstructible history (trim floor seq %d)", floor)}, nil
		}
		seeds = base.SeedEvents()
		start = base.NextSeq
		if low < start {
			start = low
		}
	}

	cfg := h.cfg
	cfg.Window = window
	var records, skipped uint64
	snap, serr := pipeline.ReplayState(cfg, seeds, func(ingest func(e *event.Event)) error {
		stats, scanErr := journal.Scan(h.dir, start, func(seq uint64, e *event.Event) error {
			if seq > high {
				return journal.ErrStop
			}
			if e.Time.After(t) {
				return journal.ErrStop
			}
			ingest(e)
			records++
			return nil
		})
		// Abandoned segments (framing breaks) lose every record after the
		// break — that is damage for a replay just like a CRC mismatch.
		skipped = stats.Skipped + uint64(stats.Abandoned)
		return scanErr
	})
	if serr != nil {
		return nil, nil, serr
	}
	if skipped > 0 {
		return nil, &replayError{code: http.StatusUnprocessableEntity,
			reason: "damaged", skipped: skipped,
			msg: fmt.Sprintf("replayed range crosses %d CRC-damaged or unrecoverable record(s); the state as of t cannot be reconstructed faithfully", skipped)}, nil
	}
	if records == 0 && len(seeds) == 0 {
		return nil, &replayError{code: http.StatusRequestedRangeNotSatisfiable,
			reason: "before-history", msg: "t predates the first journaled event"}, nil
	}
	mReplayRecords.Add(records)
	if snap.Picture == nil {
		snap.Picture = &tamp.Picture{Site: h.cfg.Site}
	}
	return &atResult{
		snap:    snap,
		comps:   viewComponents(snap.Components),
		records: records,
		window:  window,
		t:       t,
	}, nil, nil
}

// atKey identifies one replayed instant: the queried time (exact, as a
// normalized string — instants are immutable) and the analysis window.
type atKey struct {
	at     string // t in UTC RFC3339Nano
	window time.Duration
}

// atEntry is one in-flight or finished replay plus its per-format
// renders. ready is closed once res/rerr/err are final; renders are
// single-flight per format under the cache lock, exactly the discipline
// renderCache applies to live snapshots.
type atEntry struct {
	ready   chan struct{}
	res     *atResult
	rerr    *replayError
	err     error
	renders map[string]*renderEntry
	gen     uint64 // LRU clock: bumped on every touch
}

// historyCache is the bounded LRU of recently replayed instants with
// single-flight admission: the first requester of a key runs the replay
// (if the replay lane admits it), every concurrent requester waits on
// the same entry, and completed entries are evicted least-recently-used
// past the cap. Unlike the live renderCache there is no advance() —
// history never goes stale — so boundedness comes from the LRU.
type historyCache struct {
	mu      sync.Mutex
	max     int
	gen     uint64
	entries map[atKey]*atEntry
}

func newHistoryCache(max int) *historyCache {
	return &historyCache{max: max, entries: make(map[atKey]*atEntry)}
}

// get returns the entry for key, running compute at most once across
// all concurrent callers. When the key is absent, admit is consulted
// first: a false return sheds the request (the replay lane is full) and
// no entry is created. Waiters respect ctx. release is called once the
// compute finishes (on the computing goroutine), never for joiners.
func (c *historyCache) get(ctx context.Context, key atKey, admit func() bool, release func(), compute func() (*atResult, *replayError, error)) (*atEntry, bool) {
	c.mu.Lock()
	c.gen++
	if e, ok := c.entries[key]; ok {
		e.gen = c.gen
		c.mu.Unlock()
		mReplayCacheHits.Inc()
		select {
		case <-e.ready:
			return e, true
		case <-ctx.Done():
			return nil, true
		}
	}
	if !admit() {
		c.mu.Unlock()
		return nil, false
	}
	e := &atEntry{ready: make(chan struct{}), renders: make(map[string]*renderEntry), gen: c.gen}
	c.entries[key] = e
	c.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				e.rerr = &replayError{code: http.StatusUnprocessableEntity,
					reason: "replay-failed", msg: fmt.Sprintf("replay panic: %v", r)}
			}
			close(e.ready)
			release()
		}()
		e.res, e.rerr, e.err = compute()
	}()

	c.mu.Lock()
	// An empty journal is a transient condition (the first events may
	// land any moment): serve this answer to current waiters but do not
	// pin it in the cache. Everything else about a past instant is
	// immutable and cacheable, errors included.
	if e.rerr != nil && e.rerr.reason == "empty-journal" {
		if c.entries[key] == e {
			delete(c.entries, key)
		}
	}
	c.evictLocked()
	c.mu.Unlock()
	return e, true
}

// evictLocked drops least-recently-used completed entries past the cap.
// In-flight entries are skipped — they are bounded by the replay lane.
func (c *historyCache) evictLocked() {
	for len(c.entries) > c.max {
		var victim atKey
		var oldest uint64 = math.MaxUint64
		found := false
		for k, e := range c.entries {
			select {
			case <-e.ready:
			default:
				continue // still computing
			}
			if e.gen < oldest {
				oldest, victim, found = e.gen, k, true
			}
		}
		if !found {
			return
		}
		delete(c.entries, victim)
		mReplayEvicted.Inc()
	}
}

// render returns the rendered bytes for one format of a completed
// entry, executing render exactly once per (entry, format).
func (c *historyCache) render(ctx context.Context, e *atEntry, format string, render func() ([]byte, string, error)) ([]byte, string, error) {
	c.mu.Lock()
	re, ok := e.renders[format]
	if !ok {
		re = &renderEntry{ready: make(chan struct{})}
		e.renders[format] = re
		c.mu.Unlock()
		mReplayRenders.With(format).Inc()
		func() {
			defer func() {
				if r := recover(); r != nil {
					re.err = fmt.Errorf("render at/%s: panic: %v", format, r)
				}
				close(re.ready)
			}()
			re.data, re.ctype, re.err = render()
		}()
		return re.data, re.ctype, re.err
	}
	c.mu.Unlock()
	select {
	case <-re.ready:
		return re.data, re.ctype, re.err
	case <-ctx.Done():
		return nil, "", ctx.Err()
	}
}

// latencyLane derives Retry-After from what one admission lane has
// actually measured, replacing the old hardcoded "1": an EWMA of
// completed request latencies, pushed up by the longest-running
// in-flight request so a wedged backend is reflected before it ever
// completes. Sheds tell the client to come back after roughly two
// smoothed latencies, clamped to [1s, 60s].
type latencyLane struct {
	mu       sync.Mutex
	ewma     float64 // seconds; 0 until the first observation
	inflight map[uint64]time.Time
	nextID   uint64
	now      func() time.Time
}

func newLatencyLane(now func() time.Time) *latencyLane {
	return &latencyLane{inflight: make(map[uint64]time.Time), now: now}
}

func (l *latencyLane) begin() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	id := l.nextID
	l.inflight[id] = l.now()
	return id
}

func (l *latencyLane) end(id uint64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	start, ok := l.inflight[id]
	if !ok {
		return 0
	}
	delete(l.inflight, id)
	obs := l.now().Sub(start).Seconds()
	if obs < 0 {
		obs = 0
	}
	if l.ewma == 0 {
		l.ewma = obs
	} else {
		l.ewma = 0.8*l.ewma + 0.2*obs
	}
	return time.Duration(obs * float64(time.Second))
}

// retryAfter renders the lane's current backoff hint in whole seconds.
func (l *latencyLane) retryAfter() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	est := l.ewma
	now := l.now()
	for _, start := range l.inflight {
		if e := now.Sub(start).Seconds(); e > est {
			est = e // a wedged request is evidence too
		}
	}
	secs := math.Ceil(2 * est)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return fmt.Sprintf("%d", int(secs))
}

// logReplay notes one executed replay so operators can correlate the
// rex_serve_replay_* metrics with specific instants.
func logReplay(key atKey, res *atResult, rerr *replayError, err error, took time.Duration) {
	switch {
	case err != nil:
		obs.Logf(obs.Warn, "serve", "replay t=%s window=%s failed: %v", key.at, key.window, err)
	case rerr != nil:
		obs.Logf(obs.Info, "serve", "replay t=%s window=%s degraded: %s (%s)", key.at, key.window, rerr.reason, rerr.msg)
	default:
		obs.Logf(obs.Debug, "serve", "replay t=%s window=%s: %d records in %s", key.at, key.window, res.records, took.Round(time.Millisecond))
	}
}
