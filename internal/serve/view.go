package serve

import (
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/core/stemming"
	"rex/internal/viz"
)

// SnapshotView is the JSON document /api/snapshot serves — a full
// operator-facing rendering of one pipeline snapshot. The schema is
// stable; field names are part of the format. Stale and StaleReason are
// the degraded-mode markers: set whenever the tier is answering from a
// snapshot it cannot vouch is current (restored from disk after a
// crash, or older than the configured freshness bound). The same view,
// marshalled, is the durable last-snapshot file.
type SnapshotView struct {
	// Seq is the serve-side snapshot version: it increments once per
	// published snapshot and keys the render cache and ETags. It is
	// process-local — a restart restarts it at 1.
	Seq     uint64    `json:"seq"`
	At      time.Time `json:"at"`
	Trigger string    `json:"trigger"`

	WindowStart time.Time `json:"windowStart"`
	WindowEnd   time.Time `json:"windowEnd"`
	Events      int       `json:"events"`

	Stale       bool   `json:"stale"`
	StaleReason string `json:"staleReason,omitempty"`

	Spike      *SpikeView      `json:"spike,omitempty"`
	Feeds      []FeedHealth    `json:"feeds,omitempty"`
	Components []ComponentView `json:"components"`
	Picture    viz.PictureJSON `json:"picture"`
}

// SpikeView is the rate spike that triggered a spike snapshot.
type SpikeView struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Total int       `json:"total"`
	Peak  int       `json:"peak"`
}

// FeedHealth is the serve-side mirror of a relay feed's status, carried
// on analysis-node snapshots so the UI can show which vantage points
// the picture is currently blind to. Defined here rather than imported
// so the serve tier stays decoupled from the relay wire layer.
type FeedHealth struct {
	ID        string    `json:"id"`
	Connected bool      `json:"connected"`
	Stale     bool      `json:"stale"`
	LastHeard time.Time `json:"lastHeard"`
}

// ComponentView is one Stemming component: the problem location, the
// strongest sub-sequence, and the affected prefixes.
type ComponentView struct {
	Stem        string    `json:"stem"`
	Score       float64   `json:"score"`
	Count       int       `json:"count"`
	Events      int       `json:"events"`
	First       time.Time `json:"first"`
	Last        time.Time `json:"last"`
	Subsequence []string  `json:"subsequence"`
	Prefixes    []string  `json:"prefixes"`
}

// AtView is the JSON document /api/at serves — the analysis state
// reconstructed as of the queried instant. T is the instant the caller
// asked for; At is where the replayed event-time clock actually stood
// (the newest event at or before T). There is no Seq and no staleness:
// a historical instant is immutable, neither versioned nor fresh.
type AtView struct {
	T           time.Time       `json:"t"`
	At          time.Time       `json:"at"`
	Window      string          `json:"window"`
	WindowStart time.Time       `json:"windowStart"`
	WindowEnd   time.Time       `json:"windowEnd"`
	Events      int             `json:"events"`
	Records     uint64          `json:"records"` // journal records replayed
	Components  []ComponentView `json:"components"`
	Picture     viz.PictureJSON `json:"picture"`
}

func atViewOf(res *atResult) AtView {
	v := AtView{
		T:           res.t,
		At:          res.snap.At,
		Window:      res.window.String(),
		WindowStart: res.snap.WindowStart,
		WindowEnd:   res.snap.WindowEnd,
		Events:      res.snap.Events,
		Records:     res.records,
		Components:  res.comps,
	}
	if res.snap.Picture != nil {
		v.Picture = viz.ExportPicture(res.snap.Picture)
	}
	return v
}

// PrefixView is the per-prefix drill-down: every component of the
// current snapshot that involves the prefix.
type PrefixView struct {
	Prefix      string          `json:"prefix"`
	Seq         uint64          `json:"seq"`
	Stale       bool            `json:"stale"`
	StaleReason string          `json:"staleReason,omitempty"`
	Components  []ComponentView `json:"components"`
}

// viewComponents converts the pipeline's components to their JSON form.
func viewComponents(comps []stemming.Component) []ComponentView {
	out := make([]ComponentView, 0, len(comps))
	for i := range comps {
		c := &comps[i]
		v := ComponentView{
			Stem:        c.Stem.String(),
			Score:       c.Score,
			Count:       c.Count,
			Events:      c.NumEvents(),
			First:       c.First,
			Last:        c.Last,
			Subsequence: make([]string, 0, len(c.Subsequence)),
			Prefixes:    make([]string, 0, len(c.Prefixes)),
		}
		for _, tok := range c.Subsequence {
			v.Subsequence = append(v.Subsequence, tok.String())
		}
		for _, p := range c.Prefixes {
			v.Prefixes = append(v.Prefixes, p.String())
		}
		out = append(out, v)
	}
	return out
}

// viewOf builds the stored (staleness-free) view of one snapshot.
// Staleness is stamped at render time: it depends on when the snapshot
// is read, not on when it was taken.
func viewOf(seq uint64, s *pipeline.Snapshot, feeds []FeedHealth) SnapshotView {
	v := SnapshotView{
		Seq:         seq,
		At:          s.At,
		Trigger:     s.Trigger.String(),
		WindowStart: s.WindowStart,
		WindowEnd:   s.WindowEnd,
		Events:      s.Events,
		Feeds:       feeds,
		Components:  viewComponents(s.Components),
	}
	if s.Spike != nil {
		v.Spike = &SpikeView{
			Start: s.Spike.Start, End: s.Spike.End,
			Total: s.Spike.Total, Peak: s.Spike.Peak,
		}
	}
	if s.Picture != nil {
		v.Picture = viz.ExportPicture(s.Picture)
	}
	return v
}
