package serve

// The time-travel proof obligations. The centerpiece is the
// differential replay suite: every snapshot the live pipeline emitted
// must be reproducible through /api/at byte-for-byte — same SVG, same
// DOT, same picture JSON, same components document — including when the
// journal was written across a SIGKILL/restart boundary (two writer
// incarnations, two pipeline incarnations, output stitched with the
// overlap-elimination harness from the relay restart differential).
// Around it: pinned status-code/header semantics for every degraded
// shape (empty journal, before history, trimmed floor, CRC damage),
// the latency-derived Retry-After contract, and fuzzing of the query
// surface.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/sim"
	"rex/internal/viz"
)

// ttEvents builds a deterministic ISP-scale scenario with strictly
// increasing timestamps. Strict monotonicity is what makes "state as of
// t" exact: a live snapshot emitted at clock T has processed precisely
// the events with time <= T, so a replay stopping at T reconstructs the
// identical stream position.
func ttEvents(t testing.TB, n int, over time.Duration) event.Stream {
	t.Helper()
	is := sim.ISPAnon(sim.ISPAnonConfig{PoPs: 2, RRsPerPoP: 2, Tier1Peers: 3,
		CustomerStubs: 12, InternetStubs: 12, PrefixesPerStub: 2})
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	ev := sim.BenchEvents(is.Site, is.BaselineRoutes(), n, over, t0, 7)
	if len(ev) == 0 {
		t.Fatal("simulator produced no events")
	}
	for i := 1; i < len(ev); i++ {
		if !ev[i].Time.After(ev[i-1].Time) {
			ev[i].Time = ev[i-1].Time.Add(time.Nanosecond)
		}
	}
	return ev
}

// ttConfig is the analysis configuration both the live pipeline and the
// replays run. Spikes are off so the lineage is purely tick-driven;
// Workers differs between live and replay on purpose — snapshots are
// byte-identical at any worker count.
func ttConfig() pipeline.Config {
	return pipeline.Config{
		Window:        5 * time.Minute,
		SnapshotEvery: time.Minute,
		SpikeK:        -1,
		Site:          "ispanon",
		Prune:         tamp.PruneOptions{KeepDepth: 3},
		Workers:       4,
	}
}

func writeJournal(t testing.TB, dir string, ev event.Stream, opts journal.Options) {
	t.Helper()
	w, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ev {
		if _, err := w.Append(&ev[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// historyServer builds a serving tier whose time travel replays dir.
func historyServer(t testing.TB, dir string) (*Server, *httptest.Server) {
	t.Helper()
	replay := ttConfig()
	replay.Workers = 2 // not the live pipeline's 4: results must not care
	s := New(Config{HistoryDir: dir, Replay: replay})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func atURL(base, path string, at time.Time) string {
	return base + path + "?t=" + neturl.QueryEscape(at.UTC().Format(time.RFC3339Nano))
}

// dropFinalSnaps removes TriggerFinal snapshots: an aborted incarnation
// (SIGKILL) never emits one, and the serving tier replays to instants,
// not to shutdowns.
func dropFinalSnaps(snaps []pipeline.Snapshot) []pipeline.Snapshot {
	var out []pipeline.Snapshot
	for _, s := range snaps {
		if s.Trigger != pipeline.TriggerFinal {
			out = append(out, s)
		}
	}
	return out
}

// renderSnaps renders snapshots one by one so renders are comparable
// across incarnations (RenderSnapshots embeds a running index).
func renderSnaps(snaps []pipeline.Snapshot) []string {
	out := make([]string, len(snaps))
	for i := range snaps {
		out[i] = pipeline.RenderSnapshots(snaps[i : i+1])
	}
	return out
}

// stitchSnaps joins two incarnations' snapshot sequences, eliminating
// the largest suffix-of-a / prefix-of-b overlap (the span the second
// incarnation re-emitted while replaying the journal) — the same
// discipline as the relay restart differential.
func stitchSnaps(a, b []pipeline.Snapshot) []pipeline.Snapshot {
	ra, rb := renderSnaps(a), renderSnaps(b)
	max := len(a)
	if len(b) < max {
		max = len(b)
	}
	for k := max; k > 0; k-- {
		match := true
		for i := 0; i < k; i++ {
			if ra[len(ra)-k+i] != rb[i] {
				match = false
				break
			}
		}
		if match {
			return append(append([]pipeline.Snapshot{}, a[:len(a)-k]...), b...)
		}
	}
	return append(append([]pipeline.Snapshot{}, a...), b...)
}

// checkInstant asserts /api/at reproduces one live snapshot
// byte-identically in every format the live endpoints serve.
func checkInstant(t *testing.T, base string, snap pipeline.Snapshot) {
	t.Helper()
	wantAt := snap.At.UTC().Format(time.RFC3339Nano)

	picture := []struct {
		path  string
		want  []byte
		ctype string
	}{
		{"/api/at/picture.svg", []byte(viz.SVG(snap.Picture)), "image/svg+xml"},
		{"/api/at/picture.dot", []byte(viz.DOT(snap.Picture, viz.DOTOptions{})), "text/vnd.graphviz"},
		{"/api/at/picture.json", viz.JSON(snap.Picture), "application/json"},
	}
	for _, c := range picture {
		resp, body := get(t, atURL(base, c.path, snap.At))
		if resp.StatusCode != 200 {
			t.Fatalf("%s?t=%s = %d: %s", c.path, wantAt, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Rex-Replay-At"); got != wantAt {
			t.Errorf("%s: X-Rex-Replay-At = %q, want %q", c.path, got, wantAt)
		}
		if ct := resp.Header.Get("Content-Type"); ct != c.ctype {
			t.Errorf("%s: content-type = %q, want %q", c.path, ct, c.ctype)
		}
		if !bytes.Equal(body, c.want) {
			t.Errorf("%s?t=%s: body differs from the live render (%d vs %d bytes)",
				c.path, wantAt, len(body), len(c.want))
		}
	}

	// The components document, byte-for-byte.
	compDoc := struct {
		T          time.Time       `json:"t"`
		At         time.Time       `json:"at"`
		Components []ComponentView `json:"components"`
	}{snap.At, snap.At, viewComponents(snap.Components)}
	wantComp, err := json.MarshalIndent(&compDoc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	wantComp = append(wantComp, '\n')
	resp, body := get(t, atURL(base, "/api/at/components", snap.At))
	if resp.StatusCode != 200 {
		t.Fatalf("components?t=%s = %d: %s", wantAt, resp.StatusCode, body)
	}
	if !bytes.Equal(body, wantComp) {
		t.Errorf("components?t=%s: body differs from the live components\n got: %s\nwant: %s",
			wantAt, body, wantComp)
	}

	// The full /api/at document: structural agreement with the snapshot.
	resp, body = get(t, atURL(base, "/api/at", snap.At))
	if resp.StatusCode != 200 {
		t.Fatalf("/api/at?t=%s = %d: %s", wantAt, resp.StatusCode, body)
	}
	var v AtView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("/api/at body: %v", err)
	}
	if !v.At.Equal(snap.At) || v.Events != snap.Events ||
		!v.WindowStart.Equal(snap.WindowStart) || !v.WindowEnd.Equal(snap.WindowEnd) ||
		len(v.Components) != len(snap.Components) {
		t.Errorf("/api/at?t=%s: view disagrees with the live snapshot: %+v", wantAt, v)
	}
}

// TestTimeTravelDifferential is the core equivalence suite: run the
// live pipeline over a journaled stream, then ask the serving tier for
// every instant the live run snapshotted — each answer must be
// byte-identical to what the live endpoints served at that moment, and
// a swarm of requests per instant must cost exactly one replay.
func TestTimeTravelDifferential(t *testing.T) {
	events := ttEvents(t, 1200, 10*time.Minute)
	dir := t.TempDir()
	writeJournal(t, dir, events, journal.Options{})

	live := dropFinalSnaps(pipeline.Replay(events, ttConfig()))
	if len(live) < 5 {
		t.Fatalf("only %d live snapshots; the scenario is too thin to prove anything", len(live))
	}

	_, ts := historyServer(t, dir)
	replays0 := mReplays.Value()
	for _, snap := range live {
		checkInstant(t, ts.URL, snap)
	}
	// 5 endpoints hit per instant, one replay per instant: the
	// (window, format)-keyed single-flight cache absorbed the rest.
	if got, want := mReplays.Value()-replays0, uint64(len(live)); got != want {
		t.Errorf("replays executed = %d, want %d (one per distinct instant)", got, want)
	}
	// Asking an already-replayed instant again replays nothing.
	checkInstant(t, ts.URL, live[0])
	if got := mReplays.Value() - replays0; got != uint64(len(live)) {
		t.Errorf("re-query replayed again: %d replays total", got)
	}

	// Conditional requests: a replayed instant is immutable, so its ETag
	// answers 304 forever.
	resp, _ := get(t, atURL(ts.URL, "/api/at/picture.svg", live[0].At))
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on a time-travel success")
	}
	req, _ := http.NewRequest("GET", atURL(ts.URL, "/api/at/picture.svg", live[0].At), nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("conditional at-GET = %d, want 304", resp2.StatusCode)
	}
}

// TestTimeTravelAcrossRestart is the SIGKILL differential: the journal
// is written by two writer incarnations (the first abandoned without
// Close, as a kill would leave it), the live lineage comes from two
// pipeline incarnations stitched over their re-emitted overlap, and
// every stitched snapshot must still come back byte-identical from
// /api/at over the combined journal.
func TestTimeTravelAcrossRestart(t *testing.T) {
	events := ttEvents(t, 1200, 10*time.Minute)
	k := len(events) * 3 / 5
	dir := t.TempDir()

	// Incarnation A: journal and analyze events [0, k), then die without
	// closing anything. Sync stands in for the fsync that made the tail
	// durable before the kill.
	wA, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pA := pipeline.New(ttConfig())
	var snapsA []pipeline.Snapshot
	doneA := make(chan struct{})
	go func() {
		defer close(doneA)
		for s := range pA.Snapshots() {
			snapsA = append(snapsA, s)
		}
	}()
	for i := 0; i < k; i++ {
		if _, err := wA.Append(&events[i]); err != nil {
			t.Fatal(err)
		}
		pA.Ingest(events[i])
	}
	if err := wA.Sync(); err != nil {
		t.Fatal(err)
	}
	pA.Close() // release the collector goroutine; finals are dropped below
	<-doneA
	snapsA = dropFinalSnaps(snapsA)

	// Incarnation B: recover by replaying the journal through a fresh
	// pipeline (re-emitting A's snapshots — the stitch overlap), then
	// continue live with events [k, n), journaling them.
	wB, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := wB.NextSeq(); got != uint64(k) {
		t.Fatalf("restarted journal resumes at seq %d, want %d", got, k)
	}
	pB := pipeline.New(ttConfig())
	var snapsB []pipeline.Snapshot
	doneB := make(chan struct{})
	go func() {
		defer close(doneB)
		for s := range pB.Snapshots() {
			snapsB = append(snapsB, s)
		}
	}()
	if _, err := journal.Scan(dir, 0, func(seq uint64, e *event.Event) error {
		pB.Ingest(*e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := k; i < len(events); i++ {
		if _, err := wB.Append(&events[i]); err != nil {
			t.Fatal(err)
		}
		pB.Ingest(events[i])
	}
	if err := wB.Close(); err != nil {
		t.Fatal(err)
	}
	pB.Close()
	<-doneB
	snapsB = dropFinalSnaps(snapsB)

	// The stitched lineage must equal an uninterrupted run's — the
	// precondition that makes "byte-identical to live" meaningful.
	stitched := stitchSnaps(snapsA, snapsB)
	ref := dropFinalSnaps(pipeline.Replay(events, ttConfig()))
	sr, rr := renderSnaps(stitched), renderSnaps(ref)
	if len(sr) != len(rr) {
		t.Fatalf("stitched lineage has %d snapshots, uninterrupted run has %d", len(sr), len(rr))
	}
	for i := range sr {
		if sr[i] != rr[i] {
			t.Fatalf("stitched snapshot %d differs from the uninterrupted run:\n%s\nvs\n%s", i, sr[i], rr[i])
		}
	}

	_, ts := historyServer(t, dir)
	for _, snap := range stitched {
		checkInstant(t, ts.URL, snap)
	}
}

// TestTimeTravelEdgeSemantics pins the degraded and boundary semantics
// of the query surface: explicit 416s with machine-readable reasons,
// 400s for malformed queries, and the after-the-last-event answer.
func TestTimeTravelEdgeSemantics(t *testing.T) {
	events := ttEvents(t, 300, 5*time.Minute)
	first, last := events[0].Time, events[len(events)-1].Time

	expectDegraded := func(t *testing.T, url string, code int, reason string) {
		t.Helper()
		resp, body := get(t, url)
		if resp.StatusCode != code {
			t.Fatalf("GET %s = %d (%s), want %d", url, resp.StatusCode, body, code)
		}
		if got := resp.Header.Get("X-Rex-Replay-Reason"); got != reason {
			t.Errorf("GET %s: X-Rex-Replay-Reason = %q, want %q", url, got, reason)
		}
	}

	t.Run("empty-journal", func(t *testing.T) {
		// Both shapes of empty: a directory with no segments at all, and
		// one holding a header-only segment with zero records.
		_, ts := historyServer(t, t.TempDir())
		expectDegraded(t, atURL(ts.URL, "/api/at", first), 416, "empty-journal")

		dir := t.TempDir()
		writeJournal(t, dir, nil, journal.Options{})
		_, ts2 := historyServer(t, dir)
		expectDegraded(t, atURL(ts2.URL, "/api/at", first), 416, "empty-journal")
	})

	dir := t.TempDir()
	writeJournal(t, dir, events, journal.Options{})
	_, ts := historyServer(t, dir)

	t.Run("before-history", func(t *testing.T) {
		expectDegraded(t, atURL(ts.URL, "/api/at", first.Add(-time.Hour)), 416, "before-history")
		// Negative unix seconds are a well-formed query for 1969 — long
		// before history, never a parse error.
		expectDegraded(t, ts.URL+"/api/at?t=-10000", 416, "before-history")
	})

	t.Run("after-last-event", func(t *testing.T) {
		resp, body := get(t, atURL(ts.URL, "/api/at", last.Add(time.Hour)))
		if resp.StatusCode != 200 {
			t.Fatalf("after-last = %d: %s", resp.StatusCode, body)
		}
		// The clock resolves to the newest event, and the whole journal
		// was replayed.
		if got := resp.Header.Get("X-Rex-Replay-At"); got != last.UTC().Format(time.RFC3339Nano) {
			t.Errorf("X-Rex-Replay-At = %q, want the last event time %q", got, last.UTC().Format(time.RFC3339Nano))
		}
		var v AtView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Records != uint64(len(events)) {
			t.Errorf("records replayed = %d, want %d", v.Records, len(events))
		}
	})

	t.Run("exactly-first-event", func(t *testing.T) {
		resp, body := get(t, atURL(ts.URL, "/api/at", first))
		if resp.StatusCode != 200 {
			t.Fatalf("t = first event = %d: %s", resp.StatusCode, body)
		}
		var v AtView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Records != 1 {
			t.Errorf("records at the first instant = %d, want exactly 1 (at-the-cutoff belongs to history)", v.Records)
		}
	})

	t.Run("bad-queries", func(t *testing.T) {
		for _, q := range []string{
			"/api/at",                      // missing t
			"/api/at?t=",                   // empty t
			"/api/at?t=yesterday",  // not a time
			"/api/at?t=2003-08-14", // date without time: not RFC3339
			"/api/at?t=1060891200&window=junk",
			"/api/at?t=1060891200&window=-5s",
			"/api/at?t=1060891200&window=10000000000000000h", // overflows a duration
		} {
			resp, _ := get(t, ts.URL+q)
			if resp.StatusCode != 400 {
				t.Errorf("GET %s = %d, want 400", q, resp.StatusCode)
			}
		}
	})

	t.Run("empty-window-means-default", func(t *testing.T) {
		resp, _ := get(t, fmt.Sprintf("%s/api/at?t=%d&window=", ts.URL, last.Unix()+1))
		if resp.StatusCode != 200 {
			t.Errorf("empty window = %d, want 200 (treated as absent)", resp.StatusCode)
		}
	})

	t.Run("unix-seconds", func(t *testing.T) {
		// Integer t is unix seconds; pick the last event's second + 1 so
		// events up to it are covered.
		resp, _ := get(t, fmt.Sprintf("%s/api/at?t=%d", ts.URL, last.Unix()+1))
		if resp.StatusCode != 200 {
			t.Errorf("unix t = %d, want 200", resp.StatusCode)
		}
	})
}

// TestTimeTravelTrimFloor pins the trimmed-journal semantics: instants
// older than the reconstructible floor are an explicit 416 with the
// floor in a header, while instants a checkpoint can seed still answer.
func TestTimeTravelTrimFloor(t *testing.T) {
	events := ttEvents(t, 1200, 10*time.Minute)
	dir := t.TempDir()
	opts := journal.Options{SegmentBytes: 2048}
	writeJournal(t, dir, events, opts)

	// A checkpoint covering three quarters of the stream, then trim the
	// journal to its replay floor — the retention cycle's shape.
	m := uint64(len(events) * 3 / 4)
	low := m - 50
	if _, err := journal.WriteCheckpoint(dir, &journal.Checkpoint{
		NextSeq: m, ReplayLow: low,
		WindowStart: events[low].Time, TakenAt: events[m].Time,
	}); err != nil {
		t.Fatal(err)
	}
	w, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := w.TrimTo(low)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("trim removed nothing; the scenario never left the first segment")
	}
	floor, ok, err := journal.Floor(dir)
	if err != nil || !ok || floor == 0 || floor > low {
		t.Fatalf("post-trim floor = (%d, %t, %v), want 0 < floor <= %d", floor, ok, err, low)
	}

	_, ts := historyServer(t, dir)

	// An instant before the floor is gone, explicitly.
	resp, body := get(t, atURL(ts.URL, "/api/at", events[2].Time))
	if resp.StatusCode != 416 {
		t.Fatalf("pre-floor instant = %d (%s), want 416", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rex-Replay-Reason"); got != "trim-floor" {
		t.Errorf("X-Rex-Replay-Reason = %q, want trim-floor", got)
	}
	if got := resp.Header.Get("X-Rex-Replay-Floor"); got != fmt.Sprintf("%d", floor) {
		t.Errorf("X-Rex-Replay-Floor = %q, want %d", got, floor)
	}

	// An instant the checkpoint covers still answers.
	resp, body = get(t, atURL(ts.URL, "/api/at", events[len(events)-1].Time))
	if resp.StatusCode != 200 {
		t.Fatalf("post-checkpoint instant = %d (%s), want 200", resp.StatusCode, body)
	}
}

// TestTimeTravelDamaged pins the CRC-damage semantics: a replay whose
// range crosses a damaged record is an explicit 422 with the damage
// count in a header; instants whose range stops short of the damage
// still answer.
func TestTimeTravelDamaged(t *testing.T) {
	events := ttEvents(t, 1200, 10*time.Minute)
	dir := t.TempDir()
	writeJournal(t, dir, events, journal.Options{SegmentBytes: 2048})

	// Corrupt the last record of a middle segment: flip a payload byte,
	// leaving the framing intact — a classic bit-rot shape.
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.rexj"))
	if err != nil || len(segs) < 5 {
		t.Fatalf("want several segments, got %d (%v)", len(segs), err)
	}
	sort.Strings(segs)
	victim := segs[len(segs)/2]
	buf, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-3] ^= 0xFF
	if err := os.WriteFile(victim, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := historyServer(t, dir)

	// A query whose replay crosses the damage: explicit 422.
	resp, body := get(t, atURL(ts.URL, "/api/at", events[len(events)-1].Time))
	if resp.StatusCode != 422 {
		t.Fatalf("damaged-range instant = %d (%s), want 422", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rex-Replay-Reason"); got != "damaged" {
		t.Errorf("X-Rex-Replay-Reason = %q, want damaged", got)
	}
	if got := resp.Header.Get("X-Rex-Replay-Skipped"); got != "1" {
		t.Errorf("X-Rex-Replay-Skipped = %q, want 1", got)
	}

	// A query stopping well before the damaged segment still answers.
	resp, body = get(t, atURL(ts.URL, "/api/at", events[10].Time))
	if resp.StatusCode != 200 {
		t.Fatalf("pre-damage instant = %d (%s), want 200", resp.StatusCode, body)
	}
}

// TestRetryAfterDerivedFromLatency pins the backoff contract at the
// lane level: no observations means the old floor of 1s, a wedged
// in-flight request pushes the hint up before it ever completes, the
// EWMA keeps it up after, and the hint is clamped to a minute.
func TestRetryAfterDerivedFromLatency(t *testing.T) {
	ck := newClock()
	l := newLatencyLane(ck.now)
	if got := l.retryAfter(); got != "1" {
		t.Fatalf("empty lane Retry-After = %q, want 1", got)
	}
	id := l.begin()
	ck.advance(7 * time.Second)
	if got := l.retryAfter(); got != "14" {
		t.Errorf("wedged 7s in flight: Retry-After = %q, want 14 (2x observed)", got)
	}
	l.end(id)
	if got := l.retryAfter(); got != "14" {
		t.Errorf("after completion: Retry-After = %q, want 14 (EWMA seeded at 7s)", got)
	}
	id2 := l.begin()
	ck.advance(10 * time.Minute)
	if got := l.retryAfter(); got != "60" {
		t.Errorf("10min wedge: Retry-After = %q, want the 60s clamp", got)
	}
	l.end(id2)
}

// TestWedgedReplayShedsWithDerivedRetryAfter is the integration
// regression for the hardcoded-"1" bug: requests shed at a full replay
// lane must carry a Retry-After reflecting how long the wedged replay
// has actually been running — and the lane recovers once it unwedges.
func TestWedgedReplayShedsWithDerivedRetryAfter(t *testing.T) {
	events := ttEvents(t, 200, 2*time.Minute)
	dir := t.TempDir()
	writeJournal(t, dir, events, journal.Options{})

	ck := newClock()
	replay := ttConfig()
	s := New(Config{HistoryDir: dir, Replay: replay, MaxReplayInFlight: 1, now: ck.now})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Wedge the lane: its only slot is held by a replay that has been
	// running for 9 seconds and counting.
	s.replaySem <- struct{}{}
	id := s.latReplay.begin()
	ck.advance(9 * time.Second)

	resp, body := get(t, atURL(ts.URL, "/api/at", events[len(events)-1].Time))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed under wedged replay = %d (%s), want 429", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "18" {
		t.Errorf("wedged-replay Retry-After = %q, want 18 (2x the 9s wedge)", got)
	}

	// Unwedge: the next query replays and answers.
	s.latReplay.end(id)
	<-s.replaySem
	resp, body = get(t, atURL(ts.URL, "/api/at", events[len(events)-1].Time))
	if resp.StatusCode != 200 {
		t.Fatalf("after unwedge = %d (%s), want 200", resp.StatusCode, body)
	}
}

// FuzzAtQuery throws arbitrary t/window strings at the time-travel
// surface: never a panic, never a 500-class status other than the
// deliberate 503.
func FuzzAtQuery(f *testing.F) {
	for _, seed := range [][2]string{
		{"2003-08-14T20:00:00Z", ""},
		{"2003-08-14T20:00:30.000000001Z", "1ns"},
		{"junk", "15m"},
		{"-1", ""},
		{"-9223372036854775808", "10000000000000h"},
		{"9223372036854775807", "1h"},
		{"99999999999999999999", "1h"},
		{"0", "-5s"},
		{"1060891500", "abc"},
		{"", ""},
		{"2003-08-14T20:00:00+07:00", "24h"},
		{"1e9", "9999999h"},
	} {
		f.Add(seed[0], seed[1])
	}
	events := ttEvents(f, 150, time.Minute)
	dir := f.TempDir()
	writeJournal(f, dir, events, journal.Options{})
	replay := ttConfig()
	s := New(Config{HistoryDir: dir, Replay: replay})
	defer s.Close()
	h := s.Handler()
	f.Fuzz(func(t *testing.T, rawT, rawW string) {
		path := "/api/at?t=" + neturl.QueryEscape(rawT)
		if rawW != "" {
			path += "&window=" + neturl.QueryEscape(rawW)
		}
		for _, ep := range []string{"/api/at", "/api/at/picture.svg"} {
			p := ep + path[len("/api/at"):]
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
			if rec.Code >= 500 && rec.Code != http.StatusServiceUnavailable {
				t.Fatalf("GET %q = %d", p, rec.Code)
			}
		}
	})
}
