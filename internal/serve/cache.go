package serve

import (
	"context"
	"fmt"
	"sync"
)

// renderCache is the versioned single-flight render cache: renders are
// keyed by (snapshot seq, format, stale flag), the first requester of a
// key executes the render while every concurrent requester waits on the
// same entry, and publishing a new snapshot evicts every entry of older
// versions. The effect under load is O(1) render work per snapshot
// version per format no matter how many readers are polling — the
// property the rexload swarm asserts via rex_serve_renders_total.
//
// The stale flag is part of the key only for formats whose bytes embed
// the staleness marker (the snapshot JSON); pure picture renders pass a
// constant so a degraded-mode flip cannot double their render count.
type renderCache struct {
	mu      sync.Mutex
	seq     uint64
	entries map[renderKey]*renderEntry
}

type renderKey struct {
	seq    uint64
	format string
	stale  bool
}

// renderEntry is one in-flight or finished render. ready is closed once
// data/ctype/err are final.
type renderEntry struct {
	ready chan struct{}
	data  []byte
	ctype string
	err   error
}

func newRenderCache() *renderCache {
	return &renderCache{entries: make(map[renderKey]*renderEntry)}
}

// advance moves the cache to a new snapshot version, evicting every
// entry of older versions. In-flight readers of an evicted entry keep
// their pointer and finish normally; the entry is simply no longer
// findable.
func (c *renderCache) advance(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq = seq
	for k := range c.entries {
		if k.seq != seq {
			delete(c.entries, k)
		}
	}
}

// get returns the render for key, executing render exactly once per key
// across all concurrent callers. The creating caller renders inline (a
// panic is converted into the entry's error so waiters are released);
// waiters respect ctx and bail with its error on timeout.
func (c *renderCache) get(ctx context.Context, key renderKey, render func() ([]byte, string, error)) ([]byte, string, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &renderEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()
		mRenders.With(key.format).Inc()
		func() {
			defer func() {
				if r := recover(); r != nil {
					e.err = fmt.Errorf("render %s: panic: %v", key.format, r)
				}
				close(e.ready)
			}()
			e.data, e.ctype, e.err = render()
		}()
		return e.data, e.ctype, e.err
	}
	c.mu.Unlock()
	mCacheHits.With(key.format).Inc()
	select {
	case <-e.ready:
		return e.data, e.ctype, e.err
	case <-ctx.Done():
		return nil, "", ctx.Err()
	}
}
