package traffic

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"rex/internal/core/tamp"
	"rex/internal/event"
)

func prefixes(n int) []netip.Prefix {
	out := make([]netip.Prefix, n)
	for i := range out {
		out[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 0}), 24)
	}
	return out
}

func TestLookupLongestPrefix(t *testing.T) {
	v := NewVolumeIndex([]netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("10.1.0.0/16"),
		netip.MustParsePrefix("10.1.1.0/24"),
	})
	cases := map[string]string{
		"10.1.1.5": "10.1.1.0/24",
		"10.1.2.5": "10.1.0.0/16",
		"10.2.0.1": "10.0.0.0/8",
	}
	for addr, want := range cases {
		p, ok := v.Lookup(netip.MustParseAddr(addr))
		if !ok || p.String() != want {
			t.Errorf("Lookup(%s) = %v ok=%v, want %s", addr, p, ok, want)
		}
	}
	if _, ok := v.Lookup(netip.MustParseAddr("192.168.0.1")); ok {
		t.Error("uncovered address matched")
	}
}

func TestRecordAndFractions(t *testing.T) {
	v := NewVolumeIndex([]netip.Prefix{
		netip.MustParsePrefix("10.1.0.0/16"),
		netip.MustParsePrefix("10.2.0.0/16"),
	})
	now := time.Now()
	if !v.Record(Flow{Time: now, Dst: netip.MustParseAddr("10.1.5.5"), Bytes: 900}) {
		t.Fatal("record failed")
	}
	if !v.Record(Flow{Time: now, Dst: netip.MustParseAddr("10.2.5.5"), Bytes: 100}) {
		t.Fatal("record failed")
	}
	if v.Record(Flow{Time: now, Dst: netip.MustParseAddr("172.16.0.1"), Bytes: 5}) {
		t.Error("uncovered flow recorded")
	}
	if v.Total() != 1000 {
		t.Errorf("Total = %d", v.Total())
	}
	if got := v.Volume(netip.MustParsePrefix("10.1.0.0/16")); got != 900 {
		t.Errorf("Volume = %d", got)
	}
	if f := v.Fraction(netip.MustParsePrefix("10.2.0.0/16")); f != 0.1 {
		t.Errorf("Fraction = %v", f)
	}
	empty := NewVolumeIndex(nil)
	if empty.Fraction(netip.MustParsePrefix("10.0.0.0/8")) != 0 {
		t.Error("empty index fraction")
	}
}

func TestElephantsAndMice(t *testing.T) {
	pfx := prefixes(100)
	v := GenerateZipf(pfx, 1_000_000, 1.8, nil)
	elephants := v.Elephants(0.9)
	// The defining property: a small share of prefixes carries 90% of
	// bytes (the paper cites ~10%/90%).
	if len(elephants) == 0 || len(elephants) > 25 {
		t.Errorf("elephants covering 90%% = %d prefixes of 100", len(elephants))
	}
	// Heaviest first.
	for i := 1; i < len(elephants); i++ {
		if v.Volume(elephants[i]) > v.Volume(elephants[i-1]) {
			t.Fatal("elephants not sorted by volume")
		}
	}
	// Steeper s concentrates more.
	steep := GenerateZipf(pfx, 1_000_000, 2.5, nil)
	if len(steep.Elephants(0.9)) > len(elephants) {
		t.Error("steeper Zipf less concentrated")
	}
	// Shuffled rank assignment conserves total.
	shuffled := GenerateZipf(pfx, 1_000_000, 1.8, rand.New(rand.NewSource(1)))
	if shuffled.Total() == 0 || shuffled.Total() > 1_000_000 {
		t.Errorf("shuffled total = %d", shuffled.Total())
	}
	// Degenerate inputs.
	if got := GenerateZipf(nil, 1000, 1.8, nil); got.Total() != 0 {
		t.Error("empty prefixes produced volume")
	}
	if got := GenerateZipf(pfx, 0, 0, nil); got.Total() != 0 {
		t.Error("zero bytes produced volume")
	}
}

func TestWeightFunc(t *testing.T) {
	v := NewVolumeIndex(prefixes(10))
	heavy := netip.MustParsePrefix("10.0.0.0/24")
	v.RecordPrefix(heavy, 900)
	v.RecordPrefix(netip.MustParsePrefix("10.0.1.0/24"), 100)
	w := v.WeightFunc(100)
	e := &event.Event{Prefix: heavy}
	if got := w(e); got != 91 { // 1 + 100*0.9
		t.Errorf("heavy weight = %v", got)
	}
	e.Prefix = netip.MustParsePrefix("10.0.5.0/24")
	if got := w(e); got != 1 {
		t.Errorf("mouse weight = %v", got)
	}
}

func TestEdgeVolumeAndAnnotate(t *testing.T) {
	g := tamp.New("site")
	p1 := netip.MustParsePrefix("10.1.0.0/16")
	p2 := netip.MustParsePrefix("10.2.0.0/16")
	g.AddRoute(tamp.RouteEntry{Router: "r1", Nexthop: netip.MustParseAddr("10.0.0.66"), ASPath: []uint32{1}, Prefix: p1})
	g.AddRoute(tamp.RouteEntry{Router: "r1", Nexthop: netip.MustParseAddr("10.0.0.70"), ASPath: []uint32{1}, Prefix: p2})
	v := NewVolumeIndex([]netip.Prefix{p1, p2})
	v.RecordPrefix(p1, 800)
	v.RecordPrefix(p2, 200)

	// Equal prefix counts (1 each), very different byte shares: the
	// "load balancing unbalanced" signature.
	nh66 := tamp.NexthopNode(netip.MustParseAddr("10.0.0.66"))
	nh70 := tamp.NexthopNode(netip.MustParseAddr("10.0.0.70"))
	if got := EdgeVolume(g, tamp.RouterNode("r1"), nh66, v); got != 800 {
		t.Errorf("edge volume = %d", got)
	}
	pic := g.Snapshot(tamp.PruneOptions{Threshold: -1})
	infos := AnnotatePicture(pic, g, v)
	var f66, f70 float64
	for _, info := range infos {
		switch info.Edge.To {
		case nh66:
			f66 = info.ByteFraction
		case nh70:
			f70 = info.ByteFraction
		}
	}
	if f66 != 0.8 || f70 != 0.2 {
		t.Errorf("byte fractions = %v / %v", f66, f70)
	}
}

func TestBalance(t *testing.T) {
	pfx := prefixes(200)
	v := GenerateZipf(pfx, 1_000_000, 1.8, rand.New(rand.NewSource(3)))
	groups := v.Balance(pfx, 2)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if got := len(groups[0].Prefixes) + len(groups[1].Prefixes); got != 200 {
		t.Fatalf("prefixes assigned = %d", got)
	}
	// With a heavy Zipf head the best possible 2-way split is bounded by
	// the largest single prefix; LPT must stay within that bound.
	var maxShare float64
	for _, p := range pfx {
		if f := v.Fraction(p); f > maxShare {
			maxShare = f
		}
	}
	if imb := Imbalance(groups); imb > maxShare {
		t.Errorf("imbalance = %.4f exceeds the single-elephant bound %.4f", imb, maxShare)
	}
	// On a flatter distribution LPT gets very close to perfect.
	flat := GenerateZipf(pfx, 1_000_000, 0.5, rand.New(rand.NewSource(4)))
	if imb := Imbalance(flat.Balance(pfx, 2)); imb > 0.01 {
		t.Errorf("flat-distribution imbalance = %.4f, want < 1%%", imb)
	}
	// Naive half/half split for contrast.
	naive := []BalanceGroup{{}, {}}
	for i, p := range pfx {
		g := i % 2
		naive[g].Prefixes = append(naive[g].Prefixes, p)
		naive[g].Bytes += v.Volume(p)
	}
	if Imbalance(naive) <= Imbalance(groups) {
		t.Errorf("naive split (%.3f) not worse than LPT (%.3f)",
			Imbalance(naive), Imbalance(groups))
	}
	// Degenerate arguments.
	if got := v.Balance(nil, 0); len(got) != 2 {
		t.Errorf("default k = %d groups", len(got))
	}
	if Imbalance(nil) != 0 {
		t.Error("nil imbalance")
	}
}

func TestBalanceDeterministic(t *testing.T) {
	pfx := prefixes(50)
	v := GenerateZipf(pfx, 500_000, 1.5, nil)
	a := v.Balance(pfx, 3)
	b := v.Balance(pfx, 3)
	for g := range a {
		if a[g].Bytes != b[g].Bytes || len(a[g].Prefixes) != len(b[g].Prefixes) {
			t.Fatalf("group %d differs across runs", g)
		}
	}
}
