// Package traffic implements the NetFlow-like traffic substrate of
// §III-D.2: flow records, a per-prefix volume index with longest-prefix
// matching, a Zipf "elephants and mice" generator (a small share of
// prefixes carries most bytes), and adapters that turn traffic volume into
// Stemming event weights and TAMP edge volumes.
package traffic

import (
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"rex/internal/core/tamp"
	"rex/internal/event"
)

// Flow is one aggregated flow record: bytes toward a destination.
type Flow struct {
	Time  time.Time
	Dst   netip.Addr
	Bytes uint64
}

// VolumeIndex accumulates traffic volume per routing prefix.
type VolumeIndex struct {
	// byBits maps prefix length → the masked prefixes of that length, for
	// longest-prefix matching of flow destinations.
	byBits map[int]map[netip.Prefix]struct{}
	bits   []int // lengths present, descending
	volume map[netip.Prefix]uint64
	total  uint64
}

// NewVolumeIndex builds an index over the routing table's prefixes.
func NewVolumeIndex(prefixes []netip.Prefix) *VolumeIndex {
	v := &VolumeIndex{
		byBits: make(map[int]map[netip.Prefix]struct{}),
		volume: make(map[netip.Prefix]uint64, len(prefixes)),
	}
	for _, p := range prefixes {
		p = p.Masked()
		set := v.byBits[p.Bits()]
		if set == nil {
			set = make(map[netip.Prefix]struct{})
			v.byBits[p.Bits()] = set
			v.bits = append(v.bits, p.Bits())
		}
		set[p] = struct{}{}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(v.bits)))
	return v
}

// Lookup returns the longest known prefix covering dst.
func (v *VolumeIndex) Lookup(dst netip.Addr) (netip.Prefix, bool) {
	for _, bits := range v.bits {
		p, err := dst.Prefix(bits)
		if err != nil {
			continue
		}
		if _, ok := v.byBits[bits][p]; ok {
			return p, true
		}
	}
	return netip.Prefix{}, false
}

// Record attributes a flow's bytes to the longest matching prefix. It
// returns false (and drops the bytes) when no prefix covers the
// destination.
func (v *VolumeIndex) Record(f Flow) bool {
	p, ok := v.Lookup(f.Dst)
	if !ok {
		return false
	}
	v.volume[p] += f.Bytes
	v.total += f.Bytes
	return true
}

// RecordPrefix attributes bytes directly to a known prefix.
func (v *VolumeIndex) RecordPrefix(p netip.Prefix, bytes uint64) {
	v.volume[p.Masked()] += bytes
	v.total += bytes
}

// Volume returns the bytes attributed to p.
func (v *VolumeIndex) Volume(p netip.Prefix) uint64 { return v.volume[p.Masked()] }

// Total returns all attributed bytes.
func (v *VolumeIndex) Total() uint64 { return v.total }

// Fraction returns p's share of total volume (0 when nothing recorded).
func (v *VolumeIndex) Fraction(p netip.Prefix) float64 {
	if v.total == 0 {
		return 0
	}
	return float64(v.volume[p.Masked()]) / float64(v.total)
}

// Elephants returns the smallest set of prefixes whose combined volume
// reaches the given fraction of total traffic, heaviest first.
func (v *VolumeIndex) Elephants(fraction float64) []netip.Prefix {
	type pv struct {
		p netip.Prefix
		v uint64
	}
	all := make([]pv, 0, len(v.volume))
	for p, vol := range v.volume {
		all = append(all, pv{p, vol})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].p.String() < all[j].p.String()
	})
	target := fraction * float64(v.total)
	var out []netip.Prefix
	var acc float64
	for _, e := range all {
		if acc >= target {
			break
		}
		out = append(out, e.p)
		acc += float64(e.v)
	}
	return out
}

// WeightFunc adapts the index into a Stemming event weight (§III-D.2's
// weighted correlation): an event weighs 1 plus its prefix's share of
// total traffic scaled by `scale`. With scale 100, an event on a prefix
// carrying 10% of traffic weighs 11; a zero-traffic prefix weighs 1.
func (v *VolumeIndex) WeightFunc(scale float64) func(*event.Event) float64 {
	return func(e *event.Event) float64 {
		return 1 + scale*v.Fraction(e.Prefix)
	}
}

// GenerateZipf assigns totalBytes across the prefixes with a Zipf(rank)^-s
// volume distribution, shuffling rank order with rng (nil for the natural
// order). s around 1.5–2 reproduces the paper's elephant/mice regime where
// ~10% of prefixes carry ~90% of bytes.
func GenerateZipf(prefixes []netip.Prefix, totalBytes uint64, s float64, rng *rand.Rand) *VolumeIndex {
	v := NewVolumeIndex(prefixes)
	if len(prefixes) == 0 || totalBytes == 0 {
		return v
	}
	if s <= 0 {
		s = 1.8
	}
	order := make([]int, len(prefixes))
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	weights := make([]float64, len(prefixes))
	var sum float64
	for rank := range prefixes {
		w := math.Pow(float64(rank+1), -s)
		weights[rank] = w
		sum += w
	}
	for rank, idx := range order {
		bytes := uint64(float64(totalBytes) * weights[rank] / sum)
		if bytes > 0 {
			v.RecordPrefix(prefixes[idx], bytes)
		}
	}
	return v
}

// EdgeVolume computes a TAMP edge's traffic volume: the summed volume of
// the unique prefixes currently carried on the edge. This is the paper's
// traffic-weighted TAMP edge weight.
func EdgeVolume(g *tamp.Graph, from, to tamp.NodeID, v *VolumeIndex) uint64 {
	var total uint64
	for _, p := range g.EdgePrefixes(from, to) {
		total += v.Volume(p)
	}
	return total
}

// EdgeVolumeInfo annotates one picture edge with traffic volume.
type EdgeVolumeInfo struct {
	Edge tamp.EdgeRef
	// PrefixWeight is the edge's unique-prefix count (TAMP's default
	// metric).
	PrefixWeight int
	// Bytes and ByteFraction are the traffic metric.
	Bytes        uint64
	ByteFraction float64
}

// AnnotatePicture computes traffic volumes for every edge of a picture,
// in picture edge order. Comparing PrefixWeight fractions with
// ByteFraction exposes cases where a prefix-balanced split is
// byte-unbalanced (the paper's load-balancing discussion).
func AnnotatePicture(p *tamp.Picture, g *tamp.Graph, v *VolumeIndex) []EdgeVolumeInfo {
	out := make([]EdgeVolumeInfo, 0, len(p.Edges))
	for _, e := range p.Edges {
		bytes := EdgeVolume(g, e.From, e.To, v)
		info := EdgeVolumeInfo{
			Edge:         tamp.EdgeRef{From: e.From, To: e.To},
			PrefixWeight: e.Weight,
			Bytes:        bytes,
		}
		if v.Total() > 0 {
			info.ByteFraction = float64(bytes) / float64(v.Total())
		}
		out = append(out, info)
	}
	return out
}

// Balance partitions prefixes into k groups of near-equal traffic volume
// using greedy longest-processing-time assignment — the §III-D.2
// "effective, fine-grained prefix load balancing" computed from routing +
// traffic data instead of trial-and-error prefix-space splits. Groups are
// returned with their byte totals; every input prefix appears in exactly
// one group.
func (v *VolumeIndex) Balance(prefixes []netip.Prefix, k int) []BalanceGroup {
	if k <= 0 {
		k = 2
	}
	type pv struct {
		p   netip.Prefix
		vol uint64
	}
	items := make([]pv, len(prefixes))
	for i, p := range prefixes {
		items[i] = pv{p: p.Masked(), vol: v.Volume(p)}
	}
	// Heaviest first; ties broken by prefix for determinism.
	sort.Slice(items, func(i, j int) bool {
		if items[i].vol != items[j].vol {
			return items[i].vol > items[j].vol
		}
		return items[i].p.String() < items[j].p.String()
	})
	groups := make([]BalanceGroup, k)
	for _, it := range items {
		// Assign to the lightest group.
		min := 0
		for g := 1; g < k; g++ {
			if groups[g].Bytes < groups[min].Bytes {
				min = g
			}
		}
		groups[min].Prefixes = append(groups[min].Prefixes, it.p)
		groups[min].Bytes += it.vol
	}
	return groups
}

// BalanceGroup is one side of a computed traffic split.
type BalanceGroup struct {
	Prefixes []netip.Prefix
	Bytes    uint64
}

// Imbalance returns (max-min)/total across groups: 0 is a perfect split.
func Imbalance(groups []BalanceGroup) float64 {
	if len(groups) == 0 {
		return 0
	}
	min, max, total := groups[0].Bytes, groups[0].Bytes, uint64(0)
	for _, g := range groups {
		if g.Bytes < min {
			min = g.Bytes
		}
		if g.Bytes > max {
			max = g.Bytes
		}
		total += g.Bytes
	}
	if total == 0 {
		return 0
	}
	return float64(max-min) / float64(total)
}
