// Package igp implements the interior-routing substrate the paper's
// system consumes (§II, §III-D.3): an OSPF-flavored link-state database of
// router LSAs, shortest-path-first computation (Dijkstra), cost queries
// from a router to a BGP nexthop address, and a change log so IGP events
// can be correlated with BGP incidents after Stemming localizes one.
package igp

import (
	"container/heap"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"
)

// Link is one adjacency advertised in a router LSA.
type Link struct {
	// To names the neighboring router.
	To string
	// Metric is the link cost (OSPF-style; lower is better).
	Metric uint32
}

// LSA is a router link-state advertisement: the router's adjacencies plus
// the stub networks (prefixes) directly attached to it. A BGP nexthop
// address resolves to the router advertising the covering network.
type LSA struct {
	// Origin is the advertising router.
	Origin string
	// Seq orders LSAs from the same origin; higher replaces lower.
	Seq uint64
	// Links are the router's adjacencies.
	Links []Link
	// Networks are the prefixes attached to the router.
	Networks []netip.Prefix
	// Time is when the LSA was generated.
	Time time.Time
}

// ChangeKind classifies an LSDB change.
type ChangeKind uint8

// LSDB change kinds.
const (
	ChangeNewRouter ChangeKind = iota + 1
	ChangeLinks
	ChangeNetworks
	ChangeRefresh
)

// String names the change kind.
func (k ChangeKind) String() string {
	switch k {
	case ChangeNewRouter:
		return "new-router"
	case ChangeLinks:
		return "links-changed"
	case ChangeNetworks:
		return "networks-changed"
	case ChangeRefresh:
		return "refresh"
	default:
		return "change(?)"
	}
}

// Change is one entry of the LSDB change log.
type Change struct {
	Time   time.Time
	Router string
	Kind   ChangeKind
	Detail string
}

// LSDB is the link-state database. It is safe for concurrent use.
type LSDB struct {
	mu      sync.RWMutex
	lsas    map[string]LSA
	log     []Change
	version uint64

	// spfCache memoizes SPF per source for the current version.
	spfCache map[string]map[string]uint32
	// netOwner caches prefix → advertising router for the current
	// version.
	netOwner map[netip.Prefix]string
}

// NewLSDB returns an empty database.
func NewLSDB() *LSDB {
	return &LSDB{
		lsas:     make(map[string]LSA),
		spfCache: make(map[string]map[string]uint32),
		netOwner: make(map[netip.Prefix]string),
	}
}

// Install inserts or refreshes an LSA. Older sequence numbers than the
// installed copy are ignored (returns false). Topology-affecting changes
// are appended to the change log and invalidate SPF caches.
func (db *LSDB) Install(lsa LSA) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	old, exists := db.lsas[lsa.Origin]
	if exists && lsa.Seq <= old.Seq {
		return false
	}
	db.lsas[lsa.Origin] = lsa
	kind := ChangeRefresh
	detail := ""
	switch {
	case !exists:
		kind = ChangeNewRouter
		detail = fmt.Sprintf("%d links, %d networks", len(lsa.Links), len(lsa.Networks))
	case !linksEqual(old.Links, lsa.Links):
		kind = ChangeLinks
		detail = diffLinks(old.Links, lsa.Links)
	case !networksEqual(old.Networks, lsa.Networks):
		kind = ChangeNetworks
		detail = fmt.Sprintf("%d -> %d networks", len(old.Networks), len(lsa.Networks))
	}
	if kind != ChangeRefresh {
		db.version++
		db.spfCache = make(map[string]map[string]uint32)
		db.netOwner = make(map[netip.Prefix]string)
		db.log = append(db.log, Change{Time: lsa.Time, Router: lsa.Origin, Kind: kind, Detail: detail})
	}
	return true
}

// Remove withdraws a router's LSA (router death).
func (db *LSDB) Remove(router string, now time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.lsas[router]; !ok {
		return
	}
	delete(db.lsas, router)
	db.version++
	db.spfCache = make(map[string]map[string]uint32)
	db.netOwner = make(map[netip.Prefix]string)
	db.log = append(db.log, Change{Time: now, Router: router, Kind: ChangeLinks, Detail: "router removed"})
}

// Routers returns the advertising routers, sorted.
func (db *LSDB) Routers() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.lsas))
	for r := range db.lsas {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// SPF computes shortest-path costs from source to every reachable router.
// A link is used only if both endpoints advertise it (two-way
// connectivity check), as real link-state protocols require.
func (db *LSDB) SPF(source string) map[string]uint32 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.spfLocked(source)
}

func (db *LSDB) spfLocked(source string) map[string]uint32 {
	if cached, ok := db.spfCache[source]; ok {
		return cached
	}
	dist := map[string]uint32{}
	if _, ok := db.lsas[source]; !ok {
		db.spfCache[source] = dist
		return dist
	}
	pq := &costHeap{{router: source, cost: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(costItem)
		if _, done := dist[item.router]; done {
			continue
		}
		dist[item.router] = item.cost
		lsa := db.lsas[item.router]
		for _, l := range lsa.Links {
			if _, done := dist[l.To]; done {
				continue
			}
			if !db.twoWayLocked(item.router, l.To) {
				continue
			}
			heap.Push(pq, costItem{router: l.To, cost: item.cost + l.Metric})
		}
	}
	db.spfCache[source] = dist
	return dist
}

func (db *LSDB) twoWayLocked(a, b string) bool {
	lsa, ok := db.lsas[b]
	if !ok {
		return false
	}
	for _, l := range lsa.Links {
		if l.To == a {
			return true
		}
	}
	return false
}

// CostTo returns source's IGP cost to reach addr: the SPF cost to the
// router advertising the longest-prefix network covering addr. ok=false
// means unreachable or unknown.
func (db *LSDB) CostTo(source string, addr netip.Addr) (uint32, bool) {
	db.mu.Lock()
	owner, bits := "", -1
	for r, lsa := range db.lsas {
		for _, n := range lsa.Networks {
			if n.Contains(addr) && n.Bits() > bits {
				owner, bits = r, n.Bits()
			}
		}
	}
	if owner == "" {
		db.mu.Unlock()
		return 0, false
	}
	dist := db.spfLocked(source)
	db.mu.Unlock()
	cost, ok := dist[owner]
	return cost, ok
}

// CostFunc returns a closure suitable for rib.Decision.IGPCost.
func (db *LSDB) CostFunc(source string) func(netip.Addr) (uint32, bool) {
	return func(nexthop netip.Addr) (uint32, bool) {
		return db.CostTo(source, nexthop)
	}
}

// Changes returns the change-log entries with from <= Time < to — the
// low-volume IGP event stream the paper correlates with BGP incidents
// after the fact (§III-D.3).
func (db *LSDB) Changes(from, to time.Time) []Change {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Change
	for _, c := range db.log {
		if !c.Time.Before(from) && c.Time.Before(to) {
			out = append(out, c)
		}
	}
	return out
}

func linksEqual(a, b []Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func networksEqual(a, b []netip.Prefix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func diffLinks(old, new []Link) string {
	oldSet := make(map[Link]bool, len(old))
	for _, l := range old {
		oldSet[l] = true
	}
	newSet := make(map[Link]bool, len(new))
	for _, l := range new {
		newSet[l] = true
	}
	var added, removed, changed int
	for l := range newSet {
		if !oldSet[l] {
			added++
		}
	}
	for l := range oldSet {
		if !newSet[l] {
			removed++
		}
	}
	_ = changed
	return fmt.Sprintf("+%d/-%d links", added, removed)
}

type costItem struct {
	router string
	cost   uint32
}

type costHeap []costItem

func (h costHeap) Len() int      { return len(h) }
func (h costHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h costHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].router < h[j].router
}
func (h *costHeap) Push(x any) { *h = append(*h, x.(costItem)) }
func (h *costHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// Owner returns the router advertising the longest-prefix network
// covering addr — how a BGP nexthop maps to the IGP node responsible for
// it.
func (db *LSDB) Owner(addr netip.Addr) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	owner, bits := "", -1
	for r, lsa := range db.lsas {
		for _, n := range lsa.Networks {
			if n.Contains(addr) && n.Bits() > bits {
				owner, bits = r, n.Bits()
			}
		}
	}
	return owner, owner != ""
}
