package igp

import (
	"net/netip"
	"testing"
	"time"
)

var t0 = time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)

// diamond builds a 4-router topology:
//
//	a --1-- b --1-- d     (a-d via b costs 2)
//	a --2-- c --2-- d     (a-d via c costs 4)
//
// d owns 10.9.0.0/16.
func diamond() *LSDB {
	db := NewLSDB()
	db.Install(LSA{Origin: "a", Seq: 1, Time: t0, Links: []Link{{To: "b", Metric: 1}, {To: "c", Metric: 2}}})
	db.Install(LSA{Origin: "b", Seq: 1, Time: t0, Links: []Link{{To: "a", Metric: 1}, {To: "d", Metric: 1}}})
	db.Install(LSA{Origin: "c", Seq: 1, Time: t0, Links: []Link{{To: "a", Metric: 2}, {To: "d", Metric: 2}}})
	db.Install(LSA{Origin: "d", Seq: 1, Time: t0,
		Links:    []Link{{To: "b", Metric: 1}, {To: "c", Metric: 2}},
		Networks: []netip.Prefix{netip.MustParsePrefix("10.9.0.0/16")}})
	return db
}

func TestSPFShortestPaths(t *testing.T) {
	db := diamond()
	dist := db.SPF("a")
	want := map[string]uint32{"a": 0, "b": 1, "c": 2, "d": 2}
	for r, w := range want {
		if dist[r] != w {
			t.Errorf("dist[%s] = %d, want %d", r, dist[r], w)
		}
	}
}

func TestSPFUnknownSource(t *testing.T) {
	db := diamond()
	if dist := db.SPF("zz"); len(dist) != 0 {
		t.Errorf("unknown source dist = %v", dist)
	}
}

func TestTwoWayConnectivityCheck(t *testing.T) {
	db := NewLSDB()
	// a advertises a link to b, but b does not advertise back: unusable.
	db.Install(LSA{Origin: "a", Seq: 1, Time: t0, Links: []Link{{To: "b", Metric: 1}}})
	db.Install(LSA{Origin: "b", Seq: 1, Time: t0})
	dist := db.SPF("a")
	if _, ok := dist["b"]; ok {
		t.Error("one-way link used by SPF")
	}
}

func TestCostToNexthop(t *testing.T) {
	db := diamond()
	cost, ok := db.CostTo("a", netip.MustParseAddr("10.9.3.4"))
	if !ok || cost != 2 {
		t.Errorf("CostTo = %d ok=%v, want 2", cost, ok)
	}
	if _, ok := db.CostTo("a", netip.MustParseAddr("172.16.0.1")); ok {
		t.Error("unknown address reachable")
	}
	// Longest prefix wins: b owns a more specific network.
	db.Install(LSA{Origin: "b", Seq: 2, Time: t0,
		Links:    []Link{{To: "a", Metric: 1}, {To: "d", Metric: 1}},
		Networks: []netip.Prefix{netip.MustParsePrefix("10.9.3.0/24")}})
	cost, ok = db.CostTo("a", netip.MustParseAddr("10.9.3.4"))
	if !ok || cost != 1 {
		t.Errorf("longest-prefix CostTo = %d ok=%v, want 1", cost, ok)
	}
	// CostFunc closure matches.
	f := db.CostFunc("a")
	if c, ok := f(netip.MustParseAddr("10.9.3.4")); !ok || c != 1 {
		t.Errorf("CostFunc = %d ok=%v", c, ok)
	}
}

func TestMetricChangeShiftsPath(t *testing.T) {
	db := diamond()
	// Raise a-b metric: the c path becomes best.
	db.Install(LSA{Origin: "a", Seq: 2, Time: t0.Add(time.Minute),
		Links: []Link{{To: "b", Metric: 10}, {To: "c", Metric: 2}}})
	db.Install(LSA{Origin: "b", Seq: 2, Time: t0.Add(time.Minute),
		Links: []Link{{To: "a", Metric: 10}, {To: "d", Metric: 1}}})
	dist := db.SPF("a")
	if dist["d"] != 4 {
		t.Errorf("after metric change dist[d] = %d, want 4 (via c)", dist["d"])
	}
}

func TestInstallSequenceOrdering(t *testing.T) {
	db := diamond()
	// Stale sequence is rejected.
	if db.Install(LSA{Origin: "a", Seq: 1, Time: t0, Links: nil}) {
		t.Error("stale LSA accepted")
	}
	// Equal content at a higher seq is just a refresh: no change entry.
	before := len(db.Changes(t0.Add(-time.Hour), t0.Add(time.Hour)))
	db.Install(LSA{Origin: "a", Seq: 5, Time: t0.Add(time.Second),
		Links: []Link{{To: "b", Metric: 1}, {To: "c", Metric: 2}}})
	after := len(db.Changes(t0.Add(-time.Hour), t0.Add(time.Hour)))
	if after != before {
		t.Errorf("refresh logged a change: %d -> %d", before, after)
	}
}

func TestChangeLogAndCorrelationWindow(t *testing.T) {
	db := diamond()
	// A link-metric change at t0+10m, inside a BGP incident window.
	db.Install(LSA{Origin: "b", Seq: 2, Time: t0.Add(10 * time.Minute),
		Links: []Link{{To: "a", Metric: 50}, {To: "d", Metric: 1}}})
	changes := db.Changes(t0.Add(5*time.Minute), t0.Add(15*time.Minute))
	if len(changes) != 1 {
		t.Fatalf("changes = %v", changes)
	}
	c := changes[0]
	if c.Router != "b" || c.Kind != ChangeLinks {
		t.Errorf("change = %+v", c)
	}
	// Outside the window: nothing.
	if got := db.Changes(t0.Add(20*time.Minute), t0.Add(30*time.Minute)); len(got) != 0 {
		t.Errorf("out-of-window changes = %v", got)
	}
	// Initial installs are logged as new routers.
	initial := db.Changes(t0.Add(-time.Second), t0.Add(time.Second))
	if len(initial) != 4 || initial[0].Kind != ChangeNewRouter {
		t.Errorf("initial changes = %v", initial)
	}
}

func TestRemoveRouter(t *testing.T) {
	db := diamond()
	db.Remove("b", t0.Add(time.Minute))
	dist := db.SPF("a")
	if dist["d"] != 4 {
		t.Errorf("after removing b, dist[d] = %d, want 4 (via c)", dist["d"])
	}
	// Removing again is a no-op.
	db.Remove("b", t0.Add(2*time.Minute))
	changes := db.Changes(t0.Add(30*time.Second), t0.Add(3*time.Minute))
	if len(changes) != 1 {
		t.Errorf("remove changes = %v", changes)
	}
	routers := db.Routers()
	if len(routers) != 3 || routers[0] != "a" {
		t.Errorf("Routers = %v", routers)
	}
}

func TestNetworksChangeLogged(t *testing.T) {
	db := diamond()
	db.Install(LSA{Origin: "d", Seq: 2, Time: t0.Add(time.Minute),
		Links:    []Link{{To: "b", Metric: 1}, {To: "c", Metric: 2}},
		Networks: []netip.Prefix{netip.MustParsePrefix("10.9.0.0/16"), netip.MustParsePrefix("10.10.0.0/16")}})
	changes := db.Changes(t0.Add(30*time.Second), t0.Add(2*time.Minute))
	if len(changes) != 1 || changes[0].Kind != ChangeNetworks {
		t.Errorf("changes = %v", changes)
	}
}

func TestChangeKindStrings(t *testing.T) {
	for k, want := range map[ChangeKind]string{
		ChangeNewRouter: "new-router",
		ChangeLinks:     "links-changed",
		ChangeNetworks:  "networks-changed",
		ChangeRefresh:   "refresh",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
}

func TestSPFCacheInvalidation(t *testing.T) {
	db := diamond()
	first := db.SPF("a")
	if first["d"] != 2 {
		t.Fatalf("dist[d] = %d", first["d"])
	}
	// Cached result is returned for repeated queries.
	if again := db.SPF("a"); again["d"] != 2 {
		t.Fatal("cache broken")
	}
	// Topology change invalidates.
	db.Install(LSA{Origin: "b", Seq: 2, Time: t0.Add(time.Second),
		Links: []Link{{To: "a", Metric: 1}, {To: "d", Metric: 100}}})
	if dist := db.SPF("a"); dist["d"] != 4 {
		t.Errorf("after change dist[d] = %d, want 4", dist["d"])
	}
}
