package streamfile

import "rex/internal/obs"

var (
	// mReads counts ReadEvents calls by the format the sniffer settled
	// on — "unknown" here means the read was refused, which used to be
	// silent until the caller's error surfaced far away.
	mReads = obs.NewCounterVec("rex_streamfile_reads_total", "format",
		"Event-stream file reads by detected format (text, binary, mrt, unknown=refused).")
)
