package streamfile

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
	"rex/internal/rib"
)

var t0 = time.Date(2003, 8, 1, 10, 0, 0, 0, time.UTC)

func sampleStream() event.Stream {
	attrs := &bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.Sequence(11423, 209),
		Nexthop: netip.MustParseAddr("128.32.0.66"),
	}
	return event.Stream{
		{Time: t0, Type: event.Announce, Peer: netip.MustParseAddr("128.32.1.3"),
			Prefix: netip.MustParsePrefix("20.1.0.0/16"), Attrs: attrs},
		{Time: t0.Add(time.Second), Type: event.Withdraw, Peer: netip.MustParseAddr("128.32.1.3"),
			Prefix: netip.MustParsePrefix("20.1.0.0/16"), Attrs: attrs},
	}
}

func TestRoundTripAllFormats(t *testing.T) {
	dir := t.TempDir()
	s := sampleStream()
	for _, name := range []string{"events.txt", "events.evb", "events.mrt"} {
		path := filepath.Join(dir, name)
		if err := WriteEvents(path, s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadEvents(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(back) != 2 {
			t.Fatalf("%s: %d events", name, len(back))
		}
		if back[0].Prefix != s[0].Prefix || back[0].Type != event.Announce {
			t.Errorf("%s: first event %v", name, back[0])
		}
		// MRT loses withdrawal attrs on the wire but ReadEvents augments.
		if back[1].Attrs == nil {
			t.Errorf("%s: withdrawal not augmented", name)
		}
	}
}

func TestDetect(t *testing.T) {
	cases := map[Format][]byte{
		FormatBinary:  []byte("REXEV1\nxxxx"),
		FormatText:    []byte("A 2003-08-01T10:00:00.000000Z 10.0.0.1 PREFIX 10.0.0.0/8\n"),
		FormatUnknown: []byte("garbage here"),
	}
	for want, head := range cases {
		if got := Detect(head); got != want {
			t.Errorf("Detect(%q) = %v, want %v", head, got, want)
		}
	}
	// Text with leading comment.
	if got := Detect([]byte("# hi\nW 2003…")); got != FormatText {
		t.Errorf("comment-prefixed text = %v", got)
	}
	// MRT header: type 16 at offset 4.
	mrtHead := make([]byte, 12)
	mrtHead[5] = 16
	if got := Detect(mrtHead); got != FormatMRT {
		t.Errorf("mrt header = %v", got)
	}
}

func TestReadEventsErrors(t *testing.T) {
	if _, err := ReadEvents(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not an event stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEvents(bad); err == nil {
		t.Error("garbage file succeeded")
	}
}

func TestRIBRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.mrt")
	routes := []*rib.Route{{
		Prefix:       netip.MustParsePrefix("20.1.0.0/16"),
		Peer:         netip.MustParseAddr("128.32.1.3"),
		PeerRouterID: netip.MustParseAddr("128.32.1.3"),
		Attrs: &bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Sequence(11423, 209),
			Nexthop: netip.MustParseAddr("128.32.0.66"),
		},
		LearnedAt: t0,
	}}
	if err := WriteRIB(path, routes, netip.MustParseAddr("10.255.0.1"), t0); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRIB(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Prefix != routes[0].Prefix {
		t.Fatalf("back = %v", back)
	}
}
