// Package streamfile loads and saves event streams and RIB snapshots in
// the formats the command-line tools share: the text codec (.events), the
// binary codec (.evb) and MRT (.mrt), sniffing by magic bytes when the
// extension is ambiguous.
package streamfile

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"
	"time"

	"rex/internal/event"
	"rex/internal/mrt"
	"rex/internal/rib"
)

// Format identifies a stream file format.
type Format int

// Formats.
const (
	FormatUnknown Format = iota
	FormatText
	FormatBinary
	FormatMRT
)

var binaryMagic = []byte("REXEV1\n")

// detectPeek is how many leading bytes ReadEvents sniffs. It must
// comfortably cover a .events file's comment/blank-line preamble; a
// 64-byte window used to misclassify any file whose first event line
// started past byte 64.
const detectPeek = 4096

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	case FormatMRT:
		return "mrt"
	default:
		return "unknown"
	}
}

// Detect sniffs the format from the first bytes.
func Detect(head []byte) Format {
	if bytes.HasPrefix(head, binaryMagic) {
		return FormatBinary
	}
	if len(head) >= 12 {
		// MRT header: plausible type code at offset 4.
		t := int(head[4])<<8 | int(head[5])
		if t == 11 || t == 12 || t == 13 || t == 16 || t == 17 || t == 32 || t == 33 || t == 48 || t == 64 {
			return FormatMRT
		}
	}
	// Text: the first non-blank, non-comment line starts with A or W.
	rest := head
	for len(rest) > 0 {
		line := rest
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			rest = nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if line[0] == 'A' || line[0] == 'W' {
			return FormatText
		}
		break
	}
	return FormatUnknown
}

// DetectPath sniffs the format from the first bytes, falling back to
// the path's extension (.evb binary, .mrt MRT, .events/.txt text) when
// the content alone is ambiguous — e.g. a text file whose
// comment/blank-line preamble outruns the peek window.
func DetectPath(path string, head []byte) Format {
	if f := Detect(head); f != FormatUnknown {
		return f
	}
	switch {
	case strings.HasSuffix(path, ".evb"):
		return FormatBinary
	case strings.HasSuffix(path, ".mrt"):
		return FormatMRT
	case strings.HasSuffix(path, ".events"), strings.HasSuffix(path, ".txt"):
		return FormatText
	}
	return FormatUnknown
}

// ReadEvents loads an event stream from path, sniffing the format. MRT
// update files are augmented (withdrawals regain attributes) on load.
func ReadEvents(path string) (event.Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head, _ := br.Peek(detectPeek)
	format := DetectPath(path, head)
	mReads.With(format.String()).Inc()
	switch format {
	case FormatBinary:
		return event.ReadBinary(br)
	case FormatMRT:
		s, err := mrt.ReadUpdates(br)
		if err != nil {
			return nil, err
		}
		return event.Augment(s), nil
	case FormatText:
		return event.ReadText(br)
	default:
		return nil, fmt.Errorf("%s: unrecognized event stream format", path)
	}
}

// WriteEvents saves a stream to path; the format is chosen by extension:
// .evb binary, .mrt MRT updates, anything else text.
func WriteEvents(path string, s event.Stream) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<16)
	switch {
	case strings.HasSuffix(path, ".evb"):
		err = event.WriteBinary(bw, s)
	case strings.HasSuffix(path, ".mrt"):
		err = mrt.WriteUpdates(bw, s, 0, netip.Addr{})
	default:
		err = event.WriteText(bw, s)
	}
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// ReadRIB loads a TABLE_DUMP_V2 snapshot.
func ReadRIB(path string) ([]*rib.Route, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mrt.ReadTableDump(bufio.NewReaderSize(f, 1<<16))
}

// WriteRIB saves routes as a TABLE_DUMP_V2 snapshot.
func WriteRIB(path string, routes []*rib.Route, collectorID netip.Addr, ts time.Time) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := mrt.WriteTableDump(f, routes, collectorID, ts); err != nil {
		return err
	}
	return f.Close()
}

// CopyEvents streams events from r in text form to w (used by rexd's
// -out).
func CopyEvents(w io.Writer, s event.Stream) error { return event.WriteText(w, s) }
