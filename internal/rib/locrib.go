package rib

import (
	"net/netip"
	"sort"
)

// BestChange records a best-route transition for one prefix, as produced
// by Loc-RIB mutations. Old and New may each be nil (new prefix, or prefix
// lost entirely).
type BestChange struct {
	Prefix netip.Prefix
	Old    *Route
	New    *Route
	// Step is the decision step that selected New (StepNone when New is
	// nil).
	Step Step
}

// LocRib holds all candidate routes per prefix and maintains the best
// route under a Decision. It is the routing table of one simulated router.
// LocRib is not safe for concurrent use.
type LocRib struct {
	decision Decision
	prefixes map[netip.Prefix]*prefixEntry
	numRtes  int
}

type prefixEntry struct {
	routes []*Route // one per peer
	best   *Route
	step   Step
}

// NewLocRib returns an empty Loc-RIB using the given decision
// configuration.
func NewLocRib(d Decision) *LocRib {
	return &LocRib{decision: d, prefixes: make(map[netip.Prefix]*prefixEntry)}
}

// Update installs route (replacing any prior route from the same peer for
// the same prefix) and returns the best-route change, if any.
func (l *LocRib) Update(route *Route) (BestChange, bool) {
	e := l.prefixes[route.Prefix]
	if e == nil {
		e = &prefixEntry{}
		l.prefixes[route.Prefix] = e
	}
	replaced := false
	for i, r := range e.routes {
		if r.Peer == route.Peer {
			e.routes[i] = route
			replaced = true
			break
		}
	}
	if !replaced {
		e.routes = append(e.routes, route)
		l.numRtes++
	}
	return l.reselect(route.Prefix, e)
}

// Withdraw removes the route for prefix heard from peer and returns the
// best-route change, if any. Withdrawing an unknown route is a no-op.
func (l *LocRib) Withdraw(peer netip.Addr, prefix netip.Prefix) (BestChange, bool) {
	e := l.prefixes[prefix]
	if e == nil {
		return BestChange{}, false
	}
	found := false
	for i, r := range e.routes {
		if r.Peer == peer {
			e.routes = append(e.routes[:i], e.routes[i+1:]...)
			l.numRtes--
			found = true
			break
		}
	}
	if !found {
		return BestChange{}, false
	}
	change, changed := l.reselect(prefix, e)
	if len(e.routes) == 0 {
		delete(l.prefixes, prefix)
	}
	return change, changed
}

// RemovePeer drops every route learned from peer (session loss) and
// returns all resulting best changes sorted by prefix.
func (l *LocRib) RemovePeer(peer netip.Addr) []BestChange {
	var changes []BestChange
	for prefix, e := range l.prefixes {
		for i, r := range e.routes {
			if r.Peer == peer {
				e.routes = append(e.routes[:i], e.routes[i+1:]...)
				l.numRtes--
				if change, ok := l.reselect(prefix, e); ok {
					changes = append(changes, change)
				}
				if len(e.routes) == 0 {
					delete(l.prefixes, prefix)
				}
				break
			}
		}
	}
	sortChanges(changes)
	return changes
}

// Reevaluate recomputes the best route for every prefix (after an IGP cost
// change, for example) and returns the changes sorted by prefix.
func (l *LocRib) Reevaluate() []BestChange {
	var changes []BestChange
	for prefix, e := range l.prefixes {
		if change, ok := l.reselect(prefix, e); ok {
			changes = append(changes, change)
		}
	}
	sortChanges(changes)
	return changes
}

func (l *LocRib) reselect(prefix netip.Prefix, e *prefixEntry) (BestChange, bool) {
	old := e.best
	best, step := l.decision.Best(e.routes)
	e.best, e.step = best, step
	if sameRoute(old, best) {
		return BestChange{}, false
	}
	return BestChange{Prefix: prefix, Old: old, New: best, Step: step}, true
}

// sameRoute reports whether the two routes are the same announcement:
// identical peer and attributes.
func sameRoute(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Peer == b.Peer && a.Attrs.Equal(b.Attrs)
}

// Best returns the current best route for prefix and the step that
// selected it.
func (l *LocRib) Best(prefix netip.Prefix) (*Route, Step) {
	e := l.prefixes[prefix]
	if e == nil {
		return nil, StepNone
	}
	return e.best, e.step
}

// Routes returns every candidate route for prefix (nil if unknown).
func (l *LocRib) Routes(prefix netip.Prefix) []*Route {
	e := l.prefixes[prefix]
	if e == nil {
		return nil
	}
	out := make([]*Route, len(e.routes))
	copy(out, e.routes)
	return out
}

// BestRoutes returns the best route of every prefix, sorted by prefix.
func (l *LocRib) BestRoutes() []*Route {
	out := make([]*Route, 0, len(l.prefixes))
	for _, e := range l.prefixes {
		if e.best != nil {
			out = append(out, e.best)
		}
	}
	sort.Slice(out, func(i, j int) bool { return prefixLess(out[i].Prefix, out[j].Prefix) })
	return out
}

// AllRoutes returns every candidate route across all prefixes, sorted by
// prefix then peer.
func (l *LocRib) AllRoutes() []*Route {
	out := make([]*Route, 0, l.numRtes)
	for _, e := range l.prefixes {
		out = append(out, e.routes...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix != out[j].Prefix {
			return prefixLess(out[i].Prefix, out[j].Prefix)
		}
		return out[i].Peer.Less(out[j].Peer)
	})
	return out
}

// NumPrefixes returns the number of prefixes with at least one route.
func (l *LocRib) NumPrefixes() int { return len(l.prefixes) }

// NumRoutes returns the total number of candidate routes.
func (l *LocRib) NumRoutes() int { return l.numRtes }

func prefixLess(a, b netip.Prefix) bool {
	if a.Addr() != b.Addr() {
		return a.Addr().Less(b.Addr())
	}
	return a.Bits() < b.Bits()
}

func sortChanges(changes []BestChange) {
	sort.Slice(changes, func(i, j int) bool { return prefixLess(changes[i].Prefix, changes[j].Prefix) })
}
