package rib

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"rex/internal/bgp"
)

var testTime = time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)

func mkAttrs(nexthop string, asns ...uint32) *bgp.PathAttrs {
	return &bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.Sequence(asns...),
		Nexthop: netip.MustParseAddr(nexthop),
	}
}

func mkRoute(prefix, peer, nexthop string, asns ...uint32) *Route {
	return &Route{
		Prefix:       netip.MustParsePrefix(prefix),
		Peer:         netip.MustParseAddr(peer),
		PeerRouterID: netip.MustParseAddr(peer),
		Attrs:        mkAttrs(nexthop, asns...),
		LearnedAt:    testTime,
	}
}

func TestAdjRibInAugmentsWithdrawals(t *testing.T) {
	peer := netip.MustParseAddr("128.32.1.3")
	rib := NewAdjRibIn(peer)
	if rib.Peer() != peer {
		t.Errorf("Peer = %v", rib.Peer())
	}
	prefix := netip.MustParsePrefix("192.96.10.0/24")
	attrs := mkAttrs("128.32.0.70", 11423, 209, 701, 1299, 5713)

	if old := rib.Update(prefix, attrs, false, peer, testTime); old != nil {
		t.Errorf("first update returned old route %v", old)
	}
	if rib.Len() != 1 {
		t.Errorf("Len = %d", rib.Len())
	}

	// Implicit withdrawal: replacement returns the previous route.
	attrs2 := mkAttrs("128.32.0.66", 11423, 11422, 209, 4519)
	old := rib.Update(prefix, attrs2, false, peer, testTime)
	if old == nil || !old.Attrs.Equal(attrs) {
		t.Fatalf("replacement old = %v", old)
	}

	// Explicit withdrawal: we recover the attributes being withdrawn.
	old = rib.Withdraw(prefix)
	if old == nil || !old.Attrs.Equal(attrs2) {
		t.Fatalf("withdraw old = %v", old)
	}
	if rib.Len() != 0 {
		t.Errorf("Len after withdraw = %d", rib.Len())
	}
	// Spurious withdrawal.
	if old := rib.Withdraw(prefix); old != nil {
		t.Errorf("spurious withdraw returned %v", old)
	}
}

func TestAdjRibInClearSorted(t *testing.T) {
	peer := netip.MustParseAddr("10.0.0.1")
	rib := NewAdjRibIn(peer)
	for _, s := range []string{"10.2.0.0/16", "10.1.0.0/16", "10.1.0.0/24"} {
		rib.Update(netip.MustParsePrefix(s), mkAttrs("10.0.0.9", 1), false, peer, testTime)
	}
	routes := rib.Clear()
	if len(routes) != 3 {
		t.Fatalf("Clear returned %d routes", len(routes))
	}
	want := []string{"10.1.0.0/16", "10.1.0.0/24", "10.2.0.0/16"}
	for i, w := range want {
		if routes[i].Prefix.String() != w {
			t.Errorf("routes[%d] = %v, want %s", i, routes[i].Prefix, w)
		}
	}
	if rib.Len() != 0 {
		t.Errorf("Len after Clear = %d", rib.Len())
	}
}

func TestAdjRibInWalkEarlyStop(t *testing.T) {
	peer := netip.MustParseAddr("10.0.0.1")
	rib := NewAdjRibIn(peer)
	for _, s := range []string{"10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16"} {
		rib.Update(netip.MustParsePrefix(s), mkAttrs("10.0.0.9", 1), false, peer, testTime)
	}
	n := 0
	rib.Walk(func(*Route) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("Walk visited %d, want 2", n)
	}
}

func TestDecisionLocalPref(t *testing.T) {
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200)
	a.Attrs.HasLocalPref, a.Attrs.LocalPref = true, 80
	b := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 100, 200, 300)
	b.Attrs.HasLocalPref, b.Attrs.LocalPref = true, 120
	best, step := Decision{}.Best([]*Route{a, b})
	if best != b || step != StepLocalPref {
		t.Errorf("best=%v step=%v, want b via local-pref", best, step)
	}
}

func TestDecisionDefaultLocalPref(t *testing.T) {
	// Absent LOCAL_PREF counts as 100.
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100)
	b := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 100)
	b.Attrs.HasLocalPref, b.Attrs.LocalPref = true, 99
	best, step := Decision{}.Best([]*Route{a, b})
	if best != a || step != StepLocalPref {
		t.Errorf("best=%v step=%v, want a (default 100 beats 99)", best, step)
	}
}

func TestDecisionASPathLen(t *testing.T) {
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200, 300)
	b := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 100, 200)
	best, step := Decision{}.Best([]*Route{a, b})
	if best != b || step != StepASPathLen {
		t.Errorf("best=%v step=%v", best, step)
	}
}

func TestDecisionOrigin(t *testing.T) {
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200)
	a.Attrs.Origin = bgp.OriginIncomplete
	b := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 100, 300)
	b.Attrs.Origin = bgp.OriginIGP
	best, step := Decision{}.Best([]*Route{a, b})
	if best != b || step != StepOrigin {
		t.Errorf("best=%v step=%v", best, step)
	}
}

func TestDecisionMEDSameNeighborAS(t *testing.T) {
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200)
	a.Attrs.HasMED, a.Attrs.MED = true, 50
	b := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 100, 300)
	b.Attrs.HasMED, b.Attrs.MED = true, 10
	best, step := Decision{}.Best([]*Route{a, b})
	if best != b || step != StepMED {
		t.Errorf("best=%v step=%v", best, step)
	}
}

func TestDecisionMEDDifferentNeighborASNotCompared(t *testing.T) {
	// Same length, different neighbor AS: MED must NOT discriminate, so
	// the decision falls through to router ID.
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200)
	a.Attrs.HasMED, a.Attrs.MED = true, 500
	b := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 300, 400)
	b.Attrs.HasMED, b.Attrs.MED = true, 10
	best, step := Decision{}.Best([]*Route{a, b})
	if best != a || step != StepRouterID {
		t.Errorf("best=%v step=%v, want a via router-id", best, step)
	}
	// With always-compare-med the lower MED wins regardless of AS.
	best, step = Decision{AlwaysCompareMED: true}.Best([]*Route{a, b})
	if best != b || step != StepMED {
		t.Errorf("always-compare: best=%v step=%v", best, step)
	}
}

func TestDecisionMEDLacksTotalOrdering(t *testing.T) {
	// The RFC 3345 ingredient: whether route A survives can depend on the
	// presence of an unrelated route C from A's neighbor AS. A beats B on
	// router ID when C is absent; C's lower MED eliminates A when C is
	// visible, flipping the winner to B.
	a := mkRoute("4.5.0.0/16", "1.1.1.1", "10.0.0.1", 200, 900) // AS2-ish, MED 50
	a.Attrs.HasMED, a.Attrs.MED = true, 50
	b := mkRoute("4.5.0.0/16", "2.2.2.2", "10.0.0.2", 100, 900) // AS1, no MED
	c := mkRoute("4.5.0.0/16", "3.3.3.3", "10.0.0.3", 200, 901) // AS2, MED 10
	c.Attrs.HasMED, c.Attrs.MED = true, 10
	c.Attrs.HasLocalPref, c.Attrs.LocalPref = true, 90 // make c itself unattractive overall

	bestWithoutC, _ := Decision{}.Best([]*Route{a, b})
	if bestWithoutC != a {
		t.Fatalf("without c best = %v, want a", bestWithoutC)
	}
	// c has lower local-pref, so it is eliminated at step 1 and cannot
	// shadow a. Raise its local-pref to default to let the MED rule bite.
	c.Attrs.HasLocalPref = false
	bestWithC, _ := Decision{}.Best([]*Route{a, b, c})
	if bestWithC != b {
		t.Fatalf("with c best = %v, want b (a killed by c's MED, c loses router-id)", bestWithC)
	}
}

func TestDecisionEBGPOverIBGP(t *testing.T) {
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200)
	b := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 100, 300)
	b.EBGP = true
	best, step := Decision{}.Best([]*Route{a, b})
	if best != b || step != StepEBGP {
		t.Errorf("best=%v step=%v", best, step)
	}
}

func TestDecisionIGPCost(t *testing.T) {
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200)
	b := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 100, 300)
	costs := map[netip.Addr]uint32{
		netip.MustParseAddr("10.0.0.1"): 20,
		netip.MustParseAddr("10.0.0.2"): 5,
	}
	d := Decision{IGPCost: func(nh netip.Addr) (uint32, bool) {
		c, ok := costs[nh]
		return c, ok
	}}
	best, step := d.Best([]*Route{a, b})
	if best != b || step != StepIGPCost {
		t.Errorf("best=%v step=%v", best, step)
	}
	// Unreachable nexthop excludes the route entirely.
	delete(costs, netip.MustParseAddr("10.0.0.2"))
	best, step = d.Best([]*Route{a, b})
	if best != a || step != StepOnlyRoute {
		t.Errorf("after unreachable: best=%v step=%v", best, step)
	}
	delete(costs, netip.MustParseAddr("10.0.0.1"))
	if best, step = d.Best([]*Route{a, b}); best != nil || step != StepNone {
		t.Errorf("all unreachable: best=%v step=%v", best, step)
	}
}

func TestDecisionTiebreakers(t *testing.T) {
	a := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.1", 100, 200)
	b := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.2", 100, 300)
	best, step := Decision{}.Best([]*Route{a, b})
	if best != b || step != StepRouterID {
		t.Errorf("best=%v step=%v", best, step)
	}
	// Same router ID, different peer address → peer-addr tiebreak.
	a.PeerRouterID = netip.MustParseAddr("9.9.9.9")
	b.PeerRouterID = netip.MustParseAddr("9.9.9.9")
	best, step = Decision{}.Best([]*Route{a, b})
	if best != b || step != StepPeerAddr {
		t.Errorf("best=%v step=%v", best, step)
	}
}

func TestDecisionEmptyAndNil(t *testing.T) {
	if best, step := (Decision{}).Best(nil); best != nil || step != StepNone {
		t.Errorf("empty: %v %v", best, step)
	}
	if best, step := (Decision{}).Best([]*Route{nil}); best != nil || step != StepNone {
		t.Errorf("nil route: %v %v", best, step)
	}
}

func TestDecisionPermutationInvariant(t *testing.T) {
	// The staged elimination must not depend on candidate order.
	routes := []*Route{
		mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200),
		mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 100, 300),
		mkRoute("10.0.0.0/8", "3.3.3.3", "10.0.0.3", 200, 300),
		mkRoute("10.0.0.0/8", "4.4.4.4", "10.0.0.4", 100, 500),
	}
	routes[0].Attrs.HasMED, routes[0].Attrs.MED = true, 30
	routes[1].Attrs.HasMED, routes[1].Attrs.MED = true, 10
	routes[3].EBGP = true

	want, _ := Decision{}.Best(routes)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		shuffled := append([]*Route(nil), routes...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		got, _ := Decision{}.Best(shuffled)
		if got != want {
			t.Fatalf("permutation %d changed best: %v vs %v", i, got, want)
		}
	}
}

func TestDecisionBestIsCandidateQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%6) + 1
		routes := make([]*Route, count)
		for i := range routes {
			peer := netip.AddrFrom4([4]byte{10, 0, byte(i), byte(rng.Intn(250) + 1)})
			r := &Route{
				Prefix:       netip.MustParsePrefix("10.0.0.0/8"),
				Peer:         peer,
				PeerRouterID: peer,
				Attrs: &bgp.PathAttrs{
					Origin:  bgp.Origin(rng.Intn(3)),
					ASPath:  bgp.Sequence(uint32(rng.Intn(3)+100), uint32(rng.Intn(1000))),
					Nexthop: netip.AddrFrom4([4]byte{10, 9, byte(i), 1}),
				},
				EBGP: rng.Intn(2) == 0,
			}
			if rng.Intn(2) == 0 {
				r.Attrs.HasMED, r.Attrs.MED = true, uint32(rng.Intn(100))
			}
			routes[i] = r
		}
		best, step := Decision{}.Best(routes)
		if best == nil || step == StepNone {
			return false
		}
		for _, r := range routes {
			if r == best {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLocRibUpdateWithdraw(t *testing.T) {
	l := NewLocRib(Decision{})
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200)
	change, ok := l.Update(a)
	if !ok || change.New != a || change.Old != nil {
		t.Fatalf("first update change=%+v ok=%v", change, ok)
	}
	// Worse route from another peer: no best change.
	b := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 100, 200, 300)
	if _, ok := l.Update(b); ok {
		t.Error("worse route changed best")
	}
	if l.NumRoutes() != 2 || l.NumPrefixes() != 1 {
		t.Errorf("counts = %d routes / %d prefixes", l.NumRoutes(), l.NumPrefixes())
	}
	// Withdraw the best: failover to b.
	change, ok = l.Withdraw(a.Peer, a.Prefix)
	if !ok || change.New != b || change.Old != a {
		t.Fatalf("withdraw change=%+v ok=%v", change, ok)
	}
	// Withdraw last: prefix disappears.
	change, ok = l.Withdraw(b.Peer, b.Prefix)
	if !ok || change.New != nil {
		t.Fatalf("final withdraw change=%+v ok=%v", change, ok)
	}
	if l.NumPrefixes() != 0 || l.NumRoutes() != 0 {
		t.Errorf("counts after drain = %d/%d", l.NumRoutes(), l.NumPrefixes())
	}
	// Withdrawing unknown is a no-op.
	if _, ok := l.Withdraw(b.Peer, b.Prefix); ok {
		t.Error("withdraw of unknown changed best")
	}
}

func TestLocRibImplicitReplace(t *testing.T) {
	l := NewLocRib(Decision{})
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200)
	l.Update(a)
	// Same peer re-announces with a longer path; still only route.
	a2 := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200, 300)
	change, ok := l.Update(a2)
	if !ok || change.New != a2 {
		t.Fatalf("replace change=%+v ok=%v", change, ok)
	}
	if l.NumRoutes() != 1 {
		t.Errorf("NumRoutes = %d after implicit replace", l.NumRoutes())
	}
	// Re-announcing identical attributes is not a best change.
	a3 := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200, 300)
	if _, ok := l.Update(a3); ok {
		t.Error("identical re-announce reported a change")
	}
}

func TestLocRibRemovePeer(t *testing.T) {
	l := NewLocRib(Decision{})
	for _, s := range []string{"10.1.0.0/16", "10.2.0.0/16"} {
		l.Update(mkRoute(s, "1.1.1.1", "10.0.0.1", 100, 200))
		l.Update(mkRoute(s, "2.2.2.2", "10.0.0.2", 100, 200, 300))
	}
	changes := l.RemovePeer(netip.MustParseAddr("1.1.1.1"))
	if len(changes) != 2 {
		t.Fatalf("RemovePeer changes = %d", len(changes))
	}
	if changes[0].Prefix.String() != "10.1.0.0/16" || changes[1].Prefix.String() != "10.2.0.0/16" {
		t.Errorf("changes unsorted: %v, %v", changes[0].Prefix, changes[1].Prefix)
	}
	for _, c := range changes {
		if c.New == nil || c.New.Peer != netip.MustParseAddr("2.2.2.2") {
			t.Errorf("failover missing: %+v", c)
		}
	}
	if l.NumRoutes() != 2 {
		t.Errorf("NumRoutes = %d", l.NumRoutes())
	}
}

func TestLocRibReevaluateOnIGPChange(t *testing.T) {
	costs := map[netip.Addr]uint32{
		netip.MustParseAddr("10.0.0.1"): 5,
		netip.MustParseAddr("10.0.0.2"): 10,
	}
	l := NewLocRib(Decision{IGPCost: func(nh netip.Addr) (uint32, bool) {
		c, ok := costs[nh]
		return c, ok
	}})
	a := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 100, 200)
	b := mkRoute("10.0.0.0/8", "2.2.2.2", "10.0.0.2", 100, 300)
	l.Update(a)
	l.Update(b)
	if best, _ := l.Best(a.Prefix); best != a {
		t.Fatalf("initial best = %v", best)
	}
	// IGP link metric change: nexthop .1 becomes expensive.
	costs[netip.MustParseAddr("10.0.0.1")] = 100
	changes := l.Reevaluate()
	if len(changes) != 1 || changes[0].New != b || changes[0].Step != StepIGPCost {
		t.Fatalf("reevaluate changes = %+v", changes)
	}
}

func TestLocRibAccessors(t *testing.T) {
	l := NewLocRib(Decision{})
	if best, step := l.Best(netip.MustParsePrefix("10.0.0.0/8")); best != nil || step != StepNone {
		t.Error("Best on empty rib")
	}
	if l.Routes(netip.MustParsePrefix("10.0.0.0/8")) != nil {
		t.Error("Routes on empty rib")
	}
	l.Update(mkRoute("10.2.0.0/16", "1.1.1.1", "10.0.0.1", 100))
	l.Update(mkRoute("10.1.0.0/16", "1.1.1.1", "10.0.0.1", 100))
	l.Update(mkRoute("10.1.0.0/16", "2.2.2.2", "10.0.0.2", 100, 200))
	best := l.BestRoutes()
	if len(best) != 2 || best[0].Prefix.String() != "10.1.0.0/16" {
		t.Errorf("BestRoutes = %v", best)
	}
	all := l.AllRoutes()
	if len(all) != 3 || all[0].Prefix.String() != "10.1.0.0/16" || !all[0].Peer.Less(all[1].Peer) {
		t.Errorf("AllRoutes = %v", all)
	}
	// Returned slice is a copy.
	rs := l.Routes(netip.MustParsePrefix("10.1.0.0/16"))
	rs[0] = nil
	if l.Routes(netip.MustParsePrefix("10.1.0.0/16"))[0] == nil {
		t.Error("Routes exposes internal storage")
	}
}

func TestRouteHelpers(t *testing.T) {
	r := mkRoute("10.0.0.0/8", "1.1.1.1", "10.0.0.1", 209, 701)
	if r.LocalPref() != DefaultLocalPref {
		t.Errorf("default LocalPref = %d", r.LocalPref())
	}
	if r.MED() != 0 {
		t.Errorf("default MED = %d", r.MED())
	}
	if r.NeighborAS() != 209 {
		t.Errorf("NeighborAS = %d", r.NeighborAS())
	}
	if r.Nexthop() != netip.MustParseAddr("10.0.0.1") {
		t.Errorf("Nexthop = %v", r.Nexthop())
	}
	clone := r.Clone()
	clone.Attrs.LocalPref, clone.Attrs.HasLocalPref = 50, true
	if r.Attrs.HasLocalPref {
		t.Error("Clone shares attrs")
	}
	var nilRoute *Route
	if nilRoute.Clone() != nil {
		t.Error("nil Clone")
	}
	bare := &Route{Prefix: netip.MustParsePrefix("10.0.0.0/8")}
	if bare.NeighborAS() != 0 || bare.Nexthop().IsValid() {
		t.Error("nil-attrs helpers")
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

// TestLocRibRandomOpsInvariants drives the Loc-RIB with random
// update/withdraw/remove-peer sequences and checks the bookkeeping
// invariants after every step.
func TestLocRibRandomOpsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	peers := []netip.Addr{
		netip.MustParseAddr("1.1.1.1"),
		netip.MustParseAddr("2.2.2.2"),
		netip.MustParseAddr("3.3.3.3"),
	}
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("10.1.0.0/16"),
		netip.MustParsePrefix("10.2.0.0/16"),
		netip.MustParsePrefix("10.3.0.0/16"),
		netip.MustParsePrefix("10.4.0.0/16"),
	}
	l := NewLocRib(Decision{})
	shadow := map[netip.Prefix]map[netip.Addr]bool{}
	for step := 0; step < 500; step++ {
		switch rng.Intn(5) {
		case 0, 1, 2: // update
			peer := peers[rng.Intn(len(peers))]
			prefix := prefixes[rng.Intn(len(prefixes))]
			r := mkRoute(prefix.String(), peer.String(), "10.0.0.9",
				uint32(rng.Intn(3)+1), uint32(rng.Intn(100)+10))
			l.Update(r)
			if shadow[prefix] == nil {
				shadow[prefix] = map[netip.Addr]bool{}
			}
			shadow[prefix][peer] = true
		case 3: // withdraw
			peer := peers[rng.Intn(len(peers))]
			prefix := prefixes[rng.Intn(len(prefixes))]
			l.Withdraw(peer, prefix)
			if shadow[prefix] != nil {
				delete(shadow[prefix], peer)
			}
		case 4: // remove peer
			peer := peers[rng.Intn(len(peers))]
			l.RemovePeer(peer)
			for _, m := range shadow {
				delete(m, peer)
			}
		}
		// Invariants: route count matches the shadow; every prefix's best
		// is one of its candidates; prefixes with no routes report none.
		want := 0
		for prefix, m := range shadow {
			want += len(m)
			best, step := l.Best(prefix)
			routes := l.Routes(prefix)
			if len(m) == 0 {
				if best != nil {
					t.Fatalf("step %d: best for empty prefix %v", step, prefix)
				}
				continue
			}
			if len(routes) != len(m) {
				t.Fatalf("step %d: %v candidates = %d, want %d", step, prefix, len(routes), len(m))
			}
			if best == nil {
				t.Fatalf("step %d: no best for %v with %d candidates", step, prefix, len(m))
			}
			found := false
			for _, r := range routes {
				if r == best {
					found = true
				}
			}
			if !found {
				t.Fatalf("step %d: best not among candidates", step)
			}
			_ = step
		}
		if l.NumRoutes() != want {
			t.Fatalf("step %d: NumRoutes = %d, want %d", step, l.NumRoutes(), want)
		}
	}
}

func TestAdjRibInStaleLifecycle(t *testing.T) {
	peer := netip.MustParseAddr("128.32.1.3")
	rib := NewAdjRibIn(peer)
	for i := 0; i < 4; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i + 1), 0, 0}), 16)
		rib.Update(p, mkAttrs("10.0.0.9", 1, uint32(100+i)), false, peer, testTime)
	}
	if n := rib.MarkAllStale(); n != 4 {
		t.Fatalf("MarkAllStale = %d, want 4", n)
	}
	if n := rib.StaleLen(); n != 4 {
		t.Fatalf("StaleLen = %d, want 4", n)
	}
	// The peer comes back and re-announces two prefixes: those routes are
	// replaced by fresh (non-stale) entries.
	for i := 0; i < 2; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i + 1), 0, 0}), 16)
		rib.Update(p, mkAttrs("10.0.0.9", 1, uint32(200+i)), false, peer, testTime)
	}
	if n := rib.StaleLen(); n != 2 {
		t.Fatalf("StaleLen after refresh = %d, want 2", n)
	}
	// End of the restart window: only the never-re-announced routes go.
	swept := rib.SweepStale()
	if len(swept) != 2 {
		t.Fatalf("SweepStale = %d routes, want 2", len(swept))
	}
	for i := 1; i < len(swept); i++ {
		if !swept[i-1].Prefix.Addr().Less(swept[i].Prefix.Addr()) {
			t.Errorf("sweep not sorted: %v before %v", swept[i-1].Prefix, swept[i].Prefix)
		}
	}
	for _, r := range swept {
		if !r.Stale || r.Attrs == nil {
			t.Errorf("swept route %v: stale=%v attrs=%v", r.Prefix, r.Stale, r.Attrs)
		}
	}
	if rib.Len() != 2 || rib.StaleLen() != 0 {
		t.Errorf("after sweep: Len=%d StaleLen=%d, want 2, 0", rib.Len(), rib.StaleLen())
	}
	// A second sweep finds nothing: end-of-restart withdrawals happen once.
	if again := rib.SweepStale(); len(again) != 0 {
		t.Errorf("second sweep returned %d routes", len(again))
	}
}
