// Package rib implements BGP routing information bases: the per-peer
// Adj-RIB-In the collector uses to augment withdrawals with their original
// path attributes (paper §II), and a Loc-RIB with the full BGP decision
// process (used by the simulator's routers, including the per-neighbor-AS
// MED comparison whose lack of total ordering produces the persistent
// oscillation of paper §IV-F / RFC 3345).
package rib

import (
	"fmt"
	"net/netip"
	"time"

	"rex/internal/bgp"
)

// Route is one BGP route: a prefix plus the path attributes it was heard
// with, tagged with the peer it came from.
type Route struct {
	Prefix netip.Prefix
	// Peer is the address of the BGP peer the route was learned from.
	Peer netip.Addr
	// PeerRouterID is the peer's BGP identifier, used as a decision
	// tiebreaker.
	PeerRouterID netip.Addr
	Attrs        *bgp.PathAttrs
	// EBGP records whether the route was learned over an external session;
	// eBGP routes are preferred over iBGP at step 5 of the decision.
	EBGP bool
	// LearnedAt is when the route was (last) installed.
	LearnedAt time.Time
	// Stale marks a route retained across a session loss under
	// graceful-restart semantics: the collector keeps the Adj-RIB-In for a
	// restart window instead of withdrawing immediately, and routes the
	// peer has not yet re-announced stay flagged until the window closes.
	Stale bool
}

// Clone returns a deep copy of the route.
func (r *Route) Clone() *Route {
	if r == nil {
		return nil
	}
	out := *r
	out.Attrs = r.Attrs.Clone()
	return &out
}

// LocalPref returns the route's LOCAL_PREF, defaulting to DefaultLocalPref
// when the attribute is absent.
func (r *Route) LocalPref() uint32 {
	if r.Attrs != nil && r.Attrs.HasLocalPref {
		return r.Attrs.LocalPref
	}
	return DefaultLocalPref
}

// MED returns the route's MULTI_EXIT_DISC, defaulting to 0 when absent.
func (r *Route) MED() uint32 {
	if r.Attrs != nil && r.Attrs.HasMED {
		return r.Attrs.MED
	}
	return 0
}

// NeighborAS returns the first AS on the path: the neighboring AS whose
// routes compete under the MED rule. Zero for locally originated routes.
func (r *Route) NeighborAS() uint32 {
	if r.Attrs == nil {
		return 0
	}
	return r.Attrs.ASPath.First()
}

// Nexthop returns the route's NEXT_HOP, or the zero Addr if unset.
func (r *Route) Nexthop() netip.Addr {
	if r.Attrs == nil {
		return netip.Addr{}
	}
	return r.Attrs.Nexthop
}

// String renders the route in a compact single-line form.
func (r *Route) String() string {
	return fmt.Sprintf("%v via %v (%v)", r.Prefix, r.Peer, r.Attrs)
}

// DefaultLocalPref is the LOCAL_PREF assumed when the attribute is absent.
const DefaultLocalPref = 100
