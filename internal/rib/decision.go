package rib

import "net/netip"

// Step identifies which rule of the BGP decision process selected the best
// route, for diagnostics ("why did the router prefer this path?").
type Step int

// Decision process steps, in evaluation order.
const (
	StepNone Step = iota
	StepOnlyRoute
	StepLocalPref
	StepASPathLen
	StepOrigin
	StepMED
	StepEBGP
	StepIGPCost
	StepRouterID
	StepPeerAddr
)

// String names the step for reports.
func (s Step) String() string {
	switch s {
	case StepNone:
		return "none"
	case StepOnlyRoute:
		return "only-route"
	case StepLocalPref:
		return "local-pref"
	case StepASPathLen:
		return "as-path-length"
	case StepOrigin:
		return "origin"
	case StepMED:
		return "med"
	case StepEBGP:
		return "ebgp-over-ibgp"
	case StepIGPCost:
		return "igp-cost"
	case StepRouterID:
		return "router-id"
	case StepPeerAddr:
		return "peer-addr"
	default:
		return "step(?)"
	}
}

// Decision configures the BGP best-path selection.
type Decision struct {
	// IGPCost returns the interior cost to reach a BGP nexthop. ok=false
	// marks the nexthop unreachable, excluding the route entirely. A nil
	// IGPCost treats every nexthop as reachable at cost 0.
	IGPCost func(nexthop netip.Addr) (cost uint32, ok bool)
	// AlwaysCompareMED compares MED across different neighbor ASes
	// (cisco's "bgp always-compare-med"). The default — per-neighbor-AS
	// comparison only — is what denies MED a total ordering and enables
	// the persistent oscillation of RFC 3345 / paper §IV-F.
	AlwaysCompareMED bool
}

// Best runs the decision process over candidates and returns the selected
// route plus the step that decided. It returns (nil, StepNone) when no
// candidate is usable (empty input or all nexthops unreachable).
func (d Decision) Best(candidates []*Route) (*Route, Step) {
	live := make([]*Route, 0, len(candidates))
	for _, r := range candidates {
		if r == nil {
			continue
		}
		if d.IGPCost != nil {
			if _, ok := d.IGPCost(r.Nexthop()); !ok {
				continue
			}
		}
		live = append(live, r)
	}
	switch len(live) {
	case 0:
		return nil, StepNone
	case 1:
		return live[0], StepOnlyRoute
	}

	// Step 1: highest LOCAL_PREF.
	live, decided := filterMax(live, func(r *Route) int64 { return int64(r.LocalPref()) })
	if decided {
		return live[0], StepLocalPref
	}
	// Step 2: shortest AS path.
	live, decided = filterMin(live, func(r *Route) int64 { return int64(r.Attrs.ASPath.Length()) })
	if decided {
		return live[0], StepASPathLen
	}
	// Step 3: lowest origin (IGP < EGP < INCOMPLETE).
	live, decided = filterMin(live, func(r *Route) int64 { return int64(r.Attrs.Origin) })
	if decided {
		return live[0], StepOrigin
	}
	// Step 4: MED. Only routes from the same neighboring AS compete,
	// unless AlwaysCompareMED. This group-wise elimination has no total
	// order across groups: which routes survive depends on what else is
	// visible, so hiding routes (e.g. behind route reflectors) can flip
	// the outcome — the root cause of persistent MED oscillation.
	live = d.medFilter(live)
	if len(live) == 1 {
		return live[0], StepMED
	}
	// Step 5: eBGP over iBGP.
	live, decided = filterMax(live, func(r *Route) int64 {
		if r.EBGP {
			return 1
		}
		return 0
	})
	if decided {
		return live[0], StepEBGP
	}
	// Step 6: lowest IGP cost to nexthop.
	if d.IGPCost != nil {
		live, decided = filterMin(live, func(r *Route) int64 {
			cost, _ := d.IGPCost(r.Nexthop())
			return int64(cost)
		})
		if decided {
			return live[0], StepIGPCost
		}
	}
	// Step 7: lowest peer router ID.
	live, decided = filterMin(live, func(r *Route) int64 { return addrKey(r.PeerRouterID) })
	if decided {
		return live[0], StepRouterID
	}
	// Step 8: lowest peer address.
	live, _ = filterMin(live, func(r *Route) int64 { return addrKey(r.Peer) })
	return live[0], StepPeerAddr
}

// medFilter eliminates, within each neighbor-AS group, every route whose
// MED exceeds the group minimum. With AlwaysCompareMED all routes form one
// group.
func (d Decision) medFilter(live []*Route) []*Route {
	groupMin := make(map[uint32]uint32, 4)
	key := func(r *Route) uint32 {
		if d.AlwaysCompareMED {
			return 0
		}
		return r.NeighborAS()
	}
	for _, r := range live {
		k := key(r)
		if cur, ok := groupMin[k]; !ok || r.MED() < cur {
			groupMin[k] = r.MED()
		}
	}
	out := live[:0]
	for _, r := range live {
		if r.MED() == groupMin[key(r)] {
			out = append(out, r)
		}
	}
	return out
}

// filterMax keeps the routes maximizing key; decided is true when exactly
// one survives.
func filterMax(live []*Route, key func(*Route) int64) ([]*Route, bool) {
	best := key(live[0])
	for _, r := range live[1:] {
		if k := key(r); k > best {
			best = k
		}
	}
	out := live[:0]
	for _, r := range live {
		if key(r) == best {
			out = append(out, r)
		}
	}
	return out, len(out) == 1
}

func filterMin(live []*Route, key func(*Route) int64) ([]*Route, bool) {
	return filterMax(live, func(r *Route) int64 { return -key(r) })
}

// addrKey maps an address to an ordered integer key. IPv4 addresses map to
// their 32-bit value; invalid addresses sort last.
func addrKey(a netip.Addr) int64 {
	if !a.Is4() {
		return int64(1) << 40
	}
	b := a.As4()
	return int64(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}
