package rib

import (
	"net/netip"
	"sort"
	"time"

	"rex/internal/bgp"
)

// AdjRibIn stores the routes heard from one peer, keyed by prefix. It is
// the structure the paper's collector keeps per peer so that an explicit
// withdrawal — which carries no attributes on the wire — can be augmented
// with the attributes of the route being withdrawn (paper §II).
//
// AdjRibIn is not safe for concurrent use; the collector serializes
// per-peer message processing.
type AdjRibIn struct {
	peer   netip.Addr
	routes map[netip.Prefix]*Route
}

// NewAdjRibIn returns an empty Adj-RIB-In for the given peer.
func NewAdjRibIn(peer netip.Addr) *AdjRibIn {
	return &AdjRibIn{peer: peer, routes: make(map[netip.Prefix]*Route)}
}

// Peer returns the peer this RIB belongs to.
func (rib *AdjRibIn) Peer() netip.Addr { return rib.peer }

// Len returns the number of prefixes currently held.
func (rib *AdjRibIn) Len() int { return len(rib.routes) }

// Update installs (or replaces) the route for prefix with the given
// attributes and returns the previous route, if any. A replacement is an
// implicit withdrawal of the previous route; the caller uses the returned
// route to emit the withdrawal-augmented event.
func (rib *AdjRibIn) Update(prefix netip.Prefix, attrs *bgp.PathAttrs, ebgp bool, routerID netip.Addr, now time.Time) *Route {
	old := rib.routes[prefix]
	rib.routes[prefix] = &Route{
		Prefix:       prefix,
		Peer:         rib.peer,
		PeerRouterID: routerID,
		Attrs:        attrs,
		EBGP:         ebgp,
		LearnedAt:    now,
	}
	return old
}

// Install inserts a copy of r as-is — LearnedAt, Stale flag and all —
// unless the prefix is already present. It is the recovery path's
// primitive: checkpointed routes re-enter the table exactly as they
// were, without fabricating a fresh LearnedAt, and never clobber a
// route a live session announced first. Reports whether r was
// installed.
func (rib *AdjRibIn) Install(r *Route) bool {
	if _, ok := rib.routes[r.Prefix]; ok {
		return false
	}
	rr := r.Clone()
	rr.Peer = rib.peer
	rib.routes[rr.Prefix] = rr
	return true
}

// Withdraw removes the route for prefix and returns it. It returns nil if
// the peer never announced the prefix (a spurious withdrawal).
func (rib *AdjRibIn) Withdraw(prefix netip.Prefix) *Route {
	old, ok := rib.routes[prefix]
	if !ok {
		return nil
	}
	delete(rib.routes, prefix)
	return old
}

// Get returns the current route for prefix, or nil.
func (rib *AdjRibIn) Get(prefix netip.Prefix) *Route { return rib.routes[prefix] }

// Clear drops every route (session reset) and returns the routes that were
// present, sorted by prefix for deterministic withdrawal event order.
func (rib *AdjRibIn) Clear() []*Route {
	out := rib.Routes()
	rib.routes = make(map[netip.Prefix]*Route)
	return out
}

// MarkAllStale flags every held route as stale and returns how many were
// flagged. The collector calls this when a peer's session drops but a
// graceful-restart window is open: routes stay usable (and visible to
// TAMP) while the peer is expected back, and a subsequent Update for the
// prefix installs a fresh (non-stale) route.
func (rib *AdjRibIn) MarkAllStale() int {
	for _, r := range rib.routes {
		r.Stale = true
	}
	return len(rib.routes)
}

// StaleLen returns the number of routes currently flagged stale.
func (rib *AdjRibIn) StaleLen() int {
	n := 0
	for _, r := range rib.routes {
		if r.Stale {
			n++
		}
	}
	return n
}

// SweepStale removes every stale route and returns them sorted by prefix
// (deterministic withdrawal order). The collector calls this at the end
// of a restart window: whatever the peer never re-announced is withdrawn.
func (rib *AdjRibIn) SweepStale() []*Route {
	out := make([]*Route, 0, len(rib.routes))
	for p, r := range rib.routes {
		if r.Stale {
			out = append(out, r)
			delete(rib.routes, p)
		}
	}
	sortRoutes(out)
	return out
}

// Routes returns all routes sorted by prefix.
func (rib *AdjRibIn) Routes() []*Route {
	out := make([]*Route, 0, len(rib.routes))
	for _, r := range rib.routes {
		out = append(out, r)
	}
	sortRoutes(out)
	return out
}

func sortRoutes(out []*Route) {
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Prefix, out[j].Prefix
		if pi.Addr() != pj.Addr() {
			return pi.Addr().Less(pj.Addr())
		}
		return pi.Bits() < pj.Bits()
	})
}

// Walk calls fn for every route in unspecified order, stopping early if fn
// returns false.
func (rib *AdjRibIn) Walk(fn func(*Route) bool) {
	for _, r := range rib.routes {
		if !fn(r) {
			return
		}
	}
}
