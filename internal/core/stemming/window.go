package stemming

import (
	"net/netip"
	"runtime"
	"sync"
	"time"

	"rex/internal/event"
)

// Window maintains the Stemming count tables over a sliding set of
// events, so a live feed can be decomposed repeatedly without re-counting
// the whole window each time. Events enter with Add and leave in arrival
// (FIFO) order with EvictBefore; both directions reuse the batch
// analysis' count arithmetic — eviction is an add with negative weight.
//
// Sub-sequence counting is sharded by a content hash of the event's
// prefix (see ShardFor): every event of one prefix lands in the same
// shard, so each shard owns a
// disjoint slice of the per-prefix event lists and the count tables merge
// by plain summation at snapshot time. Adds and evictions are buffered
// and settled in batches — by default one goroutine per shard, or on the
// caller's worker pool via Runner — which is what lets window turnover
// on ISP-scale streams use every core.
//
// A Window is NOT safe for concurrent use: one goroutine calls Add,
// EvictBefore and Snapshot. The parallelism is internal.
type Window struct {
	cfg    Config
	in     *interner
	shards []*countShard

	// OnSettle, when set, observes each batch settle: the wall-clock
	// time the parallel shard apply took and how many buffered ops it
	// drained. Set it before the first Add (the pipeline points it at a
	// latency histogram); nil costs nothing.
	OnSettle func(elapsed time.Duration, ops int)

	// Runner, when set, executes the n shard-settle tasks of a batch:
	// it must call run(i) exactly once for every i in [0, n), in any
	// order or concurrency (distinct tasks touch distinct shards), and
	// return only when all calls have finished. The parallel pipeline
	// points this at its worker pool; a sequential engine sets a plain
	// loop. Nil keeps the default: one goroutine per active shard. Set
	// it before the first Add and do not change it afterwards.
	Runner func(n int, run func(i int))

	// ring holds the live events; live IDs are [headID, nextID) and an
	// event with ID i lives at ring[i % len(ring)].
	ring           []winEvent
	headID, nextID uint64

	pendingOps  int
	settleBatch int

	// snap is the reused Snapshot scratch (slices regrown in place, maps
	// cleared with buckets retained); active is the settle loop's shard
	// scratch. Both exist so steady-state window turnover allocates
	// nothing beyond genuinely new interned sequences.
	snap   *analysis
	active []*countShard
}

// winEvent is one live event with its interned sequence entry.
type winEvent struct {
	ev    event.Event
	ent   *seqEntry
	shard int
	w     float64
}

// defaultSettleBatch is how many buffered ops trigger a parallel settle.
// Large enough to amortize the per-shard goroutine handoff, small enough
// that Snapshot never has more than one batch left to drain.
const defaultSettleBatch = 4096

// NewWindow builds an empty sliding window. shards <= 0 selects
// runtime.GOMAXPROCS(0). cfg is interpreted exactly as Analyze does.
func NewWindow(cfg Config, shards int) *Window {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	cfg = cfg.withDefaults()
	w := &Window{
		cfg:         cfg,
		in:          newInterner(cfg.MaxSubseqLen),
		shards:      make([]*countShard, shards),
		ring:        make([]winEvent, 1024),
		settleBatch: defaultSettleBatch,
	}
	for i := range w.shards {
		w.shards[i] = newCountShard()
	}
	return w
}

// Len returns the number of live events in the window.
func (w *Window) Len() int { return int(w.nextID - w.headID) }

// NumShards returns the count-shard parallelism the window was built
// with — the modulus of the prefix→shard assignment.
func (w *Window) NumShards() int { return len(w.shards) }

// ShardFor returns the shard index p's events land in. The assignment
// is a pure content hash of the prefix — NOT its intern-order ID — so
// it is identical across runs, machines, and recovery paths (a fresh
// stream and a checkpoint-seeded replay intern prefixes in different
// orders but shard them the same). The parallel pipeline uses the same
// assignment to route TAMP shadow updates, so one prefix's entire
// analysis state lives with one worker.
func (w *Window) ShardFor(p netip.Prefix) int {
	return shardOfPrefix(p, len(w.shards))
}

// shardOfPrefix is FNV-1a over the prefix's 16-byte address form plus
// its bit length, reduced mod n.
func shardOfPrefix(p netip.Prefix, n int) int {
	a := p.Addr().As16()
	h := uint32(2166136261)
	for _, b := range a {
		h ^= uint32(b)
		h *= 16777619
	}
	h ^= uint32(uint8(p.Bits()))
	h *= 16777619
	return int(h % uint32(n))
}

// Add appends one event to the window and returns the index of the
// count shard it was routed to.
func (w *Window) Add(e event.Event) int {
	ent := w.in.seqFor(&e)
	weight := 1.0
	if w.cfg.Weight != nil {
		// Hand the callback its own copy: &e flowing into an arbitrary
		// function would force every Add's argument onto the heap, even
		// with Weight unset.
		ec := e
		weight = w.cfg.Weight(&ec)
	}
	if w.nextID-w.headID == uint64(len(w.ring)) {
		w.grow()
	}
	id := w.nextID
	w.nextID++
	shard := shardOfPrefix(e.Prefix, len(w.shards))
	w.ring[id%uint64(len(w.ring))] = winEvent{ev: e, ent: ent, shard: shard, w: weight}
	sh := w.shards[shard]
	sh.pending = append(sh.pending, countOp{id: id, ent: ent, w: weight})
	w.pendingOps++
	if w.pendingOps >= w.settleBatch {
		w.settle()
	}
	return shard
}

// EvictBefore removes, in arrival order, the leading run of events whose
// time is before cutoff, and returns how many were evicted. An
// out-of-order event timed at or after cutoff stops the run: the window
// is FIFO over a near-time-ordered feed, matching how a collector emits.
// The settle threshold is checked inside the loop, so even a mass
// eviction — a recovery replay crossing a window boundary can evict the
// entire window in one call — never buffers more than one settle batch
// of pending ops.
func (w *Window) EvictBefore(cutoff time.Time) int {
	n := 0
	for w.headID < w.nextID {
		we := &w.ring[w.headID%uint64(len(w.ring))]
		if !we.ev.Time.Before(cutoff) {
			break
		}
		sh := w.shards[we.shard]
		sh.pending = append(sh.pending, countOp{id: w.headID, ent: we.ent, w: -we.w, evict: true})
		w.pendingOps++
		*we = winEvent{} // drop references so evicted attrs can be collected
		w.headID++
		n++
		if w.pendingOps >= w.settleBatch {
			w.settle()
		}
	}
	return n
}

// grow doubles the ring, repositioning live events by ID.
func (w *Window) grow() {
	old := w.ring
	bigger := make([]winEvent, 2*len(old))
	for id := w.headID; id < w.nextID; id++ {
		bigger[id%uint64(len(bigger))] = old[id%uint64(len(old))]
	}
	w.ring = bigger
}

// settle drains every shard's buffered ops into its count tables, in
// parallel when more than one shard has work.
func (w *Window) settle() {
	if w.pendingOps == 0 {
		return
	}
	ops := w.pendingOps
	w.pendingOps = 0
	var start time.Time
	if w.OnSettle != nil {
		start = time.Now()
	}
	active := w.active[:0]
	for _, sh := range w.shards {
		if len(sh.pending) > 0 {
			active = append(active, sh)
		}
	}
	w.active = active
	switch {
	case len(active) == 1:
		active[0].apply()
	case w.Runner != nil:
		w.Runner(len(active), func(i int) {
			active[i].apply()
		})
	default:
		var wg sync.WaitGroup
		for _, sh := range active {
			wg.Add(1)
			go func(sh *countShard) {
				defer wg.Done()
				sh.apply()
			}(sh)
		}
		wg.Wait()
	}
	if w.OnSettle != nil {
		w.OnSettle(time.Since(start), ops)
	}
}

// Events returns the live window contents in arrival order, freshly
// allocated.
func (w *Window) Events() event.Stream {
	return w.AppendEvents(make(event.Stream, 0, w.Len()))
}

// AppendEvents appends the live window contents in arrival order to dst
// and returns the extended slice — the allocation-free form of Events
// for callers that keep a reusable scratch buffer.
func (w *Window) AppendEvents(dst event.Stream) event.Stream {
	for id := w.headID; id < w.nextID; id++ {
		dst = append(dst, w.ring[id%uint64(len(w.ring))].ev)
	}
	return dst
}

// TimeRange returns the earliest and latest event times among the live
// window contents, scanning in place. ok is false for an empty window.
func (w *Window) TimeRange() (first, last time.Time, ok bool) {
	if w.headID == w.nextID {
		return time.Time{}, time.Time{}, false
	}
	first = w.ring[w.headID%uint64(len(w.ring))].ev.Time
	last = first
	for id := w.headID + 1; id < w.nextID; id++ {
		t := w.ring[id%uint64(len(w.ring))].ev.Time
		if t.Before(first) {
			first = t
		}
		if t.After(last) {
			last = t
		}
	}
	return first, last, true
}

// Snapshot decomposes the current window contents into components,
// strongest first — the same result Analyze would produce on the slice
// Events() returns, computed from the incrementally maintained tables.
// The window itself is not modified; Add/Evict may continue afterwards.
// The analysis scratch (per-event slices, the merged count table and the
// per-prefix index lists) is owned by the window and reused across
// calls, so a steady-state snapshot allocates only its result.
func (w *Window) Snapshot() []Component {
	w.settle()
	n := w.Len()
	if n == 0 {
		return nil
	}
	if w.snap == nil {
		w.snap = &analysis{cfg: w.cfg, in: w.in}
	}
	a := w.snap
	a.reset(n)
	for i := 0; i < n; i++ {
		we := &w.ring[(w.headID+uint64(i))%uint64(len(w.ring))]
		a.stream[i] = we.ev
		a.ents[i] = we.ent
		a.weights[i] = we.w
		a.alive[i] = true
	}
	// Merge: each prefix lives in exactly one shard, so the per-prefix
	// lists never collide and counts merge by summation. The extraction
	// loop mutates its copy; the shard tables stay authoritative.
	for _, sh := range w.shards {
		sh.mergeCounts(a.counts)
		a.idxArena = sh.mergeEvents(a.eventsByPrefix, w.headID, a.idxArena)
	}
	var out []Component
	for len(out) < a.cfg.MaxComponents {
		comp, ok := a.extract()
		if !ok {
			break
		}
		out = append(out, comp)
	}
	return out
}
