package stemming

import (
	"runtime"
	"sync"
	"time"

	"rex/internal/event"
)

// Window maintains the Stemming count tables over a sliding set of
// events, so a live feed can be decomposed repeatedly without re-counting
// the whole window each time. Events enter with Add and leave in arrival
// (FIFO) order with EvictBefore; both directions reuse the batch
// analysis' count arithmetic — eviction is an add with negative weight.
//
// Sub-sequence counting is sharded by the event's interned prefix ID:
// every event of one prefix lands in the same shard, so each shard owns a
// disjoint slice of the per-prefix event lists and the count tables merge
// by plain summation at snapshot time. Adds and evictions are buffered
// and settled in batches, one goroutine per shard, which is what lets
// window turnover on ISP-scale streams use every core.
//
// A Window is NOT safe for concurrent use: one goroutine calls Add,
// EvictBefore and Snapshot. The parallelism is internal.
type Window struct {
	cfg    Config
	in     *interner
	shards []*winShard

	// OnSettle, when set, observes each batch settle: the wall-clock
	// time the parallel shard apply took and how many buffered ops it
	// drained. Set it before the first Add (the pipeline points it at a
	// latency histogram); nil costs nothing.
	OnSettle func(elapsed time.Duration, ops int)

	// ring holds the live events; live IDs are [headID, nextID) and an
	// event with ID i lives at ring[i % len(ring)].
	ring           []winEvent
	headID, nextID uint64

	pendingOps  int
	settleBatch int
}

// winEvent is one live event with its interned sequence form.
type winEvent struct {
	ev  event.Event
	seq []uint32
	raw []byte
	pid uint32
	w   float64
}

// winOp is one buffered shard operation. Ops carry their own seq/raw
// references so a ring slot can be reused before its eviction settles.
type winOp struct {
	id    uint64
	seq   []uint32
	raw   []byte
	pid   uint32
	w     float64
	evict bool
}

// winShard owns the counts for the prefixes hashed to it.
type winShard struct {
	counts   map[string]float64
	byPrefix map[uint32][]uint64 // live event IDs per prefix, arrival order
	pending  []winOp
}

// defaultSettleBatch is how many buffered ops trigger a parallel settle.
// Large enough to amortize the per-shard goroutine handoff, small enough
// that Snapshot never has more than one batch left to drain.
const defaultSettleBatch = 4096

// NewWindow builds an empty sliding window. shards <= 0 selects
// runtime.GOMAXPROCS(0). cfg is interpreted exactly as Analyze does.
func NewWindow(cfg Config, shards int) *Window {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	w := &Window{
		cfg:         cfg.withDefaults(),
		in:          newInterner(),
		shards:      make([]*winShard, shards),
		ring:        make([]winEvent, 1024),
		settleBatch: defaultSettleBatch,
	}
	for i := range w.shards {
		w.shards[i] = &winShard{
			counts:   make(map[string]float64, 1024),
			byPrefix: make(map[uint32][]uint64, 64),
		}
	}
	return w
}

// Len returns the number of live events in the window.
func (w *Window) Len() int { return int(w.nextID - w.headID) }

func (w *Window) shardOf(pid uint32) *winShard {
	return w.shards[pid%uint32(len(w.shards))]
}

// Add appends one event to the window.
func (w *Window) Add(e event.Event) {
	seq, pid := w.in.eventSeq(&e)
	raw := encodeSeq(seq)
	weight := 1.0
	if w.cfg.Weight != nil {
		weight = w.cfg.Weight(&e)
	}
	if w.nextID-w.headID == uint64(len(w.ring)) {
		w.grow()
	}
	id := w.nextID
	w.nextID++
	w.ring[id%uint64(len(w.ring))] = winEvent{ev: e, seq: seq, raw: raw, pid: pid, w: weight}
	sh := w.shardOf(pid)
	sh.pending = append(sh.pending, winOp{id: id, seq: seq, raw: raw, pid: pid, w: weight})
	w.pendingOps++
	if w.pendingOps >= w.settleBatch {
		w.settle()
	}
}

// EvictBefore removes, in arrival order, the leading run of events whose
// time is before cutoff, and returns how many were evicted. An
// out-of-order event timed at or after cutoff stops the run: the window
// is FIFO over a near-time-ordered feed, matching how a collector emits.
func (w *Window) EvictBefore(cutoff time.Time) int {
	n := 0
	for w.headID < w.nextID {
		we := &w.ring[w.headID%uint64(len(w.ring))]
		if !we.ev.Time.Before(cutoff) {
			break
		}
		sh := w.shardOf(we.pid)
		sh.pending = append(sh.pending, winOp{id: w.headID, seq: we.seq, raw: we.raw, pid: we.pid, w: -we.w, evict: true})
		w.pendingOps++
		*we = winEvent{} // drop references so evicted attrs can be collected
		w.headID++
		n++
	}
	if w.pendingOps >= w.settleBatch {
		w.settle()
	}
	return n
}

// grow doubles the ring, repositioning live events by ID.
func (w *Window) grow() {
	old := w.ring
	bigger := make([]winEvent, 2*len(old))
	for id := w.headID; id < w.nextID; id++ {
		bigger[id%uint64(len(bigger))] = old[id%uint64(len(old))]
	}
	w.ring = bigger
}

// settle drains every shard's buffered ops into its count tables, in
// parallel when more than one shard has work.
func (w *Window) settle() {
	if w.pendingOps == 0 {
		return
	}
	ops := w.pendingOps
	w.pendingOps = 0
	var start time.Time
	if w.OnSettle != nil {
		start = time.Now()
	}
	var active []*winShard
	for _, sh := range w.shards {
		if len(sh.pending) > 0 {
			active = append(active, sh)
		}
	}
	if len(active) == 1 {
		active[0].apply(w.cfg.MaxSubseqLen)
	} else {
		var wg sync.WaitGroup
		for _, sh := range active {
			wg.Add(1)
			go func(sh *winShard) {
				defer wg.Done()
				sh.apply(w.cfg.MaxSubseqLen)
			}(sh)
		}
		wg.Wait()
	}
	if w.OnSettle != nil {
		w.OnSettle(time.Since(start), ops)
	}
}

// apply replays the shard's buffered ops in order.
func (sh *winShard) apply(maxSubseqLen int) {
	for _, op := range sh.pending {
		addSubseqCounts(sh.counts, op.seq, op.raw, maxSubseqLen, op.w)
		if !op.evict {
			sh.byPrefix[op.pid] = append(sh.byPrefix[op.pid], op.id)
			continue
		}
		l := sh.byPrefix[op.pid]
		if len(l) > 0 && l[0] == op.id {
			// FIFO eviction always removes the list head.
			l = l[1:]
		} else {
			for i, id := range l {
				if id == op.id {
					l = append(l[:i], l[i+1:]...)
					break
				}
			}
		}
		if len(l) == 0 {
			delete(sh.byPrefix, op.pid)
		} else {
			sh.byPrefix[op.pid] = l
		}
	}
	sh.pending = sh.pending[:0]
}

// Events returns the live window contents in arrival order.
func (w *Window) Events() event.Stream {
	out := make(event.Stream, 0, w.Len())
	for id := w.headID; id < w.nextID; id++ {
		out = append(out, w.ring[id%uint64(len(w.ring))].ev)
	}
	return out
}

// Snapshot decomposes the current window contents into components,
// strongest first — the same result Analyze would produce on the slice
// Events() returns, computed from the incrementally maintained tables.
// The window itself is not modified; Add/Evict may continue afterwards.
func (w *Window) Snapshot() []Component {
	w.settle()
	n := w.Len()
	if n == 0 {
		return nil
	}
	total := 0
	for _, sh := range w.shards {
		total += len(sh.counts)
	}
	a := &analysis{
		cfg:            w.cfg,
		in:             w.in,
		stream:         make(event.Stream, n),
		seqs:           make([][]uint32, n),
		seqBytes:       make([][]byte, n),
		weights:        make([]float64, n),
		prefixID:       make([]uint32, n),
		alive:          make([]bool, n),
		liveN:          n,
		counts:         make(map[string]float64, total),
		eventsByPrefix: make(map[uint32][]int, 64),
	}
	for i := 0; i < n; i++ {
		we := &w.ring[(w.headID+uint64(i))%uint64(len(w.ring))]
		a.stream[i] = we.ev
		a.seqs[i] = we.seq
		a.seqBytes[i] = we.raw
		a.weights[i] = we.w
		a.prefixID[i] = we.pid
		a.alive[i] = true
	}
	// Merge: each prefix lives in exactly one shard, so the per-prefix
	// lists never collide and counts merge by summation. The extraction
	// loop mutates its copy; the shard tables stay authoritative.
	for _, sh := range w.shards {
		for k, c := range sh.counts {
			a.counts[k] += c
		}
		for pid, ids := range sh.byPrefix {
			idxs := make([]int, len(ids))
			for i, id := range ids {
				idxs[i] = int(id - w.headID)
			}
			a.eventsByPrefix[pid] = idxs
		}
	}
	var out []Component
	for len(out) < a.cfg.MaxComponents {
		comp, ok := a.extract()
		if !ok {
			break
		}
		out = append(out, comp)
	}
	return out
}
