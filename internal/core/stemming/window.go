package stemming

import (
	"net/netip"
	"runtime"
	"sync"
	"time"

	"rex/internal/event"
)

// Window maintains the Stemming count tables over a sliding set of
// events, so a live feed can be decomposed repeatedly without re-counting
// the whole window each time. Events enter with Add and leave in arrival
// (FIFO) order with EvictBefore; both directions reuse the batch
// analysis' count arithmetic — eviction is an add with negative weight.
//
// Sub-sequence counting is sharded by a content hash of the event's
// prefix (see ShardFor): every event of one prefix lands in the same
// shard, so each shard owns a
// disjoint slice of the per-prefix event lists and the count tables merge
// by plain summation at snapshot time. Adds and evictions are buffered
// and settled in batches — by default one goroutine per shard, or on the
// caller's worker pool via Runner — which is what lets window turnover
// on ISP-scale streams use every core.
//
// A Window is NOT safe for concurrent use: one goroutine calls Add,
// EvictBefore and Snapshot. The parallelism is internal.
type Window struct {
	cfg    Config
	in     *interner
	shards []*countShard

	// OnSettle, when set, observes each batch settle: the wall-clock
	// time the parallel shard apply took and how many buffered ops it
	// drained. Set it before the first Add (the pipeline points it at a
	// latency histogram); nil costs nothing.
	OnSettle func(elapsed time.Duration, ops int)

	// Runner, when set, executes the n shard-settle tasks of a batch:
	// it must call run(i) exactly once for every i in [0, n), in any
	// order or concurrency (distinct tasks touch distinct shards), and
	// return only when all calls have finished. The parallel pipeline
	// points this at its worker pool; a sequential engine sets a plain
	// loop. Nil keeps the default: one goroutine per active shard. Set
	// it before the first Add and do not change it afterwards.
	Runner func(n int, run func(i int))

	// ring holds the live events; live IDs are [headID, nextID) and an
	// event with ID i lives at ring[i % len(ring)].
	ring           []winEvent
	headID, nextID uint64

	pendingOps  int
	settleBatch int
}

// winEvent is one live event with its interned sequence form.
type winEvent struct {
	ev    event.Event
	seq   []uint32
	raw   []byte
	pid   uint32
	shard int
	w     float64
}

// defaultSettleBatch is how many buffered ops trigger a parallel settle.
// Large enough to amortize the per-shard goroutine handoff, small enough
// that Snapshot never has more than one batch left to drain.
const defaultSettleBatch = 4096

// NewWindow builds an empty sliding window. shards <= 0 selects
// runtime.GOMAXPROCS(0). cfg is interpreted exactly as Analyze does.
func NewWindow(cfg Config, shards int) *Window {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	w := &Window{
		cfg:         cfg.withDefaults(),
		in:          newInterner(),
		shards:      make([]*countShard, shards),
		ring:        make([]winEvent, 1024),
		settleBatch: defaultSettleBatch,
	}
	for i := range w.shards {
		w.shards[i] = newCountShard()
	}
	return w
}

// Len returns the number of live events in the window.
func (w *Window) Len() int { return int(w.nextID - w.headID) }

// NumShards returns the count-shard parallelism the window was built
// with — the modulus of the prefix→shard assignment.
func (w *Window) NumShards() int { return len(w.shards) }

// ShardFor returns the shard index p's events land in. The assignment
// is a pure content hash of the prefix — NOT its intern-order ID — so
// it is identical across runs, machines, and recovery paths (a fresh
// stream and a checkpoint-seeded replay intern prefixes in different
// orders but shard them the same). The parallel pipeline uses the same
// assignment to route TAMP shadow updates, so one prefix's entire
// analysis state lives with one worker.
func (w *Window) ShardFor(p netip.Prefix) int {
	return shardOfPrefix(p, len(w.shards))
}

// shardOfPrefix is FNV-1a over the prefix's 16-byte address form plus
// its bit length, reduced mod n.
func shardOfPrefix(p netip.Prefix, n int) int {
	a := p.Addr().As16()
	h := uint32(2166136261)
	for _, b := range a {
		h ^= uint32(b)
		h *= 16777619
	}
	h ^= uint32(uint8(p.Bits()))
	h *= 16777619
	return int(h % uint32(n))
}

// Add appends one event to the window and returns the index of the
// count shard it was routed to.
func (w *Window) Add(e event.Event) int {
	seq, pid := w.in.eventSeq(&e)
	raw := encodeSeq(seq)
	weight := 1.0
	if w.cfg.Weight != nil {
		weight = w.cfg.Weight(&e)
	}
	if w.nextID-w.headID == uint64(len(w.ring)) {
		w.grow()
	}
	id := w.nextID
	w.nextID++
	shard := shardOfPrefix(e.Prefix, len(w.shards))
	w.ring[id%uint64(len(w.ring))] = winEvent{ev: e, seq: seq, raw: raw, pid: pid, shard: shard, w: weight}
	sh := w.shards[shard]
	sh.pending = append(sh.pending, countOp{id: id, seq: seq, raw: raw, pid: pid, w: weight})
	w.pendingOps++
	if w.pendingOps >= w.settleBatch {
		w.settle()
	}
	return shard
}

// EvictBefore removes, in arrival order, the leading run of events whose
// time is before cutoff, and returns how many were evicted. An
// out-of-order event timed at or after cutoff stops the run: the window
// is FIFO over a near-time-ordered feed, matching how a collector emits.
func (w *Window) EvictBefore(cutoff time.Time) int {
	n := 0
	for w.headID < w.nextID {
		we := &w.ring[w.headID%uint64(len(w.ring))]
		if !we.ev.Time.Before(cutoff) {
			break
		}
		sh := w.shards[we.shard]
		sh.pending = append(sh.pending, countOp{id: w.headID, seq: we.seq, raw: we.raw, pid: we.pid, w: -we.w, evict: true})
		w.pendingOps++
		*we = winEvent{} // drop references so evicted attrs can be collected
		w.headID++
		n++
	}
	if w.pendingOps >= w.settleBatch {
		w.settle()
	}
	return n
}

// grow doubles the ring, repositioning live events by ID.
func (w *Window) grow() {
	old := w.ring
	bigger := make([]winEvent, 2*len(old))
	for id := w.headID; id < w.nextID; id++ {
		bigger[id%uint64(len(bigger))] = old[id%uint64(len(old))]
	}
	w.ring = bigger
}

// settle drains every shard's buffered ops into its count tables, in
// parallel when more than one shard has work.
func (w *Window) settle() {
	if w.pendingOps == 0 {
		return
	}
	ops := w.pendingOps
	w.pendingOps = 0
	var start time.Time
	if w.OnSettle != nil {
		start = time.Now()
	}
	var active []*countShard
	for _, sh := range w.shards {
		if len(sh.pending) > 0 {
			active = append(active, sh)
		}
	}
	switch {
	case len(active) == 1:
		active[0].apply(w.cfg.MaxSubseqLen)
	case w.Runner != nil:
		w.Runner(len(active), func(i int) {
			active[i].apply(w.cfg.MaxSubseqLen)
		})
	default:
		var wg sync.WaitGroup
		for _, sh := range active {
			wg.Add(1)
			go func(sh *countShard) {
				defer wg.Done()
				sh.apply(w.cfg.MaxSubseqLen)
			}(sh)
		}
		wg.Wait()
	}
	if w.OnSettle != nil {
		w.OnSettle(time.Since(start), ops)
	}
}

// Events returns the live window contents in arrival order.
func (w *Window) Events() event.Stream {
	out := make(event.Stream, 0, w.Len())
	for id := w.headID; id < w.nextID; id++ {
		out = append(out, w.ring[id%uint64(len(w.ring))].ev)
	}
	return out
}

// Snapshot decomposes the current window contents into components,
// strongest first — the same result Analyze would produce on the slice
// Events() returns, computed from the incrementally maintained tables.
// The window itself is not modified; Add/Evict may continue afterwards.
func (w *Window) Snapshot() []Component {
	w.settle()
	n := w.Len()
	if n == 0 {
		return nil
	}
	total := 0
	for _, sh := range w.shards {
		total += len(sh.counts)
	}
	a := &analysis{
		cfg:            w.cfg,
		in:             w.in,
		stream:         make(event.Stream, n),
		seqs:           make([][]uint32, n),
		seqBytes:       make([][]byte, n),
		weights:        make([]float64, n),
		prefixID:       make([]uint32, n),
		alive:          make([]bool, n),
		liveN:          n,
		counts:         make(map[string]float64, total),
		eventsByPrefix: make(map[uint32][]int, 64),
	}
	for i := 0; i < n; i++ {
		we := &w.ring[(w.headID+uint64(i))%uint64(len(w.ring))]
		a.stream[i] = we.ev
		a.seqs[i] = we.seq
		a.seqBytes[i] = we.raw
		a.weights[i] = we.w
		a.prefixID[i] = we.pid
		a.alive[i] = true
	}
	// Merge: each prefix lives in exactly one shard, so the per-prefix
	// lists never collide and counts merge by summation. The extraction
	// loop mutates its copy; the shard tables stay authoritative.
	for _, sh := range w.shards {
		sh.mergeCounts(a.counts)
		sh.mergeEvents(a.eventsByPrefix, w.headID)
	}
	var out []Component
	for len(out) < a.cfg.MaxComponents {
		comp, ok := a.extract()
		if !ok {
			break
		}
		out = append(out, comp)
	}
	return out
}
