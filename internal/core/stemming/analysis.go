package stemming

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"

	"rex/internal/event"
)

// Token IDs pack a kind (top 2 bits) and an intern-table index (low 30
// bits) into a uint32, so sequences are flat []uint32 and sub-sequence
// keys are compact byte strings.
const (
	kindShift        = 30
	idxMask   uint32 = (1 << kindShift) - 1
	idBytes          = 4

	// maxInternEntries bounds each intern table: past 2^30 entries an
	// index would bleed into the kind bits and packID would silently
	// corrupt both fields. The tables fail loudly instead.
	maxInternEntries = 1 << kindShift
)

// internIdx converts an intern-table length to the next index, panicking
// (with context) before the index could overflow into the kind bits.
func internIdx(n int, what string) uint32 {
	if n >= maxInternEntries {
		panic(fmt.Sprintf("stemming: %s intern table full (%d entries): token ID space exhausted", what, n))
	}
	return uint32(n)
}

func packID(k Kind, idx uint32) uint32 { return uint32(k-1)<<kindShift | idx }

func unpackID(id uint32) (Kind, uint32) { return Kind(id>>kindShift) + 1, id & idxMask }

// interner assigns dense IDs to peers, nexthops, ASNs and prefixes, and
// interns whole event sequences (see seqEntry). Intern tables only grow;
// a long-lived Window's interner retains every distinct token and
// sequence it has ever seen, which is the deliberate trade that makes
// the steady-state count path allocation-free.
type interner struct {
	peerIDs map[netip.Addr]uint32
	nhIDs   map[netip.Addr]uint32
	asIDs   map[uint32]uint32
	pfxIDs  map[netip.Prefix]uint32
	peers   []netip.Addr
	nhs     []netip.Addr
	asns    []uint32
	pfxs    []netip.Prefix

	// Sequence interning: one entry per distinct packed sequence, keyed
	// by the big-endian byte form. maxSubseqLen is fixed at construction
	// (it shapes each entry's cached key set).
	seqs         map[string]*seqEntry
	maxSubseqLen int
	scratchSeq   []uint32
	scratchRaw   []byte
}

// seqEntry is one interned event sequence: the packed token IDs, their
// byte encoding, the prefix ID (always the last token), and every
// contiguous sub-sequence key of >= 2 tokens, materialized once. The
// keys all share ent.raw's backing string, so an entry costs a handful
// of allocations no matter how often its sequence recurs — count-table
// updates then reuse these strings and allocate nothing.
type seqEntry struct {
	seq  []uint32
	raw  []byte
	pid  uint32
	keys []string
}

func newInterner(maxSubseqLen int) *interner {
	return &interner{
		peerIDs:      make(map[netip.Addr]uint32),
		nhIDs:        make(map[netip.Addr]uint32),
		asIDs:        make(map[uint32]uint32),
		pfxIDs:       make(map[netip.Prefix]uint32),
		seqs:         make(map[string]*seqEntry),
		maxSubseqLen: maxSubseqLen,
	}
}

func (in *interner) peer(a netip.Addr) uint32 {
	id, ok := in.peerIDs[a]
	if !ok {
		id = packID(KindPeer, internIdx(len(in.peers), "peer"))
		in.peerIDs[a] = id
		in.peers = append(in.peers, a)
	}
	return id
}

func (in *interner) nexthop(a netip.Addr) uint32 {
	id, ok := in.nhIDs[a]
	if !ok {
		id = packID(KindNexthop, internIdx(len(in.nhs), "nexthop"))
		in.nhIDs[a] = id
		in.nhs = append(in.nhs, a)
	}
	return id
}

func (in *interner) as(asn uint32) uint32 {
	id, ok := in.asIDs[asn]
	if !ok {
		id = packID(KindAS, internIdx(len(in.asns), "AS"))
		in.asIDs[asn] = id
		in.asns = append(in.asns, asn)
	}
	return id
}

func (in *interner) prefix(p netip.Prefix) uint32 {
	id, ok := in.pfxIDs[p]
	if !ok {
		id = packID(KindPrefix, internIdx(len(in.pfxs), "prefix"))
		in.pfxIDs[p] = id
		in.pfxs = append(in.pfxs, p)
	}
	return id
}

// tokenCompare orders two token IDs by decoded content: kind first, then
// the kind's natural value order. Unlike comparing the IDs themselves,
// the result does not depend on the order values were interned in.
func (in *interner) tokenCompare(a, b uint32) int {
	if a == b {
		return 0
	}
	ka, ia := unpackID(a)
	kb, ib := unpackID(b)
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case KindPeer:
		return in.peers[ia].Compare(in.peers[ib])
	case KindNexthop:
		return in.nhs[ia].Compare(in.nhs[ib])
	case KindAS:
		switch x, y := in.asns[ia], in.asns[ib]; {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case KindPrefix:
		pa, pb := in.pfxs[ia], in.pfxs[ib]
		if c := pa.Addr().Compare(pb.Addr()); c != 0 {
			return c
		}
		switch {
		case pa.Bits() < pb.Bits():
			return -1
		case pa.Bits() > pb.Bits():
			return 1
		}
	}
	return 0
}

// keyLess orders two equal-length sub-sequence keys token by token using
// tokenCompare.
func (in *interner) keyLess(a, b string) bool {
	for off := 0; off+idBytes <= len(a) && off+idBytes <= len(b); off += idBytes {
		ida := uint32(a[off])<<24 | uint32(a[off+1])<<16 | uint32(a[off+2])<<8 | uint32(a[off+3])
		idb := uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
		if c := in.tokenCompare(ida, idb); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// token decodes an ID back to display form.
func (in *interner) token(id uint32) Token {
	kind, idx := unpackID(id)
	t := Token{Kind: kind}
	switch kind {
	case KindPeer:
		t.Addr = in.peers[idx]
	case KindNexthop:
		t.Addr = in.nhs[idx]
	case KindAS:
		t.AS = in.asns[idx]
	case KindPrefix:
		t.Prefix = in.pfxs[idx]
	}
	return t
}

type analysis struct {
	cfg    Config
	stream event.Stream
	in     *interner

	ents    []*seqEntry // per-event interned sequence
	weights []float64
	alive   []bool
	liveN   int

	counts         map[string]float64
	eventsByPrefix map[uint32][]int
	// idxArena backs eventsByPrefix's value slices when the analysis is
	// a Window's reused snapshot scratch (see Window.Snapshot); the batch
	// path builds the lists by plain append instead.
	idxArena []int
}

func newAnalysis(s event.Stream, cfg Config) *analysis {
	a := &analysis{
		cfg:            cfg,
		stream:         s,
		in:             newInterner(cfg.MaxSubseqLen),
		ents:           make([]*seqEntry, len(s)),
		weights:        make([]float64, len(s)),
		alive:          make([]bool, len(s)),
		liveN:          len(s),
		counts:         make(map[string]float64, len(s)*8),
		eventsByPrefix: make(map[uint32][]int, len(s)/2),
	}
	for i := range s {
		e := &s[i]
		ent := a.in.seqFor(e)
		a.ents[i] = ent
		a.alive[i] = true
		w := 1.0
		if cfg.Weight != nil {
			w = cfg.Weight(e)
		}
		a.weights[i] = w
		a.eventsByPrefix[ent.pid] = append(a.eventsByPrefix[ent.pid], i)
		a.addCounts(i, w)
	}
	return a
}

// reset prepares a reused analysis for n events: slices are regrown in
// place and the maps are cleared with their buckets retained, so a
// steady-state Window snapshot reallocates none of its scratch.
func (a *analysis) reset(n int) {
	if cap(a.ents) < n {
		a.stream = make(event.Stream, n)
		a.ents = make([]*seqEntry, n)
		a.weights = make([]float64, n)
		a.alive = make([]bool, n)
	} else {
		a.stream = a.stream[:n]
		a.ents = a.ents[:n]
		a.weights = a.weights[:n]
		a.alive = a.alive[:n]
	}
	a.liveN = n
	if a.counts == nil {
		a.counts = make(map[string]float64, 1024)
	} else {
		clear(a.counts)
	}
	if a.eventsByPrefix == nil {
		a.eventsByPrefix = make(map[uint32][]int, 64)
	} else {
		clear(a.eventsByPrefix)
	}
	if cap(a.idxArena) < n {
		a.idxArena = make([]int, 0, n)
	} else {
		a.idxArena = a.idxArena[:0]
	}
}

// seqFor interns an event's sequence form c = x h a1 … an p. Repeat
// sequences — the common case in BGP churn, where one route flaps many
// times — return the existing entry without allocating: the sequence is
// built in scratch buffers and looked up by its byte form before
// anything is materialized.
func (in *interner) seqFor(e *event.Event) *seqEntry {
	seq := in.scratchSeq[:0]
	seq = append(seq, in.peer(e.Peer))
	if e.Attrs != nil {
		if e.Attrs.Nexthop.IsValid() {
			seq = append(seq, in.nexthop(e.Attrs.Nexthop))
		}
		for _, segment := range e.Attrs.ASPath {
			for _, segASN := range segment.ASNs {
				seq = append(seq, in.as(segASN))
			}
		}
	}
	pid := in.prefix(e.Prefix)
	seq = append(seq, pid)
	in.scratchSeq = seq

	raw := in.scratchRaw[:0]
	for _, id := range seq {
		raw = binary.BigEndian.AppendUint32(raw, id)
	}
	in.scratchRaw = raw

	if ent, ok := in.seqs[string(raw)]; ok {
		return ent
	}
	ent := &seqEntry{
		seq: append([]uint32(nil), seq...),
		raw: append([]byte(nil), raw...),
		pid: pid,
	}
	ent.buildKeys(in.maxSubseqLen)
	in.seqs[string(ent.raw)] = ent
	return ent
}

// buildKeys materializes every contiguous sub-sequence key of >= 2
// tokens (capped at maxSubseqLen when > 1), in the same order the count
// loop historically visited them. All keys are substrings of one backing
// string, so the whole set costs two allocations.
func (e *seqEntry) buildKeys(maxSubseqLen int) {
	maxLen := len(e.seq)
	if maxSubseqLen > 1 && maxSubseqLen < maxLen {
		maxLen = maxSubseqLen
	}
	n := 0
	for start := 0; start < len(e.seq)-1; start++ {
		end := start + maxLen
		if end > len(e.seq) {
			end = len(e.seq)
		}
		if end >= start+2 {
			n += end - start - 1
		}
	}
	s := string(e.raw)
	keys := make([]string, 0, n)
	for start := 0; start < len(e.seq)-1; start++ {
		end := start + maxLen
		if end > len(e.seq) {
			end = len(e.seq)
		}
		for stop := start + 2; stop <= end; stop++ {
			keys = append(keys, s[start*idBytes:stop*idBytes])
		}
	}
	e.keys = keys
}

// addCounts adds (or, with negative w, removes) every sub-sequence of
// event i of length >= 2 tokens.
func (a *analysis) addCounts(i int, w float64) {
	addSubseqKeys(a.counts, a.ents[i].keys, w)
}

// addSubseqKeys adds (or, with negative w, removes) an interned entry's
// cached sub-sequence keys into counts. The keys are already-materialized
// strings, so the loop allocates nothing — the property the event hot
// path's allocation budget rests on. Shared between batch analysis and
// the sliding Window's shard counters; the negative-w path is what makes
// windows evictable.
func addSubseqKeys(counts map[string]float64, keys []string, w float64) {
	for _, key := range keys {
		n := counts[key] + w
		if n <= 1e-9 {
			delete(counts, key)
		} else {
			counts[key] = n
		}
	}
}

// best scans the count table for the top-scoring sub-sequence.
func (a *analysis) best() (key string, score float64, count float64, ok bool) {
	for k, c := range a.counts {
		if c < a.cfg.MinCount {
			continue
		}
		length := len(k) / idBytes
		s := a.cfg.Score(c, length)
		switch {
		case !ok || s > score:
			key, score, count, ok = k, s, c, true
		case s == score:
			// Deterministic tie-break: longer wins, then smaller token
			// content. Comparing decoded content instead of raw key bytes
			// keeps the choice independent of interning order, so a
			// sliding window (whose interner has seen evicted events) and
			// a batch run over the same events pick the same winner.
			if len(k) > len(key) || (len(k) == len(key) && a.in.keyLess(k, key)) {
				key, count = k, c
			}
		}
	}
	return key, score, count, ok
}

// extract removes and returns the strongest component of the remaining
// stream.
func (a *analysis) extract() (Component, bool) {
	if a.liveN < a.cfg.MinEvents {
		return Component{}, false
	}
	key, score, count, ok := a.best()
	if !ok || score < a.cfg.MinScore {
		return Component{}, false
	}
	want := decodeKey(key)

	// P: prefixes of live events whose sequence contains s', in
	// first-appearance order.
	var prefixIDs []uint32
	seenPfx := make(map[uint32]struct{}, 16)
	for i, ent := range a.ents {
		if !a.alive[i] {
			continue
		}
		if seqContains(ent.seq, want) {
			pid := ent.pid
			if _, dup := seenPfx[pid]; !dup {
				seenPfx[pid] = struct{}{}
				prefixIDs = append(prefixIDs, pid)
			}
		}
	}
	if len(prefixIDs) == 0 {
		return Component{}, false
	}

	// E: every live event touching a prefix in P.
	var eventIdx []int
	for _, pid := range prefixIDs {
		for _, i := range a.eventsByPrefix[pid] {
			if a.alive[i] {
				eventIdx = append(eventIdx, i)
			}
		}
	}
	sort.Ints(eventIdx)
	for _, i := range eventIdx {
		a.alive[i] = false
		a.liveN--
		a.addCounts(i, -a.weights[i])
	}

	comp := Component{
		Score:    score,
		Count:    int(count + 0.5),
		Prefixes: make([]netip.Prefix, len(prefixIDs)),
	}
	comp.Subsequence = make([]Token, len(want))
	for i, id := range want {
		comp.Subsequence[i] = a.in.token(id)
	}
	comp.Stem = Stem{
		From: comp.Subsequence[len(want)-2],
		To:   comp.Subsequence[len(want)-1],
	}
	for i, pid := range prefixIDs {
		_, idx := unpackID(pid)
		comp.Prefixes[i] = a.in.pfxs[idx]
	}
	comp.EventIndexes = eventIdx
	comp.First = a.stream[eventIdx[0]].Time
	comp.Last = comp.First
	for _, i := range eventIdx {
		t := a.stream[i].Time
		if t.Before(comp.First) {
			comp.First = t
		}
		if t.After(comp.Last) {
			comp.Last = t
		}
	}
	return comp, true
}

func decodeKey(key string) []uint32 {
	out := make([]uint32, len(key)/idBytes)
	for i := range out {
		out[i] = binary.BigEndian.Uint32([]byte(key[i*idBytes : (i+1)*idBytes]))
	}
	return out
}

// seqContains reports whether want occurs as a contiguous run in seq.
func seqContains(seq, want []uint32) bool {
	if len(want) == 0 || len(want) > len(seq) {
		return false
	}
outer:
	for i := 0; i+len(want) <= len(seq); i++ {
		for j, id := range want {
			if seq[i+j] != id {
				continue outer
			}
		}
		return true
	}
	return false
}
