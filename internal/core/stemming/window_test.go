package stemming

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"rex/internal/event"
)

// requireSameComponents asserts streamed and batch decompositions match
// exactly — same stems, scores, prefixes, event indexes, bounds.
func requireSameComponents(t *testing.T, got, want []Component) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("component count: got %d, want %d\n got: %+v\nwant: %+v", len(got), len(want), got, want)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("component %d diverges:\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
}

// windyStream builds a deterministic mixed stream: background noise over
// a prefix pool plus periodic concentrated incidents, n events one second
// apart.
func windyStream(n int, seed int64) event.Stream {
	rng := rand.New(rand.NewSource(seed))
	peers := []string{"128.32.1.3", "128.32.1.200", "128.32.1.7"}
	nexthops := []string{"128.32.0.66", "128.32.0.70", "128.32.0.90"}
	var s event.Stream
	for i := 0; i < n; i++ {
		typ := event.Announce
		if rng.Intn(3) == 0 {
			typ = event.Withdraw
		}
		var asns []uint32
		prefix := fmt.Sprintf("10.%d.%d.0/24", rng.Intn(40), rng.Intn(4))
		if i%7 < 3 {
			// Incident traffic: a shared 11423-209 trunk, the Figure 4 shape.
			asns = []uint32{11423, 209, uint32(700 + rng.Intn(4)), uint32(1200 + rng.Intn(8))}
		} else {
			asns = []uint32{11423, uint32(11400 + rng.Intn(6)), uint32(4500 + rng.Intn(20))}
		}
		s = append(s, mkEvent(typ, i, peers[rng.Intn(len(peers))], nexthops[rng.Intn(len(nexthops))], prefix, asns...))
	}
	return s
}

// TestWindowMatchesBatchNoEviction: with nothing evicted, the streamed
// window must decompose exactly as a batch Analyze over the same slice.
func TestWindowMatchesBatchNoEviction(t *testing.T) {
	s := figure4Stream()
	w := NewWindow(Config{}, 4)
	for _, e := range s {
		w.Add(e)
	}
	requireSameComponents(t, w.Snapshot(), Analyze(s, Config{}))
	if got := w.Events(); !reflect.DeepEqual(got, s) {
		t.Fatalf("window contents diverge from input:\n got %v\nwant %v", got, s)
	}
}

// TestWindowSlidingEquivalence is the headline acceptance test: slide a
// time window across a long stream — evicting incrementally, snapshotting
// repeatedly — and at every step the snapshot must equal batch Analyze on
// exactly the live window contents. Exercises ring growth (window holds
// more than the initial ring capacity) and small settle batches.
func TestWindowSlidingEquivalence(t *testing.T) {
	const n = 3000
	s := windyStream(n, 42)
	window := 2000 * time.Second // up to 2000 live events: forces ring growth
	w := NewWindow(Config{}, 4)
	w.settleBatch = 257 // settle often, mid-batch, to shake out batching bugs

	snapshots := 0
	for i, e := range s {
		w.Add(e)
		w.EvictBefore(e.Time.Add(-window))
		if i > 0 && i%500 == 0 {
			live := w.Events()
			requireSameComponents(t, w.Snapshot(), Analyze(live, Config{}))
			// And the window holds exactly the in-window suffix.
			var want event.Stream
			cutoff := e.Time.Add(-window)
			for _, ev := range s[:i+1] {
				if !ev.Time.Before(cutoff) {
					want = append(want, ev)
				}
			}
			if !reflect.DeepEqual(live, want) {
				t.Fatalf("step %d: window contents wrong: %d live, want %d", i, len(live), len(want))
			}
			snapshots++
		}
	}
	if snapshots < 5 {
		t.Fatalf("test exercised only %d snapshots", snapshots)
	}
	if w.Len() != 2001 {
		t.Errorf("final window = %d events, want 2001", w.Len())
	}
}

// TestWindowShardCountInvariance: the decomposition must not depend on
// how counting is sharded.
func TestWindowShardCountInvariance(t *testing.T) {
	s := windyStream(800, 7)
	var base []Component
	for i, shards := range []int{1, 3, 8} {
		w := NewWindow(Config{}, shards)
		for _, e := range s {
			w.Add(e)
		}
		w.EvictBefore(s[200].Time)
		got := w.Snapshot()
		if i == 0 {
			base = got
			if len(base) == 0 {
				t.Fatal("no components to compare")
			}
			continue
		}
		requireSameComponents(t, got, base)
	}
}

// TestWindowFullTurnover: evict everything; the window must come back
// empty and accept new events afterwards.
func TestWindowFullTurnover(t *testing.T) {
	w := NewWindow(Config{}, 2)
	s := figure4Stream()
	for _, e := range s {
		w.Add(e)
	}
	if n := w.EvictBefore(s[len(s)-1].Time.Add(time.Second)); n != len(s) {
		t.Fatalf("evicted %d, want %d", n, len(s))
	}
	if w.Len() != 0 || w.Snapshot() != nil || len(w.Events()) != 0 {
		t.Fatalf("window not empty after full turnover: len=%d", w.Len())
	}
	// Count tables must be fully drained, not just masked: a fresh
	// identical stream decomposes as if the first had never happened.
	for _, e := range s {
		w.Add(e)
	}
	requireSameComponents(t, w.Snapshot(), Analyze(s, Config{}))
}

// TestWindowSnapshotNonDestructive: Snapshot twice in a row gives the
// same answer (the extraction mutates a copy, not the shard tables).
func TestWindowSnapshotNonDestructive(t *testing.T) {
	w := NewWindow(Config{}, 4)
	for _, e := range windyStream(300, 3) {
		w.Add(e)
	}
	first := w.Snapshot()
	second := w.Snapshot()
	requireSameComponents(t, second, first)
}

// TestWindowEmpty pins the zero-state behaviour.
func TestWindowEmpty(t *testing.T) {
	w := NewWindow(Config{}, 0)
	if w.Len() != 0 || w.Snapshot() != nil || w.EvictBefore(t0) != 0 {
		t.Fatal("empty window misbehaves")
	}
}

// TestEvictBeforeBoundedPending: a mass eviction — e.g. a recovery
// replay crossing a window boundary evicts the whole window in one
// EvictBefore call — must settle incrementally, never buffering more
// than one settle batch of pending ops. The old code checked the
// threshold only after the eviction loop, so the run's entire op list
// piled up first.
func TestEvictBeforeBoundedPending(t *testing.T) {
	w := NewWindow(Config{}, 4)
	w.settleBatch = 64
	maxOps := 0
	w.OnSettle = func(_ time.Duration, ops int) {
		if ops > maxOps {
			maxOps = ops
		}
	}
	s := windyStream(1000, 7)
	for _, e := range s {
		w.Add(e)
	}
	evicted := w.EvictBefore(s[len(s)-1].Time.Add(time.Hour))
	if evicted != len(s) || w.Len() != 0 {
		t.Fatalf("evicted %d of %d, %d left", evicted, len(s), w.Len())
	}
	if maxOps > w.settleBatch {
		t.Fatalf("a settle drained %d ops, want <= settleBatch (%d)", maxOps, w.settleBatch)
	}
	if w.pendingOps >= w.settleBatch {
		t.Fatalf("%d ops still pending after eviction, want < settleBatch (%d)", w.pendingOps, w.settleBatch)
	}
}
