package stemming

import (
	"testing"
	"time"
)

// TestWindowSteadyStateAllocs pins the allocation diet: once every
// distinct sequence has been interned, the add→evict→settle turnover
// path allocates (amortized) nothing, and a Snapshot allocates only its
// result — never O(window) scratch. The bounds are deliberately tight;
// if a change regresses the hot path back to per-event or per-tick
// churn, this fails long before a benchmark run would notice.
func TestWindowSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is not worth it in -short")
	}
	events := windyStream(256, 11)
	w := NewWindow(Config{}, 4)
	w.settleBatch = 64
	const window = 128 * time.Second
	i := 0
	add := func() {
		e := events[i%len(events)]
		e.Time = t0.Add(time.Duration(i) * time.Second)
		w.Add(e)
		w.EvictBefore(e.Time.Add(-window))
		i++
	}
	// Warm up: intern every distinct sequence, reach steady turnover,
	// and let the ring and shard buffers hit their high-water marks.
	for n := 0; n < 2048; n++ {
		add()
	}
	if avg := testing.AllocsPerRun(2000, add); avg > 0.05 {
		t.Errorf("steady-state add+evict+settle allocates %.3f/op, want ~0", avg)
	}

	w.Snapshot() // warm the reused snapshot scratch
	snapAvg := testing.AllocsPerRun(20, func() { w.Snapshot() })
	t.Logf("steady-state Snapshot: %.1f allocs/op over a %d-event window", snapAvg, w.Len())
	// The result itself (components, their prefix/token slices) is
	// allocated fresh each call; the bound just has to sit far below the
	// O(window·subseqs) rebuild this replaced (tens of thousands here).
	if snapAvg > 500 {
		t.Errorf("steady-state Snapshot allocates %.0f/op, want bounded by its result (<500)", snapAvg)
	}
}
