package stemming

// The sliding window's mergeable per-shard count structure. Each shard
// owns the ±weight sub-sequence count table and the per-prefix live
// event lists for the prefixes hashed to it. Because prefixes partition
// across shards, shard tables never share a key owner: counts merge
// into a combined table by plain summation and the per-prefix event
// lists merge by disjoint union — the properties the parallel analysis
// engine's determinism rests on (DESIGN.md §10).

// countOp is one buffered shard operation. Ops reference the interned
// sequence entry (which owns the seq, raw bytes, prefix ID and cached
// sub-sequence keys) so a ring slot can be reused before its eviction
// settles, and applying the op allocates nothing.
type countOp struct {
	id    uint64
	ent   *seqEntry
	w     float64
	evict bool
}

// idList is one prefix's live event IDs in arrival order, stored as a
// head-trimmed FIFO: ids[head:] is live. Trimming advances head instead
// of re-slicing the front away, so the backing array keeps its spare
// front capacity and is compacted in place (amortized O(1)) — the
// steady-state add/evict churn of a flapping prefix allocates nothing.
// An emptied list keeps its entry and backing array for the prefix's
// next flap, the same only-grows trade the interner makes.
type idList struct {
	ids  []uint64
	head int
}

// countShard owns the counts for the prefixes hashed to it.
type countShard struct {
	counts   map[string]float64
	byPrefix map[uint32]*idList // live event IDs per prefix, arrival order
	pending  []countOp
}

func newCountShard() *countShard {
	return &countShard{
		counts:   make(map[string]float64, 1024),
		byPrefix: make(map[uint32]*idList, 64),
	}
}

// apply replays the shard's buffered ops in order.
func (sh *countShard) apply() {
	for _, op := range sh.pending {
		addSubseqKeys(sh.counts, op.ent.keys, op.w)
		pid := op.ent.pid
		l := sh.byPrefix[pid]
		if !op.evict {
			if l == nil {
				l = &idList{}
				sh.byPrefix[pid] = l
			}
			l.ids = append(l.ids, op.id)
			continue
		}
		if l == nil {
			continue
		}
		live := l.ids[l.head:]
		if len(live) > 0 && live[0] == op.id {
			// FIFO eviction always removes the list head.
			l.head++
		} else {
			for i, id := range live {
				if id == op.id {
					copy(live[i:], live[i+1:])
					l.ids = l.ids[:len(l.ids)-1]
					break
				}
			}
		}
		if l.head == len(l.ids) {
			l.ids, l.head = l.ids[:0], 0
		} else if l.head > 32 && l.head > len(l.ids)/2 {
			n := copy(l.ids, l.ids[l.head:])
			l.ids, l.head = l.ids[:n], 0
		}
	}
	sh.pending = sh.pending[:0]
}

// mergeCounts sums the shard's settled count table into dst. Safe to
// call for every shard against one destination: shards count disjoint
// event sets, so summation is the exact combined table.
func (sh *countShard) mergeCounts(dst map[string]float64) {
	for k, c := range sh.counts {
		dst[k] += c
	}
}

// mergeEvents copies the shard's live event lists into dst, rebasing
// event IDs to indexes relative to head. Prefix keys never collide
// across shards (each prefix lives in exactly one shard). The value
// slices are carved from arena while it has spare capacity (the reused
// snapshot scratch presizes it to the window length), falling back to
// fresh allocations when it runs out; the extended arena is returned.
func (sh *countShard) mergeEvents(dst map[uint32][]int, head uint64, arena []int) []int {
	for pid, l := range sh.byPrefix {
		ids := l.ids[l.head:]
		if len(ids) == 0 {
			continue // retained entry for a currently-quiet prefix
		}
		var idxs []int
		if n := len(arena) + len(ids); n <= cap(arena) {
			idxs = arena[len(arena):n:n]
			arena = arena[:n]
		} else {
			idxs = make([]int, len(ids))
		}
		for i, id := range ids {
			idxs[i] = int(id - head)
		}
		dst[pid] = idxs
	}
	return arena
}
