package stemming

// The sliding window's mergeable per-shard count structure. Each shard
// owns the ±weight sub-sequence count table and the per-prefix live
// event lists for the prefixes hashed to it. Because prefixes partition
// across shards, shard tables never share a key owner: counts merge
// into a combined table by plain summation and the per-prefix event
// lists merge by disjoint union — the properties the parallel analysis
// engine's determinism rests on (DESIGN.md §10).

// countOp is one buffered shard operation. Ops carry their own seq/raw
// references so a ring slot can be reused before its eviction settles.
type countOp struct {
	id    uint64
	seq   []uint32
	raw   []byte
	pid   uint32
	w     float64
	evict bool
}

// countShard owns the counts for the prefixes hashed to it.
type countShard struct {
	counts   map[string]float64
	byPrefix map[uint32][]uint64 // live event IDs per prefix, arrival order
	pending  []countOp
}

func newCountShard() *countShard {
	return &countShard{
		counts:   make(map[string]float64, 1024),
		byPrefix: make(map[uint32][]uint64, 64),
	}
}

// apply replays the shard's buffered ops in order.
func (sh *countShard) apply(maxSubseqLen int) {
	for _, op := range sh.pending {
		addSubseqCounts(sh.counts, op.seq, op.raw, maxSubseqLen, op.w)
		if !op.evict {
			sh.byPrefix[op.pid] = append(sh.byPrefix[op.pid], op.id)
			continue
		}
		l := sh.byPrefix[op.pid]
		if len(l) > 0 && l[0] == op.id {
			// FIFO eviction always removes the list head.
			l = l[1:]
		} else {
			for i, id := range l {
				if id == op.id {
					l = append(l[:i], l[i+1:]...)
					break
				}
			}
		}
		if len(l) == 0 {
			delete(sh.byPrefix, op.pid)
		} else {
			sh.byPrefix[op.pid] = l
		}
	}
	sh.pending = sh.pending[:0]
}

// mergeCounts sums the shard's settled count table into dst. Safe to
// call for every shard against one destination: shards count disjoint
// event sets, so summation is the exact combined table.
func (sh *countShard) mergeCounts(dst map[string]float64) {
	for k, c := range sh.counts {
		dst[k] += c
	}
}

// mergeEvents copies the shard's live event lists into dst, rebasing
// event IDs to indexes relative to head. Prefix keys never collide
// across shards (each prefix lives in exactly one shard).
func (sh *countShard) mergeEvents(dst map[uint32][]int, head uint64) {
	for pid, ids := range sh.byPrefix {
		idxs := make([]int, len(ids))
		for i, id := range ids {
			idxs[i] = int(id - head)
		}
		dst[pid] = idxs
	}
}
