package stemming

import (
	"fmt"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
)

// FuzzWindowShardEquivalence is the property behind the parallel
// analysis engine: for ANY event batch and ANY shard count, the
// per-shard count tables and per-prefix event lists must merge to
// exactly what a single-sharded window computes over the same batch.
// Inputs are text-codec lines (seeded from the event codec fuzz corpus)
// plus a synthetic tail of byte-derived events — random peers, prefixes
// and announce/withdraw mixes — so the property is exercised even when
// mutation breaks every line.
func FuzzWindowShardEquivalence(f *testing.F) {
	seeds := []string{
		`W 2003-08-01T10:00:00.000000Z 128.32.1.3 NEXT_HOP 128.32.0.70 ASPATH "11423 209 701" LP 80 MED 10 COMM 11423:65350,11423:65300 PREFIX 192.96.10.0/24`,
		`A 2003-08-01T10:00:00.000000Z 10.0.0.1 ASPATH "1" COMM 0:0,65535:65535,0:0 PREFIX 10.0.0.0/8`,
		`A 2003-08-01T10:00:00.000000Z 10.0.0.1 ASPATH "" PREFIX 10.0.0.0/8`,
		`A 2003-08-01T10:00:00.000000Z 10.0.0.1 NEXT_HOP 10.0.0.2 PREFIX 10.0.0.0/8`,
		`A 1970-01-01T00:00:00.000001Z 10.0.0.1 PREFIX 0.0.0.0/0`,
		`W 2003-08-01T10:00:00.999999Z 128.32.1.3 PREFIX 192.96.10.0/24`,
		`A 2003-08-01T10:00:00.000000Z 10.0.0.1 ASPATH "11423 {7018 1239} 701" PREFIX 10.0.0.0/8`,
		`A 2003-08-01T10:00:00.000000Z fe80::1%eth0 NEXT_HOP 2001:db8::1 ASPATH "1 2" PREFIX 2001:db8::/32`,
	}
	f.Add(strings.Join(seeds, "\n"), uint8(4), uint8(0))
	f.Add(strings.Join(seeds, "\n"), uint8(2), uint8(128))
	f.Add(seeds[0]+"\n"+seeds[5], uint8(7), uint8(255))
	f.Fuzz(func(t *testing.T, data string, shardByte, evictByte uint8) {
		events := fuzzBatch(data)
		if len(events) == 0 {
			return
		}
		shards := 2 + int(shardByte%7) // 2..8

		single := NewWindow(Config{}, 1)
		sharded := NewWindow(Config{}, shards)
		for i, e := range events {
			single.Add(e)
			sharded.Add(e)
			// Mid-batch eviction, at the same point in both windows, so
			// the negative-weight path is part of the property too.
			if evictByte > 0 && i == len(events)/2 {
				cut := e.Time.Add(-time.Duration(evictByte) * time.Second)
				single.EvictBefore(cut)
				sharded.EvictBefore(cut)
			}
		}

		if got, want := mergedCounts(sharded), mergedCounts(single); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: merged counts diverge from sequential\n got %d keys, want %d keys", shards, len(got), len(want))
		}
		if got, want := mergedEvents(sharded), mergedEvents(single); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: merged per-prefix event lists diverge\n got %v\nwant %v", shards, got, want)
		}
		if got, want := sharded.Snapshot(), single.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: components diverge\n got %+v\nwant %+v", shards, got, want)
		}
	})
}

// mergedCounts settles a window and merges every shard's count table,
// exactly as Snapshot does internally.
func mergedCounts(w *Window) map[string]float64 {
	w.settle()
	dst := make(map[string]float64)
	for _, sh := range w.shards {
		sh.mergeCounts(dst)
	}
	return dst
}

// mergedEvents settles a window and merges the per-prefix live lists.
func mergedEvents(w *Window) map[uint32][]int {
	w.settle()
	dst := make(map[uint32][]int)
	for _, sh := range w.shards {
		sh.mergeEvents(dst, w.headID, nil)
	}
	return dst
}

// fuzzBatch turns fuzz input into an event batch: every line that the
// text codec accepts, then a synthetic tail derived from the raw bytes
// with a splitmix-style generator — random peers, prefixes, withdrawal
// mixes and path lengths, timestamps strictly increasing.
func fuzzBatch(data string) []event.Event {
	var events []event.Event
	for _, line := range strings.Split(data, "\n") {
		if e, err := event.ParseText(line); err == nil {
			events = append(events, e)
		}
	}
	// Seed the generator from the bytes so the tail varies under
	// mutation even when no line parses.
	seed := uint64(1469598103934665603)
	for i := 0; i < len(data); i++ {
		seed = (seed ^ uint64(data[i])) * 1099511628211
	}
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	t0 := time.Date(2003, 8, 1, 10, 0, 0, 0, time.UTC)
	n := 16 + int(next()%48)
	for i := 0; i < n; i++ {
		r := next()
		e := event.Event{
			Time:   t0.Add(time.Duration(i) * time.Second),
			Type:   event.Announce,
			Peer:   netip.AddrFrom4([4]byte{128, 32, 1, byte(1 + r%5)}),
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(r >> 8 % 4), byte(r >> 16 % 16), 0}), 24),
		}
		if r%3 == 0 {
			e.Type = event.Withdraw
		}
		if r%4 != 0 {
			path := []uint32{11423}
			for j := uint64(0); j < (r>>24)%3; j++ {
				path = append(path, uint32(200+(r>>(32+8*j))%9))
			}
			e.Attrs = &bgp.PathAttrs{
				ASPath:  bgp.Sequence(path...),
				Nexthop: netip.AddrFrom4([4]byte{128, 32, 0, byte(60 + r%4)}),
			}
		}
		events = append(events, e)
	}
	return events
}

// TestFuzzBatchShape sanity-checks the generator the fuzz target relies
// on: corpus seeds must produce parsed lines AND a synthetic tail with
// both event types and multiple prefixes.
func TestFuzzBatchShape(t *testing.T) {
	events := fuzzBatch(`A 2003-08-01T10:00:00.000000Z 10.0.0.1 ASPATH "1" PREFIX 10.0.0.0/8` + "\nnot-a-line")
	if len(events) < 17 {
		t.Fatalf("batch too small: %d", len(events))
	}
	types := map[event.Type]int{}
	prefixes := map[string]int{}
	for _, e := range events {
		types[e.Type]++
		prefixes[e.Prefix.String()]++
	}
	if types[event.Announce] == 0 || types[event.Withdraw] == 0 {
		t.Errorf("type mix = %v, want both announces and withdrawals", types)
	}
	if len(prefixes) < 2 {
		t.Errorf("prefix diversity = %d, want several", len(prefixes))
	}
	_ = fmt.Sprintf("%v", events[0]) // events must be printable in failures
}
