package stemming

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
)

var t0 = time.Date(2003, 8, 1, 10, 0, 0, 0, time.UTC)

func mkEvent(typ event.Type, i int, peer, nexthop, prefix string, asns ...uint32) event.Event {
	e := event.Event{
		Time:   t0.Add(time.Duration(i) * time.Second),
		Type:   typ,
		Peer:   netip.MustParseAddr(peer),
		Prefix: netip.MustParsePrefix(prefix),
	}
	e.Attrs = &bgp.PathAttrs{
		Origin: bgp.OriginIGP,
		ASPath: bgp.Sequence(asns...),
	}
	if nexthop != "" {
		e.Attrs.Nexthop = netip.MustParseAddr(nexthop)
	}
	return e
}

// figure4Stream is the exact event spike listing of the paper's Figure 4.
func figure4Stream() event.Stream {
	w := func(i int, peer, nh, prefix string, asns ...uint32) event.Event {
		return mkEvent(event.Withdraw, i, peer, nh, prefix, asns...)
	}
	return event.Stream{
		w(0, "128.32.1.3", "128.32.0.70", "192.96.10.0/24", 11423, 209, 701, 1299, 5713),
		w(1, "128.32.1.3", "128.32.0.66", "207.191.23.0/24", 11423, 11422, 209, 4519),
		w(2, "128.32.1.200", "128.32.0.90", "192.96.10.0/24", 11423, 209, 701, 1299, 5713),
		w(3, "128.32.1.200", "128.32.0.90", "212.22.132.0/23", 11423, 209, 1239, 3228, 21408),
		w(4, "128.32.1.3", "128.32.0.66", "203.14.156.0/24", 11423, 209, 701, 705),
		w(5, "128.32.1.3", "128.32.0.66", "209.5.188.0/24", 11423, 11422, 209, 1239, 3602),
		w(6, "128.32.1.3", "128.32.0.66", "12.2.41.0/24", 11423, 209, 7018, 13606),
		w(7, "128.32.1.3", "128.32.0.66", "12.96.77.0/24", 11423, 209, 7018, 13606),
		w(8, "128.32.1.3", "128.32.0.66", "62.80.64.0/20", 11423, 209, 1239, 5400, 15410),
		w(9, "128.32.1.200", "128.32.0.90", "62.80.64.0/20", 11423, 209, 1239, 5400, 15410),
	}
}

func TestFigure4Stem(t *testing.T) {
	// The paper: 8 of the 10 withdrawals share 11423-209, whose last edge
	// is the failure location.
	comp, ok := Top(figure4Stream(), Config{})
	if !ok {
		t.Fatal("no component found")
	}
	if comp.Stem.From.Kind != KindAS || comp.Stem.From.AS != 11423 {
		t.Errorf("stem.From = %v, want AS11423", comp.Stem.From)
	}
	if comp.Stem.To.Kind != KindAS || comp.Stem.To.AS != 209 {
		t.Errorf("stem.To = %v, want AS209", comp.Stem.To)
	}
	if comp.Stem.String() != "AS11423—AS209" {
		t.Errorf("stem = %v", comp.Stem)
	}
}

func TestFigure4FailureOneHopDown(t *testing.T) {
	// "If the failure was one hop down between 209 and 7018, the common
	// portion would be 11423-209-7018, and the last edge, 209-7018, is
	// the failure location." Build a spike where most paths share
	// 11423-209-7018 and check the deeper stem wins over the more
	// frequent 11423-209.
	var s event.Stream
	for i := 0; i < 8; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{12, byte(i), 41, 0}), 24).String()
		s = append(s, mkEvent(event.Withdraw, i, "128.32.1.3", "128.32.0.66", prefix,
			11423, 209, 7018, uint32(13600+i)))
	}
	// Two paths through 209 that do not continue to 7018.
	s = append(s,
		mkEvent(event.Withdraw, 8, "128.32.1.3", "128.32.0.66", "203.14.156.0/24", 11423, 209, 701, 705),
		mkEvent(event.Withdraw, 9, "128.32.1.3", "128.32.0.66", "192.96.10.0/24", 11423, 209, 701, 5713),
	)
	comp, ok := Top(s, Config{})
	if !ok {
		t.Fatal("no component")
	}
	if comp.Stem.From.AS != 209 || comp.Stem.To.AS != 7018 {
		t.Errorf("stem = %v, want AS209—AS7018", comp.Stem)
	}
}

func TestSingleFailureComponent(t *testing.T) {
	// 100 prefixes withdrawn through a common failing edge 1-2 with
	// diverse tails: every event belongs to one component with stem 1-2.
	var s event.Stream
	for i := 0; i < 100; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16).String()
		s = append(s, mkEvent(event.Withdraw, i, "10.0.0.1", "10.0.0.9", prefix,
			1, 2, uint32(100+i%7), uint32(1000+i)))
	}
	comps := Analyze(s, Config{})
	if len(comps) == 0 {
		t.Fatal("no components")
	}
	c := comps[0]
	if c.NumEvents() != 100 || len(c.Prefixes) != 100 {
		t.Errorf("component has %d events / %d prefixes, want 100/100", c.NumEvents(), len(c.Prefixes))
	}
	// The strongest sub-sequence runs peer,nexthop,1,2 — its last pair is
	// located at the deepest shared edge.
	last := c.Subsequence[len(c.Subsequence)-1]
	if last.Kind != KindAS || last.AS != 2 {
		t.Errorf("subsequence ends at %v, want AS2", last)
	}
	if c.First != t0 || c.Last != t0.Add(99*time.Second) {
		t.Errorf("time range %v..%v", c.First, c.Last)
	}
}

func TestTwoIncidentsSeparate(t *testing.T) {
	var s event.Stream
	// Incident A: 50 withdrawals behind edge 100-200.
	for i := 0; i < 50; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i), 0, 0}), 16).String()
		s = append(s, mkEvent(event.Withdraw, i, "10.0.0.1", "10.0.0.9", prefix, 100, 200, uint32(300+i)))
	}
	// Incident B: 20 announcements behind edge 400-500 from another peer.
	for i := 0; i < 20; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{30, byte(i), 0, 0}), 16).String()
		s = append(s, mkEvent(event.Announce, 100+i, "10.0.0.2", "10.0.0.8", prefix, 400, 500, uint32(600+i)))
	}
	comps := Analyze(s, Config{})
	if len(comps) < 2 {
		t.Fatalf("components = %d, want >= 2", len(comps))
	}
	if comps[0].NumEvents() != 50 || comps[1].NumEvents() != 20 {
		t.Errorf("component sizes = %d, %d", comps[0].NumEvents(), comps[1].NumEvents())
	}
	if comps[0].Score <= comps[1].Score {
		t.Errorf("components not strongest-first: %v <= %v", comps[0].Score, comps[1].Score)
	}
	// Disjoint event sets covering both incidents.
	seen := map[int]bool{}
	for _, c := range comps {
		for _, i := range c.EventIndexes {
			if seen[i] {
				t.Fatalf("event %d in two components", i)
			}
			seen[i] = true
		}
	}
}

func TestTemporalIndependence(t *testing.T) {
	// Stemming is a correlation, not a causality, technique: shuffling
	// the stream must not change what is found (paper §III-B).
	var s event.Stream
	for i := 0; i < 40; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i), 0, 0}), 16).String()
		s = append(s, mkEvent(event.Withdraw, i, "10.0.0.1", "10.0.0.9", prefix, 100, 200, uint32(300+i)))
	}
	for i := 0; i < 15; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{30, byte(i), 0, 0}), 16).String()
		s = append(s, mkEvent(event.Announce, 100+i, "10.0.0.2", "10.0.0.8", prefix, 400, 500))
	}
	base := Analyze(s, Config{})

	shuffled := append(event.Stream(nil), s...)
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	got := Analyze(shuffled, Config{})

	if len(got) != len(base) {
		t.Fatalf("component count changed: %d vs %d", len(got), len(base))
	}
	for i := range base {
		if got[i].Stem != base[i].Stem || got[i].Score != base[i].Score || got[i].NumEvents() != base[i].NumEvents() {
			t.Errorf("component %d changed: %+v vs %+v", i, got[i].Stem, base[i].Stem)
		}
	}
}

func TestLowGradeChurnFoundInLongWindow(t *testing.T) {
	// Paper §IV-E: a persistent oscillation whose event rate is "in the
	// grass" still dominates the correlation over a long window, even
	// among noisier one-off events.
	rng := rand.New(rand.NewSource(5))
	var s event.Stream
	// 300 noise events: unique prefixes, unique tails.
	for i := 0; i < 300; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{40, byte(i / 250), byte(i % 250), 0}), 24).String()
		s = append(s, mkEvent(event.Type(1+i%2), i, "10.0.0.3", "10.0.0.7", prefix,
			uint32(rng.Intn(5)+700), uint32(rng.Intn(30000)+1000), uint32(rng.Intn(30000)+40000)))
	}
	// One prefix flapping 120 times through the same customer edge.
	for i := 0; i < 120; i++ {
		typ := event.Announce
		if i%2 == 1 {
			typ = event.Withdraw
		}
		s = append(s, mkEvent(typ, 1000+i, "10.0.0.1", "1.0.0.1", "4.5.0.0/16", 65001, 65002))
	}
	comp, ok := Top(s, Config{})
	if !ok {
		t.Fatal("no component")
	}
	if len(comp.Prefixes) != 1 || comp.Prefixes[0].String() != "4.5.0.0/16" {
		t.Errorf("top component prefixes = %v, want [4.5.0.0/16]", comp.Prefixes)
	}
	if comp.NumEvents() != 120 {
		t.Errorf("top component events = %d, want 120", comp.NumEvents())
	}
}

func TestWeightedStemmingPrefersElephants(t *testing.T) {
	elephant := netip.MustParsePrefix("4.5.0.0/16")
	var s event.Stream
	// 10 events on the elephant prefix.
	for i := 0; i < 10; i++ {
		s = append(s, mkEvent(event.Withdraw, i, "10.0.0.1", "10.0.0.9", elephant.String(), 100, 200))
	}
	// 60 events on mice behind a different edge.
	for i := 0; i < 60; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{30, byte(i), 0, 0}), 16).String()
		s = append(s, mkEvent(event.Withdraw, 100+i, "10.0.0.2", "10.0.0.8", prefix, 400, 500, uint32(600+i)))
	}
	// Unweighted: the mice incident dominates by volume.
	comp, ok := Top(s, Config{})
	if !ok || comp.Stem.To.AS != 500 {
		t.Fatalf("unweighted top = %v ok=%v, want AS400—AS500", comp.Stem, ok)
	}
	// Weighted by traffic: the elephant wins.
	weight := func(e *event.Event) float64 {
		if e.Prefix == elephant {
			return 100
		}
		return 1
	}
	comp, ok = Top(s, Config{Weight: weight})
	if !ok {
		t.Fatal("weighted Top found nothing")
	}
	// The single heavy prefix anchors the strongest sub-sequence; its
	// component is exactly the elephant's events.
	if len(comp.Prefixes) != 1 || comp.Prefixes[0] != elephant {
		t.Fatalf("weighted top prefixes = %v, want [%v]", comp.Prefixes, elephant)
	}
	if comp.NumEvents() != 10 {
		t.Errorf("weighted top events = %d, want 10", comp.NumEvents())
	}
}

func TestNoiseOnlyNoComponents(t *testing.T) {
	// Events sharing nothing of length >= 2 more than once yield nothing.
	var s event.Stream
	for i := 0; i < 10; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{50, byte(i), 0, 0}), 16).String()
		s = append(s, mkEvent(event.Withdraw, i,
			netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}).String(), "",
			prefix, uint32(1000+i), uint32(2000+i)))
	}
	if comps := Analyze(s, Config{}); len(comps) != 0 {
		t.Errorf("noise produced components: %+v", comps)
	}
}

func TestEmptyAndTinyStreams(t *testing.T) {
	if comps := Analyze(nil, Config{}); len(comps) != 0 {
		t.Error("nil stream produced components")
	}
	one := event.Stream{mkEvent(event.Withdraw, 0, "10.0.0.1", "10.0.0.9", "10.0.0.0/8", 1, 2, 3)}
	if comps := Analyze(one, Config{}); len(comps) != 0 {
		t.Error("single event produced a component")
	}
	if _, ok := Top(nil, Config{}); ok {
		t.Error("Top on nil ok")
	}
}

func TestEventsWithoutAttrs(t *testing.T) {
	// Spurious withdrawals carry no attributes: sequence is peer,prefix.
	var s event.Stream
	for i := 0; i < 5; i++ {
		s = append(s, event.Event{
			Time: t0, Type: event.Withdraw,
			Peer:   netip.MustParseAddr("10.0.0.1"),
			Prefix: netip.MustParsePrefix("10.0.0.0/8"),
		})
	}
	comp, ok := Top(s, Config{})
	if !ok {
		t.Fatal("no component from repeated bare withdrawals")
	}
	if comp.Stem.From.Kind != KindPeer || comp.Stem.To.Kind != KindPrefix {
		t.Errorf("stem = %v", comp.Stem)
	}
	if comp.Count != 5 {
		t.Errorf("count = %d", comp.Count)
	}
}

func TestMaxComponentsAndMaxSubseqLen(t *testing.T) {
	// Five incidents behind five distinct peers, so the groups do not
	// correlate with each other at the peer level.
	var s event.Stream
	for g := 0; g < 5; g++ {
		peer := netip.AddrFrom4([4]byte{10, 0, 0, byte(g + 1)}).String()
		nh := netip.AddrFrom4([4]byte{10, 0, 9, byte(g + 1)}).String()
		for i := 0; i < 10; i++ {
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(60 + g), byte(i), 0, 0}), 16).String()
			s = append(s, mkEvent(event.Withdraw, g*100+i, peer, nh, prefix,
				uint32(100*g+1), uint32(100*g+2), uint32(1000+g*50+i)))
		}
	}
	if comps := Analyze(s, Config{MaxComponents: 2}); len(comps) != 2 {
		t.Errorf("MaxComponents=2 gave %d components", len(comps))
	}
	// A length cap still finds the incidents (shorter anchors).
	comps := Analyze(s, Config{MaxSubseqLen: 2})
	if len(comps) == 0 {
		t.Error("MaxSubseqLen=2 found nothing")
	}
	for _, c := range comps {
		if len(c.Subsequence) > 2 {
			t.Errorf("subsequence longer than cap: %v", c.Subsequence)
		}
	}
}

func TestScoreAblation(t *testing.T) {
	s := figure4Stream()
	// Count-only scoring ranks... whatever it ranks; it must at least
	// run and produce deterministic output.
	c1, ok1 := Top(s, Config{Score: ScoreCountOnly})
	c2, ok2 := Top(s, Config{Score: ScoreCountOnly})
	if !ok1 || !ok2 || c1.Stem != c2.Stem {
		t.Errorf("count-only nondeterministic: %v vs %v", c1.Stem, c2.Stem)
	}
	c3, ok := Top(s, Config{Score: ScoreCountLen})
	if !ok {
		t.Fatal("count*len found nothing")
	}
	if c3.Score <= 0 {
		t.Errorf("score = %v", c3.Score)
	}
}

func TestComponentInvariants(t *testing.T) {
	// Components partition a subset of the stream: indexes valid,
	// ascending, disjoint; every component event's prefix is in the
	// component's prefix set.
	rng := rand.New(rand.NewSource(31))
	var s event.Stream
	for i := 0; i < 400; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(rng.Intn(20)), 0, 0}), 16).String()
		s = append(s, mkEvent(event.Type(1+rng.Intn(2)), i, "10.0.0.1", "10.0.0.9", prefix,
			uint32(rng.Intn(3)+1), uint32(rng.Intn(3)+10), uint32(rng.Intn(50)+100)))
	}
	comps := Analyze(s, Config{MaxComponents: 50})
	seen := map[int]bool{}
	for ci, c := range comps {
		pset := map[netip.Prefix]bool{}
		for _, p := range c.Prefixes {
			pset[p] = true
		}
		prev := -1
		for _, idx := range c.EventIndexes {
			if idx < 0 || idx >= len(s) {
				t.Fatalf("component %d: index %d out of range", ci, idx)
			}
			if idx <= prev {
				t.Fatalf("component %d: indexes not ascending", ci)
			}
			prev = idx
			if seen[idx] {
				t.Fatalf("component %d: event %d reused", ci, idx)
			}
			seen[idx] = true
			if !pset[s[idx].Prefix] {
				t.Fatalf("component %d: event %d prefix %v not in prefix set", ci, idx, s[idx].Prefix)
			}
		}
		if !c.First.Before(c.Last) && !c.First.Equal(c.Last) {
			t.Fatalf("component %d: time range inverted", ci)
		}
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: KindAS, AS: 209}
	if tok.String() != "AS209" {
		t.Errorf("AS token = %q", tok.String())
	}
	tok = Token{Kind: KindPeer, Addr: netip.MustParseAddr("10.0.0.1")}
	if tok.String() != "peer:10.0.0.1" {
		t.Errorf("peer token = %q", tok.String())
	}
	tok = Token{Kind: KindNexthop, Addr: netip.MustParseAddr("10.0.0.9")}
	if tok.String() != "nexthop:10.0.0.9" {
		t.Errorf("nexthop token = %q", tok.String())
	}
	tok = Token{Kind: KindPrefix, Prefix: netip.MustParsePrefix("10.0.0.0/8")}
	if tok.String() != "10.0.0.0/8" {
		t.Errorf("prefix token = %q", tok.String())
	}
	if (Token{}).String() != "?" {
		t.Error("zero token string")
	}
}

// TestScoreAblationLocalizationDepth demonstrates why count-only ranking
// (the paper's literal wording) is insufficient: with many events sharing
// a deep path, count-only anchors at the most frequent *pair* (shallow),
// while count×edges walks to the deepest strongly shared portion — the
// behaviour the paper's Figure 4 narrative requires.
func TestScoreAblationLocalizationDepth(t *testing.T) {
	var s event.Stream
	// 20 withdrawals share peer,nh,1,2,3 then diverge.
	for i := 0; i < 20; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16).String()
		s = append(s, mkEvent(event.Withdraw, i, "10.0.0.1", "10.0.0.9", prefix,
			1, 2, 3, uint32(100+i)))
	}
	// 5 more via the same peer/nexthop but a different first AS, so the
	// peer-nexthop pair is the most *frequent* subsequence (25 > 20).
	for i := 0; i < 5; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{11, byte(i), 0, 0}), 16).String()
		s = append(s, mkEvent(event.Withdraw, 100+i, "10.0.0.1", "10.0.0.9", prefix,
			7, uint32(200+i)))
	}

	shallow, ok := Top(s, Config{Score: ScoreCountOnly})
	if !ok {
		t.Fatal("count-only found nothing")
	}
	if len(shallow.Subsequence) != 2 {
		t.Fatalf("count-only subsequence length = %d, want 2 (the frequent pair)", len(shallow.Subsequence))
	}
	deep, ok := Top(s, Config{Score: ScoreCountEdges})
	if !ok {
		t.Fatal("count-edges found nothing")
	}
	if len(deep.Subsequence) < 5 {
		t.Fatalf("count-edges subsequence = %v, want the deep shared path", deep.Subsequence)
	}
	last := deep.Subsequence[len(deep.Subsequence)-1]
	if last.Kind != KindAS || last.AS != 3 {
		t.Errorf("count-edges stem ends at %v, want AS3 (deepest shared)", last)
	}
}
