package stemming

import (
	"strings"
	"testing"
)

// TestInternIdxBoundary pins the intern-table bound: the last index that
// fits in the 30-bit field is handed out, the first that would bleed
// into the kind bits panics with context instead of silently corrupting
// packed IDs (the pre-fix behaviour).
func TestInternIdxBoundary(t *testing.T) {
	if got := internIdx(maxInternEntries-1, "peer"); got != maxInternEntries-1 {
		t.Fatalf("internIdx at boundary = %d, want %d", got, maxInternEntries-1)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("internIdx past 2^30 entries did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "peer intern table full") {
			t.Fatalf("panic without context: %v", r)
		}
	}()
	internIdx(maxInternEntries, "peer")
}

// TestPackIDBoundaryRoundTrip: at the largest legal index every kind
// still round-trips through the packed representation — i.e. the bound
// in internIdx is exactly where corruption would begin, not earlier.
func TestPackIDBoundaryRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindPeer, KindNexthop, KindAS, KindPrefix} {
		id := packID(k, idxMask)
		gotKind, gotIdx := unpackID(id)
		if gotKind != k || gotIdx != idxMask {
			t.Errorf("packID(%v, %#x) round-trips to (%v, %#x)", k, idxMask, gotKind, gotIdx)
		}
		// One past the bound no longer round-trips (the index bit lands
		// in the kind field) — the failure mode the internIdx guard
		// exists to prevent.
		if gotKind, gotIdx := unpackID(packID(k, idxMask+1)); gotKind == k && gotIdx == idxMask+1 {
			t.Errorf("expected corruption past the bound for %v, got clean round-trip", k)
		}
	}
}
