// Package stemming implements the paper's Stemming algorithm (§III-B):
// statistical anomaly detection over a BGP event stream.
//
// Each event e — an announcement or withdrawal from peer x for prefix p
// with nexthop h and AS path a1…an — is expressed as the sequence
//
//	c = x h a1 … an p
//
// The algorithm counts every contiguous sub-sequence of every c, ranks
// them, and picks the strongest sub-sequence s'. The last adjacent pair of
// s' is the *stem* — the inferred problem location. The prefixes P whose
// sequences contain s' and the events E touching those prefixes form one
// strongly correlated *component* of the stream. Removing E and repeating
// decomposes the stream into its constituent incidents.
//
// Ranking detail: the paper ranks sub-sequences "in descending order of
// their counts", but raw counts always rank single elements highest (every
// sequence containing "x h a1 a2" also contains "a1"), which admits no
// stem. We therefore score s by count(s)·(len(s)−1) — occurrences times
// edges covered — which reproduces both behaviours the paper describes for
// Figure 4: it prefers 11423-209 (8 events × 1 edge) over any singleton,
// and when a failure sits one hop deeper it prefers the longer
// 11423-209-7018 over the more frequent but shorter 11423-209. Count-only
// and count×length scoring remain available for ablation.
package stemming

import (
	"fmt"
	"net/netip"
	"time"

	"rex/internal/event"
)

// Kind classifies a sequence token.
type Kind uint8

// Token kinds, in sequence-position order.
const (
	KindPeer Kind = iota + 1
	KindNexthop
	KindAS
	KindPrefix
)

// Token is one element of an event's sequence form, in display form.
type Token struct {
	Kind Kind
	// Addr is set for KindPeer and KindNexthop.
	Addr netip.Addr
	// AS is set for KindAS.
	AS uint32
	// Prefix is set for KindPrefix.
	Prefix netip.Prefix
}

// String renders the token for reports.
func (t Token) String() string {
	switch t.Kind {
	case KindPeer:
		return "peer:" + t.Addr.String()
	case KindNexthop:
		return "nexthop:" + t.Addr.String()
	case KindAS:
		return fmt.Sprintf("AS%d", t.AS)
	case KindPrefix:
		return t.Prefix.String()
	default:
		return "?"
	}
}

// Stem is the inferred problem location: the last pair of adjacent
// elements of the strongest sub-sequence.
type Stem struct {
	From Token
	To   Token
}

// String renders the stem as "from—to".
func (s Stem) String() string { return s.From.String() + "—" + s.To.String() }

// Component is one strongly correlated set of routing changes extracted
// from the stream.
type Component struct {
	// Stem is the problem location.
	Stem Stem
	// Subsequence is the full strongest sub-sequence s'.
	Subsequence []Token
	// Score is the ranking score of s' (see package doc).
	Score float64
	// Count is the number of event sequences containing s'.
	Count int
	// Prefixes is the affected prefix set P, in first-appearance order.
	Prefixes []netip.Prefix
	// EventIndexes are indexes into the analyzed stream of the events E
	// composing this component, ascending.
	EventIndexes []int
	// First and Last bound the component's events in time.
	First, Last time.Time
}

// NumEvents returns len(EventIndexes).
func (c *Component) NumEvents() int { return len(c.EventIndexes) }

// ScoreFunc ranks a sub-sequence given its occurrence count (fractional
// when Weight is set) and its token length.
type ScoreFunc func(count float64, length int) float64

// Score functions. ScoreCountEdges is the default (see package doc);
// ScoreCountOnly and ScoreCountLen exist for the ablation benches.
var (
	ScoreCountEdges ScoreFunc = func(count float64, length int) float64 { return count * float64(length-1) }
	ScoreCountOnly  ScoreFunc = func(count float64, _ int) float64 { return count }
	ScoreCountLen   ScoreFunc = func(count float64, length int) float64 { return count * float64(length) }
)

// Config tunes the analysis. The zero value is ready to use.
type Config struct {
	// MaxComponents bounds the recursive decomposition (default 8).
	MaxComponents int
	// MinScore stops the decomposition when the strongest remaining
	// sub-sequence scores below it (default 2).
	MinScore float64
	// MinCount is the minimum occurrence count (weighted sum when Weight
	// is set) for a sub-sequence to anchor a component; below it events
	// are uncorrelated noise (default 2, so a lone event never forms a
	// component).
	MinCount float64
	// MinEvents stops the decomposition when fewer events remain
	// (default 2).
	MinEvents int
	// MaxSubseqLen caps the sub-sequence length considered; 0 means
	// unlimited. Sequences are short (peer + nexthop + AS path + prefix),
	// so the cap mainly bounds pathological prepending.
	MaxSubseqLen int
	// Score ranks sub-sequences (default ScoreCountEdges).
	Score ScoreFunc
	// Weight, when set, weights each event's contribution to sub-sequence
	// counts (e.g. by traffic volume tied to its prefix, §III-D.2).
	// Counts become Σweight instead of occurrence counts.
	Weight func(e *event.Event) float64
}

func (c Config) withDefaults() Config {
	if c.MaxComponents <= 0 {
		c.MaxComponents = 8
	}
	if c.MinScore <= 0 {
		c.MinScore = 2
	}
	if c.MinCount <= 0 {
		c.MinCount = 2
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 2
	}
	if c.Score == nil {
		c.Score = ScoreCountEdges
	}
	return c
}

// Analyze decomposes the stream into its strongly correlated components,
// strongest first. The input stream is not modified.
func Analyze(s event.Stream, cfg Config) []Component {
	cfg = cfg.withDefaults()
	a := newAnalysis(s, cfg)
	var out []Component
	for len(out) < cfg.MaxComponents {
		comp, ok := a.extract()
		if !ok {
			break
		}
		out = append(out, comp)
	}
	return out
}

// Top returns only the strongest component, or ok=false when the stream
// has no correlation above the configured minimum.
func Top(s event.Stream, cfg Config) (Component, bool) {
	cfg = cfg.withDefaults()
	cfg.MaxComponents = 1
	comps := Analyze(s, cfg)
	if len(comps) == 0 {
		return Component{}, false
	}
	return comps[0], true
}
