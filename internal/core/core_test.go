package core

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/core/stemming"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/igp"
	"rex/internal/policy"
	"rex/internal/sim"
)

var t0 = time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)

// mixedStream builds: background noise over 2 hours, one session-reset
// spike at minute 30, and continuous low-grade customer flapping.
func mixedStream(t *testing.T) (event.Stream, *sim.ISPAnonSite, event.Stream) {
	t.Helper()
	// Proportions matter: the reset spike must tower over the rate
	// baseline while each customer flap (~15 events at this fleet size)
	// stays inside the grass variance — the paper's §IV-E setting.
	is := sim.ISPAnon(sim.ISPAnonConfig{
		PoPs: 2, RRsPerPoP: 1, Tier1Peers: 3,
		CustomerStubs: 60, PrefixesPerStub: 5,
	})
	baseline := is.BaselineRoutes()

	noise := sim.NoiseStream(baseline, 3000, 2*time.Hour, t0, 11)
	reset := sim.SessionResetScenario(is.Site, baseline, is.Tier1s[0], 20*time.Second, t0.Add(30*time.Minute))
	flap := sim.CustomerFlapScenario(is, 60, 2*time.Minute, t0)

	all := append(event.Stream{}, noise...)
	all = append(all, reset.Events...)
	all = append(all, flap.Events...)
	all.SortByTime()
	return all, is, reset.Events
}

func TestScanFindsSpikeAndChurn(t *testing.T) {
	s, _, resetEvents := mixedStream(t)
	d := NewDetector(Config{})
	alerts := d.Scan(s)
	if len(alerts) == 0 {
		t.Fatal("no alerts")
	}
	var spike, churn *Alert
	for i := range alerts {
		switch alerts[i].Kind {
		case AlertSpike:
			if spike == nil || alerts[i].EventCount > spike.EventCount {
				spike = &alerts[i]
			}
		case AlertChurn:
			churn = &alerts[i]
		}
	}
	if spike == nil {
		t.Fatal("session reset produced no spike alert")
	}
	if churn == nil {
		t.Fatal("customer flapping produced no churn alert")
	}
	// The spike window holds most of the reset events.
	if spike.EventCount < len(resetEvents)/2 {
		t.Errorf("spike captured %d of %d reset events", spike.EventCount, len(resetEvents))
	}
	if len(spike.Components) == 0 {
		t.Fatal("spike has no components")
	}
	// The churn alert's strongest component is the flapping customer.
	top := churn.Components[0]
	found := false
	for _, p := range top.Prefixes {
		if p == sim.FlapPrefix {
			found = true
		}
	}
	if !found {
		t.Errorf("churn top component prefixes = %v, want %v", top.Prefixes, sim.FlapPrefix)
	}
	if !strings.Contains(churn.Summary(), "churn") {
		t.Errorf("summary = %q", churn.Summary())
	}
}

func TestScanEmptyAndQuiet(t *testing.T) {
	d := NewDetector(Config{})
	if got := d.Scan(nil); got != nil {
		t.Errorf("alerts on empty stream: %v", got)
	}
	// A tiny quiet stream: no spike, too small for churn.
	quiet := event.Stream{
		{Time: t0, Type: event.Announce, Peer: netip.MustParseAddr("10.0.0.1"), Prefix: netip.MustParsePrefix("10.0.0.0/8")},
	}
	if got := d.Scan(quiet); len(got) != 0 {
		t.Errorf("alerts on quiet stream: %v", got)
	}
}

func TestAlertPolicyCorrelation(t *testing.T) {
	cfgText := `hostname edge3
router bgp 25
 neighbor 128.32.0.66 remote-as 11423
 neighbor 128.32.0.66 route-map IN in
!
ip community-list standard ISP permit 11423:65350
route-map IN permit 10
 match community ISP
 set local-preference 80
`
	rcfg, err := policy.Parse(strings.NewReader(cfgText))
	if err != nil {
		t.Fatal(err)
	}
	// A spike of withdrawals all tagged with the ISP community.
	var s event.Stream
	attrs := &bgp.PathAttrs{
		Origin:      bgp.OriginIGP,
		ASPath:      bgp.Sequence(11423, 209, 701),
		Nexthop:     netip.MustParseAddr("128.32.0.66"),
		Communities: []bgp.Community{bgp.MakeCommunity(11423, 65350)},
	}
	for i := 0; i < 400; i++ {
		s = append(s, event.Event{
			Time: t0.Add(time.Duration(i) * 100 * time.Millisecond),
			Type: event.Withdraw, Peer: netip.MustParseAddr("128.32.1.3"),
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i / 250), byte(i % 250), 0}), 24),
			Attrs:  attrs,
		})
	}
	// Some calm before and after so the spike stands out.
	for i := 0; i < 30; i++ {
		s = append(s, event.Event{
			Time: t0.Add(-time.Hour + time.Duration(i)*2*time.Minute),
			Type: event.Announce, Peer: netip.MustParseAddr("128.32.1.200"),
			Prefix: netip.MustParsePrefix("10.9.0.0/16"),
			Attrs:  &bgp.PathAttrs{ASPath: bgp.Sequence(11423), Nexthop: netip.MustParseAddr("128.32.0.90")},
		})
	}
	s.SortByTime()
	d := NewDetector(Config{Configs: []*policy.Config{rcfg}})
	alerts := d.Scan(s)
	var spike *Alert
	for i := range alerts {
		if alerts[i].Kind == AlertSpike {
			spike = &alerts[i]
		}
	}
	if spike == nil {
		t.Fatal("no spike alert")
	}
	if len(spike.Findings) == 0 {
		t.Fatal("no policy findings")
	}
	f := spike.Findings[0]
	if f.Policy.Community != bgp.MakeCommunity(11423, 65350) || f.Policy.LocalPref == nil || *f.Policy.LocalPref != 80 {
		t.Errorf("finding = %+v", f)
	}
}

func TestAlertIGPCorrelation(t *testing.T) {
	lsdb := igp.NewLSDB()
	lsdb.Install(igp.LSA{Origin: "a", Seq: 1, Time: t0.Add(-time.Hour), Links: []igp.Link{{To: "b", Metric: 1}}})
	lsdb.Install(igp.LSA{Origin: "b", Seq: 1, Time: t0.Add(-time.Hour), Links: []igp.Link{{To: "a", Metric: 1}}})
	// A metric change right inside the upcoming spike window.
	lsdb.Install(igp.LSA{Origin: "a", Seq: 2, Time: t0.Add(10 * time.Second), Links: []igp.Link{{To: "b", Metric: 100}}})

	var s event.Stream
	for i := 0; i < 300; i++ {
		s = append(s, event.Event{
			Time: t0.Add(time.Duration(i) * 100 * time.Millisecond),
			Type: event.Withdraw, Peer: netip.MustParseAddr("10.0.0.1"),
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i / 250), byte(i % 250), 0}), 24),
			Attrs:  &bgp.PathAttrs{ASPath: bgp.Sequence(1, 2), Nexthop: netip.MustParseAddr("10.0.0.9")},
		})
	}
	for i := 0; i < 30; i++ {
		s = append(s, event.Event{
			Time: t0.Add(-time.Hour + time.Duration(i)*2*time.Minute),
			Type: event.Announce, Peer: netip.MustParseAddr("10.0.0.2"),
			Prefix: netip.MustParsePrefix("10.9.0.0/16"),
			Attrs:  &bgp.PathAttrs{ASPath: bgp.Sequence(3), Nexthop: netip.MustParseAddr("10.0.0.8")},
		})
	}
	s.SortByTime()
	d := NewDetector(Config{LSDB: lsdb})
	alerts := d.Scan(s)
	var spike *Alert
	for i := range alerts {
		if alerts[i].Kind == AlertSpike {
			spike = &alerts[i]
		}
	}
	if spike == nil {
		t.Fatal("no spike")
	}
	if len(spike.IGPChanges) != 1 || spike.IGPChanges[0].Router != "a" {
		t.Errorf("IGP changes = %v", spike.IGPChanges)
	}
}

func TestAlertAnimate(t *testing.T) {
	s, is, _ := mixedStream(t)
	d := NewDetector(Config{})
	alerts := d.Scan(s)
	if len(alerts) == 0 {
		t.Fatal("no alerts")
	}
	var base []tamp.RouteEntry
	for _, r := range is.BaselineRoutes() {
		base = append(base, r.TAMPEntry())
	}
	anim := alerts[0].Animate(is.Name, base, tamp.AnimationConfig{})
	if anim.NumFrames == 0 || len(anim.Frames) == 0 {
		t.Errorf("animation frames = %d/%d", anim.NumFrames, len(anim.Frames))
	}
}

func TestPipelineBufferAndScan(t *testing.T) {
	p := NewPipeline(Config{ChurnMinEvents: 10, Stemming: stemming.Config{}}, 100)
	for i := 0; i < 150; i++ {
		p.Ingest(event.Event{
			Time: t0.Add(time.Duration(i) * time.Second),
			Type: event.Withdraw, Peer: netip.MustParseAddr("10.0.0.1"),
			Prefix: netip.MustParsePrefix("4.5.0.0/16"),
			Attrs:  &bgp.PathAttrs{ASPath: bgp.Sequence(2, 9), Nexthop: netip.MustParseAddr("10.3.4.5")},
		})
	}
	if p.Buffered() != 100 {
		t.Errorf("Buffered = %d, want 100 (cap)", p.Buffered())
	}
	alerts := p.Scan()
	if len(alerts) == 0 {
		t.Fatal("no alerts from pipeline")
	}
	if alerts[0].Components[0].Prefixes[0] != netip.MustParsePrefix("4.5.0.0/16") {
		t.Errorf("component = %+v", alerts[0].Components[0])
	}
	p.Reset()
	if p.Buffered() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestAlertKindString(t *testing.T) {
	if AlertSpike.String() != "spike" || AlertChurn.String() != "churn" {
		t.Error("kind strings")
	}
	a := Alert{Kind: AlertSpike, EventCount: 5}
	if !strings.Contains(a.Summary(), "no strong correlation") {
		t.Errorf("summary = %q", a.Summary())
	}
}

func TestRelatedIGPChanges(t *testing.T) {
	lsdb := igp.NewLSDB()
	// Router "edge-a" owns the nexthop network 10.0.0.0/24; "far" owns
	// something unrelated.
	lsdb.Install(igp.LSA{Origin: "edge-a", Seq: 1, Time: t0.Add(-time.Hour),
		Links:    []igp.Link{{To: "far", Metric: 1}},
		Networks: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")}})
	lsdb.Install(igp.LSA{Origin: "far", Seq: 1, Time: t0.Add(-time.Hour),
		Links:    []igp.Link{{To: "edge-a", Metric: 1}},
		Networks: []netip.Prefix{netip.MustParsePrefix("172.16.0.0/24")}})
	// Both routers change during the incident window.
	lsdb.Install(igp.LSA{Origin: "edge-a", Seq: 2, Time: t0.Add(5 * time.Second),
		Links:    []igp.Link{{To: "far", Metric: 50}},
		Networks: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")}})
	lsdb.Install(igp.LSA{Origin: "far", Seq: 2, Time: t0.Add(6 * time.Second),
		Links:    []igp.Link{{To: "edge-a", Metric: 50}},
		Networks: []netip.Prefix{netip.MustParsePrefix("172.16.0.0/24")}})

	var s event.Stream
	for i := 0; i < 300; i++ {
		s = append(s, event.Event{
			Time: t0.Add(time.Duration(i) * 100 * time.Millisecond),
			Type: event.Withdraw, Peer: netip.MustParseAddr("10.1.1.1"),
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i / 250), byte(i % 250), 0}), 24),
			// Nexthop inside edge-a's network.
			Attrs: &bgp.PathAttrs{ASPath: bgp.Sequence(1, 2), Nexthop: netip.MustParseAddr("10.0.0.9")},
		})
	}
	for i := 0; i < 30; i++ {
		s = append(s, event.Event{
			Time: t0.Add(-time.Hour + time.Duration(i)*2*time.Minute),
			Type: event.Announce, Peer: netip.MustParseAddr("10.1.1.2"),
			Prefix: netip.MustParsePrefix("10.9.0.0/16"),
			Attrs:  &bgp.PathAttrs{ASPath: bgp.Sequence(3), Nexthop: netip.MustParseAddr("172.16.9.9")},
		})
	}
	s.SortByTime()
	d := NewDetector(Config{LSDB: lsdb})
	var spike *Alert
	for _, a := range d.Scan(s) {
		if a.Kind == AlertSpike {
			spike = &a
			break
		}
	}
	if spike == nil {
		t.Fatal("no spike")
	}
	if len(spike.IGPChanges) != 2 {
		t.Fatalf("IGP changes in window = %d, want 2", len(spike.IGPChanges))
	}
	// Only edge-a's change relates to the component's nexthop.
	if len(spike.RelatedIGP) != 1 || spike.RelatedIGP[0].Router != "edge-a" {
		t.Errorf("RelatedIGP = %v", spike.RelatedIGP)
	}
}
