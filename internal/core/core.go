// Package core ties the paper's pieces into the real-time anomaly
// pipeline: event-rate analysis finds spikes (short-timescale anomalies:
// session resets, leaks, peering loss), Stemming decomposes both the
// spikes and the residual low-grade churn (long-timescale anomalies:
// persistent oscillations, flaky links) into correlated components, and
// each component is correlated against router policies (§III-D.1) and IGP
// changes (§III-D.3). The events of each alert can be handed to TAMP to
// animate the incident — the only coupling between the two algorithms the
// paper describes.
package core

import (
	"fmt"
	"sync"
	"time"

	"rex/internal/core/stemming"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/igp"
	"rex/internal/policy"
)

// AlertKind distinguishes how an incident surfaced.
type AlertKind uint8

// Alert kinds.
const (
	// AlertSpike: a surge of events above the rate baseline.
	AlertSpike AlertKind = iota + 1
	// AlertChurn: no surge, but a strong correlation in the low-grade
	// "grass" (paper §IV-E/F).
	AlertChurn
)

// String names the kind.
func (k AlertKind) String() string {
	switch k {
	case AlertSpike:
		return "spike"
	case AlertChurn:
		return "churn"
	default:
		return "alert(?)"
	}
}

// Alert is one detected incident.
type Alert struct {
	Kind       AlertKind
	Start, End time.Time
	// EventCount is the number of events in the alert window.
	EventCount int
	// Components are the correlated components, strongest first.
	Components []stemming.Component
	// Findings correlate the strongest component with router policies.
	Findings []policy.Finding
	// IGPChanges are link-state changes inside the window.
	IGPChanges []igp.Change
	// RelatedIGP narrows IGPChanges to routers that own a BGP nexthop
	// appearing in the strongest component — the automated version of the
	// paper's manual §III-D.3 drill-down.
	RelatedIGP []igp.Change
	// Events is the window's event slice (TAMP animation input).
	Events event.Stream
}

// Summary renders a one-line description.
func (a *Alert) Summary() string {
	if len(a.Components) == 0 {
		return fmt.Sprintf("%v of %d events (no strong correlation)", a.Kind, a.EventCount)
	}
	c := &a.Components[0]
	return fmt.Sprintf("%v of %d events: %d component(s), strongest at %v (%d prefixes, %d events)",
		a.Kind, a.EventCount, len(a.Components), c.Stem, len(c.Prefixes), c.NumEvents())
}

// Config tunes the detector. The zero value is usable.
type Config struct {
	// SpikeBucket is the rate-series bucket (default 1 minute).
	SpikeBucket time.Duration
	// SpikeK is the MAD multiplier for spike detection (default 8).
	SpikeK float64
	// ChurnMinEvents is the minimum component size for a churn alert
	// (default 50): smaller residual correlations are treated as noise.
	ChurnMinEvents int
	// Stemming configures the decomposition.
	Stemming stemming.Config
	// Configs are router configurations for policy correlation.
	Configs []*policy.Config
	// LSDB, when set, contributes IGP changes to alerts.
	LSDB *igp.LSDB
}

func (c Config) withDefaults() Config {
	if c.SpikeBucket <= 0 {
		c.SpikeBucket = time.Minute
	}
	if c.SpikeK <= 0 {
		c.SpikeK = 8
	}
	if c.ChurnMinEvents <= 0 {
		c.ChurnMinEvents = 50
	}
	return c
}

// Detector runs the scan over event windows.
type Detector struct {
	cfg Config
}

// NewDetector builds a detector.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// Scan analyzes a stream and returns alerts: one per rate spike, plus
// churn alerts for strong correlations in the residual events. The stream
// need not be sorted.
func (d *Detector) Scan(s event.Stream) []Alert {
	if len(s) == 0 {
		return nil
	}
	rate := event.Rate(s, d.cfg.SpikeBucket)
	spikes := rate.Spikes(d.cfg.SpikeK)

	var alerts []Alert
	inSpike := make([]bool, len(s))
	for _, sp := range spikes {
		var window event.Stream
		for i := range s {
			if !s[i].Time.Before(sp.Start) && s[i].Time.Before(sp.End) {
				window = append(window, s[i])
				inSpike[i] = true
			}
		}
		alerts = append(alerts, d.analyzeWindow(AlertSpike, sp.Start, sp.End, window))
	}

	// Residual churn: what remains after spikes are cut out.
	residual := make(event.Stream, 0, len(s))
	for i := range s {
		if !inSpike[i] {
			residual = append(residual, s[i])
		}
	}
	if len(residual) >= d.cfg.ChurnMinEvents {
		first, last, _ := residual.TimeRange()
		churn := d.analyzeWindow(AlertChurn, first, last.Add(time.Nanosecond), residual)
		// Keep only components big enough to matter.
		var kept []stemming.Component
		for _, c := range churn.Components {
			if c.NumEvents() >= d.cfg.ChurnMinEvents {
				kept = append(kept, c)
			}
		}
		churn.Components = kept
		if len(kept) > 0 {
			churn.Findings = d.correlate(&kept[0], residual)
			alerts = append(alerts, churn)
		}
	}
	return alerts
}

func (d *Detector) analyzeWindow(kind AlertKind, start, end time.Time, window event.Stream) Alert {
	a := Alert{
		Kind: kind, Start: start, End: end,
		EventCount: len(window),
		Events:     window,
	}
	a.Components = stemming.Analyze(window, d.cfg.Stemming)
	if len(a.Components) > 0 {
		a.Findings = d.correlate(&a.Components[0], window)
	}
	if d.cfg.LSDB != nil {
		a.IGPChanges = d.cfg.LSDB.Changes(start, end)
		if len(a.Components) > 0 {
			a.RelatedIGP = relatedIGPChanges(&a.Components[0], window, a.IGPChanges, d.cfg.LSDB)
		}
	}
	return a
}

// relatedIGPChanges keeps the changes whose router owns a nexthop used by
// the component's events.
func relatedIGPChanges(c *stemming.Component, window event.Stream, changes []igp.Change, lsdb *igp.LSDB) []igp.Change {
	owners := map[string]bool{}
	for _, idx := range c.EventIndexes {
		if idx < 0 || idx >= len(window) {
			continue
		}
		nh := window[idx].Nexthop()
		if !nh.IsValid() {
			continue
		}
		if router, ok := lsdb.Owner(nh); ok {
			owners[router] = true
		}
	}
	if len(owners) == 0 {
		return nil
	}
	var out []igp.Change
	for _, ch := range changes {
		if owners[ch.Router] {
			out = append(out, ch)
		}
	}
	return out
}

func (d *Detector) correlate(c *stemming.Component, window event.Stream) []policy.Finding {
	if len(d.cfg.Configs) == 0 {
		return nil
	}
	return policy.Correlate(c, window, d.cfg.Configs)
}

// Animate renders an alert's events as a TAMP animation over the given
// baseline routing state.
func (a *Alert) Animate(site string, baseline []tamp.RouteEntry, cfg tamp.AnimationConfig) *tamp.Animation {
	return tamp.Animate(site, baseline, a.Events, cfg)
}

// Pipeline buffers a live event feed (e.g. from the collector) and scans
// it on demand. It is safe for concurrent use.
type Pipeline struct {
	detector *Detector

	mu  sync.Mutex
	buf event.Stream
	// maxBuffered bounds memory; oldest events are dropped first.
	maxBuffered int
}

// NewPipeline builds a pipeline keeping at most maxBuffered events
// (default 1,000,000 — roughly the paper's largest analyzed window).
func NewPipeline(cfg Config, maxBuffered int) *Pipeline {
	if maxBuffered <= 0 {
		maxBuffered = 1_000_000
	}
	return &Pipeline{detector: NewDetector(cfg), maxBuffered: maxBuffered}
}

// Ingest appends one event (usable directly as a collector.Handler).
func (p *Pipeline) Ingest(e event.Event) {
	p.mu.Lock()
	p.buf = append(p.buf, e)
	if len(p.buf) > p.maxBuffered {
		drop := len(p.buf) - p.maxBuffered
		p.buf = append(event.Stream(nil), p.buf[drop:]...)
	}
	p.mu.Unlock()
}

// Buffered returns the number of buffered events.
func (p *Pipeline) Buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// Scan analyzes the current buffer.
func (p *Pipeline) Scan() []Alert {
	p.mu.Lock()
	snapshot := make(event.Stream, len(p.buf))
	copy(snapshot, p.buf)
	p.mu.Unlock()
	return p.detector.Scan(snapshot)
}

// Reset clears the buffer (e.g. after acting on a scan).
func (p *Pipeline) Reset() {
	p.mu.Lock()
	p.buf = nil
	p.mu.Unlock()
}
