package tamp

import (
	"net/netip"
	"sort"
	"time"

	"rex/internal/event"
)

// Animation defaults: the paper fixes play time at 30 seconds of 25
// frames/second regardless of the actual event time range, consolidating
// many routing changes per frame.
const (
	DefaultPlayDuration = 30 * time.Second
	DefaultFPS          = 25
)

// EdgeColor is the visual state of an edge in one animation frame.
type EdgeColor uint8

// Edge colors, as in the paper's Figure 3 legend.
const (
	// ColorBlack: not changing.
	ColorBlack EdgeColor = iota + 1
	// ColorBlue: the edge is losing prefixes.
	ColorBlue
	// ColorGreen: the edge is gaining prefixes.
	ColorGreen
	// ColorYellow: the prefix count is flapping too fast to animate
	// (both gains and losses within one frame).
	ColorYellow
)

// String names the color.
func (c EdgeColor) String() string {
	switch c {
	case ColorBlack:
		return "black"
	case ColorBlue:
		return "blue"
	case ColorGreen:
		return "green"
	case ColorYellow:
		return "yellow"
	default:
		return "color(?)"
	}
}

// EdgeFrameState is the state of one edge at the end of a frame.
type EdgeFrameState struct {
	Edge EdgeRef
	// Count is the unique-prefix weight at frame end.
	Count int
	// MaxEver is the gray-shadow value: the largest weight the edge ever
	// carried.
	MaxEver int
	// Ups and Downs count unique-weight transitions within the frame.
	Ups, Downs int
	Color      EdgeColor
}

// Frame consolidates the routing changes of one animation time slice.
// Frames with no changes are omitted from Animation.Frames.
type Frame struct {
	// Index is the frame's position in 0..NumFrames-1.
	Index int
	// Time is the event-stream time at the end of the frame (the
	// animation clock).
	Time    time.Time
	Changes []EdgeFrameState
}

// AnimationConfig tunes Animate. The zero value uses the paper's defaults.
type AnimationConfig struct {
	PlayDuration time.Duration
	FPS          int
}

func (c AnimationConfig) frames() int {
	d := c.PlayDuration
	if d <= 0 {
		d = DefaultPlayDuration
	}
	fps := c.FPS
	if fps <= 0 {
		fps = DefaultFPS
	}
	return int(d.Seconds() * float64(fps))
}

// Animation is a rendered TAMP animation: an initial edge state plus the
// non-empty frames.
type Animation struct {
	Site string
	// Start and End bound the event stream's actual time range (which the
	// paper notes can span seconds to days, always played back in
	// PlayDuration).
	Start, End   time.Time
	PlayDuration time.Duration
	FPS          int
	NumFrames    int
	// Initial is the edge state before the first event (all black).
	Initial []EdgeFrameState
	Frames  []Frame
	// Graph is the final graph state after every event, usable for a
	// closing Snapshot.
	Graph *Graph
}

// FrameTime returns the event-stream time at the end of frame i.
func (a *Animation) FrameTime(i int) time.Time {
	if a.NumFrames == 0 {
		return a.Start
	}
	span := a.End.Sub(a.Start)
	return a.Start.Add(span * time.Duration(i+1) / time.Duration(a.NumFrames))
}

// EdgeSeries reconstructs the per-frame unique-prefix count of one edge —
// the plot beside the animation controls in the paper's Figure 3. The
// returned slice has NumFrames+1 entries; entry 0 is the initial state.
func (a *Animation) EdgeSeries(ref EdgeRef) []int {
	series := make([]int, a.NumFrames+1)
	cur := 0
	for _, st := range a.Initial {
		if st.Edge == ref {
			cur = st.Count
			break
		}
	}
	series[0] = cur
	next := 1
	for _, f := range a.Frames {
		for ; next <= f.Index; next++ {
			series[next] = cur
		}
		for _, ch := range f.Changes {
			if ch.Edge == ref {
				cur = ch.Count
				break
			}
		}
		series[f.Index+1] = cur
		next = f.Index + 2
	}
	for ; next <= a.NumFrames; next++ {
		series[next] = cur
	}
	return series
}

// StateAt reconstructs the full edge state at the end of frame idx. idx -1
// returns the initial state. Edges changed in exactly frame idx keep that
// frame's color and transition counts; all others are black. The result is
// sorted deterministically.
func (a *Animation) StateAt(idx int) []EdgeFrameState {
	state := make(map[EdgeRef]EdgeFrameState, len(a.Initial))
	for _, st := range a.Initial {
		state[st.Edge] = st
	}
	for _, f := range a.Frames {
		if f.Index > idx {
			break
		}
		for _, ch := range f.Changes {
			if f.Index < idx {
				ch.Color = ColorBlack
				ch.Ups, ch.Downs = 0, 0
			}
			state[ch.Edge] = ch
		}
	}
	out := make([]EdgeFrameState, 0, len(state))
	for _, st := range state {
		if st.Count == 0 && st.Color == ColorBlack {
			continue // long-gone edge
		}
		out = append(out, st)
	}
	sortStates(out)
	return out
}

// EntryFromEvent converts an event to the RouteEntry chain it denotes.
func EntryFromEvent(e *event.Event) RouteEntry {
	return EntryFromEventNamed(e.Peer.String(), e)
}

// EntryFromEventNamed is EntryFromEvent with the router name supplied by
// the caller, for hot paths that cache the peer's string form instead of
// re-rendering it per event.
func EntryFromEventNamed(router string, e *event.Event) RouteEntry {
	r := RouteEntry{Router: router, Prefix: e.Prefix}
	if e.Attrs != nil {
		r.Nexthop = e.Attrs.Nexthop
		r.ASPath = e.Attrs.ASPath.ASNs()
	}
	return r
}

type routeKey struct {
	router string
	prefix netip.Prefix
}

type frameStat struct {
	start      int
	ups, downs int
}

// Animate builds a TAMP animation: base is the RIB state before the
// events; events are applied in time order with per-frame consolidation.
func Animate(site string, base []RouteEntry, events event.Stream, cfg AnimationConfig) *Animation {
	return NewAnimator(site, base).Run(events, cfg)
}

// Animator holds a prepared baseline routing state. Separating
// preparation from Run matches the paper's measurement setup ("we do not
// include time to rebuild the data structures"): build the Animator once,
// then Run times only event tracking and frame generation. Run consumes
// the Animator; build a fresh one per animation.
type Animator struct {
	site    string
	g       *Graph
	current map[routeKey]RouteEntry
	used    bool
}

// NewAnimator ingests the baseline RIB state.
func NewAnimator(site string, base []RouteEntry) *Animator {
	g := New(site)
	current := make(map[routeKey]RouteEntry, len(base))
	for _, r := range base {
		key := routeKey{router: r.Router, prefix: r.Prefix}
		if old, ok := current[key]; ok {
			g.RemoveRoute(old)
		}
		g.AddRoute(r)
		current[key] = r
	}
	return &Animator{site: site, g: g, current: current}
}

// Run tracks the events and produces the animation. It must be called at
// most once; it panics on reuse (the graph state has been consumed).
func (a *Animator) Run(events event.Stream, cfg AnimationConfig) *Animation {
	if a.used {
		panic("tamp: Animator.Run called twice")
	}
	a.used = true
	nframes := cfg.frames()
	g := a.g
	current := a.current

	anim := &Animation{
		Site:         a.site,
		PlayDuration: cfg.PlayDuration,
		FPS:          cfg.FPS,
		Graph:        g,
	}
	if anim.PlayDuration <= 0 {
		anim.PlayDuration = DefaultPlayDuration
	}
	if anim.FPS <= 0 {
		anim.FPS = DefaultFPS
	}

	// Initial edge state, deterministic order.
	for _, e := range g.edges {
		if len(e.prefixes) == 0 {
			continue
		}
		anim.Initial = append(anim.Initial, EdgeFrameState{
			Edge:    g.edgeRef(e),
			Count:   len(e.prefixes),
			MaxEver: e.maxEver,
			Color:   ColorBlack,
		})
	}
	sortStates(anim.Initial)

	if len(events) == 0 {
		return anim
	}
	ordered := append(event.Stream(nil), events...)
	ordered.SortByTime()
	anim.Start = ordered[0].Time
	anim.End = ordered[len(ordered)-1].Time
	span := anim.End.Sub(anim.Start)
	if span <= 0 {
		nframes = 1
	}
	anim.NumFrames = nframes

	dirty := make(map[*edgeState]*frameStat)
	g.onEdgeChange = func(e *edgeState, delta int) {
		st, ok := dirty[e]
		if !ok {
			st = &frameStat{start: len(e.prefixes) - delta}
			dirty[e] = st
		}
		if delta > 0 {
			st.ups++
		} else {
			st.downs++
		}
	}

	flush := func(frameIdx int) {
		if len(dirty) == 0 {
			return
		}
		f := Frame{Index: frameIdx, Time: anim.FrameTime(frameIdx)}
		for e, st := range dirty {
			end := len(e.prefixes)
			state := EdgeFrameState{
				Edge:    g.edgeRef(e),
				Count:   end,
				MaxEver: e.maxEver,
				Ups:     st.ups,
				Downs:   st.downs,
			}
			switch {
			case st.ups > 0 && st.downs > 0:
				state.Color = ColorYellow
			case end > st.start:
				state.Color = ColorGreen
			case end < st.start:
				state.Color = ColorBlue
			default:
				state.Color = ColorBlack
			}
			f.Changes = append(f.Changes, state)
			delete(dirty, e)
		}
		sortStates(f.Changes)
		anim.Frames = append(anim.Frames, f)
	}

	frameOf := func(t time.Time) int {
		if span <= 0 {
			return 0
		}
		idx := int(int64(t.Sub(anim.Start)) * int64(nframes) / int64(span))
		if idx >= nframes {
			idx = nframes - 1
		}
		return idx
	}

	curFrame := 0
	for i := range ordered {
		e := &ordered[i]
		if f := frameOf(e.Time); f != curFrame {
			flush(curFrame)
			curFrame = f
		}
		key := routeKey{router: e.Peer.String(), prefix: e.Prefix}
		switch e.Type {
		case event.Announce:
			entry := EntryFromEvent(e)
			if old, ok := current[key]; ok {
				if entryEqual(old, entry) {
					continue // duplicate announcement: no routing change
				}
				g.ReplaceRoute(old, entry)
			} else {
				g.AddRoute(entry)
			}
			current[key] = entry
		case event.Withdraw:
			if old, ok := current[key]; ok {
				g.RemoveRoute(old)
				delete(current, key)
			}
		}
	}
	flush(curFrame)
	g.onEdgeChange = nil
	return anim
}

func entryEqual(a, b RouteEntry) bool {
	if a.Router != b.Router || a.Nexthop != b.Nexthop || a.Prefix != b.Prefix || len(a.ASPath) != len(b.ASPath) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	return true
}

func sortStates(states []EdgeFrameState) {
	sort.Slice(states, func(i, j int) bool {
		if states[i].Edge.From != states[j].Edge.From {
			return nodeLess(states[i].Edge.From, states[j].Edge.From)
		}
		return nodeLess(states[i].Edge.To, states[j].Edge.To)
	})
}
