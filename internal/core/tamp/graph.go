// Package tamp implements the paper's TAMP algorithm (Threshold And Merge
// Prefixes, §III-A): a visualization of the large-scale structure of a set
// of BGP routes "as the routers see it".
//
// Each route contributes a chain root → router → nexthop → AS₁ → … → ASₙ →
// prefix. Chains from all routers merge into one graph; an edge's weight
// is the number of *unique* prefixes carried over it (set union across
// routers, not a sum — see the paper's Figure 1(c)). Pruning then keeps
// only the heavily used parts: a flat fractional threshold (default 5% of
// total prefixes) or hierarchical pruning that always keeps the elements
// close to the operator's own domain.
//
// The same graph maintains per-edge prefix reference counts so routes can
// be removed as well as added, which is what the animation engine
// (animate.go) uses to track a live event stream.
package tamp

import (
	"fmt"
	"net/netip"
	"strconv"
)

// NodeKind classifies a TAMP graph node.
type NodeKind uint8

// Node kinds in root-to-leaf order.
const (
	KindRoot NodeKind = iota + 1
	KindRouter
	KindNexthop
	KindAS
	KindPrefix
)

// NodeID identifies a node: a kind plus its display name. NodeIDs are
// comparable and usable as map keys.
type NodeID struct {
	Kind NodeKind
	Name string
}

// String renders the node name as drawn in pictures.
func (n NodeID) String() string {
	if n.Kind == KindAS {
		return "AS" + n.Name
	}
	return n.Name
}

// Node constructors.
func RootNode(site string) NodeID     { return NodeID{Kind: KindRoot, Name: site} }
func RouterNode(name string) NodeID   { return NodeID{Kind: KindRouter, Name: name} }
func NexthopNode(a netip.Addr) NodeID { return NodeID{Kind: KindNexthop, Name: a.String()} }
func ASNode(asn uint32) NodeID {
	return NodeID{Kind: KindAS, Name: strconv.FormatUint(uint64(asn), 10)}
}
func PrefixNode(p netip.Prefix) NodeID { return NodeID{Kind: KindPrefix, Name: p.String()} }

// RouteEntry is TAMP's input: one RIB entry of one router.
type RouteEntry struct {
	// Router names the BGP edge router (or route reflector) whose RIB the
	// entry belongs to.
	Router string
	// Nexthop is the route's BGP nexthop. An invalid Addr omits the
	// nexthop hop from the chain.
	Nexthop netip.Addr
	// ASPath is the flattened AS path.
	ASPath []uint32
	Prefix netip.Prefix
}

// EdgeRef identifies an edge of the (merged) TAMP graph.
type EdgeRef struct {
	From NodeID
	To   NodeID
}

// String renders "from->to".
func (e EdgeRef) String() string { return e.From.String() + "->" + e.To.String() }

type edgeState struct {
	from, to uint32
	// prefixes maps interned prefix → number of routes carrying it over
	// this edge. Unique-prefix weight is len(prefixes).
	prefixes map[uint32]int32
	// maxEver is the largest unique-prefix weight the edge has carried —
	// the gray shadow in animations.
	maxEver int
}

// Graph is the merged TAMP graph for one site. It is not safe for
// concurrent use.
type Graph struct {
	site string

	nodeIdx   map[NodeID]uint32
	nodeByIdx []NodeID

	pfxIdx   map[netip.Prefix]uint32
	pfxByIdx []netip.Prefix
	// pfxTotal refcounts routes per prefix across the whole graph; its
	// length is the unique-prefix total that thresholds are relative to.
	pfxTotal map[uint32]int32

	edges map[uint64]*edgeState
	out   map[uint32][]uint32

	// onEdgeChange, when set, observes every unique-weight transition of
	// an edge (the animation engine's hook). delta is +1 or -1.
	onEdgeChange func(e *edgeState, delta int)

	// Typed node-index caches: chain building looks nodes up by their
	// raw value and renders the display-name string only on first
	// sight, so the steady-state route churn path allocates no strings.
	routerNode  map[string]uint32
	nexthopNode map[netip.Addr]uint32
	asNode      map[uint32]uint32
	prefixNode  map[netip.Prefix]uint32

	chainBuf []uint32 // scratch for route chains
	// ReplaceRoute scratch (old chain copy, edge pairs, match marks).
	oldChainBuf []uint32
	edgePairBuf []edgePair
	matchedBuf  []bool
}

type edgePair struct{ from, to uint32 }

// New returns an empty graph whose root represents the named site.
func New(site string) *Graph {
	g := &Graph{
		site:        site,
		nodeIdx:     make(map[NodeID]uint32),
		pfxIdx:      make(map[netip.Prefix]uint32),
		pfxTotal:    make(map[uint32]int32),
		edges:       make(map[uint64]*edgeState),
		out:         make(map[uint32][]uint32),
		routerNode:  make(map[string]uint32),
		nexthopNode: make(map[netip.Addr]uint32),
		asNode:      make(map[uint32]uint32),
		prefixNode:  make(map[netip.Prefix]uint32),
	}
	g.node(RootNode(site)) // index 0
	return g
}

// Site returns the site name given to New.
func (g *Graph) Site() string { return g.site }

func (g *Graph) node(id NodeID) uint32 {
	idx, ok := g.nodeIdx[id]
	if !ok {
		idx = uint32(len(g.nodeByIdx))
		g.nodeIdx[id] = idx
		g.nodeByIdx = append(g.nodeByIdx, id)
	}
	return idx
}

func (g *Graph) prefix(p netip.Prefix) uint32 {
	idx, ok := g.pfxIdx[p]
	if !ok {
		idx = uint32(len(g.pfxByIdx))
		g.pfxIdx[p] = idx
		g.pfxByIdx = append(g.pfxByIdx, p)
	}
	return idx
}

// Cached node-index lookups: each renders its NodeID (and the string it
// carries) only the first time the value is seen.

func (g *Graph) routerIdx(name string) uint32 {
	idx, ok := g.routerNode[name]
	if !ok {
		idx = g.node(RouterNode(name))
		g.routerNode[name] = idx
	}
	return idx
}

func (g *Graph) nexthopIdx(a netip.Addr) uint32 {
	idx, ok := g.nexthopNode[a]
	if !ok {
		idx = g.node(NexthopNode(a))
		g.nexthopNode[a] = idx
	}
	return idx
}

func (g *Graph) asIdx(asn uint32) uint32 {
	idx, ok := g.asNode[asn]
	if !ok {
		idx = g.node(ASNode(asn))
		g.asNode[asn] = idx
	}
	return idx
}

func (g *Graph) prefixNodeIdx(p netip.Prefix) uint32 {
	idx, ok := g.prefixNode[p]
	if !ok {
		idx = g.node(PrefixNode(p))
		g.prefixNode[p] = idx
	}
	return idx
}

func edgeKey(from, to uint32) uint64 { return uint64(from)<<32 | uint64(to) }

func (g *Graph) edge(from, to uint32) *edgeState {
	k := edgeKey(from, to)
	e, ok := g.edges[k]
	if !ok {
		e = &edgeState{from: from, to: to, prefixes: make(map[uint32]int32)}
		g.edges[k] = e
		g.out[from] = append(g.out[from], to)
	}
	return e
}

// chain computes the node-index chain of a route, collapsing consecutive
// duplicate ASes (path prepending) so prepended paths do not create
// self-edges.
func (g *Graph) chain(r RouteEntry) []uint32 {
	buf := g.chainBuf[:0]
	buf = append(buf, 0) // root
	buf = append(buf, g.routerIdx(r.Router))
	if r.Nexthop.IsValid() {
		buf = append(buf, g.nexthopIdx(r.Nexthop))
	}
	prev := uint32(0)
	havePrev := false
	for _, asn := range r.ASPath {
		if havePrev && asn == prev {
			continue
		}
		buf = append(buf, g.asIdx(asn))
		prev, havePrev = asn, true
	}
	buf = append(buf, g.prefixNodeIdx(r.Prefix))
	g.chainBuf = buf
	return buf
}

// AddRoute merges one route into the graph.
func (g *Graph) AddRoute(r RouteEntry) {
	chain := g.chain(r)
	pid := g.prefix(r.Prefix)
	g.pfxTotal[pid]++
	for i := 0; i+1 < len(chain); i++ {
		e := g.edge(chain[i], chain[i+1])
		e.prefixes[pid]++
		if e.prefixes[pid] == 1 { // unique weight grew
			if w := len(e.prefixes); w > e.maxEver {
				e.maxEver = w
			}
			if g.onEdgeChange != nil {
				g.onEdgeChange(e, +1)
			}
		}
	}
}

// RemoveRoute removes a route previously added with AddRoute. Removing a
// route that is not present corrupts nothing but may leave stray counts;
// callers (the animator's RIB shadow) only remove what they added.
func (g *Graph) RemoveRoute(r RouteEntry) {
	chain := g.chain(r)
	pid, ok := g.pfxIdx[r.Prefix]
	if !ok {
		return
	}
	if g.pfxTotal[pid] > 0 {
		g.pfxTotal[pid]--
		if g.pfxTotal[pid] == 0 {
			delete(g.pfxTotal, pid)
		}
	}
	for i := 0; i+1 < len(chain); i++ {
		e, ok := g.edges[edgeKey(chain[i], chain[i+1])]
		if !ok {
			continue
		}
		if n := e.prefixes[pid]; n > 1 {
			e.prefixes[pid] = n - 1
		} else if n == 1 {
			delete(e.prefixes, pid)
			if g.onEdgeChange != nil {
				g.onEdgeChange(e, -1)
			}
		}
	}
}

// ReplaceRoute atomically replaces old with new for the same prefix: only
// the edges that differ between the two chains see membership changes, so
// the unchanged head of the path (typically root→router→nexthop) is not
// reported as a transition to the animation hook.
func (g *Graph) ReplaceRoute(old, new RouteEntry) {
	if old.Prefix != new.Prefix {
		g.RemoveRoute(old)
		g.AddRoute(new)
		return
	}
	// The old chain is copied into reused scratch before the second
	// chain() call overwrites chainBuf; the edge-pair and match scratch
	// are reused the same way, so a steady-state replace allocates
	// nothing.
	oldChain := append(g.oldChainBuf[:0], g.chain(old)...)
	g.oldChainBuf = oldChain
	newChain := g.chain(new)
	pid := g.prefix(new.Prefix)

	oldEdges := g.edgePairBuf[:0]
	for i := 0; i+1 < len(oldChain); i++ {
		oldEdges = append(oldEdges, edgePair{oldChain[i], oldChain[i+1]})
	}
	g.edgePairBuf = oldEdges
	matched := g.matchedBuf[:0]
	for range oldEdges {
		matched = append(matched, false)
	}
	g.matchedBuf = matched
	for i := 0; i+1 < len(newChain); i++ {
		pair := edgePair{newChain[i], newChain[i+1]}
		reused := false
		for j, oe := range oldEdges {
			if !matched[j] && oe == pair {
				matched[j] = true
				reused = true
				break
			}
		}
		if !reused {
			e := g.edge(pair.from, pair.to)
			e.prefixes[pid]++
			if e.prefixes[pid] == 1 {
				if w := len(e.prefixes); w > e.maxEver {
					e.maxEver = w
				}
				if g.onEdgeChange != nil {
					g.onEdgeChange(e, +1)
				}
			}
		}
	}
	for j, oe := range oldEdges {
		if matched[j] {
			continue
		}
		e, ok := g.edges[edgeKey(oe.from, oe.to)]
		if !ok {
			continue
		}
		if n := e.prefixes[pid]; n > 1 {
			e.prefixes[pid] = n - 1
		} else if n == 1 {
			delete(e.prefixes, pid)
			if g.onEdgeChange != nil {
				g.onEdgeChange(e, -1)
			}
		}
	}
}

// TotalPrefixes returns the number of unique prefixes currently in the
// graph — the base that fractional pruning thresholds refer to.
func (g *Graph) TotalPrefixes() int { return len(g.pfxTotal) }

// NumEdges returns the number of edges that currently carry at least one
// prefix.
func (g *Graph) NumEdges() int {
	n := 0
	for _, e := range g.edges {
		if len(e.prefixes) > 0 {
			n++
		}
	}
	return n
}

// Weight returns the unique-prefix count on the edge from→to (0 if the
// edge does not exist).
func (g *Graph) Weight(from, to NodeID) int {
	fi, ok := g.nodeIdx[from]
	if !ok {
		return 0
	}
	ti, ok := g.nodeIdx[to]
	if !ok {
		return 0
	}
	e, ok := g.edges[edgeKey(fi, ti)]
	if !ok {
		return 0
	}
	return len(e.prefixes)
}

// EdgePrefixes returns the unique prefixes currently carried on the edge,
// in no particular order. Nil if the edge does not exist or is empty.
func (g *Graph) EdgePrefixes(from, to NodeID) []netip.Prefix {
	fi, ok := g.nodeIdx[from]
	if !ok {
		return nil
	}
	ti, ok := g.nodeIdx[to]
	if !ok {
		return nil
	}
	e, ok := g.edges[edgeKey(fi, ti)]
	if !ok || len(e.prefixes) == 0 {
		return nil
	}
	out := make([]netip.Prefix, 0, len(e.prefixes))
	for pid := range e.prefixes {
		out = append(out, g.pfxByIdx[pid])
	}
	return out
}

func (g *Graph) edgeRef(e *edgeState) EdgeRef {
	return EdgeRef{From: g.nodeByIdx[e.from], To: g.nodeByIdx[e.to]}
}

// Validate checks internal consistency (used by property tests): every
// edge refcount positive, maxEver >= current weight, adjacency covers
// exactly the live edges.
func (g *Graph) Validate() error {
	for k, e := range g.edges {
		if edgeKey(e.from, e.to) != k {
			return fmt.Errorf("edge key mismatch for %v", g.edgeRef(e))
		}
		for pid, n := range e.prefixes {
			if n <= 0 {
				return fmt.Errorf("edge %v: prefix %v refcount %d", g.edgeRef(e), g.pfxByIdx[pid], n)
			}
		}
		if len(e.prefixes) > e.maxEver {
			return fmt.Errorf("edge %v: weight %d exceeds maxEver %d", g.edgeRef(e), len(e.prefixes), e.maxEver)
		}
	}
	for pid, n := range g.pfxTotal {
		if n <= 0 {
			return fmt.Errorf("prefix %v total refcount %d", g.pfxByIdx[pid], n)
		}
	}
	return nil
}
