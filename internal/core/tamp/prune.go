package tamp

import "sort"

// DefaultThreshold is the paper's default pruning fraction: edges and
// nodes carrying less than 5% of total prefixes are pruned.
const DefaultThreshold = 0.05

// PruneOptions controls Snapshot pruning.
type PruneOptions struct {
	// Threshold is the fraction of total prefixes below which an edge is
	// pruned (default DefaultThreshold). Zero means the default; negative
	// disables threshold pruning entirely.
	Threshold float64
	// KeepDepth implements hierarchical pruning: edges whose source node
	// lies at depth < KeepDepth from the root are always kept, regardless
	// of weight. The paper's Figure 5 keeps all peers, nexthops and
	// neighbor ASes (KeepDepth 3) and prunes the rest at 5%.
	KeepDepth int
	// IncludePrefixLeaves keeps per-prefix leaf nodes. By default they
	// are dropped before thresholding: pictures aggregate at the AS
	// level, as in the paper's figures.
	IncludePrefixLeaves bool
}

// PictureNode is a surviving node of a pruned snapshot.
type PictureNode struct {
	ID    NodeID
	Depth int
}

// PictureEdge is a surviving edge of a pruned snapshot.
type PictureEdge struct {
	From   NodeID
	To     NodeID
	Weight int
	// Fraction is Weight over the graph's total prefixes at snapshot
	// time.
	Fraction float64
	// MaxEver is the largest weight the edge has carried (gray shadow).
	MaxEver int
	// Depth is the source node's distance from the root.
	Depth int
}

// Picture is a pruned, renderable snapshot of a TAMP graph. Nodes and
// edges are sorted (depth, then name) for deterministic output.
type Picture struct {
	Site  string
	Total int
	Nodes []PictureNode
	Edges []PictureEdge
}

// Edge returns the picture edge from→to, if present.
func (p *Picture) Edge(from, to NodeID) (PictureEdge, bool) {
	for _, e := range p.Edges {
		if e.From == from && e.To == to {
			return e, true
		}
	}
	return PictureEdge{}, false
}

// HasNode reports whether the node survived pruning.
func (p *Picture) HasNode(id NodeID) bool {
	for _, n := range p.Nodes {
		if n.ID == id {
			return true
		}
	}
	return false
}

// Snapshot prunes the graph per opts and returns the surviving picture.
//
// Pruning proceeds as the paper describes: compute each edge's
// unique-prefix weight, drop edges below the (depth-staged) threshold,
// then keep only what is still reachable from the root.
func (g *Graph) Snapshot(opts PruneOptions) *Picture {
	flat := make([]flatEdge, 0, len(g.edges))
	for _, e := range g.edges {
		if len(e.prefixes) == 0 {
			continue
		}
		flat = append(flat, flatEdge{
			from:    g.nodeByIdx[e.from],
			to:      g.nodeByIdx[e.to],
			weight:  len(e.prefixes),
			maxEver: e.maxEver,
		})
	}
	return assemblePicture(g.site, g.TotalPrefixes(), flat, opts)
}

// flatEdge is one live edge in graph-independent form: the input to the
// shared picture assembly, used both by a single Graph's Snapshot and by
// the deterministic merge of prefix-sharded graphs.
type flatEdge struct {
	from, to        NodeID
	weight, maxEver int
}

// assemblePicture prunes a flat edge list per opts and builds the sorted
// Picture. The output is a pure function of the edge set — node and edge
// orderings are total (every sort key chain ends in a unique field), so
// callers may supply edges in any order.
func assemblePicture(site string, total int, flat []flatEdge, opts PruneOptions) *Picture {
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	if threshold < 0 {
		threshold = 0
	}
	minWeight := threshold * float64(total)

	depth := flatDepths(flat)

	// Keep edges that pass the weight test (or are within KeepDepth).
	type liveEdge struct {
		e flatEdge
		d int
	}
	var kept []liveEdge
	for _, e := range flat {
		if e.weight == 0 {
			continue
		}
		if !opts.IncludePrefixLeaves && e.to.Kind == KindPrefix {
			continue
		}
		d, ok := depth[e.from]
		if !ok {
			continue
		}
		if d >= opts.KeepDepth && float64(e.weight) < minWeight {
			continue
		}
		kept = append(kept, liveEdge{e: e, d: d})
	}

	// Reachability over kept edges from the root. Depths are NOT
	// recomputed here: every emitted Depth is the node's distance in the
	// full live graph (the same depths that drove KeepDepth gating), so
	// pruning an intermediate edge cannot silently push a surviving node
	// "deeper" than the depth its gating decision was based on.
	root := RootNode(site)
	adj := make(map[NodeID][]liveEdge, len(kept))
	for _, le := range kept {
		adj[le.e.from] = append(adj[le.e.from], le)
	}
	reach := map[NodeID]bool{root: true}
	queue := []NodeID{root}
	var edges []PictureEdge
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, le := range adj[n] {
			frac := 0.0
			if total > 0 {
				frac = float64(le.e.weight) / float64(total)
			}
			edges = append(edges, PictureEdge{
				From:     le.e.from,
				To:       le.e.to,
				Weight:   le.e.weight,
				Fraction: frac,
				MaxEver:  le.e.maxEver,
				Depth:    le.d,
			})
			if !reach[le.e.to] {
				reach[le.e.to] = true
				queue = append(queue, le.e.to)
			}
		}
	}

	nodes := make([]PictureNode, 0, len(reach))
	for id := range reach {
		nodes = append(nodes, PictureNode{ID: id, Depth: depth[id]})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Depth != nodes[j].Depth {
			return nodes[i].Depth < nodes[j].Depth
		}
		if nodes[i].ID.Kind != nodes[j].ID.Kind {
			return nodes[i].ID.Kind < nodes[j].ID.Kind
		}
		return nodes[i].ID.Name < nodes[j].ID.Name
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Depth != edges[j].Depth {
			return edges[i].Depth < edges[j].Depth
		}
		if edges[i].From != edges[j].From {
			return nodeLess(edges[i].From, edges[j].From)
		}
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight > edges[j].Weight
		}
		return nodeLess(edges[i].To, edges[j].To)
	})
	return &Picture{Site: site, Total: total, Nodes: nodes, Edges: edges}
}

// flatDepths returns each node's minimum distance from the root over the
// flat edges that carry weight, mirroring Graph.depths.
func flatDepths(flat []flatEdge) map[NodeID]int {
	adj := make(map[NodeID][]NodeID, len(flat))
	for _, e := range flat {
		if e.weight == 0 {
			continue
		}
		adj[e.from] = append(adj[e.from], e.to)
	}
	var root NodeID
	for from := range adj {
		if from.Kind == KindRoot {
			root = from
			break
		}
	}
	depth := map[NodeID]int{}
	if root.Kind == 0 {
		return depth
	}
	depth[root] = 0
	queue := []NodeID{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, to := range adj[n] {
			if _, seen := depth[to]; !seen {
				depth[to] = depth[n] + 1
				queue = append(queue, to)
			}
		}
	}
	return depth
}

func nodeLess(a, b NodeID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Name < b.Name
}

// depths returns each node's minimum distance from the root over edges
// that currently carry prefixes.
func (g *Graph) depths() map[uint32]int {
	depth := map[uint32]int{0: 0}
	queue := []uint32{0}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, to := range g.out[n] {
			e := g.edges[edgeKey(n, to)]
			if e == nil || len(e.prefixes) == 0 {
				continue
			}
			if _, seen := depth[to]; !seen {
				depth[to] = depth[n] + 1
				queue = append(queue, to)
			}
		}
	}
	return depth
}
