package tamp

import "sort"

// DefaultThreshold is the paper's default pruning fraction: edges and
// nodes carrying less than 5% of total prefixes are pruned.
const DefaultThreshold = 0.05

// PruneOptions controls Snapshot pruning.
type PruneOptions struct {
	// Threshold is the fraction of total prefixes below which an edge is
	// pruned (default DefaultThreshold). Zero means the default; negative
	// disables threshold pruning entirely.
	Threshold float64
	// KeepDepth implements hierarchical pruning: edges whose source node
	// lies at depth < KeepDepth from the root are always kept, regardless
	// of weight. The paper's Figure 5 keeps all peers, nexthops and
	// neighbor ASes (KeepDepth 3) and prunes the rest at 5%.
	KeepDepth int
	// IncludePrefixLeaves keeps per-prefix leaf nodes. By default they
	// are dropped before thresholding: pictures aggregate at the AS
	// level, as in the paper's figures.
	IncludePrefixLeaves bool
}

// PictureNode is a surviving node of a pruned snapshot.
type PictureNode struct {
	ID    NodeID
	Depth int
}

// PictureEdge is a surviving edge of a pruned snapshot.
type PictureEdge struct {
	From   NodeID
	To     NodeID
	Weight int
	// Fraction is Weight over the graph's total prefixes at snapshot
	// time.
	Fraction float64
	// MaxEver is the largest weight the edge has carried (gray shadow).
	MaxEver int
	// Depth is the source node's distance from the root.
	Depth int
}

// Picture is a pruned, renderable snapshot of a TAMP graph. Nodes and
// edges are sorted (depth, then name) for deterministic output.
type Picture struct {
	Site  string
	Total int
	Nodes []PictureNode
	Edges []PictureEdge
}

// Edge returns the picture edge from→to, if present.
func (p *Picture) Edge(from, to NodeID) (PictureEdge, bool) {
	for _, e := range p.Edges {
		if e.From == from && e.To == to {
			return e, true
		}
	}
	return PictureEdge{}, false
}

// HasNode reports whether the node survived pruning.
func (p *Picture) HasNode(id NodeID) bool {
	for _, n := range p.Nodes {
		if n.ID == id {
			return true
		}
	}
	return false
}

// Snapshot prunes the graph per opts and returns the surviving picture.
//
// Pruning proceeds as the paper describes: compute each edge's
// unique-prefix weight, drop edges below the (depth-staged) threshold,
// then keep only what is still reachable from the root.
func (g *Graph) Snapshot(opts PruneOptions) *Picture {
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	if threshold < 0 {
		threshold = 0
	}
	total := g.TotalPrefixes()
	minWeight := threshold * float64(total)

	depth := g.depths()

	// Keep edges that pass the weight test (or are within KeepDepth).
	type liveEdge struct {
		e *edgeState
		d int
	}
	var kept []liveEdge
	for _, e := range g.edges {
		w := len(e.prefixes)
		if w == 0 {
			continue
		}
		if !opts.IncludePrefixLeaves && g.nodeByIdx[e.to].Kind == KindPrefix {
			continue
		}
		d, ok := depth[e.from]
		if !ok {
			continue
		}
		if d >= opts.KeepDepth && float64(w) < minWeight {
			continue
		}
		kept = append(kept, liveEdge{e: e, d: d})
	}

	// Reachability over kept edges from the root. Depths are NOT
	// recomputed here: every emitted Depth is the node's distance in the
	// full live graph (the same depths() that drove KeepDepth gating), so
	// pruning an intermediate edge cannot silently push a surviving node
	// "deeper" than the depth its gating decision was based on.
	adj := make(map[uint32][]liveEdge, len(kept))
	for _, le := range kept {
		adj[le.e.from] = append(adj[le.e.from], le)
	}
	reach := map[uint32]bool{0: true}
	queue := []uint32{0}
	var edges []PictureEdge
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, le := range adj[n] {
			w := len(le.e.prefixes)
			frac := 0.0
			if total > 0 {
				frac = float64(w) / float64(total)
			}
			edges = append(edges, PictureEdge{
				From:     g.nodeByIdx[le.e.from],
				To:       g.nodeByIdx[le.e.to],
				Weight:   w,
				Fraction: frac,
				MaxEver:  le.e.maxEver,
				Depth:    le.d,
			})
			if !reach[le.e.to] {
				reach[le.e.to] = true
				queue = append(queue, le.e.to)
			}
		}
	}

	nodes := make([]PictureNode, 0, len(reach))
	for idx := range reach {
		nodes = append(nodes, PictureNode{ID: g.nodeByIdx[idx], Depth: depth[idx]})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Depth != nodes[j].Depth {
			return nodes[i].Depth < nodes[j].Depth
		}
		if nodes[i].ID.Kind != nodes[j].ID.Kind {
			return nodes[i].ID.Kind < nodes[j].ID.Kind
		}
		return nodes[i].ID.Name < nodes[j].ID.Name
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Depth != edges[j].Depth {
			return edges[i].Depth < edges[j].Depth
		}
		if edges[i].From != edges[j].From {
			return nodeLess(edges[i].From, edges[j].From)
		}
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight > edges[j].Weight
		}
		return nodeLess(edges[i].To, edges[j].To)
	})
	return &Picture{Site: g.site, Total: total, Nodes: nodes, Edges: edges}
}

func nodeLess(a, b NodeID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Name < b.Name
}

// depths returns each node's minimum distance from the root over edges
// that currently carry prefixes.
func (g *Graph) depths() map[uint32]int {
	depth := map[uint32]int{0: 0}
	queue := []uint32{0}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, to := range g.out[n] {
			e := g.edges[edgeKey(n, to)]
			if e == nil || len(e.prefixes) == 0 {
				continue
			}
			if _, seen := depth[to]; !seen {
				depth[to] = depth[n] + 1
				queue = append(queue, to)
			}
		}
	}
	return depth
}
