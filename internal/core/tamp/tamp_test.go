package tamp

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
)

func entry(router, nexthop, prefix string, asns ...uint32) RouteEntry {
	r := RouteEntry{Router: router, ASPath: asns, Prefix: netip.MustParsePrefix(prefix)}
	if nexthop != "" {
		r.Nexthop = netip.MustParseAddr(nexthop)
	}
	return r
}

// TestFigure1Construction mirrors the paper's Figure 1: two routers whose
// trees merge; the NexthopA-AS1 edge weight is the size of the prefix set
// union (4), not the sum (6).
func TestFigure1Construction(t *testing.T) {
	g := New("site")
	// Router X: 3 prefixes via NexthopA, AS1.
	for _, p := range []string{"1.2.1.0/24", "1.2.2.0/24", "1.2.3.0/24"} {
		g.AddRoute(entry("X", "10.0.0.65", p, 1))
	}
	// Router Y: 3 prefixes via the same nexthop and AS, one overlapping
	// pair with X.
	for _, p := range []string{"1.2.2.0/24", "1.2.3.0/24", "1.2.4.0/24"} {
		g.AddRoute(entry("Y", "10.0.0.65", p, 1))
	}
	nexthopA := NexthopNode(netip.MustParseAddr("10.0.0.65"))
	if w := g.Weight(nexthopA, ASNode(1)); w != 4 {
		t.Errorf("NexthopA-AS1 weight = %d, want 4 (set union)", w)
	}
	// Per-router edges carry each router's own counts.
	if w := g.Weight(RouterNode("X"), nexthopA); w != 3 {
		t.Errorf("X-NexthopA weight = %d, want 3", w)
	}
	if w := g.Weight(RouterNode("Y"), nexthopA); w != 3 {
		t.Errorf("Y-NexthopA weight = %d, want 3", w)
	}
	if got := g.TotalPrefixes(); got != 4 {
		t.Errorf("TotalPrefixes = %d, want 4", got)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPrependingCollapses(t *testing.T) {
	g := New("site")
	g.AddRoute(entry("X", "10.0.0.1", "10.0.0.0/8", 7, 7, 7, 9))
	if w := g.Weight(ASNode(7), ASNode(7)); w != 0 {
		t.Errorf("self edge weight = %d", w)
	}
	if w := g.Weight(ASNode(7), ASNode(9)); w != 1 {
		t.Errorf("7->9 weight = %d", w)
	}
}

func TestAddRemoveSymmetric(t *testing.T) {
	g := New("site")
	entries := []RouteEntry{
		entry("X", "10.0.0.1", "10.1.0.0/16", 1, 2, 3),
		entry("X", "10.0.0.1", "10.2.0.0/16", 1, 2),
		entry("Y", "10.0.0.2", "10.1.0.0/16", 1, 4),
	}
	for _, r := range entries {
		g.AddRoute(r)
	}
	if g.TotalPrefixes() != 2 || g.NumEdges() == 0 {
		t.Fatalf("after add: %d prefixes, %d edges", g.TotalPrefixes(), g.NumEdges())
	}
	for _, r := range entries {
		g.RemoveRoute(r)
	}
	if g.TotalPrefixes() != 0 || g.NumEdges() != 0 {
		t.Errorf("after remove: %d prefixes, %d edges", g.TotalPrefixes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Removing an unknown route is harmless.
	g.RemoveRoute(entry("Z", "10.0.0.3", "10.9.0.0/16", 9))
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGraphQuickAddRemove(t *testing.T) {
	// Random add/remove interleavings keep the graph internally
	// consistent and end empty when everything added is removed.
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw%100) + 1
		g := New("site")
		var added []RouteEntry
		for i := 0; i < ops; i++ {
			if len(added) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(added))
				g.RemoveRoute(added[j])
				added = append(added[:j], added[j+1:]...)
			} else {
				r := entry(
					[]string{"X", "Y", "Z"}[rng.Intn(3)],
					netip.AddrFrom4([4]byte{10, 0, 0, byte(rng.Intn(3) + 1)}).String(),
					netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(rng.Intn(8)), 0, 0}), 16).String(),
					uint32(rng.Intn(3)+1), uint32(rng.Intn(3)+10),
				)
				g.AddRoute(r)
				added = append(added, r)
			}
			if err := g.Validate(); err != nil {
				return false
			}
		}
		for _, r := range added {
			g.RemoveRoute(r)
		}
		return g.Validate() == nil && g.NumEdges() == 0 && g.TotalPrefixes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// berkeleyLike builds a small campus-shaped graph: most prefixes via a
// commodity branch, a few via a research branch, two via a backdoor.
func berkeleyLike() *Graph {
	g := New("berkeley")
	commodity := func(i int) string {
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i / 250), byte(i % 250), 0}), 24).String()
	}
	for i := 0; i < 80; i++ {
		g.AddRoute(entry("128.32.1.3", "128.32.0.66", commodity(i), 11423, 209, 701))
	}
	for i := 80; i < 92; i++ {
		g.AddRoute(entry("128.32.1.200", "128.32.0.90", commodity(i), 11423, 11537))
	}
	// Backdoor: 2 prefixes via a different router and AT&T.
	g.AddRoute(entry("128.32.1.222", "169.229.0.157", "12.1.1.0/24", 7018))
	g.AddRoute(entry("128.32.1.222", "169.229.0.157", "12.1.2.0/24", 7018))
	return g
}

func TestSnapshotDefaultThresholdPrunesBackdoor(t *testing.T) {
	g := berkeleyLike()
	pic := g.Snapshot(PruneOptions{})
	if pic.Total != 94 {
		t.Fatalf("Total = %d", pic.Total)
	}
	// The 80-prefix commodity edge survives with its fraction.
	e, ok := pic.Edge(NexthopNode(netip.MustParseAddr("128.32.0.66")), ASNode(11423))
	if !ok {
		t.Fatal("commodity edge pruned")
	}
	if e.Weight != 80 || e.Fraction < 0.84 || e.Fraction > 0.86 {
		t.Errorf("commodity edge = %+v", e)
	}
	// The 2-prefix backdoor is below 5% of 94 (4.7) and pruned.
	if pic.HasNode(RouterNode("128.32.1.222")) {
		t.Error("backdoor router survived default pruning")
	}
	// Research branch (12 prefixes, ~12.8%) survives.
	if !pic.HasNode(ASNode(11537)) {
		t.Error("research branch pruned")
	}
}

func TestSnapshotHierarchicalKeepsBackdoor(t *testing.T) {
	// Paper §IV-B / Figure 5: hierarchical pruning shows all peers,
	// nexthops and neighbor ASes regardless of weight.
	g := berkeleyLike()
	pic := g.Snapshot(PruneOptions{KeepDepth: 3})
	if !pic.HasNode(RouterNode("128.32.1.222")) {
		t.Fatal("backdoor router pruned despite KeepDepth")
	}
	if !pic.HasNode(ASNode(7018)) {
		t.Error("backdoor neighbor AS pruned despite KeepDepth=3")
	}
	e, ok := pic.Edge(NexthopNode(netip.MustParseAddr("169.229.0.157")), ASNode(7018))
	if !ok || e.Weight != 2 {
		t.Errorf("backdoor edge = %+v ok=%v", e, ok)
	}
	// Deeper, light edges are still pruned: 701 sits at depth 4.
	if pic.HasNode(ASNode(701)) != true {
		// 80 prefixes ≥ 5%: AS701 should actually survive on weight.
		t.Error("heavy deep edge pruned")
	}
}

func TestSnapshotPrefixLeaves(t *testing.T) {
	g := New("site")
	g.AddRoute(entry("X", "10.0.0.1", "10.1.0.0/16", 1))
	g.AddRoute(entry("X", "10.0.0.1", "10.2.0.0/16", 1))
	pic := g.Snapshot(PruneOptions{Threshold: -1})
	for _, n := range pic.Nodes {
		if n.ID.Kind == KindPrefix {
			t.Fatalf("prefix leaf %v present by default", n.ID)
		}
	}
	pic = g.Snapshot(PruneOptions{Threshold: -1, IncludePrefixLeaves: true})
	if !pic.HasNode(PrefixNode(netip.MustParsePrefix("10.1.0.0/16"))) {
		t.Error("prefix leaf missing with IncludePrefixLeaves")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	g := berkeleyLike()
	a := g.Snapshot(PruneOptions{KeepDepth: 3})
	b := g.Snapshot(PruneOptions{KeepDepth: 3})
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		t.Fatal("snapshot sizes differ")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node order differs at %d", i)
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge order differs at %d", i)
		}
	}
	// Depths ascend.
	for i := 1; i < len(a.Nodes); i++ {
		if a.Nodes[i].Depth < a.Nodes[i-1].Depth {
			t.Fatal("nodes not depth-sorted")
		}
	}
}

func TestEdgePrefixes(t *testing.T) {
	g := New("site")
	g.AddRoute(entry("X", "10.0.0.1", "10.1.0.0/16", 1))
	g.AddRoute(entry("X", "10.0.0.1", "10.2.0.0/16", 1))
	got := g.EdgePrefixes(RouterNode("X"), NexthopNode(netip.MustParseAddr("10.0.0.1")))
	if len(got) != 2 {
		t.Errorf("EdgePrefixes = %v", got)
	}
	if g.EdgePrefixes(RouterNode("Q"), ASNode(1)) != nil {
		t.Error("unknown edge returned prefixes")
	}
}

var animT0 = time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)

func animEvent(typ event.Type, offset time.Duration, peer, nexthop, prefix string, asns ...uint32) event.Event {
	e := event.Event{
		Time:   animT0.Add(offset),
		Type:   typ,
		Peer:   netip.MustParseAddr(peer),
		Prefix: netip.MustParsePrefix(prefix),
	}
	e.Attrs = &bgp.PathAttrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(asns...)}
	if nexthop != "" {
		e.Attrs.Nexthop = netip.MustParseAddr(nexthop)
	}
	return e
}

func TestAnimateGainLoss(t *testing.T) {
	base := []RouteEntry{entry("10.0.0.1", "10.3.4.5", "4.5.0.0/16", 2, 9)}
	events := event.Stream{
		animEvent(event.Withdraw, 0, "10.0.0.1", "10.3.4.5", "4.5.0.0/16", 2, 9),
		animEvent(event.Announce, 29*time.Second, "10.0.0.1", "10.3.4.5", "4.5.0.0/16", 2, 9),
	}
	anim := Animate("isp", base, events, AnimationConfig{})
	if anim.NumFrames != 750 {
		t.Errorf("NumFrames = %d, want 750 (30s x 25fps)", anim.NumFrames)
	}
	if len(anim.Initial) == 0 {
		t.Fatal("no initial state")
	}
	edge := EdgeRef{From: RouterNode("10.0.0.1"), To: NexthopNode(netip.MustParseAddr("10.3.4.5"))}
	if len(anim.Frames) != 2 {
		t.Fatalf("frames = %d, want 2 (loss, gain)", len(anim.Frames))
	}
	first, last := anim.Frames[0], anim.Frames[1]
	fs := findEdge(t, first.Changes, edge)
	if fs.Color != ColorBlue || fs.Count != 0 || fs.MaxEver != 1 {
		t.Errorf("loss frame = %+v", fs)
	}
	ls := findEdge(t, last.Changes, edge)
	if ls.Color != ColorGreen || ls.Count != 1 {
		t.Errorf("gain frame = %+v", ls)
	}
	series := anim.EdgeSeries(edge)
	if len(series) != anim.NumFrames+1 {
		t.Fatalf("series length = %d", len(series))
	}
	if series[0] != 1 || series[1] != 0 || series[anim.NumFrames] != 1 {
		t.Errorf("series endpoints = %d,%d,...,%d", series[0], series[1], series[anim.NumFrames])
	}
}

func TestAnimateYellowFlapping(t *testing.T) {
	// The paper's §IV-F MED oscillation: flapping faster than a frame
	// renders yellow.
	base := []RouteEntry{entry("core1-b", "10.3.4.5", "4.5.0.0/16", 2)}
	// 4000 transitions over 100ms: ~7.5 per 30s/750-frame slice, far too
	// fast to animate one by one.
	var events event.Stream
	for i := 0; i < 4000; i++ {
		typ := event.Announce
		if i%2 == 1 {
			typ = event.Withdraw
		}
		events = append(events, animEvent(typ, time.Duration(i)*25*time.Microsecond, "10.9.9.9", "10.3.4.5", "4.5.0.0/16", 2))
	}
	// Events come from peer 10.9.9.9; base route from core1-b stays. The
	// flapping edge is 10.9.9.9 -> nexthop.
	anim := Animate("isp", base, events, AnimationConfig{})
	edge := EdgeRef{From: RouterNode("10.9.9.9"), To: NexthopNode(netip.MustParseAddr("10.3.4.5"))}
	sawYellow := false
	for _, f := range anim.Frames {
		for _, ch := range f.Changes {
			if ch.Edge == edge && ch.Color == ColorYellow {
				sawYellow = true
				if ch.Ups == 0 || ch.Downs == 0 {
					t.Errorf("yellow without both directions: %+v", ch)
				}
			}
		}
	}
	if !sawYellow {
		t.Error("fast flap never rendered yellow")
	}
}

func TestAnimateImplicitReplacementMovesPrefix(t *testing.T) {
	// A prefix moving from one path to another (paper Figure 7): the old
	// path loses it (blue), the new path gains it (green).
	base := []RouteEntry{entry("128.32.1.3", "128.32.0.66", "20.1.0.0/16", 11423, 209)}
	events := event.Stream{
		animEvent(event.Announce, time.Second, "128.32.1.3", "128.32.0.66", "20.1.0.0/16", 11423, 11422, 2152, 3356),
	}
	anim := Animate("berkeley", base, events, AnimationConfig{})
	if len(anim.Frames) != 1 {
		t.Fatalf("frames = %d", len(anim.Frames))
	}
	oldEdge := findEdge(t, anim.Frames[0].Changes, EdgeRef{From: ASNode(11423), To: ASNode(209)})
	if oldEdge.Color != ColorBlue {
		t.Errorf("old path edge = %+v, want blue", oldEdge)
	}
	newEdge := findEdge(t, anim.Frames[0].Changes, EdgeRef{From: ASNode(11423), To: ASNode(11422)})
	if newEdge.Color != ColorGreen {
		t.Errorf("new path edge = %+v, want green", newEdge)
	}
	// The router->nexthop edge kept its single prefix: it is not dirty.
	for _, ch := range anim.Frames[0].Changes {
		if ch.Edge == (EdgeRef{From: RouterNode("128.32.1.3"), To: NexthopNode(netip.MustParseAddr("128.32.0.66"))}) {
			t.Errorf("stable edge reported changed: %+v", ch)
		}
	}
}

func TestAnimateIdenticalReannounceIsQuiet(t *testing.T) {
	base := []RouteEntry{entry("10.0.0.1", "10.0.0.9", "10.1.0.0/16", 1, 2)}
	events := event.Stream{
		animEvent(event.Announce, time.Second, "10.0.0.1", "10.0.0.9", "10.1.0.0/16", 1, 2),
	}
	anim := Animate("site", base, events, AnimationConfig{})
	if len(anim.Frames) != 0 {
		t.Errorf("identical re-announce produced frames: %+v", anim.Frames)
	}
}

func TestAnimateEmptyAndSingleInstant(t *testing.T) {
	anim := Animate("site", nil, nil, AnimationConfig{})
	if anim.NumFrames != 0 || len(anim.Frames) != 0 {
		t.Errorf("empty animation: %+v", anim)
	}
	// All events at the same instant collapse to one frame.
	events := event.Stream{
		animEvent(event.Announce, 0, "10.0.0.1", "10.0.0.9", "10.1.0.0/16", 1),
		animEvent(event.Announce, 0, "10.0.0.1", "10.0.0.9", "10.2.0.0/16", 1),
	}
	anim = Animate("site", nil, events, AnimationConfig{})
	if anim.NumFrames != 1 || len(anim.Frames) != 1 {
		t.Fatalf("instant animation frames = %d/%d", anim.NumFrames, len(anim.Frames))
	}
	if got := anim.Frames[0].Changes; len(got) == 0 {
		t.Error("no changes in instant frame")
	}
}

func TestAnimateWithdrawUnknownIgnored(t *testing.T) {
	events := event.Stream{
		animEvent(event.Withdraw, 0, "10.0.0.1", "10.0.0.9", "10.1.0.0/16", 1),
		animEvent(event.Withdraw, time.Second, "10.0.0.1", "10.0.0.9", "10.1.0.0/16", 1),
	}
	anim := Animate("site", nil, events, AnimationConfig{})
	if len(anim.Frames) != 0 {
		t.Errorf("withdraw of unknown produced frames: %+v", anim.Frames)
	}
	if err := anim.Graph.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEntryFromEvent(t *testing.T) {
	e := animEvent(event.Announce, 0, "10.0.0.1", "10.0.0.9", "10.1.0.0/16", 1, 2)
	r := EntryFromEvent(&e)
	if r.Router != "10.0.0.1" || r.Prefix.String() != "10.1.0.0/16" || len(r.ASPath) != 2 {
		t.Errorf("EntryFromEvent = %+v", r)
	}
	bare := event.Event{Peer: netip.MustParseAddr("10.0.0.1"), Prefix: netip.MustParsePrefix("10.0.0.0/8")}
	r = EntryFromEvent(&bare)
	if r.Nexthop.IsValid() || r.ASPath != nil {
		t.Errorf("bare EntryFromEvent = %+v", r)
	}
}

func TestNodeIDStrings(t *testing.T) {
	if ASNode(209).String() != "AS209" {
		t.Error("AS node string")
	}
	if RouterNode("r1").String() != "r1" {
		t.Error("router node string")
	}
	ref := EdgeRef{From: ASNode(1), To: ASNode(2)}
	if ref.String() != "AS1->AS2" {
		t.Errorf("edge ref = %q", ref.String())
	}
}

func findEdge(t *testing.T, states []EdgeFrameState, ref EdgeRef) EdgeFrameState {
	t.Helper()
	for _, s := range states {
		if s.Edge == ref {
			return s
		}
	}
	t.Fatalf("edge %v not found in %v", ref, states)
	return EdgeFrameState{}
}

func TestEdgeColorString(t *testing.T) {
	for c, want := range map[EdgeColor]string{
		ColorBlack: "black", ColorBlue: "blue", ColorGreen: "green", ColorYellow: "yellow",
	} {
		if c.String() != want {
			t.Errorf("%d = %q", c, c.String())
		}
	}
}
