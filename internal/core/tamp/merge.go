package tamp

// The concurrent-build path: a TAMP graph maintained as independent
// per-shard sub-graphs, sharded by prefix, each owned by exactly one
// goroutine. Because sharding partitions the prefix space, the shards'
// per-edge unique-prefix sets are disjoint, and the full graph's
// quantities merge by plain summation — no cross-shard coordination,
// no locks, and a merge result that is a pure function of each shard's
// (ordered) route sub-stream. MergeSnapshot is the deterministic merge
// step: feeding the same routes to the same shard assignment yields a
// byte-identical Picture no matter how many goroutines built it.
//
// Merge rules, per edge:
//
//   - Weight: sum of shard weights. Exact — a prefix lives in exactly
//     one shard, so shard weights count disjoint prefix sets.
//   - MaxEver: sum of shard-local historical peaks. An upper bound on
//     the single-graph value (shards may peak at different times), and
//     exactly the single-graph value when there is one shard. The bound
//     is what keeps MaxEver independent of event interleaving across
//     shards, which is what makes snapshots reproducible at any worker
//     count; DESIGN.md §10 spells out the rule.
//   - Total prefixes: sum of shard totals (disjoint by construction).

// MergeSnapshot deterministically merges prefix-sharded sub-graphs and
// returns the pruned picture of the union, as if a single graph had
// been built from all the shards' routes. All shards must share the
// site name given to New; shard order does not affect the result.
// With a single shard the result is byte-identical to that shard's own
// Snapshot. The caller must ensure no shard is being mutated while the
// merge runs.
func MergeSnapshot(site string, shards []*Graph, opts PruneOptions) *Picture {
	if len(shards) == 1 {
		return shards[0].Snapshot(opts)
	}
	type sum struct {
		weight  int
		maxEver int
	}
	type key struct{ from, to NodeID }
	total := 0
	nEdges := 0
	for _, g := range shards {
		total += g.TotalPrefixes()
		nEdges += len(g.edges)
	}
	acc := make(map[key]sum, nEdges)
	for _, g := range shards {
		for _, e := range g.edges {
			if len(e.prefixes) == 0 && e.maxEver == 0 {
				continue
			}
			k := key{from: g.nodeByIdx[e.from], to: g.nodeByIdx[e.to]}
			s := acc[k]
			s.weight += len(e.prefixes)
			s.maxEver += e.maxEver
			acc[k] = s
		}
	}
	flat := make([]flatEdge, 0, len(acc))
	for k, s := range acc {
		if s.weight == 0 {
			// An edge no shard currently routes over: carries nothing,
			// exactly as a single graph's Snapshot would skip it.
			continue
		}
		flat = append(flat, flatEdge{from: k.from, to: k.to, weight: s.weight, maxEver: s.maxEver})
	}
	return assemblePicture(site, total, flat, opts)
}
