package tamp

import "testing"

// TestSnapshotDepthConsistent pins a single depth definition across the
// snapshot: the Depth emitted on picture nodes and edges is the node's
// distance in the full live graph — the same depths() that drives
// KeepDepth gating — not a distance recomputed over the post-prune
// remnant. The two disagree whenever pruning removes a node's shortest
// path: here AS2 sits at depth 2 via a light direct r1→AS2 route; once
// that edge is pruned, a remnant-BFS would report AS2 at depth 4 (via
// n1→AS1) even though the gating decisions were made with AS2 at 2.
func TestSnapshotDepthConsistent(t *testing.T) {
	g := New("site")
	// The heavy trunk: ten prefixes through r1 → n1 → AS1 → AS2 → AS3.
	for _, p := range []string{
		"10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16", "10.4.0.0/16", "10.5.0.0/16",
		"10.6.0.0/16", "10.7.0.0/16", "10.8.0.0/16", "10.9.0.0/16", "10.10.0.0/16",
	} {
		g.AddRoute(entry("r1", "10.0.0.1", p, 1, 2, 3))
	}
	// One light nexthop-less route r1 → AS2 → AS3: it makes depth(AS2)=2
	// in the full graph, and at 1/11 of total prefixes it is pruned by a
	// 20% threshold.
	g.AddRoute(entry("r1", "", "10.99.0.0/16", 2, 3))

	p := g.Snapshot(PruneOptions{Threshold: 0.2})

	if _, ok := p.Edge(RouterNode("r1"), ASNode(2)); ok {
		t.Fatal("light r1→AS2 edge survived a 20% threshold; scenario broken")
	}
	e, ok := p.Edge(ASNode(2), ASNode(3))
	if !ok {
		t.Fatal("heavy AS2→AS3 edge missing from picture")
	}
	if e.Depth != 2 {
		t.Errorf("AS2→AS3 edge Depth = %d, want 2 (full-graph depth of AS2)", e.Depth)
	}
	if e, ok := p.Edge(ASNode(1), ASNode(2)); !ok || e.Depth != 3 {
		t.Errorf("AS1→AS2 edge Depth = %d (present=%v), want 3", e.Depth, ok)
	}
	wantNodeDepth := map[NodeID]int{
		RouterNode("r1"): 1, ASNode(1): 3, ASNode(2): 2, ASNode(3): 3,
	}
	for _, n := range p.Nodes {
		if want, ok := wantNodeDepth[n.ID]; ok && n.Depth != want {
			t.Errorf("node %v Depth = %d, want %d", n.ID, n.Depth, want)
		}
	}
}
