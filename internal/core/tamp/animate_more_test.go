package tamp

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
)

func TestReplaceRouteDiffsEdges(t *testing.T) {
	g := New("site")
	old := entry("X", "10.0.0.1", "10.1.0.0/16", 1, 2, 3)
	g.AddRoute(old)

	var changes []string
	g.onEdgeChange = func(e *edgeState, delta int) {
		sign := "+"
		if delta < 0 {
			sign = "-"
		}
		changes = append(changes, sign+g.edgeRef(e).String())
	}
	// Same head (router, nexthop, AS1), new tail.
	new := entry("X", "10.0.0.1", "10.1.0.0/16", 1, 4)
	g.ReplaceRoute(old, new)
	g.onEdgeChange = nil

	// Shared edges (root->X, X->nh, nh->AS1) must not appear.
	for _, c := range changes {
		switch c {
		case "+site->X", "-site->X", "+X->10.0.0.1", "-X->10.0.0.1", "+10.0.0.1->AS1", "-10.0.0.1->AS1":
			t.Errorf("stable edge transitioned: %s", c)
		}
	}
	// The diverging edges did change.
	if g.Weight(ASNode(1), ASNode(2)) != 0 || g.Weight(ASNode(1), ASNode(4)) != 1 {
		t.Errorf("replacement weights wrong: %d %d",
			g.Weight(ASNode(1), ASNode(2)), g.Weight(ASNode(1), ASNode(4)))
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Replacing across prefixes falls back to remove+add.
	otherPrefix := entry("X", "10.0.0.1", "10.2.0.0/16", 1, 4)
	g.ReplaceRoute(new, otherPrefix)
	if g.TotalPrefixes() != 1 || g.Weight(ASNode(1), ASNode(4)) != 1 {
		t.Errorf("cross-prefix replace wrong: total=%d", g.TotalPrefixes())
	}
}

func TestAnimatorRunTwicePanics(t *testing.T) {
	an := NewAnimator("site", nil)
	an.Run(nil, AnimationConfig{})
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	an.Run(nil, AnimationConfig{})
}

func TestStateAtReconstruction(t *testing.T) {
	base := []RouteEntry{entry("r1", "10.0.0.1", "10.1.0.0/16", 1)}
	events := event.Stream{
		animEvent(event.Withdraw, 0, "10.0.0.9", "10.0.0.1", "10.1.0.0/16", 1),
		animEvent(event.Announce, 10*time.Second, "10.0.0.9", "10.0.0.1", "10.2.0.0/16", 1),
		animEvent(event.Announce, 29*time.Second, "10.0.0.9", "10.0.0.1", "10.3.0.0/16", 1),
	}
	anim := Animate("site", base, events, AnimationConfig{})
	// Initial state (-1): only the base edges, all black.
	initial := anim.StateAt(-1)
	for _, st := range initial {
		if st.Color != ColorBlack {
			t.Errorf("initial state colored: %+v", st)
		}
	}
	// The withdraw of an unknown route is a no-op, so the first change
	// frame is the 10s announcement; state there holds one prefix.
	mid := anim.StateAt(anim.Frames[0].Index)
	edge := EdgeRef{From: RouterNode("10.0.0.9"), To: NexthopNode(netip.MustParseAddr("10.0.0.1"))}
	st := findEdge(t, mid, edge)
	if st.Count != 1 {
		t.Errorf("mid count = %d, want 1 (one prefix announced)", st.Count)
	}
	// Earlier frames' colors are neutralized in a later StateAt.
	last := anim.StateAt(anim.NumFrames - 1)
	st = findEdge(t, last, edge)
	if st.Count != 2 {
		t.Errorf("final count = %d, want 2", st.Count)
	}
}

// TestAnimationFinalStateMatchesFreshGraph: after playing a random event
// stream, the animator's graph must equal a graph built directly from the
// surviving routes — add/remove/replace bookkeeping cannot drift.
func TestAnimationFinalStateMatchesFreshGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		var base []RouteEntry
		baseN := rng.Intn(10)
		for i := 0; i < baseN; i++ {
			base = append(base, randomEntry(rng))
		}
		var events event.Stream
		for i := 0; i < 120; i++ {
			re := randomEntry(rng)
			typ := event.Announce
			if rng.Intn(3) == 0 {
				typ = event.Withdraw
			}
			events = append(events, event.Event{
				Time:   animT0.Add(time.Duration(i) * time.Second),
				Type:   typ,
				Peer:   netip.MustParseAddr(re.Router),
				Prefix: re.Prefix,
				Attrs: &bgp.PathAttrs{
					Origin:  bgp.OriginIGP,
					ASPath:  bgp.Sequence(re.ASPath...),
					Nexthop: re.Nexthop,
				},
			})
		}
		anim := Animate("site", base, events, AnimationConfig{})
		if err := anim.Graph.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Replay the same logic with a plain map to get the surviving
		// route set.
		type key struct {
			router string
			prefix netip.Prefix
		}
		current := map[key]RouteEntry{}
		for _, r := range base {
			current[key{r.Router, r.Prefix}] = r
		}
		for i := range events {
			e := &events[i]
			k := key{e.Peer.String(), e.Prefix}
			if e.Type == event.Announce {
				current[k] = EntryFromEvent(e)
			} else {
				delete(current, k)
			}
		}
		fresh := New("site")
		for _, r := range current {
			fresh.AddRoute(r)
		}
		if fresh.TotalPrefixes() != anim.Graph.TotalPrefixes() {
			t.Fatalf("trial %d: totals %d vs %d", trial, fresh.TotalPrefixes(), anim.Graph.TotalPrefixes())
		}
		if fresh.NumEdges() != anim.Graph.NumEdges() {
			t.Fatalf("trial %d: edges %d vs %d", trial, fresh.NumEdges(), anim.Graph.NumEdges())
		}
		// Spot-check a snapshot compares equal edge by edge.
		a := fresh.Snapshot(PruneOptions{Threshold: -1, IncludePrefixLeaves: true})
		b := anim.Graph.Snapshot(PruneOptions{Threshold: -1, IncludePrefixLeaves: true})
		if len(a.Edges) != len(b.Edges) {
			t.Fatalf("trial %d: snapshot edges %d vs %d", trial, len(a.Edges), len(b.Edges))
		}
		for i := range a.Edges {
			if a.Edges[i].From != b.Edges[i].From || a.Edges[i].To != b.Edges[i].To || a.Edges[i].Weight != b.Edges[i].Weight {
				t.Fatalf("trial %d: edge %d differs: %+v vs %+v", trial, i, a.Edges[i], b.Edges[i])
			}
		}
	}
}

func randomEntry(rng *rand.Rand) RouteEntry {
	routers := []string{"10.0.0.9", "10.0.0.8"}
	pathLen := rng.Intn(3) + 1
	path := make([]uint32, pathLen)
	for i := range path {
		path[i] = uint32(rng.Intn(4) + 1)
	}
	return RouteEntry{
		Router:  routers[rng.Intn(len(routers))],
		Nexthop: netip.AddrFrom4([4]byte{10, 0, 0, byte(rng.Intn(2) + 1)}),
		ASPath:  path,
		Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(rng.Intn(4) + 1), 0, 0}), 16),
	}
}
