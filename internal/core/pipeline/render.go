package pipeline

import (
	"fmt"
	"strings"
)

// RenderSnapshots serializes every observable snapshot field into one
// deterministic string: floats at full precision (%.17g), times as
// UnixNano, components and pictures in their stored order. Two runs
// are equivalent iff their renderings are byte-identical, which is the
// comparison the worker-count invariance tests and the relay fleet's
// differential checks are built on.
func RenderSnapshots(snaps []Snapshot) string {
	var b strings.Builder
	for i, s := range snaps {
		fmt.Fprintf(&b, "#%d %s at=%d win=[%d,%d] events=%d\n",
			i, s.Trigger, s.At.UnixNano(), s.WindowStart.UnixNano(), s.WindowEnd.UnixNano(), s.Events)
		if s.Spike != nil {
			fmt.Fprintf(&b, "  spike=%+v\n", *s.Spike)
		}
		for _, c := range s.Components {
			fmt.Fprintf(&b, "  comp score=%.17g count=%d stem=%v->%v seq=%v prefixes=%v events=%v first=%d last=%d\n",
				c.Score, c.Count, c.Stem.From, c.Stem.To, c.Subsequence, c.Prefixes,
				c.EventIndexes, c.First.UnixNano(), c.Last.UnixNano())
		}
		if p := s.Picture; p != nil {
			fmt.Fprintf(&b, "  picture site=%s total=%d\n", p.Site, p.Total)
			for _, n := range p.Nodes {
				fmt.Fprintf(&b, "    node %v d=%d\n", n.ID, n.Depth)
			}
			for _, e := range p.Edges {
				fmt.Fprintf(&b, "    edge %v->%v w=%d f=%.17g max=%d d=%d\n",
					e.From, e.To, e.Weight, e.Fraction, e.MaxEver, e.Depth)
			}
		}
	}
	return b.String()
}
