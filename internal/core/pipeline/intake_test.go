package pipeline

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
)

func intakeEvent(i int) event.Event {
	return event.Event{
		Time:   time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
		Type:   event.Announce,
		Peer:   netip.MustParseAddr("128.32.1.3"),
		Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24),
		Attrs: &bgp.PathAttrs{
			ASPath:  bgp.Sequence(11423, 701),
			Nexthop: netip.MustParseAddr("128.32.0.70"),
		},
	}
}

// stalledPipeline returns a pipeline whose run loop is wedged emitting
// a snapshot nobody reads — the pathological consumer the hold-timer
// bug needs. Ticks every event-second guarantee the wedge happens
// within a few events.
func stalledPipeline() *Pipeline {
	return New(Config{Buffer: 4, SnapshotEvery: time.Second, SpikeK: -1})
}

// drainAndClose unwedges and shuts down a stalled pipeline.
func drainAndClose(p *Pipeline) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range p.Snapshots() {
		}
	}()
	p.Close()
	<-done
}

// TestIngestShedDoesNotBlock is the regression test for the
// full-buffer stall: with the consumer wedged, a producer running in
// shed mode must finish promptly no matter how many events it pushes.
// Under the old behaviour — every ingest blocking on the events
// channel — the producer wedges behind the stalled run loop and this
// test times out and fails.
func TestIngestShedDoesNotBlock(t *testing.T) {
	p := stalledPipeline()
	defer drainAndClose(p)

	before := mShed.Value()
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for i := 0; i < 10000; i++ {
			p.TryIngest(intakeEvent(i))
		}
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("shed-mode producer blocked behind a stalled consumer (old Ingest behaviour)")
	}
	if shed := mShed.Value() - before; shed == 0 {
		t.Fatal("stalled consumer with a full buffer shed nothing — the producer must have been blocking")
	}
}

// TestIngestBlockingBaseline documents the hazard the shed mode
// exists for: the same producer using blocking Ingest does NOT finish
// while the consumer is stalled. This is the control for the
// regression test above — if this starts passing, the pipeline's
// blocking semantics changed and the Intake policies need rethinking.
func TestIngestBlockingBaseline(t *testing.T) {
	p := stalledPipeline()
	defer drainAndClose(p)

	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for i := 0; i < 10000; i++ {
			p.Ingest(intakeEvent(i))
		}
	}()
	select {
	case <-finished:
		t.Fatal("blocking Ingest finished against a stalled consumer; the wedge this PR guards against is gone")
	case <-time.After(300 * time.Millisecond):
		// Wedged, as documented. drainAndClose unwedges it; the producer
		// drains into the closed pipeline and exits.
	}
}

func TestTryIngestDelivers(t *testing.T) {
	p := New(Config{SpikeK: -1})
	var got int
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range p.Snapshots() {
			if s.Trigger == TriggerFinal {
				mu.Lock()
				got = s.Events
				mu.Unlock()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if !p.TryIngest(intakeEvent(i)) {
			t.Fatalf("event %d shed with an empty pipeline", i)
		}
	}
	p.Close()
	<-done
	if got != 50 {
		t.Fatalf("final window held %d events, want 50", got)
	}
}

func TestSeedBuildsTablesWithoutWindow(t *testing.T) {
	p := New(Config{SpikeK: -1})
	var final Snapshot
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range p.Snapshots() {
			if s.Trigger == TriggerFinal {
				final = s
			}
		}
	}()
	for i := 0; i < 30; i++ {
		p.Seed(intakeEvent(i))
	}
	p.Close()
	<-done
	if final.Events != 0 {
		t.Fatalf("seeds leaked into the window: %d events", final.Events)
	}
	if final.Picture.Total != 30 {
		t.Fatalf("seeded picture holds %d routes, want 30", final.Picture.Total)
	}
	if len(final.Components) != 0 {
		t.Fatalf("seeds produced %d Stemming components, want none", len(final.Components))
	}
}

func TestIntakePolicies(t *testing.T) {
	t.Run("block-lossless", func(t *testing.T) {
		p := New(Config{SpikeK: -1})
		var final Snapshot
		done := make(chan struct{})
		go func() {
			defer close(done)
			for s := range p.Snapshots() {
				if s.Trigger == TriggerFinal {
					final = s
				}
			}
		}()
		var journaled int
		in := NewIntake(IntakeConfig{Depth: 8, Policy: OverloadBlock,
			Journal: func(e *event.Event) error { journaled++; return nil }}, p)
		for i := 0; i < 500; i++ {
			in.Offer(intakeEvent(i))
		}
		in.Close()
		p.Close()
		<-done
		if journaled != 500 {
			t.Fatalf("journaled %d events, want 500", journaled)
		}
		if final.Events != 500 {
			t.Fatalf("window held %d events, want 500", final.Events)
		}
	})

	t.Run("spill-journals-everything-under-stalled-analysis", func(t *testing.T) {
		p := stalledPipeline()
		defer drainAndClose(p)
		var mu sync.Mutex
		journaled := 0
		// Depth >= n: the queue can absorb the whole burst, so any loss
		// would be a policy bug, not a pacing artifact.
		in := NewIntake(IntakeConfig{Depth: 2048, Policy: OverloadSpill,
			Journal: func(e *event.Event) error {
				mu.Lock()
				journaled++
				mu.Unlock()
				return nil
			}}, p)
		const n = 2000
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			for i := 0; i < n; i++ {
				in.Offer(intakeEvent(i))
			}
			in.Close()
		}()
		select {
		case <-finished:
		case <-time.After(5 * time.Second):
			t.Fatal("spill-mode producer blocked behind a stalled analysis consumer")
		}
		mu.Lock()
		got := journaled
		mu.Unlock()
		// The journal is fast here, so the queue never fills: spill mode
		// must have journaled every event even though analysis was dead.
		if got != n {
			t.Fatalf("journaled %d/%d events under stalled analysis", got, n)
		}
	})

	t.Run("shed-bounded", func(t *testing.T) {
		p := stalledPipeline()
		defer drainAndClose(p)
		in := NewIntake(IntakeConfig{Depth: 8, Policy: OverloadShed}, p)
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			for i := 0; i < 5000; i++ {
				in.Offer(intakeEvent(i))
			}
			in.Close()
		}()
		select {
		case <-finished:
		case <-time.After(5 * time.Second):
			t.Fatal("shed-mode producer blocked")
		}
	})
}

func TestParseOverloadPolicy(t *testing.T) {
	for _, s := range []string{"block", "shed", "spill"} {
		pol, err := ParseOverloadPolicy(s)
		if err != nil {
			t.Fatal(err)
		}
		if pol.String() != s {
			t.Fatalf("%q parsed to %v", s, pol)
		}
	}
	if _, err := ParseOverloadPolicy("drop"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
