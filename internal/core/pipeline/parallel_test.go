package pipeline

// The parallel engine's correctness story: replay identical streams
// through Workers=1 and Workers=N pipelines and require byte-identical
// output — every snapshot, every spike trigger, every Stemming component
// including tie-break order, every TAMP picture node and edge. The
// corpus is the Berkeley-scale churn stream plus the six case-study
// scenario streams, so the equivalence is proven on exactly the traffic
// the paper's analyses run on.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/sim"
)

var diffT0 = time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)

func diffConfig(workers int) Config {
	return Config{
		Window:        10 * time.Minute,
		SnapshotEvery: 2 * time.Minute,
		SpikeK:        8,
		Site:          "diff",
		Prune:         tamp.PruneOptions{KeepDepth: 3},
		Workers:       workers,
	}
}

// diffStream is one corpus entry. Streams are built exactly once and the
// same slice replays through every engine, so any output difference can
// only come from the engine under test.
type diffStream struct {
	name   string
	events event.Stream
}

func diffStreams(t testing.TB) []diffStream {
	t.Helper()

	// Berkeley-scale: the site at reduced scale, with a churny
	// announce/withdraw mix over half an hour.
	bScale := sim.BerkeleyScale(2500)
	bRoutes := bScale.BaselineRoutes()
	scale := sim.BenchEvents(bScale.Site, bRoutes, 4000, 30*time.Minute, diffT0, 42)

	// The case studies. Leak and hijack run on the misconfigured
	// Berkeley site; flap, MED and the mixed grass on a small ISP.
	bMis := sim.Berkeley(sim.BerkeleyConfig{Misconfigured: true})
	is := sim.ISPAnon(sim.ISPAnonConfig{
		PoPs: 2, RRsPerPoP: 1, Tier1Peers: 3,
		CustomerStubs: 60, PrefixesPerStub: 5,
	})
	isRoutes := is.BaselineRoutes()

	leak := sim.PeerLeakScenario(bMis, 2, diffT0).Events
	flap := sim.CustomerFlapScenario(is, 60, 2*time.Minute, diffT0).Events
	// Slowed-down oscillation periods: the paper's 10µs default would
	// make a minutes-long stream millions of events; the engine only
	// needs the alternation pattern, not the full rate.
	med := sim.MEDOscillationScenario(is, 2*time.Second, 5*time.Millisecond, 50*time.Millisecond, diffT0).Events
	reset := sim.SessionResetScenario(bScale.Site, bRoutes[:100], sim.ASCalREN, time.Minute, diffT0).Events
	hijack := sim.HijackScenario(bMis, 3, diffT0).Events

	// Mixed churn: grass plus a towering session reset, the §IV-E shape
	// that exercises the spike trigger.
	noise := sim.NoiseStream(isRoutes, 3000, 2*time.Hour, diffT0, 11)
	burst := sim.SessionResetScenario(is.Site, isRoutes, is.Tier1s[0], 20*time.Second, diffT0.Add(30*time.Minute)).Events
	mixed := append(append(event.Stream{}, noise...), burst...)
	mixed.SortByTime()

	return []diffStream{
		{"berkeley-scale", scale},
		{"peer-leak", leak},
		{"customer-flap", flap},
		{"med-oscillation", med},
		{"session-reset", reset},
		{"hijack", hijack},
		{"mixed-churn", mixed},
	}
}

// renderSnapshots serializes every observable field of a snapshot run
// into one deterministic string, so equality below really is
// byte-identity of the full output.
func renderSnapshots(snaps []Snapshot) string {
	var b strings.Builder
	for i, s := range snaps {
		fmt.Fprintf(&b, "#%d %s at=%d win=[%d,%d] events=%d\n",
			i, s.Trigger, s.At.UnixNano(), s.WindowStart.UnixNano(), s.WindowEnd.UnixNano(), s.Events)
		if s.Spike != nil {
			fmt.Fprintf(&b, "  spike=%+v\n", *s.Spike)
		}
		for _, c := range s.Components {
			fmt.Fprintf(&b, "  comp score=%.17g count=%d stem=%v->%v seq=%v prefixes=%v events=%v first=%d last=%d\n",
				c.Score, c.Count, c.Stem.From, c.Stem.To, c.Subsequence, c.Prefixes,
				c.EventIndexes, c.First.UnixNano(), c.Last.UnixNano())
		}
		if p := s.Picture; p != nil {
			fmt.Fprintf(&b, "  picture site=%s total=%d\n", p.Site, p.Total)
			for _, n := range p.Nodes {
				fmt.Fprintf(&b, "    node %v d=%d\n", n.ID, n.Depth)
			}
			for _, e := range p.Edges {
				fmt.Fprintf(&b, "    edge %v->%v w=%d f=%.17g max=%d d=%d\n",
					e.From, e.To, e.Weight, e.Fraction, e.MaxEver, e.Depth)
			}
		}
	}
	return b.String()
}

// firstDiff locates the first differing line of two renders, for
// a failure message that names the divergence instead of dumping both.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return fmt.Sprintf("line %d:\n  sequential: %q\n  parallel:   %q", i+1, x, y)
		}
	}
	return "renders equal"
}

// TestParallelEquivalence replays each corpus stream through the
// sequential engine and through Workers ∈ {2, 4, GOMAXPROCS}, requiring
// byte-identical snapshot sequences.
func TestParallelEquivalence(t *testing.T) {
	workerCounts := []int{2, 4, runtime.GOMAXPROCS(0)}
	spikes := 0
	for _, ds := range diffStreams(t) {
		ds := ds
		t.Run(ds.name, func(t *testing.T) {
			base := Replay(ds.events, diffConfig(1))
			if len(base) == 0 {
				t.Fatal("sequential replay emitted no snapshots")
			}
			for _, s := range base {
				if s.Trigger == TriggerSpike {
					spikes++
				}
			}
			want := renderSnapshots(base)
			for _, w := range workerCounts {
				got := Replay(ds.events, diffConfig(w))
				if len(got) != len(base) {
					t.Fatalf("workers=%d: %d snapshots, sequential produced %d", w, len(got), len(base))
				}
				if r := renderSnapshots(got); r != want {
					t.Errorf("workers=%d diverged from sequential: %s", w, firstDiff(want, r))
				}
			}
		})
	}
	// The corpus must actually exercise the spike trigger, or the
	// equivalence over TriggerSpike snapshots is vacuous.
	if spikes == 0 {
		t.Error("no corpus stream produced a spike snapshot")
	}
}

// TestParallelEquivalenceSingleShard pins the merge path's degenerate
// case: with one shard, any worker count degenerates to the legacy
// single-graph engine, and MergeSnapshot must delegate byte-for-byte.
func TestParallelEquivalenceSingleShard(t *testing.T) {
	ds := diffStreams(t)
	events := ds[len(ds)-1].events // mixed-churn: spikes + withdrawals
	cfg := diffConfig(1)
	cfg.Shards = 1
	base := renderSnapshots(Replay(events, cfg))
	cfg.Workers = 4 // capped to Shards=1 by withDefaults; must still match
	if got := renderSnapshots(Replay(events, cfg)); got != base {
		t.Errorf("shards=1 workers=4 diverged: %s", firstDiff(base, got))
	}
}
