package pipeline

// Live test: the pipeline fed by a real collector over real (fault-
// injected) BGP sessions, the wiring rexd uses. Two routers announce
// concurrently — so Ingest is called from multiple peer goroutines at
// once — then both sessions are cut mid-stream, producing augmented
// withdrawal sweeps from the collector's own timers. Run under -race
// this exercises the ingest path, the sharded window counters and the
// snapshot merge against genuine concurrency, not a synthetic replay.

import (
	"fmt"
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/bgp/fsm/faultconn"
	"rex/internal/collector"
	"rex/internal/event"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func dialRouter(t *testing.T, addr, routerID string) (*fsm.Session, *faultconn.Conn) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := faultconn.New(raw, faultconn.Options{})
	s, err := fsm.Establish(fc, fsm.Config{
		LocalAS: 25,
		LocalID: netip.MustParseAddr(routerID),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, fc
}

func TestLiveCollectorFeed(t *testing.T) { liveCollectorFeed(t, 1) }

// TestLiveCollectorFeedParallel is the same live flap, but with the
// analysis engine running its worker pool (Workers > 1): real peer
// goroutines race the coordinator, the coordinator races the shard
// workers. Under -race this covers the full parallel ingest path; the
// assertions below are identical because the output is worker-count
// invariant.
func TestLiveCollectorFeedParallel(t *testing.T) { liveCollectorFeed(t, 4) }

func liveCollectorFeed(t *testing.T, workers int) {
	const routesPerPeer = 20

	p := New(Config{Window: time.Hour, SpikeK: -1, IncludeEvents: true, Workers: workers})
	var ingested atomic.Int64
	handler := func(e event.Event) {
		ingested.Add(1)
		p.Ingest(e)
	}

	c := collector.New(collector.Config{
		LocalAS:               25,
		LocalID:               netip.MustParseAddr("10.255.0.1"),
		HoldTime:              30 * time.Second,
		WithdrawOnSessionLoss: true,
		RestartTime:           collector.RestartDisabled,
		Logf:                  t.Logf,
	}, handler)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := c.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	defer c.Close()
	addr := ln.Addr().String()

	r1, fc1 := dialRouter(t, addr, "128.32.1.3")
	r2, fc2 := dialRouter(t, addr, "128.32.1.200")

	// Both routers announce concurrently: the collector invokes the
	// handler from both peer goroutines at once.
	announce := func(s *fsm.Session, net2 int) func() error {
		return func() error {
			for i := 0; i < routesPerPeer; i++ {
				u := &bgp.Update{
					Attrs: &bgp.PathAttrs{
						Origin:  bgp.OriginIGP,
						ASPath:  bgp.Sequence(11423, 209, uint32(700+i%3)),
						Nexthop: netip.MustParseAddr("128.32.0.66"),
					},
					NLRI: []netip.Prefix{netip.MustParsePrefix(fmt.Sprintf("172.%d.%d.0/24", net2, i))},
				}
				if err := s.Send(u); err != nil {
					return err
				}
			}
			return nil
		}
	}
	errc := make(chan error, 2)
	go func() { errc <- announce(r1, 16)() }()
	go func() { errc <- announce(r2, 17)() }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("announce: %v", err)
		}
	}
	waitFor(t, "announces", func() bool { return ingested.Load() >= 2*routesPerPeer })

	// Kill both sessions mid-stream: the collector's loss handling sweeps
	// each peer's table as augmented withdrawals.
	fc1.Cut()
	fc2.Cut()
	waitFor(t, "withdraw sweeps", func() bool { return ingested.Load() >= 4*routesPerPeer })

	total := int(ingested.Load())
	if total != 4*routesPerPeer {
		t.Fatalf("ingested %d events, want %d", total, 4*routesPerPeer)
	}

	done := make(chan Snapshot, 1)
	go func() {
		var last Snapshot
		for s := range p.Snapshots() {
			last = s
		}
		done <- last
	}()
	p.Close()
	final := <-done

	if final.Trigger != TriggerFinal {
		t.Fatalf("last snapshot trigger = %v, want final", final.Trigger)
	}
	if final.Events != total {
		t.Errorf("final window holds %d events, want %d (none lost or duplicated)", final.Events, total)
	}
	if len(final.Components) == 0 {
		t.Fatal("no components from a correlated announce+withdraw storm")
	}
	if stem := final.Components[0].Stem; stem.From.AS != 11423 || stem.To.AS != 209 {
		t.Errorf("strongest stem = %v→%v, want the shared AS11423→AS209 trunk", stem.From, stem.To)
	}
	if final.Picture == nil || final.Picture.Total != 0 {
		t.Errorf("picture total = %v, want 0: every announced route was withdrawn", final.Picture)
	}
}
