package pipeline

import "sync"

// pool is the engine's worker pool. Each worker owns a FIFO task queue,
// and the coordinator (the run loop — the only submitter) routes all of
// a shard's work to the one worker that statically owns it (shard i →
// worker i % Workers). Two properties follow, and the engine's
// determinism rests on both:
//
//   - per-shard ordering: one shard's tasks execute in submission order,
//     because they all flow through one FIFO and one goroutine;
//   - no cross-shard sharing: two workers never touch the same shard,
//     so shard state needs no locks.
//
// Workers only ever run tasks; they never submit, emit snapshots, or
// block on the coordinator — a full queue back-pressures the coordinator
// and nothing else, so the pool cannot deadlock.
type pool struct {
	workers int
	tasks   []chan func()
	pending sync.WaitGroup // submitted tasks not yet finished
	running sync.WaitGroup // live worker goroutines
}

// poolQueueDepth bounds each worker's task backlog. Deep enough that the
// coordinator rarely stalls behind a slow shard, shallow enough that a
// barrier never waits on an unbounded queue.
const poolQueueDepth = 128

func newPool(workers int) *pool {
	p := &pool{workers: workers, tasks: make([]chan func(), workers)}
	for i := range p.tasks {
		ch := make(chan func(), poolQueueDepth)
		p.tasks[i] = ch
		p.running.Add(1)
		go func() {
			defer p.running.Done()
			for f := range ch {
				f()
				p.pending.Done()
			}
		}()
	}
	return p
}

// submit queues f on worker w's FIFO, blocking while that queue is full.
// Only the coordinator may call it.
func (p *pool) submit(w int, f func()) {
	mWorkerTasks.Inc()
	p.pending.Add(1)
	p.tasks[w] <- f
}

// barrier waits until every submitted task has finished. Only the
// coordinator may call it (a worker waiting on itself would deadlock).
func (p *pool) barrier() { p.pending.Wait() }

// close drains and stops the workers. The pool must not be used after.
func (p *pool) close() {
	p.barrier()
	for _, ch := range p.tasks {
		close(ch)
	}
	p.running.Wait()
}
