// Package pipeline is the streaming analysis engine: it consumes the
// collector's live event stream (or a replayed one), maintains a sliding
// time window of events with incrementally-updated Stemming count tables
// and a TAMP routing graph, and emits analysis snapshots — on a periodic
// event-time tick, whenever the event rate spikes above the robust
// baseline, and once at shutdown. It is the always-on form of the
// paper's workflow: rather than re-scanning a buffered stream on demand,
// the window turns over continuously and every snapshot is a full
// decomposition of exactly the last Window of routing activity plus a
// pruned picture of the routing state at that instant.
//
// All analysis state is sharded by interned prefix: event i's prefix
// picks both its Stemming count shard and its TAMP sub-graph, so the
// shards partition the prefix space and merge deterministically at
// snapshot time (DESIGN.md §10). Workers controls only how many
// goroutines execute shard work — the shard layout, and therefore every
// snapshot byte, is identical at any worker count.
package pipeline

import (
	"net/netip"
	"sync"
	"time"

	"rex/internal/core/stemming"
	"rex/internal/core/tamp"
	"rex/internal/event"
)

// Trigger says why a snapshot was emitted.
type Trigger uint8

// Snapshot triggers.
const (
	// TriggerTick: the periodic SnapshotEvery event-time timer.
	TriggerTick Trigger = iota + 1
	// TriggerSpike: the window's event rate crossed median + k·MAD.
	TriggerSpike
	// TriggerFinal: the pipeline was closed; the last word on the window.
	TriggerFinal
)

// String names the trigger.
func (t Trigger) String() string {
	switch t {
	case TriggerTick:
		return "tick"
	case TriggerSpike:
		return "spike"
	case TriggerFinal:
		return "final"
	default:
		return "trigger(?)"
	}
}

// Snapshot is one emitted analysis result.
type Snapshot struct {
	// At is the event-time clock when the snapshot was taken (the newest
	// event time seen so far).
	At      time.Time
	Trigger Trigger
	// WindowStart and WindowEnd bound the events actually in the window.
	WindowStart, WindowEnd time.Time
	// Events is how many events the window held.
	Events int
	// Components is the Stemming decomposition, strongest first.
	Components []stemming.Component
	// Picture is the pruned TAMP picture of the current routing state.
	Picture *tamp.Picture
	// Spike is set on TriggerSpike: the detected rate spike.
	Spike *event.Spike
	// Stream is the window's event slice, only when Config.IncludeEvents
	// is set (it pins every event's attributes in memory).
	Stream event.Stream
}

// DefaultShards is the default prefix-shard count. It is a fixed number
// rather than GOMAXPROCS on purpose: the shard layout is part of the
// analysis semantics (it fixes the floating-point merge order of the
// count tables and the per-shard TAMP MaxEver peaks), so a fixed default
// keeps snapshots reproducible across machines, not just across runs.
const DefaultShards = 16

// Config tunes the pipeline. The zero value is usable.
type Config struct {
	// Window is the sliding window length in event time (default 15m).
	Window time.Duration
	// SnapshotEvery emits a TriggerTick snapshot each time the event-time
	// clock advances this far (0 disables ticks).
	SnapshotEvery time.Duration
	// SpikeK is the MAD multiplier for the spike trigger (default 8,
	// negative disables spike snapshots).
	SpikeK float64
	// SpikeBucket is the rate-series bucket (default 1 minute).
	SpikeBucket time.Duration
	// Stemming configures the window decomposition.
	Stemming stemming.Config
	// Site names the TAMP graph root (default "site").
	Site string
	// Prune controls Picture pruning.
	Prune tamp.PruneOptions
	// Shards is the prefix-shard parallelism of the analysis state — the
	// Stemming count tables and the TAMP shadow are both partitioned by
	// interned prefix modulo Shards (0 = DefaultShards). Results depend
	// on the shard count only through float summation order and the
	// per-shard MaxEver rule, never on Workers.
	Shards int
	// Workers is how many goroutines execute shard work. 0 or 1 runs
	// everything inline on the run loop (the sequential path); higher
	// values start a worker pool with static shard ownership. Capped at
	// Shards. Snapshots are byte-identical at any Workers value.
	Workers int
	// IncludeEvents copies the window contents into each Snapshot.
	IncludeEvents bool
	// Buffer is the ingest channel depth (default 1024).
	Buffer int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 15 * time.Minute
	}
	if c.SpikeK == 0 {
		c.SpikeK = 8
	}
	if c.SpikeBucket <= 0 {
		c.SpikeBucket = time.Minute
	}
	if c.Site == "" {
		c.Site = "site"
	}
	if c.Buffer <= 0 {
		c.Buffer = 1024
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	return c
}

// Pipeline is the running engine. Ingest may be called from any number
// of goroutines (it is a valid collector.Handler); all analysis state is
// owned by one internal run loop plus, at Workers > 1, a pool of shard
// workers the run loop coordinates.
type Pipeline struct {
	cfg    Config
	events chan msg
	snaps  chan Snapshot
	quit   chan struct{}
	done   chan struct{} // closed when the run loop has exited
	once   sync.Once
}

// Control message kinds, carried in-band through the event channel so
// their position relative to events and seeds is exact.
const (
	ctrlNone uint8 = iota
	ctrlBeginRecovery
	ctrlEndRecovery
)

// msg is one unit of work for the run loop: a live event, a batch of
// them, a seed event that rebuilds table state without touching the
// window, a recovery-span control mark, or a trigger-state
// query/restore.
type msg struct {
	e       event.Event
	batch   []event.Event
	seed    bool
	ctrl    uint8
	query   chan<- TriggerState
	restore *TriggerState
}

// New starts a pipeline. The caller must drain Snapshots() — emission
// blocks on the consumer — and eventually call Close.
func New(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:    cfg,
		events: make(chan msg, cfg.Buffer),
		snaps:  make(chan Snapshot),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go p.run()
	return p
}

// Ingest feeds one event, blocking while the buffer is full. That
// block propagates backwards: when the caller is a collector session
// goroutine, a stalled snapshot consumer can wedge the BGP read loop
// until the peer's hold timer expires and the session flaps. Callers
// on a session-critical path must use TryIngest (or an Intake with a
// non-blocking policy) instead. After Close the event is dropped;
// Ingest never blocks forever on a stopped pipeline.
func (p *Pipeline) Ingest(e event.Event) {
	select {
	case p.events <- msg{e: e}:
	case <-p.quit:
	}
}

// IngestBatch feeds a slice of events as one unit of work, blocking like
// Ingest. Ownership of the slice transfers to the pipeline — the caller
// must not reuse it. Batching amortizes the per-message channel cost,
// which is what keeps the intake's hand-off off the hot path when the
// engine runs parallel; the events are processed exactly as if they had
// been Ingested one by one in slice order.
func (p *Pipeline) IngestBatch(batch []event.Event) {
	if len(batch) == 0 {
		return
	}
	select {
	case p.events <- msg{batch: batch}:
	case <-p.quit:
	}
}

// TryIngest feeds one event without ever blocking: when the buffer is
// full the event is shed — counted in rex_pipeline_shed_total and
// reported by the false return — so analysis latency can never
// back-pressure the caller. The analysis window under-counts by
// exactly the shed events; the journal, written upstream of this
// call, still has them.
func (p *Pipeline) TryIngest(e event.Event) bool {
	select {
	case p.events <- msg{e: e}:
		return true
	case <-p.quit:
		return true // stopped: drop silently, same as Ingest
	default:
		mShed.Inc()
		return false
	}
}

// Seed feeds one recovered table entry, blocking like Ingest. Seed
// events rebuild the TAMP shadow RIB (routing state NOW) from a
// checkpoint without entering the sliding window or advancing the
// event-time clock, so recovery does not fire tick/spike triggers for
// state that predates the replay tail.
//
// Checkpoint state is by definition older than any event a live session
// delivers while recovery runs — bracket the seed+replay span with
// BeginRecovery/EndRecovery so a seed arriving after a live event for
// the same (router, prefix) cannot resurrect the stale route.
func (p *Pipeline) Seed(e event.Event) {
	select {
	case p.events <- msg{e: e, seed: true}:
	case <-p.quit:
	}
}

// BeginRecovery marks the start of a recovery span: until EndRecovery,
// the engine tracks which (router, prefix) route keys live events have
// touched, and drops any Seed for a touched key as stale (counted in
// rex_pipeline_seed_stale_total). The mark travels in-band through the
// ingest channel, so "before" and "after" mean channel order — exactly
// the order the race between journal replay and live intake resolves in.
func (p *Pipeline) BeginRecovery() {
	select {
	case p.events <- msg{ctrl: ctrlBeginRecovery}:
	case <-p.quit:
	}
}

// EndRecovery closes the span opened by BeginRecovery and releases the
// touched-key tracking. Seeds outside a recovery span apply
// unconditionally, as before.
func (p *Pipeline) EndRecovery() {
	select {
	case p.events <- msg{ctrl: ctrlEndRecovery}:
	case <-p.quit:
	}
}

// TriggerState is the snapshot-trigger clock state: the event-time
// clock, the next tick deadline, the current spike bucket and the last
// reported spike onset. Together with the window contents (rebuildable
// from a journal) and the TAMP tables (checkpointable), it is
// everything a restarted pipeline needs to continue the exact trigger
// cadence of the run that died.
//
// The silent-replay contract: restore a captured state FIRST, then
// re-process the events that originally led up to the capture point.
// None of them advances the restored clock (each event's time is at or
// below it), so no tick or spike trigger can fire during the replay —
// the rebuild emits nothing — and the first genuinely new event resumes
// triggers mid-cadence, exactly where the dead run left them.
type TriggerState struct {
	// Clock is the newest event time the pipeline had seen.
	Clock time.Time
	// NextTick is the next TriggerTick deadline (zero before the first
	// event or when ticks are disabled).
	NextTick time.Time
	// CurBucket is the spike trigger's current rate bucket.
	CurBucket time.Time
	// LastSpike is the Start of the newest spike already reported.
	LastSpike time.Time
	// Emitted counts snapshots this pipeline instance has handed to the
	// Snapshots() consumer so far (the TriggerFinal close-out snapshot
	// excluded). It is process-local — RestoreTriggers resets it to
	// zero, and a silent replay emits nothing — so a consumer that
	// persists snapshots as they arrive can compare it against its own
	// sink count to know whether everything a TriggerQuery cut covers
	// has already been written out.
	Emitted uint64
}

// TriggerQuery returns the trigger state at the query's exact in-band
// position: after every event, batch and seed ingested before the call,
// before everything after it. It is also a synchronization barrier —
// when it returns, every snapshot those prior events triggered has been
// delivered to the Snapshots() consumer, which must keep draining or
// the query never drains. Returns ok=false if the pipeline stopped
// before answering.
func (p *Pipeline) TriggerQuery() (TriggerState, bool) {
	ch := make(chan TriggerState, 1)
	select {
	case p.events <- msg{query: ch}:
	case <-p.quit:
		return TriggerState{}, false
	}
	select {
	case ts := <-ch:
		return ts, true
	case <-p.done:
		// Closed while we waited; the drain may still have answered.
		select {
		case ts := <-ch:
			return ts, true
		default:
			return TriggerState{}, false
		}
	}
}

// RestoreTriggers sets the trigger state, in-band like Seed: restores
// sent before replayed events are applied before them. Call it once at
// the start of recovery with a state captured by TriggerQuery; see
// TriggerState for the silent-replay contract that makes the subsequent
// rebuild emit no snapshots.
func (p *Pipeline) RestoreTriggers(ts TriggerState) {
	select {
	case p.events <- msg{restore: &ts}:
	case <-p.quit:
	}
}

// Snapshots returns the emission channel. It is closed after the final
// snapshot, once Close has been called.
func (p *Pipeline) Snapshots() <-chan Snapshot { return p.snaps }

// Close stops intake. The run loop drains already-buffered events, emits
// a TriggerFinal snapshot, and closes Snapshots(); keep draining that
// channel until it closes. Close itself returns immediately and is safe
// to call more than once.
func (p *Pipeline) Close() {
	p.once.Do(func() { close(p.quit) })
}

func (p *Pipeline) run() {
	defer close(p.done)
	defer close(p.snaps)
	st := &state{
		p:       p,
		win:     stemming.NewWindow(p.cfg.Stemming, p.cfg.Shards),
		shards:  make([]*analysisShard, p.cfg.Shards),
		routers: make(map[netip.Addr]string),
		graphs:  make([]*tamp.Graph, p.cfg.Shards),
	}
	for i := range st.shards {
		st.shards[i] = &analysisShard{
			g:       tamp.New(p.cfg.Site),
			rib:     make(map[routeKey]tamp.RouteEntry),
			pending: opsPool.Get().(*[]routeOp),
		}
	}
	mShards.Set(int64(p.cfg.Shards))
	mWorkers.Set(int64(p.cfg.Workers))
	if p.cfg.Workers > 1 {
		st.pool = newPool(p.cfg.Workers)
		defer st.pool.close()
		// Window settles ride the same pool: distinct tasks touch
		// distinct count shards, and the Runner contract waits for all
		// of them, so the coordinator's view stays race-free.
		st.win.Runner = func(n int, run func(i int)) {
			var wg sync.WaitGroup
			wg.Add(n)
			for i := 0; i < n; i++ {
				i := i
				st.pool.submit(i%st.pool.workers, func() {
					run(i)
					wg.Done()
				})
			}
			wg.Wait()
		}
	}
	st.win.OnSettle = func(elapsed time.Duration, _ int) {
		mSettleSeconds.Observe(elapsed.Seconds())
	}
	for {
		select {
		case m := <-p.events:
			st.dispatch(m)
		case <-p.quit:
			// Drain what Ingest already buffered, then close out.
			for {
				select {
				case m := <-p.events:
					st.dispatch(m)
				default:
					p.snaps <- st.snapshot(TriggerFinal, nil)
					return
				}
			}
		}
	}
}

type routeKey struct {
	router string
	prefix netip.Prefix
}

// routeOp is one routing change bound for a shard's TAMP shadow. The
// router name is the coordinator's cached string form of e.Peer, so
// workers never re-render addresses.
type routeOp struct {
	e      event.Event
	router string
	seed   bool
}

// tampBatchSize is how many routeOps accumulate per shard before the
// coordinator flushes them to the owning worker as one task.
const tampBatchSize = 64

// opsPool recycles flushed routeOp batches between the coordinator
// (which fills them) and the shard workers (which return them after
// applying). Pooled as pointers so Get/Put do not re-box the slice
// header.
var opsPool = sync.Pool{New: func() any {
	b := make([]routeOp, 0, tampBatchSize)
	return &b
}}

// batchPool recycles IngestBatch slices between the run loop (which
// recycles a batch after processing it — ownership transferred on
// Ingest) and the intake drainer, which refills them.
var batchPool = sync.Pool{New: func() any {
	b := make([]event.Event, 0, intakeBatchMax)
	return &b
}}

// getBatch returns an empty pooled batch slice for IngestBatch filling.
func getBatch() []event.Event {
	return (*batchPool.Get().(*[]event.Event))[:0]
}

// recycleBatch clears a processed batch — dropping its attribute
// references so a pooled buffer never pins event payloads — and returns
// it to the pool.
func recycleBatch(b []event.Event) {
	clear(b)
	b = b[:0]
	batchPool.Put(&b)
}

// analysisShard is one prefix shard's slice of the TAMP state: a
// sub-graph plus the RIB shadow for the prefixes hashed here. Owned by
// exactly one worker (or the run loop at Workers=1); pending is the
// coordinator-side flush buffer and is never touched by workers.
type analysisShard struct {
	g       *tamp.Graph
	rib     map[routeKey]tamp.RouteEntry
	pending *[]routeOp
}

// applyRoute mirrors one routing change into the shard's TAMP sub-graph
// through a RIB shadow keyed (router, prefix), exactly as the animator
// tracks state: a duplicate announcement is silent, a changed one is a
// replace, a withdrawal removes whatever route we believed was
// current. The graph reflects routing state NOW — it does not slide
// with the window. The mapping is idempotent at the state level
// (re-announcing the current route is a no-op, withdrawing an absent
// one is too), which is what lets recovery replay a journal tail on
// top of a checkpoint that already contains part of it.
func (sh *analysisShard) applyRoute(e *event.Event, router string) {
	key := routeKey{router: router, prefix: e.Prefix}
	switch e.Type {
	case event.Announce:
		entry := tamp.EntryFromEventNamed(router, e)
		if old, ok := sh.rib[key]; ok {
			if !routeEqual(old, entry) {
				sh.g.ReplaceRoute(old, entry)
				sh.rib[key] = entry
			}
		} else {
			sh.g.AddRoute(entry)
			sh.rib[key] = entry
		}
	case event.Withdraw:
		if old, ok := sh.rib[key]; ok {
			sh.g.RemoveRoute(old)
			delete(sh.rib, key)
		}
	}
}

// applyBatch replays a flushed op batch in order on the owning worker.
func (sh *analysisShard) applyBatch(ops []routeOp) {
	for i := range ops {
		sh.applyRoute(&ops[i].e, ops[i].router)
	}
}

// state is the run loop's analysis state. The run loop is the
// coordinator: it owns the window ring, the clock and triggers, and the
// shard flush buffers; at Workers > 1 the shard graphs and RIB shadows
// are owned by pool workers between barriers.
type state struct {
	p      *Pipeline
	win    *stemming.Window
	shards []*analysisShard
	pool   *pool // nil at Workers <= 1

	clock     time.Time // newest event time seen (the event-time clock)
	nextTick  time.Time
	curBucket time.Time
	lastSpike time.Time // Start of the last spike already emitted
	emitted   uint64    // snapshots handed to the consumer (sans final)

	// Recovery-span tracking (between BeginRecovery and EndRecovery):
	// route keys live events have touched, which stale seeds must not
	// overwrite. Nil outside a span — zero cost on the steady path.
	liveTouched map[routeKey]struct{}

	// routers caches the string form of every peer address seen, so the
	// steady path renders each address exactly once instead of per event.
	routers map[netip.Addr]string

	// graphs and rateBuf are per-snapshot / per-spike-check scratch,
	// reused so the triggers allocate only their results.
	graphs  []*tamp.Graph
	rateBuf event.Stream
}

// routerName returns the cached string form of a peer address,
// rendering and caching it on first sight.
func (st *state) routerName(a netip.Addr) string {
	if s, ok := st.routers[a]; ok {
		return s
	}
	s := a.String()
	st.routers[a] = s
	return s
}

// dispatch routes one message: control marks flip recovery tracking,
// seeds rebuild table state only, live events take the full path.
func (st *state) dispatch(m msg) {
	switch {
	case m.ctrl == ctrlBeginRecovery:
		st.liveTouched = make(map[routeKey]struct{})
	case m.ctrl == ctrlEndRecovery:
		st.liveTouched = nil
	case m.query != nil:
		m.query <- TriggerState{
			Clock:     st.clock,
			NextTick:  st.nextTick,
			CurBucket: st.curBucket,
			LastSpike: st.lastSpike,
			Emitted:   st.emitted,
		}
	case m.restore != nil:
		st.clock = m.restore.Clock
		st.nextTick = m.restore.NextTick
		st.curBucket = m.restore.CurBucket
		st.lastSpike = m.restore.LastSpike
	case m.batch != nil:
		for i := range m.batch {
			st.process(m.batch[i])
		}
		recycleBatch(m.batch)
	case m.seed:
		st.seed(m.e)
	default:
		st.process(m.e)
	}
}

// seed applies one checkpoint-recovered route to the TAMP shadow without
// touching the window or the clock. Inside a recovery span, a seed for a
// route key some live event already touched is stale — the live event is
// by construction newer than the checkpoint — and is dropped.
func (st *state) seed(e event.Event) {
	router := st.routerName(e.Peer)
	if st.liveTouched != nil {
		if _, touched := st.liveTouched[routeKey{router: router, prefix: e.Prefix}]; touched {
			mSeedStale.Inc()
			return
		}
	}
	mSeeded.Inc()
	st.route(st.win.ShardFor(e.Prefix), routeOp{e: e, router: router, seed: true})
}

// route hands one routing change to its shard: inline at Workers <= 1,
// batched to the owning worker otherwise.
func (st *state) route(shard int, op routeOp) {
	mShardRouteOps.Inc()
	sh := st.shards[shard]
	if st.pool == nil {
		sh.applyRoute(&op.e, op.router)
		return
	}
	*sh.pending = append(*sh.pending, op)
	if len(*sh.pending) >= tampBatchSize {
		st.flush(shard)
	}
}

// flush submits a shard's buffered routeOps to its owning worker. The
// worker index is a pure function of the shard index, so a shard's
// batches land on one FIFO and apply in coordinator order. The batch
// buffer returns to opsPool once the worker has applied it (cleared, so
// a pooled buffer never pins event attributes).
func (st *state) flush(shard int) {
	sh := st.shards[shard]
	if len(*sh.pending) == 0 {
		return
	}
	ops := sh.pending
	sh.pending = opsPool.Get().(*[]routeOp)
	*sh.pending = (*sh.pending)[:0]
	mShardFlushes.Inc()
	st.pool.submit(shard%st.pool.workers, func() {
		sh.applyBatch(*ops)
		clear(*ops)
		*ops = (*ops)[:0]
		opsPool.Put(ops)
	})
}

// barrier makes every shard's TAMP state current: all buffered ops
// flushed and every in-flight worker task finished. No-op at Workers=1.
func (st *state) barrier() {
	if st.pool == nil {
		return
	}
	for i := range st.shards {
		st.flush(i)
	}
	st.pool.barrier()
}

// process applies one event: window add (which also picks the shard),
// RIB shadow → sharded TAMP graph, eviction, then the tick and spike
// triggers against the advanced event clock.
func (st *state) process(e event.Event) {
	cfg := &st.p.cfg
	mEvents.Inc()
	first := st.clock.IsZero()
	if first || e.Time.After(st.clock) {
		st.clock = e.Time
	}

	shard := st.win.Add(e)
	router := st.routerName(e.Peer)
	if st.liveTouched != nil {
		st.liveTouched[routeKey{router: router, prefix: e.Prefix}] = struct{}{}
	}
	st.route(shard, routeOp{e: e, router: router})

	evicted := st.win.EvictBefore(st.clock.Add(-cfg.Window))
	if evicted > 0 {
		mEvicted.Add(uint64(evicted))
	}
	mWindowEvents.Set(int64(st.win.Len()))

	// Spike trigger: on each event-time bucket rollover, rate the window
	// and look for a spike newer than the last one reported.
	if cfg.SpikeK > 0 {
		b := st.clock.Truncate(cfg.SpikeBucket)
		if st.curBucket.IsZero() {
			st.curBucket = b
		} else if b.After(st.curBucket) {
			st.curBucket = b
			st.checkSpikes()
		}
	}

	// Tick trigger, in event time: replay at any speed snapshots at the
	// same stream positions.
	if cfg.SnapshotEvery > 0 {
		if first {
			st.nextTick = e.Time.Add(cfg.SnapshotEvery)
		}
		for !st.clock.Before(st.nextTick) {
			st.emit(st.snapshot(TriggerTick, nil))
			st.nextTick = st.nextTick.Add(cfg.SnapshotEvery)
		}
	}
}

// checkSpikes rates the current window and emits one snapshot per spike
// not yet reported. The snapshot lands at spike onset — the first bucket
// rollover at which the run crosses the threshold — so the decomposition
// covers the surge while it is still in the window.
func (st *state) checkSpikes() {
	st.rateBuf = st.win.AppendEvents(st.rateBuf[:0])
	rs := event.Rate(st.rateBuf, st.p.cfg.SpikeBucket)
	for _, sp := range rs.Spikes(st.p.cfg.SpikeK) {
		if !sp.Start.After(st.lastSpike) {
			continue
		}
		st.lastSpike = sp.Start
		spike := sp
		mSpikes.Inc()
		st.emit(st.snapshot(TriggerSpike, &spike))
	}
}

// snapshot assembles the full analysis of the current window. The
// barrier first settles all shard state; the picture is then the
// deterministic merge of the per-shard sub-graphs — a pure function of
// each shard's op sequence, which the coordinator fixed in stream order.
func (st *state) snapshot(trig Trigger, sp *event.Spike) Snapshot {
	start := time.Now()
	st.barrier()
	for i, sh := range st.shards {
		st.graphs[i] = sh.g
	}
	// The window contents are read in place — Len, Snapshot and
	// TimeRange never copy the ring; events are copied out only when the
	// caller asked for them.
	s := Snapshot{
		At:         st.clock,
		Trigger:    trig,
		Events:     st.win.Len(),
		Components: st.win.Snapshot(),
		Picture:    tamp.MergeSnapshot(st.p.cfg.Site, st.graphs, st.p.cfg.Prune),
		Spike:      sp,
	}
	if first, last, ok := st.win.TimeRange(); ok {
		s.WindowStart, s.WindowEnd = first, last
	}
	if st.p.cfg.IncludeEvents {
		s.Stream = st.win.Events()
	}
	mSnapshots.With(trig.String()).Inc()
	mSnapshotSeconds.Observe(time.Since(start).Seconds())
	return s
}

// emit hands a snapshot to the consumer. The send blocks: snapshots are
// never dropped, even ones computed from events buffered before Close —
// which is why the consumer must keep draining Snapshots() until it
// closes.
func (st *state) emit(s Snapshot) {
	st.p.snaps <- s
	st.emitted++
}

func routeEqual(a, b tamp.RouteEntry) bool {
	if a.Router != b.Router || a.Nexthop != b.Nexthop || a.Prefix != b.Prefix || len(a.ASPath) != len(b.ASPath) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	return true
}

// ReplayState is the one-shot replay entry the time-travel serving path
// uses: it runs optional checkpoint seeds plus a streamed event source
// through a fresh pipeline with the tick and spike triggers disabled,
// and returns the single close-out snapshot — the full analysis state
// (window, Stemming decomposition, TAMP picture) as of the last event
// the source delivers. Because the engine is deterministic at a fixed
// shard count, feeding it the exact event sequence a live pipeline had
// processed when its clock stood at some instant reproduces that live
// snapshot byte for byte.
//
// source is called once with an ingest function and feeds events in
// stream order; its error (nil for a clean end, including an early
// stop) is returned alongside the snapshot. The pipeline is always
// closed and drained, so a failing source still cannot leak goroutines.
func ReplayState(cfg Config, seeds []*event.Event, source func(ingest func(e *event.Event)) error) (Snapshot, error) {
	cfg.SnapshotEvery = 0
	cfg.SpikeK = -1
	p := New(cfg)
	var final Snapshot
	done := make(chan struct{})
	go func() {
		defer close(done)
		for snap := range p.Snapshots() {
			final = snap
		}
	}()
	for _, e := range seeds {
		p.Seed(*e)
	}
	err := source(func(e *event.Event) { p.Ingest(*e) })
	p.Close()
	<-done
	return final, err
}

// Replay runs a recorded stream through a pipeline and collects every
// snapshot, the offline form of the engine: identical code path, event
// time only.
func Replay(s event.Stream, cfg Config) []Snapshot {
	p := New(cfg)
	var out []Snapshot
	done := make(chan struct{})
	go func() {
		defer close(done)
		for snap := range p.Snapshots() {
			out = append(out, snap)
		}
	}()
	for _, e := range s {
		p.Ingest(e)
	}
	p.Close()
	<-done
	return out
}
