package pipeline

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/core/stemming"
	"rex/internal/core/tamp"
	"rex/internal/event"
)

var t0 = time.Date(2003, 8, 1, 10, 0, 0, 0, time.UTC)

func mkEvent(typ event.Type, at time.Duration, peer, nexthop, prefix string, asns ...uint32) event.Event {
	e := event.Event{
		Time:   t0.Add(at),
		Type:   typ,
		Peer:   netip.MustParseAddr(peer),
		Prefix: netip.MustParsePrefix(prefix),
	}
	e.Attrs = &bgp.PathAttrs{
		Origin: bgp.OriginIGP,
		ASPath: bgp.Sequence(asns...),
	}
	if nexthop != "" {
		e.Attrs.Nexthop = netip.MustParseAddr(nexthop)
	}
	return e
}

// churnStream is n events of background churn, spaced step apart.
func churnStream(n int, step time.Duration, seed int64) event.Stream {
	rng := rand.New(rand.NewSource(seed))
	peers := []string{"128.32.1.3", "128.32.1.200"}
	var s event.Stream
	for i := 0; i < n; i++ {
		typ := event.Announce
		if rng.Intn(4) == 0 {
			typ = event.Withdraw
		}
		prefix := fmt.Sprintf("10.%d.0.0/16", rng.Intn(30))
		s = append(s, mkEvent(typ, time.Duration(i)*step, peers[rng.Intn(2)], "128.32.0.66",
			prefix, 11423, uint32(200+rng.Intn(5)), uint32(700+rng.Intn(10))))
	}
	return s
}

// TestReplayFinalMatchesBatch: the final snapshot's decomposition must be
// exactly what batch Analyze produces over the window contents it
// reports — the streaming engine adds no approximation.
func TestReplayFinalMatchesBatch(t *testing.T) {
	s := churnStream(400, 3*time.Second, 1)
	cfg := Config{Window: 10 * time.Minute, IncludeEvents: true}
	snaps := Replay(s, cfg)
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	final := snaps[len(snaps)-1]
	if final.Trigger != TriggerFinal {
		t.Fatalf("last snapshot trigger = %v, want final", final.Trigger)
	}
	if final.Events == 0 || len(final.Stream) != final.Events {
		t.Fatalf("final window: Events=%d, len(Stream)=%d", final.Events, len(final.Stream))
	}
	// The window must hold exactly the trailing 10 minutes.
	cutoff := s[len(s)-1].Time.Add(-cfg.Window)
	for _, e := range final.Stream {
		if e.Time.Before(cutoff) {
			t.Fatalf("window holds stale event at %v, cutoff %v", e.Time, cutoff)
		}
	}
	want := stemming.Analyze(final.Stream, cfg.Stemming)
	if !reflect.DeepEqual(final.Components, want) {
		t.Errorf("streamed components diverge from batch Analyze:\n got %+v\nwant %+v", final.Components, want)
	}
}

// TestTickSnapshots: event-time ticks fire at the configured cadence
// regardless of replay speed.
func TestTickSnapshots(t *testing.T) {
	s := churnStream(600, time.Second, 2) // 10 minutes of events
	snaps := Replay(s, Config{Window: 5 * time.Minute, SnapshotEvery: 2 * time.Minute})
	ticks := 0
	for _, sn := range snaps {
		if sn.Trigger == TriggerTick {
			ticks++
			if sn.WindowEnd.Sub(sn.WindowStart) > 5*time.Minute {
				t.Errorf("tick window spans %v, cap 5m", sn.WindowEnd.Sub(sn.WindowStart))
			}
		}
	}
	// 10 minutes of stream, tick every 2 minutes past the first event: 4.
	if ticks != 4 {
		t.Errorf("tick snapshots = %d, want 4", ticks)
	}
}

// TestSpikeTriggeredSnapshot: a surge above the MAD threshold must emit a
// TriggerSpike snapshot whose decomposition names the surge's shared
// trunk, while quiet churn alone emits none.
func TestSpikeTriggeredSnapshot(t *testing.T) {
	// 30 minutes of 1-per-minute background, then 60 withdrawals through
	// a common 11423→209 trunk inside one minute, then quiet again.
	var s event.Stream
	for i := 0; i < 30; i++ {
		s = append(s, mkEvent(event.Announce, time.Duration(i)*time.Minute, "128.32.1.3", "128.32.0.66",
			fmt.Sprintf("10.%d.0.0/16", i), 11423, 300, uint32(800+i)))
	}
	burstAt := 30 * time.Minute
	for i := 0; i < 60; i++ {
		s = append(s, mkEvent(event.Withdraw, burstAt+time.Duration(i)*time.Second, "128.32.1.3", "128.32.0.66",
			fmt.Sprintf("172.16.%d.0/24", i), 11423, 209, uint32(700+i%4)))
	}
	for i := 31; i < 40; i++ {
		s = append(s, mkEvent(event.Announce, time.Duration(i)*time.Minute, "128.32.1.3", "128.32.0.66",
			fmt.Sprintf("10.%d.0.0/16", i), 11423, 300, uint32(800+i)))
	}

	snaps := Replay(s, Config{Window: 20 * time.Minute, SpikeK: 5})
	var spike *Snapshot
	for i := range snaps {
		if snaps[i].Trigger == TriggerSpike {
			if spike != nil {
				t.Fatalf("spike reported twice: %v and %v", spike.Spike, snaps[i].Spike)
			}
			spike = &snaps[i]
		}
	}
	if spike == nil {
		t.Fatal("no spike snapshot for a 60x surge")
	}
	if spike.Spike == nil || spike.Spike.Total < 60 {
		t.Fatalf("spike metadata = %+v, want Total >= 60", spike.Spike)
	}
	want := t0.Add(burstAt)
	if st := spike.Spike.Start; st.Before(want.Add(-time.Minute)) || st.After(want.Add(time.Minute)) {
		t.Errorf("spike start = %v, want within a bucket of %v", st, want)
	}
	if len(spike.Components) == 0 {
		t.Fatal("spike snapshot carries no components")
	}
	stem := spike.Components[0].Stem
	if stem.From.AS != 11423 || stem.To.AS != 209 {
		t.Errorf("strongest stem = %v→%v, want AS11423→AS209", stem.From, stem.To)
	}

	// Control: the background alone must not trigger.
	quiet := Replay(s[:30], Config{Window: 20 * time.Minute, SpikeK: 5})
	for _, sn := range quiet {
		if sn.Trigger == TriggerSpike {
			t.Errorf("quiet churn produced a spike snapshot: %+v", sn.Spike)
		}
	}
}

// TestPictureTracksRIB: the snapshot picture reflects current routing
// state — withdrawn routes are gone, replaced routes count once.
func TestPictureTracksRIB(t *testing.T) {
	var s event.Stream
	// Ten prefixes via AS path 1 2; then five of them withdrawn.
	for i := 0; i < 10; i++ {
		s = append(s, mkEvent(event.Announce, time.Duration(i)*time.Second, "128.32.1.3", "128.32.0.66",
			fmt.Sprintf("10.%d.0.0/16", i), 1, 2))
	}
	// Duplicate announcements: must not double-count.
	for i := 0; i < 10; i++ {
		s = append(s, mkEvent(event.Announce, time.Duration(10+i)*time.Second, "128.32.1.3", "128.32.0.66",
			fmt.Sprintf("10.%d.0.0/16", i), 1, 2))
	}
	for i := 0; i < 5; i++ {
		s = append(s, mkEvent(event.Withdraw, time.Duration(20+i)*time.Second, "128.32.1.3", "128.32.0.66",
			fmt.Sprintf("10.%d.0.0/16", i), 1, 2))
	}
	snaps := Replay(s, Config{})
	final := snaps[len(snaps)-1]
	if final.Picture == nil {
		t.Fatal("no picture")
	}
	if final.Picture.Total != 5 {
		t.Errorf("picture total = %d, want 5 routed prefixes", final.Picture.Total)
	}
	if e, ok := final.Picture.Edge(tamp.ASNode(1), tamp.ASNode(2)); !ok || e.Weight != 5 {
		t.Errorf("AS1→AS2 edge = %+v (present=%v), want weight 5", e, ok)
	}
}

// TestIngestAfterClose: a handler still firing after Close must neither
// block nor panic, and the snapshot channel still closes.
func TestIngestAfterClose(t *testing.T) {
	p := New(Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range p.Snapshots() {
		}
	}()
	p.Ingest(mkEvent(event.Announce, 0, "128.32.1.3", "", "10.0.0.0/16", 1))
	p.Close()
	p.Close() // idempotent
	for i := 0; i < 100; i++ {
		p.Ingest(mkEvent(event.Announce, time.Duration(i)*time.Second, "128.32.1.3", "", "10.0.0.0/16", 1))
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot channel never closed")
	}
}
