package pipeline

import (
	"testing"
)

// drainDuring runs fn (which ingests and must end with a synchronizing
// TriggerQuery) while draining the pipeline's snapshots inline, and
// returns the snapshots delivered before fn returned. Because emission
// is an unbuffered rendezvous with this loop and TriggerQuery's answer
// is ordered after every prior emission, the returned slice is exactly
// the emissions caused by fn's events — no race with a background
// collector goroutine.
func drainDuring(p *Pipeline, fn func()) []Snapshot {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	var out []Snapshot
	for {
		select {
		case s, ok := <-p.Snapshots():
			if !ok {
				return out
			}
			out = append(out, s)
		case <-done:
			return out
		}
	}
}

// drainToClose feeds the remaining events, closes the pipeline, and
// collects everything through the final snapshot.
func drainToClose(p *Pipeline, events []Snapshot, feed func()) []Snapshot {
	go func() {
		feed()
		p.Close()
	}()
	for s := range p.Snapshots() {
		events = append(events, s)
	}
	return events
}

func TestTriggerQueryPosition(t *testing.T) {
	stream := diffStreams(t)[0].events
	p := New(diffConfig(1))
	var ts TriggerState
	var ok bool
	drainDuring(p, func() {
		for _, e := range stream[:100] {
			p.Ingest(e)
		}
		ts, ok = p.TriggerQuery()
	})
	if !ok {
		t.Fatal("query failed on a live pipeline")
	}
	want := stream[0].Time
	for _, e := range stream[:100] {
		if e.Time.After(want) {
			want = e.Time
		}
	}
	if !ts.Clock.Equal(want) {
		t.Fatalf("Clock %v, want newest ingested time %v", ts.Clock, want)
	}
	if ts.NextTick.IsZero() || !ts.NextTick.After(ts.Clock) {
		t.Fatalf("NextTick %v not ahead of Clock %v", ts.NextTick, ts.Clock)
	}
	drainToClose(p, nil, func() {})
}

func TestTriggerQueryAfterClose(t *testing.T) {
	p := New(diffConfig(1))
	drainToClose(p, nil, func() {})
	if _, ok := p.TriggerQuery(); ok {
		t.Fatal("query succeeded on a closed pipeline")
	}
}

// TestRestoreTriggersSilentReplay is the restart contract the
// analysis-node recovery path depends on: capture trigger state at a
// cut point, rebuild a fresh pipeline by restoring the state and
// re-processing the prefix, and (a) the rebuild emits nothing, (b) the
// stitched run (pre-cut emissions + post-cut emissions) is
// byte-identical to the uninterrupted run.
func TestRestoreTriggersSilentReplay(t *testing.T) {
	for _, ds := range diffStreams(t)[:3] {
		ds := ds
		t.Run(ds.name, func(t *testing.T) {
			stream := ds.events
			uninterrupted := Replay(stream, diffConfig(1))

			cut := len(stream) / 2

			// First incarnation: run the prefix, capture, die. The final
			// snapshot its Close emits is discarded — a SIGKILLed node
			// never got to emit one.
			p1 := New(diffConfig(1))
			var ts TriggerState
			var ok bool
			pre := drainDuring(p1, func() {
				for _, e := range stream[:cut] {
					p1.Ingest(e)
				}
				ts, ok = p1.TriggerQuery()
			})
			if !ok {
				t.Fatal("capture failed")
			}
			drainToClose(p1, nil, func() {})

			// Second incarnation: restore, silently replay the prefix,
			// then continue with the suffix.
			p2 := New(diffConfig(1))
			replayed := drainDuring(p2, func() {
				p2.RestoreTriggers(ts)
				p2.BeginRecovery()
				for _, e := range stream[:cut] {
					p2.Ingest(e)
				}
				p2.EndRecovery()
				if _, ok := p2.TriggerQuery(); !ok {
					t.Error("barrier query failed")
				}
			})
			if len(replayed) != 0 {
				t.Fatalf("replay emitted %d snapshots, want 0", len(replayed))
			}
			post := drainToClose(p2, nil, func() {
				for _, e := range stream[cut:] {
					p2.Ingest(e)
				}
			})

			stitched := append(append([]Snapshot(nil), pre...), post...)
			got, want := renderSnapshots(stitched), renderSnapshots(uninterrupted)
			if got != want {
				t.Fatalf("stitched run diverges: %s", firstDiff(got, want))
			}
			if len(uninterrupted) < 3 {
				t.Fatalf("vacuous: only %d snapshots", len(uninterrupted))
			}
		})
	}
}
