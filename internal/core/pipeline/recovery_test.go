package pipeline

import (
	"net/netip"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/core/tamp"
	"rex/internal/event"
)

// recoveryRoute builds an announce/withdraw pair for one route key.
func recoveryRoute(i int, asn uint32) (announce, withdraw event.Event) {
	e := event.Event{
		Time:   time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
		Type:   event.Announce,
		Peer:   netip.MustParseAddr("128.32.1.3"),
		Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24),
		Attrs: &bgp.PathAttrs{
			ASPath:  bgp.Sequence(asn, 701),
			Nexthop: netip.MustParseAddr("128.32.0.70"),
		},
	}
	w := e
	w.Type = event.Withdraw
	return e, w
}

// finalSnapshot closes p and returns its TriggerFinal snapshot.
func finalSnapshot(t *testing.T, p *Pipeline) Snapshot {
	t.Helper()
	var final Snapshot
	got := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range p.Snapshots() {
			if s.Trigger == TriggerFinal {
				final, got = s, true
			}
		}
	}()
	p.Close()
	<-done
	if !got {
		t.Fatal("no final snapshot")
	}
	return final
}

// TestSeedAfterLiveEventIsStale is the fail-on-old-behavior regression
// test for the Seed/TryIngest ordering hazard: during recovery, journal
// tail replay and live sessions feed the pipeline concurrently with
// checkpoint seeding, so a seed can arrive AFTER a live event for the
// same route key. The checkpoint state is older by construction — under
// the old behavior the late seed re-applied it anyway, resurrecting a
// route the live stream had already withdrawn. Inside a
// BeginRecovery/EndRecovery span the stale seed must be dropped.
func TestSeedAfterLiveEventIsStale(t *testing.T) {
	staleBefore := mSeedStale.Value()
	p := New(Config{SpikeK: -1, Buffer: 1})
	p.BeginRecovery()

	// The live stream has already withdrawn route 1 (the withdrawal was
	// journaled after the checkpoint was cut, and replays first)...
	seed1, withdraw1 := recoveryRoute(1, 11423)
	p.Ingest(withdraw1)
	// ...and then the checkpoint's stale announcement for it arrives.
	p.Seed(seed1)
	// A seed for an untouched key is still good state and must apply.
	seed2, _ := recoveryRoute(2, 11423)
	p.Seed(seed2)
	p.EndRecovery()

	final := finalSnapshot(t, p)
	if got := final.Picture.Total; got != 1 {
		t.Errorf("picture total = %d, want 1: stale seed for a live-touched key must not resurrect the withdrawn route", got)
	}
	if mSeedStale.Value() == staleBefore {
		t.Error("rex_pipeline_seed_stale_total did not count the dropped seed")
	}
	// Buffer=1 forces real interleaving through the channel: the seeds
	// above could not have raced ahead of the withdrawal.
}

// TestSeedLiveReplaceBeatsStaleSeed covers the announce flavor of the
// same hazard: a live path change during recovery must win over the
// checkpoint's older path.
func TestSeedLiveReplaceBeatsStaleSeed(t *testing.T) {
	p := New(Config{SpikeK: -1, Buffer: 1})
	p.BeginRecovery()

	stale, _ := recoveryRoute(1, 11423)
	live := stale
	live.Attrs = &bgp.PathAttrs{
		ASPath:  bgp.Sequence(209, 701), // the path moved providers
		Nexthop: netip.MustParseAddr("128.32.0.71"),
	}
	p.Ingest(live)
	p.Seed(stale)
	p.EndRecovery()

	final := finalSnapshot(t, p)
	edges := final.Picture.Edges
	sawNew, sawOld := false, false
	for _, e := range edges {
		if e.From == tamp.ASNode(209) || e.To == tamp.ASNode(209) {
			sawNew = true
		}
		if e.From == tamp.ASNode(11423) || e.To == tamp.ASNode(11423) {
			sawOld = true
		}
	}
	if !sawNew || sawOld {
		t.Errorf("picture edges = %+v: want the live AS209 path, not the checkpoint's AS11423 path", edges)
	}
}

// TestSeedOutsideRecoveryApplies pins the non-recovery contract: without
// a recovery span, Seed applies unconditionally even after a live event
// touched the key (legacy semantics, used by tests and tools that build
// table state directly).
func TestSeedOutsideRecoveryApplies(t *testing.T) {
	p := New(Config{SpikeK: -1, Buffer: 1})
	seed1, withdraw1 := recoveryRoute(1, 11423)
	p.Ingest(withdraw1)
	p.Seed(seed1)
	final := finalSnapshot(t, p)
	if got := final.Picture.Total; got != 1 {
		t.Errorf("picture total = %d, want 1: outside recovery a seed applies unconditionally", got)
	}
}

// TestRecoverySpanEnds verifies EndRecovery releases the stale tracking:
// a seed for a key touched only before EndRecovery applies again after.
func TestRecoverySpanEnds(t *testing.T) {
	p := New(Config{SpikeK: -1, Buffer: 1})
	seed1, withdraw1 := recoveryRoute(1, 11423)
	p.BeginRecovery()
	p.Ingest(withdraw1)
	p.EndRecovery()
	p.Seed(seed1)
	final := finalSnapshot(t, p)
	if got := final.Picture.Total; got != 1 {
		t.Errorf("picture total = %d, want 1: seeds after EndRecovery must apply", got)
	}
}
