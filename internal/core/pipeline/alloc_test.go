package pipeline

import (
	"net/netip"
	"testing"
	"time"

	"rex/internal/core/stemming"
	"rex/internal/core/tamp"
)

// TestProcessSteadyStateAllocs pins the ingest side of the allocation
// diet: once the window's sequences are interned and the TAMP shadow has
// seen every (router, prefix) route, processing one more event — window
// add + evict + settle, router-name lookup, RIB shadow and graph update
// — stays within a few allocations per event (the AS-path slice a fresh
// RouteEntry owns is the irreducible part). A regression back to
// per-event string rendering or per-tick scratch rebuilds trips this
// long before a benchmark run would.
func TestProcessSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is not worth it in -short")
	}
	cfg := Config{
		Window: 2 * time.Minute,
		SpikeK: -1, // no spike or tick snapshots: nothing may emit mid-measurement
		Site:   "berkeley",
	}.withDefaults()
	// The state is driven directly, exactly as the sequential run loop
	// would (Workers=1: no pool, shard ops apply inline).
	st := &state{
		p:       &Pipeline{cfg: cfg},
		win:     stemming.NewWindow(cfg.Stemming, cfg.Shards),
		shards:  make([]*analysisShard, cfg.Shards),
		routers: make(map[netip.Addr]string),
		graphs:  make([]*tamp.Graph, cfg.Shards),
	}
	for i := range st.shards {
		st.shards[i] = &analysisShard{
			g:       tamp.New(cfg.Site),
			rib:     make(map[routeKey]tamp.RouteEntry),
			pending: opsPool.Get().(*[]routeOp),
		}
	}

	events := churnStream(256, time.Second, 3)
	i := 0
	step := func() {
		e := events[i%len(events)]
		e.Time = t0.Add(time.Duration(i) * time.Second)
		st.process(e)
		i++
	}
	for n := 0; n < 2048; n++ {
		step()
	}
	avg := testing.AllocsPerRun(2000, step)
	t.Logf("steady-state process: %.2f allocs/event", avg)
	if avg > 4 {
		t.Errorf("steady-state process allocates %.2f/event, want <= 4", avg)
	}
}
