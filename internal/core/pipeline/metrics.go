package pipeline

import "rex/internal/obs"

// Streaming-engine metrics. The settle histogram is fed by the
// stemming.Window.OnSettle hook — it times the parallel count-table
// batch settles, the hottest recurring work in the engine — and the
// snapshot histogram times full decomposition+picture assembly, the
// operation whose latency bounds how fresh a spike report can be.
var (
	mEvents = obs.NewCounter("rex_pipeline_events_total",
		"Events ingested by the streaming pipeline.")
	mEvicted = obs.NewCounter("rex_pipeline_evicted_total",
		"Events evicted as the window slid past them.")
	mWindowEvents = obs.NewGauge("rex_pipeline_window_events",
		"Events currently inside the sliding analysis window.")
	mSnapshots = obs.NewCounterVec("rex_pipeline_snapshots_total", "trigger",
		"Analysis snapshots emitted, by trigger (tick, spike, final).")
	mSpikes = obs.NewCounter("rex_pipeline_spikes_total",
		"Rate spikes detected (median + k*MAD crossings reported once each).")
	mSettleSeconds = obs.NewHistogram("rex_pipeline_settle_seconds",
		"Latency of sliding-window count-table settle batches.", nil)
	mSnapshotSeconds = obs.NewHistogram("rex_pipeline_snapshot_seconds",
		"Latency of full snapshot assembly (decomposition + TAMP picture).", nil)
	mShed = obs.NewCounter("rex_pipeline_shed_total",
		"Events shed by TryIngest because the ingest buffer was full.")
	mSeeded = obs.NewCounter("rex_pipeline_seeded_total",
		"Checkpoint seed events applied to table state during recovery.")
	mSeedStale = obs.NewCounter("rex_pipeline_seed_stale_total",
		"Checkpoint seeds dropped because a live event already touched the route key during recovery.")
	mShards = obs.NewGauge("rex_shard_count",
		"Prefix shards partitioning the analysis state (count tables and TAMP shadow).")
	mShardRouteOps = obs.NewCounter("rex_shard_route_ops_total",
		"Routing changes routed to prefix-sharded TAMP shadows.")
	mShardFlushes = obs.NewCounter("rex_shard_flushes_total",
		"Shard routeOp batches flushed from the coordinator to workers.")
	mWorkers = obs.NewGauge("rex_worker_count",
		"Worker goroutines executing shard work (1 = inline sequential path).")
	mWorkerTasks = obs.NewCounter("rex_worker_tasks_total",
		"Tasks submitted to the analysis worker pool (shard batches and window settles).")
	mIntakeOffered = obs.NewCounter("rex_intake_offered_total",
		"Events offered to the intake queue by collector sessions.")
	mIntakeShed = obs.NewCounter("rex_intake_shed_total",
		"Events shed at the intake queue because it was full (shed/spill policies).")
	mIntakeJournalErrs = obs.NewCounter("rex_intake_journal_errors_total",
		"Journal append failures swallowed by the intake drainer.")
	mIntakeBatches = obs.NewCounter("rex_intake_batches_total",
		"Event batches the block-policy drainer handed to the pipeline.")
	mIntakeBatchEvents = obs.NewCounter("rex_intake_batch_events_total",
		"Events delivered inside intake batches.")
)
