package pipeline

import (
	"fmt"
	"sync"

	"rex/internal/event"
)

// OverloadPolicy says what an Intake does when it cannot keep up.
type OverloadPolicy uint8

// Overload policies, in increasing order of session safety:
//
//   - OverloadBlock: Offer blocks until the queue drains. Lossless,
//     but the block propagates to the collector's session goroutine —
//     the original Ingest behaviour, kept for offline replay where
//     there is no hold timer to expire.
//   - OverloadShed: Offer never blocks; events arriving at a full
//     queue are dropped and counted. Bounded loss, bounded memory,
//     session never delayed.
//   - OverloadSpill: Offer never blocks, and the drainer hands events
//     to the pipeline with TryIngest instead of Ingest — analysis
//     overload sheds only the analysis copy while the journal stays
//     complete. The queue then fills only if the journal itself (disk)
//     falls behind, and that overflow is shed and counted like Shed.
const (
	OverloadBlock OverloadPolicy = iota
	OverloadShed
	OverloadSpill
)

// String names the policy the way the -overload flag spells it.
func (p OverloadPolicy) String() string {
	switch p {
	case OverloadBlock:
		return "block"
	case OverloadShed:
		return "shed"
	case OverloadSpill:
		return "spill"
	default:
		return "overload(?)"
	}
}

// ParseOverloadPolicy parses the -overload flag values.
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "block":
		return OverloadBlock, nil
	case "shed":
		return OverloadShed, nil
	case "spill":
		return OverloadSpill, nil
	default:
		return 0, fmt.Errorf("overload policy %q: want block, shed or spill", s)
	}
}

// IntakeConfig tunes an Intake.
type IntakeConfig struct {
	// Depth is the bounded queue length (default 4096).
	Depth int
	// Policy is the overload policy (default OverloadBlock).
	Policy OverloadPolicy
	// Journal, when set, is called by the drainer for every dequeued
	// event before the pipeline sees it — the durability hook. Errors
	// are counted, not propagated: a failing disk must not take the
	// collector down with it.
	Journal func(e *event.Event) error
}

// Intake is the bounded hand-off between the collector's session
// goroutines and the journal + analysis pipeline. Offer is the
// collector.Handler; a single drainer goroutine owns the downstream
// calls, so journal appends stay strictly ordered even with many
// concurrent sessions.
type Intake struct {
	cfg  IntakeConfig
	p    *Pipeline
	ch   chan event.Event
	quit chan struct{}
	done chan struct{}
	once sync.Once
}

// NewIntake starts an intake draining into p.
func NewIntake(cfg IntakeConfig, p *Pipeline) *Intake {
	if cfg.Depth <= 0 {
		cfg.Depth = 4096
	}
	in := &Intake{
		cfg:  cfg,
		p:    p,
		ch:   make(chan event.Event, cfg.Depth),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go in.drain()
	return in
}

// Offer enqueues one event, honouring the overload policy. It is a
// valid collector.Handler.
func (in *Intake) Offer(e event.Event) {
	mIntakeOffered.Inc()
	switch in.cfg.Policy {
	case OverloadBlock:
		select {
		case in.ch <- e:
		case <-in.quit:
		}
	default: // OverloadShed, OverloadSpill: never block the session
		select {
		case in.ch <- e:
		case <-in.quit:
		default:
			mIntakeShed.Inc()
		}
	}
}

// intakeBatchMax caps how many queued events the block-policy drainer
// coalesces into one pipeline hand-off.
const intakeBatchMax = 256

// drain is the single consumer: journal first (history is complete
// before analysis sees the event), then the pipeline, blocking or not
// per policy. Under the block policy a backlog is coalesced — whatever
// is already queued (up to intakeBatchMax) rides one IngestBatch, so
// shard hand-off amortizes the per-event channel cost exactly when the
// engine is busiest. Shed and spill stay per-event: their value is the
// per-event drop decision, which batching would blur.
func (in *Intake) drain() {
	defer close(in.done)
	for {
		select {
		case e := <-in.ch:
			if in.cfg.Policy == OverloadBlock {
				in.deliverBatch(e)
			} else {
				in.deliver(e)
			}
		case <-in.quit:
			for {
				select {
				case e := <-in.ch:
					if in.cfg.Policy == OverloadBlock {
						in.deliverBatch(e)
					} else {
						in.deliver(e)
					}
				default:
					return
				}
			}
		}
	}
}

// deliverBatch journals first (the event is the unit of durability) and
// hands the pipeline one pooled batch — IngestBatch takes ownership of
// the slice, so the drainer never reuses it; the run loop recycles it
// into batchPool once processed.
func (in *Intake) deliverBatch(first event.Event) {
	batch := getBatch()
	batch = append(batch, first)
collect:
	for len(batch) < intakeBatchMax {
		select {
		case e := <-in.ch:
			batch = append(batch, e)
		default:
			break collect
		}
	}
	if in.cfg.Journal != nil {
		for i := range batch {
			if err := in.cfg.Journal(&batch[i]); err != nil {
				mIntakeJournalErrs.Inc()
			}
		}
	}
	mIntakeBatches.Inc()
	mIntakeBatchEvents.Add(uint64(len(batch)))
	in.p.IngestBatch(batch)
}

func (in *Intake) deliver(e event.Event) {
	if in.cfg.Journal != nil {
		if err := in.cfg.Journal(&e); err != nil {
			mIntakeJournalErrs.Inc()
		}
	}
	switch in.cfg.Policy {
	case OverloadSpill:
		in.p.TryIngest(e)
	case OverloadShed:
		// Wait for the pipeline like Block — the queue, not this send,
		// is where shed mode bounds latency — but a closing intake must
		// not stay wedged behind a stalled consumer: fall back to a
		// best-effort non-blocking hand-off and let the overflow shed.
		select {
		case in.p.events <- msg{e: e}:
		case <-in.p.quit:
		case <-in.quit:
			in.p.TryIngest(e)
		}
	default:
		in.p.Ingest(e)
	}
}

// Close stops intake, drains what was queued, and waits for the
// drainer to finish delivering it. The pipeline is not closed; that
// stays with the caller, which may still want a final snapshot.
func (in *Intake) Close() {
	in.once.Do(func() { close(in.quit) })
	<-in.done
}
