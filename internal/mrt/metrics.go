package mrt

import "rex/internal/obs"

// Ingestion counters: every record a Reader sees lands in exactly one
// result bucket, so parsed + skipped_* + failed equals records read.
// Before these existed, a skipped record was invisible — the
// silent-drop class of bug this layer is most prone to.
var (
	mRecords = obs.NewCounterVec("rex_mrt_records_total", "result",
		"MRT records by ingestion outcome: parsed, skipped_unknown (type/subtype we do not decode), skipped_afi (BGP4MP with a non-IPv4 AFI), failed (malformed; aborts the stream).")
)
