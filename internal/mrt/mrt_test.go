package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
	"rex/internal/rib"
)

var t0 = time.Date(2003, 8, 1, 10, 0, 0, 0, time.UTC)

func sampleRoutes() []*rib.Route {
	mk := func(prefix, peer, nexthop string, asns ...uint32) *rib.Route {
		return &rib.Route{
			Prefix:       netip.MustParsePrefix(prefix),
			Peer:         netip.MustParseAddr(peer),
			PeerRouterID: netip.MustParseAddr(peer),
			Attrs: &bgp.PathAttrs{
				Origin:      bgp.OriginIGP,
				ASPath:      bgp.Sequence(asns...),
				Nexthop:     netip.MustParseAddr(nexthop),
				Communities: []bgp.Community{bgp.MakeCommunity(11423, 65350)},
			},
			LearnedAt: t0,
		}
	}
	return []*rib.Route{
		mk("192.96.10.0/24", "128.32.1.3", "128.32.0.70", 11423, 209, 701),
		mk("192.96.10.0/24", "128.32.1.200", "128.32.0.90", 11423, 209, 701),
		mk("12.2.41.0/24", "128.32.1.3", "128.32.0.66", 11423, 209, 7018, 400000),
	}
}

func TestTableDumpRoundTrip(t *testing.T) {
	routes := sampleRoutes()
	var buf bytes.Buffer
	if err := WriteTableDump(&buf, routes, netip.MustParseAddr("10.255.0.1"), t0); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTableDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(routes) {
		t.Fatalf("routes = %d, want %d", len(back), len(routes))
	}
	// Table dumps sort by prefix; match by (prefix, peer).
	find := func(prefix, peer string) *rib.Route {
		for _, r := range back {
			if r.Prefix.String() == prefix && r.Peer.String() == peer {
				return r
			}
		}
		t.Fatalf("route %s via %s missing", prefix, peer)
		return nil
	}
	r := find("12.2.41.0/24", "128.32.1.3")
	if r.Attrs.ASPath.String() != "11423 209 7018 400000" {
		t.Errorf("as path = %v (4-byte ASN must survive)", r.Attrs.ASPath)
	}
	if !r.LearnedAt.Equal(t0) {
		t.Errorf("originated = %v", r.LearnedAt)
	}
	r = find("192.96.10.0/24", "128.32.1.200")
	if !r.Attrs.HasCommunity(bgp.MakeCommunity(11423, 65350)) {
		t.Error("community lost")
	}
}

func TestUpdatesRoundTripWithAugment(t *testing.T) {
	attrs := &bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.Sequence(11423, 209, 5713),
		Nexthop: netip.MustParseAddr("128.32.0.70"),
	}
	s := event.Stream{
		{Time: t0, Type: event.Announce, Peer: netip.MustParseAddr("128.32.1.3"),
			Prefix: netip.MustParsePrefix("192.96.10.0/24"), Attrs: attrs},
		{Time: t0.Add(time.Second + 123456*time.Microsecond), Type: event.Withdraw,
			Peer:   netip.MustParseAddr("128.32.1.3"),
			Prefix: netip.MustParsePrefix("192.96.10.0/24"), Attrs: attrs},
	}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, s, 25, netip.MustParseAddr("10.255.0.1")); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("events = %d", len(back))
	}
	// Wire-faithful: the withdrawal lost its attributes...
	if back[1].Attrs != nil {
		t.Error("withdrawal attrs survived the wire (should not)")
	}
	// ...with microsecond timestamps intact...
	if !back[1].Time.Equal(s[1].Time.Truncate(time.Microsecond)) {
		t.Errorf("time = %v, want %v", back[1].Time, s[1].Time)
	}
	// ...and Augment restores them.
	aug := event.Augment(back)
	if aug[1].Attrs == nil || !aug[1].Attrs.Equal(attrs) {
		t.Errorf("augment failed: %v", aug[1].Attrs)
	}
}

func TestReaderSkipsUnknownRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// An OSPF record (type 11) we do not parse.
	if err := w.record(t0, 11, 0, []byte{1, 2, 3}, false); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePeerIndexTable(PeerIndexTable{
		CollectorID: netip.MustParseAddr("10.0.0.1"),
		ViewName:    "v",
		Peers:       []Peer{{BGPID: netip.MustParseAddr("1.1.1.1"), Addr: netip.MustParseAddr("1.1.1.1"), AS: 65000}},
	}, t0); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	table, ok := rec.(*PeerIndexTable)
	if !ok || table.ViewName != "v" || table.Peers[0].AS != 65000 {
		t.Errorf("rec = %#v", rec)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestReaderErrors(t *testing.T) {
	// Truncated header.
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})).Next(); err == nil || err == io.EOF {
		t.Errorf("truncated header err = %v", err)
	}
	// Truncated body.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndexTable(PeerIndexTable{CollectorID: netip.MustParseAddr("10.0.0.1")}, t0); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := NewReader(bytes.NewReader(trunc)).Next(); err == nil {
		t.Error("truncated body succeeded")
	}
	// Empty stream is clean EOF.
	if _, err := NewReader(bytes.NewReader(nil)).Next(); err != io.EOF {
		t.Errorf("empty err = %v", err)
	}
}

func TestRIBEntryBeforePeerTable(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	err := w.WriteRIBEntry(RIBEntry{
		Seq:    0,
		Prefix: netip.MustParsePrefix("10.0.0.0/8"),
		Entries: []RIBPeerEntry{{
			PeerIndex:    0,
			OriginatedAt: t0,
			Attrs:        &bgp.PathAttrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(1), Nexthop: netip.MustParseAddr("10.0.0.1")},
		}},
	}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTableDump(&buf); err == nil {
		t.Error("RIB entry before peer table succeeded")
	}
}

func TestMessageAS2Encoding(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	m := Message{
		Time: t0, PeerAS: 11423, LocalAS: 25,
		PeerAddr: netip.MustParseAddr("128.32.1.3"), LocalAddr: netip.MustParseAddr("10.255.0.1"),
		Msg: &bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}},
		AS4: false,
	}
	if err := w.WriteMessage(m); err != nil {
		t.Fatal(err)
	}
	// 4-byte ASN in an AS2 record fails.
	m.PeerAS = 400000
	if err := w.WriteMessage(m); err == nil {
		t.Error("AS2 record with 4-byte ASN succeeded")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	back, ok := rec.(*Message)
	if !ok || back.AS4 || back.PeerAS != 11423 {
		t.Errorf("rec = %#v", rec)
	}
}
