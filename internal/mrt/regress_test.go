package mrt

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"

	"rex/internal/bgp"
	"rex/internal/event"
)

// rawBGP4MPv6 builds a BGP4MP_MESSAGE_AS4 body with AFI 2 (IPv6
// addresses) around the given BGP message wire — the record shape a
// RouteViews update file interleaves into an IPv4 replay.
func rawBGP4MPv6(t *testing.T, peer, local netip.Addr, msg bgp.Message) []byte {
	t.Helper()
	body := binary.BigEndian.AppendUint32(nil, 65001) // peer AS
	body = binary.BigEndian.AppendUint32(body, 65002) // local AS
	body = binary.BigEndian.AppendUint16(body, 0)     // ifindex
	body = binary.BigEndian.AppendUint16(body, 2)     // AFI IPv6
	p16, l16 := peer.As16(), local.As16()
	body = append(body, p16[:]...)
	body = append(body, l16[:]...)
	wire, err := bgp.Marshal(msg, true)
	if err != nil {
		t.Fatal(err)
	}
	return append(body, wire...)
}

func v4Update(prefix string) *bgp.Update {
	return &bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Sequence(65001, 174),
			Nexthop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix(prefix)},
	}
}

// Regression (ISSUE 3): one IPv6 BGP4MP record used to abort the whole
// replay ("mrt: unsupported AFI 2"); it must be skipped — and counted —
// with every IPv4 record around it still decoded.
func TestReaderSkipsUnsupportedAFIRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	mk := func(prefix string) {
		if err := w.WriteMessage(Message{
			Time: t0, PeerAS: 65001, LocalAS: 65002,
			PeerAddr:  netip.MustParseAddr("128.32.1.3"),
			LocalAddr: netip.MustParseAddr("10.255.0.1"),
			Msg:       v4Update(prefix), AS4: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("192.96.10.0/24")
	// A v6 record in the middle of the stream.
	body := rawBGP4MPv6(t,
		netip.MustParseAddr("2001:db8::1"), netip.MustParseAddr("2001:db8::2"),
		v4Update("10.9.0.0/16"))
	if err := w.record(t0, typeBGP4MP, subtypeBGP4MPMessageAS4, body, false); err != nil {
		t.Fatal(err)
	}
	mk("12.2.41.0/24")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	skippedBefore := mRecords.With("skipped_afi").Value()
	parsedBefore := mRecords.With("parsed").Value()
	s, err := ReadUpdates(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("mixed v4/v6 stream aborted: %v", err)
	}
	if len(s) != 2 {
		t.Fatalf("events = %d, want 2 (both IPv4 records)", len(s))
	}
	if s[0].Prefix.String() != "192.96.10.0/24" || s[1].Prefix.String() != "12.2.41.0/24" {
		t.Errorf("prefixes = %v, %v", s[0].Prefix, s[1].Prefix)
	}
	if got := mRecords.With("skipped_afi").Value() - skippedBefore; got != 1 {
		t.Errorf("skipped_afi delta = %d, want 1", got)
	}
	if got := mRecords.With("parsed").Value() - parsedBefore; got != 2 {
		t.Errorf("parsed delta = %d, want 2", got)
	}

	// Augment still works on what survived.
	if aug := event.Augment(s); len(aug) != 2 {
		t.Errorf("augment = %d events", len(aug))
	}
}

// Regression (ISSUE 3): appendAddr4 used to silently encode any
// non-IPv4 address as 0.0.0.0, corrupting BGP4MP records instead of
// failing the write.
func TestWriteMessageRejectsIPv6Addresses(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	m := Message{
		Time: t0, PeerAS: 65001, LocalAS: 65002,
		PeerAddr:  netip.MustParseAddr("2001:db8::1"),
		LocalAddr: netip.MustParseAddr("10.255.0.1"),
		Msg:       v4Update("10.0.0.0/8"), AS4: true,
	}
	if err := w.WriteMessage(m); err == nil {
		t.Fatal("IPv6 peer address written as a corrupt AFI-1 record")
	}
	if buf.Len() != 0 {
		t.Errorf("failed write left %d bytes in the stream", buf.Len())
	}
	// The local side too.
	m.PeerAddr, m.LocalAddr = m.LocalAddr, m.PeerAddr
	if err := w.WriteMessage(m); err == nil {
		t.Fatal("IPv6 local address written as a corrupt AFI-1 record")
	}
	// A zero (unset) address still encodes as 0.0.0.0 — update files
	// are routinely written without a collector identity.
	m.PeerAddr, m.LocalAddr = netip.MustParseAddr("10.0.0.2"), netip.Addr{}
	if err := w.WriteMessage(m); err != nil {
		t.Fatalf("zero local address rejected: %v", err)
	}
}

func TestWritePeerIndexTableRejectsIPv6Identifiers(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// IPv6 collector ID: always an error (the field is 4 bytes).
	err := w.WritePeerIndexTable(PeerIndexTable{
		CollectorID: netip.MustParseAddr("2001:db8::1"),
	}, t0)
	if err == nil {
		t.Error("IPv6 collector ID written as 0.0.0.0")
	}
	// IPv6 BGP identifier: same.
	err = w.WritePeerIndexTable(PeerIndexTable{
		CollectorID: netip.MustParseAddr("10.0.0.1"),
		Peers:       []Peer{{BGPID: netip.MustParseAddr("2001:db8::1"), Addr: netip.MustParseAddr("10.0.0.2"), AS: 65001}},
	}, t0)
	if err == nil {
		t.Error("IPv6 BGP identifier written as 0.0.0.0")
	}
}

// Coverage (ISSUE 3): the reader has always parsed 16-byte peer-index
// entries (peerType bit 0) but the writer never emitted one and no test
// crossed that path. An IPv6-address peer must now round-trip.
func TestPeerIndexTableRoundTripIPv6Peer(t *testing.T) {
	table := PeerIndexTable{
		CollectorID: netip.MustParseAddr("10.255.0.1"),
		ViewName:    "rex",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("10.0.0.2"), Addr: netip.MustParseAddr("10.0.0.2"), AS: 65001},
			{BGPID: netip.MustParseAddr("10.0.0.3"), Addr: netip.MustParseAddr("2001:db8::3"), AS: 65002},
			{BGPID: netip.MustParseAddr("10.0.0.4"), Addr: netip.MustParseAddr("10.0.0.4"), AS: 65003},
		},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndexTable(table, t0); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	back, ok := rec.(*PeerIndexTable)
	if !ok {
		t.Fatalf("rec = %#v", rec)
	}
	if len(back.Peers) != 3 {
		t.Fatalf("peers = %d, want 3", len(back.Peers))
	}
	for i, want := range table.Peers {
		got := back.Peers[i]
		if got.Addr != want.Addr || got.BGPID != want.BGPID || got.AS != want.AS {
			t.Errorf("peer %d = %+v, want %+v", i, got, want)
		}
	}
	if back.Peers[1].Addr.Is4() {
		t.Error("IPv6 peer address came back as IPv4")
	}
}

// FuzzReaderNext hammers the record decoder with mutated streams; the
// reader must never panic and must terminate (error or EOF) on every
// input. Seeds include a valid stream, truncated records at several
// offsets, and an AFI-2 record.
func FuzzReaderNext(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndexTable(PeerIndexTable{
		CollectorID: netip.MustParseAddr("10.255.0.1"),
		ViewName:    "rex",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("10.0.0.2"), Addr: netip.MustParseAddr("10.0.0.2"), AS: 65001},
			{BGPID: netip.MustParseAddr("10.0.0.3"), Addr: netip.MustParseAddr("2001:db8::3"), AS: 65002},
		},
	}, t0); err != nil {
		f.Fatal(err)
	}
	if err := w.WriteMessage(Message{
		Time: t0, PeerAS: 65001, LocalAS: 65002,
		PeerAddr: netip.MustParseAddr("10.0.0.2"),
		Msg:      v4Update("192.96.10.0/24"), AS4: true,
	}); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Truncations: inside the second record's header, inside its body,
	// and mid-way through the first.
	for _, cut := range []int{3, 11, 13, len(valid) / 2, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	var v6buf bytes.Buffer
	v6w := NewWriter(&v6buf)
	body := binary.BigEndian.AppendUint32(nil, 65001)
	body = binary.BigEndian.AppendUint32(body, 65002)
	body = binary.BigEndian.AppendUint16(body, 0)
	body = binary.BigEndian.AppendUint16(body, 2) // AFI IPv6
	body = append(body, make([]byte, 32)...)
	if err := v6w.record(t0, typeBGP4MP, subtypeBGP4MPMessageAS4, body, false); err != nil {
		f.Fatal(err)
	}
	if err := v6w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(v6buf.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
	})
}
