// Package mrt reads and writes MRT routing-information export format
// (RFC 6396): TABLE_DUMP_V2 RIB snapshots (PEER_INDEX_TABLE +
// RIB_IPV4_UNICAST) and BGP4MP update records, including the extended-
// timestamp variant. It bridges this repository to the archive format
// used by RouteViews/RIPE-style collectors: RIB dumps become TAMP input,
// update files become event streams (augment withdrawals with
// event.Augment afterwards).
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"rex/internal/bgp"
)

// MRT type and subtype codes used here.
const (
	typeTableDumpV2 = 13
	typeBGP4MP      = 16
	typeBGP4MPET    = 17

	subtypePeerIndexTable = 1
	subtypeRIBIPv4Unicast = 2

	subtypeBGP4MPMessage    = 1
	subtypeBGP4MPMessageAS4 = 4
)

// PeerIndexTable is the TABLE_DUMP_V2 peer index: the collector identity
// and the peers whose RIB entries follow.
type PeerIndexTable struct {
	CollectorID netip.Addr
	ViewName    string
	Peers       []Peer
}

// Peer is one peer-index entry.
type Peer struct {
	BGPID netip.Addr
	Addr  netip.Addr
	AS    uint32
}

// RIBEntry is one RIB_IPV4_UNICAST record: a prefix and the per-peer
// routes to it.
type RIBEntry struct {
	Seq     uint32
	Prefix  netip.Prefix
	Entries []RIBPeerEntry
}

// RIBPeerEntry is one peer's route within a RIBEntry.
type RIBPeerEntry struct {
	PeerIndex    uint16
	OriginatedAt time.Time
	Attrs        *bgp.PathAttrs
}

// Message is a BGP4MP(_ET) record: one BGP message with peer context.
type Message struct {
	Time      time.Time
	PeerAS    uint32
	LocalAS   uint32
	PeerAddr  netip.Addr
	LocalAddr netip.Addr
	Msg       bgp.Message
	// AS4 reports whether the record used 4-octet ASN encoding.
	AS4 bool
}

// Writer emits MRT records.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriterSize(w, 1<<16)} }

// Flush flushes buffered records.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) record(ts time.Time, mrtType, subtype uint16, body []byte, microseconds bool) error {
	if w.err != nil {
		return w.err
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.BigEndian.PutUint16(hdr[4:6], mrtType)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	length := len(body)
	if microseconds {
		length += 4
	}
	binary.BigEndian.PutUint32(hdr[8:12], uint32(length))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if microseconds {
		var us [4]byte
		binary.BigEndian.PutUint32(us[:], uint32(ts.Nanosecond()/1000))
		if _, err := w.w.Write(us[:]); err != nil {
			w.err = err
			return err
		}
	}
	if _, err := w.w.Write(body); err != nil {
		w.err = err
		return err
	}
	return nil
}

// WritePeerIndexTable writes the peer index that subsequent RIB entries
// reference by position. IPv6 peer addresses are emitted as 16-byte
// entries (peer type bit 0), matching what the reader parses; the
// collector ID and peer BGP identifiers must be IPv4.
func (w *Writer) WritePeerIndexTable(t PeerIndexTable, ts time.Time) error {
	body := make([]byte, 0, 16+12*len(t.Peers))
	var err error
	if body, err = appendAddr4(body, t.CollectorID); err != nil {
		return fmt.Errorf("mrt peer index collector ID: %w", err)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(t.ViewName)))
	body = append(body, t.ViewName...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(t.Peers)))
	for i, p := range t.Peers {
		addr := p.Addr.Unmap()
		peerType := byte(0x02) // 4-octet AS, IPv4 address
		if addr.IsValid() && !addr.Is4() {
			peerType |= 0x01 // 16-byte address
		}
		body = append(body, peerType)
		if body, err = appendAddr4(body, p.BGPID); err != nil {
			return fmt.Errorf("mrt peer index entry %d BGP ID: %w", i, err)
		}
		if peerType&0x01 != 0 {
			a := addr.As16()
			body = append(body, a[:]...)
		} else if body, err = appendAddr4(body, addr); err != nil {
			return fmt.Errorf("mrt peer index entry %d: %w", i, err)
		}
		body = binary.BigEndian.AppendUint32(body, p.AS)
	}
	return w.record(ts, typeTableDumpV2, subtypePeerIndexTable, body, false)
}

// WriteRIBEntry writes one RIB_IPV4_UNICAST record.
func (w *Writer) WriteRIBEntry(e RIBEntry, ts time.Time) error {
	body := make([]byte, 0, 64)
	body = binary.BigEndian.AppendUint32(body, e.Seq)
	var err error
	body, err = appendMRTPrefix(body, e.Prefix)
	if err != nil {
		return err
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(e.Entries)))
	for _, pe := range e.Entries {
		attrs, err := bgp.MarshalAttrs(pe.Attrs, true) // TABLE_DUMP_V2 is always AS4
		if err != nil {
			return fmt.Errorf("mrt rib entry %v: %w", e.Prefix, err)
		}
		body = binary.BigEndian.AppendUint16(body, pe.PeerIndex)
		body = binary.BigEndian.AppendUint32(body, uint32(pe.OriginatedAt.Unix()))
		body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
		body = append(body, attrs...)
	}
	return w.record(ts, typeTableDumpV2, subtypeRIBIPv4Unicast, body, false)
}

// WriteMessage writes a BGP4MP_ET record (AS4 when m.AS4).
func (w *Writer) WriteMessage(m Message) error {
	subtype := uint16(subtypeBGP4MPMessage)
	body := make([]byte, 0, 64)
	if m.AS4 {
		subtype = subtypeBGP4MPMessageAS4
		body = binary.BigEndian.AppendUint32(body, m.PeerAS)
		body = binary.BigEndian.AppendUint32(body, m.LocalAS)
	} else {
		if m.PeerAS > 0xFFFF || m.LocalAS > 0xFFFF {
			return fmt.Errorf("mrt: ASN needs AS4 record")
		}
		body = binary.BigEndian.AppendUint16(body, uint16(m.PeerAS))
		body = binary.BigEndian.AppendUint16(body, uint16(m.LocalAS))
	}
	body = binary.BigEndian.AppendUint16(body, 0) // ifindex
	body = binary.BigEndian.AppendUint16(body, 1) // AFI IPv4
	var err error
	if body, err = appendAddr4(body, m.PeerAddr); err != nil {
		return fmt.Errorf("mrt BGP4MP peer address: %w (only AFI 1 records are written)", err)
	}
	if body, err = appendAddr4(body, m.LocalAddr); err != nil {
		return fmt.Errorf("mrt BGP4MP local address: %w (only AFI 1 records are written)", err)
	}
	wire, err := bgp.Marshal(m.Msg, m.AS4)
	if err != nil {
		return err
	}
	body = append(body, wire...)
	return w.record(m.Time, typeBGP4MPET, subtype, body, true)
}

// Reader decodes MRT records. Next returns *PeerIndexTable, *RIBEntry or
// *Message, and io.EOF at end of stream. Unknown record types are
// skipped.
type Reader struct {
	r *bufio.Reader
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReaderSize(r, 1<<16)} }

// ErrUnsupportedAFI reports a BGP4MP record whose address family is not
// IPv4. Reader.Next skips such records (counting them in
// rex_mrt_records_total{result="skipped_afi"}) rather than aborting the
// stream: a RouteViews-style update file freely mixes IPv6 records into
// an IPv4 replay, and one of them must not kill the other thousands.
var ErrUnsupportedAFI = errors.New("mrt: unsupported AFI")

// Next returns the next known record.
func (r *Reader) Next() (any, error) {
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				mRecords.With("failed").Inc()
				return nil, fmt.Errorf("mrt: truncated header: %w", err)
			}
			return nil, err
		}
		ts := time.Unix(int64(binary.BigEndian.Uint32(hdr[0:4])), 0).UTC()
		mrtType := binary.BigEndian.Uint16(hdr[4:6])
		subtype := binary.BigEndian.Uint16(hdr[6:8])
		length := binary.BigEndian.Uint32(hdr[8:12])
		if length > 1<<24 {
			mRecords.With("failed").Inc()
			return nil, fmt.Errorf("mrt: implausible record length %d", length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(r.r, body); err != nil {
			mRecords.With("failed").Inc()
			return nil, fmt.Errorf("mrt: truncated body: %w", err)
		}
		if mrtType == typeBGP4MPET {
			if len(body) < 4 {
				mRecords.With("failed").Inc()
				return nil, errors.New("mrt: ET record too short")
			}
			ts = ts.Add(time.Duration(binary.BigEndian.Uint32(body[:4])) * time.Microsecond)
			body = body[4:]
			mrtType = typeBGP4MP
		}
		var rec any
		var err error
		switch {
		case mrtType == typeTableDumpV2 && subtype == subtypePeerIndexTable:
			rec, err = parsePeerIndexTable(body)
		case mrtType == typeTableDumpV2 && subtype == subtypeRIBIPv4Unicast:
			rec, err = parseRIBEntry(body)
		case mrtType == typeBGP4MP && (subtype == subtypeBGP4MPMessage || subtype == subtypeBGP4MPMessageAS4):
			rec, err = parseMessage(body, ts, subtype == subtypeBGP4MPMessageAS4)
			if errors.Is(err, ErrUnsupportedAFI) {
				mRecords.With("skipped_afi").Inc()
				continue
			}
		default:
			// Unknown record: skip.
			mRecords.With("skipped_unknown").Inc()
			continue
		}
		if err != nil {
			mRecords.With("failed").Inc()
			return nil, err
		}
		mRecords.With("parsed").Inc()
		return rec, nil
	}
}

func parsePeerIndexTable(b []byte) (*PeerIndexTable, error) {
	if len(b) < 8 {
		return nil, errors.New("mrt: short peer index table")
	}
	t := &PeerIndexTable{CollectorID: netip.AddrFrom4([4]byte(b[0:4]))}
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	b = b[6:]
	if len(b) < nameLen+2 {
		return nil, errors.New("mrt: truncated view name")
	}
	t.ViewName = string(b[:nameLen])
	b = b[nameLen:]
	count := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	for i := 0; i < count; i++ {
		if len(b) < 1 {
			return nil, errors.New("mrt: truncated peer entry")
		}
		peerType := b[0]
		b = b[1:]
		ipLen, asLen := 4, 2
		if peerType&0x01 != 0 {
			ipLen = 16
		}
		if peerType&0x02 != 0 {
			asLen = 4
		}
		need := 4 + ipLen + asLen
		if len(b) < need {
			return nil, errors.New("mrt: truncated peer entry body")
		}
		p := Peer{BGPID: netip.AddrFrom4([4]byte(b[0:4]))}
		if ipLen == 4 {
			p.Addr = netip.AddrFrom4([4]byte(b[4:8]))
		} else {
			p.Addr = netip.AddrFrom16([16]byte(b[4:20]))
		}
		if asLen == 2 {
			p.AS = uint32(binary.BigEndian.Uint16(b[4+ipLen:]))
		} else {
			p.AS = binary.BigEndian.Uint32(b[4+ipLen:])
		}
		b = b[need:]
		t.Peers = append(t.Peers, p)
	}
	return t, nil
}

func parseRIBEntry(b []byte) (*RIBEntry, error) {
	if len(b) < 5 {
		return nil, errors.New("mrt: short RIB entry")
	}
	e := &RIBEntry{Seq: binary.BigEndian.Uint32(b[0:4])}
	prefix, n, err := decodeMRTPrefix(b[4:])
	if err != nil {
		return nil, err
	}
	e.Prefix = prefix
	b = b[4+n:]
	if len(b) < 2 {
		return nil, errors.New("mrt: truncated RIB entry count")
	}
	count := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return nil, errors.New("mrt: truncated RIB peer entry")
		}
		pe := RIBPeerEntry{
			PeerIndex:    binary.BigEndian.Uint16(b[0:2]),
			OriginatedAt: time.Unix(int64(binary.BigEndian.Uint32(b[2:6])), 0).UTC(),
		}
		attrLen := int(binary.BigEndian.Uint16(b[6:8]))
		b = b[8:]
		if len(b) < attrLen {
			return nil, errors.New("mrt: truncated RIB attributes")
		}
		attrs, err := bgp.UnmarshalAttrs(b[:attrLen], true)
		if err != nil {
			return nil, fmt.Errorf("mrt rib attrs: %w", err)
		}
		pe.Attrs = attrs
		b = b[attrLen:]
		e.Entries = append(e.Entries, pe)
	}
	return e, nil
}

func parseMessage(b []byte, ts time.Time, as4 bool) (*Message, error) {
	asLen := 2
	if as4 {
		asLen = 4
	}
	need := asLen*2 + 4 + 8
	if len(b) < need {
		return nil, errors.New("mrt: short BGP4MP record")
	}
	m := &Message{Time: ts, AS4: as4}
	if as4 {
		m.PeerAS = binary.BigEndian.Uint32(b[0:4])
		m.LocalAS = binary.BigEndian.Uint32(b[4:8])
	} else {
		m.PeerAS = uint32(binary.BigEndian.Uint16(b[0:2]))
		m.LocalAS = uint32(binary.BigEndian.Uint16(b[2:4]))
	}
	b = b[asLen*2:]
	afi := binary.BigEndian.Uint16(b[2:4])
	if afi != 1 {
		return nil, fmt.Errorf("%w %d", ErrUnsupportedAFI, afi)
	}
	b = b[4:]
	m.PeerAddr = netip.AddrFrom4([4]byte(b[0:4]))
	m.LocalAddr = netip.AddrFrom4([4]byte(b[4:8]))
	b = b[8:]
	msg, err := bgp.Unmarshal(b, as4)
	if err != nil {
		return nil, fmt.Errorf("mrt bgp message: %w", err)
	}
	m.Msg = msg
	return m, nil
}

// appendAddr4 encodes a as 4 bytes. A zero Addr encodes as 0.0.0.0
// (update files written without a collector identity rely on it); a
// valid non-IPv4 address is an error — silently emitting 0.0.0.0 for an
// IPv6 peer corrupts the record instead of failing the write.
func appendAddr4(b []byte, a netip.Addr) ([]byte, error) {
	if !a.IsValid() {
		return append(b, 0, 0, 0, 0), nil
	}
	a = a.Unmap()
	if !a.Is4() {
		return nil, fmt.Errorf("mrt: IPv4 address required, got %v", a)
	}
	v := a.As4()
	return append(b, v[:]...), nil
}

func appendMRTPrefix(b []byte, p netip.Prefix) ([]byte, error) {
	if !p.Addr().Is4() {
		return nil, fmt.Errorf("mrt: IPv4 prefixes only, got %v", p)
	}
	bits := p.Bits()
	b = append(b, byte(bits))
	a := p.Addr().As4()
	return append(b, a[:(bits+7)/8]...), nil
}

func decodeMRTPrefix(b []byte) (netip.Prefix, int, error) {
	if len(b) < 1 {
		return netip.Prefix{}, 0, errors.New("mrt: empty prefix")
	}
	bits := int(b[0])
	if bits > 32 {
		return netip.Prefix{}, 0, fmt.Errorf("mrt: prefix length %d", bits)
	}
	n := (bits + 7) / 8
	if len(b) < 1+n {
		return netip.Prefix{}, 0, errors.New("mrt: truncated prefix")
	}
	var a [4]byte
	copy(a[:], b[1:1+n])
	return netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked(), 1 + n, nil
}
