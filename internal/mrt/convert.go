package mrt

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
	"rex/internal/rib"
)

// WriteTableDump writes a complete TABLE_DUMP_V2 snapshot of the routes:
// one peer index built from the routes' peers, then one RIB record per
// prefix.
func WriteTableDump(w io.Writer, routes []*rib.Route, collectorID netip.Addr, ts time.Time) error {
	mw := NewWriter(w)
	// Build the peer table.
	peerIdx := map[netip.Addr]uint16{}
	var table PeerIndexTable
	table.CollectorID = collectorID
	table.ViewName = "rex"
	for _, r := range routes {
		if _, ok := peerIdx[r.Peer]; !ok {
			peerIdx[r.Peer] = uint16(len(table.Peers))
			table.Peers = append(table.Peers, Peer{BGPID: r.PeerRouterID, Addr: r.Peer, AS: 0})
		}
	}
	if err := mw.WritePeerIndexTable(table, ts); err != nil {
		return err
	}
	// Group routes by prefix, deterministic order.
	byPrefix := map[netip.Prefix][]*rib.Route{}
	var prefixes []netip.Prefix
	for _, r := range routes {
		if _, ok := byPrefix[r.Prefix]; !ok {
			prefixes = append(prefixes, r.Prefix)
		}
		byPrefix[r.Prefix] = append(byPrefix[r.Prefix], r)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Addr() != prefixes[j].Addr() {
			return prefixes[i].Addr().Less(prefixes[j].Addr())
		}
		return prefixes[i].Bits() < prefixes[j].Bits()
	})
	for seq, p := range prefixes {
		e := RIBEntry{Seq: uint32(seq), Prefix: p}
		for _, r := range byPrefix[p] {
			e.Entries = append(e.Entries, RIBPeerEntry{
				PeerIndex:    peerIdx[r.Peer],
				OriginatedAt: r.LearnedAt,
				Attrs:        r.Attrs,
			})
		}
		if err := mw.WriteRIBEntry(e, ts); err != nil {
			return err
		}
	}
	return mw.Flush()
}

// ReadTableDump reads a TABLE_DUMP_V2 snapshot back into routes.
func ReadTableDump(r io.Reader) ([]*rib.Route, error) {
	mr := NewReader(r)
	var table *PeerIndexTable
	var out []*rib.Route
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		switch v := rec.(type) {
		case *PeerIndexTable:
			table = v
		case *RIBEntry:
			if table == nil {
				return nil, fmt.Errorf("mrt: RIB entry before peer index table")
			}
			for _, pe := range v.Entries {
				if int(pe.PeerIndex) >= len(table.Peers) {
					return nil, fmt.Errorf("mrt: peer index %d out of range", pe.PeerIndex)
				}
				peer := table.Peers[pe.PeerIndex]
				out = append(out, &rib.Route{
					Prefix:       v.Prefix,
					Peer:         peer.Addr,
					PeerRouterID: peer.BGPID,
					Attrs:        pe.Attrs,
					LearnedAt:    pe.OriginatedAt,
				})
			}
		}
	}
}

// WriteUpdates writes an event stream as BGP4MP_ET update records. The
// wire format cannot carry withdrawal attributes — withdrawals are
// written bare, exactly as a router would have sent them; use
// event.Augment after reading to restore them.
func WriteUpdates(w io.Writer, s event.Stream, localAS uint32, localAddr netip.Addr) error {
	mw := NewWriter(w)
	for i := range s {
		e := &s[i]
		var upd bgp.Update
		switch e.Type {
		case event.Announce:
			upd.Attrs = e.Attrs
			upd.NLRI = []netip.Prefix{e.Prefix}
		case event.Withdraw:
			upd.Withdrawn = []netip.Prefix{e.Prefix}
		default:
			return fmt.Errorf("event %d: invalid type %d", i, e.Type)
		}
		m := Message{
			Time: e.Time,
			// IBGP collection: the peer shares our AS.
			PeerAS:    localAS,
			LocalAS:   localAS,
			PeerAddr:  e.Peer,
			LocalAddr: localAddr,
			Msg:       &upd,
			AS4:       true,
		}
		if err := mw.WriteMessage(m); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return mw.Flush()
}

// ReadUpdates reads BGP4MP update records into an event stream (one event
// per withdrawn/announced prefix). Withdrawals come back without
// attributes; pass the result through event.Augment.
func ReadUpdates(r io.Reader) (event.Stream, error) {
	mr := NewReader(r)
	var out event.Stream
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		m, ok := rec.(*Message)
		if !ok {
			continue
		}
		upd, ok := m.Msg.(*bgp.Update)
		if !ok {
			continue
		}
		for _, p := range upd.Withdrawn {
			out = append(out, event.Event{Time: m.Time, Type: event.Withdraw, Peer: m.PeerAddr, Prefix: p})
		}
		for _, p := range upd.NLRI {
			out = append(out, event.Event{Time: m.Time, Type: event.Announce, Peer: m.PeerAddr, Prefix: p, Attrs: upd.Attrs})
		}
	}
}
