package journal

import (
	"encoding/binary"
	"io"
	"os"
)

// TruncateFrom discards every record with sequence >= seq from the
// journal in dir, leaving [.., seq) intact. It exists for the
// analysis-node recovery path: the receiver's merged journal carries no
// per-feed attribution in its records, so a tail beyond the newest
// checkpoint cannot advance any feed cursor — the node drops it and
// refetches those events from the feeds, which still hold them (feeds
// trim only to durable acks). Returns how many records were removed;
// unreadable bytes past a framing break are removed too but count as
// zero records (their boundaries are unknown).
//
// TruncateFrom must run before Open — it assumes no live Writer on dir.
func TruncateFrom(dir string, seq uint64) (removed uint64, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	for i := len(segs) - 1; i >= 0; i-- {
		s := segs[i]
		if s.first >= seq {
			// Every record in the segment is at or above the floor. Count
			// its intact prefix before unlinking (best effort — the count
			// feeds a metric, not correctness).
			_, records, _, verr := validateTail(s.path, s.first)
			if verr == nil {
				removed += records
			}
			if err := os.Remove(s.path); err != nil {
				return removed, err
			}
			mTruncateSegments.Inc()
			continue
		}
		// First segment below the floor: cut it at record index
		// seq - s.first and stop — earlier segments are entirely below.
		n, terr := truncateWithin(s, seq)
		if terr != nil {
			return removed, terr
		}
		removed += n
		break
	}
	if removed > 0 {
		mTruncateRecords.Add(removed)
	}
	syncDir(dir)
	return removed, nil
}

// truncateWithin cuts one segment at the byte offset of the record with
// sequence seq (caller guarantees seg.first < seq). A torn or corrupt
// frame below seq ends the walk early: everything from the break is
// unreadable anyway and is discarded with the tail, exactly as a scan
// would have abandoned it.
func truncateWithin(seg segmentInfo, seq uint64) (removed uint64, err error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := info.Size()
	if size <= int64(segHeaderLen) {
		return 0, nil
	}
	if _, err := f.Seek(int64(segHeaderLen), io.SeekStart); err != nil {
		return 0, err
	}
	off := int64(segHeaderLen)
	cur := seg.first
	cut := off
	var rec [recHeaderLen]byte
	for {
		if cur == seq {
			cut = off
		}
		if size-off < int64(recHeaderLen) {
			break
		}
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			break
		}
		n := int64(binary.BigEndian.Uint32(rec[0:4]))
		if n > MaxRecordLen || size-off-int64(recHeaderLen) < n {
			break
		}
		if _, err := f.Seek(n, io.SeekCurrent); err != nil {
			break
		}
		off += int64(recHeaderLen) + n
		if cur >= seq {
			removed++
		}
		cur++
	}
	if cur < seq {
		// The walk broke (or the segment simply ends) before reaching
		// seq: nothing at or above the floor exists here, but a trailing
		// break below the floor must still go — records cannot be
		// appended after it. Cut at the last intact frame.
		cut = off
		removed = 0
	}
	if cut >= size {
		return removed, nil
	}
	if err := os.Truncate(seg.path, cut); err != nil {
		return removed, err
	}
	mTruncateSegments.Inc()
	return removed, nil
}
