package journal

import (
	"testing"
	"time"
)

func TestTimeIndexLowWater(t *testing.T) {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	ix := NewTimeIndex(4)
	for i := 0; i < 1000; i++ {
		ix.Observe(uint64(i), t0.Add(time.Duration(i)*time.Second))
	}
	// The invariant, not an exact position: replay from LowWater(cutoff)
	// must cover every event newer than cutoff, i.e. LowWater <= the
	// first seq with time > cutoff, and it must not be degenerately 0
	// once samples exist past the cutoff.
	cutoff := t0.Add(500 * time.Second)
	low := ix.LowWater(cutoff)
	if low > 500 {
		t.Fatalf("LowWater %d would skip events newer than the cutoff", low)
	}
	if low < 400 {
		t.Fatalf("LowWater %d is needlessly conservative for a 4-stride sample", low)
	}
	// A cutoff before everything replays from the lowest sequence.
	if got := ix.LowWater(t0.Add(-time.Hour)); got != 0 {
		t.Fatalf("pre-history cutoff: LowWater %d, want 0", got)
	}
}

func TestTimeIndexNonMonotoneTime(t *testing.T) {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	ix := NewTimeIndex(1)
	// Timestamps jump forward then fall back; running max protects the
	// invariant.
	times := []time.Duration{0, 10, 5, 6, 20, 7, 8, 30}
	for i, d := range times {
		ix.Observe(uint64(i), t0.Add(d*time.Second))
	}
	// Events newer than t0+9s are seqs 1 (10s), 4 (20s), 7 (30s).
	low := ix.LowWater(t0.Add(9 * time.Second))
	if low > 1 {
		t.Fatalf("LowWater %d skips seq 1 (t0+10s)", low)
	}
}

func TestTimeIndexCompaction(t *testing.T) {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	ix := NewTimeIndex(1)
	n := maxTimeSamples * 4
	for i := 0; i < n; i++ {
		ix.Observe(uint64(i), t0.Add(time.Duration(i)*time.Millisecond))
	}
	if len(ix.samples) > maxTimeSamples {
		t.Fatalf("samples grew to %d, cap is %d", len(ix.samples), maxTimeSamples)
	}
	cutoff := t0.Add(time.Duration(n/2) * time.Millisecond)
	low := ix.LowWater(cutoff)
	if low > uint64(n/2) {
		t.Fatalf("post-compaction LowWater %d skips events newer than cutoff", low)
	}
}
