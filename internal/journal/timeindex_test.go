package journal

import (
	"testing"
	"time"
)

func TestTimeIndexLowWater(t *testing.T) {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	ix := NewTimeIndex(4)
	for i := 0; i < 1000; i++ {
		ix.Observe(uint64(i), t0.Add(time.Duration(i)*time.Second))
	}
	// The invariant, not an exact position: replay from LowWater(cutoff)
	// must cover every event newer than cutoff, i.e. LowWater <= the
	// first seq with time > cutoff, and it must not be degenerately 0
	// once samples exist past the cutoff.
	cutoff := t0.Add(500 * time.Second)
	low := ix.LowWater(cutoff)
	if low > 500 {
		t.Fatalf("LowWater %d would skip events newer than the cutoff", low)
	}
	if low < 400 {
		t.Fatalf("LowWater %d is needlessly conservative for a 4-stride sample", low)
	}
	// A cutoff before everything replays from the lowest sequence.
	if got := ix.LowWater(t0.Add(-time.Hour)); got != 0 {
		t.Fatalf("pre-history cutoff: LowWater %d, want 0", got)
	}
}

func TestTimeIndexNonMonotoneTime(t *testing.T) {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	ix := NewTimeIndex(1)
	// Timestamps jump forward then fall back; running max protects the
	// invariant.
	times := []time.Duration{0, 10, 5, 6, 20, 7, 8, 30}
	for i, d := range times {
		ix.Observe(uint64(i), t0.Add(d*time.Second))
	}
	// Events newer than t0+9s are seqs 1 (10s), 4 (20s), 7 (30s).
	low := ix.LowWater(t0.Add(9 * time.Second))
	if low > 1 {
		t.Fatalf("LowWater %d skips seq 1 (t0+10s)", low)
	}
}

func TestTimeIndexHighWater(t *testing.T) {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	ix := NewTimeIndex(4)
	for i := 0; i < 1000; i++ {
		ix.Observe(uint64(i), t0.Add(time.Duration(i)*time.Second))
	}
	// The invariant: the clock passes the cutoff at seq 501, so the scan
	// may stop at HighWater and HighWater >= 501; with a 4-stride sample
	// it must not overshoot by more than one stride.
	cutoff := t0.Add(500 * time.Second)
	high := ix.HighWater(cutoff)
	if high < 501 {
		t.Fatalf("HighWater %d stops before the clock passed the cutoff (first newer event is seq 501)", high)
	}
	if high > 505 {
		t.Fatalf("HighWater %d is needlessly loose for a 4-stride sample", high)
	}
	// A cutoff after everything scans to the head.
	if got := ix.HighWater(t0.Add(time.Hour)); got != 999 {
		t.Fatalf("post-history cutoff: HighWater %d, want 999 (highest observed)", got)
	}
	// A cutoff before everything stops at the first sample.
	if got := ix.HighWater(t0.Add(-time.Hour)); got > 3 {
		t.Fatalf("pre-history cutoff: HighWater %d, want within the first stride", got)
	}
}

func TestTimeIndexBoundsEdgeCases(t *testing.T) {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)

	t.Run("empty", func(t *testing.T) {
		ix := NewTimeIndex(4)
		if got := ix.LowWater(t0); got != 0 {
			t.Fatalf("empty index LowWater = %d, want 0", got)
		}
		if got := ix.HighWater(t0); got != 0 {
			t.Fatalf("empty index HighWater = %d, want 0", got)
		}
		if _, _, ok := ix.Span(); ok {
			t.Fatal("empty index reports an observed span")
		}
	})

	t.Run("before-first-event", func(t *testing.T) {
		ix := NewTimeIndex(1)
		for i := 10; i < 20; i++ {
			ix.Observe(uint64(i), t0.Add(time.Duration(i)*time.Second))
		}
		// Non-zero starting sequence (a trimmed journal): both bounds
		// stay within the observed range, never below the floor.
		if got := ix.LowWater(t0); got != 10 {
			t.Fatalf("pre-history LowWater = %d, want the observed floor 10", got)
		}
		if got := ix.HighWater(t0); got != 10 {
			t.Fatalf("pre-history HighWater = %d, want the first sample 10", got)
		}
		lo, hi, ok := ix.Span()
		if !ok || lo != 10 || hi != 19 {
			t.Fatalf("Span = (%d,%d,%t), want (10,19,true)", lo, hi, ok)
		}
	})

	t.Run("after-last-event", func(t *testing.T) {
		ix := NewTimeIndex(4)
		// 10 events: the last sample lands at seq 7; HighWater past the
		// max must still reach the true head (9), not the last sample.
		for i := 0; i < 10; i++ {
			ix.Observe(uint64(i), t0.Add(time.Duration(i)*time.Second))
		}
		if got := ix.HighWater(t0.Add(time.Hour)); got != 9 {
			t.Fatalf("post-history HighWater = %d, want 9 (head, not last sample)", got)
		}
	})

	t.Run("exactly-on-sample-boundary", func(t *testing.T) {
		ix := NewTimeIndex(1) // sample every event: boundaries are exact
		for i := 0; i < 10; i++ {
			ix.Observe(uint64(i), t0.Add(time.Duration(i)*time.Second))
		}
		// Cutoff equal to a sample's running max: that sample is at-or-
		// before the cutoff, so LowWater lands ON it and HighWater moves
		// strictly past it — "at the cutoff" belongs to history, not to
		// the future, on both bounds.
		cutoff := t0.Add(5 * time.Second)
		if got := ix.LowWater(cutoff); got != 5 {
			t.Fatalf("boundary LowWater = %d, want 5", got)
		}
		if got := ix.HighWater(cutoff); got != 6 {
			t.Fatalf("boundary HighWater = %d, want 6 (first sample after the cutoff)", got)
		}
	})
}

func TestTimeIndexCompaction(t *testing.T) {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	ix := NewTimeIndex(1)
	n := maxTimeSamples * 4
	for i := 0; i < n; i++ {
		ix.Observe(uint64(i), t0.Add(time.Duration(i)*time.Millisecond))
	}
	if len(ix.samples) > maxTimeSamples {
		t.Fatalf("samples grew to %d, cap is %d", len(ix.samples), maxTimeSamples)
	}
	cutoff := t0.Add(time.Duration(n/2) * time.Millisecond)
	low := ix.LowWater(cutoff)
	if low > uint64(n/2) {
		t.Fatalf("post-compaction LowWater %d skips events newer than cutoff", low)
	}
}
