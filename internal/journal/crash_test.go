package journal

// The crash harness: the tentpole's proof obligation. A run of the
// analysis engine is crashed — by truncating the journal at arbitrary
// byte offsets (every possible torn-write outcome) and by SIGKILLing a
// real writer process mid-append — and recovery must reproduce the
// uninterrupted run EXACTLY: same route count, same Stemming
// decomposition, same pruned picture. Equality, not approximation: the
// replay path is the same code as the live path, and integer event
// weights make the window's float count tables cancel exactly.

import (
	"math/rand"
	"net/netip"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"testing"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/event"
	"rex/internal/rib"
)

const crashStreamLen = 1200

// crashPipelineConfig keeps the engine deterministic: no spike
// snapshots, no ticks, final snapshot only.
func crashPipelineConfig() pipeline.Config {
	return pipeline.Config{
		Window: 90 * time.Second, // events are 250ms apart: window holds 360
		SpikeK: -1,
	}
}

// runEngine feeds seeds then events through a fresh pipeline and
// returns the final snapshot.
func runEngine(seeds []*event.Event, events []event.Event) pipeline.Snapshot {
	p := pipeline.New(crashPipelineConfig())
	var final pipeline.Snapshot
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range p.Snapshots() {
			if s.Trigger == pipeline.TriggerFinal {
				final = s
			}
		}
	}()
	for _, e := range seeds {
		p.Seed(*e)
	}
	for _, e := range events {
		p.Ingest(e)
	}
	p.Close()
	<-done
	return final
}

func crashStream() []event.Event {
	out := make([]event.Event, crashStreamLen)
	for i := range out {
		out[i] = genEvent(i)
	}
	return out
}

// assertRunsEqual is the crash-equivalence check: route count and
// Stemming decomposition must match exactly.
func assertRunsEqual(t *testing.T, want, got pipeline.Snapshot, label string) {
	t.Helper()
	if got.Picture.Total != want.Picture.Total {
		t.Errorf("%s: route count %d, uninterrupted run had %d", label, got.Picture.Total, want.Picture.Total)
	}
	if got.Events != want.Events {
		t.Errorf("%s: window holds %d events, uninterrupted run held %d", label, got.Events, want.Events)
	}
	if !reflect.DeepEqual(got.Components, want.Components) {
		t.Errorf("%s: Stemming decomposition diverged\n got: %+v\nwant: %+v", label, got.Components, want.Components)
	}
	if !reflect.DeepEqual(got.Picture, want.Picture) {
		t.Errorf("%s: pruned picture diverged", label)
	}
}

// TestCrashEquivalenceRandomTruncation simulates the crash at the
// journal layer: the full stream is journaled, then the log is cut at
// a random byte offset — mid-record, mid-header, on a boundary — and a
// recovered engine (replay surviving prefix, then feed the rest live)
// must equal the uninterrupted run.
func TestCrashEquivalenceRandomTruncation(t *testing.T) {
	events := crashStream()
	want := runEngine(nil, events)

	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 8; trial++ {
		dir := t.TempDir()
		w, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		for i := range events {
			if _, err := w.Append(&events[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		seg := lastSegment(t, dir)
		cut := int64(segHeaderLen) + rng.Int63n(seg.size-int64(segHeaderLen)+1)
		if err := os.Truncate(seg.path, cut); err != nil {
			t.Fatal(err)
		}

		p := pipeline.New(crashPipelineConfig())
		var final pipeline.Snapshot
		done := make(chan struct{})
		go func() {
			defer close(done)
			for s := range p.Snapshots() {
				if s.Trigger == pipeline.TriggerFinal {
					final = s
				}
			}
		}()
		st, err := Recover(dir, func(seq uint64, e *event.Event) error {
			p.Ingest(*e)
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: recovery failed: %v", trial, err)
		}
		if st.EndSeq > uint64(len(events)) {
			t.Fatalf("trial %d: recovered %d events from a %d-event run", trial, st.EndSeq, len(events))
		}
		// The events the crash destroyed arrive again live, exactly as
		// the collector re-receives what the dead process never logged.
		for i := st.EndSeq; i < uint64(len(events)); i++ {
			p.Ingest(events[i])
		}
		p.Close()
		<-done
		assertRunsEqual(t, want, final, "truncation at "+strconv.FormatInt(cut, 10))
	}
}

// shadowTables replays events[0:n] into per-peer route tables with the
// collector's semantics — the state a checkpoint would capture at
// sequence n.
func shadowTables(events []event.Event, n int) []PeerTable {
	adjs := map[netip.Addr]*rib.AdjRibIn{}
	for _, e := range events[:n] {
		adj := adjs[e.Peer]
		if adj == nil {
			adj = rib.NewAdjRibIn(e.Peer)
			adjs[e.Peer] = adj
		}
		switch e.Type {
		case event.Announce:
			adj.Update(e.Prefix, e.Attrs, false, e.Peer, e.Time)
		case event.Withdraw:
			adj.Withdraw(e.Prefix)
		}
	}
	var out []PeerTable
	for peer, adj := range adjs {
		out = append(out, PeerTable{Peer: peer, Routes: adj.Routes()})
	}
	return out
}

// TestCrashEquivalenceWithCheckpoint adds the checkpoint to the crash:
// state is checkpointed partway through the stream, the journal is cut
// at a random offset at or past the checkpoint, and recovery — seed
// tables from the checkpoint, replay the tail from ReplayLow, feed the
// destroyed remainder live — must still equal the uninterrupted run.
func TestCrashEquivalenceWithCheckpoint(t *testing.T) {
	events := crashStream()
	want := runEngine(nil, events)

	rng := rand.New(rand.NewSource(0xc4a5))
	for trial := 0; trial < 6; trial++ {
		dir := t.TempDir()
		w, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		ix := NewTimeIndex(16)
		ckptAt := 600 + rng.Intn(300)
		var ckptOffset int64
		for i := range events {
			if i == ckptAt {
				ckptOffset = w.segSize
				ck := &Checkpoint{
					NextSeq:     w.NextSeq(),
					ReplayLow:   ix.LowWater(events[i-1].Time.Add(-crashPipelineConfig().Window)),
					WindowStart: events[i-1].Time.Add(-crashPipelineConfig().Window),
					TakenAt:     events[i-1].Time,
					Peers:       shadowTables(events, i),
				}
				if _, err := WriteCheckpoint(dir, ck); err != nil {
					t.Fatal(err)
				}
			}
			seq, err := w.Append(&events[i])
			if err != nil {
				t.Fatal(err)
			}
			ix.Observe(seq, events[i].Time)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// Cut at or past the checkpoint's position: a checkpoint is only
		// written over a synced journal, so the log can never be torn
		// below state that was checkpointed.
		seg := lastSegment(t, dir)
		cut := ckptOffset + rng.Int63n(seg.size-ckptOffset+1)
		if err := os.Truncate(seg.path, cut); err != nil {
			t.Fatal(err)
		}

		// First pass: discover what survived (checkpoint + tail bounds)
		// without applying anything yet.
		st, err := Recover(dir, func(seq uint64, e *event.Event) error { return nil })
		if err != nil {
			t.Fatalf("trial %d: recovery failed: %v", trial, err)
		}
		if st.Checkpoint == nil {
			t.Fatalf("trial %d: checkpoint not recovered", trial)
		}

		// The recovered engine: seed tables from the checkpoint, replay
		// the journal tail, then feed what the crash destroyed live.
		p2 := pipeline.New(crashPipelineConfig())
		var final2 pipeline.Snapshot
		done2 := make(chan struct{})
		go func() {
			defer close(done2)
			for s := range p2.Snapshots() {
				if s.Trigger == pipeline.TriggerFinal {
					final2 = s
				}
			}
		}()
		for _, e := range st.Checkpoint.SeedEvents() {
			p2.Seed(*e)
		}
		if _, err := Scan(dir, st.Checkpoint.ReplayLow, func(seq uint64, e *event.Event) error {
			p2.Ingest(*e)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := st.EndSeq; i < uint64(len(events)); i++ {
			p2.Ingest(events[i])
		}
		p2.Close()
		<-done2
		assertRunsEqual(t, want, final2, "checkpointed crash trial "+strconv.Itoa(trial))
	}
}

// TestCrashChild is the SIGKILL harness's subprocess body: it journals
// the shared stream with per-append fsync until the parent kills it.
// Guarded by environment so a normal `go test` run skips it instantly.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("REX_CRASH_DIR")
	if os.Getenv("REX_CRASH_CHILD") != "1" || dir == "" {
		t.Skip("crash harness subprocess body")
	}
	w, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	events := crashStream()
	for i := int(w.NextSeq()); i < len(events); i++ {
		if _, err := w.Append(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
}

// TestCrashEquivalenceSIGKILL crashes a real process: a child writes
// the stream to a journal with fsync=always and is SIGKILLed at a
// random moment mid-run. The parent recovers the journal the kernel
// left behind — torn tail and all — replays it, feeds the remainder,
// and must match the uninterrupted run exactly.
func TestCrashEquivalenceSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	events := crashStream()
	want := runEngine(nil, events)
	rng := rand.New(rand.NewSource(0xdead))

	for trial := 0; trial < 3; trial++ {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashChild$")
		cmd.Env = append(os.Environ(), "REX_CRASH_CHILD=1", "REX_CRASH_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Let it journal for a while, then pull the plug. fsync=always
		// paces the child, so even a few ms leaves a partial log.
		time.Sleep(time.Duration(5+rng.Intn(60)) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()

		p := pipeline.New(crashPipelineConfig())
		var final pipeline.Snapshot
		done := make(chan struct{})
		go func() {
			defer close(done)
			for s := range p.Snapshots() {
				if s.Trigger == pipeline.TriggerFinal {
					final = s
				}
			}
		}()
		st, err := Recover(dir, func(seq uint64, e *event.Event) error {
			p.Ingest(*e)
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: recovery after SIGKILL failed: %v", trial, err)
		}
		if st.EndSeq > uint64(len(events)) {
			t.Fatalf("trial %d: recovered %d events, stream has %d", trial, st.EndSeq, len(events))
		}
		t.Logf("trial %d: child journaled %d/%d events before SIGKILL (skipped %d)",
			trial, st.EndSeq, len(events), st.Stats.Skipped)
		for i := st.EndSeq; i < uint64(len(events)); i++ {
			p.Ingest(events[i])
		}
		p.Close()
		<-done
		assertRunsEqual(t, want, final, "SIGKILL trial "+strconv.Itoa(trial))
	}
}
