package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
	"rex/internal/rib"
)

// A Checkpoint is a consistent snapshot of everything the journal tail
// cannot cheaply rebuild: the collector's per-peer Adj-RIB-In tables
// and the replay bounds. The consistency contract with the journal is
// sequence-ordered: NextSeq is read from the writer BEFORE the tables
// are snapshotted, and the collector mutates its table before the event
// reaches the journal, so the snapshot reflects every event with
// sequence below NextSeq (and possibly a few after — which replay then
// re-applies idempotently).
type Checkpoint struct {
	// NextSeq is the journal sequence the checkpoint covers: every
	// record below it is reflected in the tables.
	NextSeq uint64
	// ReplayLow is where recovery must start replaying to rebuild the
	// analysis window (TimeIndex.LowWater of the window cutoff). Always
	// <= NextSeq; segments wholly below it are trimmable.
	ReplayLow uint64
	// WindowStart is the analysis-window cutoff ReplayLow was computed
	// for.
	WindowStart time.Time
	// TakenAt is when the snapshot was captured.
	TakenAt time.Time
	// Peers holds one table per peer, sorted by peer address.
	Peers []PeerTable

	// Feeds holds the relay receiver's per-feed durable cursors, set
	// only by the analysis-node role (a collector checkpoint leaves it
	// empty). Each cursor names the next upstream journal sequence the
	// receiver needs from that feed, consistent with NextSeq: every
	// released event below a cursor is journaled below NextSeq.
	Feeds []FeedCursor
	// Pipe is the analysis pipeline's trigger state at exactly NextSeq,
	// set only by the analysis-node role. Restoring it before replaying
	// [ReplayLow, NextSeq) keeps the replay silent — no tick or spike
	// snapshot re-fires for a stream position the crashed process
	// already emitted.
	Pipe *PipeState
}

// FeedCursor is one relay feed's durable resume state.
type FeedCursor struct {
	// ID is the feed's stable identity (the relay hello name).
	ID string
	// NextSeq is the next upstream journal sequence the receiver needs:
	// the feed resumes streaming from exactly here after an
	// analysis-node restart, and may trim its local journal below it.
	NextSeq uint64
	// Watermark is the event-time frontier of the feed's released
	// events — a promise that survives restarts, unlike heartbeat
	// watermarks, because within a feed event times are monotone from
	// the resume cursor on.
	Watermark time.Time
}

// PipeState is the pipeline's snapshot-trigger state: the event-time
// clock plus the three trigger cursors that decide when the next tick
// or spike snapshot fires. It is a pure function of the event stream
// fed to the pipeline, captured at a known stream position.
type PipeState struct {
	// Clock is the newest event time the pipeline has seen.
	Clock time.Time
	// NextTick is when the next periodic snapshot fires (zero before
	// the first event).
	NextTick time.Time
	// CurBucket is the spike trigger's current rate bucket.
	CurBucket time.Time
	// LastSpike is the start of the newest spike already reported.
	LastSpike time.Time
}

// PeerTable is one peer's Adj-RIB-In contents.
type PeerTable struct {
	Peer   netip.Addr
	Routes []*rib.Route
}

const (
	ckptMagic = "REXCKPT1"
	// ckptMagicV2 marks a checkpoint carrying the relay section (feed
	// cursors and pipeline trigger state) after the peer tables. A v1
	// reader never sees one — the analysis-node role that writes them is
	// also the only reader of its own directory — and this writer still
	// emits v1 bytes when the relay section is empty, so collector
	// checkpoints are byte-identical to what PR 4 shipped.
	ckptMagicV2 = "REXCKPT2"
	ckptPrefix  = "checkpoint-"
	ckptSuffix  = ".rexc"

	ckptFlagPipe = 1 << 0 // relay-section flag byte: PipeState present

	maxFeedCursorID = 256

	ckptFlagPrefix6  = 1 << 0
	ckptFlagEBGP     = 1 << 1
	ckptFlagStale    = 1 << 2
	ckptFlagRouterID = 1 << 3
	ckptFlagRouter6  = 1 << 4
	ckptFlagPeer6    = 1 << 0 // peer-header flag byte
)

// RouteCount sums routes across all tables.
func (c *Checkpoint) RouteCount() int {
	n := 0
	for _, p := range c.Peers {
		n += len(p.Routes)
	}
	return n
}

// SeedEvents renders the checkpoint tables as announce events, oldest
// first, suitable for seeding the pipeline's table-derived state (the
// TAMP shadow RIB) without perturbing its time window.
func (c *Checkpoint) SeedEvents() []*event.Event {
	out := make([]*event.Event, 0, c.RouteCount())
	for _, p := range c.Peers {
		for _, r := range p.Routes {
			out = append(out, &event.Event{
				Time:   r.LearnedAt,
				Type:   event.Announce,
				Peer:   p.Peer,
				Prefix: r.Prefix,
				Attrs:  r.Attrs,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// WriteCheckpoint writes c to dir atomically (temp file, fsync,
// rename, directory sync) as checkpoint-<NextSeq>.rexc. A crash during
// the write leaves at worst a stray .tmp file, never a half-written
// checkpoint under the real name.
func WriteCheckpoint(dir string, c *Checkpoint) (string, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	buf, err := encodeCheckpoint(c)
	if err != nil {
		return "", err
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%020d%s", ckptPrefix, c.NextSeq, ckptSuffix))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	syncDir(dir)
	mCheckpoints.Inc()
	mCheckpointSeconds.Observe(time.Since(start).Seconds())
	return final, nil
}

// LoadLatestCheckpoint returns the newest checkpoint in dir that
// decodes cleanly, or nil when none does (including an empty or absent
// directory). Corrupt candidates are counted and skipped, never fatal:
// an older intact checkpoint plus a longer replay beats refusing to
// start.
func LoadLatestCheckpoint(dir string) (*Checkpoint, error) {
	names, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		buf, err := os.ReadFile(names[i])
		if err != nil {
			mCheckpointsCorrupt.Inc()
			continue
		}
		c, err := decodeCheckpoint(buf)
		if err != nil {
			mCheckpointsCorrupt.Inc()
			continue
		}
		return c, nil
	}
	return nil, nil
}

// LoadCheckpoints returns every checkpoint in dir that decodes cleanly,
// ascending by NextSeq. Corrupt candidates are counted and skipped, as
// in LoadLatestCheckpoint. Time-travel replay uses the full list: a
// historical query needs the newest checkpoint that does NOT already
// contain state from after the queried instant, which is not always the
// newest on disk.
func LoadCheckpoints(dir string) ([]*Checkpoint, error) {
	names, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	out := make([]*Checkpoint, 0, len(names))
	for _, name := range names {
		buf, err := os.ReadFile(name)
		if err != nil {
			mCheckpointsCorrupt.Inc()
			continue
		}
		c, err := decodeCheckpoint(buf)
		if err != nil {
			mCheckpointsCorrupt.Inc()
			continue
		}
		out = append(out, c)
	}
	return out, nil
}

// PruneCheckpoints keeps the newest keep checkpoint files and removes
// the rest. Returns how many were removed.
func PruneCheckpoints(dir string, keep int) (int, error) {
	if keep < 1 {
		keep = 1
	}
	names, err := listCheckpoints(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+keep < len(names); i++ {
		if err := os.Remove(names[i]); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		syncDir(dir)
	}
	return removed, nil
}

// listCheckpoints returns checkpoint paths sorted ascending by the
// sequence embedded in the name.
func listCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type item struct {
		seq  uint64
		path string
	}
	var items []item
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		items = append(items, item{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].seq < items[j].seq })
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.path
	}
	return out, nil
}

// encodeCheckpoint renders c as magic, fixed header, per-peer tables,
// an optional relay section (v2 magic), and a whole-file CRC32-C
// trailer.
func encodeCheckpoint(c *Checkpoint) ([]byte, error) {
	relay := len(c.Feeds) > 0 || c.Pipe != nil
	buf := make([]byte, 0, 1024)
	if relay {
		buf = append(buf, ckptMagicV2...)
	} else {
		buf = append(buf, ckptMagic...)
	}
	buf = binary.BigEndian.AppendUint64(buf, c.NextSeq)
	buf = binary.BigEndian.AppendUint64(buf, c.ReplayLow)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.WindowStart.UnixNano()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.TakenAt.UnixNano()))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Peers)))
	for _, p := range c.Peers {
		var err error
		buf, err = appendPeerTable(buf, &p)
		if err != nil {
			return nil, err
		}
	}
	if relay {
		var err error
		buf, err = appendRelaySection(buf, c)
		if err != nil {
			return nil, err
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli)), nil
}

// appendRelaySection renders the analysis-node extras: a flag byte, the
// pipeline trigger state when present, then the feed cursor list.
func appendRelaySection(buf []byte, c *Checkpoint) ([]byte, error) {
	var flags byte
	if c.Pipe != nil {
		flags |= ckptFlagPipe
	}
	buf = append(buf, flags)
	if c.Pipe != nil {
		buf = appendUnixNano(buf, c.Pipe.Clock)
		buf = appendUnixNano(buf, c.Pipe.NextTick)
		buf = appendUnixNano(buf, c.Pipe.CurBucket)
		buf = appendUnixNano(buf, c.Pipe.LastSpike)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Feeds)))
	for _, f := range c.Feeds {
		if f.ID == "" || len(f.ID) > maxFeedCursorID {
			return nil, fmt.Errorf("checkpoint feed cursor: bad ID %q", f.ID)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.ID)))
		buf = append(buf, f.ID...)
		buf = binary.BigEndian.AppendUint64(buf, f.NextSeq)
		buf = appendUnixNano(buf, f.Watermark)
	}
	return buf, nil
}

// appendUnixNano encodes t as UnixNano, preserving the zero time (which
// UnixNano alone cannot represent) as the sentinel 0.
func appendUnixNano(buf []byte, t time.Time) []byte {
	var n int64
	if !t.IsZero() {
		n = t.UnixNano()
	}
	return binary.BigEndian.AppendUint64(buf, uint64(n))
}

// parseUnixNano is appendUnixNano's inverse.
func parseUnixNano(n uint64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(n)).UTC()
}

func appendPeerTable(buf []byte, p *PeerTable) ([]byte, error) {
	if !p.Peer.IsValid() {
		return nil, fmt.Errorf("checkpoint: invalid peer address")
	}
	if p.Peer.Is4() {
		buf = append(buf, 0)
		a := p.Peer.As4()
		buf = append(buf, a[:]...)
	} else {
		buf = append(buf, ckptFlagPeer6)
		a := p.Peer.As16()
		buf = append(buf, a[:]...)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Routes)))
	for _, r := range p.Routes {
		var err error
		buf, err = appendRoute(buf, r)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendRoute(buf []byte, r *rib.Route) ([]byte, error) {
	attrs, err := bgp.MarshalAttrs(r.Attrs, true)
	if err != nil {
		return nil, fmt.Errorf("checkpoint route %v: %w", r.Prefix, err)
	}
	if len(attrs) > 0xFFFF {
		return nil, fmt.Errorf("checkpoint route %v: attribute block too large", r.Prefix)
	}
	var flags byte
	if !r.Prefix.Addr().Is4() {
		flags |= ckptFlagPrefix6
	}
	if r.EBGP {
		flags |= ckptFlagEBGP
	}
	if r.Stale {
		flags |= ckptFlagStale
	}
	if r.PeerRouterID.IsValid() {
		flags |= ckptFlagRouterID
		if !r.PeerRouterID.Is4() {
			flags |= ckptFlagRouter6
		}
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.LearnedAt.UnixNano()))
	buf = append(buf, byte(r.Prefix.Bits()))
	if flags&ckptFlagPrefix6 != 0 {
		a := r.Prefix.Addr().As16()
		buf = append(buf, a[:]...)
	} else {
		a := r.Prefix.Addr().As4()
		buf = append(buf, a[:]...)
	}
	if flags&ckptFlagRouterID != 0 {
		if flags&ckptFlagRouter6 != 0 {
			a := r.PeerRouterID.As16()
			buf = append(buf, a[:]...)
		} else {
			a := r.PeerRouterID.As4()
			buf = append(buf, a[:]...)
		}
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(attrs)))
	return append(buf, attrs...), nil
}

func decodeCheckpoint(buf []byte) (*Checkpoint, error) {
	if len(buf) < len(ckptMagic)+8*4+4+4 {
		return nil, fmt.Errorf("checkpoint: %d bytes, too short", len(buf))
	}
	var relay bool
	switch string(buf[:len(ckptMagic)]) {
	case ckptMagic:
	case ckptMagicV2:
		relay = true
	default:
		return nil, fmt.Errorf("checkpoint: bad magic")
	}
	body, trailer := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(trailer) {
		return nil, fmt.Errorf("checkpoint: CRC mismatch")
	}
	b := body[len(ckptMagic):]
	c := &Checkpoint{
		NextSeq:     binary.BigEndian.Uint64(b[0:8]),
		ReplayLow:   binary.BigEndian.Uint64(b[8:16]),
		WindowStart: time.Unix(0, int64(binary.BigEndian.Uint64(b[16:24]))).UTC(),
		TakenAt:     time.Unix(0, int64(binary.BigEndian.Uint64(b[24:32]))).UTC(),
	}
	peerCount := int(binary.BigEndian.Uint32(b[32:36]))
	b = b[36:]
	for i := 0; i < peerCount; i++ {
		var p PeerTable
		var err error
		b, err = parsePeerTable(b, &p)
		if err != nil {
			return nil, err
		}
		c.Peers = append(c.Peers, p)
	}
	if relay {
		var err error
		b, err = parseRelaySection(b, c)
		if err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(b))
	}
	return c, nil
}

func parseRelaySection(b []byte, c *Checkpoint) ([]byte, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("checkpoint: truncated relay section")
	}
	flags := b[0]
	b = b[1:]
	if flags&^byte(ckptFlagPipe) != 0 {
		return nil, fmt.Errorf("checkpoint: unknown relay flags %#x", flags)
	}
	if flags&ckptFlagPipe != 0 {
		if len(b) < 32 {
			return nil, fmt.Errorf("checkpoint: truncated pipe state")
		}
		c.Pipe = &PipeState{
			Clock:     parseUnixNano(binary.BigEndian.Uint64(b[0:8])),
			NextTick:  parseUnixNano(binary.BigEndian.Uint64(b[8:16])),
			CurBucket: parseUnixNano(binary.BigEndian.Uint64(b[16:24])),
			LastSpike: parseUnixNano(binary.BigEndian.Uint64(b[24:32])),
		}
		b = b[32:]
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("checkpoint: truncated feed cursor count")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	c.Feeds = make([]FeedCursor, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("checkpoint: truncated feed cursor")
		}
		idLen := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if idLen == 0 || idLen > maxFeedCursorID || len(b) < idLen+16 {
			return nil, fmt.Errorf("checkpoint: bad feed cursor ID")
		}
		f := FeedCursor{ID: string(b[:idLen])}
		b = b[idLen:]
		f.NextSeq = binary.BigEndian.Uint64(b[0:8])
		f.Watermark = parseUnixNano(binary.BigEndian.Uint64(b[8:16]))
		b = b[16:]
		c.Feeds = append(c.Feeds, f)
	}
	return b, nil
}

func parsePeerTable(b []byte, p *PeerTable) ([]byte, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("checkpoint: truncated peer header")
	}
	flags := b[0]
	b = b[1:]
	if flags&^byte(ckptFlagPeer6) != 0 {
		return nil, fmt.Errorf("checkpoint: unknown peer flags %#x", flags)
	}
	if flags&ckptFlagPeer6 != 0 {
		if len(b) < 16 {
			return nil, fmt.Errorf("checkpoint: truncated peer address")
		}
		p.Peer = netip.AddrFrom16([16]byte(b[:16]))
		b = b[16:]
	} else {
		if len(b) < 4 {
			return nil, fmt.Errorf("checkpoint: truncated peer address")
		}
		p.Peer = netip.AddrFrom4([4]byte(b[:4]))
		b = b[4:]
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("checkpoint: truncated route count")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	p.Routes = make([]*rib.Route, 0, n)
	for i := 0; i < n; i++ {
		r := &rib.Route{Peer: p.Peer}
		var err error
		b, err = parseRoute(b, r)
		if err != nil {
			return nil, err
		}
		p.Routes = append(p.Routes, r)
	}
	return b, nil
}

func parseRoute(b []byte, r *rib.Route) ([]byte, error) {
	if len(b) < 1+8+1 {
		return nil, fmt.Errorf("checkpoint: truncated route")
	}
	flags := b[0]
	known := byte(ckptFlagPrefix6 | ckptFlagEBGP | ckptFlagStale | ckptFlagRouterID | ckptFlagRouter6)
	if flags&^known != 0 {
		return nil, fmt.Errorf("checkpoint: unknown route flags %#x", flags)
	}
	r.EBGP = flags&ckptFlagEBGP != 0
	r.Stale = flags&ckptFlagStale != 0
	r.LearnedAt = time.Unix(0, int64(binary.BigEndian.Uint64(b[1:9]))).UTC()
	bits := int(b[9])
	b = b[10:]
	var addr netip.Addr
	if flags&ckptFlagPrefix6 != 0 {
		if len(b) < 16 {
			return nil, fmt.Errorf("checkpoint: truncated prefix")
		}
		addr = netip.AddrFrom16([16]byte(b[:16]))
		b = b[16:]
	} else {
		if len(b) < 4 {
			return nil, fmt.Errorf("checkpoint: truncated prefix")
		}
		addr = netip.AddrFrom4([4]byte(b[:4]))
		b = b[4:]
	}
	if bits > addr.BitLen() {
		return nil, fmt.Errorf("checkpoint: invalid prefix length %d", bits)
	}
	r.Prefix = netip.PrefixFrom(addr, bits)
	if flags&ckptFlagRouterID != 0 {
		if flags&ckptFlagRouter6 != 0 {
			if len(b) < 16 {
				return nil, fmt.Errorf("checkpoint: truncated router ID")
			}
			r.PeerRouterID = netip.AddrFrom16([16]byte(b[:16]))
			b = b[16:]
		} else {
			if len(b) < 4 {
				return nil, fmt.Errorf("checkpoint: truncated router ID")
			}
			r.PeerRouterID = netip.AddrFrom4([4]byte(b[:4]))
			b = b[4:]
		}
	}
	if len(b) < 2 {
		return nil, fmt.Errorf("checkpoint: truncated attribute length")
	}
	attrLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < attrLen {
		return nil, fmt.Errorf("checkpoint: truncated attributes")
	}
	if attrLen > 0 {
		attrs, err := bgp.UnmarshalAttrs(b[:attrLen], true)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		r.Attrs = attrs
	}
	return b[attrLen:], nil
}
