package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"rex/internal/event"
)

// ScanStats reports what a scan read and what it had to give up.
type ScanStats struct {
	// Records is how many intact records were delivered to the callback.
	Records uint64
	// Skipped counts well-framed records dropped for a CRC mismatch or a
	// payload that would not decode. Each kept its sequence slot.
	Skipped uint64
	// Abandoned counts segments whose framing broke mid-file; records
	// after the break are unrecoverable (their boundaries are unknown)
	// and the scan resumed at the next segment.
	Abandoned int
	// Trimmed counts segments listed at the start of the scan that had
	// vanished by the time the scan reached them — retention (TrimTo)
	// running concurrently with a live tailer. Their records were below
	// the retention floor, so losing them is correct, not damage.
	Trimmed int
}

// ErrStop lets a scan callback end the scan early without error.
var ErrStop = fmt.Errorf("journal: scan stopped")

// Floor reports the first sequence the journal still retains — the trim
// floor: the starting sequence of the oldest segment on disk. ok is
// false when the directory holds no segments at all. A floor above the
// journal's original starting sequence means TrimTo has discarded
// history; replays reaching below it need a checkpoint base.
func Floor(dir string) (floor uint64, ok bool, err error) {
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		return 0, false, err
	}
	return segs[0].first, true, nil
}

// Scan reads every record with sequence >= from, in order, calling fn
// for each. Damage is skipped and counted, never fatal: a record with a
// bad CRC or undecodable payload loses only itself; a framing break
// loses the rest of its segment. The returned stats cover only the
// requested range (records below from are neither counted nor checked).
//
// Scan is safe against a concurrent Writer: a segment deleted by TrimTo
// between the directory listing and its open is counted in
// stats.Trimmed and skipped (trimmed records were below the retention
// floor by definition), and a segment whose file is removed while its
// descriptor is open stays readable to the end — a live tailer never
// sees a torn read from retention.
func Scan(dir string, from uint64, fn func(seq uint64, e *event.Event) error) (ScanStats, error) {
	var stats ScanStats
	segs, err := listSegments(dir)
	if err != nil {
		return stats, err
	}
	for i, seg := range segs {
		// A segment whose successor starts at or below from holds only
		// records below from: every record precedes the next segment's
		// first sequence.
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue
		}
		abandoned, err := scanSegment(seg, from, fn, &stats)
		if abandoned {
			stats.Abandoned++
		}
		if err == ErrStop {
			return stats, nil
		}
		if errors.Is(err, fs.ErrNotExist) {
			stats.Trimmed++
			mScanTrimmed.Inc()
			continue
		}
		if err != nil {
			return stats, fmt.Errorf("journal scan %s: %w", filepath.Base(seg.path), err)
		}
	}
	return stats, nil
}

// scanSegment walks one segment. It returns abandoned=true when the
// framing broke before the file ended; err is non-nil only for I/O
// failures or a callback error.
func scanSegment(seg segmentInfo, from uint64, fn func(seq uint64, e *event.Event) error, stats *ScanStats) (abandoned bool, err error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return false, err
	}
	size := info.Size()
	if size < int64(segHeaderLen) {
		return size > 0, nil
	}
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return true, nil
	}
	if string(hdr[:len(segMagic)]) != segMagic {
		return true, nil
	}
	first := binary.BigEndian.Uint64(hdr[len(segMagic):])
	if first != seg.first {
		// Header disagrees with the file name; trust neither.
		return true, nil
	}
	off := int64(segHeaderLen)
	seq := first
	var rec [recHeaderLen]byte
	buf := make([]byte, 0, 4096)
	for {
		if size-off < int64(recHeaderLen) {
			// Trailing bytes too short for a frame header: an append in
			// flight (live tailer on the active segment) or a torn crash
			// tail Open will truncate. Either way the stream simply ends
			// here — not damage.
			return false, nil
		}
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			return true, nil
		}
		n := int64(binary.BigEndian.Uint32(rec[0:4]))
		if n > MaxRecordLen {
			return true, nil
		}
		if size-off-int64(recHeaderLen) < n {
			// A plausible header whose payload straddles EOF: the record
			// was mid-append when we stat'd the file. Stop cleanly; the
			// next scan picks it up whole.
			return false, nil
		}
		want := binary.BigEndian.Uint32(rec[4:8])
		if seq < from {
			// Below the requested range: skip the payload unread.
			if _, err := f.Seek(n, io.SeekCurrent); err != nil {
				return true, nil
			}
		} else {
			if cap(buf) < int(n) {
				buf = make([]byte, n)
			}
			buf = buf[:n]
			if _, err := io.ReadFull(f, buf); err != nil {
				return true, nil
			}
			if crc32.Checksum(buf, castagnoli) != want {
				stats.Skipped++
				mSkippedRecords.Inc()
			} else if e, derr := event.ParseRecord(buf); derr != nil {
				stats.Skipped++
				mSkippedRecords.Inc()
			} else {
				stats.Records++
				if err := fn(seq, &e); err != nil {
					return false, err
				}
			}
		}
		off += int64(recHeaderLen) + n
		seq++
	}
}
