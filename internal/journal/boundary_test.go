package journal

import (
	"testing"
	"time"

	"rex/internal/event"
)

// Recovery replay floors that land exactly on a segment boundary are
// the off-by-one minefield: the segment below the floor must be skipped
// whole, the segment at the floor must be read from its very first
// record, and a floor equal to NextSeq (nothing to replay) must recover
// cleanly. These tests pin each edge with exact sequence accounting.

// boundaryJournal builds a journal with several sealed segments and
// returns the writer plus the segment list (small SegmentBytes forces
// known split points).
func boundaryJournal(t *testing.T, dir string, n int) (*Writer, []segmentInfo) {
	t.Helper()
	w, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, n)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("want >= 4 segments, got %d", len(segs))
	}
	return w, segs
}

// TestScanFromEverySegmentBoundary scans from each segment's exact
// first sequence and asserts the delivered range is [from, n) with no
// stray record below the floor and no gap above it.
func TestScanFromEverySegmentBoundary(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	w, segs := boundaryJournal(t, dir, n)
	defer w.Close()
	for _, seg := range segs {
		from := seg.first
		var got []uint64
		stats, err := Scan(dir, from, func(seq uint64, e *event.Event) error {
			got = append(got, seq)
			return nil
		})
		if err != nil {
			t.Fatalf("scan from %d: %v", from, err)
		}
		if stats.Skipped != 0 || stats.Abandoned != 0 || stats.Trimmed != 0 {
			t.Fatalf("scan from %d reported damage: %+v", from, stats)
		}
		if want := uint64(n) - from; stats.Records != want {
			t.Fatalf("scan from %d: %d records, want %d", from, stats.Records, want)
		}
		for i, seq := range got {
			if seq != from+uint64(i) {
				t.Fatalf("scan from %d: got[%d] = %d", from, i, seq)
			}
		}
	}
}

// TestRecoverFloorOnSegmentBoundary checkpoints with ReplayLow exactly
// at a segment's first sequence, trims retention to the floor, and
// recovers: replay must start at precisely the floor.
func TestRecoverFloorOnSegmentBoundary(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	w, segs := boundaryJournal(t, dir, n)
	defer w.Close()
	floor := segs[2].first
	if _, err := WriteCheckpoint(dir, &Checkpoint{
		NextSeq:   uint64(n),
		ReplayLow: floor,
		TakenAt:   time.Unix(0, 0).UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.TrimTo(floor); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	st, err := Recover(dir, func(seq uint64, e *event.Event) error {
		got = append(got, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplayFrom != floor {
		t.Errorf("ReplayFrom = %d, want %d", st.ReplayFrom, floor)
	}
	if st.Replayed != uint64(n)-floor {
		t.Errorf("Replayed = %d, want %d", st.Replayed, uint64(n)-floor)
	}
	if st.EndSeq != uint64(n) {
		t.Errorf("EndSeq = %d, want %d", st.EndSeq, n)
	}
	if len(got) == 0 || got[0] != floor || got[len(got)-1] != uint64(n)-1 {
		t.Errorf("replayed range [%d..%d], want [%d..%d]", got[0], got[len(got)-1], floor, n-1)
	}
	if st.Stats.Skipped != 0 || st.Stats.Abandoned != 0 {
		t.Errorf("recovery reported damage: %+v", st.Stats)
	}
}

// TestRecoverFloorAtNextSeq is the empty-tail edge: the checkpoint
// covers everything (ReplayLow == NextSeq == end of log), so recovery
// replays nothing and the resumed writer continues from NextSeq.
func TestRecoverFloorAtNextSeq(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	w, _ := boundaryJournal(t, dir, n)
	if _, err := WriteCheckpoint(dir, &Checkpoint{
		NextSeq:   uint64(n),
		ReplayLow: uint64(n),
		TakenAt:   time.Unix(0, 0).UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.TrimTo(uint64(n)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Recover(dir, func(seq uint64, e *event.Event) error {
		t.Fatalf("unexpected replay of seq %d", seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 0 || st.ReplayFrom != uint64(n) || st.EndSeq != uint64(n) {
		t.Errorf("empty-tail recovery: %+v", st)
	}
	// The reopened writer resumes numbering exactly at the boundary.
	w2, err := Open(dir, Options{SegmentBytes: 128, StartSeq: st.EndSeq})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextSeq() != uint64(n) {
		t.Errorf("reopened NextSeq = %d, want %d", w2.NextSeq(), n)
	}
	appendN(t, w2, n, 5)
	got, stats := collect(t, dir, uint64(n))
	if len(got) != 5 || stats.Records != 5 {
		t.Errorf("post-boundary appends: %d records, stats %+v", len(got), stats)
	}
}

// TestRecoverFloorJustInsideSegment shifts the floor one record past a
// boundary (floor = first+1): the boundary record itself must NOT be
// replayed, its successors must.
func TestRecoverFloorJustInsideSegment(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	w, segs := boundaryJournal(t, dir, n)
	defer w.Close()
	floor := segs[2].first + 1
	var got []uint64
	stats, err := Scan(dir, floor, func(seq uint64, e *event.Event) error {
		got = append(got, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(n) - floor; stats.Records != want {
		t.Errorf("%d records, want %d", stats.Records, want)
	}
	if len(got) == 0 || got[0] != floor {
		t.Errorf("first replayed = %v, want %d", got, floor)
	}
}
