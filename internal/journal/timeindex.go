package journal

import (
	"sync"
	"time"
)

// TimeIndex maps event time to journal sequence so a checkpoint can
// record how far back replay must reach to rebuild the pipeline's
// sliding window. It samples (sequence, running-max time) pairs: BGP
// event timestamps are not guaranteed monotone (augmented withdrawals
// inherit clock reads racing real updates), so each sample carries the
// maximum time seen up to that sequence. That gives the invariant
// LowWater depends on: if a sample's running max is at or below the
// cutoff, every event at or below its sequence is too, and every event
// strictly newer than the cutoff has a higher sequence.
type TimeIndex struct {
	mu      sync.Mutex
	every   uint64
	n       uint64
	max     time.Time
	samples []timeSample // ascending seq, ascending (non-strict) max
	low     uint64       // floor returned when nothing qualifies
	haveLow bool
	high    uint64 // highest observed sequence (HighWater's ceiling)
}

type timeSample struct {
	seq uint64
	max time.Time
}

// maxTimeSamples bounds memory; on overflow every other sample is
// dropped and the sampling stride doubles, preserving coverage of the
// whole retained range at half the resolution.
const maxTimeSamples = 4096

// NewTimeIndex samples roughly one pair per every events (default 64).
func NewTimeIndex(every uint64) *TimeIndex {
	if every == 0 {
		every = 64
	}
	return &TimeIndex{every: every}
}

// Observe records that the event at seq has time t. Sequences must be
// presented in ascending order.
func (ix *TimeIndex) Observe(seq uint64, t time.Time) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.haveLow {
		ix.low, ix.haveLow = seq, true
	}
	ix.high = seq
	if t.After(ix.max) {
		ix.max = t
	}
	ix.n++
	if ix.n%ix.every != 0 {
		return
	}
	ix.samples = append(ix.samples, timeSample{seq: seq, max: ix.max})
	if len(ix.samples) > maxTimeSamples {
		kept := ix.samples[:0]
		for i := 1; i < len(ix.samples); i += 2 {
			kept = append(kept, ix.samples[i])
		}
		ix.samples = kept
		ix.every *= 2
	}
}

// LowWater returns a sequence from which replay is guaranteed to see
// every observed event with time after cutoff: the largest sampled
// sequence whose running-max time is at or before the cutoff, or the
// lowest observed sequence when no sample qualifies (replay everything).
func (ix *TimeIndex) LowWater(cutoff time.Time) uint64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	best := ix.low
	for _, s := range ix.samples {
		if s.max.After(cutoff) {
			break
		}
		best = s.seq
	}
	return best
}

// HighWater is LowWater's upper-bound counterpart: a sequence at which a
// replay reconstructing "state as of cutoff" may stop scanning. At the
// returned sequence the event-time clock (the running max) has already
// passed the cutoff — the first event strictly newer than the cutoff
// lies at or below it — so no record beyond it can matter. It returns
// the smallest sampled sequence whose running-max time is after the
// cutoff, or the highest observed sequence when the clock never passed
// the cutoff (scan to the head). Event times are not monotone, so this
// bounds where the clock crosses the cutoff, not where individual
// event times do.
func (ix *TimeIndex) HighWater(cutoff time.Time) uint64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, s := range ix.samples {
		if s.max.After(cutoff) {
			return s.seq
		}
	}
	return ix.high
}

// Span reports the observed sequence range [low, high] and whether any
// event has been observed at all.
func (ix *TimeIndex) Span() (low, high uint64, ok bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.low, ix.high, ix.haveLow
}
