package journal

import (
	"rex/internal/event"
)

// RecoveredState summarizes what Recover found on disk.
type RecoveredState struct {
	// Checkpoint is the newest intact checkpoint, or nil when the
	// directory held none (cold start: everything rebuilds from the
	// journal alone).
	Checkpoint *Checkpoint
	// ReplayFrom is the sequence replay started at: the checkpoint's
	// ReplayLow, or zero without a checkpoint.
	ReplayFrom uint64
	// Replayed is how many intact records were delivered.
	Replayed uint64
	// EndSeq is one past the last intact record seen (>= ReplayFrom);
	// with a checkpoint it is at least Checkpoint.NextSeq, so the
	// resumed writer never reuses a sequence the checkpoint covers.
	EndSeq uint64
	// Stats carries the scan's damage accounting.
	Stats ScanStats
}

// Recover performs the startup sequence: load the newest valid
// checkpoint (if any), then replay every intact journal record from its
// replay floor through fn, in sequence order. Damage — torn tails,
// CRC-bad records, broken framing — is skipped and counted in Stats,
// matching the journal's never-abort policy; the caller seeds its state
// from the checkpoint before calling, and fn applies the tail on top.
func Recover(dir string, fn func(seq uint64, e *event.Event) error) (*RecoveredState, error) {
	st := &RecoveredState{}
	ckpt, err := LoadLatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	st.Checkpoint = ckpt
	if ckpt != nil {
		st.ReplayFrom = ckpt.ReplayLow
		st.EndSeq = ckpt.NextSeq
	}
	stats, err := Scan(dir, st.ReplayFrom, func(seq uint64, e *event.Event) error {
		if seq+1 > st.EndSeq {
			st.EndSeq = seq + 1
		}
		st.Replayed++
		mReplayedRecords.Inc()
		return fn(seq, e)
	})
	st.Stats = stats
	if err != nil {
		return st, err
	}
	return st, nil
}
