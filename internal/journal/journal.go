// Package journal is the durability layer under the always-on system:
// a segmented, CRC-checksummed, length-prefixed append-only log of the
// augmented event stream (paper §II — REX records months of IBGP feeds
// and replays them on demand), plus periodic checkpoints of the
// collector's Adj-RIB-In state, so a crashed rexd restarts from the
// newest checkpoint and replays only the journal tail instead of losing
// every table and the analysis window.
//
// On-disk layout, one directory:
//
//	journal-00000000000000000000.rexj   segments: 16-byte header
//	journal-00000000000000004096.rexj     (magic "REXJSEG1" + first
//	journal-00000000000000008192.rexj      sequence), then records
//	checkpoint-00000000000000007000.rexc  checkpoints, named by the
//	                                       sequence they cover
//
// Each record is `len(4) crc32c(4) payload`, payload being one
// event.AppendRecord encoding. Sequence numbers are implicit — a
// record's sequence is the segment's first sequence plus its index —
// which is what lets recovery resume replay at an exact position
// without an index file.
//
// Failure policy, matching mrt.Reader's: damage is counted and skipped,
// never a panic or an aborted startup. A torn tail (the crash landed
// mid-write) is truncated on open; a mid-file record with a bad CRC is
// skipped; a segment whose framing is broken is abandoned from the
// break onward. Every repair increments an obs counter so a recovering
// daemon reports exactly what it lost.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rex/internal/event"
)

const (
	segMagic     = "REXJSEG1"
	segHeaderLen = len(segMagic) + 8 // magic + first sequence
	recHeaderLen = 8                 // payload length + CRC32-C
	segPrefix    = "journal-"
	segSuffix    = ".rexj"

	// MaxRecordLen bounds one record payload; a frame header claiming
	// more is corruption, not a large event.
	MaxRecordLen = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FsyncPolicy says when appended records are forced to stable storage.
type FsyncPolicy uint8

// Fsync policies. The default is FsyncInterval: bounded data loss
// (everything since the last sync) at a small fraction of FsyncAlways'
// per-event cost; FsyncNever leaves flushing entirely to the OS.
const (
	FsyncInterval FsyncPolicy = iota
	FsyncAlways
	FsyncNever
)

// String names the policy the way the -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return "fsync(?)"
	}
}

// ParseFsyncPolicy parses the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("fsync policy %q: want always, interval or never", s)
	}
}

// Options tunes a Writer. The zero value is usable.
type Options struct {
	// SegmentBytes is the rotation threshold (default 8 MiB).
	SegmentBytes int64
	// Fsync is the sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the interval policy's sync period (default 1s).
	FsyncEvery time.Duration
	// StartSeq is the first sequence number when the directory holds no
	// segments — a recovered daemon whose journal was trimmed to a
	// checkpoint resumes numbering where the checkpoint left off.
	StartSeq uint64
	// OnAppend, when set, is called after every successful Append with
	// the record's sequence number. It runs outside the writer lock, so
	// the callback may call back into the Writer — a live tailer's wake
	// hook.
	OnAppend func(seq uint64)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = time.Second
	}
	return o
}

// Writer appends events to the segmented log. It is safe for one
// goroutine at a time per method call (an internal mutex serializes),
// matching its place behind the intake queue's single drainer.
type Writer struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	segFirst uint64 // first sequence of the open segment
	segSize  int64
	nextSeq  uint64
	lastSync time.Time
	dirty    bool
	buf      []byte
	closed   bool
}

// Open creates or resumes the journal in dir. Resuming validates the
// newest segment's framing and truncates a torn tail — the write that
// was in flight when the process died — so appends continue from the
// last intact record.
func Open(dir string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, opts: opts, lastSync: time.Now()}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.createSegment(opts.StartSeq); err != nil {
			return nil, err
		}
		mSegments.Set(1)
		return w, nil
	}
	last := segs[len(segs)-1]
	end, records, torn, err := validateTail(last.path, last.first)
	if err != nil {
		return nil, fmt.Errorf("journal open: validate %s: %w", filepath.Base(last.path), err)
	}
	if torn > 0 {
		if err := os.Truncate(last.path, end); err != nil {
			return nil, fmt.Errorf("journal open: truncate torn tail: %w", err)
		}
		mTruncatedTails.Inc()
		mTruncatedBytes.Add(uint64(torn))
	}
	if end < int64(segHeaderLen) {
		// The header itself was torn or corrupted: the segment holds no
		// salvageable records. Recreate it whole — appending after a bare
		// truncation would leave records no reader can frame.
		if err := os.Remove(last.path); err != nil {
			return nil, fmt.Errorf("journal open: recreate damaged segment: %w", err)
		}
		if err := w.createSegment(last.first); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(last.path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		w.f = f
		w.segFirst = last.first
		w.segSize = end
		w.nextSeq = last.first + records
	}
	if opts.StartSeq > w.nextSeq {
		// The checkpoint is ahead of the log (the tail it covered was
		// trimmed); resume numbering from it in a fresh segment.
		if err := w.rotateLocked(opts.StartSeq); err != nil {
			return nil, err
		}
	}
	mSegments.Set(int64(len(segs) + 0))
	return w, nil
}

// NextSeq returns the sequence number the next Append will get.
func (w *Writer) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Append writes one event record and returns its sequence number.
// Durability follows the fsync policy; the record is always handed to
// the OS before Append returns.
func (w *Writer) Append(e *event.Event) (uint64, error) {
	seq, err := w.append(e)
	if err == nil && w.opts.OnAppend != nil {
		w.opts.OnAppend(seq)
	}
	return seq, err
}

func (w *Writer) append(e *event.Event) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, os.ErrClosed
	}
	payload, err := event.AppendRecord(w.buf[:0], e)
	if err != nil {
		return 0, err
	}
	w.buf = payload
	if len(payload) > MaxRecordLen {
		return 0, fmt.Errorf("journal append: %d-byte record exceeds limit", len(payload))
	}
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.f.Write(payload); err != nil {
		return 0, err
	}
	seq := w.nextSeq
	w.nextSeq++
	w.segSize += int64(recHeaderLen + len(payload))
	w.dirty = true
	mAppends.Inc()
	mAppendBytes.Add(uint64(recHeaderLen + len(payload)))

	switch w.opts.Fsync {
	case FsyncAlways:
		if err := w.syncLocked(); err != nil {
			return seq, err
		}
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.opts.FsyncEvery {
			if err := w.syncLocked(); err != nil {
				return seq, err
			}
		}
	}
	if w.segSize >= w.opts.SegmentBytes {
		if err := w.rotateLocked(w.nextSeq); err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// Sync forces everything appended so far to stable storage, regardless
// of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return os.ErrClosed
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	w.lastSync = time.Now()
	mFsyncs.Inc()
	return nil
}

// rotateLocked seals the open segment (synced, so a sealed segment is
// never torn) and starts a new one whose first sequence is firstSeq.
func (w *Writer) rotateLocked(firstSeq uint64) error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	if err := w.createSegment(firstSeq); err != nil {
		return err
	}
	mRotations.Inc()
	mSegments.Inc()
	return nil
}

func (w *Writer) createSegment(firstSeq uint64) error {
	path := segmentPath(w.dir, firstSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic)
	binary.BigEndian.PutUint64(hdr[len(segMagic):], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segFirst = firstSeq
	w.segSize = int64(segHeaderLen)
	w.nextSeq = firstSeq
	w.dirty = true
	syncDir(w.dir)
	return nil
}

// TrimTo removes sealed segments every record of which is below seq —
// the retention hook: after a checkpoint covering the analysis window,
// segments older than the window's replay floor are dead weight. The
// active segment is never removed. Returns how many were deleted.
func (w *Writer) TrimTo(seq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, s := range segs {
		// A segment's records end where the next segment begins; the
		// last (active) segment has no successor and always stays.
		if i+1 >= len(segs) || segs[i+1].first > seq || s.first == w.segFirst {
			break
		}
		if err := os.Remove(s.path); err != nil {
			return removed, err
		}
		removed++
		mTrimmed.Inc()
		mSegments.Dec()
	}
	if removed > 0 {
		syncDir(w.dir)
	}
	return removed, nil
}

// Close syncs and closes the active segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.syncLocked(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// segmentInfo is one on-disk segment.
type segmentInfo struct {
	first uint64
	path  string
	size  int64
}

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix))
}

// listSegments returns the directory's segments sorted by first
// sequence. A file whose name parses but whose header is unreadable is
// still listed; readers decide what to salvage from it.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []segmentInfo
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		out = append(out, segmentInfo{first: first, path: filepath.Join(dir, name), size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].first < out[j].first })
	return out, nil
}

// validateTail walks a segment's framing and reports where the intact
// prefix ends: the offset of the first torn or impossible frame, how
// many well-framed records precede it, and how many trailing bytes are
// damaged. CRCs are not checked here — a well-framed record with a bad
// checksum keeps its sequence slot and is skipped at read time. A
// header whose magic or first sequence disagrees with the file name is
// total damage (end 0), mirroring the scanner's trust-neither policy.
func validateTail(path string, first uint64) (end int64, records uint64, torn int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, 0, err
	}
	size := info.Size()
	if size < int64(segHeaderLen) {
		// Even the header is torn: the segment was created but the
		// header write never landed. Treat the whole file as tail.
		return 0, 0, size, nil
	}
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, 0, err
	}
	if string(hdr[:len(segMagic)]) != segMagic {
		return 0, 0, size, nil
	}
	if binary.BigEndian.Uint64(hdr[len(segMagic):]) != first {
		return 0, 0, size, nil
	}
	off := int64(segHeaderLen)
	var rec [recHeaderLen]byte
	for {
		if size-off < int64(recHeaderLen) {
			return off, records, size - off, nil
		}
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			return off, records, size - off, nil
		}
		n := int64(binary.BigEndian.Uint32(rec[0:4]))
		if n > MaxRecordLen || size-off-int64(recHeaderLen) < n {
			return off, records, size - off, nil
		}
		if _, err := f.Seek(n, io.SeekCurrent); err != nil {
			return off, records, size - off, nil
		}
		off += int64(recHeaderLen) + n
		records++
	}
}

// syncDir fsyncs the directory so segment creation/removal survives a
// crash; best effort (not all platforms support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
