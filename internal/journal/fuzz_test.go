package journal

import (
	"os"
	"testing"

	"rex/internal/event"
)

// FuzzOpenAndScan throws arbitrary bytes at the journal as a tail
// segment and holds the recovery contract: Scan never panics or
// aborts, Open always yields a usable writer, and — the invariant the
// seeds were chosen to stress — a record appended after recovery is
// always visible to a subsequent scan. (That last property is what
// caught Open resuming headerless after a header-corrupted tail, and
// trusting a header whose first sequence disagreed with the file
// name.)
func FuzzOpenAndScan(f *testing.F) {
	// Seed with a real three-record segment and characteristic damage:
	// torn tail, corrupt payload, corrupt magic, corrupt header
	// sequence, bare header, empty file.
	seedDir := f.TempDir()
	w, err := Open(seedDir, Options{Fsync: FsyncNever})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e := genEvent(i)
		if _, err := w.Append(&e); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	intact, err := os.ReadFile(segmentPath(seedDir, 0))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(intact)
	f.Add(intact[:len(intact)-3])
	for _, at := range []int{0, len(segMagic), segHeaderLen + recHeaderLen + 1} {
		mut := append([]byte(nil), intact...)
		mut[at] ^= 0xFF
		f.Add(mut)
	}
	f.Add(intact[:segHeaderLen])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 0), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Scan(dir, 0, func(seq uint64, e *event.Event) error { return nil }); err != nil {
			t.Fatalf("scan aborted on damaged segment: %v", err)
		}
		w, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("open refused damaged segment: %v", err)
		}
		e := genEvent(0)
		seq, err := w.Append(&e)
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		seen := 0
		if _, err := Scan(dir, seq, func(s uint64, ev *event.Event) error {
			if s == seq {
				seen++
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if seen != 1 {
			t.Fatalf("record appended after recovery (seq %d) seen %d times in scan", seq, seen)
		}
	})
}
