package journal

import "rex/internal/obs"

// Journal metrics. The repair counters (truncated tails, skipped
// records) are the ones an operator reads after a crash: they state
// exactly how much of the log the recovery path had to give up, in the
// same skip-and-count spirit as rex_mrt_skipped_records.
var (
	mAppends = obs.NewCounter("rex_journal_appends_total",
		"Event records appended to the journal.")
	mAppendBytes = obs.NewCounter("rex_journal_append_bytes_total",
		"Bytes appended to the journal (frame headers included).")
	mFsyncs = obs.NewCounter("rex_journal_fsyncs_total",
		"fsync calls issued by the journal writer.")
	mSegments = obs.NewGauge("rex_journal_segments",
		"Journal segments currently on disk.")
	mRotations = obs.NewCounter("rex_journal_rotations_total",
		"Segment rotations (a full segment sealed, a new one opened).")
	mTrimmed = obs.NewCounter("rex_journal_segments_trimmed_total",
		"Sealed segments deleted by retention after a covering checkpoint.")
	mTruncatedTails = obs.NewCounter("rex_journal_truncated_tails_total",
		"Torn segment tails truncated while opening the journal.")
	mTruncatedBytes = obs.NewCounter("rex_journal_truncated_bytes_total",
		"Bytes discarded by torn-tail truncation.")
	mSkippedRecords = obs.NewCounter("rex_journal_skipped_records_total",
		"Well-framed records skipped during scan for CRC or decode errors.")
	mScanTrimmed = obs.NewCounter("rex_journal_scan_trimmed_segments_total",
		"Segments that vanished mid-scan because retention trimmed them.")
	mCheckpoints = obs.NewCounter("rex_journal_checkpoints_total",
		"Checkpoints written successfully.")
	mCheckpointSeconds = obs.NewHistogram("rex_journal_checkpoint_seconds",
		"Latency of checkpoint capture and atomic write.", nil)
	mCheckpointsCorrupt = obs.NewCounter("rex_journal_checkpoints_corrupt_total",
		"Checkpoint files rejected at load time (bad magic, CRC, or decode).")
	mReplayedRecords = obs.NewCounter("rex_journal_replayed_records_total",
		"Journal records replayed through the pipeline during recovery.")
	mTruncateSegments = obs.NewCounter("rex_journal_truncate_from_segments_total",
		"Segments removed or cut by TruncateFrom (analysis-node orphan tails).")
	mTruncateRecords = obs.NewCounter("rex_journal_truncate_from_records_total",
		"Records discarded by TruncateFrom; the receiver refetches them from feeds.")
)
