package journal

import (
	"os"
	"testing"

	"rex/internal/event"
)

// countFrom scans the journal and returns the sequences seen at or
// above from.
func countFrom(t *testing.T, dir string, from uint64) []uint64 {
	t.Helper()
	var seqs []uint64
	if _, err := Scan(dir, from, func(seq uint64, e *event.Event) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return seqs
}

func TestTruncateFromMidSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 30)
	w.Close()

	removed, err := TruncateFrom(dir, 12)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 18 {
		t.Fatalf("removed %d records, want 18", removed)
	}
	seqs := countFrom(t, dir, 0)
	if len(seqs) != 12 || seqs[0] != 0 || seqs[len(seqs)-1] != 11 {
		t.Fatalf("survivors %v, want [0..11]", seqs)
	}
	// The writer must resume exactly at the cut.
	w2, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextSeq() != 12 {
		t.Fatalf("NextSeq %d after truncation, want 12", w2.NextSeq())
	}
}

func TestTruncateFromSegmentBoundary(t *testing.T) {
	// Small segments force rotation; the floor landing exactly on a
	// segment's first sequence must drop that whole segment and leave
	// the previous one untouched.
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 40)
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("%d segments, want >=3 for a boundary case", len(segs))
	}
	floor := segs[1].first
	removed, err := TruncateFrom(dir, floor)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 40-floor {
		t.Fatalf("removed %d, want %d", removed, 40-floor)
	}
	seqs := countFrom(t, dir, 0)
	if uint64(len(seqs)) != floor || seqs[len(seqs)-1] != floor-1 {
		t.Fatalf("survivors %v, want [0..%d]", seqs, floor-1)
	}
}

func TestTruncateFromBeyondEndIsNoOp(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	w.Close()
	removed, err := TruncateFrom(dir, 10)
	if err != nil || removed != 0 {
		t.Fatalf("removed %d err %v, want 0 nil", removed, err)
	}
	if got := countFrom(t, dir, 0); len(got) != 10 {
		t.Fatalf("%d survivors, want 10", len(got))
	}
}

func TestTruncateFromZeroWipesAll(t *testing.T) {
	// No checkpoint means no attribution for anything: a floor of 0
	// must leave an empty directory (the node refetches everything).
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 25)
	w.Close()
	removed, err := TruncateFrom(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 25 {
		t.Fatalf("removed %d, want 25", removed)
	}
	segs, _ := listSegments(dir)
	if len(segs) != 0 {
		t.Fatalf("%d segments left, want 0", len(segs))
	}
}

func TestTruncateFromEmptyDir(t *testing.T) {
	removed, err := TruncateFrom(t.TempDir(), 5)
	if err != nil || removed != 0 {
		t.Fatalf("removed %d err %v on empty dir", removed, err)
	}
}

func TestTruncateFromTornTail(t *testing.T) {
	// A crash tears the final record; the floor sits below the tear.
	// TruncateFrom must cut at the floor and the torn bytes go with it.
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 20)
	w.Close()
	seg := lastSegment(t, dir)
	if err := os.Truncate(seg.path, seg.size-3); err != nil {
		t.Fatal(err)
	}
	removed, err := TruncateFrom(dir, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Records 15..18 were intact (19 was torn — boundaries unknown, not
	// counted), all discarded.
	if removed != 4 {
		t.Fatalf("removed %d records, want 4", removed)
	}
	seqs := countFrom(t, dir, 0)
	if len(seqs) != 15 || seqs[len(seqs)-1] != 14 {
		t.Fatalf("survivors %v, want [0..14]", seqs)
	}
	w2, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextSeq() != 15 {
		t.Fatalf("NextSeq %d, want 15", w2.NextSeq())
	}
}
