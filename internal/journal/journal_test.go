package journal

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
)

// genEvent builds a deterministic event for index i: announces with
// rotating attributes, every fifth event a withdrawal of an earlier
// prefix.
func genEvent(i int) event.Event {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 6), byte(i & 0x3f), 0}), 24)
	e := event.Event{
		Time:   t0.Add(time.Duration(i) * 250 * time.Millisecond),
		Peer:   netip.AddrFrom4([4]byte{128, 32, 1, byte(1 + i%3)}),
		Prefix: pfx,
	}
	if i%5 == 4 {
		e.Type = event.Withdraw
		e.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte((i - 4) >> 6), byte((i - 4) & 0x3f), 0}), 24)
		return e
	}
	e.Type = event.Announce
	e.Attrs = &bgp.PathAttrs{
		ASPath:  bgp.Sequence(11423, uint32(200+i%7), 701),
		Nexthop: netip.AddrFrom4([4]byte{128, 32, 0, 70}),
	}
	return e
}

func appendN(t *testing.T, w *Writer, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		e := genEvent(i)
		seq, err := w.Append(&e)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d: got seq %d", i, seq)
		}
	}
}

// collect scans dir from seq and returns the delivered records.
func collect(t *testing.T, dir string, from uint64) (map[uint64]event.Event, ScanStats) {
	t.Helper()
	got := map[uint64]event.Event{}
	stats, err := Scan(dir, from, func(seq uint64, e *event.Event) error {
		got[seq] = *e
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return got, stats
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 200)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, dir, 0)
	if stats.Skipped != 0 || stats.Abandoned != 0 {
		t.Fatalf("clean journal reported damage: %+v", stats)
	}
	if len(got) != 200 {
		t.Fatalf("scanned %d records, want 200", len(got))
	}
	for i := 0; i < 200; i++ {
		want := genEvent(i)
		have, ok := got[uint64(i)]
		if !ok {
			t.Fatalf("seq %d missing", i)
		}
		if have.Prefix != want.Prefix || have.Type != want.Type || !have.Time.Equal(want.Time) {
			t.Fatalf("seq %d: got %+v want %+v", i, have, want)
		}
	}
}

func TestJournalRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 512, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 100)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	// Reopen resumes numbering exactly where the log ended.
	w, err = Open(dir, Options{SegmentBytes: 512, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if w.NextSeq() != 100 {
		t.Fatalf("reopened NextSeq = %d, want 100", w.NextSeq())
	}
	appendN(t, w, 100, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir, 0)
	if len(got) != 150 {
		t.Fatalf("scanned %d records, want 150", len(got))
	}
	// Ranged scan: from a seq in the middle, only later records arrive.
	got, _ = collect(t, dir, 120)
	if len(got) != 30 {
		t.Fatalf("ranged scan returned %d records, want 30", len(got))
	}
	if _, ok := got[119]; ok {
		t.Fatal("ranged scan leaked a record below from")
	}
}

func TestJournalTrimTo(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 512, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 100)
	segs, _ := listSegments(dir)
	if len(segs) < 4 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	cut := segs[2].first
	removed, err := w.TrimTo(cut)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("TrimTo removed %d segments, want 2", removed)
	}
	// Everything at or above the cut survives.
	got, _ := collect(t, dir, cut)
	for i := cut; i < 100; i++ {
		if _, ok := got[i]; !ok {
			t.Fatalf("seq %d lost by trim", i)
		}
	}
	// Trimming beyond the end never touches the active segment.
	if _, err := w.TrimTo(1 << 30); err != nil {
		t.Fatal(err)
	}
	segs, _ = listSegments(dir)
	if len(segs) == 0 {
		t.Fatal("trim removed the active segment")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, Options{Fsync: pol, FsyncEvery: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, 0, 20)
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got, _ := collect(t, dir, 0)
			if len(got) != 20 {
				t.Fatalf("policy %v: %d records, want 20", pol, len(got))
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParseFsyncPolicy(s)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != s {
			t.Fatalf("%q parsed to %v", s, p)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// lastSegment returns the newest segment's path.
func lastSegment(t *testing.T, dir string) segmentInfo {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	return segs[len(segs)-1]
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop the last 3 bytes, mid-record — the shape a
	// crash during a write leaves behind.
	seg := lastSegment(t, dir)
	if err := os.Truncate(seg.path, seg.size-3); err != nil {
		t.Fatal(err)
	}
	w, err = Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if w.NextSeq() != 9 {
		t.Fatalf("NextSeq after torn-tail truncation = %d, want 9", w.NextSeq())
	}
	// The slot freed by truncation is rewritten by the next append.
	e := genEvent(9)
	seq, err := w.Append(&e)
	if err != nil || seq != 9 {
		t.Fatalf("append after truncation: seq %d err %v", seq, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, dir, 0)
	if len(got) != 10 || stats.Skipped != 0 {
		t.Fatalf("after repair: %d records, stats %+v", len(got), stats)
	}
}

func TestTornTailExactlyOneRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	seg := lastSegment(t, dir)
	// Append a 6th record and chop it in half: the tail holds exactly
	// one torn record.
	e := genEvent(5)
	if _, err := w.Append(&e); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	after := lastSegment(t, dir)
	torn := after.size - seg.size
	if torn <= 1 {
		t.Fatalf("last record only %d bytes", torn)
	}
	if err := os.Truncate(after.path, seg.size+torn/2); err != nil {
		t.Fatal(err)
	}
	w, err = Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("open with one torn record: %v", err)
	}
	if w.NextSeq() != 5 {
		t.Fatalf("NextSeq = %d, want 5 (exactly the torn record dropped)", w.NextSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, dir, 0)
	if len(got) != 5 || stats.Skipped != 0 || stats.Abandoned != 0 {
		t.Fatalf("after one-record tear: %d records, stats %+v", len(got), stats)
	}
}

func TestCorruptCRCMidFileSkipped(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// Record the offset where record 5 starts so we can hit its payload.
	var offAt5 int64
	for i := 0; i < 10; i++ {
		if i == 5 {
			offAt5 = w.segSize
		}
		e := genEvent(i)
		if _, err := w.Append(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of record 5: framing intact, CRC wrong.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0}
	if _, err := f.ReadAt(buf, offAt5+recHeaderLen); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, offAt5+recHeaderLen); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, stats := collect(t, dir, 0)
	if stats.Skipped != 1 {
		t.Fatalf("skipped %d records, want exactly 1", stats.Skipped)
	}
	if stats.Abandoned != 0 {
		t.Fatalf("corrupt CRC abandoned a segment: %+v", stats)
	}
	if len(got) != 9 {
		t.Fatalf("delivered %d records, want 9", len(got))
	}
	if _, ok := got[5]; ok {
		t.Fatal("corrupt record 5 was delivered")
	}
	// Records after the bad one keep their sequence slots.
	for _, i := range []uint64{6, 7, 8, 9} {
		want := genEvent(int(i))
		if got[i].Prefix != want.Prefix {
			t.Fatalf("seq %d misaligned after skip: %v want %v", i, got[i].Prefix, want.Prefix)
		}
	}
	// A writer reopening this journal keeps the slot too: the framing is
	// intact, so NextSeq counts the corrupt record.
	w, err = Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if w.NextSeq() != 10 {
		t.Fatalf("NextSeq = %d, want 10", w.NextSeq())
	}
	w.Close()
}

func TestScanStopsEarly(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	w.Close()
	n := 0
	_, err = Scan(dir, 0, func(seq uint64, e *event.Event) error {
		n++
		if n == 3 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times after ErrStop, want 3", n)
	}
}

func TestStartSeqAheadOfLog(t *testing.T) {
	// A journal trimmed behind its checkpoint: the writer must resume
	// numbering at the checkpoint, not reuse covered sequences.
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	w.Close()
	w, err = Open(dir, Options{Fsync: FsyncNever, StartSeq: 40})
	if err != nil {
		t.Fatal(err)
	}
	if w.NextSeq() != 40 {
		t.Fatalf("NextSeq = %d, want 40", w.NextSeq())
	}
	e := genEvent(40)
	if seq, err := w.Append(&e); err != nil || seq != 40 {
		t.Fatalf("append: seq %d err %v", seq, err)
	}
	w.Close()
	got, _ := collect(t, dir, 0)
	if len(got) != 6 {
		t.Fatalf("%d records, want 6 (5 old + 1 new)", len(got))
	}
	if _, ok := got[40]; !ok {
		t.Fatal("record at resumed sequence missing")
	}
}

func TestOpenEmptyDirAndMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "journal")
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.NextSeq() != 0 {
		t.Fatalf("fresh journal NextSeq = %d", w.NextSeq())
	}
	w.Close()
	got, stats := collect(t, dir, 0)
	if len(got) != 0 || stats.Skipped != 0 {
		t.Fatalf("fresh journal scan: %d records, %+v", len(got), stats)
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 4096, 1 << 40} {
		p := segmentPath("d", seq)
		base := filepath.Base(p)
		var parsed uint64
		if _, err := fmt.Sscanf(base, segPrefix+"%d"+segSuffix, &parsed); err != nil || parsed != seq {
			t.Fatalf("segment name %q does not round-trip seq %d", base, seq)
		}
	}
}
