package journal

import (
	"net/netip"
	"os"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
	"rex/internal/rib"
)

func testCheckpoint(nextSeq uint64) *Checkpoint {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	mk := func(peer string, n int, stale bool) PeerTable {
		p := PeerTable{Peer: netip.MustParseAddr(peer)}
		for i := 0; i < n; i++ {
			p.Routes = append(p.Routes, &rib.Route{
				Prefix:       netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16),
				Peer:         p.Peer,
				PeerRouterID: netip.MustParseAddr("192.0.2.1"),
				Attrs: &bgp.PathAttrs{
					ASPath:  bgp.Sequence(11423, uint32(100+i)),
					Nexthop: netip.MustParseAddr("128.32.0.70"),
				},
				LearnedAt: t0.Add(time.Duration(i) * time.Second),
				Stale:     stale,
			})
		}
		return p
	}
	return &Checkpoint{
		NextSeq:     nextSeq,
		ReplayLow:   nextSeq / 2,
		WindowStart: t0.Add(-15 * time.Minute),
		TakenAt:     t0,
		Peers: []PeerTable{
			mk("128.32.1.1", 3, false),
			mk("2001:db8::2", 2, true),
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testCheckpoint(1000)
	if _, err := WriteCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("checkpoint not found")
	}
	if got.NextSeq != want.NextSeq || got.ReplayLow != want.ReplayLow ||
		!got.WindowStart.Equal(want.WindowStart) || !got.TakenAt.Equal(want.TakenAt) {
		t.Fatalf("header mismatch: %+v vs %+v", got, want)
	}
	if len(got.Peers) != len(want.Peers) {
		t.Fatalf("%d peers, want %d", len(got.Peers), len(want.Peers))
	}
	for i, p := range got.Peers {
		wp := want.Peers[i]
		if p.Peer != wp.Peer || len(p.Routes) != len(wp.Routes) {
			t.Fatalf("peer %d mismatch", i)
		}
		for j, r := range p.Routes {
			wr := wp.Routes[j]
			if r.Prefix != wr.Prefix || r.Peer != wr.Peer || r.PeerRouterID != wr.PeerRouterID ||
				r.Stale != wr.Stale || r.EBGP != wr.EBGP || !r.LearnedAt.Equal(wr.LearnedAt) ||
				!r.Attrs.Equal(wr.Attrs) {
				t.Fatalf("peer %d route %d: %+v vs %+v", i, j, r, wr)
			}
		}
	}
}

func TestCheckpointRelayRoundTrip(t *testing.T) {
	t0 := time.Date(2003, 8, 14, 20, 0, 0, 0, time.UTC)
	dir := t.TempDir()
	want := testCheckpoint(1000)
	want.Feeds = []FeedCursor{
		{ID: "feed-00", NextSeq: 512, Watermark: t0.Add(3 * time.Minute)},
		{ID: "feed-01", NextSeq: 488},              // zero watermark: never released
		{ID: "feed-02", NextSeq: 0, Watermark: t0}, // never heard, wm from restore
	}
	want.Pipe = &PipeState{
		Clock:    t0.Add(3 * time.Minute),
		NextTick: t0.Add(4 * time.Minute),
		// CurBucket zero: first bucket not yet rolled.
		LastSpike: t0.Add(90 * time.Second),
	}
	if _, err := WriteCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("checkpoint not found")
	}
	if got.NextSeq != want.NextSeq || len(got.Peers) != len(want.Peers) {
		t.Fatalf("v1 fields lost: %+v", got)
	}
	if len(got.Feeds) != len(want.Feeds) {
		t.Fatalf("%d feed cursors, want %d", len(got.Feeds), len(want.Feeds))
	}
	for i, f := range got.Feeds {
		wf := want.Feeds[i]
		if f.ID != wf.ID || f.NextSeq != wf.NextSeq || !f.Watermark.Equal(wf.Watermark) {
			t.Fatalf("feed cursor %d: %+v vs %+v", i, f, wf)
		}
		if wf.Watermark.IsZero() && !f.Watermark.IsZero() {
			t.Fatalf("feed cursor %d: zero watermark not preserved", i)
		}
	}
	if got.Pipe == nil {
		t.Fatal("pipe state lost")
	}
	if !got.Pipe.Clock.Equal(want.Pipe.Clock) || !got.Pipe.NextTick.Equal(want.Pipe.NextTick) ||
		!got.Pipe.LastSpike.Equal(want.Pipe.LastSpike) {
		t.Fatalf("pipe state: %+v vs %+v", got.Pipe, want.Pipe)
	}
	if !got.Pipe.CurBucket.IsZero() {
		t.Fatalf("zero CurBucket not preserved: %v", got.Pipe.CurBucket)
	}
}

func TestCheckpointRelayFeedsOnly(t *testing.T) {
	// Cursors without pipe state (checkpoint before the pipeline ever
	// saw an event): the flag byte must round-trip Pipe as nil.
	dir := t.TempDir()
	want := testCheckpoint(10)
	want.Feeds = []FeedCursor{{ID: "solo", NextSeq: 7}}
	if _, err := WriteCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatestCheckpoint(dir)
	if err != nil || got == nil {
		t.Fatalf("load: %+v %v", got, err)
	}
	if got.Pipe != nil {
		t.Fatalf("Pipe = %+v, want nil", got.Pipe)
	}
	if len(got.Feeds) != 1 || got.Feeds[0].ID != "solo" || got.Feeds[0].NextSeq != 7 {
		t.Fatalf("feeds: %+v", got.Feeds)
	}
}

func TestCheckpointV1FormatUnchanged(t *testing.T) {
	// A checkpoint without relay state must still encode as v1 — a
	// collector's checkpoint files stay readable by older builds, and
	// the magic is the compatibility contract.
	buf, err := encodeCheckpoint(testCheckpoint(42))
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:len(ckptMagic)]) != ckptMagic {
		t.Fatalf("collector checkpoint got magic %q, want %q", buf[:len(ckptMagic)], ckptMagic)
	}
	buf2, err := encodeCheckpoint(&Checkpoint{NextSeq: 1, Feeds: []FeedCursor{{ID: "f", NextSeq: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if string(buf2[:len(ckptMagicV2)]) != ckptMagicV2 {
		t.Fatalf("relay checkpoint got magic %q, want %q", buf2[:len(ckptMagicV2)], ckptMagicV2)
	}
}

func TestCheckpointRelayCorruptSectionRejected(t *testing.T) {
	// Damage confined to the relay section must fail decode (CRC or
	// bounds), never return a half-parsed checkpoint.
	c := testCheckpoint(10)
	c.Feeds = []FeedCursor{{ID: "feed-00", NextSeq: 5}}
	buf, err := encodeCheckpoint(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeCheckpoint(buf); err != nil {
		t.Fatalf("clean decode: %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"flipped byte", func(b []byte) []byte { b[len(b)-10] ^= 0xFF; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-8] }},
	} {
		mut := tc.mut(append([]byte(nil), buf...))
		if _, err := decodeCheckpoint(mut); err == nil {
			t.Fatalf("%s: corrupt relay section decoded without error", tc.name)
		}
	}
}

func TestCheckpointNewestValidWins(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{100, 200, 300} {
		if _, err := WriteCheckpoint(dir, testCheckpoint(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest: the loader must fall back to seq 200.
	names, err := listCheckpoints(dir)
	if err != nil || len(names) != 3 {
		t.Fatalf("checkpoints: %v %v", names, err)
	}
	buf, err := os.ReadFile(names[2])
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(names[2], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.NextSeq != 200 {
		t.Fatalf("loaded %+v, want NextSeq 200", got)
	}
}

func TestCheckpointPrune(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{1, 2, 3, 4, 5} {
		if _, err := WriteCheckpoint(dir, testCheckpoint(seq)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := PruneCheckpoints(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("pruned %d, want 3", removed)
	}
	names, _ := listCheckpoints(dir)
	if len(names) != 2 {
		t.Fatalf("%d checkpoints left, want 2", len(names))
	}
	got, err := LoadLatestCheckpoint(dir)
	if err != nil || got == nil || got.NextSeq != 5 {
		t.Fatalf("newest survivor: %+v err %v", got, err)
	}
}

func TestCheckpointSeedEvents(t *testing.T) {
	c := testCheckpoint(10)
	seeds := c.SeedEvents()
	if len(seeds) != c.RouteCount() {
		t.Fatalf("%d seeds for %d routes", len(seeds), c.RouteCount())
	}
	for i, s := range seeds {
		if s.Type != event.Announce {
			t.Fatalf("seed %d is not an announce", i)
		}
		if i > 0 && s.Time.Before(seeds[i-1].Time) {
			t.Fatalf("seeds not time-ordered at %d", i)
		}
	}
}

func TestRecoverEmptyDirectory(t *testing.T) {
	st, err := Recover(t.TempDir(), func(seq uint64, e *event.Event) error {
		t.Fatal("callback on empty directory")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoint != nil || st.Replayed != 0 || st.EndSeq != 0 {
		t.Fatalf("empty-dir recovery: %+v", st)
	}
}

func TestRecoverCheckpointWithNoTail(t *testing.T) {
	// A checkpoint covering the whole journal: nothing to replay beyond
	// it, and EndSeq holds at the checkpoint so sequence numbering
	// never regresses.
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	w.Close()
	ck := testCheckpoint(10)
	ck.ReplayLow = 10
	if _, err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	st, err := Recover(dir, func(seq uint64, e *event.Event) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoint == nil || st.Replayed != 0 || st.EndSeq != 10 {
		t.Fatalf("no-tail recovery: replayed=%d end=%d ckpt=%v", st.Replayed, st.EndSeq, st.Checkpoint != nil)
	}
}

func TestRecoverReplaysTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 30)
	w.Close()
	ck := testCheckpoint(20)
	ck.ReplayLow = 15
	if _, err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	st, err := Recover(dir, func(seq uint64, e *event.Event) error {
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplayFrom != 15 || st.Replayed != 15 || st.EndSeq != 30 {
		t.Fatalf("tail recovery: from=%d replayed=%d end=%d", st.ReplayFrom, st.Replayed, st.EndSeq)
	}
	for i, s := range seqs {
		if s != uint64(15+i) {
			t.Fatalf("replay out of order at %d: %d", i, s)
		}
	}
}

func TestRecoverSurvivesTornAndCorruptTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 20)
	w.Close()
	// Corrupt record 10's CRC and tear the tail mid-record 19.
	seg := lastSegment(t, dir)
	if err := os.Truncate(seg.path, seg.size-2); err != nil {
		t.Fatal(err)
	}
	// Find record 10's offset by re-walking the framing.
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(segHeaderLen)
	for i := 0; i < 10; i++ {
		var hdr [recHeaderLen]byte
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			t.Fatal(err)
		}
		off += int64(recHeaderLen) + int64(uint32(hdr[0])<<24|uint32(hdr[1])<<16|uint32(hdr[2])<<8|uint32(hdr[3]))
	}
	b := []byte{0}
	if _, err := f.ReadAt(b, off+recHeaderLen); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, off+recHeaderLen); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var got int
	st, err := Recover(dir, func(seq uint64, e *event.Event) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatalf("recovery aborted on damage: %v", err)
	}
	// 20 appended, minus the torn record 19 (framing loss) and the
	// corrupt record 10 (CRC skip).
	if got != 18 || st.Replayed != 18 {
		t.Fatalf("replayed %d records, want 18 (stats %+v)", got, st.Stats)
	}
	if st.Stats.Skipped != 1 {
		t.Fatalf("skipped %d, want 1", st.Stats.Skipped)
	}
}
