package journal

import (
	"sync"
	"sync/atomic"
	"testing"

	"rex/internal/event"
)

// TestScanSurvivesTrimUnderneath is the fail-on-old-behavior regression
// test for the rotation-vs-TrimTo race: retention deleting segments
// while a live tailer walks them. The tailer must (a) finish reading a
// segment whose file is unlinked under its open descriptor, (b) skip —
// not error on — a listed segment that vanished before it was opened,
// and (c) deliver everything at or above the retention floor intact.
// Before the fix, step (b) aborted the scan with ENOENT.
func TestScanSurvivesTrimUnderneath(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 40)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("want >= 4 segments for the race shape, got %d", len(segs))
	}
	floor := segs[2].first // TrimTo here deletes segments 0 and 1

	got := map[uint64]event.Event{}
	trimmed := false
	stats, err := Scan(dir, 0, func(seq uint64, e *event.Event) error {
		if !trimmed {
			// Fires while segment 0's descriptor is open: segment 0 is
			// unlinked beneath the scan, segment 1 before it is opened.
			trimmed = true
			if n, terr := w.TrimTo(floor); terr != nil || n != 2 {
				t.Fatalf("TrimTo(%d) = %d, %v; want 2 removed", floor, n, terr)
			}
		}
		got[seq] = *e
		return nil
	})
	if err != nil {
		t.Fatalf("scan raced with trim: %v", err)
	}
	if stats.Trimmed != 1 {
		t.Errorf("stats.Trimmed = %d, want 1 (segment 1 vanished unopened)", stats.Trimmed)
	}
	if stats.Skipped != 0 || stats.Abandoned != 0 {
		t.Errorf("scan reported damage: %+v", stats)
	}
	// Segment 0 survives its unlink via the open descriptor; segment 1
	// is lost whole; everything from the floor up is delivered.
	for i := 0; i < 40; i++ {
		seq := uint64(i)
		inLostSegment := seq >= segs[1].first && seq < segs[2].first
		e, ok := got[seq]
		if ok == inLostSegment {
			t.Fatalf("seq %d: delivered=%v, want %v", seq, ok, !inLostSegment)
		}
		if ok {
			if want := genEvent(i); !e.Time.Equal(want.Time) || e.Prefix != want.Prefix {
				t.Fatalf("seq %d: delivered record does not match", seq)
			}
		}
	}
}

// TestConcurrentTrimWhileTailing hammers one Writer with a concurrent
// appender, a retention loop, and a live tailer, under -race. Every
// scan must complete without damage (no skips, no abandoned segments,
// no torn reads) and deliver only intact records in order.
func TestConcurrentTrimWhileTailing(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const total = 1500
	var appended atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // appender
		defer wg.Done()
		defer close(done)
		for i := 0; i < total; i++ {
			e := genEvent(i)
			if _, err := w.Append(&e); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			appended.Store(uint64(i + 1))
		}
	}()
	wg.Add(1)
	go func() { // retention: keep trimming toward the append head
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if n := appended.Load(); n > 50 {
				if _, err := w.TrimTo(n - 50); err != nil {
					t.Errorf("trim: %v", err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // live tailer
		defer wg.Done()
		var from uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			var last uint64
			var any bool
			stats, err := Scan(dir, from, func(seq uint64, e *event.Event) error {
				if any && seq != last+1 {
					t.Errorf("scan from %d: seq %d after %d", from, seq, last)
					return ErrStop
				}
				want := genEvent(int(seq))
				if !e.Time.Equal(want.Time) || e.Prefix != want.Prefix || e.Type != want.Type {
					t.Errorf("seq %d: torn or corrupt record", seq)
					return ErrStop
				}
				last, any = seq, true
				return nil
			})
			if err != nil {
				t.Errorf("scan from %d: %v", from, err)
				return
			}
			if stats.Skipped != 0 || stats.Abandoned != 0 {
				t.Errorf("scan from %d reported damage: %+v", from, stats)
				return
			}
			if any {
				from = last + 1
			}
		}
	}()
	wg.Wait()
}

// TestOnAppendHook checks the wake hook: called once per successful
// append with the record's sequence, outside the writer lock (the
// callback calls back into the Writer, which would deadlock otherwise).
func TestOnAppendHook(t *testing.T) {
	dir := t.TempDir()
	var seqs []uint64
	var w *Writer
	var err error
	w, err = Open(dir, Options{OnAppend: func(seq uint64) {
		if next := w.NextSeq(); next != seq+1 { // re-entrant call must not deadlock
			t.Errorf("NextSeq inside hook = %d, want %d", next, seq+1)
		}
		seqs = append(seqs, seq)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 10)
	if len(seqs) != 10 {
		t.Fatalf("hook fired %d times, want 10", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("hook seq[%d] = %d", i, s)
		}
	}
}
