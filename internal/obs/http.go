package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler serves the registry over HTTP:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  the same metrics as one JSON object
//	/debug/pprof/  net/http/pprof (profile, heap, goroutine, ...)
//	/healthz       200 ok (liveness)
//
// Mount it on rexd's -metrics-addr; every path is read-only.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		var b strings.Builder
		r.WriteProm(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(b.String()))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves Handler(r) until the returned
// server is shut down. It returns once the listener is bound, so the
// caller can report the bound address (addr may end in :0). The server
// carries header/read/idle timeouts so a stalled scraper cannot pin
// connections; WriteTimeout stays generous because pprof profile
// captures legitimately stream for tens of seconds. Prefer a graceful
// srv.Shutdown over srv.Close at teardown so an in-flight scrape
// finishes.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{
		Handler:           Handler(r),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
