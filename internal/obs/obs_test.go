package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("rex_test_total", "a counter")
	g := r.NewGauge("rex_test_gauge", "a gauge")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Dec()
	g.Add(-2)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("rex_test_total", "")
	cv := r.NewCounterVec("rex_test_vec_total", "peer", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				cv.With(fmt.Sprintf("peer%d", i%2)).Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if got := cv.With("peer0").Value() + cv.With("peer1").Value(); got != 8000 {
		t.Errorf("vec total = %d, want 8000", got)
	}
}

func TestVecCardinalityBounded(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("rex_test_vec_total", "peer", "")
	for i := 0; i < maxLabelValues+100; i++ {
		cv.With(fmt.Sprintf("p%d", i)).Inc()
	}
	cv.vec.mu.RLock()
	n := len(cv.vec.children)
	cv.vec.mu.RUnlock()
	if n > maxLabelValues+1 {
		t.Errorf("children = %d, want <= %d", n, maxLabelValues+1)
	}
	if cv.With("other").Value() < 99 {
		t.Errorf("overflow bucket = %d, want >= 99", cv.With("other").Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("rex_test_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if want := 0.005 + 0.05 + 0.05 + 0.5 + 5; h.Sum() != want {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
	snap := h.snapshot()
	wantBuckets := []uint64{1, 2, 1, 1}
	for i, want := range wantBuckets {
		if snap.buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, snap.buckets[i], want)
		}
	}
	// Prometheus rendering is cumulative.
	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	for _, line := range []string{
		`rex_test_seconds_bucket{le="0.01"} 1`,
		`rex_test_seconds_bucket{le="0.1"} 3`,
		`rex_test_seconds_bucket{le="1"} 4`,
		`rex_test_seconds_bucket{le="+Inf"} 5`,
		`rex_test_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("prom output missing %q in:\n%s", line, out)
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	NewRegistry().NewHistogram("rex_test", "", []float64{1, 1})
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("rex_dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	r.NewCounter("rex_dup_total", "")
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("rex_c_total", "").Add(3)
	r.NewGauge("rex_g", "").Set(-2)
	r.NewCounterVec("rex_v_total", "peer", "").With("10.0.0.2").Add(7)
	r.NewHistogram("rex_h_seconds", "", []float64{1}).Observe(0.5)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back["rex_c_total"].(float64) != 3 {
		t.Errorf("counter = %v", back["rex_c_total"])
	}
	if back["rex_g"].(float64) != -2 {
		t.Errorf("gauge = %v", back["rex_g"])
	}
	if v := back["rex_v_total"].(map[string]any); v["10.0.0.2"].(float64) != 7 {
		t.Errorf("vec = %v", v)
	}
	h := back["rex_h_seconds"].(map[string]any)
	if h["count"].(float64) != 1 || h["sum"].(float64) != 0.5 {
		t.Errorf("hist = %v", h)
	}
}

func TestPromTextFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("rex_c_total", "counts things").Add(42)
	r.NewGaugeVec("rex_g", "phase", "gauges by phase").With("idle").Set(2)
	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	for _, line := range []string{
		"# HELP rex_c_total counts things",
		"# TYPE rex_c_total counter",
		"rex_c_total 42",
		"# TYPE rex_g gauge",
		`rex_g{phase="idle"} 2`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("rex_c_total", "").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "rex_c_total 9") {
		t.Errorf("/metrics:\n%s", out)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap["rex_c_total"].(float64) != 9 {
		t.Errorf("json = %v", snap)
	}
	if out := get("/healthz"); out != "ok\n" {
		t.Errorf("healthz = %q", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("pprof index:\n%s", out)
	}
}

func TestLogLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	logMu.Lock()
	oldOut, oldNow := logOut, logNow
	logMu.Unlock()
	oldLevel := LogLevel()
	SetLogOutput(&buf)
	logNow = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	defer func() {
		SetLogOutput(oldOut)
		SetLogLevel(oldLevel)
		logNow = oldNow
	}()

	SetLogLevel(Info)
	Logf(Debug, "test", "invisible")
	Logf(Warn, "test", "peer %s stalled", "10.0.0.2")
	out := buf.String()
	if strings.Contains(out, "invisible") {
		t.Error("debug line emitted at info level")
	}
	want := `ts=2026-08-05T12:00:00.000Z level=warn comp=test msg="peer 10.0.0.2 stalled"` + "\n"
	if out != want {
		t.Errorf("line = %q, want %q", out, want)
	}

	buf.Reset()
	SetLogLevel(Debug)
	Printer("legacy")("hello %d", 7)
	if !strings.Contains(buf.String(), `level=info comp=legacy msg="hello 7"`) {
		t.Errorf("printer line = %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": Debug, "Info": Info, "WARN": Warn, "error": Error, "warning": Warn} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bad level accepted")
	}
}
