package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level classifies a log line.
type Level int32

// Log levels, in increasing severity.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error") to a
// Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return Debug, nil
	case "info", "":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("unknown log level %q", s)
}

var (
	logMu    sync.Mutex
	logOut   io.Writer        = os.Stderr
	logLevel atomic.Int32     // default Debug==0? no: set in init
	logNow   func() time.Time = time.Now

	logLines = NewCounterVec("rex_log_lines_total", "level",
		"Structured log lines emitted, by level (suppressed lines not counted).")
)

func init() { logLevel.Store(int32(Info)) }

// SetLogOutput redirects the structured log (default os.Stderr).
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	logOut = w
	logMu.Unlock()
}

// SetLogLevel sets the minimum level that is emitted (default Info).
func SetLogLevel(l Level) { logLevel.Store(int32(l)) }

// LogLevel returns the current minimum level.
func LogLevel() Level { return Level(logLevel.Load()) }

// Logf emits one structured line:
//
//	ts=2026-08-05T17:04:05.123Z level=info comp=collector msg="session up peer=10.0.0.2"
//
// component names the subsystem; the formatted message is quoted so the
// line stays one key=value record however the message looks. Lines
// below the configured level are dropped before formatting.
func Logf(lv Level, component, format string, args ...any) {
	if lv < Level(logLevel.Load()) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	line := fmt.Sprintf("ts=%s level=%s comp=%s msg=%q\n",
		logNow().UTC().Format("2006-01-02T15:04:05.000Z07:00"), lv, component, msg)
	logLines.With(lv.String()).Inc()
	logMu.Lock()
	io.WriteString(logOut, line)
	logMu.Unlock()
}

// Printer adapts Logf to the legacy `func(format, args...)` hooks
// (collector.Config.Logf, fsm.ManagerConfig.Logf): every line logs at
// Info under the given component.
func Printer(component string) func(format string, args ...any) {
	return func(format string, args ...any) {
		Logf(Info, component, format, args...)
	}
}
