// Package obs is the observability layer: a process-wide registry of
// cheap, stdlib-only metrics (atomic counters, gauges, bounded
// histograms, and labeled vectors of each), an HTTP endpoint serving
// them as JSON and Prometheus-style text with net/http/pprof mounted
// alongside, and a leveled key=value event log.
//
// The paper's REX is an always-on monitor whose operators judged health
// from event-rate plots and session state (PAPER §II, Fig. 8); this
// package is how our rexd exposes the same internals — a stalled peer,
// a silently-skipped MRT record, a bloated window — without guessing
// from the output. Metric names are stable and namespaced rex_*; see
// DESIGN.md §8 ("Observability") for the full catalog.
//
// Hot-path cost is one atomic add per observation: instrumented
// packages declare their metrics once at init against the Default
// registry and touch only the atomics afterwards. No dependencies
// outside the standard library.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use Default, where every package in this repository
// registers).
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
	names   []string // registration order
}

// Default is the process-wide registry all rex_* metrics live in.
var Default = NewRegistry()

// NewRegistry returns an empty registry (tests that want isolation
// build their own).
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// metric is anything the registry can render.
type metric interface {
	metricType() string // "counter", "gauge", "histogram"
	help() string
	// samples returns the (labelValue, numeric) pairs; an unlabeled
	// metric returns one pair with an empty label value.
	samples() []sample
}

type sample struct {
	label string
	value float64
	hist  *histSnapshot // non-nil for histogram samples
}

type histSnapshot struct {
	bounds  []float64
	buckets []uint64 // per-bound, non-cumulative; len(bounds)+1 with overflow last
	count   uint64
	sum     float64
}

func (r *Registry) register(name, help string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.metrics[name] = m
	r.names = append(r.names, name)
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	helpText string
	v        atomic.Uint64
}

// NewCounter registers a counter in r.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{helpText: help}
	r.register(name, help, c)
	return c
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricType() string { return "counter" }
func (c *Counter) help() string       { return c.helpText }
func (c *Counter) samples() []sample  { return []sample{{value: float64(c.v.Load())}} }

// Gauge is a settable int64.
type Gauge struct {
	helpText string
	v        atomic.Int64
}

// NewGauge registers a gauge in r.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{helpText: help}
	r.register(name, help, g)
	return g
}

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) help() string       { return g.helpText }
func (g *Gauge) samples() []sample  { return []sample{{value: float64(g.v.Load())}} }

// Histogram is a bounded-bucket distribution: observations land in the
// first bucket whose upper bound is >= the value, or the overflow
// bucket. Bounds are fixed at construction, so memory is bounded no
// matter how hot the path.
type Histogram struct {
	helpText string
	bounds   []float64
	buckets  []atomic.Uint64 // len(bounds)+1; last is overflow (+Inf)
	count    atomic.Uint64
	sumBits  atomic.Uint64 // float64 bits, CAS-updated
}

// DurationBuckets is a general-purpose latency scale in seconds,
// 10µs … ~10s.
var DurationBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10,
}

// NewHistogram registers a histogram in r. bounds must be sorted
// ascending; nil selects DurationBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{helpText: help, bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, help, h)
	return h
}

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, help, bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nxt) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) snapshot() *histSnapshot {
	s := &histSnapshot{bounds: h.bounds, buckets: make([]uint64, len(h.buckets))}
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	// Load count/sum after buckets so count >= sum(buckets) never
	// renders a negative overflow.
	s.count = h.count.Load()
	s.sum = h.Sum()
	return s
}

func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) help() string       { return h.helpText }
func (h *Histogram) samples() []sample  { return []sample{{hist: h.snapshot()}} }

// maxLabelValues bounds vector cardinality; past it, new label values
// collapse into "other" so a misbehaving peer set cannot grow the
// registry without bound.
const maxLabelValues = 1024

// vec is the shared labeled-children machinery.
type vec[T any] struct {
	label    string
	mu       sync.RWMutex
	children map[string]*T
	order    []string
	make     func() *T
}

func (v *vec[T]) with(value string) *T {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c
	}
	if len(v.children) >= maxLabelValues {
		if c, ok := v.children["other"]; ok {
			return c
		}
		value = "other"
	}
	c = v.make()
	v.children[value] = c
	v.order = append(v.order, value)
	return c
}

func (v *vec[T]) each(f func(label string, c *T)) {
	v.mu.RLock()
	labels := make([]string, len(v.order))
	copy(labels, v.order)
	v.mu.RUnlock()
	sort.Strings(labels)
	for _, l := range labels {
		v.mu.RLock()
		c := v.children[l]
		v.mu.RUnlock()
		f(l, c)
	}
}

// CounterVec is a family of counters keyed by one label.
type CounterVec struct {
	helpText string
	vec      vec[Counter]
}

// NewCounterVec registers a counter family in r; label is the
// Prometheus label key (e.g. "peer").
func (r *Registry) NewCounterVec(name, label, help string) *CounterVec {
	cv := &CounterVec{helpText: help}
	cv.vec = vec[Counter]{label: label, children: make(map[string]*Counter), make: func() *Counter { return &Counter{} }}
	r.register(name, help, cv)
	return cv
}

// NewCounterVec registers a counter family in the Default registry.
func NewCounterVec(name, label, help string) *CounterVec {
	return Default.NewCounterVec(name, label, help)
}

// With returns the counter for one label value, creating it on first
// use.
func (cv *CounterVec) With(value string) *Counter { return cv.vec.with(value) }

func (cv *CounterVec) metricType() string { return "counter" }
func (cv *CounterVec) help() string       { return cv.helpText }
func (cv *CounterVec) samples() []sample {
	var out []sample
	cv.vec.each(func(l string, c *Counter) {
		out = append(out, sample{label: l, value: float64(c.Value())})
	})
	return out
}

// GaugeVec is a family of gauges keyed by one label.
type GaugeVec struct {
	helpText string
	vec      vec[Gauge]
}

// NewGaugeVec registers a gauge family in r.
func (r *Registry) NewGaugeVec(name, label, help string) *GaugeVec {
	gv := &GaugeVec{helpText: help}
	gv.vec = vec[Gauge]{label: label, children: make(map[string]*Gauge), make: func() *Gauge { return &Gauge{} }}
	r.register(name, help, gv)
	return gv
}

// NewGaugeVec registers a gauge family in the Default registry.
func NewGaugeVec(name, label, help string) *GaugeVec {
	return Default.NewGaugeVec(name, label, help)
}

// With returns the gauge for one label value, creating it on first use.
func (gv *GaugeVec) With(value string) *Gauge { return gv.vec.with(value) }

func (gv *GaugeVec) metricType() string { return "gauge" }
func (gv *GaugeVec) help() string       { return gv.helpText }
func (gv *GaugeVec) samples() []sample {
	var out []sample
	gv.vec.each(func(l string, g *Gauge) {
		out = append(out, sample{label: l, value: float64(g.Value())})
	})
	return out
}

// labelKey returns the label key for a metric's vector, or "".
func labelKey(m metric) string {
	switch v := m.(type) {
	case *CounterVec:
		return v.vec.label
	case *GaugeVec:
		return v.vec.label
	}
	return ""
}

// Snapshot renders every metric as a JSON-encodable map: plain metrics
// to numbers, vectors to {labelValue: number}, histograms to
// {count, sum, buckets: {upperBound: count}}.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	r.mu.RUnlock()
	out := make(map[string]any, len(names))
	for _, name := range names {
		r.mu.RLock()
		m := r.metrics[name]
		r.mu.RUnlock()
		ss := m.samples()
		switch {
		case len(ss) == 1 && ss[0].hist != nil:
			h := ss[0].hist
			buckets := make(map[string]uint64, len(h.buckets))
			for i, b := range h.bounds {
				buckets[formatBound(b)] = h.buckets[i]
			}
			buckets["+Inf"] = h.buckets[len(h.buckets)-1]
			out[name] = map[string]any{"count": h.count, "sum": h.sum, "buckets": buckets}
		case labelKey(m) != "":
			byLabel := make(map[string]float64, len(ss))
			for _, s := range ss {
				byLabel[s.label] = s.value
			}
			out[name] = byLabel
		case len(ss) == 1:
			out[name] = ss[0].value
		}
	}
	return out
}

// WriteProm renders the registry as Prometheus text exposition format
// into b.
func (r *Registry) WriteProm(b *strings.Builder) {
	r.mu.RLock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.RLock()
		m := r.metrics[name]
		r.mu.RUnlock()
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, m.help(), name, m.metricType())
		label := labelKey(m)
		for _, s := range m.samples() {
			if s.hist != nil {
				writePromHist(b, name, s.hist)
				continue
			}
			if label == "" {
				fmt.Fprintf(b, "%s %s\n", name, formatValue(s.value))
			} else {
				fmt.Fprintf(b, "%s{%s=%q} %s\n", name, label, s.label, formatValue(s.value))
			}
		}
	}
}

func writePromHist(b *strings.Builder, name string, h *histSnapshot) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
	}
	cum += h.buckets[len(h.buckets)-1]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(h.sum))
	fmt.Fprintf(b, "%s_count %d\n", name, h.count)
}

func formatBound(v float64) string { return fmt.Sprintf("%g", v) }

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
