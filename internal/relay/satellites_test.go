package relay

import (
	"net"
	"testing"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/event"
)

// drainReceiver discards wrapped snapshots until the channel closes, in
// the background; returns a done channel.
func drainReceiver(r *Receiver) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range r.Snapshots() {
		}
	}()
	return done
}

// TestRosterDedupe: a duplicated -expect-feeds entry used to duplicate
// the merge-order list, making the gate check the same feed twice and
// Statuses emit duplicate rows.
func TestRosterDedupe(t *testing.T) {
	rcv := NewReceiver(ReceiverConfig{
		Pipeline:    pipeline.New(fleetConfig()),
		ExpectFeeds: []string{"feed-a", "feed-a", "feed-b", "feed-a"},
		StaleAfter:  time.Hour,
	})
	done := drainReceiver(rcv)
	sts := rcv.Statuses()
	if len(sts) != 2 {
		t.Fatalf("%d status rows for roster {a,a,b,a}, want 2: %+v", len(sts), sts)
	}
	if sts[0].ID != "feed-a" || sts[1].ID != "feed-b" {
		t.Fatalf("status IDs %q,%q", sts[0].ID, sts[1].ID)
	}
	rcv.Close()
	<-done
}

// TestEventQueueRetention pins the head-indexed FIFO's allocation
// behavior: a long-lived feed in steady push/pop churn must not strand
// released-event capacity (the old `queue = queue[1:]` re-slice walked
// the backing array forward forever, so every refill reallocated).
func TestEventQueueRetention(t *testing.T) {
	events := fleetParts(t, 1, 64)["feed-00"]
	var q eventQueue
	// Warm up: fill and drain once so the backing array reaches its
	// steady size, then compaction keeps reusing it.
	for i, e := range events {
		q.push(queuedEvent{seq: uint64(i), e: e})
	}
	for q.len() > 0 {
		q.pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i, e := range events {
			q.push(queuedEvent{seq: uint64(i), e: e})
			q.pop()
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state push/pop allocates %.1f/run, want 0", allocs)
	}
	if cap(q.buf) > 4*len(events) {
		t.Fatalf("backing array grew to %d for %d-event churn", cap(q.buf), len(events))
	}
}

// TestEventQueuePopReleasesReferences: popped slots are zeroed so the
// buffer never pins event attributes past release.
func TestEventQueuePopReleasesReferences(t *testing.T) {
	events := fleetParts(t, 1, 8)["feed-00"]
	var q eventQueue
	for i, e := range events {
		q.push(queuedEvent{seq: uint64(i), e: e})
	}
	q.pop()
	q.pop()
	for i := 0; i < q.head; i++ {
		if q.buf[i].e.Attrs != nil || q.buf[i].e.Prefix.IsValid() {
			t.Fatalf("popped slot %d still holds event data: %+v", i, q.buf[i].e)
		}
	}
}

// TestAckDuringDuplicateReplay: a reconnecting feed replaying a long
// run below the cursor must receive progress acks mid-run — the old
// code skipped ack pacing for duplicates, so the feed could not advance
// its trim floor until its next heartbeat, which it only sends once
// caught up.
func TestAckDuringDuplicateReplay(t *testing.T) {
	const ackEvery = 4
	events := fleetParts(t, 1, 16)["feed-00"]
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcv := NewReceiver(ReceiverConfig{
		Pipeline:    pipeline.New(fleetConfig()),
		ExpectFeeds: []string{"feed-00"},
		StaleAfter:  time.Hour,
		AckEvery:    ackEvery,
		ReadTimeout: 2 * time.Second,
	})
	go rcv.Serve(ln)
	done := drainReceiver(rcv)

	send := func(c net.Conn, seq int, e *event.Event) {
		t.Helper()
		frame, err := appendEventFrame(nil, uint64(seq), e)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	readAck := func(c net.Conn) uint64 {
		t.Helper()
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		kind, p, err := readFrame(c, nil)
		if err != nil || kind != kindAck {
			t.Fatalf("expected mid-replay ack, got kind=%d err=%v", kind, err)
		}
		next, err := parseAck(p)
		if err != nil {
			t.Fatal(err)
		}
		return next
	}

	// First session establishes the cursor at 8.
	c, _ := helloExchange(t, ln.Addr().String(), "feed-00")
	for i := 0; i < 8; i++ {
		send(c, i, &events[i])
	}
	if got := readAck(c); got != 4 {
		t.Fatalf("first paced ack = %d, want 4", got)
	}
	if got := readAck(c); got != 8 {
		t.Fatalf("second paced ack = %d, want 8", got)
	}
	c.Close()

	// Second session replays the whole run below the cursor: every
	// frame is a duplicate, and acks must still arrive every AckEvery
	// frames, pinned at the cursor.
	c2, next := helloExchange(t, ln.Addr().String(), "feed-00")
	if next != 8 {
		t.Fatalf("resume cursor = %d, want 8", next)
	}
	for i := 0; i < 8; i++ {
		send(c2, i, &events[i])
		if (i+1)%ackEvery == 0 {
			if got := readAck(c2); got != 8 {
				t.Fatalf("mid-replay ack after %d dups = %d, want cursor 8", i+1, got)
			}
		}
	}
	sts := rcv.Statuses()
	if sts[0].Duplicates != 8 || sts[0].Received != 8 {
		t.Fatalf("dups=%d received=%d, want 8/8", sts[0].Duplicates, sts[0].Received)
	}
	c2.Close()
	rcv.Close()
	<-done
}

// TestEverHeardStatus: the roster gate's "never said hello" state is
// observable — false for a rostered feed that never connected, true
// from the first hello onward, surviving disconnect.
func TestEverHeardStatus(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcv := NewReceiver(ReceiverConfig{
		Pipeline:    pipeline.New(fleetConfig()),
		ExpectFeeds: []string{"feed-00", "feed-01"},
		StaleAfter:  time.Hour,
		ReadTimeout: 2 * time.Second,
	})
	go rcv.Serve(ln)
	done := drainReceiver(rcv)

	for _, st := range rcv.Statuses() {
		if st.EverHeard {
			t.Fatalf("feed %s EverHeard before any hello", st.ID)
		}
	}
	c, _ := helloExchange(t, ln.Addr().String(), "feed-00")
	sts := rcv.Statuses()
	if !sts[0].EverHeard || sts[1].EverHeard {
		t.Fatalf("after feed-00 hello: %+v", sts)
	}
	c.Close()
	// EverHeard survives the disconnect: "came up and died", not
	// "never came up".
	deadline := time.Now().Add(2 * time.Second)
	for {
		sts = rcv.Statuses()
		if !sts[0].Connected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("feed-00 never marked disconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sts[0].EverHeard {
		t.Fatal("EverHeard reset by disconnect")
	}
	rcv.Close()
	<-done
}
