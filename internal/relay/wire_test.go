package relay

import (
	"bytes"
	"net"
	"testing"
	"time"

	"rex/internal/core/pipeline"
)

func TestFrameRoundTrip(t *testing.T) {
	events := fleetParts(t, 1, 8)["feed-00"]

	var wire []byte
	wire = appendHello(wire, "collector-7")
	wire = appendAck(wire, 42)
	hbAt := time.Date(2003, 8, 1, 2, 3, 4, 5, time.UTC)
	wire = appendHeartbeat(wire, 99, hbAt)
	wire = appendHeartbeat(wire, 7, time.Time{})
	for i := range events {
		var err error
		wire, err = appendEventFrame(wire, uint64(i), &events[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	r := bytes.NewReader(wire)
	buf := make([]byte, 0, 64)

	kind, p, err := readFrame(r, buf)
	if err != nil || kind != kindHello {
		t.Fatalf("hello frame: kind=%d err=%v", kind, err)
	}
	if id, err := parseHello(p); err != nil || id != "collector-7" {
		t.Fatalf("parseHello = %q, %v", id, err)
	}

	kind, p, err = readFrame(r, buf)
	if err != nil || kind != kindAck {
		t.Fatalf("ack frame: kind=%d err=%v", kind, err)
	}
	if next, err := parseAck(p); err != nil || next != 42 {
		t.Fatalf("parseAck = %d, %v", next, err)
	}

	kind, p, err = readFrame(r, buf)
	if err != nil || kind != kindHeartbeat {
		t.Fatalf("heartbeat frame: kind=%d err=%v", kind, err)
	}
	next, wm, err := parseHeartbeat(p)
	if err != nil || next != 99 || !wm.Equal(hbAt) {
		t.Fatalf("parseHeartbeat = %d, %v, %v", next, wm, err)
	}
	kind, p, err = readFrame(r, buf)
	if err != nil || kind != kindHeartbeat {
		t.Fatalf("zero heartbeat frame: kind=%d err=%v", kind, err)
	}
	if _, wm, err := parseHeartbeat(p); err != nil || !wm.Equal(time.Unix(0, 0).UTC()) {
		t.Fatalf("zero watermark round-trip = %v, %v", wm, err)
	}

	for i := range events {
		kind, p, err = readFrame(r, buf)
		if err != nil || kind != kindEvent {
			t.Fatalf("event frame %d: kind=%d err=%v", i, kind, err)
		}
		seq, e, err := parseEventFrame(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("event %d seq = %d", i, seq)
		}
		if !e.Time.Equal(events[i].Time) || e.Peer != events[i].Peer || e.Type != events[i].Type {
			t.Fatalf("event %d round-trip mismatch: %+v != %+v", i, e, events[i])
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes", r.Len())
	}
}

func TestReadFrameRejectsDamage(t *testing.T) {
	good := appendAck(nil, 7)

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xFF // payload bit flip
	if _, _, err := readFrame(bytes.NewReader(flipped), nil); err == nil {
		t.Fatal("corrupt payload accepted")
	}

	oversize := append([]byte(nil), good...)
	oversize[1] = 0xFF // length field now claims ~4GB
	if _, _, err := readFrame(bytes.NewReader(oversize), nil); err == nil {
		t.Fatal("oversized length accepted")
	}

	for cut := 1; cut < len(good); cut++ {
		if _, _, err := readFrame(bytes.NewReader(good[:cut]), nil); err == nil {
			t.Fatalf("truncated frame (%d/%d bytes) accepted", cut, len(good))
		}
	}
}

// helloExchange dials, says hello, and returns the conn plus the
// receiver's resume cursor.
func helloExchange(t *testing.T, addr, id string) (net.Conn, uint64) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(appendHello(nil, id)); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	kind, p, err := readFrame(c, nil)
	if err != nil || kind != kindAck {
		t.Fatalf("handshake ack: kind=%d err=%v", kind, err)
	}
	next, err := parseAck(p)
	if err != nil {
		t.Fatal(err)
	}
	return c, next
}

// TestReceiverDuplicatesAndResume drives the protocol by hand:
// duplicates are counted and dropped (never re-released), a forward
// jump is accepted, and a reconnect resumes from the acked cursor.
func TestReceiverDuplicatesAndResume(t *testing.T) {
	events := fleetParts(t, 1, 8)["feed-00"]
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcv := NewReceiver(ReceiverConfig{
		Pipeline:    pipeline.New(fleetConfig()),
		ExpectFeeds: []string{"feed-00"},
		StaleAfter:  time.Hour,
		AckEvery:    1,
		ReadTimeout: 2 * time.Second,
	})
	go rcv.Serve(ln)
	var snaps []Snapshot
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for s := range rcv.Snapshots() {
			snaps = append(snaps, s)
		}
	}()

	send := func(c net.Conn, seq int) {
		t.Helper()
		frame, err := appendEventFrame(nil, uint64(seq), &events[seq])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	readAck := func(c net.Conn) uint64 {
		t.Helper()
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		kind, p, err := readFrame(c, nil)
		if err != nil || kind != kindAck {
			t.Fatalf("ack: kind=%d err=%v", kind, err)
		}
		next, err := parseAck(p)
		if err != nil {
			t.Fatal(err)
		}
		return next
	}

	c, next := helloExchange(t, ln.Addr().String(), "feed-00")
	if next != 0 {
		t.Fatalf("fresh cursor = %d", next)
	}
	send(c, 0)
	if got := readAck(c); got != 1 {
		t.Fatalf("ack after seq 0 = %d", got)
	}
	send(c, 0) // duplicate: dropped, but still acked at the cursor so
	// a replaying feed can advance its trim floor mid-run
	if got := readAck(c); got != 1 {
		t.Fatalf("ack after dup = %d, want cursor 1", got)
	}
	send(c, 1)
	if got := readAck(c); got != 2 {
		t.Fatalf("ack after dup+seq1 = %d", got)
	}
	c.Close()

	// Reconnect: the cursor survives the connection.
	c2, next := helloExchange(t, ln.Addr().String(), "feed-00")
	if next != 2 {
		t.Fatalf("resume cursor = %d, want 2", next)
	}
	send(c2, 2)
	if got := readAck(c2); got != 3 {
		t.Fatalf("ack after resume = %d", got)
	}
	// Forward jump (upstream journal damage): accepted, cursor follows.
	send(c2, 5)
	if got := readAck(c2); got != 6 {
		t.Fatalf("ack after jump = %d", got)
	}
	c2.Close()

	// A stranger is rejected when the roster is fixed.
	cs, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cs.Write(appendHello(nil, "stranger"))
	cs.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readFrame(cs, nil); err == nil {
		t.Fatal("stranger got a frame back")
	}
	cs.Close()

	rcv.Close()
	<-drained
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	final := snaps[len(snaps)-1].Feeds
	if len(final) != 1 || final[0].ID != "feed-00" {
		t.Fatalf("feed metadata: %+v", final)
	}
	if final[0].Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", final[0].Duplicates)
	}
	if final[0].Received != 4 {
		t.Errorf("received = %d, want 4", final[0].Received)
	}
	if final[0].NextSeq != 6 {
		t.Errorf("nextSeq = %d, want 6", final[0].NextSeq)
	}
}
