package relay

import (
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/event"
	"rex/internal/journal"
)

// TestDegradedModeSurvivors kills one feed of two mid-run and proves
// graceful degradation: the dead feed flips stale (metric + snapshot
// metadata), analysis continues live on the survivor, and the final
// output is byte-identical to an offline merge of exactly what each
// feed delivered — the receiver never synthesizes withdrawals for the
// dead feed's routes; they age out upstream via graceful-restart
// retention.
func TestDegradedModeSurvivors(t *testing.T) {
	parts := fleetParts(t, 2, 1000)
	a, b := parts["feed-00"], parts["feed-01"]
	bTrunc := b[:len(b)/2]
	aHalf := len(a) / 2

	root := t.TempDir()
	dirA := filepath.Join(root, "feed-00")
	var fa *Feed
	wa, err := journal.Open(dirA, journal.Options{
		Fsync: journal.FsyncNever,
		// OnAppend → Wake: the live-collector wiring, exercised end to
		// end (appends during phase two nudge the caught-up feed).
		OnAppend: func(uint64) {
			if fa != nil {
				fa.Wake()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < aHalf; i++ {
		if _, err := wa.Append(&a[i]); err != nil {
			t.Fatal(err)
		}
	}
	dirB := writeJournal(t, root, "feed-01", bTrunc)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcv := NewReceiver(ReceiverConfig{
		Pipeline:    pipeline.New(fleetConfig()),
		ExpectFeeds: []string{"feed-00", "feed-01"},
		StaleAfter:  250 * time.Millisecond,
		AckEvery:    16,
		ReadTimeout: 400 * time.Millisecond,
	})
	go rcv.Serve(ln)
	var snaps []Snapshot
	var pipe []pipeline.Snapshot
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for s := range rcv.Snapshots() {
			snaps = append(snaps, s)
			pipe = append(pipe, s.Snapshot)
		}
	}()

	feedCfg := func(id, dir string) FeedConfig {
		return FeedConfig{
			ID: id, Dir: dir, Addr: ln.Addr().String(),
			MinBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
			HeartbeatEvery: 25 * time.Millisecond, AckTimeout: 250 * time.Millisecond,
		}
	}
	fa = NewFeed(feedCfg("feed-00", dirA))
	fb := NewFeed(feedCfg("feed-01", dirB))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); fa.Run() }()
	go func() { defer wg.Done(); fb.Run() }()

	waitAcked := func(f *Feed, id string, want uint64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for f.Acked() < want {
			if time.Now().After(deadline) {
				t.Fatalf("feed %s acked %d/%d before deadline", id, f.Acked(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitAcked(fa, "feed-00", uint64(aHalf))
	waitAcked(fb, "feed-01", uint64(len(bTrunc)))

	// Phase two: feed-01 dies for good.
	fb.Close()
	staleDeadline := time.Now().Add(30 * time.Second)
	for mFeedStale.With("feed-01").Value() != 1 {
		if time.Now().After(staleDeadline) {
			t.Fatal("rex_relay_feed_stale never flipped for the dead feed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The survivor keeps collecting; analysis must follow it live even
	// though the dead feed will never advance its watermark again.
	for i := aHalf; i < len(a); i++ {
		if _, err := wa.Append(&a[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wa.Close(); err != nil {
		t.Fatal(err)
	}
	waitAcked(fa, "feed-00", uint64(len(a)))

	fa.Close()
	wg.Wait()
	rcv.Close()
	<-drained

	// Ground truth: everything each feed actually delivered, merged
	// offline. Byte-identity proves the survivor's analysis is exact
	// AND that nothing was fabricated for the dead feed.
	want := renderSnapshots(pipeline.Replay(MergeStreams(map[string]event.Stream{
		"feed-00": a, "feed-01": bTrunc,
	}), fleetConfig()))
	if got := renderSnapshots(pipe); got != want {
		t.Fatalf("degraded run diverged from offline merge: %s", firstDiff(got, want))
	}

	// Snapshot metadata must expose the degradation while it happened.
	sawDegraded := false
	for _, s := range snaps {
		var a0, b1 *FeedStatus
		for i := range s.Feeds {
			switch s.Feeds[i].ID {
			case "feed-00":
				a0 = &s.Feeds[i]
			case "feed-01":
				b1 = &s.Feeds[i]
			}
		}
		if a0 == nil || b1 == nil {
			t.Fatalf("snapshot missing feed metadata: %+v", s.Feeds)
		}
		if b1.Stale && !a0.Stale {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Error("no snapshot showed feed-01 stale with feed-00 live")
	}
	final := snaps[len(snaps)-1].Feeds
	for _, fs := range final {
		switch fs.ID {
		case "feed-00":
			if fs.Received != uint64(len(a)) {
				t.Errorf("survivor received %d/%d", fs.Received, len(a))
			}
		case "feed-01":
			if !fs.Stale {
				t.Error("dead feed not stale in final snapshot")
			}
			if fs.Received != uint64(len(bTrunc)) {
				t.Errorf("dead feed received %d, want %d — events fabricated or lost", fs.Received, len(bTrunc))
			}
		}
	}
}
