package relay

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/obs"
	"rex/internal/rib"
)

// Analysis-node durability. With ReceiverConfig.Dir set, the receiver
// keeps a merged-stream journal and atomic checkpoints in that
// directory so a restarted analysis node recovers like a collector —
// from local disk plus a bounded resend — instead of refetching every
// feed from sequence zero and re-emitting the whole history:
//
//   - Release path: every event the merge gate releases is appended to
//     the journal (in release order — the MergeStreams order) before it
//     reaches the pipeline, and each feed's released cursor/watermark
//     advance with the pop.
//   - Checkpoint: under emitMu (so no release can interleave) the
//     journal position, pipeline trigger state (TriggerQuery), shadow
//     route tables, and per-feed released cursors are captured as one
//     consistent cut and written atomically (internal/journal
//     checkpoint v2). Only then are the released cursors promoted to
//     the durable floor the acks advertise.
//   - Acks: while durability is on, every ack — the handshake resume
//     ack included — carries the feed's durable cursor, never the
//     in-memory one. Feeds trim their journals to acks and resume scans
//     from the handshake ack, so the receiver must not advertise state
//     a crash could forget. The cost is bounded: a reconnecting feed
//     resends at most one checkpoint interval of events, which the
//     dedup cursor drops (and still acks, so the feed's trim floor
//     keeps moving).
//   - Recovery: the newest checkpoint restores cursors, trigger state,
//     and tables; the journal below the checkpoint replays silently
//     (restored triggers mean no event advances the clock, so no tick
//     or spike re-fires for stream positions the crashed process
//     already emitted); the orphan journal tail above the checkpoint is
//     discarded — merged records carry no feed attribution, so they
//     cannot advance cursors, and the feeds still hold them durably
//     below their un-acked tails.
//
// Replay-suffix correctness for the shadow tables: the checkpoint
// tables are the state at NextSeq, and replay re-applies
// [ReplayLow, NextSeq) on top. For every key the suffix touches, the
// last suffix write is by definition the key's state at NextSeq;
// untouched keys keep their checkpoint value. Transient mid-replay
// regressions are invisible because replay emits nothing.

// relayTimeIndexStride matches the collector durability tier: one
// (sequence, event-time) sample every 64 records bounds how far below
// the true window start the replay floor can land.
const relayTimeIndexStride = 64

// RecoveryStats summarizes what a durable receiver rebuilt at startup.
type RecoveryStats struct {
	// HadCheckpoint is false on a cold start (empty or checkpoint-less
	// directory).
	HadCheckpoint bool
	// Truncated counts orphan journal records discarded above the
	// checkpoint floor: they carry no feed attribution, so the receiver
	// drops them and lets the feeds resend from the durable cursors.
	Truncated uint64
	// Replayed counts journal records re-ingested silently to rebuild
	// the analysis window.
	Replayed uint64
	// RestoredRoutes counts routes restored from the checkpoint tables.
	RestoredRoutes int
	// ResumeSeq is the merged-journal sequence the writer resumed at.
	ResumeSeq uint64
}

// persister is the receiver's durability sidecar: the merged-stream
// journal writer, its time index (replay floors), and the shadow route
// table the checkpoint's Peers section is rendered from. All fields are
// guarded by Receiver.emitMu — the release path and the checkpoint are
// its only users, and both hold it.
type persister struct {
	dir    string
	window time.Duration

	w  *journal.Writer
	ix *journal.TimeIndex

	// table shadows the released stream's per-peer route state. The
	// receiver holds no RIB of its own; this is just enough state to
	// seed the pipeline's TAMP tables after a restart, mirroring the
	// collector checkpoint's Peers section.
	table map[netip.Addr]map[netip.Prefix]*rib.Route

	stats RecoveryStats
}

// RecoveryStats reports what startup recovery rebuilt; ok is false for
// a memory-only receiver.
func (r *Receiver) RecoveryStats() (RecoveryStats, bool) {
	if r.pers == nil {
		return RecoveryStats{}, false
	}
	return r.pers.stats, true
}

// openDurability runs the recovery sequence against cfg.Dir and leaves
// the receiver ready to journal: load the newest checkpoint, drop the
// orphan journal tail above it, restore cursors/tables/triggers, replay
// the window suffix silently, and reopen the journal at the resume
// sequence. Called from OpenReceiver before any goroutine starts, so no
// locking is needed beyond the pipeline's own.
func (r *Receiver) openDurability() error {
	cfg := r.cfg
	p := cfg.Pipeline
	ps := &persister{
		dir:    cfg.Dir,
		window: cfg.Window,
		ix:     journal.NewTimeIndex(relayTimeIndexStride),
		table:  map[netip.Addr]map[netip.Prefix]*rib.Route{},
	}

	ckpt, err := journal.LoadLatestCheckpoint(cfg.Dir)
	if err != nil {
		return fmt.Errorf("load checkpoint: %w", err)
	}
	var floor uint64
	if ckpt != nil {
		floor = ckpt.NextSeq
	}
	truncated, err := journal.TruncateFrom(cfg.Dir, floor)
	if err != nil {
		return fmt.Errorf("truncate orphan tail: %w", err)
	}
	ps.stats.Truncated = truncated
	if truncated > 0 {
		obs.Logf(obs.Info, "relay",
			"dropped %d orphan journal records above checkpoint floor %d; feeds will resend them",
			truncated, floor)
	}

	p.BeginRecovery()
	defer p.EndRecovery()

	if ckpt != nil {
		ps.stats.HadCheckpoint = true
		now := time.Now()
		for i := range ckpt.Feeds {
			fc := &ckpt.Feeds[i]
			f := r.feeds[fc.ID]
			if f == nil {
				if len(cfg.ExpectFeeds) > 0 {
					// Dropped from the roster since the checkpoint. Its
					// released events are merged below NextSeq already;
					// there is nothing to resume.
					continue
				}
				f = &feedState{id: fc.ID, lastHeard: now}
				r.feeds[fc.ID] = f
				r.order = append(r.order, fc.ID)
				mFeedStale.With(fc.ID).Set(0)
				mFeedConnected.With(fc.ID).Set(0)
			}
			f.nextSeq = fc.NextSeq
			f.released = fc.NextSeq
			f.durable = fc.NextSeq
			f.watermark = fc.Watermark
			f.relWM = fc.Watermark
			mFeedNextSeq.With(fc.ID).Set(int64(fc.NextSeq))
			mDurableSeq.With(fc.ID).Set(int64(fc.NextSeq))
		}
		sort.Strings(r.order)
		for i := range ckpt.Peers {
			pt := &ckpt.Peers[i]
			m := make(map[netip.Prefix]*rib.Route, len(pt.Routes))
			for _, rt := range pt.Routes {
				m[rt.Prefix] = rt
			}
			ps.table[pt.Peer] = m
		}
		ps.stats.RestoredRoutes = ckpt.RouteCount()
		for _, e := range ckpt.SeedEvents() {
			p.Seed(*e)
		}
		if ckpt.Pipe != nil {
			p.RestoreTriggers(pipeline.TriggerState{
				Clock:     ckpt.Pipe.Clock,
				NextTick:  ckpt.Pipe.NextTick,
				CurBucket: ckpt.Pipe.CurBucket,
				LastSpike: ckpt.Pipe.LastSpike,
			})
		}
		obs.Logf(obs.Info, "relay",
			"checkpoint seq %d: restored %d feed cursors, %d routes (taken %s)",
			ckpt.NextSeq, len(ckpt.Feeds), ckpt.RouteCount(),
			ckpt.TakenAt.Format(time.RFC3339))
	}

	st, err := journal.Recover(cfg.Dir, func(seq uint64, e *event.Event) error {
		p.Ingest(*e)
		ps.ix.Observe(seq, e.Time)
		ps.apply(e)
		return nil
	})
	if err != nil {
		return fmt.Errorf("journal replay: %w", err)
	}
	ps.stats.Replayed = st.Replayed
	mRecoveredEvents.Add(st.Replayed)
	if st.Replayed > 0 {
		obs.Logf(obs.Info, "relay",
			"journal replayed %d merged events from seq %d", st.Replayed, st.ReplayFrom)
	}

	w, err := journal.Open(cfg.Dir, journal.Options{Fsync: cfg.Fsync, StartSeq: st.EndSeq})
	if err != nil {
		return fmt.Errorf("journal open: %w", err)
	}
	ps.w = w
	ps.stats.ResumeSeq = st.EndSeq
	r.pers = ps
	obs.Logf(obs.Info, "relay", "merged journal open in %s at seq %d", cfg.Dir, st.EndSeq)
	return nil
}

// apply folds one released event into the shadow route table.
func (ps *persister) apply(e *event.Event) {
	switch e.Type {
	case event.Announce:
		t := ps.table[e.Peer]
		if t == nil {
			t = map[netip.Prefix]*rib.Route{}
			ps.table[e.Peer] = t
		}
		t[e.Prefix] = &rib.Route{Prefix: e.Prefix, Peer: e.Peer, Attrs: e.Attrs, LearnedAt: e.Time}
	case event.Withdraw:
		if t := ps.table[e.Peer]; t != nil {
			delete(t, e.Prefix)
			if len(t) == 0 {
				delete(ps.table, e.Peer)
			}
		}
	}
}

// journalBatch appends a released batch to the merged journal, in
// release order, before it reaches the pipeline. Caller holds emitMu. A
// write error is loud but not fatal — the receiver keeps analyzing
// (availability over durability) while the failure keeps checkpoints
// from advancing the durable floor past whatever did land.
func (r *Receiver) journalBatch(batch []event.Event) {
	ps := r.pers
	for i := range batch {
		e := &batch[i]
		seq, err := ps.w.Append(e)
		if err != nil {
			mJournalErrors.Inc()
			obs.Logf(obs.Error, "relay", "merged journal append: %v", err)
			continue
		}
		ps.ix.Observe(seq, e.Time)
		ps.apply(e)
		mJournaled.Inc()
	}
}

// checkpoint captures one consistent durable cut: journal position,
// pipeline trigger state, shadow tables, and per-feed released cursors.
// emitMu keeps releases from interleaving, and the internal order
// matters — NextSeq is read and the journal synced before TriggerQuery,
// so the trigger state captured is the state at exactly NextSeq (every
// released event below it both journaled and ingested, nothing since).
// Only after the checkpoint is durable are the released cursors
// promoted to the ack floor.
func (r *Receiver) checkpoint() error {
	ps := r.pers
	r.emitMu.Lock()
	defer r.emitMu.Unlock()

	nextSeq := ps.w.NextSeq()
	if err := ps.w.Sync(); err != nil {
		mCheckpointErrors.Inc()
		return fmt.Errorf("journal sync: %w", err)
	}
	ts, ok := r.cfg.Pipeline.TriggerQuery()
	if !ok {
		mCheckpointErrors.Inc()
		return fmt.Errorf("pipeline closed mid-checkpoint")
	}
	if r.cfg.SnapshotSink != nil {
		// Sink-durability wait: every snapshot this cut covers must be
		// through the sink before the checkpoint lands, or a crash
		// between emission and sink would lose the snapshot for good
		// (the restart, restored to this cut, would never re-emit it).
		// emitMu is held, so ts.Emitted is final; the drain goroutine
		// advances sunk without needing the Snapshots() consumer
		// (counted before the forward), so this converges.
		for deadline := time.Now().Add(10 * time.Second); r.sunk.Load() < ts.Emitted; {
			if time.Now().After(deadline) {
				mCheckpointErrors.Inc()
				return fmt.Errorf("snapshot sink stalled (%d of %d sunk)",
					r.sunk.Load(), ts.Emitted)
			}
			time.Sleep(time.Millisecond)
		}
	}
	ck := &journal.Checkpoint{
		NextSeq:   nextSeq,
		ReplayLow: nextSeq,
		TakenAt:   time.Now(),
		Peers:     ps.peerTables(),
		Pipe: &journal.PipeState{
			Clock: ts.Clock, NextTick: ts.NextTick,
			CurBucket: ts.CurBucket, LastSpike: ts.LastSpike,
		},
	}
	if !ts.Clock.IsZero() {
		ck.WindowStart = ts.Clock.Add(-ps.window)
		if low := ps.ix.LowWater(ck.WindowStart); low < nextSeq {
			ck.ReplayLow = low
		}
	}
	r.mu.Lock()
	ck.Feeds = make([]journal.FeedCursor, 0, len(r.order))
	for _, id := range r.order {
		f := r.feeds[id]
		ck.Feeds = append(ck.Feeds, journal.FeedCursor{
			ID: id, NextSeq: f.released, Watermark: f.relWM,
		})
	}
	r.mu.Unlock()
	if _, err := journal.WriteCheckpoint(ps.dir, ck); err != nil {
		mCheckpointErrors.Inc()
		return fmt.Errorf("write checkpoint: %w", err)
	}
	r.mu.Lock()
	for _, id := range r.order {
		f := r.feeds[id]
		f.durable = f.released
		mDurableSeq.With(id).Set(int64(f.durable))
	}
	r.mu.Unlock()
	mCheckpoints.Inc()
	if _, err := journal.PruneCheckpoints(ps.dir, 3); err != nil {
		obs.Logf(obs.Warn, "relay", "prune checkpoints: %v", err)
	}
	if _, err := ps.w.TrimTo(ck.ReplayLow); err != nil {
		obs.Logf(obs.Warn, "relay", "journal trim: %v", err)
	}
	obs.Logf(obs.Debug, "relay",
		"checkpoint at merged seq %d (replay floor %d, %d feed cursors, %d routes)",
		nextSeq, ck.ReplayLow, len(ck.Feeds), ck.RouteCount())
	return nil
}

// checkpointLoop paces periodic checkpoints until Close/Abort.
func (r *Receiver) checkpointLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case <-t.C:
			if err := r.checkpoint(); err != nil {
				obs.Logf(obs.Error, "relay", "periodic checkpoint: %v", err)
			}
		}
	}
}

// peerTables renders the shadow table as the checkpoint's per-peer
// route lists, peers and prefixes sorted so checkpoint bytes are a
// deterministic function of the state.
func (ps *persister) peerTables() []journal.PeerTable {
	out := make([]journal.PeerTable, 0, len(ps.table))
	for peer, m := range ps.table {
		routes := make([]*rib.Route, 0, len(m))
		for _, rt := range m {
			routes = append(routes, rt)
		}
		sort.Slice(routes, func(i, j int) bool {
			a, b := routes[i].Prefix, routes[j].Prefix
			if c := a.Addr().Compare(b.Addr()); c != 0 {
				return c < 0
			}
			return a.Bits() < b.Bits()
		})
		out = append(out, journal.PeerTable{Peer: peer, Routes: routes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer.Compare(out[j].Peer) < 0 })
	return out
}
