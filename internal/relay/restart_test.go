package relay

import (
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/event"
	"rex/internal/journal"
)

// The restart differential: an analysis node that is killed mid-stream
// and restarted over the same durability directory must produce, across
// both incarnations stitched together, the exact per-snapshot output of
// an uninterrupted single-process run. The second incarnation re-emits
// whatever the first produced after its last checkpoint (those events
// are refetched and re-processed live); determinism makes the re-emitted
// snapshots byte-identical, so the seam is a suffix/prefix overlap and
// stitching is overlap elimination — no snapshot may be missing, extra,
// or altered.
//
// The feeds are hand-driven over real TCP so the crash point is exact:
// paced acks are disabled (huge AckEvery) and no heartbeats are sent, so
// the only protocol reads are handshake acks.

// renderEach renders snapshots one by one, so renders are comparable
// across incarnations (RenderSnapshots embeds a running index).
func renderEach(snaps []pipeline.Snapshot) []string {
	out := make([]string, len(snaps))
	for i := range snaps {
		out[i] = pipeline.RenderSnapshots(snaps[i : i+1])
	}
	return out
}

// stitch joins two incarnations' render sequences, eliminating the
// largest suffix-of-a / prefix-of-b overlap (the re-emitted span).
func stitch(a, b []string) []string {
	max := len(a)
	if len(b) < max {
		max = len(b)
	}
	for k := max; k > 0; k-- {
		match := true
		for i := 0; i < k; i++ {
			if a[len(a)-k+i] != b[i] {
				match = false
				break
			}
		}
		if match {
			return append(append([]string{}, a[:len(a)-k]...), b...)
		}
	}
	return append(append([]string{}, a...), b...)
}

// dropFinals removes TriggerFinal snapshots: Abort closes the pipeline
// in-process, which emits a final snapshot a real SIGKILL never would.
func dropFinals(snaps []pipeline.Snapshot) []pipeline.Snapshot {
	out := snaps[:0]
	for _, s := range snaps {
		if s.Trigger != pipeline.TriggerFinal {
			out = append(out, s)
		}
	}
	return out
}

// collectPipe drains a receiver's snapshots in the background into a
// slice delivered on the returned channel when the receiver closes.
func collectPipe(r *Receiver) chan []pipeline.Snapshot {
	ch := make(chan []pipeline.Snapshot, 1)
	go func() {
		var out []pipeline.Snapshot
		for s := range r.Snapshots() {
			out = append(out, s.Snapshot)
		}
		ch <- out
	}()
	return ch
}

// sendRange writes event frames [from, to) of part on c.
func sendRange(t *testing.T, c net.Conn, id string, part event.Stream, from, to uint64) {
	t.Helper()
	var buf []byte
	for seq := from; seq < to; seq++ {
		var err error
		buf, err = appendEventFrame(buf[:0], seq, &part[seq])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(buf); err != nil {
			t.Fatalf("feed %s write seq %d: %v", id, seq, err)
		}
	}
}

// waitReceived polls until every feed's accepted cursor reaches want.
func waitReceived(t *testing.T, r *Receiver, want map[string]uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for _, st := range r.Statuses() {
			if st.NextSeq < want[st.ID] {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("feeds never reached cursors %v: %+v", want, r.Statuses())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// tearTail chops 3 bytes off the newest journal segment, tearing its
// last record — the shape an un-synced tail has after a power cut. The
// caller guarantees the last record sits above the checkpoint floor
// (below it, the pre-checkpoint Sync means a real crash cannot tear).
func tearTail(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.rexj"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to tear: %v", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
}

// runRestart drives the full scenario. withCheckpoint also covers the
// torn-tail variant (tear implies withCheckpoint).
func runRestart(t *testing.T, withCheckpoint, tear bool) {
	parts := fleetParts(t, 3, 900)
	ids := make([]string, 0, len(parts))
	total := map[string]uint64{}
	for id, p := range parts {
		ids = append(ids, id)
		total[id] = uint64(len(p))
	}
	sort.Strings(ids)
	dir := filepath.Join(t.TempDir(), "node")

	open := func() (*Receiver, net.Listener) {
		t.Helper()
		r, err := OpenReceiver(ReceiverConfig{
			Pipeline:    pipeline.New(fleetConfig()),
			ExpectFeeds: ids,
			StaleAfter:  time.Hour,
			AckEvery:    1 << 30, // no paced acks: handshake acks only
			ReadTimeout: 10 * time.Second,
			Dir:         dir,
			Fsync:       journal.FsyncNever,
			// Checkpoints are driven by hand for exact crash points.
			CheckpointEvery: time.Hour,
			Window:          fleetConfig().Window,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go r.Serve(ln)
		return r, ln
	}

	connect := func(ln net.Listener) (map[string]net.Conn, map[string]uint64) {
		t.Helper()
		conns := map[string]net.Conn{}
		resumes := map[string]uint64{}
		for _, id := range ids {
			c, resume := helloExchange(t, ln.Addr().String(), id)
			conns[id] = c
			resumes[id] = resume
		}
		return conns, resumes
	}

	// --- Incarnation A ---
	rcvA, lnA := open()
	snapsA := collectPipe(rcvA)
	connsA, resumesA := connect(lnA)
	for _, id := range ids {
		if resumesA[id] != 0 {
			t.Fatalf("fresh directory, but feed %s resumed at %d", id, resumesA[id])
		}
	}

	// Phase 1: ~60% of each feed, interleaved in chunks so the merge
	// gate works across feeds.
	phase1 := map[string]uint64{}
	for _, id := range ids {
		phase1[id] = total[id] * 6 / 10
	}
	const chunk = 37
	for off := uint64(0); ; off += chunk {
		sent := false
		for _, id := range ids {
			from, to := off, off+chunk
			if from >= phase1[id] {
				continue
			}
			if to > phase1[id] {
				to = phase1[id]
			}
			sendRange(t, connsA[id], id, parts[id], from, to)
			sent = true
		}
		if !sent {
			break
		}
	}
	waitReceived(t, rcvA, phase1)

	var floor uint64
	if withCheckpoint {
		// Wait for the gate to release something, then cut a durable
		// floor at exactly the released cursors.
		deadline := time.Now().Add(30 * time.Second)
		for rcvA.pers.w.NextSeq() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("gate never released any event")
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := rcvA.checkpoint(); err != nil {
			t.Fatal(err)
		}
		floor = rcvA.pers.w.NextSeq()
	}

	// Phase 2: ~20% more per feed, so the journal grows an orphan tail
	// above the checkpoint floor that the restart must discard.
	phase2 := map[string]uint64{}
	for _, id := range ids {
		phase2[id] = total[id] * 8 / 10
	}
	for _, id := range ids {
		sendRange(t, connsA[id], id, parts[id], phase1[id], phase2[id])
	}
	waitReceived(t, rcvA, phase2)
	if withCheckpoint {
		// Make sure at least two post-checkpoint events were released
		// (the torn variant destroys one record; at least one intact
		// orphan must remain for Truncated to be observable).
		deadline := time.Now().Add(30 * time.Second)
		for rcvA.pers.w.NextSeq() < floor+2 {
			if time.Now().After(deadline) {
				t.Fatalf("journal stuck at %d, want > %d", rcvA.pers.w.NextSeq(), floor+1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Crash. No flush, no final checkpoint; buffered events vanish.
	for _, c := range connsA {
		c.Close()
	}
	rcvA.Abort()
	pipeA := dropFinals(<-snapsA)

	if tear {
		tearTail(t, dir)
	}

	var ckpt *journal.Checkpoint
	if withCheckpoint {
		var err error
		ckpt, err = journal.LoadLatestCheckpoint(dir)
		if err != nil || ckpt == nil {
			t.Fatalf("checkpoint gone after crash: %v", err)
		}
	}

	// --- Incarnation B ---
	rcvB, lnB := open()
	stats, ok := rcvB.RecoveryStats()
	if !ok {
		t.Fatal("durable receiver reports no recovery stats")
	}
	if stats.HadCheckpoint != withCheckpoint {
		t.Fatalf("HadCheckpoint = %v, want %v", stats.HadCheckpoint, withCheckpoint)
	}
	if withCheckpoint {
		if stats.Truncated == 0 {
			t.Fatal("no orphan records truncated despite a post-checkpoint tail")
		}
		if stats.ResumeSeq != ckpt.NextSeq {
			t.Fatalf("journal resumed at %d, checkpoint covers %d", stats.ResumeSeq, ckpt.NextSeq)
		}
	} else if stats.ResumeSeq != 0 {
		t.Fatalf("cold start resumed journal at %d", stats.ResumeSeq)
	}

	snapsB := collectPipe(rcvB)
	connsB, resumesB := connect(lnB)
	if withCheckpoint {
		byID := map[string]uint64{}
		for _, fc := range ckpt.Feeds {
			byID[fc.ID] = fc.NextSeq
		}
		for _, id := range ids {
			if resumesB[id] != byID[id] {
				t.Fatalf("feed %s resumed at %d, checkpoint cursor is %d", id, resumesB[id], byID[id])
			}
		}
	} else {
		for _, id := range ids {
			if resumesB[id] != 0 {
				t.Fatalf("feed %s resumed at %d after cold start", id, resumesB[id])
			}
		}
	}

	// Resend from each durable cursor to the end — exactly what a real
	// feed's journal scan would do — and drain.
	for _, id := range ids {
		sendRange(t, connsB[id], id, parts[id], resumesB[id], total[id])
	}
	waitReceived(t, rcvB, total)

	// Zero re-ingestion above the durable floor: the resumed feeds sent
	// nothing below their cursors, so the receiver must have counted no
	// duplicates and accepted exactly the tail.
	for _, st := range rcvB.Statuses() {
		if st.Duplicates != 0 {
			t.Errorf("feed %s: %d duplicates after resume at the durable cursor", st.ID, st.Duplicates)
		}
		if want := total[st.ID] - resumesB[st.ID]; st.Received != want {
			t.Errorf("feed %s: received %d after restart, want %d", st.ID, st.Received, want)
		}
	}

	for _, c := range connsB {
		c.Close()
	}
	rcvB.Close()
	pipeB := <-snapsB

	got := stitch(renderEach(pipeA), renderEach(pipeB))
	want := renderEach(pipeline.Replay(MergeStreams(parts), fleetConfig()))
	if len(got) != len(want) {
		t.Fatalf("stitched run has %d snapshots, uninterrupted has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("snapshot %d diverged after restart: %s", i, firstDiff(got[i], want[i]))
		}
	}
	if len(want) < 3 {
		t.Fatalf("vacuous run: only %d snapshots", len(want))
	}
}

// TestReceiverRestartCheckpointed: kill with a recent checkpoint; the
// restart resumes each feed at its durable cursor, truncates the orphan
// journal tail, replays the window silently, and the stitched output is
// byte-identical to an uninterrupted run.
func TestReceiverRestartCheckpointed(t *testing.T) {
	runRestart(t, true, false)
}

// TestReceiverRestartUncheckpointed: kill before any checkpoint; the
// restart is a cold start — journal wiped, every feed refetched from
// zero — and the stitched output is still byte-identical.
func TestReceiverRestartUncheckpointed(t *testing.T) {
	runRestart(t, false, false)
}

// TestReceiverRestartTornTail: like the checkpointed kill, but the
// journal's last record is torn mid-frame (un-synced tail after a power
// cut). The torn record sits above the checkpoint floor, so discarding
// it costs nothing — the feed resends it.
func TestReceiverRestartTornTail(t *testing.T) {
	runRestart(t, true, true)
}

// TestDurableAcksBoundedByCheckpoint: while durability is on, every ack
// — handshake, paced, heartbeat — advertises the durable cursor, and a
// checkpoint advances it.
func TestDurableAcksBoundedByCheckpoint(t *testing.T) {
	parts := fleetParts(t, 1, 64)
	part := parts["feed-00"]
	dir := filepath.Join(t.TempDir(), "node")
	rcv, err := OpenReceiver(ReceiverConfig{
		Pipeline:        pipeline.New(fleetConfig()),
		ExpectFeeds:     []string{"feed-00"},
		StaleAfter:      time.Hour,
		AckEvery:        4,
		ReadTimeout:     5 * time.Second,
		Dir:             dir,
		Fsync:           journal.FsyncNever,
		CheckpointEvery: time.Hour,
		Window:          fleetConfig().Window,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rcv.Serve(ln)
	done := drainReceiver(rcv)

	c, resume := helloExchange(t, ln.Addr().String(), "feed-00")
	if resume != 0 {
		t.Fatalf("fresh resume = %d", resume)
	}
	sendRange(t, c, "feed-00", part, 0, 8)
	readAck := func() uint64 {
		t.Helper()
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		kind, p, err := readFrame(c, nil)
		if err != nil || kind != kindAck {
			t.Fatalf("ack: kind=%d err=%v", kind, err)
		}
		n, err := parseAck(p)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	// Paced acks are pinned at the durable floor (0: nothing
	// checkpointed), not the live cursor.
	if got := readAck(); got != 0 {
		t.Fatalf("paced ack before any checkpoint = %d, want durable 0", got)
	}
	if got := readAck(); got != 0 {
		t.Fatalf("second paced ack = %d, want durable 0", got)
	}
	waitReceived(t, rcv, map[string]uint64{"feed-00": 8})
	if err := rcv.checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A single feed gates only on itself: everything received was
	// released, so the checkpoint promoted the full prefix.
	sendRange(t, c, "feed-00", part, 8, 12)
	if got := readAck(); got != 8 {
		t.Fatalf("paced ack after checkpoint = %d, want durable 8", got)
	}
	// Heartbeats ack the durable floor too.
	if _, err := c.Write(appendHeartbeat(nil, 12, part[11].Time)); err != nil {
		t.Fatal(err)
	}
	if got := readAck(); got != 8 {
		t.Fatalf("heartbeat ack = %d, want durable 8", got)
	}
	// And the handshake resume after a reconnect is the durable cursor,
	// even though the live cursor is at 12.
	c.Close()
	c2, resume := helloExchange(t, ln.Addr().String(), "feed-00")
	if resume != 8 {
		t.Fatalf("reconnect resume = %d, want durable 8", resume)
	}
	c2.Close()
	rcv.Close()
	<-done

	// The close-time checkpoint covers everything released; a clean
	// restart resumes at the live head with nothing to refetch.
	ckpt, err := journal.LoadLatestCheckpoint(dir)
	if err != nil || ckpt == nil {
		t.Fatalf("no checkpoint after Close: %v", err)
	}
	if len(ckpt.Feeds) != 1 || ckpt.Feeds[0].NextSeq != 12 {
		t.Fatalf("final cursors = %+v, want feed-00 at 12", ckpt.Feeds)
	}
}
