// Package relay is the fan-in tier between collector processes and the
// central analysis node (paper §III: the ISP deployment fed one REX
// from 67 route reflectors — no single collector sees them all). Each
// collector journals its event stream locally (internal/journal) and a
// Feed tails that journal over TCP to a Receiver, which merges the
// per-feed streams in event-time order into one analysis pipeline.
//
// The design goal is exactness under failure: the merged stream a
// Receiver feeds its pipeline is byte-for-byte the stream MergeStreams
// would produce offline from the same per-feed journals, no matter how
// connections drop, stall, or partition one-way in between. Three
// mechanisms carry that:
//
//   - Ack/resume. Every event frame carries the journal sequence. The
//     receiver remembers, per feed, the next sequence it needs; a
//     (re)connecting feed is told that sequence in the handshake ack
//     and replays its journal from exactly there. Duplicates (frames
//     below the cursor) are counted and dropped; within a session TCP
//     preserves order, so transport gaps cannot occur at all.
//   - Watermark-gated merge. Events are buffered per feed and released
//     to the pipeline in (event time, feed ID) order, a release gated
//     on every other live feed having either a buffered event or a
//     heartbeat watermark proving it has nothing earlier to offer.
//   - Graceful degradation. A feed that stops talking for StaleAfter
//     is marked stale: it stops gating the merge (analysis continues
//     on survivors), its status is surfaced in snapshot metadata and
//     the rex_relay_feed_stale gauge, and its routes are left to age
//     out through the collector's graceful-restart retention — the
//     receiver never fabricates withdrawals for a silent feed.
//
// Startup gating: a rostered feed that has never said hello
// (FeedStatus.EverHeard false) gates the merge exactly like a silent
// connected feed — its watermark is zero, so nothing releases — until
// StaleAfter promotes it to stale. The receiver does not distinguish
// "never came up" from "came up and died" for release purposes, only in
// status reporting: determinism first, then the stale clock bounds the
// wait either way.
//
// The wire protocol reuses the journal's event codec as payload and
// its CRC discipline for frames; a corrupt frame kills the connection
// (the stream cannot be trusted past it) and ack/resume makes the
// reconnect exact.
package relay

import (
	"sort"
	"time"

	"rex/internal/core/pipeline"
)

// Defaults for FeedConfig and ReceiverConfig zero values.
const (
	DefaultHeartbeatEvery = 1 * time.Second
	DefaultStaleAfter     = 10 * time.Second
	DefaultAckEvery       = 64
	DefaultMinBackoff     = 500 * time.Millisecond
	DefaultMaxBackoff     = 30 * time.Second
	// DefaultCheckpointEvery paces durable receiver checkpoints; it
	// bounds both the resend after a restart and the feeds' trim-floor
	// lag (acks advertise the durable cursor, not the live one).
	DefaultCheckpointEvery = 30 * time.Second
	// DefaultReplayWindow is the analysis window assumed for the
	// journal replay floor when ReceiverConfig.Window is zero; it
	// matches the pipeline's default window.
	DefaultReplayWindow = 15 * time.Minute
)

// FeedStatus is one feed's health as the receiver sees it, embedded in
// every snapshot so a consumer can judge how much of the network the
// analysis currently observes.
type FeedStatus struct {
	ID        string
	Connected bool
	// Stale means the feed has been silent past StaleAfter: it no
	// longer gates the merge and its routes are aging out upstream.
	Stale bool
	// EverHeard distinguishes a rostered feed that has never said hello
	// (false) from one that connected at least once this process
	// lifetime. Both gate the merge identically until stale; a
	// supervisor uses this to tell "never came up" from "came up and
	// died".
	EverHeard bool
	// NextSeq is the next journal sequence the receiver needs — the
	// resume point it would hand the feed on reconnect.
	NextSeq uint64
	// Durable is the cursor a crash cannot roll back: the released
	// position as of the newest checkpoint on a durable receiver, and
	// simply NextSeq on a memory-only one. Supervisors that must judge
	// fleet completion across receiver restarts should watch this, not
	// NextSeq — NextSeq regresses to Durable when the receiver dies.
	Durable uint64
	// Watermark is the feed's event-time frontier: no event earlier
	// than this will ever arrive from it.
	Watermark time.Time
	// LastHeard is the wall-clock time of the feed's last frame.
	LastHeard time.Time
	// Buffered counts events held back by the merge gate.
	Buffered int
	// Received and Duplicates count accepted and rejected-as-duplicate
	// event frames across all sessions.
	Received   uint64
	Duplicates uint64
}

// Snapshot is a pipeline snapshot annotated with the health of every
// feed at emission time. The embedded analysis fields are untouched —
// byte-identical to a single-process run — so degraded-mode visibility
// rides alongside, not inside, the comparison surface.
type Snapshot struct {
	pipeline.Snapshot
	Feeds []FeedStatus
}

// sortStatuses orders feed statuses by ID for deterministic snapshots.
func sortStatuses(fs []FeedStatus) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
}
