package relay

import (
	"sort"
	"time"

	"rex/internal/event"
)

// The merge order. Feeds carry disjoint peers, so cross-feed ordering
// only matters for the pipeline's event-time clock; within a feed,
// journal order (arrival order) is authoritative and never reshuffled.
// Ties across feeds break on feed ID so the order is total and every
// run — live receiver or offline MergeStreams — agrees byte-for-byte.
func mergeBefore(t1 time.Time, id1 string, t2 time.Time, id2 string) bool {
	if !t1.Equal(t2) {
		return t1.Before(t2)
	}
	return id1 < id2
}

// MergeStreams merges per-feed event streams exactly the way a healthy
// receiver releases them: ascending (event time, feed ID), stable
// within a feed. It is the single-process reference the differential
// tests compare the live fan-in against.
func MergeStreams(parts map[string]event.Stream) event.Stream {
	ids := make([]string, 0, len(parts))
	total := 0
	for id, s := range parts {
		ids = append(ids, id)
		total += len(s)
	}
	sort.Strings(ids)
	heads := make([]int, len(ids))
	out := make(event.Stream, 0, total)
	for len(out) < total {
		best := -1
		for i, id := range ids {
			if heads[i] >= len(parts[id]) {
				continue
			}
			e := parts[id][heads[i]]
			if best < 0 || mergeBefore(e.Time, id, parts[ids[best]][heads[best]].Time, ids[best]) {
				best = i
			}
		}
		out = append(out, parts[ids[best]][heads[best]])
		heads[best]++
	}
	return out
}
