package relay

import "rex/internal/obs"

// Relay metrics. The receiver-side family is what an operator watches
// during an incident: rex_relay_feed_stale names the vantage points the
// analysis is currently blind to, and rex_relay_buffered_events shows
// how much the merge gate is holding back while it waits for a lagging
// feed. The feed-side family mirrors the PeerManager's dial telemetry.
var (
	// Receiver side.
	mFeedStale = obs.NewGaugeVec("rex_relay_feed_stale", "feed",
		"1 while the feed has been silent past StaleAfter and no longer gates the merge.")
	mFeedConnected = obs.NewGaugeVec("rex_relay_feed_connected", "feed",
		"1 while the feed has a live connection to the receiver.")
	mFeedNextSeq = obs.NewGaugeVec("rex_relay_feed_next_seq", "feed",
		"Next journal sequence the receiver needs from the feed (its resume point).")
	mFeedBacklog = obs.NewGaugeVec("rex_relay_feed_backlog", "feed",
		"Feed's journal head minus the receiver's cursor: records still to stream.")
	mEventsAccepted = obs.NewCounterVec("rex_relay_events_total", "feed",
		"Event frames accepted from the feed.")
	mDuplicates = obs.NewCounterVec("rex_relay_duplicates_total", "feed",
		"Event frames rejected as duplicates (sequence below the receiver's cursor).")
	mSeqJumps = obs.NewCounterVec("rex_relay_seq_jumps_total", "feed",
		"Forward sequence jumps accepted mid-session (journal damage holes upstream).")
	mStaleTransitions = obs.NewCounterVec("rex_relay_stale_transitions_total", "feed",
		"Times the feed was marked stale.")
	mFramesRejected = obs.NewCounter("rex_relay_frames_rejected_total",
		"Connections dropped for framing violations (bad CRC, oversized frame, bad hello).")
	mConns = obs.NewCounter("rex_relay_conns_total",
		"Feed connections accepted (reconnects included).")
	mReleased = obs.NewCounter("rex_relay_released_total",
		"Events released by the merge gate into the analysis pipeline.")
	mBuffered = obs.NewGauge("rex_relay_buffered_events",
		"Events buffered across all feeds awaiting merge release.")
	mSinkPanics = obs.NewCounter("rex_relay_sink_panics_total",
		"SnapshotSink panics recovered on the drain goroutine (the snapshot still flows downstream).")
	mSinkWedged = obs.NewCounter("rex_relay_sink_wedged_total",
		"Shutdowns that abandoned a SnapshotSink wedged past SinkTimeout.")

	// Analysis-node durability (receiver persistence; see persist.go).
	mDurableSeq = obs.NewGaugeVec("rex_relay_durable_seq", "feed",
		"Feed cursor covered by the newest checkpoint: the floor every ack advertises while durability is on.")
	mJournaled = obs.NewCounter("rex_relay_journaled_total",
		"Released events appended to the receiver's merged journal.")
	mCheckpoints = obs.NewCounter("rex_relay_checkpoints_total",
		"Receiver checkpoints written (feed cursors + trigger state + tables).")
	mCheckpointErrors = obs.NewCounter("rex_relay_checkpoint_errors_total",
		"Checkpoint attempts that failed; the durable floor stops advancing until one succeeds.")
	mJournalErrors = obs.NewCounter("rex_relay_journal_errors_total",
		"Merged-journal append failures (event still analyzed, just not durable).")
	mRecoveredEvents = obs.NewCounter("rex_relay_recovered_events_total",
		"Merged-journal events replayed silently into the pipeline at startup.")

	// Feed (collector) side.
	mDialFailures = obs.NewCounterVec("rex_relay_dial_failures_total", "feed",
		"Failed dials or handshakes to the receiver, backing off exponentially.")
	mSessions = obs.NewCounterVec("rex_relay_sessions_total", "feed",
		"Sessions established (hello acked) with the receiver.")
	mSent = obs.NewCounterVec("rex_relay_sent_total", "feed",
		"Event frames streamed to the receiver (replays after reconnect included).")
	mAckedSeq = obs.NewGaugeVec("rex_relay_acked_seq", "feed",
		"Receiver's durable cursor as last acked: the feed may trim its journal below this.")
)
