package relay

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"rex/internal/event"
	"rex/internal/journal"
)

// Wire framing. Every frame is
//
//	kind(1) len(4 BE) crc32c(4 BE, Castagnoli over payload) payload
//
// mirroring the journal's record discipline: length-prefixed, checksum
// over the payload, bounded size. Unlike the journal, a bad frame is
// fatal to the connection — past a corrupt length the stream cannot be
// re-framed — and recovery is a reconnect with ack/resume.
//
// Payloads by kind:
//
//	hello     magic "REXRLY1", feed-ID length (2 BE), feed ID   feed → receiver
//	ack       nextSeq (8 BE): "send from here"                  receiver → feed
//	event     seq (8 BE), event.AppendRecord bytes              feed → receiver
//	heartbeat nextSeq (8 BE, feed's append head), watermark     feed → receiver
//	          (8 BE UnixNano)
//
// The handshake is hello → ack; after it the feed streams event frames
// from the acked sequence and sends heartbeats whenever it is caught
// up, and the receiver acks progress periodically so the feed can trim
// its journal behind the receiver's durable cursor.

const (
	frameHeaderLen = 9

	kindHello     = 1
	kindAck       = 2
	kindEvent     = 3
	kindHeartbeat = 4

	helloMagic = "REXRLY1"

	// MaxFramePayload bounds one frame payload: the largest journal
	// record plus the sequence prefix, with slack for control frames.
	MaxFramePayload = journal.MaxRecordLen + 64

	maxFeedIDLen = 256
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one whole frame to dst so the caller can hand it
// to a single Write — one syscall, and byte-threshold fault injection
// sees deterministic frame boundaries.
func appendFrame(dst []byte, kind byte, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame reads one frame, reusing buf for the payload when it fits.
// Any framing violation — oversized length, checksum mismatch — is an
// error; the caller must drop the connection.
func readFrame(r io.Reader, buf []byte) (kind byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > MaxFramePayload {
		mFramesRejected.Inc()
		return 0, nil, fmt.Errorf("relay: frame claims %d bytes", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(hdr[5:9]) {
		mFramesRejected.Inc()
		return 0, nil, fmt.Errorf("relay: frame checksum mismatch")
	}
	return hdr[0], payload, nil
}

func appendHello(dst []byte, feedID string) []byte {
	p := make([]byte, 0, len(helloMagic)+2+len(feedID))
	p = append(p, helloMagic...)
	p = binary.BigEndian.AppendUint16(p, uint16(len(feedID)))
	p = append(p, feedID...)
	return appendFrame(dst, kindHello, p)
}

func parseHello(p []byte) (string, error) {
	if len(p) < len(helloMagic)+2 || string(p[:len(helloMagic)]) != helloMagic {
		return "", fmt.Errorf("relay: bad hello")
	}
	n := int(binary.BigEndian.Uint16(p[len(helloMagic):]))
	rest := p[len(helloMagic)+2:]
	if n == 0 || n > maxFeedIDLen || len(rest) != n {
		return "", fmt.Errorf("relay: bad hello feed ID")
	}
	return string(rest), nil
}

func appendAck(dst []byte, next uint64) []byte {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], next)
	return appendFrame(dst, kindAck, p[:])
}

func parseAck(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("relay: bad ack")
	}
	return binary.BigEndian.Uint64(p), nil
}

func appendEventFrame(dst []byte, seq uint64, e *event.Event) ([]byte, error) {
	p := make([]byte, 8, 64)
	binary.BigEndian.PutUint64(p, seq)
	p, err := event.AppendRecord(p, e)
	if err != nil {
		return dst, err
	}
	return appendFrame(dst, kindEvent, p), nil
}

func parseEventFrame(p []byte) (uint64, event.Event, error) {
	if len(p) < 8 {
		return 0, event.Event{}, fmt.Errorf("relay: short event frame")
	}
	seq := binary.BigEndian.Uint64(p)
	e, err := event.ParseRecord(p[8:])
	if err != nil {
		return 0, event.Event{}, err
	}
	return seq, e, nil
}

func appendHeartbeat(dst []byte, next uint64, watermark time.Time) []byte {
	var p [16]byte
	binary.BigEndian.PutUint64(p[0:8], next)
	var wm int64
	if !watermark.IsZero() {
		wm = watermark.UnixNano()
	}
	binary.BigEndian.PutUint64(p[8:16], uint64(wm))
	return appendFrame(dst, kindHeartbeat, p[:])
}

func parseHeartbeat(p []byte) (next uint64, watermark time.Time, err error) {
	if len(p) != 16 {
		return 0, time.Time{}, fmt.Errorf("relay: bad heartbeat")
	}
	next = binary.BigEndian.Uint64(p[0:8])
	wm := int64(binary.BigEndian.Uint64(p[8:16]))
	return next, time.Unix(0, wm).UTC(), nil
}
