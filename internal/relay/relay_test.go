package relay

import (
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/sim"
)

// The differential harness: N journaled substreams through real TCP
// connections, a live Receiver, and injected faults must produce
// byte-identical pipeline output to an offline single-process replay
// of MergeStreams over the same substreams. renderSnapshots serializes
// every observable snapshot field, so equality is full byte-identity.

var fleetT0 = time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)

func fleetConfig() pipeline.Config {
	return pipeline.Config{
		Window:        10 * time.Minute,
		SnapshotEvery: 2 * time.Minute,
		SpikeK:        8,
		Site:          "fleet",
		Prune:         tamp.PruneOptions{KeepDepth: 3},
	}
}

// fleetParts builds the ISP scenario stream and splits it across n
// feeds by route reflector.
func fleetParts(t testing.TB, n, events int) map[string]event.Stream {
	t.Helper()
	is := sim.ISPAnon(sim.ISPAnonConfig{PoPs: 2, RRsPerPoP: 2, Tier1Peers: 3,
		CustomerStubs: 12, InternetStubs: 12, PrefixesPerStub: 2})
	s := sim.BenchEvents(is.Site, is.BaselineRoutes(), events, 30*time.Minute, fleetT0, 7)
	split := sim.PartitionByPeer(s, n)
	parts := map[string]event.Stream{}
	for i, p := range split {
		parts[fmt.Sprintf("feed-%02d", i)] = p
	}
	return parts
}

// writeJournal journals one substream under dir/<id> and returns the
// directory.
func writeJournal(t testing.TB, root, id string, s event.Stream) string {
	t.Helper()
	dir := filepath.Join(root, id)
	w, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if _, err := w.Append(&s[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// renderSnapshots is the pipeline package's differential renderer:
// every observable field, deterministically serialized.
func renderSnapshots(snaps []pipeline.Snapshot) string {
	return pipeline.RenderSnapshots(snaps)
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i, x, y)
		}
	}
	return "no diff"
}

// fanInResult is everything one live run produced.
type fanInResult struct {
	snaps   []Snapshot
	pipe    []pipeline.Snapshot // embedded pipeline snapshots, in order
	renders string
}

// runFanIn journals each part, runs a receiver and one feed per part
// over loopback TCP, waits until every feed's journal is fully acked,
// and drains the run to completion. wrap, when non-nil, wraps each
// feed's dialed connection (attempt counts from 0 per feed) — the
// fault-injection point.
func runFanIn(t *testing.T, parts map[string]event.Stream, staleAfter time.Duration,
	wrap func(id string, attempt int, c net.Conn) net.Conn) fanInResult {
	t.Helper()
	root := t.TempDir()
	ids := make([]string, 0, len(parts))
	for id := range parts {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcv := NewReceiver(ReceiverConfig{
		Pipeline:    pipeline.New(fleetConfig()),
		ExpectFeeds: ids,
		StaleAfter:  staleAfter,
		AckEvery:    16,
		ReadTimeout: 400 * time.Millisecond,
	})
	go rcv.Serve(ln)

	var res fanInResult
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range rcv.Snapshots() {
			res.snaps = append(res.snaps, s)
			res.pipe = append(res.pipe, s.Snapshot)
		}
	}()

	addr := ln.Addr().String()
	feeds := make([]*Feed, 0, len(ids))
	var wg sync.WaitGroup
	for _, id := range ids {
		id := id
		dir := writeJournal(t, root, id, parts[id])
		var attempts atomic.Int64
		f := NewFeed(FeedConfig{
			ID: id, Dir: dir, Addr: addr,
			Dial: func() (net.Conn, error) {
				c, err := net.DialTimeout("tcp", addr, 5*time.Second)
				if err != nil {
					return nil, err
				}
				if wrap != nil {
					c = wrap(id, int(attempts.Add(1))-1, c)
				}
				return c, nil
			},
			MinBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
			HeartbeatEvery: 25 * time.Millisecond, AckTimeout: 250 * time.Millisecond,
		})
		feeds = append(feeds, f)
		wg.Add(1)
		go func() { defer wg.Done(); f.Run() }()
	}

	deadline := time.Now().Add(60 * time.Second)
	for i, id := range ids {
		want := uint64(len(parts[id]))
		for feeds[i].Acked() < want {
			if time.Now().After(deadline) {
				t.Fatalf("feed %s acked %d/%d before deadline", id, feeds[i].Acked(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for _, f := range feeds {
		f.Close()
	}
	wg.Wait()
	rcv.Close()
	<-done
	res.renders = renderSnapshots(res.pipe)
	return res
}

// reference replays MergeStreams offline: the single-process ground
// truth every live run must match byte-for-byte.
func reference(parts map[string]event.Stream) string {
	return renderSnapshots(pipeline.Replay(MergeStreams(parts), fleetConfig()))
}

func TestMergeStreamsOrdered(t *testing.T) {
	parts := fleetParts(t, 3, 900)
	merged := MergeStreams(parts)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if len(merged) != total {
		t.Fatalf("merged %d events, want %d", len(merged), total)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time.Before(merged[i-1].Time) {
			t.Fatalf("merge out of order at %d", i)
		}
	}
}

// TestDifferentialFanInHealthy: three feeds over healthy TCP must be
// byte-identical to the offline merge.
func TestDifferentialFanInHealthy(t *testing.T) {
	parts := fleetParts(t, 3, 1500)
	got := runFanIn(t, parts, time.Hour, nil)
	want := reference(parts)
	if got.renders != want {
		t.Fatalf("fan-in diverged from single-process run: %s", firstDiff(got.renders, want))
	}
	if len(got.snaps) == 0 {
		t.Fatal("no snapshots")
	}
	final := got.snaps[len(got.snaps)-1]
	if len(final.Feeds) != 3 {
		t.Fatalf("snapshot metadata has %d feeds", len(final.Feeds))
	}
	for _, fs := range final.Feeds {
		if fs.Stale {
			t.Errorf("feed %s stale in a healthy run", fs.ID)
		}
		if fs.Duplicates != 0 {
			t.Errorf("feed %s reported %d duplicates in a healthy run", fs.ID, fs.Duplicates)
		}
	}
}

// TestDifferentialFanInSingleFeed: the degenerate fleet (one feed) is
// the whole stream.
func TestDifferentialFanInSingleFeed(t *testing.T) {
	parts := fleetParts(t, 1, 800)
	got := runFanIn(t, parts, time.Hour, nil)
	if want := reference(parts); got.renders != want {
		t.Fatalf("single-feed run diverged: %s", firstDiff(got.renders, want))
	}
}
