package relay

import "rex/internal/event"

// queuedEvent is one buffered event with the feed-local sequence it
// arrived under, kept so the release path can attribute every released
// event back to its feed cursor (the durable-checkpoint cursor is the
// sequence after the last *released* event, not the last received one).
type queuedEvent struct {
	seq uint64
	e   event.Event
}

// eventQueue is a feed's buffered-event FIFO as a head-trimmed slice:
// buf[head:] is live. Popping advances head instead of re-slicing the
// front away — `buf = buf[1:]` strands the freed front capacity forever
// on a long-lived feed, so every refill of a steady queue reallocates —
// and the backing array is compacted in place (amortized O(1)) once the
// dead front outweighs the live tail, the same trade stemming's idList
// makes. Popped and compacted-over slots are zeroed so the buffer never
// pins event attributes past release.
type eventQueue struct {
	buf  []queuedEvent
	head int
}

func (q *eventQueue) len() int { return len(q.buf) - q.head }

// front returns the oldest buffered entry; caller must check len > 0.
func (q *eventQueue) front() *queuedEvent { return &q.buf[q.head] }

func (q *eventQueue) push(qe queuedEvent) { q.buf = append(q.buf, qe) }

// pop removes and returns the oldest entry.
func (q *eventQueue) pop() queuedEvent {
	qe := q.buf[q.head]
	q.buf[q.head] = queuedEvent{}
	q.head++
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	} else if q.head > 32 && q.head > len(q.buf)/2 {
		n := copy(q.buf, q.buf[q.head:])
		tail := q.buf[n:len(q.buf)]
		for i := range tail {
			tail[i] = queuedEvent{}
		}
		q.buf, q.head = q.buf[:n], 0
	}
	return qe
}
