package relay

import (
	"bytes"
	"testing"
	"time"

	"rex/internal/event"
)

// FuzzReadFrame hammers the relay wire decoder with arbitrary bytes:
// it must never panic, every frame it accepts must re-encode to the
// exact bytes consumed (the framing is a bijection on valid frames),
// and the kind-specific parsers must either reject the payload or
// round-trip it losslessly. Seeded with real frames of every kind —
// including event frames carrying journaled records, so the corpus
// reaches the nested event codec — plus truncations and
// concatenations, the shapes a cut or corrupt connection produces.
func FuzzReadFrame(f *testing.F) {
	events := fleetParts(f, 1, 6)["feed-00"]

	var frames [][]byte
	frames = append(frames,
		appendHello(nil, "feed-00"),
		appendHello(nil, ""),
		appendAck(nil, 0),
		appendAck(nil, ^uint64(0)),
		appendHeartbeat(nil, 42, time.Date(2003, 8, 1, 10, 0, 0, 0, time.UTC)),
		appendHeartbeat(nil, 0, time.Time{}),
	)
	for i := range events {
		fr, err := appendEventFrame(nil, uint64(i), &events[i])
		if err != nil {
			f.Fatal(err)
		}
		frames = append(frames, fr)
	}
	var all []byte
	for _, fr := range frames {
		f.Add(fr)
		f.Add(fr[:len(fr)-1]) // torn tail
		all = append(all, fr...)
	}
	f.Add(all) // back-to-back frames, the steady-state stream shape
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			kind, payload, err := readFrame(r, nil)
			if err != nil {
				return
			}
			consumed := len(data) - r.Len()
			reenc := appendFrame(nil, kind, payload)
			if start := consumed - len(reenc); start < 0 || !bytes.Equal(reenc, data[start:consumed]) {
				t.Fatalf("accepted frame does not re-encode to its wire bytes at %d", consumed)
			}
			switch kind {
			case kindHello:
				if id, err := parseHello(payload); err == nil {
					if !bytes.Equal(appendHello(nil, id), reenc) {
						t.Fatalf("hello %q not a round trip", id)
					}
				}
			case kindAck:
				if next, err := parseAck(payload); err == nil {
					if !bytes.Equal(appendAck(nil, next), reenc) {
						t.Fatalf("ack %d not a round trip", next)
					}
				}
			case kindHeartbeat:
				if next, wm, err := parseHeartbeat(payload); err == nil {
					again, wm2, err2 := parseHeartbeat(appendHeartbeat(nil, next, wm)[frameHeaderLen:])
					if err2 != nil || again != next || !wm2.Equal(wm) {
						t.Fatalf("heartbeat (%d, %v) not a round trip: (%d, %v, %v)", next, wm, again, wm2, err2)
					}
				}
			case kindEvent:
				seq, e, err := parseEventFrame(payload)
				if err != nil {
					continue
				}
				enc, err := appendEventFrame(nil, seq, &e)
				if err != nil {
					t.Fatalf("parse accepted seq %d but encode rejected: %v", seq, err)
				}
				seq2, e2, err := parseEventFrame(enc[frameHeaderLen:])
				if err != nil || seq2 != seq || !relayEventsEquivalent(&e, &e2) {
					t.Fatalf("event frame round trip lost data:\n  in:  %+v\n  out: %+v (err %v)", e, e2, err)
				}
			}
		}
	})
}

func relayEventsEquivalent(a, b *event.Event) bool {
	if a.Type != b.Type || a.Peer != b.Peer || a.Prefix != b.Prefix || !a.Time.Equal(b.Time) {
		return false
	}
	switch {
	case a.Attrs == nil && b.Attrs == nil:
		return true
	case a.Attrs == nil || b.Attrs == nil:
		return false
	}
	return a.Attrs.Equal(b.Attrs)
}
