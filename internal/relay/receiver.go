package relay

import (
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/obs"
)

// ReceiverConfig wires the fan-in point.
type ReceiverConfig struct {
	// Pipeline receives the merged stream. The receiver owns its
	// lifecycle from here: Close flushes buffered events into it and
	// closes it.
	Pipeline *pipeline.Pipeline
	// ExpectFeeds is the fleet roster. Listed feeds gate the merge from
	// startup (no event is released until every listed feed has either
	// connected and reported or gone stale) and connections from
	// unlisted feeds are rejected. Empty means accept anyone, gating
	// only on feeds that have said hello.
	ExpectFeeds []string
	// AckEvery paces progress acks during streaming (default 64
	// events); heartbeats are always acked immediately.
	AckEvery int
	// StaleAfter is the wall-clock silence after which a feed stops
	// gating the merge and is flagged stale (default 10s). A stale
	// feed's routes are left to age out upstream via graceful-restart
	// retention; the receiver never synthesizes withdrawals.
	StaleAfter time.Duration
	// HandshakeTimeout bounds the hello exchange (default 5s).
	HandshakeTimeout time.Duration
	// ReadTimeout is the per-frame read deadline on feed connections
	// (default 4×DefaultHeartbeatEvery); a healthy feed heartbeats well
	// inside it.
	ReadTimeout time.Duration
	// WriteTimeout bounds ack writes (default 10s).
	WriteTimeout time.Duration

	// Dir, when set, makes the receiver durable: released events are
	// journaled in merge order into Dir and the per-feed resume
	// cursors, pipeline trigger state, and route tables are
	// checkpointed there atomically every CheckpointEvery, so a
	// restarted analysis node resumes each feed at its durable cursor
	// instead of zero. While durability is on, every ack the receiver
	// sends — the handshake resume ack included — is the feed's durable
	// cursor, not its in-memory one: feeds trim their journals to acks,
	// so the receiver never advertises state a crash could forget. See
	// the durability comment in persist.go for the full contract.
	Dir string
	// Fsync is the merged journal's sync policy (journal package
	// default when zero).
	Fsync journal.FsyncPolicy
	// CheckpointEvery paces durable checkpoints (default 30s). It also
	// bounds the resend a reconnecting feed performs, and how far the
	// feeds' trim floors lag their send cursors.
	CheckpointEvery time.Duration
	// Window is the analysis window used to compute the journal replay
	// floor; it should match the pipeline's Window (default 15m).
	Window time.Duration
	// SnapshotSink, when set, is called synchronously with every
	// snapshot before it is forwarded to Snapshots(), and checkpoints
	// wait for it: a durable checkpoint is only written once the sink
	// has returned for every snapshot the checkpoint's cut covers.
	// That closes the loss window for consumers that persist snapshots
	// — a crash can only take snapshots no checkpoint ever covered,
	// which a restarted node re-emits.
	//
	// The contract, precisely: the sink runs on the snapshot drain
	// goroutine, so its latency directly gates checkpointing — that
	// blocking is BY DESIGN, it is what makes a checkpoint's cut cover
	// only sink-durable snapshots. Keep it fast, never call back into
	// the receiver from it, and never block it on the receiver's own
	// consumers. The receiver defends itself against a misbehaving
	// sink: a panic is recovered, counted in
	// rex_relay_sink_panics_total, and treated as "sunk" (the snapshot
	// still flows to Snapshots()); a sink wedged past SinkTimeout at
	// shutdown is abandoned (rex_relay_sink_wedged_total) so Close
	// returns instead of deadlocking. A wedged sink still stalls
	// periodic checkpoints — see the sink-durability wait in
	// checkpoint() — which is the designed failure mode: no durable
	// cut may cover an un-sunk snapshot.
	SnapshotSink func(Snapshot)
	// SinkTimeout bounds how long Close/Abort wait for an in-flight
	// SnapshotSink call before abandoning it (default 10s). Snapshots()
	// still closes only after the sink returns; abandonment only
	// unblocks shutdown.
	SinkTimeout time.Duration
}

func (c ReceiverConfig) withDefaults() ReceiverConfig {
	if c.AckEvery <= 0 {
		c.AckEvery = DefaultAckEvery
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = DefaultStaleAfter
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 4 * DefaultHeartbeatEvery
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.SinkTimeout <= 0 {
		c.SinkTimeout = 10 * time.Second
	}
	if c.Dir != "" {
		if c.CheckpointEvery <= 0 {
			c.CheckpointEvery = DefaultCheckpointEvery
		}
		if c.Window <= 0 {
			c.Window = DefaultReplayWindow
		}
	}
	return c
}

// feedState is everything the receiver tracks per feed. Guarded by
// Receiver.mu.
type feedState struct {
	id        string
	conn      net.Conn // live connection, nil when down
	connected bool
	stale     bool
	everHeard bool
	nextSeq   uint64    // resume cursor: next sequence needed
	watermark time.Time // event-time frontier (events + heartbeats)
	// released is the durable-release cursor: the sequence after the
	// last event popped from the queue into the journal and pipeline.
	// durable is released as of the newest checkpoint — the floor every
	// ack advertises while persistence is on. relWM is the event-time
	// watermark of released events, the restart-surviving analog of
	// watermark (which heartbeats advance past anything released).
	released  uint64
	durable   uint64
	relWM     time.Time
	lastHeard time.Time // wall clock of last frame
	queue     eventQueue
	received  uint64
	dups      uint64
	hbNext    uint64 // feed's reported append head
}

// Receiver accepts feed connections, resumes each feed at its cursor,
// and releases the merged stream into the analysis pipeline in the
// exact MergeStreams order. See the package comment for the contract.
type Receiver struct {
	cfg ReceiverConfig

	mu    sync.Mutex
	feeds map[string]*feedState
	order []string // sorted feed IDs

	// emitMu serializes batch handoff to the pipeline so a blocking
	// Ingest never wedges mu (snapshot wrapping needs mu while the
	// pipeline applies backpressure).
	emitMu sync.Mutex

	// pers is the durability sidecar, nil for a memory-only receiver.
	// Its journal/table state is guarded by emitMu.
	pers *persister

	// sunk counts snapshots the SnapshotSink has fully processed;
	// checkpoint compares it against the pipeline's emitted count so a
	// durable cut never covers a snapshot the sink hasn't written yet.
	sunk atomic.Uint64

	// abandoned is set when shutdown gave up waiting for a wedged
	// SnapshotSink; the drain goroutine stops forwarding to snaps (its
	// consumer is gone) and snaps is closed by the straggler watcher
	// once the sink finally returns.
	abandoned atomic.Bool

	ln        net.Listener
	snaps     chan Snapshot
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup // conn handlers + stale ticker + accept loop
	drainWG   sync.WaitGroup
}

// NewReceiver builds a memory-only receiver around cfg.Pipeline; it is
// OpenReceiver minus the error return, and panics if cfg.Dir is set
// and recovery fails — durable callers should use OpenReceiver.
func NewReceiver(cfg ReceiverConfig) *Receiver {
	r, err := OpenReceiver(cfg)
	if err != nil {
		panic("relay: " + err.Error())
	}
	return r
}

// OpenReceiver builds a receiver and, when cfg.Dir is set, recovers
// durable state from it before going live: the newest checkpoint
// restores per-feed cursors, pipeline trigger state, and route tables;
// the journal below the checkpoint replays silently to rebuild the
// analysis window; the orphan tail above it is dropped (feeds resend
// those events from the resumed cursors). Call Serve with a listener
// to go live. Consumers must drain Snapshots until it closes, the same
// contract as the pipeline's.
func OpenReceiver(cfg ReceiverConfig) (*Receiver, error) {
	cfg = cfg.withDefaults()
	r := &Receiver{
		cfg:    cfg,
		feeds:  map[string]*feedState{},
		snaps:  make(chan Snapshot, 16),
		closed: make(chan struct{}),
	}
	now := time.Now()
	for _, id := range cfg.ExpectFeeds {
		// A duplicated roster entry must not duplicate the merge-order
		// list: the gate would check the same feed twice and Statuses
		// would emit duplicate rows.
		if _, dup := r.feeds[id]; dup {
			continue
		}
		r.feeds[id] = &feedState{id: id, lastHeard: now}
		r.order = append(r.order, id)
		mFeedStale.With(id).Set(0)
		mFeedConnected.With(id).Set(0)
	}
	sort.Strings(r.order)
	if cfg.Dir != "" {
		if err := r.openDurability(); err != nil {
			return nil, err
		}
	}
	r.drainWG.Add(1)
	go r.drainSnapshots()
	r.wg.Add(1)
	go r.staleLoop()
	if r.pers != nil {
		r.wg.Add(1)
		go r.checkpointLoop()
	}
	return r, nil
}

// Snapshots returns pipeline snapshots wrapped with feed health. The
// channel closes after Close has flushed and closed the pipeline.
func (r *Receiver) Snapshots() <-chan Snapshot { return r.snaps }

// Statuses reports the current health of every known feed, sorted by
// ID — the live view a supervisor polls between snapshots.
func (r *Receiver) Statuses() []FeedStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusesLocked()
}

// Serve accepts feed connections on ln until Close. It returns only
// then.
func (r *Receiver) Serve(ln net.Listener) {
	r.mu.Lock()
	r.ln = ln
	r.mu.Unlock()
	r.wg.Add(1)
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
			}
			// Transient accept errors: keep serving unless closed.
			select {
			case <-r.closed:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		mConns.Inc()
		r.wg.Add(1)
		go r.handle(conn)
	}
}

// Close stops serving, flushes every buffered event into the pipeline
// in merge order, closes the pipeline, and closes Snapshots after the
// final snapshots drain.
func (r *Receiver) Close() {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.mu.Lock()
		if r.ln != nil {
			r.ln.Close()
		}
		for _, f := range r.feeds {
			if f.conn != nil {
				f.conn.Close()
			}
		}
		r.mu.Unlock()
		r.wg.Wait()
		// Final flush: what the gate was still holding goes out in the
		// same deterministic order, so a drained run equals the offline
		// merge end-to-end.
		r.emitMu.Lock()
		r.mu.Lock()
		batch := r.collectLocked(true)
		r.mu.Unlock()
		r.deliver(batch)
		r.emitMu.Unlock()
		if r.pers != nil {
			// Final checkpoint covers the flush, so a clean restart
			// replays nothing and resumes every feed at its head.
			if err := r.checkpoint(); err != nil {
				obs.Logf(obs.Error, "relay", "final checkpoint: %v", err)
			}
		}
		r.cfg.Pipeline.Close()
		r.waitSinkDrain()
		if r.pers != nil {
			if err := r.pers.w.Close(); err != nil {
				obs.Logf(obs.Error, "relay", "merged journal close: %v", err)
			}
		}
	})
}

// Abort tears the receiver down without the graceful-shutdown work —
// no final flush, no final checkpoint — approximating a crash for the
// restart-equivalence tests (a real SIGKILL additionally skips the
// journal close; tests tear the tail by truncating segment files
// afterward). Buffered events are dropped: they sit below the feeds'
// un-acked tails and are resent on the next connect.
func (r *Receiver) Abort() {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.mu.Lock()
		if r.ln != nil {
			r.ln.Close()
		}
		for _, f := range r.feeds {
			if f.conn != nil {
				f.conn.Close()
			}
		}
		r.mu.Unlock()
		r.wg.Wait()
		r.cfg.Pipeline.Close()
		r.waitSinkDrain()
		if r.pers != nil {
			r.pers.w.Close()
		}
	})
}

// waitSinkDrain waits for the snapshot drain goroutine (and therefore
// any in-flight SnapshotSink call) to finish, then closes Snapshots().
// A sink wedged past SinkTimeout is abandoned so shutdown stays
// bounded: the drain goroutine is flagged to stop forwarding, and a
// watcher closes snaps whenever the sink finally returns — the channel
// still never closes with a send in flight.
func (r *Receiver) waitSinkDrain() {
	done := make(chan struct{})
	go func() {
		r.drainWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		close(r.snaps)
	case <-time.After(r.cfg.SinkTimeout):
		r.abandoned.Store(true)
		mSinkWedged.Inc()
		obs.Logf(obs.Error, "relay",
			"snapshot sink wedged for %v at shutdown; abandoning it (snapshots since last durable cut may be lost)",
			r.cfg.SinkTimeout)
		go func() {
			<-done
			close(r.snaps)
		}()
	}
}

func (r *Receiver) drainSnapshots() {
	defer r.drainWG.Done()
	for s := range r.cfg.Pipeline.Snapshots() {
		r.mu.Lock()
		feeds := r.statusesLocked()
		r.mu.Unlock()
		wrapped := Snapshot{Snapshot: s, Feeds: feeds}
		r.safeSink(wrapped)
		// Counted after the sink returns, before the (possibly
		// blocking) forward: checkpoint's sink-durability wait must not
		// depend on the Snapshots() consumer keeping pace.
		r.sunk.Add(1)
		if r.abandoned.Load() {
			// Shutdown gave up on a wedged sink; nobody is draining
			// snaps anymore, so forwarding would block forever.
			continue
		}
		r.snaps <- wrapped
	}
}

// safeSink runs the configured SnapshotSink, converting a panic into a
// counted, logged error: one bad snapshot must not take down the drain
// goroutine and with it the whole receiver shutdown path.
func (r *Receiver) safeSink(s Snapshot) {
	if r.cfg.SnapshotSink == nil {
		return
	}
	defer func() {
		if v := recover(); v != nil {
			mSinkPanics.Inc()
			obs.Logf(obs.Error, "relay", "snapshot sink panicked (snapshot still forwarded): %v", v)
		}
	}()
	r.cfg.SnapshotSink(s)
}

func (r *Receiver) statusesLocked() []FeedStatus {
	out := make([]FeedStatus, 0, len(r.order))
	for _, id := range r.order {
		f := r.feeds[id]
		durable := f.nextSeq
		if r.pers != nil {
			durable = f.durable
		}
		out = append(out, FeedStatus{
			ID: id, Connected: f.connected, Stale: f.stale, EverHeard: f.everHeard,
			NextSeq: f.nextSeq, Durable: durable, Watermark: f.watermark, LastHeard: f.lastHeard,
			Buffered: f.queue.len(), Received: f.received, Duplicates: f.dups,
		})
	}
	return out
}

// staleLoop flips feeds stale after StaleAfter of wall-clock silence.
// Going stale can unblock the merge, so it pumps.
func (r *Receiver) staleLoop() {
	defer r.wg.Done()
	period := r.cfg.StaleAfter / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case now := <-t.C:
			changed := false
			r.mu.Lock()
			for _, f := range r.feeds {
				if !f.stale && now.Sub(f.lastHeard) > r.cfg.StaleAfter {
					f.stale = true
					changed = true
					mFeedStale.With(f.id).Set(1)
					mStaleTransitions.With(f.id).Inc()
				}
			}
			r.mu.Unlock()
			if changed {
				r.pump()
			}
		}
	}
}

// handle runs one feed connection: handshake, then frames until error.
func (r *Receiver) handle(conn net.Conn) {
	defer r.wg.Done()
	buf := make([]byte, 0, 4096)
	conn.SetReadDeadline(time.Now().Add(r.cfg.HandshakeTimeout))
	kind, payload, err := readFrame(conn, buf)
	if err != nil || kind != kindHello {
		if err == nil {
			// readFrame counts framing violations itself; a well-formed
			// frame of the wrong kind is rejected here.
			mFramesRejected.Inc()
		}
		conn.Close()
		return
	}
	id, err := parseHello(payload)
	if err != nil {
		mFramesRejected.Inc()
		conn.Close()
		return
	}

	r.mu.Lock()
	f, known := r.feeds[id]
	if !known {
		if len(r.cfg.ExpectFeeds) > 0 {
			r.mu.Unlock()
			conn.Close()
			return
		}
		f = &feedState{id: id, lastHeard: time.Now()}
		r.feeds[id] = f
		r.order = append(r.order, id)
		sort.Strings(r.order)
	}
	if f.conn != nil {
		// Session replacement: the feed redialed before we noticed the
		// old connection die. Newest wins, as with BGP sessions.
		f.conn.Close()
	}
	f.conn = conn
	f.connected = true
	f.stale = false
	f.everHeard = true
	f.lastHeard = time.Now()
	resume := r.ackSeqLocked(f, f.nextSeq)
	r.mu.Unlock()
	mFeedConnected.With(id).Set(1)
	mFeedStale.With(id).Set(0)

	conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
	if _, err := conn.Write(appendAck(buf[:0], resume)); err != nil {
		r.dropConn(f, conn)
		return
	}
	r.pump()

	sinceAck := 0
	for {
		conn.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout))
		kind, payload, err := readFrame(conn, buf)
		if err != nil {
			r.dropConn(f, conn)
			return
		}
		switch kind {
		case kindEvent:
			seq, e, perr := parseEventFrame(payload)
			if perr != nil {
				mFramesRejected.Inc()
				r.dropConn(f, conn)
				return
			}
			r.mu.Lock()
			f.lastHeard = time.Now()
			f.stale = false
			switch {
			case seq < f.nextSeq:
				// Already have it — but the replay still counts toward ack
				// pacing: a reconnecting feed resending a long run below
				// the cursor would otherwise hear nothing until its next
				// heartbeat (it only heartbeats when caught up) and could
				// not advance its trim floor for the whole replay.
				f.dups++
				mDuplicates.With(id).Inc()
				next := r.ackSeqLocked(f, f.nextSeq)
				r.mu.Unlock()
				if sinceAck++; sinceAck >= r.cfg.AckEvery {
					sinceAck = 0
					conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
					if _, err := conn.Write(appendAck(buf[:0], next)); err != nil {
						r.dropConn(f, conn)
						return
					}
				}
				continue
			case seq > f.nextSeq:
				// TCP cannot reorder within a session, so a forward
				// jump is the feed skipping damaged journal records —
				// upstream loss, not a transport gap. Count it and
				// advance.
				mSeqJumps.With(id).Inc()
			}
			f.nextSeq = seq + 1
			f.received++
			if e.Time.After(f.watermark) {
				f.watermark = e.Time
			}
			f.queue.push(queuedEvent{seq: seq, e: e})
			mEventsAccepted.With(id).Inc()
			mFeedNextSeq.With(id).Set(int64(f.nextSeq))
			mBuffered.Inc()
			r.mu.Unlock()
			mFeedStale.With(id).Set(0)
			r.pump()
			if sinceAck++; sinceAck >= r.cfg.AckEvery {
				sinceAck = 0
				r.mu.Lock()
				ack := r.ackSeqLocked(f, seq+1)
				r.mu.Unlock()
				conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
				if _, err := conn.Write(appendAck(buf[:0], ack)); err != nil {
					r.dropConn(f, conn)
					return
				}
			}
		case kindHeartbeat:
			hbNext, wm, perr := parseHeartbeat(payload)
			if perr != nil {
				mFramesRejected.Inc()
				r.dropConn(f, conn)
				return
			}
			r.mu.Lock()
			f.lastHeard = time.Now()
			f.stale = false
			f.hbNext = hbNext
			if wm.After(f.watermark) {
				f.watermark = wm
			}
			next := r.ackSeqLocked(f, f.nextSeq)
			backlog := int64(0)
			if hbNext > f.nextSeq {
				backlog = int64(hbNext - f.nextSeq)
			}
			r.mu.Unlock()
			mFeedStale.With(id).Set(0)
			mFeedBacklog.With(id).Set(backlog)
			r.pump()
			sinceAck = 0
			conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
			if _, err := conn.Write(appendAck(buf[:0], next)); err != nil {
				r.dropConn(f, conn)
				return
			}
		default:
			mFramesRejected.Inc()
			r.dropConn(f, conn)
			return
		}
	}
}

// ackSeqLocked is the sequence an ack to feed f advertises: the given
// in-memory cursor normally, but the durable cursor while persistence
// is on — feeds treat acks as trim floors and the handshake ack as the
// scan-resume point, so a durable receiver must never ack state a
// crash could forget. Caller holds r.mu.
func (r *Receiver) ackSeqLocked(f *feedState, next uint64) uint64 {
	if r.pers != nil {
		return f.durable
	}
	return next
}

// dropConn closes conn and, if it is still the feed's live connection,
// marks the feed down (a replaced connection changes nothing).
func (r *Receiver) dropConn(f *feedState, conn net.Conn) {
	conn.Close()
	r.mu.Lock()
	mine := f.conn == conn
	if mine {
		f.conn = nil
		f.connected = false
	}
	r.mu.Unlock()
	if mine {
		mFeedConnected.With(f.id).Set(0)
	}
}

// pump moves every releasable event into the pipeline, preserving the
// merge order across concurrent callers: emitMu serializes handoff,
// and the releasable set is computed under mu.
func (r *Receiver) pump() {
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	r.mu.Lock()
	batch := r.collectLocked(false)
	r.mu.Unlock()
	r.deliver(batch)
}

// deliver journals (when durable) then ingests a released batch.
// Caller holds emitMu, so checkpoints see the journal, the pipeline,
// and the released cursors as one consistent cut.
func (r *Receiver) deliver(batch []event.Event) {
	if r.pers != nil {
		r.journalBatch(batch)
	}
	for i := range batch {
		r.cfg.Pipeline.Ingest(batch[i])
	}
}

// collectLocked pops every event the merge gate allows, in order. With
// flush set the gate is ignored (Close: nothing more will arrive).
//
// The gate: the earliest buffered event e (by merge order) is released
// only when every other non-stale feed can be proven to have nothing
// earlier — a buffered event of its own (the head comparison covers
// it), or a watermark past e's time (with the feed-ID tiebreak at
// exact equality). A disconnected-but-not-yet-stale feed blocks the
// merge, by design: determinism first, then StaleAfter bounds the wait.
func (r *Receiver) collectLocked(flush bool) []event.Event {
	var out []event.Event
	for {
		var best *feedState
		for _, id := range r.order {
			f := r.feeds[id]
			if f.queue.len() == 0 {
				continue
			}
			if best == nil || mergeBefore(f.queue.front().e.Time, f.id, best.queue.front().e.Time, best.id) {
				best = f
			}
		}
		if best == nil {
			break
		}
		if !flush {
			e := &best.queue.front().e
			blocked := false
			for _, id := range r.order {
				g := r.feeds[id]
				if g == best || g.stale || g.queue.len() > 0 {
					continue
				}
				if g.watermark.After(e.Time) {
					continue
				}
				if g.watermark.Equal(e.Time) && g.id > best.id {
					continue
				}
				blocked = true
				break
			}
			if blocked {
				break
			}
		}
		qe := best.queue.pop()
		best.released = qe.seq + 1
		if qe.e.Time.After(best.relWM) {
			best.relWM = qe.e.Time
		}
		out = append(out, qe.e)
		mReleased.Inc()
		mBuffered.Dec()
	}
	return out
}
