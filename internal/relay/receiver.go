package relay

import (
	"net"
	"sort"
	"sync"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/event"
)

// ReceiverConfig wires the fan-in point.
type ReceiverConfig struct {
	// Pipeline receives the merged stream. The receiver owns its
	// lifecycle from here: Close flushes buffered events into it and
	// closes it.
	Pipeline *pipeline.Pipeline
	// ExpectFeeds is the fleet roster. Listed feeds gate the merge from
	// startup (no event is released until every listed feed has either
	// connected and reported or gone stale) and connections from
	// unlisted feeds are rejected. Empty means accept anyone, gating
	// only on feeds that have said hello.
	ExpectFeeds []string
	// AckEvery paces progress acks during streaming (default 64
	// events); heartbeats are always acked immediately.
	AckEvery int
	// StaleAfter is the wall-clock silence after which a feed stops
	// gating the merge and is flagged stale (default 10s). A stale
	// feed's routes are left to age out upstream via graceful-restart
	// retention; the receiver never synthesizes withdrawals.
	StaleAfter time.Duration
	// HandshakeTimeout bounds the hello exchange (default 5s).
	HandshakeTimeout time.Duration
	// ReadTimeout is the per-frame read deadline on feed connections
	// (default 4×DefaultHeartbeatEvery); a healthy feed heartbeats well
	// inside it.
	ReadTimeout time.Duration
	// WriteTimeout bounds ack writes (default 10s).
	WriteTimeout time.Duration
}

func (c ReceiverConfig) withDefaults() ReceiverConfig {
	if c.AckEvery <= 0 {
		c.AckEvery = DefaultAckEvery
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = DefaultStaleAfter
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 4 * DefaultHeartbeatEvery
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	return c
}

// feedState is everything the receiver tracks per feed. Guarded by
// Receiver.mu.
type feedState struct {
	id        string
	conn      net.Conn // live connection, nil when down
	connected bool
	stale     bool
	everHeard bool
	nextSeq   uint64    // resume cursor: next sequence needed
	watermark time.Time // event-time frontier (events + heartbeats)
	lastHeard time.Time // wall clock of last frame
	queue     []event.Event
	received  uint64
	dups      uint64
	hbNext    uint64 // feed's reported append head
}

// Receiver accepts feed connections, resumes each feed at its cursor,
// and releases the merged stream into the analysis pipeline in the
// exact MergeStreams order. See the package comment for the contract.
type Receiver struct {
	cfg ReceiverConfig

	mu    sync.Mutex
	feeds map[string]*feedState
	order []string // sorted feed IDs

	// emitMu serializes batch handoff to the pipeline so a blocking
	// Ingest never wedges mu (snapshot wrapping needs mu while the
	// pipeline applies backpressure).
	emitMu sync.Mutex

	ln        net.Listener
	snaps     chan Snapshot
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup // conn handlers + stale ticker + accept loop
	drainWG   sync.WaitGroup
}

// NewReceiver builds a receiver around cfg.Pipeline and starts the
// snapshot-wrapping drain; call Serve with a listener to go live.
// Consumers must drain Snapshots until it closes, the same contract as
// the pipeline's.
func NewReceiver(cfg ReceiverConfig) *Receiver {
	cfg = cfg.withDefaults()
	r := &Receiver{
		cfg:    cfg,
		feeds:  map[string]*feedState{},
		snaps:  make(chan Snapshot, 16),
		closed: make(chan struct{}),
	}
	now := time.Now()
	for _, id := range cfg.ExpectFeeds {
		r.feeds[id] = &feedState{id: id, lastHeard: now}
		r.order = append(r.order, id)
		mFeedStale.With(id).Set(0)
		mFeedConnected.With(id).Set(0)
	}
	sort.Strings(r.order)
	r.drainWG.Add(1)
	go r.drainSnapshots()
	r.wg.Add(1)
	go r.staleLoop()
	return r
}

// Snapshots returns pipeline snapshots wrapped with feed health. The
// channel closes after Close has flushed and closed the pipeline.
func (r *Receiver) Snapshots() <-chan Snapshot { return r.snaps }

// Statuses reports the current health of every known feed, sorted by
// ID — the live view a supervisor polls between snapshots.
func (r *Receiver) Statuses() []FeedStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusesLocked()
}

// Serve accepts feed connections on ln until Close. It returns only
// then.
func (r *Receiver) Serve(ln net.Listener) {
	r.mu.Lock()
	r.ln = ln
	r.mu.Unlock()
	r.wg.Add(1)
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
			}
			// Transient accept errors: keep serving unless closed.
			select {
			case <-r.closed:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		mConns.Inc()
		r.wg.Add(1)
		go r.handle(conn)
	}
}

// Close stops serving, flushes every buffered event into the pipeline
// in merge order, closes the pipeline, and closes Snapshots after the
// final snapshots drain.
func (r *Receiver) Close() {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.mu.Lock()
		if r.ln != nil {
			r.ln.Close()
		}
		for _, f := range r.feeds {
			if f.conn != nil {
				f.conn.Close()
			}
		}
		r.mu.Unlock()
		r.wg.Wait()
		// Final flush: what the gate was still holding goes out in the
		// same deterministic order, so a drained run equals the offline
		// merge end-to-end.
		r.emitMu.Lock()
		r.mu.Lock()
		batch := r.collectLocked(true)
		r.mu.Unlock()
		for i := range batch {
			r.cfg.Pipeline.Ingest(batch[i])
		}
		r.emitMu.Unlock()
		r.cfg.Pipeline.Close()
		r.drainWG.Wait()
		close(r.snaps)
	})
}

func (r *Receiver) drainSnapshots() {
	defer r.drainWG.Done()
	for s := range r.cfg.Pipeline.Snapshots() {
		r.mu.Lock()
		feeds := r.statusesLocked()
		r.mu.Unlock()
		r.snaps <- Snapshot{Snapshot: s, Feeds: feeds}
	}
}

func (r *Receiver) statusesLocked() []FeedStatus {
	out := make([]FeedStatus, 0, len(r.order))
	for _, id := range r.order {
		f := r.feeds[id]
		out = append(out, FeedStatus{
			ID: id, Connected: f.connected, Stale: f.stale,
			NextSeq: f.nextSeq, Watermark: f.watermark, LastHeard: f.lastHeard,
			Buffered: len(f.queue), Received: f.received, Duplicates: f.dups,
		})
	}
	return out
}

// staleLoop flips feeds stale after StaleAfter of wall-clock silence.
// Going stale can unblock the merge, so it pumps.
func (r *Receiver) staleLoop() {
	defer r.wg.Done()
	period := r.cfg.StaleAfter / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case now := <-t.C:
			changed := false
			r.mu.Lock()
			for _, f := range r.feeds {
				if !f.stale && now.Sub(f.lastHeard) > r.cfg.StaleAfter {
					f.stale = true
					changed = true
					mFeedStale.With(f.id).Set(1)
					mStaleTransitions.With(f.id).Inc()
				}
			}
			r.mu.Unlock()
			if changed {
				r.pump()
			}
		}
	}
}

// handle runs one feed connection: handshake, then frames until error.
func (r *Receiver) handle(conn net.Conn) {
	defer r.wg.Done()
	buf := make([]byte, 0, 4096)
	conn.SetReadDeadline(time.Now().Add(r.cfg.HandshakeTimeout))
	kind, payload, err := readFrame(conn, buf)
	if err != nil || kind != kindHello {
		if err == nil {
			// readFrame counts framing violations itself; a well-formed
			// frame of the wrong kind is rejected here.
			mFramesRejected.Inc()
		}
		conn.Close()
		return
	}
	id, err := parseHello(payload)
	if err != nil {
		mFramesRejected.Inc()
		conn.Close()
		return
	}

	r.mu.Lock()
	f, known := r.feeds[id]
	if !known {
		if len(r.cfg.ExpectFeeds) > 0 {
			r.mu.Unlock()
			conn.Close()
			return
		}
		f = &feedState{id: id, lastHeard: time.Now()}
		r.feeds[id] = f
		r.order = append(r.order, id)
		sort.Strings(r.order)
	}
	if f.conn != nil {
		// Session replacement: the feed redialed before we noticed the
		// old connection die. Newest wins, as with BGP sessions.
		f.conn.Close()
	}
	f.conn = conn
	f.connected = true
	f.stale = false
	f.everHeard = true
	f.lastHeard = time.Now()
	resume := f.nextSeq
	r.mu.Unlock()
	mFeedConnected.With(id).Set(1)
	mFeedStale.With(id).Set(0)

	conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
	if _, err := conn.Write(appendAck(buf[:0], resume)); err != nil {
		r.dropConn(f, conn)
		return
	}
	r.pump()

	sinceAck := 0
	for {
		conn.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout))
		kind, payload, err := readFrame(conn, buf)
		if err != nil {
			r.dropConn(f, conn)
			return
		}
		switch kind {
		case kindEvent:
			seq, e, perr := parseEventFrame(payload)
			if perr != nil {
				mFramesRejected.Inc()
				r.dropConn(f, conn)
				return
			}
			r.mu.Lock()
			f.lastHeard = time.Now()
			f.stale = false
			switch {
			case seq < f.nextSeq:
				f.dups++
				mDuplicates.With(id).Inc()
				r.mu.Unlock()
				continue
			case seq > f.nextSeq:
				// TCP cannot reorder within a session, so a forward
				// jump is the feed skipping damaged journal records —
				// upstream loss, not a transport gap. Count it and
				// advance.
				mSeqJumps.With(id).Inc()
			}
			f.nextSeq = seq + 1
			f.received++
			if e.Time.After(f.watermark) {
				f.watermark = e.Time
			}
			f.queue = append(f.queue, e)
			mEventsAccepted.With(id).Inc()
			mFeedNextSeq.With(id).Set(int64(f.nextSeq))
			mBuffered.Inc()
			r.mu.Unlock()
			mFeedStale.With(id).Set(0)
			r.pump()
			if sinceAck++; sinceAck >= r.cfg.AckEvery {
				sinceAck = 0
				conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
				if _, err := conn.Write(appendAck(buf[:0], seq+1)); err != nil {
					r.dropConn(f, conn)
					return
				}
			}
		case kindHeartbeat:
			hbNext, wm, perr := parseHeartbeat(payload)
			if perr != nil {
				mFramesRejected.Inc()
				r.dropConn(f, conn)
				return
			}
			r.mu.Lock()
			f.lastHeard = time.Now()
			f.stale = false
			f.hbNext = hbNext
			if wm.After(f.watermark) {
				f.watermark = wm
			}
			next := f.nextSeq
			backlog := int64(0)
			if hbNext > next {
				backlog = int64(hbNext - next)
			}
			r.mu.Unlock()
			mFeedStale.With(id).Set(0)
			mFeedBacklog.With(id).Set(backlog)
			r.pump()
			sinceAck = 0
			conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
			if _, err := conn.Write(appendAck(buf[:0], next)); err != nil {
				r.dropConn(f, conn)
				return
			}
		default:
			mFramesRejected.Inc()
			r.dropConn(f, conn)
			return
		}
	}
}

// dropConn closes conn and, if it is still the feed's live connection,
// marks the feed down (a replaced connection changes nothing).
func (r *Receiver) dropConn(f *feedState, conn net.Conn) {
	conn.Close()
	r.mu.Lock()
	mine := f.conn == conn
	if mine {
		f.conn = nil
		f.connected = false
	}
	r.mu.Unlock()
	if mine {
		mFeedConnected.With(f.id).Set(0)
	}
}

// pump moves every releasable event into the pipeline, preserving the
// merge order across concurrent callers: emitMu serializes handoff,
// and the releasable set is computed under mu.
func (r *Receiver) pump() {
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	r.mu.Lock()
	batch := r.collectLocked(false)
	r.mu.Unlock()
	for i := range batch {
		r.cfg.Pipeline.Ingest(batch[i])
	}
}

// collectLocked pops every event the merge gate allows, in order. With
// flush set the gate is ignored (Close: nothing more will arrive).
//
// The gate: the earliest buffered event e (by merge order) is released
// only when every other non-stale feed can be proven to have nothing
// earlier — a buffered event of its own (the head comparison covers
// it), or a watermark past e's time (with the feed-ID tiebreak at
// exact equality). A disconnected-but-not-yet-stale feed blocks the
// merge, by design: determinism first, then StaleAfter bounds the wait.
func (r *Receiver) collectLocked(flush bool) []event.Event {
	var out []event.Event
	for {
		var best *feedState
		for _, id := range r.order {
			f := r.feeds[id]
			if len(f.queue) == 0 {
				continue
			}
			if best == nil || mergeBefore(f.queue[0].Time, f.id, best.queue[0].Time, best.id) {
				best = f
			}
		}
		if best == nil {
			break
		}
		if !flush {
			e := &best.queue[0]
			blocked := false
			for _, id := range r.order {
				g := r.feeds[id]
				if g == best || g.stale || len(g.queue) > 0 {
					continue
				}
				if g.watermark.After(e.Time) {
					continue
				}
				if g.watermark.Equal(e.Time) && g.id > best.id {
					continue
				}
				blocked = true
				break
			}
			if blocked {
				break
			}
		}
		out = append(out, best.queue[0])
		best.queue = best.queue[1:]
		mReleased.Inc()
		mBuffered.Dec()
	}
	return out
}
